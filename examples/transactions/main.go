// Transactions walks through the paper's Figure 4 workflow at the client
// level: registering a transactional id (epoch bump fences zombies),
// registering partitions, transactional sends, the two-phase commit, abort
// semantics, and read-committed consumption.
//
// Run with: go run ./examples/transactions
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"kstreams/kafka"
)

func main() {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	must(cluster.CreateTopic("payments", 2, false))

	fmt.Println("(b) register transactional id 'payments-app' with the coordinator")
	producer, err := cluster.NewProducer(kafka.ProducerConfig{TransactionalID: "payments-app"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("(c,d) begin a transaction, register partitions, send records")
	must(producer.BeginTxn())
	must(producer.Send("payments", kafka.Record{Key: []byte("alice"), Value: []byte("pay $10"), Timestamp: 1}))
	must(producer.Send("payments", kafka.Record{Key: []byte("bob"), Value: []byte("pay $20"), Timestamp: 2}))
	must(producer.Flush())

	rc := cluster.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer rc.Close()
	rc.Assign("payments", 0, 1)
	if msgs := poll(rc, 200*time.Millisecond); len(msgs) != 0 {
		log.Fatalf("read-committed saw %d records from an OPEN transaction", len(msgs))
	}
	fmt.Println("    read-committed consumer sees nothing while the transaction is open")

	fmt.Println("(e,f) two-phase commit: PrepareCommit in the txn log, then markers")
	must(producer.CommitTxn())
	msgs := pollUntil(rc, 2, 5*time.Second)
	fmt.Printf("    after commit the consumer sees %d records\n", len(msgs))

	fmt.Println("\nabort path: sent records never become visible")
	must(producer.BeginTxn())
	must(producer.Send("payments", kafka.Record{Key: []byte("eve"), Value: []byte("pay $999"), Timestamp: 3}))
	must(producer.Flush())
	must(producer.AbortTxn())
	if msgs := poll(rc, 300*time.Millisecond); len(msgs) != 0 {
		log.Fatalf("aborted records leaked: %d", len(msgs))
	}
	fmt.Println("    aborted transaction's records were filtered out")

	fmt.Println("\nzombie fencing: a second instance registers the same transactional id")
	replacement, err := cluster.NewProducer(kafka.ProducerConfig{TransactionalID: "payments-app"})
	if err != nil {
		log.Fatal(err)
	}
	defer replacement.Close()
	must(producer.BeginTxn()) // the old instance limps on...
	producer.Send("payments", kafka.Record{Key: []byte("zombie"), Value: []byte("stale write"), Timestamp: 4})
	err = producer.CommitTxn()
	if !errors.Is(err, kafka.ErrFenced) {
		log.Fatalf("zombie commit should be fenced, got %v", err)
	}
	fmt.Println("    old instance's commit rejected: producer fenced by newer epoch")
	producer.Close()

	must(replacement.BeginTxn())
	must(replacement.Send("payments", kafka.Record{Key: []byte("carol"), Value: []byte("pay $30"), Timestamp: 5}))
	must(replacement.CommitTxn())
	msgs = pollUntil(rc, 1, 5*time.Second)
	fmt.Printf("    replacement commits fine; consumer saw %d new record(s)\n", len(msgs))
	fmt.Println("\nfigure 4 workflow complete.")
}

func poll(c *kafka.Consumer, d time.Duration) []kafka.Message {
	var out []kafka.Message
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		msgs, err := c.Poll()
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, msgs...)
		if len(msgs) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return out
}

func pollUntil(c *kafka.Consumer, n int, d time.Duration) []kafka.Message {
	var out []kafka.Message
	deadline := time.Now().Add(d)
	for len(out) < n && time.Now().Before(deadline) {
		msgs, err := c.Poll()
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, msgs...)
		if len(msgs) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
