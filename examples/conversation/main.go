// Conversation reproduces the Expedia deployment of paper Section 6.2: a
// conversational platform where every event must be processed exactly once
// ("otherwise undesirable outcomes such as double payment ... could
// happen"). Two services run with the two commit-interval configurations
// the paper reports: a data-enrichment service at 100ms for sub-second
// end-to-end latency, and a conversation-view aggregation at 1500ms with
// output consolidation to reduce I/O.
//
// Run with: go run ./examples/conversation
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"kstreams/internal/workload"
	"kstreams/kafka"
	"kstreams/streams"
)

type view struct {
	Events   int    `json:"events"`
	Bookings int    `json:"bookings"`
	Last     string `json:"last"`
	Closed   bool   `json:"closed"`
}

func main() {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	for _, topic := range []string{"cp-events", "cp-enriched", "cp-views"} {
		must(cluster.CreateTopic(topic, 4, false))
	}

	evSerde := streams.JSONSerde[workload.ConversationEvent]()
	viewSerde := streams.JSONSerde[view]()

	// Service 1: enrichment (PII redaction stand-in), 100ms commits.
	enrichB := streams.NewBuilder("cp-enrich")
	enrichB.Stream("cp-events", streams.StringSerde, evSerde).
		MapValues(func(v any) any {
			ev := v.(workload.ConversationEvent)
			ev.Text = strings.ReplaceAll(ev.Text, ev.ConversationID, "[REDACTED]")
			return ev
		}, evSerde).
		To("cp-enriched")
	enrich, err := streams.NewApp(enrichB, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce,
		CommitInterval: 100 * time.Millisecond, // paper: sub-second end-to-end
	})
	must(err)
	must(enrich.Start())
	defer enrich.Close()

	// Service 2: conversation-view aggregation, 1500ms commits; the cached
	// aggregate consolidates per-conversation updates per commit interval
	// (the paper's "output suppression caching").
	viewB := streams.NewBuilder("cp-view")
	viewB.Stream("cp-enriched", streams.StringSerde, evSerde).
		GroupByKey().
		Aggregate(func() any { return view{} },
			func(k, v, agg any) any {
				ev := v.(workload.ConversationEvent)
				s := agg.(view)
				s.Events++
				if ev.Kind == "booking" {
					s.Bookings++
				}
				if ev.Kind == "close" {
					s.Closed = true
				}
				s.Last = ev.Kind
				return s
			}, "conversation-view", viewSerde).
		ToStream().
		To("cp-views")
	views, err := streams.NewApp(viewB, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce,
		CommitInterval: 1500 * time.Millisecond, // paper's aggregation setting
	})
	must(err)
	must(views.Start())
	defer views.Close()

	fmt.Println("== producing conversation events ==")
	producer, err := cluster.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 64})
	must(err)
	defer producer.Close()
	gen := workload.NewConversations(11, 50)
	const total = 2000
	sendStart := time.Now()
	for i := 0; i < total; i++ {
		ev, ts := gen.Next()
		must(producer.Send("cp-events", kafka.Record{
			Key: []byte(ev.ConversationID), Value: evSerde.Encode(ev), Timestamp: ts,
		}))
	}
	must(producer.Flush())

	deadline := time.Now().Add(60 * time.Second)
	for views.Metrics().Processed < total && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	elapsed := time.Since(sendStart)

	em := enrich.Metrics()
	vm := views.Metrics()
	fmt.Printf("enrichment: processed=%d emitted=%d commits=%d (commit interval 100ms)\n",
		em.Processed, em.Emitted, em.Commits)
	fmt.Printf("view aggregation: processed=%d emitted=%d commits=%d (commit interval 1500ms)\n",
		vm.Processed, vm.Emitted, vm.Commits)
	fmt.Printf("output consolidation: %d input events -> %d view updates (%.1f%% fewer records)\n",
		total, vm.Emitted, float64(total-vm.Emitted)/float64(total)*100)
	fmt.Printf("pipeline drained %d events end-to-end in %v\n", total, elapsed.Round(time.Millisecond))

	// Query the materialized conversation views.
	fmt.Println("\n== sampled conversation views (read committed) ==")
	consumer := cluster.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer consumer.Close()
	consumer.Assign("cp-views", 0, 1, 2, 3)
	latest := map[string]view{}
	readDeadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(readDeadline) {
		msgs, err := consumer.Poll()
		must(err)
		for _, m := range msgs {
			if m.Value != nil {
				latest[string(m.Key)] = viewSerde.Decode(m.Value).(view)
			}
		}
		if len(msgs) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	shown := 0
	closed := 0
	for id, v := range latest {
		if v.Closed {
			closed++
		}
		if shown < 5 {
			fmt.Printf("  %-12s events=%-3d bookings=%-2d closed=%-5v last=%s\n",
				id, v.Events, v.Bookings, v.Closed, v.Last)
			shown++
		}
	}
	fmt.Printf("\n%d conversations tracked, %d closed (purgeable from working queues)\n", len(latest), closed)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
