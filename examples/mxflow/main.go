// MxFlow reproduces the Bloomberg deployment of paper Section 6.1: a
// market-data pipeline of three stateful stages — outlier signal
// detection, profile-based windowing, and size-weighted aggregation —
// running with exactly-once processing, plus the "state catalog" pattern:
// a second application replaying the first one's changelog topic with a
// read-committed consumer to serve consistent historical snapshots.
//
// Run with: go run ./examples/mxflow
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"kstreams/internal/workload"
	"kstreams/kafka"
	"kstreams/streams"
)

type vwapState struct {
	Notional float64 `json:"notional"`
	Size     float64 `json:"size"`
}

func main() {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	must(cluster.CreateTopic("market-ticks", 4, false))
	must(cluster.CreateTopic("market-insights", 4, false))

	tickSerde := streams.JSONSerde[workload.Tick]()
	stateSerde := streams.JSONSerde[vwapState]()

	b := streams.NewBuilder("mxflow")
	b.Stream("market-ticks", streams.StringSerde, tickSerde).
		// Stage 1: outlier signal detection — crossed or absurdly wide
		// quotes never reach pricing.
		Filter(func(k, v any) bool {
			t := v.(workload.Tick)
			return t.Bid > 0 && t.Ask > t.Bid && (t.Ask-t.Bid) < t.Bid*0.05
		}).
		// Stage 2: dynamic profile-based windowing (1-second profiles with
		// a 2-second lateness tolerance for feed jitter).
		GroupByKey().
		WindowedBy(streams.TimeWindowsOf(1000).WithGrace(2000)).
		// Stage 3: size-weighted price aggregation (VWAP numerator and
		// denominator).
		Aggregate(func() any { return vwapState{} },
			func(k, v, agg any) any {
				t := v.(workload.Tick)
				s := agg.(vwapState)
				mid := (t.Bid + t.Ask) / 2
				s.Notional += mid * float64(t.Size)
				s.Size += float64(t.Size)
				return s
			}, "vwap", stateSerde).
		ToStream().
		ToWith("market-insights", streams.WindowedSerde(streams.StringSerde), stateSerde, nil)

	app, err := streams.NewApp(b, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce, // "every market bid and ask ... without duplication or loss"
		CommitInterval: 100 * time.Millisecond,
		NumThreads:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	must(app.Start())
	defer app.Close()

	fmt.Println("== producing market ticks ==")
	producer, err := cluster.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 128})
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	gen := workload.NewTicks(7, 50, 0.05)
	const total = 5000
	for i := 0; i < total; i++ {
		tick, ts := gen.Next()
		must(producer.Send("market-ticks", kafka.Record{
			Key: []byte(tick.Symbol), Value: tickSerde.Encode(tick), Timestamp: ts,
		}))
	}
	must(producer.Flush())

	deadline := time.Now().Add(60 * time.Second)
	for app.Metrics().Processed < total && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	m := app.Metrics()
	fmt.Printf("pipeline processed=%d emitted=%d revisions=%d commits=%d\n",
		m.Processed, m.Emitted, m.Revisions, m.Commits)

	// --- State catalog: rebuild consistent VWAP snapshots by replaying the
	// pipeline's changelog with a read-committed consumer (Section 6.1.1:
	// "replaying them with a read-committed consumer generates consistent
	// historical snapshots").
	fmt.Println("\n== state catalog: replaying the vwap changelog ==")
	catalog := cluster.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer catalog.Close()
	catalog.Assign("mxflow-vwap-changelog", 0, 1, 2, 3)
	type snap struct {
		state vwapState
		start int64
	}
	snapshot := map[string]snap{} // symbol -> latest window state
	readDeadline := time.Now().Add(5 * time.Second)
	replayed := 0
	for time.Now().Before(readDeadline) {
		msgs, err := catalog.Poll()
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range msgs {
			// Window changelog keys are (windowStart, key) encoded.
			if len(m.Key) < 8 || m.Value == nil {
				continue
			}
			replayed++
			start := int64(uint64(m.Key[0])<<56 | uint64(m.Key[1])<<48 | uint64(m.Key[2])<<40 |
				uint64(m.Key[3])<<32 | uint64(m.Key[4])<<24 | uint64(m.Key[5])<<16 |
				uint64(m.Key[6])<<8 | uint64(m.Key[7]))
			sym := string(m.Key[8:])
			st := stateSerde.Decode(m.Value).(vwapState)
			if cur, ok := snapshot[sym]; !ok || start >= cur.start {
				snapshot[sym] = snap{state: st, start: start}
			}
		}
		if len(msgs) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	fmt.Printf("replayed %d changelog records into a snapshot of %d symbols\n", replayed, len(snapshot))

	// Show the busiest symbols' VWAPs.
	type row struct {
		sym  string
		vwap float64
		size float64
	}
	var rows []row
	for sym, s := range snapshot {
		if s.state.Size > 0 {
			rows = append(rows, row{sym, s.state.Notional / s.state.Size, s.state.Size})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].size > rows[j].size })
	fmt.Println("\ntop symbols by traded size (latest window):")
	for i, r := range rows {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-8s vwap=%9.4f size=%8.0f\n", r.sym, r.vwap, r.size)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
