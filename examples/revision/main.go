// Revision walks through the paper's Figure 6 step by step: a windowed
// count task receiving the record sequence ts=12s, 16s, 14s, 23s, 12s with
// 5-second windows. The out-of-order record at 14s (within grace) revises
// the already-emitted count of window [10,15); the final record at 12s
// arrives after the window's grace expired and is dropped.
//
// Note on grace accounting: this implementation follows Kafka's rule — a
// window [start, end) accepts records until end + grace <= stream time.
// Figure 6 states a "grace period of 10 seconds" and shows window [10,15)
// expiring at stream time 23, which matches end-based grace of 5 seconds
// (15 + 5 <= 23, while 15 + 10 > 23); we use grace=5s to reproduce the
// figure's exact behaviour and flag the difference here.
//
// Run with: go run ./examples/revision
package main

import (
	"fmt"
	"log"
	"time"

	"kstreams/kafka"
	"kstreams/streams"
)

func main() {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	must(cluster.CreateTopic("in", 1, false))
	must(cluster.CreateTopic("out", 1, false))

	b := streams.NewBuilder("fig6")
	b.Stream("in", streams.StringSerde, streams.StringSerde).
		GroupByKey().
		WindowedBy(streams.TimeWindowsOf(5000).WithGrace(5000)).
		Count("counts").
		ToStream().
		ToWith("out", streams.WindowedSerde(streams.StringSerde), streams.Int64Serde, nil)
	app, err := streams.NewApp(b, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce,
		CommitInterval: 30 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	must(app.Start())
	defer app.Close()

	producer, err := cluster.NewProducer(kafka.ProducerConfig{Idempotent: true})
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	consumer := cluster.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer consumer.Close()
	consumer.Assign("out", 0)

	wkSerde := streams.WindowedSerde(streams.StringSerde)
	emitted := 0
	drain := func(wait time.Duration) {
		deadline := time.Now().Add(wait)
		for time.Now().Before(deadline) {
			msgs, err := consumer.Poll()
			if err != nil {
				log.Fatal(err)
			}
			for _, m := range msgs {
				wk := wkSerde.Decode(m.Key).(streams.WindowedKey)
				count := streams.Int64Serde.Decode(m.Value).(int64)
				emitted++
				fmt.Printf("    emitted -> window [%2d,%2d)s count=%d\n",
					wk.Start/1000, wk.End/1000, count)
			}
			if len(msgs) == 0 {
				time.Sleep(5 * time.Millisecond)
			}
		}
	}

	steps := []struct {
		ts   int64
		note string
	}{
		{12000, "(a) in-order record at 12s: window [10,15) count becomes 1"},
		{16000, "(b) in-order record at 16s: window [15,20) count becomes 1"},
		{14000, "(c) OUT-OF-ORDER record at 14s, within grace: window [10,15) REVISED to 2"},
		{23000, "(d) record at 23s: window [20,25) opens; window [10,15) expires (GC)"},
		{12000, "(e) late record at 12s, beyond grace: DROPPED (completeness bound)"},
	}
	for _, s := range steps {
		fmt.Printf("\n>> produce ts=%2ds  %s\n", s.ts/1000, s.note)
		must(producer.Send("in", kafka.Record{Key: []byte("k"), Value: []byte("v"), Timestamp: s.ts}))
		must(producer.Flush())
		drain(300 * time.Millisecond)
	}

	m := app.Metrics()
	fmt.Printf("\nsummary: emitted=%d revisions=%d late-dropped=%d\n",
		emitted, m.Revisions, m.LateDropped)
	if m.LateDropped != 1 || m.Revisions < 1 {
		log.Fatalf("unexpected metrics — expected exactly 1 late drop and >=1 revision: %+v", m)
	}
	fmt.Println("figure 6 semantics reproduced: eager emission, in-grace revision, out-of-grace drop.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
