// Pageviews reproduces the paper's running example (Figures 2 and 3): the
// Kafka Streams DSL program that filters pageview events, re-keys them by
// category (forcing a repartition topic between two sub-topologies), and
// maintains 5-second windowed counts per category.
//
// Run with: go run ./examples/pageviews
package main

import (
	"fmt"
	"log"
	"time"

	"kstreams/internal/workload"
	"kstreams/kafka"
	"kstreams/streams"
)

func main() {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	// Figure 3's partition counts: two source partitions, three sink
	// partitions (the repartition topic inherits the app's parallelism).
	must(cluster.CreateTopic("pageview-events", 2, false))
	must(cluster.CreateTopic("pageview-windowed-counts", 3, false))

	viewSerde := streams.JSONSerde[workload.PageView]()

	// The Figure 2 program, line for line:
	//   builder.stream("pageview-events")
	//     .filter((key, view) -> view.period >= 30000)
	//     .map((key, view) -> new KeyValue(view.category, view))
	//     .groupByKey()
	//     .windowedBy(TimeWindows.of(5000))
	//     .count()
	//     .toStream().to("pageview-windowed-counts")
	b := streams.NewBuilder("pageviews")
	b.Stream("pageview-events", streams.StringSerde, viewSerde).
		Filter(func(k, v any) bool { return v.(workload.PageView).Period >= 30000 }).
		Map(func(k, v any) (any, any) { return v.(workload.PageView).Category, v },
			streams.StringSerde, viewSerde).
		GroupByKey().
		WindowedBy(streams.TimeWindowsOf(5000).WithGrace(10000)).
		Count("pageview-counts").
		ToStream().
		ToWith("pageview-windowed-counts",
			streams.WindowedSerde(streams.StringSerde), streams.Int64Serde, nil)

	app, err := streams.NewApp(b, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce,
		CommitInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== generated topology (Figure 3) ==")
	fmt.Print(app.Describe())

	must(app.Start())
	defer app.Close()

	fmt.Println("== producing pageview events ==")
	producer, err := cluster.NewProducer(kafka.ProducerConfig{Idempotent: true})
	if err != nil {
		log.Fatal(err)
	}
	defer producer.Close()
	gen := workload.NewPageViews(42, 4, 0.1, 3000)
	const total = 2000
	for i := 0; i < total; i++ {
		view, ts := gen.Next()
		must(producer.Send("pageview-events", kafka.Record{
			Key:       []byte(view.UserID),
			Value:     viewSerde.Encode(view),
			Timestamp: ts,
		}))
	}
	must(producer.Flush())

	// Wait until everything is processed, then print a window sample.
	deadline := time.Now().Add(30 * time.Second)
	for app.Metrics().Processed < total && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}

	fmt.Println("== windowed counts per category (latest windows) ==")
	consumer := cluster.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer consumer.Close()
	consumer.Assign("pageview-windowed-counts", 0, 1, 2)
	wkSerde := streams.WindowedSerde(streams.StringSerde)
	type cell struct {
		count  int64
		window streams.WindowedKey
	}
	latest := map[string]cell{}
	readDeadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(readDeadline) {
		msgs, err := consumer.Poll()
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range msgs {
			wk := wkSerde.Decode(m.Key).(streams.WindowedKey)
			cat := wk.Key.(string)
			if cur, ok := latest[cat]; !ok || wk.Start >= cur.window.Start {
				latest[cat] = cell{count: streams.Int64Serde.Decode(m.Value).(int64), window: wk}
			}
		}
		if len(msgs) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	for cat, c := range latest {
		fmt.Printf("  %-14s window [%d,%d) -> %d views\n", cat, c.window.Start, c.window.End, c.count)
	}
	m := app.Metrics()
	fmt.Printf("\nprocessed=%d emitted=%d revisions=%d late-dropped=%d commits=%d\n",
		m.Processed, m.Emitted, m.Revisions, m.LateDropped, m.Commits)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
