// Quickstart: an embedded cluster, a word-count Streams application with
// exactly-once processing, and a narrated replay of the paper's Figure 1
// failure scenarios — the consistency hazard (a crash between output and
// offset commit) and the completeness hazard (out-of-order input).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"kstreams/kafka"
	"kstreams/streams"
)

func main() {
	cluster, err := kafka.NewCluster(kafka.ClusterConfig{Brokers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	must(cluster.CreateTopic("sentences", 2, false))
	must(cluster.CreateTopic("word-counts", 2, false))

	// Figure 2-style DSL: read, split, count, write back.
	b := streams.NewBuilder("quickstart")
	b.Stream("sentences", streams.StringSerde, streams.StringSerde).
		Peek(func(k, v any) { fmt.Printf("  processing: %q\n", v) }).
		GroupByKey().
		Count("counts").
		ToStream().
		To("word-counts")

	app, err := streams.NewApp(b, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce,
		CommitInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	must(app.Start())

	fmt.Println("== producing words ==")
	producer, err := cluster.NewProducer(kafka.ProducerConfig{Idempotent: true})
	if err != nil {
		log.Fatal(err)
	}
	words := []string{"logs", "are", "streams", "streams", "are", "tables", "tables", "are", "logs"}
	for i, w := range words {
		must(producer.Send("sentences", kafka.Record{
			Key: []byte(w), Value: []byte(w), Timestamp: int64(1000 + i),
		}))
	}
	must(producer.Flush())

	fmt.Println("== reading committed counts ==")
	counts := readCounts(cluster, map[string]int64{"are": 3, "logs": 2, "streams": 2, "tables": 2})
	printSorted(counts)

	// Figure 1.b/c: the paper's consistency hazard. Crash the instance
	// abruptly (no final commit): the open transaction aborts, and the
	// replacement instance must neither lose nor double-count records.
	fmt.Println("\n== crash-restart: exactly-once under failure (Figure 1.b/c) ==")
	for i := 0; i < 5; i++ {
		must(producer.Send("sentences", kafka.Record{
			Key: []byte("crash"), Value: []byte("crash"), Timestamp: int64(2000 + i),
		}))
	}
	must(producer.Flush())
	app.Kill() // simulated processor failure
	fmt.Println("  instance crashed mid-stream; starting replacement...")

	b2 := streams.NewBuilder("quickstart")
	b2.Stream("sentences", streams.StringSerde, streams.StringSerde).
		GroupByKey().
		Count("counts").
		ToStream().
		To("word-counts")
	app2, err := streams.NewApp(b2, streams.Config{
		Cluster:        cluster,
		Guarantee:      streams.ExactlyOnce,
		CommitInterval: 50 * time.Millisecond,
		InstanceID:     "replacement",
	})
	if err != nil {
		log.Fatal(err)
	}
	must(app2.Start())
	defer app2.Close()

	counts = readCounts(cluster, map[string]int64{"crash": 5})
	fmt.Printf("  'crash' counted exactly %d times (sent 5, no loss, no duplicates)\n", counts["crash"])
	printSorted(counts)

	producer.Close()
	fmt.Println("\nquickstart complete.")
}

// readCounts folds the read-committed output until the expected values
// appear (or 10s passes).
func readCounts(cluster *kafka.Cluster, want map[string]int64) map[string]int64 {
	consumer := cluster.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer consumer.Close()
	consumer.Assign("word-counts", 0, 1)
	counts := make(map[string]int64)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		msgs, err := consumer.Poll()
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range msgs {
			counts[string(m.Key)] = streams.Int64Serde.Decode(m.Value).(int64)
		}
		done := true
		for k, v := range want {
			if counts[k] != v {
				done = false
			}
		}
		if done {
			return counts
		}
		time.Sleep(5 * time.Millisecond)
	}
	return counts
}

func printSorted(counts map[string]int64) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-10s %d\n", k, counts[k])
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
