GO ?= go

.PHONY: check vet fmt test test-race build

check: vet fmt test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...
