GO ?= go

.PHONY: check vet fmt lint lint-json lint-sarif test test-race test-obs bench-obs bench-matrix bench-matrix-update build sim sim-sweep

check: vet fmt lint test-race bench-obs sim

build:
	$(GO) build ./...

# vet output is captured and sorted so diagnostics are machine-stable
# across runs (package walk order is not guaranteed).
vet:
	@out=$$($(GO) vet ./... 2>&1); st=$$?; \
	if [ -n "$$out" ]; then echo "$$out" | sort; fi; \
	exit $$st

# kslint: the repo's own analyzers (internal/lint) — determinism, locking,
# memory-lifetime, and goroutine-lifecycle invariants. Output is file:line
# sorted by the driver; analysis wall time prints on stderr and the 60s
# budget keeps a rule whose fixpoint regresses into pathology from slowly
# eating the edit-lint loop (`kslint -timings` breaks the time down per
# rule when the budget trips).
lint:
	$(GO) run ./cmd/kslint -root . -maxwall 60s

# lint-json writes the machine-readable findings artifact CI uploads per
# PR (an empty array when clean). Never fails the build: the human-
# readable `lint` target is the gate, this is the record.
lint-json:
	@mkdir -p lint-artifacts
	-$(GO) run ./cmd/kslint -root . -json > lint-artifacts/kslint.json
	@echo "wrote lint-artifacts/kslint.json"

# lint-sarif writes the SARIF 2.1.0 log CI uploads to GitHub code
# scanning. Same never-fails contract as lint-json: the artifact is the
# record of what fired, the `lint` target is the gate.
lint-sarif:
	@mkdir -p lint-artifacts
	-$(GO) run ./cmd/kslint -root . -sarif > lint-artifacts/kslint.sarif
	@echo "wrote lint-artifacts/kslint.sarif"

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

test-obs:
	$(GO) test -race -count=1 ./internal/obs/

# bench-obs proves the disabled/idle registry stays out of the hot path:
# the benchmarks print per-op costs and the guard tests enforce the
# bounds (counter ops, the disabled flight recorder, and the per-record
# watermark tracker).
bench-obs:
	$(GO) test ./internal/obs/ -bench Obs -benchtime 100x -run 'TestCounterOpOverheadGuard|TestFlightRecorderDisabledOverheadGuard' -count=1
	$(GO) test ./internal/core/ -run TestWatermarkOpOverheadGuard -count=1

# bench-matrix: the produce/fetch macro-bench matrix (DESIGN.md §10)
# plus the recovery MTTR pair (DESIGN.md §13). Writes fresh BENCH_*.json
# into bench-artifacts/ and fails on a >10% records/sec regression — or a
# >10% MTTR regression past the 25ms noise floor — against the files
# committed at the repo root. The matrix runs -quick (its baselines are
# quick-profile); the recovery pair runs the full profile because MTTR
# only separates from scheduler jitter with real state to restore, and
# the committed recovery baselines are full-profile. The out and
# baseline dirs must differ: writing into the baseline dir first would
# make the comparison read the fresh numbers back.
bench-matrix:
	$(GO) run ./cmd/ksbench -matrix -quick -out bench-artifacts -against .
	$(GO) run ./cmd/ksbench -recovery -out bench-artifacts -against .

# bench-matrix-update regenerates the committed baseline trajectory.
bench-matrix-update:
	$(GO) run ./cmd/ksbench -matrix -quick -out .
	$(GO) run ./cmd/ksbench -recovery -out .

# sim: the deterministic fault-schedule simulator (DESIGN.md §9) over a
# fixed seed sweep. A failing seed prints its minimal reproducer and the
# replay command. -leakcheck cross-validates the static goroutine-
# lifecycle rules (kslint goleak/chanown, DESIGN.md §12) against the
# dynamic guard: after the sweep's crash/partition/failover churn, every
# simulation goroutine must have exited.
sim:
	$(GO) run ./cmd/kssim -seeds 50 -short -leakcheck

# sim-sweep: the full 50-seed TestSim sweep, run serially. The sweep's
# settle detection is wall-time sensitive; starving it of CPU — whether by
# running 50 simulations in parallel with the rest of the test suite or by
# capping GOMAXPROCS — flakes it (EXPERIMENTS.md documents the reproducer),
# so the sweep gets its own serial invocation: no t.Parallel, -p 1, and
# GOMAXPROCS deliberately left alone. The pattern is anchored: a bare
# TestSim would also match TestSimRebalanceChurn's 100 parallel seeds.
sim-sweep:
	KSTREAMS_SIM_SWEEP=1 $(GO) test -p 1 -run '^TestSim$$' -count=1 ./internal/sim/
