GO ?= go

.PHONY: check vet fmt test test-race test-obs bench-obs build

check: vet fmt test-race bench-obs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

test-obs:
	$(GO) test -race -count=1 ./internal/obs/

# bench-obs proves the disabled/idle registry stays out of the hot path:
# the benchmarks print per-op costs and the guard test enforces the bound.
bench-obs:
	$(GO) test ./internal/obs/ -bench Obs -benchtime 100x -run TestCounterOpOverheadGuard -count=1
