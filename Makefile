GO ?= go

.PHONY: check vet fmt lint test test-race test-obs bench-obs build sim

check: vet fmt lint test-race bench-obs sim

build:
	$(GO) build ./...

# vet output is captured and sorted so diagnostics are machine-stable
# across runs (package walk order is not guaranteed).
vet:
	@out=$$($(GO) vet ./... 2>&1); st=$$?; \
	if [ -n "$$out" ]; then echo "$$out" | sort; fi; \
	exit $$st

# kslint: the repo's own analyzers (internal/lint) — determinism, locking,
# and observability invariants. Output is file:line sorted by the driver.
lint:
	$(GO) run ./cmd/kslint -root .

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

test-race:
	$(GO) test -race -short ./...

test-obs:
	$(GO) test -race -count=1 ./internal/obs/

# bench-obs proves the disabled/idle registry stays out of the hot path:
# the benchmarks print per-op costs and the guard test enforces the bound.
bench-obs:
	$(GO) test ./internal/obs/ -bench Obs -benchtime 100x -run TestCounterOpOverheadGuard -count=1

# sim: the deterministic fault-schedule simulator (DESIGN.md §9) over a
# fixed seed sweep. A failing seed prints its minimal reproducer and the
# replay command.
sim:
	$(GO) run ./cmd/kssim -seeds 50 -short
