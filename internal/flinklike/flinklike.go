// Package flinklike is the checkpoint-based baseline the paper compares
// against in Figure 5.b: a dataflow engine with Chandy-Lamport-style
// aligned checkpoint barriers, incremental per-file state snapshots to a
// simulated S3 object store, and a two-phase-commit transactional Kafka
// sink whose output becomes visible only when the checkpoint completes
// (paper Sections 2.1, 4.3, 7).
//
// The job shape mirrors the paper's evaluation application: read an input
// topic, apply a keyed stateful reduce, and write to an output topic. Each
// input partition runs as one subtask (source -> reduce -> sink fused,
// like the Streams bench app, so barriers align trivially; the alignment
// machinery still gates snapshots on barrier receipt).
package flinklike

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/objstore"
	"kstreams/internal/protocol"
	"kstreams/internal/transport"
)

// Config parameterizes a job.
type Config struct {
	// Net and Controller locate the Kafka cluster used for input/output.
	Net        *transport.Network
	Controller int32

	JobID       string
	InputTopic  string
	OutputTopic string
	Parallelism int32 // = input partition count

	// CheckpointInterval is the barrier cadence (Figure 5.b x-axis).
	CheckpointInterval time.Duration

	// ObjStore receives state snapshots.
	ObjStore *objstore.Store
	// StateFiles is the per-subtask file count over which keyed state is
	// hashed; a checkpoint uploads every file containing a dirty key
	// (incremental, per-file granularity).
	StateFiles int

	// Reduce folds a record value into the key's state.
	Reduce func(state, value []byte) []byte

	// PollInterval paces idle source polls.
	PollInterval time.Duration
}

func (c *Config) fill() {
	if c.StateFiles <= 0 {
		c.StateFiles = 32
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 500 * time.Microsecond
	}
	if c.CheckpointInterval <= 0 {
		c.CheckpointInterval = time.Second
	}
	if c.Reduce == nil {
		c.Reduce = func(state, value []byte) []byte { return value }
	}
}

// Metrics summarizes a job's progress.
type Metrics struct {
	Processed       int64
	Emitted         int64
	Checkpoints     int64
	FilesUploaded   int64
	LastCheckpoint  time.Duration // duration of the last completed checkpoint
	TotalCheckpoint time.Duration // cumulative checkpoint time
}

// Job is a running Flink-like streaming job.
type Job struct {
	cfg Config

	subtasks []*subtask

	stopCh chan struct{}
	wg     sync.WaitGroup

	processed   atomic.Int64
	emitted     atomic.Int64
	checkpoints atomic.Int64
	files       atomic.Int64
	lastCkpt    atomic.Int64 // nanoseconds
	totalCkpt   atomic.Int64
}

// checkpointMeta is the coordinator's completed-checkpoint record.
type checkpointMeta struct {
	ID      int64            `json:"id"`
	Offsets map[int32]int64  `json:"offsets"`
	Files   map[string][]int `json:"files"` // subtask -> uploaded file ids (bookkeeping)
}

// NewJob builds a job; Start launches it.
func NewJob(cfg Config) (*Job, error) {
	cfg.fill()
	if cfg.ObjStore == nil {
		return nil, fmt.Errorf("flinklike: ObjStore required")
	}
	if cfg.Parallelism <= 0 {
		return nil, fmt.Errorf("flinklike: Parallelism required")
	}
	j := &Job{cfg: cfg, stopCh: make(chan struct{})}
	return j, nil
}

// Start restores from the latest completed checkpoint (if any) and runs
// the subtasks and the checkpoint coordinator.
func (j *Job) Start() error {
	restored := j.latestCheckpoint()
	for p := int32(0); p < j.cfg.Parallelism; p++ {
		st, err := newSubtask(j, p, restored)
		if err != nil {
			j.Stop()
			return err
		}
		j.subtasks = append(j.subtasks, st)
	}
	for _, st := range j.subtasks {
		j.wg.Add(1)
		go st.run()
	}
	j.wg.Add(1)
	go j.coordinate(restoredID(restored))
	return nil
}

func restoredID(m *checkpointMeta) int64 {
	if m == nil {
		return 0
	}
	return m.ID
}

// latestCheckpoint loads the newest completed checkpoint metadata.
func (j *Job) latestCheckpoint() *checkpointMeta {
	keys := j.cfg.ObjStore.List(j.cfg.JobID + "/meta/")
	if len(keys) == 0 {
		return nil
	}
	data, ok := j.cfg.ObjStore.Get(keys[len(keys)-1])
	if !ok {
		return nil
	}
	var m checkpointMeta
	if err := json.Unmarshal(data, &m); err != nil {
		return nil
	}
	return &m
}

// coordinate triggers barriers on the interval and finalizes checkpoints:
// once every subtask has acknowledged its snapshot, the checkpoint is
// durable, the metadata is written, and subtasks are told to commit their
// pre-committed transactions (output becomes visible only now — the
// latency coupling of Figure 5.b).
func (j *Job) coordinate(fromID int64) {
	defer j.wg.Done()
	id := fromID
	clock := j.cfg.Net.Clock()
	for {
		select {
		case <-j.stopCh:
			return
		case <-clock.After(j.cfg.CheckpointInterval):
		}
		id++
		start := clock.Now()
		meta := checkpointMeta{ID: id, Offsets: make(map[int32]int64), Files: make(map[string][]int)}
		acks := make(chan snapshotAck, len(j.subtasks))
		for _, st := range j.subtasks {
			st.requestBarrier(id, acks)
		}
		ok := true
		for range j.subtasks {
			select {
			case ack := <-acks:
				meta.Offsets[ack.partition] = ack.offset
				meta.Files[fmt.Sprint(ack.partition)] = ack.files
			case <-j.stopCh:
				return
			}
		}
		if !ok {
			continue
		}
		data, _ := json.Marshal(meta)
		j.cfg.ObjStore.Put(fmt.Sprintf("%s/meta/%020d", j.cfg.JobID, id), data)
		// Notify completion: subtasks commit their pre-committed txns.
		for _, st := range j.subtasks {
			st.notifyComplete(id)
		}
		d := clock.Now().Sub(start)
		j.checkpoints.Add(1)
		j.lastCkpt.Store(int64(d))
		j.totalCkpt.Add(int64(d))
	}
}

// Stop halts the job without a final checkpoint (crash-consistent: the
// next Start restores the last completed checkpoint).
func (j *Job) Stop() {
	select {
	case <-j.stopCh:
	default:
		close(j.stopCh)
	}
	j.wg.Wait()
	for _, st := range j.subtasks {
		st.close()
	}
}

// Metrics snapshots progress counters.
func (j *Job) Metrics() Metrics {
	return Metrics{
		Processed:       j.processed.Load(),
		Emitted:         j.emitted.Load(),
		Checkpoints:     j.checkpoints.Load(),
		FilesUploaded:   j.files.Load(),
		LastCheckpoint:  time.Duration(j.lastCkpt.Load()),
		TotalCheckpoint: time.Duration(j.totalCkpt.Load()),
	}
}

// --- subtask ---

type snapshotAck struct {
	partition int32
	offset    int64
	files     []int
}

type barrierReq struct {
	id   int64
	acks chan snapshotAck
}

// subtask runs one partition's source -> reduce -> 2PC sink pipeline.
type subtask struct {
	j         *Job
	partition int32

	consumer *client.Consumer
	// Two alternating transactional producers, like Flink's producer pool:
	// the pre-committed transaction of checkpoint N stays open on one
	// producer while processing continues on the other.
	producers [2]*client.Producer
	active    int
	// preCommitted holds the producer awaiting notifyCheckpointComplete.
	preCommitted *client.Producer

	state      map[string][]byte
	dirtyFiles map[int]bool
	offset     int64

	barrierCh  chan barrierReq
	completeCh chan int64
}

func newSubtask(j *Job, partition int32, restored *checkpointMeta) (*subtask, error) {
	st := &subtask{
		j:          j,
		partition:  partition,
		state:      make(map[string][]byte),
		dirtyFiles: make(map[int]bool),
		barrierCh:  make(chan barrierReq, 4),
		completeCh: make(chan int64, 4),
	}
	st.consumer = client.NewConsumer(j.cfg.Net, client.ConsumerConfig{
		Controller: j.cfg.Controller,
		Isolation:  protocol.ReadCommitted,
		Reset:      client.ResetEarliest,
	})
	for i := 0; i < 2; i++ {
		p, err := client.NewProducer(j.cfg.Net, client.ProducerConfig{
			Controller:      j.cfg.Controller,
			TransactionalID: fmt.Sprintf("%s-sink-%d-%d", j.cfg.JobID, partition, i),
			TxnTimeout:      30 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		st.producers[i] = p
	}
	// Restore keyed state and the source offset from the checkpoint.
	if restored != nil {
		st.offset = restored.Offsets[partition]
		for _, key := range j.cfg.ObjStore.List(st.filePrefix()) {
			data, ok := j.cfg.ObjStore.Get(key)
			if ok {
				st.loadFile(data)
			}
		}
	}
	tp := protocol.TopicPartition{Topic: j.cfg.InputTopic, Partition: partition}
	st.consumer.Assign(tp)
	st.consumer.Seek(tp, st.offset)
	return st, nil
}

func (st *subtask) filePrefix() string {
	return fmt.Sprintf("%s/state/%d/", st.j.cfg.JobID, st.partition)
}

func (st *subtask) fileOf(key []byte) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32()) % st.j.cfg.StateFiles
}

func (st *subtask) requestBarrier(id int64, acks chan snapshotAck) {
	select {
	case st.barrierCh <- barrierReq{id: id, acks: acks}:
	case <-st.j.stopCh:
	}
}

func (st *subtask) notifyComplete(id int64) {
	select {
	case st.completeCh <- id:
	case <-st.j.stopCh:
	}
}

func (st *subtask) run() {
	defer st.j.wg.Done()
	if err := st.producers[st.active].BeginTxn(); err != nil {
		return
	}
	for {
		select {
		case <-st.j.stopCh:
			return
		case req := <-st.barrierCh:
			// Barrier received (aligned by construction): snapshot state,
			// pre-commit the sink transaction, switch producers.
			st.snapshot(req)
		case id := <-st.completeCh:
			_ = id
			if st.preCommitted != nil {
				// Baseline sim: a failed second-phase commit surfaces in the
				// output consistency check, not here.
				_ = st.preCommitted.CommitTxn()
				st.preCommitted = nil
			}
		default:
			msgs, err := st.consumer.Poll()
			if err != nil {
				return
			}
			if len(msgs) == 0 {
				select {
				case <-st.j.stopCh:
					return
				case <-st.j.cfg.Net.Clock().After(st.j.cfg.PollInterval):
				}
				continue
			}
			for _, m := range msgs {
				st.process(m)
			}
		}
	}
}

func (st *subtask) process(m client.Message) {
	key := string(m.Record.Key)
	next := st.j.cfg.Reduce(st.state[key], m.Record.Value)
	st.state[key] = next
	st.dirtyFiles[st.fileOf(m.Record.Key)] = true
	st.offset = m.Offset + 1
	st.j.processed.Add(1)
	// Emit through the open (uncommitted) transaction; downstream
	// read-committed consumers will not see it until the checkpoint
	// completes and the txn commits.
	// Send failures surface through emitted-vs-consumed accounting.
	_ = st.producers[st.active].SendTo(
		protocol.TopicPartition{Topic: st.j.cfg.OutputTopic, Partition: st.partition % st.outputParts()},
		protocol.Record{Key: m.Record.Key, Value: next, Timestamp: m.Record.Timestamp},
	)
	st.j.emitted.Add(1)
}

var outputPartsCache sync.Map // topic -> int32 per (net is shared in-process)

func (st *subtask) outputParts() int32 {
	if v, ok := outputPartsCache.Load(st.j.cfg.JobID + "/" + st.j.cfg.OutputTopic); ok {
		return v.(int32)
	}
	admin := client.NewAdmin(st.j.cfg.Net, st.j.cfg.Controller, nil)
	defer admin.Close()
	n, err := admin.Partitions(st.j.cfg.OutputTopic)
	if err != nil || n <= 0 {
		n = 1
	}
	outputPartsCache.Store(st.j.cfg.JobID+"/"+st.j.cfg.OutputTopic, n)
	return n
}

// snapshot uploads dirty state files (per-file incremental checkpointing),
// pre-commits the sink transaction, and acknowledges to the coordinator.
func (st *subtask) snapshot(req barrierReq) {
	var uploaded []int
	for fid := range st.dirtyFiles {
		st.j.cfg.ObjStore.Put(fmt.Sprintf("%s%06d", st.filePrefix(), fid), st.encodeFile(fid))
		uploaded = append(uploaded, fid)
		st.j.files.Add(1)
	}
	st.dirtyFiles = make(map[int]bool)

	// Two-phase-commit sink, phase one: flush everything; the transaction
	// stays open until the coordinator confirms the checkpoint.
	cur := st.producers[st.active]
	_ = cur.Flush() // pre-commit failures abort at the CommitTxn phase
	st.preCommitted = cur
	st.active = 1 - st.active
	_ = st.producers[st.active].BeginTxn() // a dead coordinator fails the next send

	select {
	case req.acks <- snapshotAck{partition: st.partition, offset: st.offset, files: uploaded}:
	case <-st.j.stopCh:
	}
}

// encodeFile serializes every key hashed to the file.
func (st *subtask) encodeFile(fid int) []byte {
	var out []byte
	var scratch [4]byte
	for k, v := range st.state {
		if st.fileOf([]byte(k)) != fid {
			continue
		}
		binary.BigEndian.PutUint32(scratch[:], uint32(len(k)))
		out = append(out, scratch[:]...)
		out = append(out, k...)
		binary.BigEndian.PutUint32(scratch[:], uint32(len(v)))
		out = append(out, scratch[:]...)
		out = append(out, v...)
	}
	return out
}

func (st *subtask) loadFile(data []byte) {
	for len(data) >= 4 {
		kn := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if int(kn) > len(data) {
			return
		}
		k := string(data[:kn])
		data = data[kn:]
		if len(data) < 4 {
			return
		}
		vn := binary.BigEndian.Uint32(data[:4])
		data = data[4:]
		if int(vn) > len(data) {
			return
		}
		st.state[k] = append([]byte(nil), data[:vn]...)
		data = data[vn:]
	}
}

func (st *subtask) close() {
	st.consumer.Close()
	for _, p := range st.producers {
		if p != nil {
			p.Close()
		}
	}
}
