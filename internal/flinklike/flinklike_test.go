package flinklike

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/cluster"
	"kstreams/internal/harness"
	"kstreams/internal/objstore"
	"kstreams/internal/protocol"
)

func sumReduce(state, value []byte) []byte {
	var cur int64
	if len(state) == 8 {
		cur = int64(binary.BigEndian.Uint64(state))
	}
	var v int64
	if len(value) == 8 {
		v = int64(binary.BigEndian.Uint64(value))
	}
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(cur+v))
	return out
}

func i64b(v int64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, uint64(v))
	return out
}

func testSetup(t *testing.T, parts int32) (*cluster.Cluster, *objstore.Store) {
	t.Helper()
	// Registered before the cluster's Close so it runs after it: every
	// subtask, coordinator, and client goroutine must be gone by teardown.
	guard := harness.NewLeakGuard()
	t.Cleanup(func() { guard.Check(t, 5*time.Second) })
	c, err := cluster.New(cluster.Config{Brokers: 3, TxnTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	for _, topic := range []string{"fin", "fout"} {
		if err := c.CreateTopic(topic, parts, 0, protocol.TopicConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	return c, objstore.New(objstore.Config{})
}

func produceInts(t *testing.T, c *cluster.Cluster, topic string, keys []string, each int) {
	t.Helper()
	if err := produceIntsErr(c, topic, keys, each); err != nil {
		t.Fatal(err)
	}
}

func produceIntsErr(c *cluster.Cluster, topic string, keys []string, each int) error {
	p, err := client.NewProducer(c.Net(), client.ProducerConfig{Controller: c.Controller(), Idempotent: true})
	if err != nil {
		return err
	}
	defer p.Close()
	for i := 0; i < each; i++ {
		for _, k := range keys {
			if err := p.Send(topic, protocol.Record{
				Key: []byte(k), Value: i64b(1), Timestamp: int64(i),
			}); err != nil {
				return err
			}
		}
	}
	return p.Flush()
}

// readFinal folds the read-committed output into latest-value-per-key.
func readFinal(t *testing.T, c *cluster.Cluster, topic string, parts int32,
	want func(map[string]int64) bool, timeout time.Duration) map[string]int64 {
	t.Helper()
	cons := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Isolation: protocol.ReadCommitted,
	})
	defer cons.Close()
	var tps []protocol.TopicPartition
	for p := int32(0); p < parts; p++ {
		tps = append(tps, protocol.TopicPartition{Topic: topic, Partition: p})
	}
	cons.Assign(tps...)
	out := map[string]int64{}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		msgs, err := cons.Poll()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range msgs {
			out[string(m.Record.Key)] = int64(binary.BigEndian.Uint64(m.Record.Value))
		}
		if want(out) {
			return out
		}
		if len(msgs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	return out
}

func TestCheckpointGatesOutputVisibility(t *testing.T) {
	c, os := testSetup(t, 1)
	job, err := NewJob(Config{
		Net: c.Net(), Controller: c.Controller(),
		JobID: "vis", InputTopic: "fin", OutputTopic: "fout",
		Parallelism: 1, CheckpointInterval: 300 * time.Millisecond,
		ObjStore: os, Reduce: sumReduce,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	produceInts(t, c, "fin", []string{"k"}, 5)

	// Before the first checkpoint completes, read-committed sees nothing.
	early := readFinal(t, c, "fout", 1, func(m map[string]int64) bool { return len(m) > 0 }, 150*time.Millisecond)
	if len(early) != 0 {
		t.Fatalf("output visible before checkpoint: %v", early)
	}
	final := readFinal(t, c, "fout", 1, func(m map[string]int64) bool { return m["k"] == 5 }, 10*time.Second)
	if final["k"] != 5 {
		t.Fatalf("final sum = %v, want 5 (metrics %+v)", final, job.Metrics())
	}
	m := job.Metrics()
	if m.Checkpoints == 0 || m.FilesUploaded == 0 {
		t.Fatalf("no checkpoints recorded: %+v", m)
	}
	puts, _, _ := os.Stats()
	if puts == 0 {
		t.Fatal("no objects uploaded")
	}
}

func TestExactlyOnceAcrossJobRestart(t *testing.T) {
	c, os := testSetup(t, 2)
	mk := func() *Job {
		job, err := NewJob(Config{
			Net: c.Net(), Controller: c.Controller(),
			JobID: "eos", InputTopic: "fin", OutputTopic: "fout",
			Parallelism: 2, CheckpointInterval: 100 * time.Millisecond,
			ObjStore: os, Reduce: sumReduce,
		})
		if err != nil {
			t.Fatal(err)
		}
		return job
	}
	job := mk()
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}

	keys := []string{"a", "b", "c", "d"}
	prodDone := make(chan error, 1)
	go func() {
		prodDone <- produceIntsErr(c, "fin", keys, 100)
	}()

	// Let it checkpoint at least once, then kill it mid-flight.
	time.Sleep(350 * time.Millisecond)
	job.Stop()

	job2 := mk()
	if err := job2.Start(); err != nil {
		t.Fatal(err)
	}
	defer job2.Stop()

	if err := <-prodDone; err != nil {
		t.Fatal(err)
	}
	final := readFinal(t, c, "fout", 2, func(m map[string]int64) bool {
		for _, k := range keys {
			if m[k] != 100 {
				return false
			}
		}
		return true
	}, 30*time.Second)
	for _, k := range keys {
		if final[k] != 100 {
			t.Fatalf("key %s = %d, want 100 (duplicates or loss across restart); metrics=%+v",
				k, final[k], job2.Metrics())
		}
	}
}

func TestIncrementalCheckpointUploadsOnlyDirtyFiles(t *testing.T) {
	c, os := testSetup(t, 1)
	job, err := NewJob(Config{
		Net: c.Net(), Controller: c.Controller(),
		JobID: "inc", InputTopic: "fin", OutputTopic: "fout",
		Parallelism: 1, CheckpointInterval: 100 * time.Millisecond,
		ObjStore: os, Reduce: sumReduce, StateFiles: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	// One hot key: every checkpoint should upload ~1 state file, not 16.
	produceInts(t, c, "fin", []string{"hot"}, 50)
	readFinal(t, c, "fout", 1, func(m map[string]int64) bool { return m["hot"] == 50 }, 10*time.Second)

	m := job.Metrics()
	if m.Checkpoints == 0 {
		t.Fatal("no checkpoints")
	}
	perCkpt := float64(m.FilesUploaded) / float64(m.Checkpoints)
	if perCkpt > 2 {
		t.Fatalf("%.1f files per checkpoint for a single hot key, want ~1 (incremental broken)", perCkpt)
	}
}

func TestCheckpointIntervalDrivesLatency(t *testing.T) {
	// The Figure 5.b mechanism in miniature: end-to-end latency is bounded
	// below by the checkpoint interval, because the 2PC sink only commits
	// on checkpoint completion.
	c, os := testSetup(t, 1)
	interval := 400 * time.Millisecond
	job, err := NewJob(Config{
		Net: c.Net(), Controller: c.Controller(),
		JobID: "lat", InputTopic: "fin", OutputTopic: "fout",
		Parallelism: 1, CheckpointInterval: interval,
		ObjStore: os, Reduce: sumReduce,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	time.Sleep(50 * time.Millisecond) // let the first barrier cycle settle
	start := time.Now()
	produceInts(t, c, "fin", []string{"k"}, 1)
	readFinal(t, c, "fout", 1, func(m map[string]int64) bool { return m["k"] == 1 }, 10*time.Second)
	e2e := time.Since(start)
	if e2e < interval/4 {
		t.Fatalf("end-to-end latency %v implausibly below the checkpoint gate (interval %v)", e2e, interval)
	}
}

func TestJobMetricsAndStateEncoding(t *testing.T) {
	st := &subtask{j: &Job{cfg: Config{StateFiles: 4}}, state: map[string][]byte{}}
	st.j.cfg.fill()
	st.state["alpha"] = []byte("1")
	st.state["beta"] = []byte("22")
	fidA := st.fileOf([]byte("alpha"))
	data := st.encodeFile(fidA)
	st2 := &subtask{j: st.j, state: map[string][]byte{}}
	st2.loadFile(data)
	if string(st2.state["alpha"]) != "1" {
		t.Fatalf("file roundtrip lost alpha: %v", st2.state)
	}
	for k := range st2.state {
		if st.fileOf([]byte(k)) != fidA {
			t.Fatalf("file contains foreign key %q", k)
		}
	}
	// Corrupt/truncated files load what they can without panicking.
	st3 := &subtask{j: st.j, state: map[string][]byte{}}
	st3.loadFile(data[:len(data)-1])
	st3.loadFile([]byte{0, 0})
	_ = fmt.Sprint(st3.state)
}
