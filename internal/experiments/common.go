// Package experiments implements the paper's evaluation: every figure and
// table has a runner here that builds the workload, drives the system, and
// reports the same rows/series the paper shows. cmd/ksbench and the root
// bench_test.go are thin wrappers over these runners (see DESIGN.md §3 for
// the experiment index).
package experiments

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"kstreams/internal/harness"
	"kstreams/internal/workload"
	"kstreams/kafka"
	"kstreams/streams"
)

// ClusterParams are the simulated-testbed knobs shared by experiments.
// The defaults stand in for the paper's three-node i3.large cluster: RPC
// latency makes coordination round-trips cost wall time, append latency
// models broker storage writes.
type ClusterParams struct {
	Brokers       int
	RPCLatency    time.Duration
	Jitter        time.Duration
	AppendLatency time.Duration
	Seed          int64
}

// DefaultCluster mirrors the paper's testbed scale.
func DefaultCluster() ClusterParams {
	return ClusterParams{
		Brokers:       3,
		RPCLatency:    80 * time.Microsecond,
		Jitter:        20 * time.Microsecond,
		AppendLatency: 10 * time.Microsecond,
		Seed:          1,
	}
}

func (p ClusterParams) start() (*kafka.Cluster, error) {
	return kafka.NewCluster(kafka.ClusterConfig{
		Brokers:               p.Brokers,
		RPCLatency:            p.RPCLatency,
		Jitter:                p.Jitter,
		AppendLatency:         p.AppendLatency,
		TxnTimeout:            30 * time.Second,
		GroupRebalanceTimeout: 500 * time.Millisecond,
		Seed:                  p.Seed,
	})
}

// stampValue embeds the record creation wall-clock time so the verifying
// consumer can compute end-to-end latency per record, exactly as the paper
// measures it ("based on the record creation time when produced to the
// input topic, and the consumer reception time", Section 4.3).
func stampValue(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(out[:8], uint64(time.Now().UnixNano()))
	copy(out[8:], payload)
	return out
}

func stampedLatency(value []byte) (time.Duration, bool) {
	if len(value) < 8 {
		return 0, false
	}
	created := int64(binary.BigEndian.Uint64(value[:8]))
	return time.Duration(time.Now().UnixNano() - created), true
}

// keepLatest is the stateful reduce of the paper's benchmark application.
func keepLatest(agg, v any) any { return v }

// reduceApp builds the evaluation application of Section 4.3: read the
// input, reduce per key into a state store, emit to the output topic.
func reduceApp(appID string, in, out string, cluster *kafka.Cluster, g streams.Guarantee, commit time.Duration) (*streams.App, error) {
	b := streams.NewBuilder(appID)
	b.Stream(in, streams.StringSerde, streams.BytesSerde).
		GroupByKey().
		Reduce(keepLatest, appID+"-reduce").
		ToStream().
		To(out)
	return streams.NewApp(b, streams.Config{
		Cluster:           cluster,
		Guarantee:         g,
		CommitInterval:    commit,
		NumThreads:        1,
		SessionTimeout:    5 * time.Second,
		HeartbeatInterval: 200 * time.Millisecond,
		TxnTimeout:        30 * time.Second,
	})
}

// preload writes n keyed, stamped records and returns when durable.
func preload(c *kafka.Cluster, topic string, n int, keys int, seed int64) error {
	p, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 512})
	if err != nil {
		return err
	}
	defer p.Close()
	gen := workload.NewStream(seed, workload.StreamSpec{Keys: keys, ValueBytes: 64})
	for i := 0; i < n; i++ {
		k, v, ts := gen.Next()
		if err := p.Send(topic, kafka.Record{Key: k, Value: stampValue(v), Timestamp: ts}); err != nil {
			return err
		}
	}
	return p.Flush()
}

// awaitProcessed polls app metrics until n records were processed.
func awaitProcessed(app *streams.App, n int64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if app.Metrics().Processed >= n {
			return nil
		}
		if err := app.Err(); err != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("experiments: processed %d of %d before timeout",
				app.Metrics().Processed, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// steadyThroughput measures records/sec between 10%% and 100%% of the
// workload, excluding startup (group join, store restoration, producer
// initialization) from the denominator.
func steadyThroughput(app *streams.App, n int64, timeout time.Duration) (float64, error) {
	warm := n / 10
	if warm < 1 {
		warm = 1
	}
	if err := awaitProcessed(app, warm, timeout); err != nil {
		return 0, err
	}
	start := time.Now()
	base := app.Metrics().Processed
	if err := awaitProcessed(app, n, timeout); err != nil {
		return 0, err
	}
	done := app.Metrics().Processed
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(done-base) / el, nil
}

// measureLatency drives paced stamped records into `in` while a
// read-committed consumer on `out` records per-record end-to-end latency.
func measureLatency(c *kafka.Cluster, in, out string, outParts int32, ratePerSec float64, duration time.Duration, seed int64) (*harness.Latencies, error) {
	lat := &harness.Latencies{}
	stop := make(chan struct{})
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		cons := c.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted, FromLatest: true})
		defer cons.Close()
		ps := make([]int32, outParts)
		for i := range ps {
			ps[i] = int32(i)
		}
		cons.Assign(out, ps...)
		for {
			select {
			case <-stop:
				return
			default:
			}
			msgs, err := cons.Poll()
			if err != nil {
				return
			}
			for _, m := range msgs {
				if d, ok := stampedLatency(m.Value); ok {
					lat.Add(d)
				}
			}
			if len(msgs) == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	p, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 64})
	if err != nil {
		close(stop)
		<-consumerDone
		return nil, err
	}
	gen := workload.NewStream(seed, workload.StreamSpec{Keys: 1000, ValueBytes: 64})
	pacer := harness.NewPacer(ratePerSec)
	end := time.Now().Add(duration)
	for time.Now().Before(end) {
		pacer.Wait()
		k, v, ts := gen.Next()
		p.Send(in, kafka.Record{Key: k, Value: stampValue(v), Timestamp: ts})
		p.Flush()
	}
	p.Close()
	// Give in-flight records one commit interval's worth of slack to land.
	time.Sleep(500 * time.Millisecond)
	close(stop)
	<-consumerDone
	return lat, nil
}

// pacedLoad produces n stamped records at the given rate while the app is
// running (so commits interleave with arrival, unlike preload).
func pacedLoad(c *kafka.Cluster, topic string, n int, ratePerSec float64, seed int64, encode func(i int) ([]byte, []byte, int64)) error {
	p, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 64})
	if err != nil {
		return err
	}
	defer p.Close()
	pacer := harness.NewPacer(ratePerSec)
	for i := 0; i < n; i++ {
		pacer.Wait()
		k, v, ts := encode(i)
		if err := p.Send(topic, kafka.Record{Key: k, Value: v, Timestamp: ts}); err != nil {
			return err
		}
	}
	return p.Flush()
}

// Progress is where experiments narrate; nil means silent.
type Progress struct{ W io.Writer }

func (p *Progress) logf(format string, args ...any) {
	if p != nil && p.W != nil {
		fmt.Fprintf(p.W, format+"\n", args...)
	}
}
