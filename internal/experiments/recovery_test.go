package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func recoveryFixture(standbys int, mttrMs float64) RecoveryResult {
	return RecoveryResult{
		SchemaVersion: BenchSchemaVersion,
		Scenario:      RecoveryScenarioName(RecoveryParams{Standbys: standbys}),
		Params: RecoveryParams{
			Records: 250_000, CatchupRecords: 25_000, Keys: 25_000,
			Partitions: 4, Standbys: standbys,
		},
		MTTRMs:            mttrMs,
		CatchupRecsPerSec: 20_000,
		RestoreRecords:    100_000,
		ChangelogRecords:  200_000,
	}
}

func TestRecoveryBenchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := recoveryFixture(1, 3)
	path := filepath.Join(dir, BenchFileName(want.Scenario))
	if err := writeBenchJSON(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecovery(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCompareRecoveryFlagsMTTRRegression(t *testing.T) {
	dir := t.TempDir()
	base := recoveryFixture(0, 100)
	if err := writeBenchJSON(filepath.Join(dir, BenchFileName(base.Scenario)), base); err != nil {
		t.Fatal(err)
	}

	// Inside the relative tolerance: fine.
	ok := recoveryFixture(0, 109)
	if err := CompareRecoveryAgainst([]RecoveryResult{ok}, dir, nil); err != nil {
		t.Fatalf("within-tolerance result rejected: %v", err)
	}
	// Over 10% but under the absolute noise floor: still fine.
	jitter := recoveryFixture(0, 145)
	if err := CompareRecoveryAgainst([]RecoveryResult{jitter}, dir, nil); err != nil {
		t.Fatalf("sub-floor jitter rejected: %v", err)
	}
	// Over both: regression.
	bad := recoveryFixture(0, 180)
	err := CompareRecoveryAgainst([]RecoveryResult{bad}, dir, nil)
	if err == nil {
		t.Fatal("80% MTTR regression passed the gate")
	}
	if !strings.Contains(err.Error(), "mttr regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}

	// A scenario with no baseline must be able to land.
	fresh := recoveryFixture(1, 3)
	if err := CompareRecoveryAgainst([]RecoveryResult{fresh}, dir, nil); err != nil {
		t.Fatalf("missing baseline rejected: %v", err)
	}

	// Mismatched params are not comparable and must be skipped.
	moved := recoveryFixture(0, 500)
	moved.Params.Keys = 1
	if err := CompareRecoveryAgainst([]RecoveryResult{moved}, dir, nil); err != nil {
		t.Fatalf("param-mismatched result rejected instead of skipped: %v", err)
	}
}

// TestRecoveryQuickScenariosDivisible guards the completion math: waits
// are per-key exact counts, so record totals must divide by key count in
// both profiles.
func TestRecoveryQuickScenariosDivisible(t *testing.T) {
	for _, quick := range []bool{false, true} {
		for _, p := range recoveryScenarios(quick) {
			if p.Records%p.Keys != 0 || p.CatchupRecords%p.Keys != 0 {
				t.Errorf("quick=%v %s: records %d / catchup %d not divisible by keys %d",
					quick, RecoveryScenarioName(p), p.Records, p.CatchupRecords, p.Keys)
			}
		}
	}
}
