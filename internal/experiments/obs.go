package experiments

import (
	"fmt"
	"sort"
	"strings"

	"kstreams/internal/harness"
	"kstreams/internal/obs"
)

// obsLatencyRows names the hot-path histograms the breakdown table reports,
// in display order. Absent entries (e.g. txn phases under at-least-once)
// are skipped.
var obsLatencyRows = []string{
	"broker_append_latency",
	"broker_produce_latency",
	"broker_fetch_latency{role=consumer}",
	"broker_fetch_latency{role=replica}",
	"client_produce_latency",
	"client_fetch_latency",
	"txn_phase_latency{phase=prepare}",
	"txn_phase_latency{phase=markers}",
	"txn_phase_latency{phase=complete}",
	"stream_commit_latency",
	"stream_restore_duration",
}

// ObsBreakdown renders the observability snapshot as the RPC/latency
// breakdown printed under ksbench -metrics: per-RPC-kind counts and
// latency percentiles, then the hot-path latency histograms, then the
// headline counters.
func ObsBreakdown(s *obs.Snapshot) string {
	if s == nil {
		return ""
	}
	var b strings.Builder

	kinds := map[string]bool{}
	for k := range s.Counters {
		if obs.BaseName(k) == "transport_rpc_attempted_total" {
			kinds[obs.LabelValue(k, "kind")] = true
		}
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	rpc := harness.NewTable("RPCs by kind", "kind", "attempted", "delivered", "failed", "p50", "p95", "p99")
	for _, kind := range names {
		lbl := "{kind=" + kind + "}"
		h := s.Histograms["transport_rpc_latency"+lbl]
		rpc.Add(kind,
			s.Counter("transport_rpc_attempted_total"+lbl),
			s.Counter("transport_rpc_delivered_total"+lbl),
			s.Counter("transport_rpc_failed_total"+lbl),
			obs.FormatValue(h.P50, h.Unit),
			obs.FormatValue(h.P95, h.Unit),
			obs.FormatValue(h.P99, h.Unit))
	}
	b.WriteString(rpc.String())
	b.WriteString("\n")

	lat := harness.NewTable("Hot-path latencies", "metric", "count", "mean", "p50", "p95", "p99", "max")
	for _, name := range obsLatencyRows {
		h, ok := s.Histograms[name]
		if !ok || h.Count == 0 {
			continue
		}
		lat.Add(name, h.Count,
			obs.FormatValue(h.Mean, h.Unit),
			obs.FormatValue(h.P50, h.Unit),
			obs.FormatValue(h.P95, h.Unit),
			obs.FormatValue(h.P99, h.Unit),
			obs.FormatValue(h.Max, h.Unit))
	}
	b.WriteString(lat.String())

	fmt.Fprintf(&b, "rpcs=%d commits(txn)=%d aborts=%d markers=%d rebalances=%d stream_commits=%d restore_records=%d restore_bytes=%d\n",
		s.Counter("transport_rpcs_delivered"),
		s.Counter("txn_commits_total"),
		s.Counter("txn_aborts_total"),
		s.SumCounter("txn_marker_partitions_total"),
		s.Counter("group_rebalances_total"),
		s.Histograms["stream_commit_latency"].Count,
		s.Counter("stream_restore_records_total"),
		s.Counter("stream_restore_bytes_total"))
	return b.String()
}
