package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func matrixFixture(scenario string, produceRPS, fetchRPS float64) MatrixResult {
	return MatrixResult{
		SchemaVersion: BenchSchemaVersion,
		Scenario:      scenario,
		Params:        MatrixParams{Partitions: 1, BatchRecords: 256, Acks: "all", Records: 1000, ValueBytes: 100},
		Produce:       PhaseStats{RecordsPerSec: produceRPS},
		Fetch:         PhaseStats{RecordsPerSec: fetchRPS},
	}
}

func TestScenarioNamesAreDerivedFromParams(t *testing.T) {
	names := map[string]bool{}
	for _, p := range matrixScenarios(true) {
		name := ScenarioName(p)
		if names[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		names[name] = true
	}
	if got := ScenarioName(MatrixParams{Partitions: 8, BatchRecords: 16, Acks: "leader"}); got != "p8_b16_acksleader" {
		t.Fatalf("ScenarioName = %q", got)
	}
	if got := ScenarioName(MatrixParams{Partitions: 1, BatchRecords: 256, Acks: "all", EOS: true}); got != "p1_b256_acksall_eos" {
		t.Fatalf("ScenarioName = %q", got)
	}
}

func TestMatrixScenariosCoverAllAxes(t *testing.T) {
	scenarios := matrixScenarios(false)
	var batch, parts, acks, eos bool
	base := scenarios[0]
	for _, p := range scenarios[1:] {
		batch = batch || p.BatchRecords != base.BatchRecords
		parts = parts || p.Partitions != base.Partitions
		acks = acks || p.Acks != base.Acks
		eos = eos || p.EOS != base.EOS
	}
	if !batch || !parts || !acks || !eos {
		t.Fatalf("matrix misses an axis: batch=%v partitions=%v acks=%v eos=%v", batch, parts, acks, eos)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := matrixFixture("p1_b256_acksall", 1000, 2000)
	path := filepath.Join(dir, BenchFileName(want.Scenario))
	if err := writeBenchJSON(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The committed artifact must be timestamp-free and stable: measured
	// durations/lags are fine (event_time_lag_p99_ms), wall-clock stamps
	// and host identity are not — they would make every run a diff.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"timestamp", "generated", "host", "date", "_at\""} {
		if strings.Contains(strings.ToLower(string(buf)), banned) {
			t.Fatalf("bench JSON contains unstable field %q:\n%s", banned, buf)
		}
	}
}

func TestCompareAgainstFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	base := matrixFixture("p1_b256_acksall", 1000, 2000)
	if err := writeBenchJSON(filepath.Join(dir, BenchFileName(base.Scenario)), base); err != nil {
		t.Fatal(err)
	}

	// Within tolerance (−10% exactly is allowed; the gate is strict-greater).
	ok := matrixFixture("p1_b256_acksall", 900, 1800)
	if err := CompareAgainst([]MatrixResult{ok}, dir, nil); err != nil {
		t.Fatalf("within-tolerance result rejected: %v", err)
	}

	bad := matrixFixture("p1_b256_acksall", 1000, 1700)
	err := CompareAgainst([]MatrixResult{bad}, dir, nil)
	if err == nil {
		t.Fatal("15% fetch regression passed the gate")
	}
	if !strings.Contains(err.Error(), "fetch regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestMedianRepAndSpread(t *testing.T) {
	// Phases pick their medians independently: the produce median can
	// come from a different rep than the fetch median.
	reps := []MatrixResult{
		matrixFixture("s", 900, 2200),
		matrixFixture("s", 1000, 1800),
		matrixFixture("s", 1400, 2000),
	}
	produce := func(r MatrixResult) float64 { return r.Produce.RecordsPerSec }
	fetch := func(r MatrixResult) float64 { return r.Fetch.RecordsPerSec }
	if got := produce(reps[medianRep(reps, produce)]); got != 1000 {
		t.Fatalf("produce median = %v, want 1000", got)
	}
	if got := fetch(reps[medianRep(reps, fetch)]); got != 2000 {
		t.Fatalf("fetch median = %v, want 2000", got)
	}
	if got := spreadPct(reps, produce); got != 50 { // (1400−900)/1000
		t.Fatalf("produce spread = %v%%, want 50", got)
	}
	if got := spreadPct(reps, fetch); got != 20 { // (2200−1800)/2000
		t.Fatalf("fetch spread = %v%%, want 20", got)
	}
}

func TestBenchSpreadFieldIsAdditive(t *testing.T) {
	// run_spread_pct rides on schema v1: it serializes when set, is
	// omitted when zero (so pre-spread baselines and fresh files diff
	// cleanly), and a baseline without it still loads and compares.
	dir := t.TempDir()
	res := matrixFixture("p1_b256_acksall", 1000, 2000)
	res.Produce.RunSpreadPct = 3.5
	path := filepath.Join(dir, BenchFileName(res.Scenario))
	if err := writeBenchJSON(path, res); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(buf), "run_spread_pct"); got != 1 {
		t.Fatalf("want exactly the produce spread serialized (fetch is zero), got %d occurrences:\n%s", got, buf)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != 1 || got.Produce.RunSpreadPct != 3.5 {
		t.Fatalf("schema must stay v1 with the spread intact: %+v", got)
	}
	// The gate compares records/sec only; spread never fails a build.
	fresh := matrixFixture("p1_b256_acksall", 1000, 2000)
	fresh.Fetch.RunSpreadPct = 99
	if err := CompareAgainst([]MatrixResult{fresh}, dir, nil); err != nil {
		t.Fatalf("spread differences must not gate: %v", err)
	}
}

func TestCompareAgainstSkipsIncomparable(t *testing.T) {
	dir := t.TempDir()
	base := matrixFixture("p1_b256_acksall", 1000, 2000)
	base.Params.Records = 999 // params differ from the fresh run below
	if err := writeBenchJSON(filepath.Join(dir, BenchFileName(base.Scenario)), base); err != nil {
		t.Fatal(err)
	}
	fresh := matrixFixture("p1_b256_acksall", 10, 10) // huge drop, but incomparable
	if err := CompareAgainst([]MatrixResult{fresh}, dir, nil); err != nil {
		t.Fatalf("incomparable baseline should be skipped: %v", err)
	}
	// No baseline at all: also skipped.
	missing := matrixFixture("p9_b9_acksall", 10, 10)
	if err := CompareAgainst([]MatrixResult{missing}, dir, nil); err != nil {
		t.Fatalf("missing baseline should be skipped: %v", err)
	}
}
