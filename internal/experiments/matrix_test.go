package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func matrixFixture(scenario string, produceRPS, fetchRPS float64) MatrixResult {
	return MatrixResult{
		SchemaVersion: BenchSchemaVersion,
		Scenario:      scenario,
		Params:        MatrixParams{Partitions: 1, BatchRecords: 256, Acks: "all", Records: 1000, ValueBytes: 100},
		Produce:       PhaseStats{RecordsPerSec: produceRPS},
		Fetch:         PhaseStats{RecordsPerSec: fetchRPS},
	}
}

func TestScenarioNamesAreDerivedFromParams(t *testing.T) {
	names := map[string]bool{}
	for _, p := range matrixScenarios(true) {
		name := ScenarioName(p)
		if names[name] {
			t.Fatalf("duplicate scenario name %q", name)
		}
		names[name] = true
	}
	if got := ScenarioName(MatrixParams{Partitions: 8, BatchRecords: 16, Acks: "leader"}); got != "p8_b16_acksleader" {
		t.Fatalf("ScenarioName = %q", got)
	}
	if got := ScenarioName(MatrixParams{Partitions: 1, BatchRecords: 256, Acks: "all", EOS: true}); got != "p1_b256_acksall_eos" {
		t.Fatalf("ScenarioName = %q", got)
	}
}

func TestMatrixScenariosCoverAllAxes(t *testing.T) {
	scenarios := matrixScenarios(false)
	var batch, parts, acks, eos bool
	base := scenarios[0]
	for _, p := range scenarios[1:] {
		batch = batch || p.BatchRecords != base.BatchRecords
		parts = parts || p.Partitions != base.Partitions
		acks = acks || p.Acks != base.Acks
		eos = eos || p.EOS != base.EOS
	}
	if !batch || !parts || !acks || !eos {
		t.Fatalf("matrix misses an axis: batch=%v partitions=%v acks=%v eos=%v", batch, parts, acks, eos)
	}
}

func TestBenchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := matrixFixture("p1_b256_acksall", 1000, 2000)
	path := filepath.Join(dir, BenchFileName(want.Scenario))
	if err := writeBench(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// The committed artifact must be timestamp-free and stable: measured
	// durations/lags are fine (event_time_lag_p99_ms), wall-clock stamps
	// and host identity are not — they would make every run a diff.
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, banned := range []string{"timestamp", "generated", "host", "date", "_at\""} {
		if strings.Contains(strings.ToLower(string(buf)), banned) {
			t.Fatalf("bench JSON contains unstable field %q:\n%s", banned, buf)
		}
	}
}

func TestCompareAgainstFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	base := matrixFixture("p1_b256_acksall", 1000, 2000)
	if err := writeBench(filepath.Join(dir, BenchFileName(base.Scenario)), base); err != nil {
		t.Fatal(err)
	}

	// Within tolerance (−10% exactly is allowed; the gate is strict-greater).
	ok := matrixFixture("p1_b256_acksall", 900, 1800)
	if err := CompareAgainst([]MatrixResult{ok}, dir, nil); err != nil {
		t.Fatalf("within-tolerance result rejected: %v", err)
	}

	bad := matrixFixture("p1_b256_acksall", 1000, 1700)
	err := CompareAgainst([]MatrixResult{bad}, dir, nil)
	if err == nil {
		t.Fatal("15% fetch regression passed the gate")
	}
	if !strings.Contains(err.Error(), "fetch regressed") {
		t.Fatalf("unexpected gate error: %v", err)
	}
}

func TestCompareAgainstSkipsIncomparable(t *testing.T) {
	dir := t.TempDir()
	base := matrixFixture("p1_b256_acksall", 1000, 2000)
	base.Params.Records = 999 // params differ from the fresh run below
	if err := writeBench(filepath.Join(dir, BenchFileName(base.Scenario)), base); err != nil {
		t.Fatal(err)
	}
	fresh := matrixFixture("p1_b256_acksall", 10, 10) // huge drop, but incomparable
	if err := CompareAgainst([]MatrixResult{fresh}, dir, nil); err != nil {
		t.Fatalf("incomparable baseline should be skipped: %v", err)
	}
	// No baseline at all: also skipped.
	missing := matrixFixture("p9_b9_acksall", 10, 10)
	if err := CompareAgainst([]MatrixResult{missing}, dir, nil); err != nil {
		t.Fatalf("missing baseline should be skipped: %v", err)
	}
}
