package experiments

import (
	"fmt"
	"time"

	"kstreams/internal/harness"
	"kstreams/internal/workload"
	"kstreams/kafka"
	"kstreams/streams"
)

// --- Ablation: grace period vs completeness (Section 5 / Figure 6) ---

// GraceParams sweeps the per-operator grace period against an out-of-order
// workload, measuring the completeness trade-off: longer grace accepts
// more stragglers (fewer drops, more revisions) at the cost of more
// retained state.
type GraceParams struct {
	Cluster            ClusterParams
	Records            int
	OutOfOrderFraction float64
	MaxDelayMs         int64
	WindowMs           int64
	Graces             []int64 // ms
}

// DefaultGrace returns the sweep used in EXPERIMENTS.md.
func DefaultGrace() GraceParams {
	return GraceParams{
		Cluster:            DefaultCluster(),
		Records:            20000,
		OutOfOrderFraction: 0.2,
		MaxDelayMs:         2000,
		WindowMs:           1000,
		Graces:             []int64{0, 100, 500, 1000, 2000, 5000},
	}
}

// GraceRow is one grace setting's outcome.
type GraceRow struct {
	GraceMs     int64
	LateDropped int64
	DroppedPct  float64
	Revisions   int64
	Emitted     int64
}

// RunGrace sweeps grace periods.
func RunGrace(p GraceParams, prog *Progress) ([]GraceRow, error) {
	var rows []GraceRow
	for _, grace := range p.Graces {
		c, err := p.Cluster.start()
		if err != nil {
			return nil, err
		}
		if err := c.CreateTopic("grace-in", 4, false); err != nil {
			c.Close()
			return nil, err
		}
		if err := c.CreateTopic("grace-out", 4, false); err != nil {
			c.Close()
			return nil, err
		}
		b := streams.NewBuilder("grace")
		b.Stream("grace-in", streams.StringSerde, streams.BytesSerde).
			GroupByKey().
			WindowedBy(streams.TimeWindows{SizeMs: p.WindowMs, AdvanceMs: p.WindowMs, GraceMs: grace}).
			Count("grace-count").
			ToStream().
			ToWith("grace-out", streams.WindowedSerde(streams.StringSerde), streams.Int64Serde, nil)
		app, err := streams.NewApp(b, streams.Config{
			Cluster: c, Guarantee: streams.ExactlyOnce,
			CommitInterval: 100 * time.Millisecond, NumThreads: 1,
			SessionTimeout: 5 * time.Second, HeartbeatInterval: 200 * time.Millisecond,
			TxnTimeout: 30 * time.Second,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		prod, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 512})
		if err != nil {
			c.Close()
			return nil, err
		}
		gen := workload.NewStream(p.Cluster.Seed, workload.StreamSpec{
			Keys: 200, OutOfOrderFraction: p.OutOfOrderFraction, MaxDelayMs: p.MaxDelayMs,
		})
		for i := 0; i < p.Records; i++ {
			k, v, ts := gen.Next()
			prod.Send("grace-in", kafka.Record{Key: k, Value: v, Timestamp: ts})
		}
		if err := prod.Flush(); err != nil {
			c.Close()
			return nil, err
		}
		prod.Close()
		if err := app.Start(); err != nil {
			c.Close()
			return nil, err
		}
		if err := awaitProcessed(app, int64(p.Records), 10*time.Minute); err != nil {
			app.Close()
			c.Close()
			return nil, err
		}
		m := app.Metrics()
		app.Close()
		c.Close()
		row := GraceRow{
			GraceMs:     grace,
			LateDropped: m.LateDropped,
			DroppedPct:  float64(m.LateDropped) / float64(p.Records) * 100,
			Revisions:   m.Revisions,
			Emitted:     m.Emitted,
		}
		prog.logf("grace=%dms: dropped %d (%.2f%%), revisions %d",
			grace, row.LateDropped, row.DroppedPct, row.Revisions)
		rows = append(rows, row)
	}
	return rows, nil
}

// GraceTable renders the completeness sweep.
func GraceTable(rows []GraceRow) *harness.Table {
	t := harness.NewTable("Ablation — grace period vs completeness (20% out-of-order input)",
		"grace", "late dropped", "dropped %", "revisions", "emitted")
	for _, r := range rows {
		t.Add(fmt.Sprintf("%dms", r.GraceMs), r.LateDropped, r.DroppedPct, r.Revisions, r.Emitted)
	}
	return t
}

// --- Ablation: suppression on/off (Section 5 / 6.2) ---

// SuppressionResult compares windowed-aggregate output volume with eager
// revision emission vs a suppress operator that emits one final result.
type SuppressionResult struct {
	EagerOutputs      int64
	SuppressedOutputs int64
	ReductionPct      float64
}

// RunSuppression measures the consolidation.
func RunSuppression(cp ClusterParams, records int, prog *Progress) (*SuppressionResult, error) {
	run := func(suppress bool) (int64, error) {
		c, err := cp.start()
		if err != nil {
			return 0, err
		}
		defer c.Close()
		for _, topic := range []string{"sup-in", "sup-out"} {
			if err := c.CreateTopic(topic, 2, false); err != nil {
				return 0, err
			}
		}
		b := streams.NewBuilder("sup")
		wt := b.Stream("sup-in", streams.StringSerde, streams.BytesSerde).
			GroupByKey().
			WindowedBy(streams.TimeWindowsOf(1000).WithGrace(500)).
			Count("sup-count")
		if suppress {
			wt = wt.Suppress("sup-buffer")
		}
		wt.ToStream().ToWith("sup-out", streams.WindowedSerde(streams.StringSerde), streams.Int64Serde, nil)
		app, err := streams.NewApp(b, streams.Config{
			Cluster: c, Guarantee: streams.ExactlyOnce,
			CommitInterval: 100 * time.Millisecond, NumThreads: 1,
			SessionTimeout: 5 * time.Second, HeartbeatInterval: 200 * time.Millisecond,
			TxnTimeout: 30 * time.Second,
		})
		if err != nil {
			return 0, err
		}
		prod, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 512})
		if err != nil {
			return 0, err
		}
		gen := workload.NewStream(cp.Seed, workload.StreamSpec{Keys: 20, OutOfOrderFraction: 0.1, MaxDelayMs: 400})
		for i := 0; i < records; i++ {
			k, v, ts := gen.Next()
			prod.Send("sup-in", kafka.Record{Key: k, Value: v, Timestamp: ts})
		}
		if err := prod.Flush(); err != nil {
			return 0, err
		}
		prod.Close()
		if err := app.Start(); err != nil {
			return 0, err
		}
		if err := awaitProcessed(app, int64(records), 10*time.Minute); err != nil {
			app.Close()
			return 0, err
		}
		app.Close()
		return app.Metrics().Emitted, nil
	}
	eager, err := run(false)
	if err != nil {
		return nil, err
	}
	sup, err := run(true)
	if err != nil {
		return nil, err
	}
	res := &SuppressionResult{EagerOutputs: eager, SuppressedOutputs: sup}
	if eager > 0 {
		res.ReductionPct = float64(eager-sup) / float64(eager) * 100
	}
	prog.logf("suppression: eager=%d suppressed=%d (%.1f%% fewer)", eager, sup, res.ReductionPct)
	return res, nil
}

// SuppressionTable renders the suppression ablation.
func SuppressionTable(r *SuppressionResult) *harness.Table {
	t := harness.NewTable("Ablation — suppression of intermediate revisions (Sections 5, 6.2)",
		"mode", "output records")
	t.Add("eager revisions", r.EagerOutputs)
	t.Add("suppressed (emit-final)", r.SuppressedOutputs)
	t.Add("reduction %", r.ReductionPct)
	return t
}

// --- Ablation: eos-v1 (per-task) vs eos-v2 (per-thread) producers ---

// EOSVersionRow compares the transactional-producer scaling of the two EOS
// modes (the Kafka 2.6 change discussed in Section 6.1).
type EOSVersionRow struct {
	Mode       string
	Tasks      int
	Throughput float64
	RPCs       int64
}

// RunEOSVersions runs the reduce app under both EOS modes and reports
// throughput and total RPC counts (coordination overhead).
func RunEOSVersions(cp ClusterParams, records int, partitions int32, prog *Progress) ([]EOSVersionRow, error) {
	var rows []EOSVersionRow
	for _, mode := range []streams.Guarantee{streams.ExactlyOnceV2, streams.ExactlyOnceV1} {
		c, err := cp.start()
		if err != nil {
			return nil, err
		}
		if err := c.CreateTopic("ver-in", partitions, false); err != nil {
			c.Close()
			return nil, err
		}
		if err := c.CreateTopic("ver-out", partitions, false); err != nil {
			c.Close()
			return nil, err
		}
		if err := preload(c, "ver-in", records, 1000, cp.Seed); err != nil {
			c.Close()
			return nil, err
		}
		app, err := reduceApp("ver", "ver-in", "ver-out", c, mode, 100*time.Millisecond)
		if err != nil {
			c.Close()
			return nil, err
		}
		rpcBefore := c.RPCCount()
		start := time.Now()
		if err := app.Start(); err != nil {
			c.Close()
			return nil, err
		}
		if err := awaitProcessed(app, int64(records), 10*time.Minute); err != nil {
			app.Close()
			c.Close()
			return nil, err
		}
		tput := float64(records) / time.Since(start).Seconds()
		app.Close()
		rpcs := c.RPCCount() - rpcBefore
		c.Close()
		rows = append(rows, EOSVersionRow{
			Mode: mode.String(), Tasks: int(partitions), Throughput: tput, RPCs: rpcs,
		})
		prog.logf("%s: %.0f msg/s, %d RPCs", mode, tput, rpcs)
	}
	return rows, nil
}

// EOSVersionTable renders the producer-scaling ablation.
func EOSVersionTable(rows []EOSVersionRow) *harness.Table {
	t := harness.NewTable("Ablation — eos-v2 (per-thread producer) vs eos-v1 (per-task producer)",
		"mode", "tasks", "msg/s", "total RPCs")
	for _, r := range rows {
		t.Add(r.Mode, r.Tasks, r.Throughput, r.RPCs)
	}
	return t
}

// --- Ablation: idempotence on/off (Section 4.3: "idempotence ... adds
// negligible overhead") ---

// IdempotenceRow compares raw produce throughput.
type IdempotenceRow struct {
	Mode       string
	Throughput float64
}

// RunIdempotence measures plain produce throughput with and without
// idempotent sequencing.
func RunIdempotence(cp ClusterParams, records int, prog *Progress) ([]IdempotenceRow, error) {
	var rows []IdempotenceRow
	for _, idem := range []bool{false, true} {
		c, err := cp.start()
		if err != nil {
			return nil, err
		}
		if err := c.CreateTopic("idem", 4, false); err != nil {
			c.Close()
			return nil, err
		}
		p, err := c.NewProducer(kafka.ProducerConfig{Idempotent: idem, BatchRecords: 256})
		if err != nil {
			c.Close()
			return nil, err
		}
		gen := workload.NewStream(cp.Seed, workload.StreamSpec{Keys: 1000, ValueBytes: 64})
		// Warm the produce path (leader metadata, segment allocation) so
		// both modes measure steady state.
		for i := 0; i < 2000; i++ {
			k, v, ts := gen.Next()
			p.Send("idem", kafka.Record{Key: k, Value: v, Timestamp: ts})
		}
		if err := p.Flush(); err != nil {
			c.Close()
			return nil, err
		}
		start := time.Now()
		for i := 0; i < records; i++ {
			k, v, ts := gen.Next()
			p.Send("idem", kafka.Record{Key: k, Value: v, Timestamp: ts})
		}
		if err := p.Flush(); err != nil {
			c.Close()
			return nil, err
		}
		tput := float64(records) / time.Since(start).Seconds()
		p.Close()
		c.Close()
		mode := "plain"
		if idem {
			mode = "idempotent"
		}
		rows = append(rows, IdempotenceRow{Mode: mode, Throughput: tput})
		prog.logf("produce %s: %.0f msg/s", mode, tput)
	}
	return rows, nil
}

// IdempotenceTable renders the produce-path ablation.
func IdempotenceTable(rows []IdempotenceRow) *harness.Table {
	t := harness.NewTable("Ablation — idempotent producer overhead (paper: negligible)",
		"mode", "msg/s")
	for _, r := range rows {
		t.Add(r.Mode, r.Throughput)
	}
	return t
}
