package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"kstreams/internal/flinklike"
	"kstreams/internal/harness"
	"kstreams/internal/objstore"
	"kstreams/internal/obs"
	"kstreams/streams"
)

// Fig5aParams configures the Figure 5.a reproduction: exactly-once impact
// vs the number of output (transactional) partitions, commit interval
// fixed at 100ms.
type Fig5aParams struct {
	Cluster        ClusterParams
	Partitions     []int32 // paper: 1, 10, 100, 1000
	Records        int     // throughput phase size
	CommitInterval time.Duration
	LatencyRate    float64 // paced records/sec for the latency phase
	LatencyWindow  time.Duration
}

// DefaultFig5a returns paper-faithful parameters (scaled record counts).
func DefaultFig5a() Fig5aParams {
	return Fig5aParams{
		Cluster:        DefaultCluster(),
		Partitions:     []int32{1, 10, 100, 1000},
		Records:        150000,
		CommitInterval: 100 * time.Millisecond,
		LatencyRate:    300,
		LatencyWindow:  2 * time.Second,
	}
}

// Fig5aRow is one x-axis point of Figure 5.a.
type Fig5aRow struct {
	Partitions     int32
	EOSThroughput  float64 // records/sec
	ALOSThroughput float64
	EOSLatency     time.Duration // mean end-to-end
	ALOSLatency    time.Duration
	OverheadPct    float64 // (ALOS-EOS)/ALOS * 100
	// Obs is the EOS run's final metrics snapshot: per-RPC-kind counts,
	// txn phase latencies, and stream commit/restore stats for this point.
	Obs *obs.Snapshot
}

// RunFig5a measures EOS vs ALOS throughput and latency per output
// partition count.
func RunFig5a(p Fig5aParams, prog *Progress) ([]Fig5aRow, error) {
	var rows []Fig5aRow
	for _, parts := range p.Partitions {
		row := Fig5aRow{Partitions: parts}
		for _, g := range []streams.Guarantee{streams.ExactlyOnce, streams.AtLeastOnce} {
			tput, lat, snap, err := runReduceBench(p.Cluster, parts, g, p.CommitInterval,
				p.Records, p.LatencyRate, p.LatencyWindow, prog)
			if err != nil {
				return nil, fmt.Errorf("fig5a partitions=%d %v: %w", parts, g, err)
			}
			if g == streams.AtLeastOnce {
				row.ALOSThroughput = tput
				row.ALOSLatency = lat.Percentile(50)
			} else {
				row.EOSThroughput = tput
				row.EOSLatency = lat.Percentile(50)
				row.Obs = snap
			}
		}
		if row.ALOSThroughput > 0 {
			row.OverheadPct = (row.ALOSThroughput - row.EOSThroughput) / row.ALOSThroughput * 100
		}
		prog.logf("fig5a partitions=%d: EOS %.0f msg/s %v | ALOS %.0f msg/s %v | overhead %.1f%%",
			parts, row.EOSThroughput, row.EOSLatency.Round(time.Millisecond),
			row.ALOSThroughput, row.ALOSLatency.Round(time.Millisecond), row.OverheadPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// runReduceBench runs one configuration: a throughput phase over preloaded
// records, then a paced latency phase.
func runReduceBench(cp ClusterParams, outParts int32, g streams.Guarantee, commit time.Duration,
	records int, latRate float64, latWindow time.Duration, prog *Progress) (float64, *harness.Latencies, *obs.Snapshot, error) {
	c, err := cp.start()
	if err != nil {
		return 0, nil, nil, err
	}
	defer c.Close()
	if err := c.CreateTopic("bench-in", 4, false); err != nil {
		return 0, nil, nil, err
	}
	if err := c.CreateTopic("bench-out", outParts, false); err != nil {
		return 0, nil, nil, err
	}
	// Spread keys over enough values that every output partition gets
	// traffic (the transaction registers all of them).
	keys := int(outParts) * 4
	if keys < 1000 {
		keys = 1000
	}
	if err := preload(c, "bench-in", records, keys, cp.Seed); err != nil {
		return 0, nil, nil, err
	}

	app, err := reduceApp("bench", "bench-in", "bench-out", c, g, commit)
	if err != nil {
		return 0, nil, nil, err
	}
	if err := app.Start(); err != nil {
		return 0, nil, nil, err
	}
	defer app.Close()
	tput, err := steadyThroughput(app, int64(records), 10*time.Minute)
	if err != nil {
		return 0, nil, nil, err
	}

	// Let the commit/marker backlog from the saturation phase drain before
	// measuring steady-state end-to-end latency.
	settle := 2 * commit
	if settle < time.Second {
		settle = time.Second
	}
	time.Sleep(settle)
	lat, err := measureLatency(c, "bench-in", "bench-out", outParts, latRate, latWindow, cp.Seed+1)
	if err != nil {
		return 0, nil, nil, err
	}
	return tput, lat, c.ObsSnapshot(), nil
}

// Fig5aTable renders the experiment like the paper's figure axes.
func Fig5aTable(rows []Fig5aRow) *harness.Table {
	t := harness.NewTable("Figure 5.a — exactly-once impact vs number of partitions (commit interval 100ms)",
		"partitions", "EOS msg/s", "ALOS msg/s", "overhead %", "EOS latency", "ALOS latency")
	for _, r := range rows {
		t.Add(r.Partitions, r.EOSThroughput, r.ALOSThroughput, r.OverheadPct, r.EOSLatency, r.ALOSLatency)
	}
	return t
}

// --- Figure 5.b ---

// Fig5bParams configures the commit/checkpoint interval sweep with the
// Flink-like baseline, 10 output partitions.
type Fig5bParams struct {
	Cluster       ClusterParams
	Intervals     []time.Duration // paper: 10ms .. 10s
	Records       int
	LatencyRate   float64
	LatencyWindow time.Duration
	// S3PutLatency is the per-object checkpoint cost (the per-file
	// granularity the paper blames for the baseline's latency gap).
	S3PutLatency time.Duration
}

// DefaultFig5b returns paper-faithful parameters.
func DefaultFig5b() Fig5bParams {
	return Fig5bParams{
		Cluster:       DefaultCluster(),
		Intervals:     []time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second, 10 * time.Second},
		Records:       100000,
		LatencyRate:   300,
		LatencyWindow: 2 * time.Second,
		S3PutLatency:  25 * time.Millisecond,
	}
}

// Fig5bRow is one x-axis point of Figure 5.b.
type Fig5bRow struct {
	Interval        time.Duration
	StreamsTput     float64
	StreamsLatency  time.Duration
	FlinkTput       float64
	FlinkLatency    time.Duration
	FlinkFilesPerCk float64
	// Obs is the Streams run's final metrics snapshot for this interval.
	Obs *obs.Snapshot
}

// RunFig5b compares Streams-EOS against the Flink-like checkpointing
// baseline across commit/checkpoint intervals.
func RunFig5b(p Fig5bParams, prog *Progress) ([]Fig5bRow, error) {
	var rows []Fig5bRow
	for _, interval := range p.Intervals {
		row := Fig5bRow{Interval: interval}
		window := p.LatencyWindow
		if 3*interval > window {
			window = 3 * interval
		}

		tput, lat, snap, err := runReduceBench(p.Cluster, 10, streams.ExactlyOnce, interval,
			p.Records, p.LatencyRate, window, prog)
		if err != nil {
			return nil, fmt.Errorf("fig5b streams interval=%v: %w", interval, err)
		}
		row.StreamsTput = tput
		row.StreamsLatency = lat.Percentile(50)
		row.Obs = snap

		ftput, flat, files, err := runFlinkBench(p, interval, window, prog)
		if err != nil {
			return nil, fmt.Errorf("fig5b flink interval=%v: %w", interval, err)
		}
		row.FlinkTput = ftput
		row.FlinkLatency = flat.Percentile(50)
		row.FlinkFilesPerCk = files

		prog.logf("fig5b interval=%v: Streams %.0f msg/s %v | Flink-like %.0f msg/s %v (%.1f files/ckpt)",
			interval, row.StreamsTput, row.StreamsLatency.Round(time.Millisecond),
			row.FlinkTput, row.FlinkLatency.Round(time.Millisecond), row.FlinkFilesPerCk)
		rows = append(rows, row)
	}
	return rows, nil
}

func runFlinkBench(p Fig5bParams, interval, latWindow time.Duration, prog *Progress) (float64, *harness.Latencies, float64, error) {
	c, err := p.Cluster.start()
	if err != nil {
		return 0, nil, 0, err
	}
	defer c.Close()
	if err := c.CreateTopic("bench-in", 4, false); err != nil {
		return 0, nil, 0, err
	}
	if err := c.CreateTopic("bench-out", 10, false); err != nil {
		return 0, nil, 0, err
	}
	if err := preload(c, "bench-in", p.Records, 1000, p.Cluster.Seed); err != nil {
		return 0, nil, 0, err
	}
	os := objstore.New(objstore.Config{PutLatency: p.S3PutLatency, PerKB: 20 * time.Microsecond})
	job, err := flinklike.NewJob(flinklike.Config{
		Net: c.Net(), Controller: c.Controller(),
		JobID: "flink-bench", InputTopic: "bench-in", OutputTopic: "bench-out",
		Parallelism: 4, CheckpointInterval: interval,
		ObjStore: os,
		Reduce:   func(state, value []byte) []byte { return value }, // keep latest
	})
	if err != nil {
		return 0, nil, 0, err
	}
	if err := job.Start(); err != nil {
		return 0, nil, 0, err
	}
	defer job.Stop()
	await := func(n int64) error {
		deadline := time.Now().Add(10 * time.Minute)
		for job.Metrics().Processed < n {
			if time.Now().After(deadline) {
				return fmt.Errorf("flink bench stalled at %d", job.Metrics().Processed)
			}
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	}
	if err := await(int64(p.Records) / 10); err != nil {
		return 0, nil, 0, err
	}
	start := time.Now()
	base := job.Metrics().Processed
	if err := await(int64(p.Records)); err != nil {
		return 0, nil, 0, err
	}
	tput := float64(job.Metrics().Processed-base) / time.Since(start).Seconds()

	settle := 2 * interval
	if settle < time.Second {
		settle = time.Second
	}
	time.Sleep(settle)
	lat, err := measureLatency(c, "bench-in", "bench-out", 10, p.LatencyRate, latWindow, p.Cluster.Seed+1)
	if err != nil {
		return 0, nil, 0, err
	}
	m := job.Metrics()
	files := 0.0
	if m.Checkpoints > 0 {
		files = float64(m.FilesUploaded) / float64(m.Checkpoints)
	}
	return tput, lat, files, nil
}

// Fig5bTable renders the interval sweep.
func Fig5bTable(rows []Fig5bRow) *harness.Table {
	t := harness.NewTable("Figure 5.b — EOS throughput/latency vs commit (checkpoint) interval, 10 partitions",
		"interval", "Streams msg/s", "Streams latency", "Flink-like msg/s", "Flink-like latency", "files/ckpt")
	for _, r := range rows {
		t.Add(r.Interval, r.StreamsTput, r.StreamsLatency, r.FlinkTput, r.FlinkLatency, r.FlinkFilesPerCk)
	}
	return t
}

// int64Value decodes the bench reduce value (unused helper retained for
// symmetric codecs in tests).
func int64Value(b []byte) int64 {
	if len(b) < 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}
