package experiments

import (
	"fmt"
	"time"

	"kstreams/internal/harness"
	"kstreams/internal/workload"
	"kstreams/kafka"
	"kstreams/streams"
)

// --- Section 6.1: Bloomberg MxFlow ---

// BloombergParams configures the Section 6.1 reproduction: the market-data
// pipeline (outlier filter -> profile windows -> weighted aggregation) run
// under EOS and ALOS across increasing load, reporting the EOS overhead
// band (the paper observes 6-10% at 10-25k msg/s).
type BloombergParams struct {
	Cluster    ClusterParams
	Threads    int   // paper: 32; scaled default 4
	Partitions int32 // input partitions (paper: ~100 per thread)
	Records    int
	Loads      []int // records per run (stands in for msg/s load points)
	Symbols    int
}

// DefaultBloomberg returns scaled-down Section 6.1 parameters.
func DefaultBloomberg() BloombergParams {
	return BloombergParams{
		Cluster:    DefaultCluster(),
		Threads:    4,
		Partitions: 16,
		Records:    20000,
		Loads:      []int{40000, 60000, 80000, 100000},
		Symbols:    500,
	}
}

// BloombergRow is one load point.
type BloombergRow struct {
	Load        int
	EOSTput     float64
	ALOSTput    float64
	OverheadPct float64
	// TxnProducers is the number of transactional producers coordinating,
	// which under eos-v2 scales with threads, not partitions (the Kafka 2.6
	// insight of Section 6.1).
	TxnProducers int
}

// mxflowApp builds the three-stage MxFlow pipeline.
func mxflowApp(appID string, c *kafka.Cluster, g streams.Guarantee, threads int) (*streams.App, error) {
	tickSerde := streams.JSONSerde[workload.Tick]()
	b := streams.NewBuilder(appID)
	b.Stream("ticks", streams.StringSerde, tickSerde).
		// Stage 1: outlier signal detection — drop crossed/absurd quotes.
		Filter(func(k, v any) bool {
			t := v.(workload.Tick)
			return t.Bid > 0 && t.Ask > t.Bid && (t.Ask-t.Bid) < t.Bid*0.05
		}).
		// Stage 2: dynamic profile-based windowing (1s profile windows).
		GroupByKey().
		WindowedBy(streams.TimeWindowsOf(1000).WithGrace(2000)).
		// Stage 3: size-weighted price aggregation.
		Aggregate(func() any { return []float64{0, 0} },
			func(k, v, agg any) any {
				t := v.(workload.Tick)
				a := agg.([]float64)
				mid := (t.Bid + t.Ask) / 2
				return []float64{a[0] + mid*float64(t.Size), a[1] + float64(t.Size)}
			},
			appID+"-vwap", streams.JSONSerde[[]float64]()).
		ToStream().
		ToWith("market-insights", streams.WindowedSerde(streams.StringSerde),
			streams.JSONSerde[[]float64](), nil)
	return streams.NewApp(b, streams.Config{
		Cluster:           c,
		Guarantee:         g,
		CommitInterval:    100 * time.Millisecond,
		NumThreads:        threads,
		SessionTimeout:    5 * time.Second,
		HeartbeatInterval: 200 * time.Millisecond,
		TxnTimeout:        30 * time.Second,
	})
}

// RunBloomberg measures EOS overhead across load points.
func RunBloomberg(p BloombergParams, prog *Progress) ([]BloombergRow, error) {
	var rows []BloombergRow
	for _, load := range p.Loads {
		row := BloombergRow{Load: load, TxnProducers: p.Threads}
		for _, g := range []streams.Guarantee{streams.ExactlyOnce, streams.AtLeastOnce} {
			c, err := p.Cluster.start()
			if err != nil {
				return nil, err
			}
			if err := c.CreateTopic("ticks", p.Partitions, false); err != nil {
				c.Close()
				return nil, err
			}
			if err := c.CreateTopic("market-insights", p.Partitions, false); err != nil {
				c.Close()
				return nil, err
			}
			// Preload `load` tick records.
			prod, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 512})
			if err != nil {
				c.Close()
				return nil, err
			}
			gen := workload.NewTicks(p.Cluster.Seed, p.Symbols, 0.02)
			tickSerde := streams.JSONSerde[workload.Tick]()
			for i := 0; i < load; i++ {
				tick, ts := gen.Next()
				prod.Send("ticks", kafka.Record{
					Key: []byte(tick.Symbol), Value: tickSerde.Encode(tick), Timestamp: ts,
				})
			}
			if err := prod.Flush(); err != nil {
				c.Close()
				return nil, err
			}
			prod.Close()

			app, err := mxflowApp("mxflow", c, g, p.Threads)
			if err != nil {
				c.Close()
				return nil, err
			}
			if err := app.Start(); err != nil {
				c.Close()
				return nil, err
			}
			tput, err := steadyThroughput(app, int64(load), 10*time.Minute)
			if err != nil {
				app.Close()
				c.Close()
				return nil, fmt.Errorf("bloomberg %v load=%d: %w", g, load, err)
			}
			app.Close()
			c.Close()
			if g == streams.ExactlyOnce {
				row.EOSTput = tput
			} else {
				row.ALOSTput = tput
			}
		}
		if row.ALOSTput > 0 {
			row.OverheadPct = (row.ALOSTput - row.EOSTput) / row.ALOSTput * 100
		}
		prog.logf("bloomberg load=%d: EOS %.0f msg/s, ALOS %.0f msg/s, overhead %.1f%%",
			load, row.EOSTput, row.ALOSTput, row.OverheadPct)
		rows = append(rows, row)
	}
	return rows, nil
}

// BloombergTable renders Section 6.1's insight.
func BloombergTable(rows []BloombergRow) *harness.Table {
	t := harness.NewTable("Section 6.1 — MxFlow pipeline: EOS vs ALOS overhead across load (paper: 6-10%)",
		"records", "EOS msg/s", "ALOS msg/s", "overhead %", "txn producers")
	for _, r := range rows {
		t.Add(r.Load, r.EOSTput, r.ALOSTput, r.OverheadPct, r.TxnProducers)
	}
	return t
}

// --- Section 6.2: Expedia Conversational Platform ---

// ExpediaParams configures the Section 6.2 reproduction: a simple
// enrichment service at a 100ms commit interval (sub-second end-to-end)
// vs the conversation-view aggregation at 1500ms with suppression.
type ExpediaParams struct {
	Cluster       ClusterParams
	Conversations int
	Events        int
	LatencyRate   float64
	LatencyWindow time.Duration
}

// DefaultExpedia returns Section 6.2 parameters.
func DefaultExpedia() ExpediaParams {
	return ExpediaParams{
		Cluster:       DefaultCluster(),
		Conversations: 200,
		Events:        5000,
		LatencyRate:   100,
		LatencyWindow: 3 * time.Second,
	}
}

// ExpediaResult reports both services' behaviour.
type ExpediaResult struct {
	EnrichLatencyMean time.Duration
	EnrichLatencyP99  time.Duration
	EnrichSubSecond   bool
	// Aggregation output volume with and without suppression-style
	// consolidation (the cached aggregate at a long commit interval).
	AggOutputsConsolidated int64
	AggOutputsEager        int64
	ReductionPct           float64
}

// RunExpedia measures the enrichment path latency and the consolidation
// effect of the long commit interval plus caching on the aggregate.
func RunExpedia(p ExpediaParams, prog *Progress) (*ExpediaResult, error) {
	res := &ExpediaResult{}

	// Enrichment service: stateless transform, commit interval 100ms.
	{
		c, err := p.Cluster.start()
		if err != nil {
			return nil, err
		}
		for _, topic := range []string{"cp-in", "cp-enriched"} {
			if err := c.CreateTopic(topic, 4, false); err != nil {
				c.Close()
				return nil, err
			}
		}
		b := streams.NewBuilder("cp-enrich")
		b.Stream("cp-in", streams.StringSerde, streams.BytesSerde).
			MapValues(func(v any) any { return v }, streams.BytesSerde). // redaction/translation stand-in
			To("cp-enriched")
		app, err := streams.NewApp(b, streams.Config{
			Cluster: c, Guarantee: streams.ExactlyOnce,
			CommitInterval: 100 * time.Millisecond, NumThreads: 1,
			SessionTimeout: 5 * time.Second, HeartbeatInterval: 200 * time.Millisecond,
			TxnTimeout: 30 * time.Second,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		if err := app.Start(); err != nil {
			c.Close()
			return nil, err
		}
		lat, err := measureLatency(c, "cp-in", "cp-enriched", 4, p.LatencyRate, p.LatencyWindow, p.Cluster.Seed)
		app.Close()
		c.Close()
		if err != nil {
			return nil, err
		}
		res.EnrichLatencyMean = lat.Mean()
		res.EnrichLatencyP99 = lat.Percentile(99)
		res.EnrichSubSecond = lat.Percentile(99) < time.Second && lat.Count() > 0
		prog.logf("expedia enrichment: %s", lat.Summary())
	}

	// Conversation-view aggregation: 1500ms commit + cached aggregate
	// consolidates revisions vs a 10ms commit behaving near-eagerly.
	countAggOutputs := func(commit time.Duration) (int64, error) {
		c, err := p.Cluster.start()
		if err != nil {
			return 0, err
		}
		defer c.Close()
		for _, topic := range []string{"cp-events", "cp-views"} {
			if err := c.CreateTopic(topic, 4, false); err != nil {
				return 0, err
			}
		}
		evSerde := streams.JSONSerde[workload.ConversationEvent]()
		b := streams.NewBuilder("cp-view")
		b.Stream("cp-events", streams.StringSerde, evSerde).
			GroupByKey().
			Count("cp-view-count"). // conversation-view aggregate stand-in
			ToStream().
			To("cp-views")
		app, err := streams.NewApp(b, streams.Config{
			Cluster: c, Guarantee: streams.ExactlyOnce,
			CommitInterval: commit, NumThreads: 1,
			SessionTimeout: 5 * time.Second, HeartbeatInterval: 200 * time.Millisecond,
			TxnTimeout: 30 * time.Second,
		})
		if err != nil {
			return 0, err
		}
		if err := app.Start(); err != nil {
			return 0, err
		}
		// Pace the events over ~3 seconds so commit intervals interleave
		// with arrival (a burst would be absorbed by a single commit).
		gen := workload.NewConversations(p.Cluster.Seed, p.Conversations)
		if err := pacedLoad(c, "cp-events", p.Events, float64(p.Events)/3.0, p.Cluster.Seed,
			func(i int) ([]byte, []byte, int64) {
				ev, ts := gen.Next()
				return []byte(ev.ConversationID), evSerde.Encode(ev), ts
			}); err != nil {
			app.Close()
			return 0, err
		}
		if err := awaitProcessed(app, int64(p.Events), 10*time.Minute); err != nil {
			app.Close()
			return 0, err
		}
		app.Close() // final commit flushes the cache
		return app.Metrics().Emitted, nil
	}
	eager, err := countAggOutputs(10 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	consolidated, err := countAggOutputs(1500 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	res.AggOutputsEager = eager
	res.AggOutputsConsolidated = consolidated
	if eager > 0 {
		res.ReductionPct = float64(eager-consolidated) / float64(eager) * 100
	}
	prog.logf("expedia aggregation outputs: 10ms commit=%d, 1500ms commit=%d (%.1f%% reduction)",
		eager, consolidated, res.ReductionPct)
	return res, nil
}

// ExpediaTable renders Section 6.2's configuration trade-off.
func ExpediaTable(r *ExpediaResult) *harness.Table {
	t := harness.NewTable("Section 6.2 — Conversational Platform configurations",
		"service", "commit interval", "result")
	t.Add("enrichment", "100ms", fmt.Sprintf("e2e mean %v, p99 %v, sub-second=%v",
		r.EnrichLatencyMean.Round(time.Millisecond), r.EnrichLatencyP99.Round(time.Millisecond), r.EnrichSubSecond))
	t.Add("view aggregation", "10ms", fmt.Sprintf("%d output records (near-eager)", r.AggOutputsEager))
	t.Add("view aggregation", "1500ms", fmt.Sprintf("%d output records (%.1f%% I/O reduction)",
		r.AggOutputsConsolidated, r.ReductionPct))
	return t
}
