package experiments

import (
	"testing"
	"time"

	"kstreams/streams"
)

// TestFig5aHundredPartitions reproduces the replication stall observed at
// 100 output partitions (kept as a regression test).
func TestFig5aHundredPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cp := DefaultCluster()
	cp.RPCLatency = 20 * time.Microsecond
	cp.Jitter = 0
	cp.AppendLatency = 0
	tput, _, _, err := runReduceBench(cp, 100, streams.ExactlyOnce, 100*time.Millisecond,
		3000, 100, 500*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tput < 100 {
		t.Fatalf("throughput %f implausibly low", tput)
	}
}
