package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"kstreams/internal/obs"
	"kstreams/kafka"
)

// The produce/fetch macro-bench matrix (DESIGN.md §10). Each scenario
// boots a fresh in-process cluster with zero simulated network/storage
// latency (so the numbers measure the data plane — encode, append, index,
// fetch — not the latency model), produces a fixed record count, then
// drains it back with a consumer. One BENCH_<scenario>.json per scenario
// is written with a stable schema so the trajectory accumulates across
// PRs and CI can gate on regressions.

// BenchSchemaVersion is bumped only when the JSON layout changes
// incompatibly; comparisons across versions are refused.
const BenchSchemaVersion = 1

// MatrixParams pins the scenario's axes. Two results are only comparable
// when their params are identical.
type MatrixParams struct {
	Partitions   int32  `json:"partitions"`
	BatchRecords int    `json:"batch_records"`
	Acks         string `json:"acks"` // "all" | "leader"
	EOS          bool   `json:"eos"`
	Records      int    `json:"records"`
	ValueBytes   int    `json:"value_bytes"`
}

// PhaseStats is one phase's (produce or fetch) measured surface.
// Percentiles come from the cluster obs histograms
// (client_produce_latency / client_fetch_latency); allocs_per_op is the
// process-wide Mallocs delta over the phase divided by record count —
// an upper bound that includes broker-side work, which is exactly the
// surface the data-plane optimisations target.
type PhaseStats struct {
	RecordsPerSec float64 `json:"records_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	// RunSpreadPct is (max−min)/median × 100 of records/sec across the
	// reps of one invocation: how noisy the machine was when this number
	// was taken, committed alongside it so a trajectory reader can judge
	// whether a delta is signal. Additive field — the schema stays at
	// version 1; absent in older baselines means unrecorded.
	RunSpreadPct float64 `json:"run_spread_pct,omitempty"`
}

// MatrixResult is the unit the JSON file holds. No timestamps, host
// names, or other unstable fields: committed files must diff cleanly.
type MatrixResult struct {
	SchemaVersion int          `json:"schema_version"`
	Scenario      string       `json:"scenario"`
	Params        MatrixParams `json:"params"`
	Produce       PhaseStats   `json:"produce"`
	Fetch         PhaseStats   `json:"fetch"`
	// EventTimeLagP99Ms is the p99 of (fetch wall time − record event
	// time) over the first full drain: the completeness measure a
	// caught-up consumer sees (DESIGN.md §11). Additive field, so the
	// schema version stays at 1; absent in older baselines means 0.
	EventTimeLagP99Ms float64 `json:"event_time_lag_p99_ms"`
}

// matrixScenarios sweeps the four required axes: batch size, partition
// count, ack mode, EOS on/off. p1_b256_acksall is the baseline each
// other scenario varies one axis from.
func matrixScenarios(quick bool) []MatrixParams {
	records := 300_000
	eosRecords := 200_000
	if quick {
		records = 150_000
		eosRecords = 100_000
	}
	base := MatrixParams{Partitions: 1, BatchRecords: 256, Acks: "all", Records: records, ValueBytes: 100}
	p8 := base
	p8.Partitions = 8
	// Record counts are sized per scenario so every produce phase runs
	// long enough (hundreds of ms) to measure stably: 16-record batches
	// pay the full-ISR commit wait ~16x as often, and acks=leader skips
	// it entirely and produces several times faster than the others.
	b16 := base
	b16.BatchRecords = 16
	b16.Records = records / 4
	leader := base
	leader.Acks = "leader"
	leader.Records = records * 4
	eos := base
	eos.EOS = true
	eos.Records = eosRecords
	return []MatrixParams{base, p8, b16, leader, eos}
}

// ScenarioName derives the canonical scenario id (and thus the file
// name) from the axes, so renames cannot desynchronise from params.
func ScenarioName(p MatrixParams) string {
	name := fmt.Sprintf("p%d_b%d_acks%s", p.Partitions, p.BatchRecords, p.Acks)
	if p.EOS {
		name += "_eos"
	}
	return name
}

// BenchFileName is the committed artifact name for a scenario.
func BenchFileName(scenario string) string {
	return "BENCH_" + scenario + ".json"
}

// RunMatrix runs every scenario and writes one BENCH_<scenario>.json
// into outDir (skipped when outDir is empty). Results come back in
// scenario order for the caller to print or compare.
func RunMatrix(quick bool, outDir string, prog *Progress) ([]MatrixResult, error) {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
	}
	// Give the collector headroom for the duration of the run: GC pacing
	// is the dominant run-to-run noise source on small machines, and
	// allocs/op is measured from Mallocs, which GC frequency cannot skew.
	defer debug.SetGCPercent(debug.SetGCPercent(400))
	var out []MatrixResult
	for _, p := range matrixScenarios(quick) {
		name := ScenarioName(p)
		prog.logf("matrix: %s (records=%d, median of %d)", name, p.Records, matrixReps)
		res, err := runScenarioMedian(p)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		prog.logf("  produce %.0f rec/s %.1f MB/s p99=%.3fms allocs/op=%.1f",
			res.Produce.RecordsPerSec, res.Produce.MBPerSec, res.Produce.P99Ms, res.Produce.AllocsPerOp)
		prog.logf("  fetch   %.0f rec/s %.1f MB/s p99=%.3fms allocs/op=%.1f event-time-lag-p99=%.0fms",
			res.Fetch.RecordsPerSec, res.Fetch.MBPerSec, res.Fetch.P99Ms, res.Fetch.AllocsPerOp,
			res.EventTimeLagP99Ms)
		if outDir != "" {
			if err := writeBenchJSON(filepath.Join(outDir, BenchFileName(name)), res); err != nil {
				return nil, err
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// matrixReps runs each scenario several times and keeps the median run
// per phase (by records/sec). Best-of tracked the fastest observation,
// which is biased high: one lucky rep could mask a real regression, and
// a baseline recorded on a quiet machine made the >10% CI gate flap on a
// loaded one. The median is robust against an outlier in either
// direction, and the recorded spread says how much the reps disagreed.
const matrixReps = 3

func runScenarioMedian(p MatrixParams) (MatrixResult, error) {
	reps := make([]MatrixResult, 0, matrixReps)
	for i := 0; i < matrixReps; i++ {
		res, err := runScenario(p)
		if err != nil {
			return res, err
		}
		reps = append(reps, res)
	}
	produceRate := func(r MatrixResult) float64 { return r.Produce.RecordsPerSec }
	fetchRate := func(r MatrixResult) float64 { return r.Fetch.RecordsPerSec }
	out := reps[medianRep(reps, produceRate)]
	fetchPick := reps[medianRep(reps, fetchRate)]
	out.Fetch = fetchPick.Fetch
	// The lag sample rides with the fetch pick: both come from the same
	// drain, so mixing runs would misattribute.
	out.EventTimeLagP99Ms = fetchPick.EventTimeLagP99Ms
	out.Produce.RunSpreadPct = spreadPct(reps, produceRate)
	out.Fetch.RunSpreadPct = spreadPct(reps, fetchRate)
	return out, nil
}

// medianRep returns the index of the rep whose keyed rate is the median
// (upper median for even counts).
func medianRep(reps []MatrixResult, key func(MatrixResult) float64) int {
	idx := make([]int, len(reps))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return key(reps[idx[a]]) < key(reps[idx[b]]) })
	return idx[len(idx)/2]
}

// spreadPct is the relative range of the keyed rate across reps:
// (max−min)/median × 100.
func spreadPct(reps []MatrixResult, key func(MatrixResult) float64) float64 {
	min, max := key(reps[0]), key(reps[0])
	for _, r := range reps[1:] {
		v := key(r)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	med := key(reps[medianRep(reps, key)])
	if med <= 0 {
		return 0
	}
	return round1((max - min) / med * 100)
}

func runScenario(p MatrixParams) (MatrixResult, error) {
	res := MatrixResult{SchemaVersion: BenchSchemaVersion, Scenario: ScenarioName(p), Params: p}
	// Zero network/storage latency: the matrix measures the data plane,
	// not the simulated testbed. A short replica poll keeps acks=all
	// commits from being dominated by follower fetch cadence.
	c, err := kafka.NewCluster(kafka.ClusterConfig{
		Brokers:             3,
		Seed:                1,
		TxnTimeout:          30 * time.Second,
		ReplicaPollInterval: 200 * time.Microsecond,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()
	const topic = "bench"
	if err := c.CreateTopic(topic, p.Partitions, false); err != nil {
		return res, err
	}

	bytesTotal, produceElapsed, produceAllocs, err := producePhase(c, topic, p)
	if err != nil {
		return res, err
	}
	snap := c.ObsSnapshot()
	res.Produce = phaseStats(p.Records, bytesTotal, produceElapsed, produceAllocs,
		snap.Histograms["client_produce_latency"])

	fetched, fetchElapsed, fetchAllocs, lagP99, err := fetchPhase(c, topic, p)
	if err != nil {
		return res, err
	}
	snap = c.ObsSnapshot()
	res.Fetch = phaseStats(fetched, bytesTotal/int64(p.Records)*int64(fetched), fetchElapsed, fetchAllocs,
		snap.Histograms["client_fetch_latency"])
	res.EventTimeLagP99Ms = lagP99
	return res, nil
}

// producePhase sends p.Records round-robin over the partitions and
// returns payload bytes, wall time, and the Mallocs delta.
func producePhase(c *kafka.Cluster, topic string, p MatrixParams) (bytes int64, elapsed time.Duration, allocs uint64, err error) {
	cfg := kafka.ProducerConfig{BatchRecords: p.BatchRecords, AcksLeader: p.Acks == "leader"}
	if p.EOS {
		cfg.TransactionalID = "bench-matrix"
		cfg.TxnTimeout = 30 * time.Second
	}
	prod, err := c.NewProducer(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	defer prod.Close()
	if p.EOS {
		if err := prod.BeginTxn(); err != nil {
			return 0, 0, 0, err
		}
	}
	// The EOS scenario commits in slabs, as a streams app would, so the
	// measurement includes the two-phase commit cost — the paper's
	// Section 4.3 overhead — rather than one giant transaction.
	const commitEvery = 10_000

	// The producer buffers records zero-copy, so the key must be a fresh
	// slice per record; the value is never mutated and can be shared.
	val := make([]byte, p.ValueBytes)
	for i := range val {
		val[i] = byte(i)
	}

	runtime.GC()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	// Event time is stamped in wall-clock ms — the same clock the fetch
	// phase reads — so event-time lag is measurable end to end. The stamp
	// is refreshed every 1 Ki records, not per record: at millisecond
	// precision that loses nothing, and a per-record time.Now() costs
	// measurable throughput on the fastest (acks=leader) scenario.
	nowMs := time.Now().UnixMilli()
	for i := 0; i < p.Records; i++ {
		key := make([]byte, 8)
		for b, v := 0, i; b < 8; b, v = b+1, v>>8 {
			key[b] = byte(v)
		}
		if i&1023 == 1023 {
			nowMs = time.Now().UnixMilli()
		}
		rec := kafka.Record{Key: key, Value: val, Timestamp: nowMs}
		if err := prod.SendTo(topic, int32(i)%p.Partitions, rec); err != nil {
			return 0, 0, 0, err
		}
		bytes += int64(len(key) + len(val))
		if p.EOS && (i+1)%commitEvery == 0 {
			if err := prod.CommitTxn(); err != nil {
				return 0, 0, 0, err
			}
			if err := prod.BeginTxn(); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	if p.EOS {
		if err := prod.CommitTxn(); err != nil {
			return 0, 0, 0, err
		}
	} else if err := prod.Flush(); err != nil {
		return 0, 0, 0, err
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&msAfter)
	return bytes, elapsed, msAfter.Mallocs - msBefore.Mallocs, nil
}

// fetchMinWindow keeps the fetch measurement honest: one drain at
// data-plane speed is over in tens of milliseconds, far too short a
// window to measure stably, so the phase re-drains the log from offset
// 0 until at least this much time has elapsed. Records/sec and
// allocs/op are computed over everything fetched.
const fetchMinWindow = 2500 * time.Millisecond

// fetchDrainCap bounds how many records each fetch pass reads, counted
// back from the log end — the caught-up-consumer case. The acks=leader
// scenario produces far more records than the decoded-batch cache holds
// (and FIFO eviction keeps the newest); without the cap its fetch phase
// would measure cache eviction churn instead of the read path, with
// wild run-to-run swings. Capping keeps every scenario's fetch working
// set comparable and cache-resident.
const fetchDrainCap = 150_000

// fetchPhase drains every produced record from offset 0 through one
// consumer assigned all partitions, repeating whole passes until the
// measurement window is long enough. Returns the total records fetched.
func fetchPhase(c *kafka.Cluster, topic string, p MatrixParams) (fetched int, elapsed time.Duration, allocs uint64, lagP99Ms float64, err error) {
	iso := kafka.ReadUncommitted
	if p.EOS {
		iso = kafka.ReadCommitted
	}
	cons := c.NewConsumer(kafka.ConsumerConfig{Isolation: iso})
	defer cons.Close()
	parts := make([]int32, p.Partitions)
	for i := range parts {
		parts[i] = int32(i)
	}
	cons.Assign(topic, parts...)

	runtime.GC()
	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	drain := p.Records
	if drain > fetchDrainCap {
		drain = fetchDrainCap
	}
	// Under acks=leader the produce phase returns ahead of replication,
	// and consumers are bounded by the high watermark; wait for the HW
	// to cover everything produced so the phase measures the read path,
	// not follower catch-up. (Markers can push the EOS sum above Records.)
	hwDeadline := time.Now().Add(2 * time.Minute)
	for {
		var sum int64
		for _, part := range parts {
			end, err := cons.EndOffset(topic, part)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			sum += end
		}
		if sum >= int64(p.Records) {
			break
		}
		if time.Now().After(hwDeadline) {
			return 0, 0, 0, 0, fmt.Errorf("high watermark stalled at %d of %d records", sum, p.Records)
		}
		time.Sleep(time.Millisecond)
	}

	// Each partition holds Records/Partitions records; drain the last
	// drain/Partitions of each.
	seekTo := make([]int64, len(parts))
	for i, part := range parts {
		end, err := cons.EndOffset(topic, part)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		seekTo[i] = end - int64(drain/len(parts))
		if seekTo[i] < 0 {
			seekTo[i] = 0
		}
	}
	// Event-time lag is sampled on the first pass only: that is the
	// caught-up consumer's view (delivery wall time minus the wall-ms
	// event time the producer stamped). Later passes re-read the same
	// log and would only measure how long the benchmark has been running.
	var lagHist obs.Histogram
	start := time.Now()
	deadline := time.Now().Add(2 * time.Minute)
	for pass := 0; pass == 0 || time.Since(start) < fetchMinWindow; pass++ {
		for i, part := range parts {
			cons.Seek(topic, part, seekTo[i])
		}
		// A pass is done at the first empty poll after data: under EOS,
		// transaction markers occupy offsets but are never delivered, so
		// a fixed received-count target would overshoot the log end.
		got := 0
		for {
			msgs, err := cons.Poll()
			if err != nil {
				return 0, 0, 0, 0, err
			}
			if len(msgs) == 0 {
				if got > 0 {
					break
				}
				if time.Now().After(deadline) {
					return 0, 0, 0, 0, fmt.Errorf("fetch pass %d got no records", pass)
				}
				time.Sleep(100 * time.Microsecond)
				continue
			}
			if pass == 0 {
				nowMs := time.Now().UnixMilli()
				for _, m := range msgs {
					if lag := nowMs - m.Timestamp; lag >= 0 {
						lagHist.Observe(lag)
					}
				}
			}
			got += len(msgs)
		}
		fetched += got
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&msAfter)
	return fetched, elapsed, msAfter.Mallocs - msBefore.Mallocs, float64(lagHist.Quantile(99)), nil
}

func phaseStats(records int, bytes int64, elapsed time.Duration, allocs uint64, h obs.HistogramStat) PhaseStats {
	sec := elapsed.Seconds()
	if sec <= 0 {
		sec = 1e-9
	}
	return PhaseStats{
		RecordsPerSec: round1(float64(records) / sec),
		MBPerSec:      round1(float64(bytes) / sec / 1e6),
		P50Ms:         roundMs(h.P50),
		P95Ms:         roundMs(h.P95),
		P99Ms:         roundMs(h.P99),
		AllocsPerOp:   round1(float64(allocs) / float64(records)),
	}
}

func round1(v float64) float64 { return float64(int64(v*10+0.5)) / 10 }
func roundMs(ns int64) float64 { return float64(ns/1000) / 1000 } // ns → ms, µs precision

// writeBenchJSON writes any bench artifact (matrix or recovery result)
// in the committed, diff-stable form.
func writeBenchJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func unmarshalBench(buf []byte, path string, v any) error {
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// LoadBench reads one committed BENCH_*.json.
func LoadBench(path string) (MatrixResult, error) {
	var res MatrixResult
	buf, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	return res, unmarshalBench(buf, path, &res)
}

// regressionTolerance is the CI gate: a scenario fails when its new
// records/sec drops more than 10%% below the committed baseline.
const regressionTolerance = 0.10

// CompareAgainst checks fresh results against the BENCH_*.json files in
// baselineDir. Scenarios with no baseline are reported and skipped (new
// scenarios must be able to land); mismatched params or schema versions
// are skipped with a warning, since those numbers are not comparable.
// Returns an error listing every regressed scenario/phase.
func CompareAgainst(results []MatrixResult, baselineDir string, prog *Progress) error {
	var regressions []string
	for _, res := range results {
		path := filepath.Join(baselineDir, BenchFileName(res.Scenario))
		base, err := LoadBench(path)
		if os.IsNotExist(err) {
			prog.logf("matrix: %s has no baseline, skipping compare", res.Scenario)
			continue
		}
		if err != nil {
			return err
		}
		if base.SchemaVersion != res.SchemaVersion || base.Params != res.Params {
			prog.logf("matrix: %s baseline params/schema differ, skipping compare", res.Scenario)
			continue
		}
		for _, phase := range []struct {
			name     string
			old, new float64
		}{
			{"produce", base.Produce.RecordsPerSec, res.Produce.RecordsPerSec},
			{"fetch", base.Fetch.RecordsPerSec, res.Fetch.RecordsPerSec},
		} {
			if phase.old <= 0 {
				continue
			}
			delta := (phase.new - phase.old) / phase.old
			prog.logf("matrix: %s %s %+.1f%% (%.0f -> %.0f rec/s)",
				res.Scenario, phase.name, delta*100, phase.old, phase.new)
			if delta < -regressionTolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s %s regressed %.1f%% (%.0f -> %.0f rec/s)",
						res.Scenario, phase.name, -delta*100, phase.old, phase.new))
			}
		}
	}
	if len(regressions) > 0 {
		sort.Strings(regressions)
		return fmt.Errorf("bench matrix regressions:\n  %s", joinLines(regressions))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
