package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"kstreams/internal/obs"
	"kstreams/kafka"
	"kstreams/streams"
)

// The recovery scenarios of the bench matrix (DESIGN.md §13): build real
// store state under exactly-once load on two instances, kill one, and
// measure how fast the survivor takes the dead instance's tasks over. The
// two scenarios differ in exactly one axis — warm standby replicas on or
// off — at identical state size, so the committed pair quantifies what
// standby tailing buys:
//
//	recovery_cold     Standbys=0: takeover restores each task by replaying
//	                  its full changelog partition from offset zero.
//	recovery_standby  Standbys=1: takeover promotes the warm standby copy
//	                  and replays only the tail the tailer had not applied.
//
// mttr_ms is the maximum of the recovery_mttr_ms histogram: per promoted
// task, the wall time from takeover start to the task being processable
// (store restored, producer initialized). Failure *detection* — the
// session timeout the coordinator needs to declare the instance dead — is
// deliberately excluded: it is a configured constant, identical in both
// scenarios, and including it would let a 1s timeout mask the difference
// between replaying a million records and promoting a warm copy.
// catchup_recs_per_sec is the complementary end-to-end view: records
// produced after the kill divided by the time until the survivor's stores
// reflect every one of them (this one does include detection).

// RecoveryParams pins the scenario axes. Comparisons require identical
// params, so cold vs standby stay at the same state size by construction.
type RecoveryParams struct {
	Records        int   `json:"records"`
	CatchupRecords int   `json:"catchup_records"`
	Keys           int   `json:"keys"`
	Partitions     int32 `json:"partitions"`
	Standbys       int   `json:"standbys"`
}

// RecoveryResult is the committed artifact. Like MatrixResult, no
// timestamps or host names: the files must diff cleanly across PRs.
type RecoveryResult struct {
	SchemaVersion     int            `json:"schema_version"`
	Scenario          string         `json:"scenario"`
	Params            RecoveryParams `json:"params"`
	MTTRMs            float64        `json:"mttr_ms"`
	CatchupRecsPerSec float64        `json:"catchup_recs_per_sec"`
	// RestoreRecords is how many changelog records the takeover replayed;
	// ChangelogRecords is the whole changelog at that moment. Cold restores
	// approach the full length, warm promotions only the tail — the pair
	// shows which path a run actually took.
	RestoreRecords   int64   `json:"restore_records"`
	ChangelogRecords int64   `json:"changelog_records"`
	RunSpreadPct     float64 `json:"run_spread_pct,omitempty"`
}

func recoveryScenarios(quick bool) []RecoveryParams {
	// Key cardinality is the state-size lever: every commit flushes one
	// changelog record per dirty key, so a cold takeover has hundreds of
	// thousands of records to replay while a warm promotion replays only
	// the unapplied tail. Too few keys and the cold restore finishes in
	// single-digit milliseconds — the scenarios would measure task setup,
	// not recovery work.
	base := RecoveryParams{
		Records:        250_000,
		CatchupRecords: 25_000,
		Keys:           25_000,
		Partitions:     4,
	}
	if quick {
		base.Records = 50_000
		base.CatchupRecords = 10_000
		base.Keys = 5_000
	}
	standby := base
	standby.Standbys = 1
	return []RecoveryParams{base, standby}
}

// RecoveryScenarioName derives the scenario id (and file name) from the
// only axis the scenarios vary.
func RecoveryScenarioName(p RecoveryParams) string {
	if p.Standbys > 0 {
		return "recovery_standby"
	}
	return "recovery_cold"
}

// recoveryReps mirrors the matrix: median-of-3 by MTTR, with the spread
// recorded so the trajectory says how noisy the machine was.
const recoveryReps = 3

// RunRecovery runs both recovery scenarios and writes one
// BENCH_<scenario>.json each into outDir (skipped when empty).
func RunRecovery(quick bool, outDir string, prog *Progress) ([]RecoveryResult, error) {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return nil, err
		}
	}
	var out []RecoveryResult
	for _, p := range recoveryScenarios(quick) {
		name := RecoveryScenarioName(p)
		prog.logf("recovery: %s (records=%d keys=%d, median of %d)", name, p.Records, p.Keys, recoveryReps)
		res, err := runRecoveryMedian(p)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		prog.logf("  mttr=%.0fms catchup=%.0f rec/s restored=%d of %d changelog records",
			res.MTTRMs, res.CatchupRecsPerSec, res.RestoreRecords, res.ChangelogRecords)
		if outDir != "" {
			if err := writeBenchJSON(filepath.Join(outDir, BenchFileName(name)), res); err != nil {
				return nil, err
			}
		}
		out = append(out, res)
	}
	return out, nil
}

func runRecoveryMedian(p RecoveryParams) (RecoveryResult, error) {
	reps := make([]RecoveryResult, 0, recoveryReps)
	for i := 0; i < recoveryReps; i++ {
		res, err := runRecoveryScenario(p)
		if err != nil {
			return res, err
		}
		reps = append(reps, res)
	}
	mttr := func(r RecoveryResult) float64 { return r.MTTRMs }
	idx := make([]int, len(reps))
	for i := range idx {
		idx[i] = i
	}
	for i := range idx { // insertion sort by MTTR; three elements
		for j := i; j > 0 && mttr(reps[idx[j]]) < mttr(reps[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	out := reps[idx[len(idx)/2]]
	min, max := mttr(reps[idx[0]]), mttr(reps[idx[len(idx)-1]])
	if med := out.MTTRMs; med > 0 {
		out.RunSpreadPct = round1((max - min) / med * 100)
	}
	return out, nil
}

func runRecoveryScenario(p RecoveryParams) (RecoveryResult, error) {
	res := RecoveryResult{SchemaVersion: BenchSchemaVersion, Scenario: RecoveryScenarioName(p), Params: p}
	// Zero network/storage latency, as in the data-plane matrix: the
	// scenario measures restore and promotion work, not the latency model.
	c, err := kafka.NewCluster(kafka.ClusterConfig{
		Brokers:               3,
		Seed:                  1,
		ReplicaPollInterval:   200 * time.Microsecond,
		TxnTimeout:            30 * time.Second,
		GroupRebalanceTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		return res, err
	}
	defer c.Close()
	const inTopic = "rec-in"
	const storeName = "rec-store"
	if err := c.CreateTopic(inTopic, p.Partitions, false); err != nil {
		return res, err
	}

	newApp := func(instance string) (*streams.App, error) {
		b := streams.NewBuilder("rec")
		b.Stream(inTopic, streams.StringSerde, streams.BytesSerde).
			GroupByKey().
			Count(storeName)
		app, err := streams.NewApp(b, streams.Config{
			Cluster:            c,
			InstanceID:         instance,
			Guarantee:          streams.ExactlyOnce,
			CommitInterval:     30 * time.Millisecond,
			NumThreads:         1,
			TxnTimeout:         30 * time.Second,
			SessionTimeout:     time.Second,
			HeartbeatInterval:  100 * time.Millisecond,
			NumStandbyReplicas: p.Standbys,
		})
		if err != nil {
			return nil, err
		}
		return app, app.Start()
	}
	victim, err := newApp("i0")
	if err != nil {
		return res, err
	}
	survivor, err := newApp("i1")
	if err != nil {
		return res, err
	}
	defer survivor.Close()

	keys := make([]string, p.Keys)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%05d", i)
	}
	produce := func(n int) error {
		prod, err := c.NewProducer(kafka.ProducerConfig{Idempotent: true, BatchRecords: 512})
		if err != nil {
			return err
		}
		defer prod.Close()
		val := []byte("v")
		for i := 0; i < n; i++ {
			if err := prod.Send(inTopic, kafka.Record{
				Key: []byte(keys[i%len(keys)]), Value: val, Timestamp: int64(i),
			}); err != nil {
				return err
			}
		}
		return prod.Flush()
	}
	// waitCounts blocks until every key's count reaches want on any live
	// instance; committed store state is the only exact completion signal
	// under EOS (per-app processed counters double-count aborted retries).
	waitCounts := func(apps []*streams.App, want int64, timeout time.Duration) error {
		deadline := time.Now().Add(timeout)
		next := 0 // resume scanning where the last pass stalled
		for time.Now().Before(deadline) {
			done := true
			for n := 0; n < len(keys); n++ {
				k := keys[(next+n)%len(keys)]
				ok := false
				for _, app := range apps {
					if v, hosted := app.QueryKV(storeName, k); hosted && v.(int64) >= want {
						ok = true
						break
					}
				}
				if !ok {
					done = false
					next = (next + n) % len(keys)
					break
				}
			}
			if done {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("counts never reached %d per key (victim=%v survivor=%v)",
			want, victim.Err(), survivor.Err())
	}

	perKey := int64(p.Records / p.Keys)
	if err := produce(p.Records); err != nil {
		return res, err
	}
	if err := waitCounts([]*streams.App{victim, survivor}, perKey, 2*time.Minute); err != nil {
		return res, fmt.Errorf("phase 1: %w", err)
	}
	if p.Standbys > 0 {
		// The comparison is only honest once the standby copies are warm:
		// records applied and replication lag drained back to zero.
		deadline := time.Now().Add(time.Minute)
		for {
			s := c.ObsSnapshot()
			if s.Counter("standby_records_applied_total") > 0 && gaugeSum(s, "standby_lag_records") == 0 {
				break
			}
			if time.Now().After(deadline) {
				return res, fmt.Errorf("standby never caught up")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	before := c.ObsSnapshot()
	killAt := time.Now()
	victim.Kill()
	if err := produce(p.CatchupRecords); err != nil {
		return res, err
	}
	catchPerKey := perKey + int64(p.CatchupRecords/p.Keys)
	if err := waitCounts([]*streams.App{survivor}, catchPerKey, 2*time.Minute); err != nil {
		return res, fmt.Errorf("catch-up: %w", err)
	}
	catchup := time.Since(killAt).Seconds()
	after := c.ObsSnapshot()

	mttr := after.Histograms["recovery_mttr_ms"]
	if mttr.Count <= before.Histograms["recovery_mttr_ms"].Count {
		return res, fmt.Errorf("takeover recorded no recovery_mttr_ms observation")
	}
	// The histogram is cumulative, but the pre-kill observations are the
	// instances' startup task creations against an empty changelog (sub-ms
	// by construction — state only exists after phase 1), so the maximum
	// is the failover takeover in both scenarios.
	res.MTTRMs = float64(mttr.Max)
	res.CatchupRecsPerSec = round1(float64(p.CatchupRecords) / catchup)
	res.RestoreRecords = after.Counter("stream_restore_records_total") - before.Counter("stream_restore_records_total")

	cons := c.NewConsumer(kafka.ConsumerConfig{Isolation: kafka.ReadCommitted})
	defer cons.Close()
	changelog := "rec-" + storeName + "-changelog"
	for part := int32(0); part < p.Partitions; part++ {
		end, err := cons.EndOffset(changelog, part)
		if err != nil {
			return res, err
		}
		res.ChangelogRecords += end
	}
	return res, nil
}

func gaugeSum(s *obs.Snapshot, base string) int64 {
	total := int64(0)
	for k, v := range s.Gauges {
		if obs.BaseName(k) == base {
			total += v
		}
	}
	return total
}

// mttrNoiseFloorMs keeps the gate meaningful at small absolute values: a
// warm promotion takes single-digit milliseconds and a cold replay tens,
// where a 10% relative delta is scheduler jitter, not a regression (the
// committed run_spread_pct documents exactly how much the reps disagree).
// The floor is sized from observed run-to-run medians of the cold
// scenario on a loaded machine (29–74ms for the same binary), which put
// even the median well past a tighter floor. A real regression — losing
// warm promotion, an accidentally quadratic restore — shifts MTTR by
// the floor many times over.
const mttrNoiseFloorMs = 50.0

// CompareRecoveryAgainst gates on MTTR: a scenario regresses when its new
// mttr_ms exceeds the committed baseline by more than 10% AND by more
// than the absolute noise floor. Missing baselines are reported and
// skipped, as are mismatched params or schema versions.
func CompareRecoveryAgainst(results []RecoveryResult, baselineDir string, prog *Progress) error {
	var regressions []string
	for _, res := range results {
		path := filepath.Join(baselineDir, BenchFileName(res.Scenario))
		base, err := LoadRecovery(path)
		if os.IsNotExist(err) {
			prog.logf("recovery: %s has no baseline, skipping compare", res.Scenario)
			continue
		}
		if err != nil {
			return err
		}
		if base.SchemaVersion != res.SchemaVersion || base.Params != res.Params {
			prog.logf("recovery: %s baseline params/schema differ, skipping compare", res.Scenario)
			continue
		}
		if base.MTTRMs <= 0 {
			prog.logf("recovery: %s baseline mttr is zero, skipping compare", res.Scenario)
			continue
		}
		delta := (res.MTTRMs - base.MTTRMs) / base.MTTRMs
		prog.logf("recovery: %s mttr %+.1f%% (%.0f -> %.0f ms), catchup %.0f -> %.0f rec/s",
			res.Scenario, delta*100, base.MTTRMs, res.MTTRMs,
			base.CatchupRecsPerSec, res.CatchupRecsPerSec)
		if delta > regressionTolerance && res.MTTRMs-base.MTTRMs > mttrNoiseFloorMs {
			regressions = append(regressions,
				fmt.Sprintf("%s mttr regressed %.1f%% (%.0f -> %.0f ms)",
					res.Scenario, delta*100, base.MTTRMs, res.MTTRMs))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("recovery bench regressions:\n  %s", joinLines(regressions))
	}
	return nil
}

// LoadRecovery reads one committed BENCH_recovery_*.json.
func LoadRecovery(path string) (RecoveryResult, error) {
	var res RecoveryResult
	buf, err := os.ReadFile(path)
	if err != nil {
		return res, err
	}
	return res, unmarshalBench(buf, path, &res)
}
