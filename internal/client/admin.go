package client

import (
	"fmt"
	"sync"

	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

// Admin performs topic-level administrative operations: Streams uses it to
// create its internal repartition and changelog topics at startup and to
// purge consumed repartition records after commits (paper Section 3.2).
type Admin struct {
	net        *transport.Network
	self       int32
	controller int32
	meta       *metadata

	closeCh chan struct{}
	cancel  <-chan struct{}

	mu     sync.Mutex
	closed bool
}

// NewAdmin registers an admin client on the network. cancel, when
// non-nil, interrupts in-flight retries when it closes, in addition to
// Close (a stream thread passes its kill signal).
func NewAdmin(net *transport.Network, controller int32, cancel <-chan struct{}) *Admin {
	self := net.AllocClientID()
	net.Register(self, func(int32, any) any { return nil })
	closeCh := make(chan struct{})
	merged := mergeCancel(closeCh, cancel)
	return &Admin{
		net:        net,
		self:       self,
		controller: controller,
		meta:       newMetadata(net, self, controller, retry.Policy{Clock: net.Clock()}, merged),
		closeCh:    closeCh,
		cancel:     merged,
	}
}

// CreateTopic creates a topic; an existing topic is not an error (Streams
// instances race to create internal topics at startup).
func (a *Admin) CreateTopic(name string, partitions int32, rf int, cfg protocol.TopicConfig) error {
	// Admin operations carry no trace context: explicit nil trace.
	resp, err := a.net.SendTraced(a.self, a.controller, &protocol.CreateTopicRequest{
		Name: name, Partitions: partitions, ReplicationFactor: rf, Config: cfg,
	}, nil)
	if err != nil {
		return err
	}
	code := resp.(*protocol.CreateTopicResponse).Err
	if code == protocol.ErrNone || code == protocol.ErrTopicAlreadyExists {
		return nil
	}
	return code.Err()
}

// Partitions returns a topic's partition count.
func (a *Admin) Partitions(topic string) (int32, error) {
	return a.meta.partitions(topic)
}

// DeleteRecords advances a partition's log start offset (repartition topic
// purging). Failures are returned but callers may treat purging as best
// effort — it reclaims space, it is not needed for correctness.
func (a *Admin) DeleteRecords(tp protocol.TopicPartition, beforeOffset int64) error {
	budget := retry.NewBudgetOn(a.net.Clock(), requestTimeout)
	return retryErr(fmt.Sprintf("delete records on %s", tp), retry.Do(retry.Policy{Clock: a.net.Clock()}, budget, a.cancel, func(int) (bool, error) {
		leader, err := a.meta.leaderFor(tp)
		if err != nil {
			return false, err
		}
		resp, serr := a.net.SendTraced(a.self, leader, &protocol.DeleteRecordsRequest{
			TP: tp, BeforeOffset: beforeOffset,
		}, nil)
		if serr != nil {
			a.meta.invalidate(tp.Topic)
			return false, serr
		}
		code := resp.(*protocol.DeleteRecordsResponse).Err
		if code == protocol.ErrNone {
			return true, nil
		}
		if !code.Retriable() {
			return true, code.Err()
		}
		a.meta.invalidate(tp.Topic)
		return false, code.Err()
	}))
}

// Close releases the network endpoint and interrupts in-flight retries.
func (a *Admin) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	close(a.closeCh)
	a.mu.Unlock()
	a.net.Unregister(a.self)
}
