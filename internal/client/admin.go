package client

import (
	"fmt"
	"time"

	"kstreams/internal/protocol"
	"kstreams/internal/transport"
)

// Admin performs topic-level administrative operations: Streams uses it to
// create its internal repartition and changelog topics at startup and to
// purge consumed repartition records after commits (paper Section 3.2).
type Admin struct {
	net        *transport.Network
	self       int32
	controller int32
	meta       *metadata
}

// NewAdmin registers an admin client on the network.
func NewAdmin(net *transport.Network, controller int32) *Admin {
	self := net.AllocClientID()
	net.Register(self, func(int32, any) any { return nil })
	return &Admin{
		net:        net,
		self:       self,
		controller: controller,
		meta:       newMetadata(net, self, controller),
	}
}

// CreateTopic creates a topic; an existing topic is not an error (Streams
// instances race to create internal topics at startup).
func (a *Admin) CreateTopic(name string, partitions int32, rf int, cfg protocol.TopicConfig) error {
	resp, err := a.net.Send(a.self, a.controller, &protocol.CreateTopicRequest{
		Name: name, Partitions: partitions, ReplicationFactor: rf, Config: cfg,
	})
	if err != nil {
		return err
	}
	code := resp.(*protocol.CreateTopicResponse).Err
	if code == protocol.ErrNone || code == protocol.ErrTopicAlreadyExists {
		return nil
	}
	return code.Err()
}

// Partitions returns a topic's partition count.
func (a *Admin) Partitions(topic string) (int32, error) {
	return a.meta.partitions(topic)
}

// DeleteRecords advances a partition's log start offset (repartition topic
// purging). Failures are returned but callers may treat purging as best
// effort — it reclaims space, it is not needed for correctness.
func (a *Admin) DeleteRecords(tp protocol.TopicPartition, beforeOffset int64) error {
	deadline := time.Now().Add(requestTimeout)
	for {
		leader, err := a.meta.leaderFor(tp)
		if err == nil {
			resp, serr := a.net.Send(a.self, leader, &protocol.DeleteRecordsRequest{
				TP: tp, BeforeOffset: beforeOffset,
			})
			if serr == nil {
				code := resp.(*protocol.DeleteRecordsResponse).Err
				if code == protocol.ErrNone {
					return nil
				}
				if !code.Retriable() {
					return code.Err()
				}
			}
			a.meta.invalidate(tp.Topic)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("client: delete records on %s timed out", tp)
		}
		time.Sleep(retryBackoff)
	}
}

// Close releases the network endpoint.
func (a *Admin) Close() { a.net.Unregister(a.self) }
