package client

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"kstreams/internal/obs"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

// ProducerConfig configures a producer.
type ProducerConfig struct {
	// Controller is the controller node id (cluster.Controller()).
	Controller int32
	// Idempotent enables sequence-numbered, de-duplicated appends
	// (paper Section 4.1). Implied by TransactionalID.
	Idempotent bool
	// TransactionalID enables transactions: the producer registers the id
	// with its transaction coordinator at init, fencing zombies
	// (paper Section 4.2.1).
	TransactionalID string
	// TxnTimeout lets the coordinator abort an abandoned transaction.
	TxnTimeout time.Duration
	// BatchRecords flushes a partition's buffered records as one batch when
	// this many have accumulated (Flush sends the remainder).
	BatchRecords int
	// Acks selects produce durability: AcksAll (the default) waits until
	// the batch is replicated to the full ISR; AcksLeader returns once the
	// leader has it locally. Idempotent and transactional producers always
	// use AcksAll — exactly-once cannot survive losing acknowledged
	// records on leader failover.
	Acks protocol.AckMode
	// Retry overrides the backoff schedule for request loops; the zero
	// value uses the package defaults (see internal/retry).
	Retry retry.Policy
	// Cancel, when non-nil, interrupts in-flight retries when it closes,
	// in addition to Close (a stream thread passes its kill signal).
	Cancel <-chan struct{}
}

// Producer sends records to partition leaders with optional idempotence
// and transactions. It is safe for use by a single goroutine (like the
// embedded producers inside Streams tasks); Flush-level batching amortizes
// RPC costs exactly as the paper's Section 4.3 relies on.
type Producer struct {
	net  *transport.Network
	self int32
	cfg  ProducerConfig
	meta *metadata

	// closeCh fires on Close; cancel additionally fires on cfg.Cancel and
	// is what unblocks in-flight retry waits.
	closeCh chan struct{}
	cancel  <-chan struct{}

	mu     sync.Mutex
	closed bool

	pid   int64
	epoch int16
	seq   map[protocol.TopicPartition]int32

	txnCoordinator int32
	inTxn          bool
	txnRegistered  map[protocol.TopicPartition]bool

	buffered map[protocol.TopicPartition][]protocol.Record
	rr       int // round-robin cursor for keyless records

	metrics *clientMetrics
	// trace, when attached, tags every RPC this producer sends with a span
	// so an end-to-end commit decomposes into its broker round-trips.
	traceMu sync.Mutex
	trace   *obs.Trace
}

// NewProducer registers a producer client on the network and, if
// idempotent or transactional, obtains its producer id and epoch.
func NewProducer(net *transport.Network, cfg ProducerConfig) (*Producer, error) {
	if cfg.BatchRecords <= 0 {
		cfg.BatchRecords = 256
	}
	if cfg.TransactionalID != "" {
		cfg.Idempotent = true
	}
	if cfg.Idempotent {
		cfg.Acks = protocol.AcksAll
	}
	if cfg.Retry.Clock == nil {
		cfg.Retry.Clock = net.Clock()
	}
	self := net.AllocClientID()
	net.Register(self, func(int32, any) any { return nil })
	closeCh := make(chan struct{})
	cancel := mergeCancel(closeCh, cfg.Cancel)
	p := &Producer{
		net:           net,
		self:          self,
		cfg:           cfg,
		meta:          newMetadata(net, self, cfg.Controller, cfg.Retry, cancel),
		closeCh:       closeCh,
		cancel:        cancel,
		seq:           make(map[protocol.TopicPartition]int32),
		pid:           protocol.NoProducerID,
		txnRegistered: make(map[protocol.TopicPartition]bool),
		buffered:      make(map[protocol.TopicPartition][]protocol.Record),
		metrics:       newClientMetrics(net),
	}
	if cfg.Idempotent {
		if err := p.initProducerID(); err != nil {
			p.Close()
			return nil, err
		}
	}
	return p, nil
}

// AttachTrace tags every RPC the producer sends with spans on tr until
// detached (AttachTrace(nil)). Callers scope it to one operation, e.g. a
// Streams commit cycle.
func (p *Producer) AttachTrace(tr *obs.Trace) {
	p.traceMu.Lock()
	p.trace = tr
	p.traceMu.Unlock()
}

// send routes every producer RPC through the transport with the attached
// trace, if any.
func (p *Producer) send(to int32, req any) (any, error) {
	p.traceMu.Lock()
	tr := p.trace
	p.traceMu.Unlock()
	return p.net.SendTraced(p.self, to, req, tr)
}

// initProducerID performs the registration round-trip of Figure 4.b.
func (p *Producer) initProducerID() error {
	budget := retry.NewBudgetOn(p.cfg.Retry.Clock, requestTimeout)
	retries := p.metrics.retryAttempts("init_producer_id")
	req := &protocol.InitProducerIDRequest{
		TransactionalID: p.cfg.TransactionalID,
		TxnTimeoutMs:    int64(p.cfg.TxnTimeout / time.Millisecond),
	}
	return retryErr("init producer id", retry.Do(p.cfg.Retry, budget, p.cancel, func(attempt int) (bool, error) {
		if attempt > 0 {
			retries.Inc()
		}
		coord, err := p.coordinator(budget)
		if err != nil {
			return true, err
		}
		resp, err := p.send(coord, req)
		if err != nil {
			p.txnCoordinator = 0 // re-resolve
			return false, err
		}
		ir := resp.(*protocol.InitProducerIDResponse)
		switch {
		case ir.Err == protocol.ErrNone:
			p.pid = ir.ProducerID
			p.epoch = ir.ProducerEpoch
			p.seq = make(map[protocol.TopicPartition]int32)
			return true, nil
		case ir.Err == protocol.ErrProducerFenced:
			return true, ErrFenced
		case !ir.Err.Retriable():
			return true, ir.Err.Err()
		}
		p.txnCoordinator = 0 // re-resolve
		return false, ir.Err.Err()
	}))
}

// coordinator resolves (and caches) the transaction coordinator; for
// idempotent-only producers any broker serves the request. The lookup is
// charged against the calling operation's budget.
func (p *Producer) coordinator(budget *retry.Budget) (int32, error) {
	if p.txnCoordinator != 0 {
		return p.txnCoordinator, nil
	}
	key := p.cfg.TransactionalID
	id, err := p.meta.findCoordinator(key, protocol.CoordinatorTxn, budget)
	if err != nil {
		return -1, err
	}
	p.txnCoordinator = id
	return id, nil
}

// PID returns the producer session identity (tests and tools).
func (p *Producer) PID() (int64, int16) { return p.pid, p.epoch }

// PartitionFor returns the partition a key routes to, using the same
// FNV-1a hash brokers use for coordinator routing.
func (p *Producer) PartitionFor(topic string, key []byte) (int32, error) {
	n, err := p.meta.partitions(topic)
	if err != nil {
		return 0, err
	}
	if len(key) == 0 {
		p.mu.Lock()
		p.rr++
		rr := p.rr
		p.mu.Unlock()
		return int32(rr) % n, nil
	}
	return Partition(key, n), nil
}

// Partition hashes a key onto one of n partitions.
func Partition(key []byte, n int32) int32 {
	h := fnv.New32a()
	h.Write(key)
	return int32(h.Sum32() % uint32(n))
}

// BeginTxn starts a transaction. At most one may be ongoing.
func (p *Producer) BeginTxn() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.TransactionalID == "" {
		//kslint:ignore hotalloc misuse error raised once, before any record flows
		return fmt.Errorf("client: BeginTxn on non-transactional producer")
	}
	if p.inTxn {
		//kslint:ignore hotalloc misuse error on a protocol violation, not steady state
		return fmt.Errorf("client: transaction already in progress")
	}
	p.inTxn = true
	p.txnRegistered = make(map[protocol.TopicPartition]bool)
	return nil
}

// Send buffers a record for the partition chosen by its key.
func (p *Producer) Send(topic string, rec protocol.Record) error {
	part, err := p.PartitionFor(topic, rec.Key)
	if err != nil {
		return err
	}
	return p.SendTo(protocol.TopicPartition{Topic: topic, Partition: part}, rec)
}

// SendTo buffers a record for an explicit partition, flushing the
// partition's batch when it reaches the configured size.
func (p *Producer) SendTo(tp protocol.TopicPartition, rec protocol.Record) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.buffered[tp] = append(p.buffered[tp], rec)
	full := len(p.buffered[tp]) >= p.cfg.BatchRecords
	p.mu.Unlock()
	if full {
		return p.flushPartition(tp)
	}
	return nil
}

// Flush sends every buffered batch and waits for acknowledgement. New
// transactional partitions are registered in a single coordinator request
// (paper Section 4.3: "producers can batch multiple writing partitions in
// a single registration request") and batches are grouped into one produce
// RPC per leader broker.
func (p *Producer) Flush() error {
	defer p.metrics.produceLat.ObserveSince(p.net.Clock().Now())
	type pendingBatch struct {
		tp    protocol.TopicPartition
		batch *protocol.RecordBatch
	}
	p.mu.Lock()
	var pend []pendingBatch
	var newTPs []protocol.TopicPartition
	for tp, recs := range p.buffered {
		if len(recs) == 0 {
			continue
		}
		baseSeq := protocol.NoSequence
		if p.cfg.Idempotent {
			baseSeq = p.seq[tp]
		}
		p.metrics.batchRecords.Observe(int64(len(recs)))
		pend = append(pend, pendingBatch{tp: tp, batch: &protocol.RecordBatch{
			ProducerID:    p.pid,
			ProducerEpoch: p.epoch,
			BaseSequence:  baseSeq,
			Transactional: p.inTxn,
			Records:       recs,
		}})
		p.buffered[tp] = nil
		if p.inTxn && !p.txnRegistered[tp] {
			newTPs = append(newTPs, tp)
		}
	}
	inTxn := p.inTxn
	p.mu.Unlock()
	if len(pend) == 0 {
		return nil
	}
	if inTxn && len(newTPs) > 0 {
		if err := p.addPartitionsToTxn(newTPs); err != nil {
			return err
		}
		p.mu.Lock()
		for _, tp := range newTPs {
			p.txnRegistered[tp] = true
		}
		p.mu.Unlock()
	}

	// First pass: one produce RPC per leader broker.
	byLeader := make(map[int32][]pendingBatch)
	var fallback []pendingBatch
	for _, pb := range pend {
		leader, err := p.meta.leaderFor(pb.tp)
		if err != nil {
			fallback = append(fallback, pb)
			continue
		}
		byLeader[leader] = append(byLeader[leader], pb)
	}
	ok := func(pb pendingBatch) {
		if p.cfg.Idempotent {
			p.mu.Lock()
			p.seq[pb.tp] = pb.batch.BaseSequence + int32(len(pb.batch.Records))
			p.mu.Unlock()
		}
	}
	for leader, group := range byLeader {
		req := &protocol.ProduceRequest{TransactionalID: p.cfg.TransactionalID, Acks: p.cfg.Acks}
		for _, pb := range group {
			req.Entries = append(req.Entries, protocol.ProduceEntry{TP: pb.tp, Batch: pb.batch})
		}
		resp, err := p.send(leader, req)
		if err != nil {
			fallback = append(fallback, group...)
			continue
		}
		results := resp.(*protocol.ProduceResponse).Results
		for i, res := range results {
			switch res.Err {
			case protocol.ErrNone, protocol.ErrDuplicateSequence:
				ok(group[i])
			case protocol.ErrProducerFenced:
				return ErrFenced
			default:
				if !res.Err.Retriable() {
					return res.Err.Err()
				}
				p.meta.invalidate(group[i].tp.Topic)
				fallback = append(fallback, group[i])
			}
		}
	}
	// Second pass: retry stragglers through the per-partition path.
	for _, pb := range fallback {
		if err := p.produce(pb.tp, pb.batch); err != nil {
			return err
		}
		ok(pb)
	}
	return nil
}

func (p *Producer) flushPartition(tp protocol.TopicPartition) error {
	p.mu.Lock()
	recs := p.buffered[tp]
	if len(recs) == 0 {
		p.mu.Unlock()
		return nil
	}
	p.buffered[tp] = nil
	inTxn := p.inTxn
	needRegister := inTxn && !p.txnRegistered[tp]
	baseSeq := protocol.NoSequence
	if p.cfg.Idempotent {
		baseSeq = p.seq[tp]
	}
	batch := &protocol.RecordBatch{
		ProducerID:    p.pid,
		ProducerEpoch: p.epoch,
		BaseSequence:  baseSeq,
		Transactional: inTxn,
		Records:       recs,
	}
	p.mu.Unlock()
	defer p.metrics.produceLat.ObserveSince(p.net.Clock().Now())
	p.metrics.batchRecords.Observe(int64(len(recs)))

	if needRegister {
		if err := p.addPartitionsToTxn([]protocol.TopicPartition{tp}); err != nil {
			return err
		}
		p.mu.Lock()
		p.txnRegistered[tp] = true
		p.mu.Unlock()
	}
	if err := p.produce(tp, batch); err != nil {
		return err
	}
	if p.cfg.Idempotent {
		p.mu.Lock()
		p.seq[tp] = baseSeq + int32(len(recs))
		p.mu.Unlock()
	}
	return nil
}

// produce sends one batch with retries: the retry on a lost acknowledgement
// is exactly the duplicated-append hazard idempotence neutralizes
// (paper Section 2.1, "the inter-processor RPC can fail").
func (p *Producer) produce(tp protocol.TopicPartition, batch *protocol.RecordBatch) error {
	budget := retry.NewBudgetOn(p.cfg.Retry.Clock, requestTimeout)
	req := &protocol.ProduceRequest{
		TransactionalID: p.cfg.TransactionalID,
		Acks:            p.cfg.Acks,
		Entries:         []protocol.ProduceEntry{{TP: tp, Batch: batch}},
	}
	retries := p.metrics.produceRetryCounter()
	err := retry.Do(p.cfg.Retry, budget, p.cancel, func(attempt int) (bool, error) {
		if attempt > 0 {
			retries.Inc()
		}
		leader, err := p.meta.leaderFor(tp)
		if err != nil {
			return false, err
		}
		resp, serr := p.send(leader, req)
		if serr != nil {
			p.meta.invalidate(tp.Topic)
			return false, serr
		}
		res := resp.(*protocol.ProduceResponse).Results[0]
		switch res.Err {
		case protocol.ErrNone, protocol.ErrDuplicateSequence:
			return true, nil
		case protocol.ErrProducerFenced:
			return true, ErrFenced
		default:
			if !res.Err.Retriable() {
				return true, res.Err.Err()
			}
			p.meta.invalidate(tp.Topic)
			return false, res.Err.Err()
		}
	})
	if err == nil {
		return nil
	}
	// The label formats only after the produce has already failed, so the
	// steady-state batch send pays no fmt cost.
	//kslint:ignore hotalloc label formatting runs only on the produce failure path
	return retryErr(fmt.Sprintf("produce to %s", tp), err)
}

// addPartitionsToTxn registers partitions with the coordinator before the
// first write of the transaction touches them (paper Figure 4.c).
func (p *Producer) addPartitionsToTxn(tps []protocol.TopicPartition) error {
	req := &protocol.AddPartitionsToTxnRequest{
		TransactionalID: p.cfg.TransactionalID,
		ProducerID:      p.pid,
		ProducerEpoch:   p.epoch,
		Partitions:      tps,
	}
	return p.txnRequest(func(coord int32) (protocol.ErrorCode, error) {
		resp, err := p.send(coord, req)
		if err != nil {
			return protocol.ErrBrokerUnavailable, nil
		}
		return resp.(*protocol.AddPartitionsToTxnResponse).Err, nil
	})
}

// SendOffsetsToTxn adds the group's consumed offsets to the transaction so
// they commit atomically with the produced records (paper Section 4.2.2).
// memberID and generation, when non-empty, enable group-metadata fencing:
// the commit fails with ErrIllegalGeneration if the group has rebalanced
// past this committer (eos-v2 zombie fencing).
func (p *Producer) SendOffsetsToTxn(group string, offsets []protocol.OffsetEntry, memberID string, generation int32) error {
	p.mu.Lock()
	if !p.inTxn {
		p.mu.Unlock()
		return fmt.Errorf("client: SendOffsetsToTxn outside a transaction")
	}
	p.mu.Unlock()
	// The group's offsets partition must carry the commit marker, so it is
	// registered with the transaction like any data partition.
	n, err := p.meta.partitions("__consumer_offsets")
	if err != nil {
		return err
	}
	otp := protocol.TopicPartition{Topic: "__consumer_offsets", Partition: coordinatorPartition(group, n)}
	p.mu.Lock()
	registered := p.txnRegistered[otp]
	p.mu.Unlock()
	if !registered {
		if err := p.addPartitionsToTxn([]protocol.TopicPartition{otp}); err != nil {
			return err
		}
		p.mu.Lock()
		p.txnRegistered[otp] = true
		p.mu.Unlock()
	}
	req := &protocol.TxnOffsetCommitRequest{
		TransactionalID: p.cfg.TransactionalID,
		ProducerID:      p.pid,
		ProducerEpoch:   p.epoch,
		Group:           group,
		MemberID:        memberID,
		GenerationID:    generation,
		Offsets:         offsets,
	}
	budget := retry.NewBudgetOn(p.cfg.Retry.Clock, requestTimeout)
	retries := p.metrics.retryAttempts("txn_offset_commit")
	return retryErr("txn offset commit", retry.Do(p.cfg.Retry, budget, p.cancel, func(attempt int) (bool, error) {
		if attempt > 0 {
			retries.Inc()
		}
		coord, err := p.meta.findCoordinator(group, protocol.CoordinatorGroup, budget)
		if err != nil {
			return true, err
		}
		resp, serr := p.send(coord, req)
		if serr != nil {
			return false, serr
		}
		code := resp.(*protocol.TxnOffsetCommitResponse).Err
		switch {
		case code == protocol.ErrNone:
			return true, nil
		case code == protocol.ErrProducerFenced:
			return true, ErrFenced
		case !code.Retriable():
			return true, code.Err()
		}
		return false, code.Err()
	}))
}

// CommitTxn flushes all pending records and commits the transaction
// (phase one of Figure 4.e; markers follow asynchronously).
func (p *Producer) CommitTxn() error { return p.endTxn(true) }

// AbortTxn aborts the ongoing transaction; buffered unsent records are
// discarded.
func (p *Producer) AbortTxn() error { return p.endTxn(false) }

func (p *Producer) endTxn(commit bool) error {
	p.mu.Lock()
	if !p.inTxn {
		p.mu.Unlock()
		return fmt.Errorf("client: no transaction in progress")
	}
	if !commit {
		p.buffered = make(map[protocol.TopicPartition][]protocol.Record)
	}
	p.mu.Unlock()
	if commit {
		if err := p.Flush(); err != nil {
			return err
		}
	}
	req := &protocol.EndTxnRequest{
		TransactionalID: p.cfg.TransactionalID,
		ProducerID:      p.pid,
		ProducerEpoch:   p.epoch,
		Commit:          commit,
	}
	err := p.txnRequest(func(coord int32) (protocol.ErrorCode, error) {
		resp, err := p.send(coord, req)
		if err != nil {
			return protocol.ErrBrokerUnavailable, nil
		}
		return resp.(*protocol.EndTxnResponse).Err, nil
	})
	if err != nil {
		return err
	}
	p.mu.Lock()
	p.inTxn = false
	p.txnRegistered = make(map[protocol.TopicPartition]bool)
	p.mu.Unlock()
	return nil
}

// txnRequest runs a coordinator request with retry and fencing handling.
func (p *Producer) txnRequest(do func(coord int32) (protocol.ErrorCode, error)) error {
	budget := retry.NewBudgetOn(p.cfg.Retry.Clock, requestTimeout)
	retries := p.metrics.retryAttempts("txn")
	return retryErr("transaction request", retry.Do(p.cfg.Retry, budget, p.cancel, func(attempt int) (bool, error) {
		if attempt > 0 {
			retries.Inc()
		}
		coord, err := p.coordinator(budget)
		if err != nil {
			return true, err
		}
		code, err := do(coord)
		if err != nil {
			return true, err
		}
		switch {
		case code == protocol.ErrNone:
			return true, nil
		case code == protocol.ErrProducerFenced:
			return true, ErrFenced
		case code == protocol.ErrTransactionAborted:
			return true, code.Err()
		case !code.Retriable():
			return true, code.Err()
		}
		if code == protocol.ErrNotCoordinator || code == protocol.ErrBrokerUnavailable {
			p.txnCoordinator = 0
		}
		return false, code.Err()
	}))
}

// Close releases the client's network endpoint. Closing fires the
// cancellation channel, so a retry blocked on an unreachable broker
// unblocks promptly instead of holding its goroutine for the deadline.
func (p *Producer) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.closeCh)
	p.mu.Unlock()
	p.net.Unregister(p.self)
}

// coordinatorPartition mirrors broker.CoordinatorPartition without
// importing the broker package into the client.
func coordinatorPartition(key string, n int32) int32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int32(h.Sum32() % uint32(n))
}
