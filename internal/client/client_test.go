package client

import (
	"testing"
	"time"

	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

func TestRangeAssignor(t *testing.T) {
	a := RangeAssignor{}
	if a.Name() != "range" {
		t.Fatal("name")
	}
	members := []protocol.JoinGroupMember{
		{MemberID: "m2", Subscription: []string{"t"}},
		{MemberID: "m1", Subscription: []string{"t"}},
	}
	parts, _ := a.Assign(members, func(string) int32 { return 5 })
	if len(parts["m1"]) != 3 || len(parts["m2"]) != 2 {
		t.Fatalf("split: m1=%v m2=%v", parts["m1"], parts["m2"])
	}
	seen := map[int32]bool{}
	for _, tps := range parts {
		for _, tp := range tps {
			if seen[tp.Partition] {
				t.Fatalf("partition %d assigned twice", tp.Partition)
			}
			seen[tp.Partition] = true
		}
	}
	// Subscriptions are respected.
	members = []protocol.JoinGroupMember{
		{MemberID: "a", Subscription: []string{"x"}},
		{MemberID: "b", Subscription: []string{"y"}},
	}
	parts, _ = a.Assign(members, func(topic string) int32 { return 2 })
	for _, tp := range parts["a"] {
		if tp.Topic != "x" {
			t.Fatalf("member a got %v", tp)
		}
	}
}

func TestPartitionHashStable(t *testing.T) {
	if Partition([]byte("key"), 8) != Partition([]byte("key"), 8) {
		t.Fatal("unstable")
	}
	spread := map[int32]bool{}
	for i := 0; i < 100; i++ {
		spread[Partition([]byte{byte(i)}, 8)] = true
	}
	if len(spread) < 4 {
		t.Fatalf("poor spread: %d", len(spread))
	}
}

// fakeController serves metadata for the metadata-cache tests.
func fakeController(net *transport.Network, leaders map[string][]int32) {
	net.Register(0, func(_ int32, req any) any {
		switch r := req.(type) {
		case *protocol.MetadataRequest:
			resp := &protocol.MetadataResponse{Brokers: []int32{1, 2}}
			names := r.Topics
			if len(names) == 0 {
				for n := range leaders {
					names = append(names, n)
				}
			}
			for _, n := range names {
				ls, ok := leaders[n]
				if !ok {
					resp.Topics = append(resp.Topics, protocol.TopicMetadata{
						Name: n, Err: protocol.ErrUnknownTopicOrPartition,
					})
					continue
				}
				tm := protocol.TopicMetadata{Name: n}
				for p, l := range ls {
					tm.Partitions = append(tm.Partitions, protocol.PartitionMetadata{
						Partition: int32(p), Leader: l,
					})
				}
				resp.Topics = append(resp.Topics, tm)
			}
			return resp
		case *protocol.FindCoordinatorRequest:
			return &protocol.FindCoordinatorResponse{NodeID: 1}
		}
		return nil
	})
}

func TestMetadataCache(t *testing.T) {
	net := transport.New(transport.Options{})
	leaders := map[string][]int32{"t": {1, 2}}
	fakeController(net, leaders)
	m := newMetadata(net, net.AllocClientID(), 0, retry.Policy{}, nil)

	l, err := m.leaderFor(protocol.TopicPartition{Topic: "t", Partition: 1})
	if err != nil || l != 2 {
		t.Fatalf("leader: %d %v", l, err)
	}
	n, err := m.partitions("t")
	if err != nil || n != 2 {
		t.Fatalf("partitions: %d %v", n, err)
	}
	if _, err := m.partitions("missing"); err == nil {
		t.Fatal("missing topic resolved")
	}
	// Invalidate forces a refresh that observes leadership changes.
	leaders["t"][1] = 1
	if l, _ := m.leaderFor(protocol.TopicPartition{Topic: "t", Partition: 1}); l != 2 {
		t.Fatalf("cache should still hold old leader, got %d", l)
	}
	m.invalidate("t")
	if l, _ := m.leaderFor(protocol.TopicPartition{Topic: "t", Partition: 1}); l != 1 {
		t.Fatalf("refresh missed new leader: %d", l)
	}
	if coord, err := m.findCoordinator("g", protocol.CoordinatorGroup, retry.NewBudget(time.Second)); err != nil || coord != 1 {
		t.Fatalf("coordinator: %d %v", coord, err)
	}
}

// TestDeliverSkipsOnlyAbortedRanges covers a read-committed fetch whose
// batches span an aborted transaction, its marker, and a later committed
// transaction from the same producer: only the aborted range may be
// dropped. (A regression here dropped every batch at or past the aborted
// range's first offset, losing committed records whenever one fetch
// spanned the whole sequence.)
func TestDeliverSkipsOnlyAbortedRanges(t *testing.T) {
	net := transport.New(transport.Options{})
	c := NewConsumer(net, ConsumerConfig{Isolation: protocol.ReadCommitted})
	defer c.Close()
	tp := protocol.TopicPartition{Topic: "t", Partition: 0}
	c.pos[tp] = 0

	data := func(base int64, val string) *protocol.RecordBatch {
		return &protocol.RecordBatch{
			BaseOffset: base, ProducerID: 1, Transactional: true,
			Records: []protocol.Record{{Key: []byte("k"), Value: []byte(val)}},
		}
	}
	marker := func(base int64, typ protocol.MarkerType) *protocol.RecordBatch {
		b := protocol.NewMarkerBatch(1, 0, 0, protocol.ControlMarker{Type: typ})
		b.BaseOffset = base
		return b
	}
	part := protocol.FetchPartition{
		TP: tp,
		Batches: []*protocol.RecordBatch{
			data(0, "aborted"),
			marker(1, protocol.MarkerAbort),
			data(2, "committed"),
			marker(3, protocol.MarkerCommit),
		},
		AbortedTxns: []protocol.AbortedTxn{{ProducerID: 1, FirstOffset: 0}},
	}
	msgs := c.deliver(part)
	if len(msgs) != 1 || string(msgs[0].Record.Value) != "committed" {
		t.Fatalf("deliver returned %+v, want exactly the committed record", msgs)
	}
	if c.pos[tp] != 4 {
		t.Fatalf("position advanced to %d, want 4", c.pos[tp])
	}
}

func TestProducerValidation(t *testing.T) {
	net := transport.New(transport.Options{})
	fakeController(net, map[string][]int32{})
	p, err := NewProducer(net, ProducerConfig{Controller: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.BeginTxn(); err == nil {
		t.Fatal("BeginTxn on non-transactional producer accepted")
	}
	if err := p.CommitTxn(); err == nil {
		t.Fatal("CommitTxn without txn accepted")
	}
	if err := p.SendOffsetsToTxn("g", nil, "", 0); err == nil {
		t.Fatal("SendOffsetsToTxn without txn accepted")
	}
	p.Close()
	if err := p.SendTo(protocol.TopicPartition{Topic: "t"}, protocol.Record{}); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}
