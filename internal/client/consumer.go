package client

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"kstreams/internal/obs"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

var debugOn = os.Getenv("KSTREAMS_DEBUG") != ""

// ResetPolicy says where to start when a partition has no committed offset.
type ResetPolicy int

const (
	ResetEarliest ResetPolicy = iota
	ResetLatest
)

// Assignor computes partition assignments on the group leader. Streams
// plugs in its sticky, task-aware assignor; the default is a range
// assignor.
type Assignor interface {
	Name() string
	// Assign maps each member to partitions. partitionsOf resolves topic
	// partition counts. The returned userData (optional, keyed by member)
	// travels back to each member with its assignment.
	Assign(members []protocol.JoinGroupMember, partitionsOf func(string) int32) (map[string][]protocol.TopicPartition, map[string][]byte)
}

// RangeAssignor splits each topic's partitions contiguously across members.
type RangeAssignor struct{}

// Name implements Assignor.
func (RangeAssignor) Name() string { return "range" }

// Assign implements Assignor.
func (RangeAssignor) Assign(members []protocol.JoinGroupMember, partitionsOf func(string) int32) (map[string][]protocol.TopicPartition, map[string][]byte) {
	out := make(map[string][]protocol.TopicPartition, len(members))
	sort.Slice(members, func(i, j int) bool { return members[i].MemberID < members[j].MemberID })
	byTopic := make(map[string][]string) // topic -> subscribed member ids
	for _, m := range members {
		for _, t := range m.Subscription {
			byTopic[t] = append(byTopic[t], m.MemberID)
		}
	}
	for topic, subs := range byTopic {
		n := int(partitionsOf(topic))
		if n == 0 || len(subs) == 0 {
			continue
		}
		per := n / len(subs)
		extra := n % len(subs)
		next := 0
		for i, mid := range subs {
			count := per
			if i < extra {
				count++
			}
			for j := 0; j < count && next < n; j++ {
				out[mid] = append(out[mid], protocol.TopicPartition{Topic: topic, Partition: int32(next)})
				next++
			}
		}
	}
	return out, nil
}

// ConsumerConfig configures a consumer.
type ConsumerConfig struct {
	// Controller is the controller node id.
	Controller int32
	// Group enables consumer-group membership; empty means manual
	// assignment via Assign.
	Group string
	// ClientID labels the member in generated member ids.
	ClientID string
	// Isolation selects read-committed or read-uncommitted fetches.
	Isolation protocol.IsolationLevel
	// Reset is the position policy without a committed offset.
	Reset ResetPolicy
	// SessionTimeout and HeartbeatInterval tune group liveness.
	SessionTimeout    time.Duration
	HeartbeatInterval time.Duration
	// MaxPollRecords caps records returned per Poll.
	MaxPollRecords int
	// Assignor is used if this member becomes group leader.
	Assignor Assignor
	// UserData is called at each join to produce assignor input (e.g.
	// Streams' previously-owned tasks for stickiness).
	UserData func() []byte
	// Cooperative selects incremental rebalancing: the member keeps
	// processing its current assignment while a rejoin runs in the
	// background, reports the partitions it still owns at join time, and
	// — once the new assignment arrives — revokes only the partitions
	// that actually moved away. The group leader withholds any partition
	// moving between live owners for one generation, so ownership is
	// handed over only after the old owner revoked it and rejoined
	// (which it triggers itself when its revoked set is non-empty).
	// Under the default eager protocol every rebalance revokes
	// everything before the join starts.
	Cooperative bool
	// OnRevoked and OnAssigned run around rebalances, inside Poll.
	// Eager protocol: OnRevoked receives the full old assignment and
	// OnAssigned the full new one. Cooperative protocol: both receive
	// only the delta (partitions leaving, partitions arriving), and
	// OnAssigned fires after every completed rebalance even when the
	// delta is empty so the application can refresh assignment metadata.
	OnRevoked  func([]protocol.TopicPartition)
	OnAssigned func([]protocol.TopicPartition)
	// Retry overrides the backoff schedule for request loops; the zero
	// value uses the package defaults (see internal/retry).
	Retry retry.Policy
	// Cancel, when non-nil, interrupts in-flight retries when it closes,
	// in addition to Close (a stream thread passes its kill signal).
	Cancel <-chan struct{}
	// ObserveFetch, when non-nil, is called with the watermarks of every
	// successful fetch response partition, before records are delivered.
	// The simulator's invariant checkers observe LSO/HW consistency here.
	ObserveFetch func(tp protocol.TopicPartition, hw, lso, logStart int64)
}

// Message is one consumed record.
type Message struct {
	TP     protocol.TopicPartition
	Offset int64
	Record protocol.Record
}

// Consumer reads records from partition leaders, optionally as a consumer
// group member with coordinator-managed assignment and committed offsets.
type Consumer struct {
	net  *transport.Network
	self int32
	cfg  ConsumerConfig
	meta *metadata

	// closeCh fires on Close/Abandon; cancel additionally fires on
	// cfg.Cancel and is what unblocks in-flight retry waits.
	closeCh chan struct{}
	cancel  <-chan struct{}

	mu           sync.Mutex
	closed       bool
	subscription []string
	assignment   []protocol.TopicPartition
	assignData   []byte
	pos          map[protocol.TopicPartition]int64

	memberID    string
	generation  int32
	coordinator int32
	inGroup     bool

	needRejoin atomic.Bool
	hbStop     chan struct{}
	hbDone     sync.WaitGroup

	// Cooperative rebalance state: joinInFlight is true while a
	// background joinGroup runs; its result is staged in pendingAssign
	// and applied (with delta callbacks) by the next Poll, on the
	// polling goroutine. joinErr carries a terminal join failure to the
	// next Poll. joinDone lets Close wait out the background goroutine.
	joinInFlight  bool
	pendingAssign *stagedAssignment
	joinErr       error
	joinDone      sync.WaitGroup
	// fetchPaused gates Poll's fetch (see PauseFetch).
	fetchPaused atomic.Bool

	metrics *clientMetrics
	// trace, when attached, tags the consumer's offset-commit RPCs with
	// spans (the ALOS commit path).
	traceMu sync.Mutex
	trace   *obs.Trace
}

// NewConsumer registers a consumer client on the network.
func NewConsumer(net *transport.Network, cfg ConsumerConfig) *Consumer {
	if cfg.MaxPollRecords <= 0 {
		cfg.MaxPollRecords = 2048
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = 10 * time.Second
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 500 * time.Millisecond
	}
	if cfg.Assignor == nil {
		cfg.Assignor = RangeAssignor{}
	}
	if cfg.Retry.Clock == nil {
		cfg.Retry.Clock = net.Clock()
	}
	self := net.AllocClientID()
	net.Register(self, func(int32, any) any { return nil })
	closeCh := make(chan struct{})
	cancel := mergeCancel(closeCh, cfg.Cancel)
	return &Consumer{
		net:     net,
		self:    self,
		cfg:     cfg,
		meta:    newMetadata(net, self, cfg.Controller, cfg.Retry, cancel),
		closeCh: closeCh,
		cancel:  cancel,
		pos:     make(map[protocol.TopicPartition]int64),
		metrics: newClientMetrics(net),
	}
}

// AttachTrace tags the consumer's RPCs with spans on tr until detached
// (AttachTrace(nil)); a stream thread scopes it to one commit cycle.
func (c *Consumer) AttachTrace(tr *obs.Trace) {
	c.traceMu.Lock()
	c.trace = tr
	c.traceMu.Unlock()
}

// send is the consumer's only RPC path: every round trip is attributed to
// the trace attached at the time (nil when none), so the spans of an
// operation — commit, join, fetch — stay complete.
func (c *Consumer) send(to int32, req any) (any, error) {
	c.traceMu.Lock()
	tr := c.trace
	c.traceMu.Unlock()
	return c.net.SendTraced(c.self, to, req, tr)
}

// Subscribe sets the topics for group-managed assignment.
func (c *Consumer) Subscribe(topics ...string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subscription = topics
	c.needRejoin.Store(true)
}

// Assign sets a manual (non-group) partition assignment.
func (c *Consumer) Assign(tps ...protocol.TopicPartition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.assignment = tps
}

// Assignment returns the current assignment.
func (c *Consumer) Assignment() []protocol.TopicPartition {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]protocol.TopicPartition(nil), c.assignment...)
}

// AssignmentUserData returns the assignor user data received with the
// current assignment (Streams task metadata).
func (c *Consumer) AssignmentUserData() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.assignData
}

// MemberID returns the coordinator-assigned member id.
func (c *Consumer) MemberID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.memberID
}

// Generation returns the current group generation.
func (c *Consumer) Generation() int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.generation
}

// ResetPositions drops all in-memory fetch positions; the next Poll
// re-initializes them from committed offsets (or the reset policy). An
// exactly-once processor calls this after aborting a transaction so the
// input rewinds to the last committed cycle.
func (c *Consumer) ResetPositions() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pos = make(map[protocol.TopicPartition]int64)
}

// Seek overrides the fetch position of a partition.
func (c *Consumer) Seek(tp protocol.TopicPartition, offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pos[tp] = offset
}

// Position returns the next offset to fetch for a partition (-1 if not
// yet initialized).
func (c *Consumer) Position(tp protocol.TopicPartition) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if off, ok := c.pos[tp]; ok {
		return off
	}
	return -1
}

// Poll fetches the next slice of records, managing group membership as
// needed. It returns an empty slice when no data is ready.
func (c *Consumer) Poll() ([]Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClosed
	}
	group := c.cfg.Group != "" && len(c.subscription) > 0
	c.mu.Unlock()
	if group {
		if err := c.ensureMembership(); err != nil {
			return nil, err
		}
	}
	if c.fetchPaused.Load() {
		return nil, nil
	}
	if err := c.ensurePositions(); err != nil {
		return nil, err
	}
	return c.fetch()
}

// PauseFetch stops Poll from returning records (membership management
// still runs) until resumed with PauseFetch(false). The cooperative
// protocol keeps fetching through rebalances by design; a processor that
// has torn down ALL of its task state (abort-and-rejoin recovery) must
// pause the flow, or records are consumed — and their positions advanced
// past — while nothing exists to process them.
func (c *Consumer) PauseFetch(paused bool) {
	c.fetchPaused.Store(paused)
}

// ensureMembership joins or rejoins the group when required.
func (c *Consumer) ensureMembership() error {
	if c.cfg.Cooperative {
		return c.ensureMembershipCooperative()
	}
	c.mu.Lock()
	joined := c.inGroup
	c.mu.Unlock()
	if joined && !c.needRejoin.Load() {
		return nil
	}
	// Revoke the old assignment before rebalancing so the application can
	// commit and release state. Eager protocol: ownership ends when the
	// rejoin starts, not when the new assignment arrives — until the sync
	// completes this member owns nothing, and Assignment must say so.
	c.mu.Lock()
	old := c.assignment
	c.assignment = nil
	c.mu.Unlock()
	if len(old) > 0 && c.cfg.OnRevoked != nil {
		c.cfg.OnRevoked(old)
	}
	c.metrics.revokedParts.Add(int64(len(old)))
	if err := c.joinGroup(); err != nil {
		return err
	}
	c.mu.Lock()
	assigned := append([]protocol.TopicPartition(nil), c.assignment...)
	c.mu.Unlock()
	if c.cfg.OnAssigned != nil {
		c.cfg.OnAssigned(assigned)
	}
	return nil
}

// stagedAssignment is a completed cooperative sync waiting to be applied
// on the polling goroutine.
type stagedAssignment struct {
	partitions []protocol.TopicPartition
	userData   []byte
}

// ensureMembershipCooperative runs the incremental protocol: the rejoin
// happens on a background goroutine while Poll keeps fetching the current
// assignment, and the staged result is applied here — on the polling
// goroutine, where the revoke/assign callbacks are safe to run — as a
// delta against what the member already owns.
func (c *Consumer) ensureMembershipCooperative() error {
	c.mu.Lock()
	if p := c.pendingAssign; p != nil {
		c.pendingAssign = nil
		old := c.assignment
		c.mu.Unlock()
		c.applyCooperativeAssignment(old, p)
		return nil
	}
	if err := c.joinErr; err != nil {
		c.joinErr = nil
		c.mu.Unlock()
		return err
	}
	if c.closed || c.joinInFlight || (c.inGroup && !c.needRejoin.Load()) {
		c.mu.Unlock()
		return nil
	}
	c.joinInFlight = true
	c.joinDone.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.joinDone.Done()
		err := c.joinGroup()
		c.mu.Lock()
		c.joinInFlight = false
		if err != nil && !c.closed {
			c.joinErr = err
		}
		c.mu.Unlock()
	}()
	return nil
}

// applyCooperativeAssignment installs a synced assignment incrementally:
// only partitions that left the member are revoked, only new ones are
// announced, and positions of retained partitions survive untouched — the
// unaffected tasks never stop. A non-empty revoked set triggers the
// follow-up rejoin that lets the leader hand the freed partitions to
// their new owner in the next generation.
func (c *Consumer) applyCooperativeAssignment(old []protocol.TopicPartition, p *stagedAssignment) {
	revoked := tpDiff(old, p.partitions)
	added := tpDiff(p.partitions, old)
	// Revoke before the switch: during the callback the member still owns
	// the partitions and can commit their final offsets (the staged
	// generation is already installed, so the commit passes fencing).
	if len(revoked) > 0 && c.cfg.OnRevoked != nil {
		c.cfg.OnRevoked(revoked)
	}
	c.metrics.revokedParts.Add(int64(len(revoked)))
	c.mu.Lock()
	c.assignment = p.partitions
	c.assignData = p.userData
	pos := make(map[protocol.TopicPartition]int64, len(p.partitions))
	for _, tp := range p.partitions {
		if off, ok := c.pos[tp]; ok {
			pos[tp] = off
		}
	}
	c.pos = pos
	c.mu.Unlock()
	if c.cfg.OnAssigned != nil {
		c.cfg.OnAssigned(added)
	}
	if len(revoked) > 0 {
		c.needRejoin.Store(true)
	}
}

// Rebalancing reports whether a cooperative rebalance is pending, in
// flight, or staged but not yet applied. While true, the group generation
// may be moving under the member, so periodic offset commits risk
// ErrIllegalGeneration fencing; a stream thread defers them until the new
// assignment is applied.
func (c *Consumer) Rebalancing() bool {
	if c.needRejoin.Load() {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.joinInFlight || c.pendingAssign != nil
}

// tpDiff returns the partitions in a that are not in b.
func tpDiff(a, b []protocol.TopicPartition) []protocol.TopicPartition {
	in := make(map[protocol.TopicPartition]bool, len(b))
	for _, tp := range b {
		in[tp] = true
	}
	var out []protocol.TopicPartition
	for _, tp := range a {
		if !in[tp] {
			out = append(out, tp)
		}
	}
	return out
}

// withholdMoving edits a cooperative leader's assignment in place: a
// partition still owned by one member cannot be handed to another in the
// same generation, so it is withheld from its new target. The old owner's
// assignment no longer contains it, which makes the owner revoke it and
// rejoin; the follow-up generation then assigns it for real.
func withholdMoving(assignments map[string][]protocol.TopicPartition, members []protocol.JoinGroupMember) {
	owner := make(map[protocol.TopicPartition]string)
	for _, m := range members {
		for _, tp := range m.Owned {
			owner[tp] = m.MemberID
		}
	}
	for mid, tps := range assignments {
		kept := tps[:0]
		for _, tp := range tps {
			if o, ok := owner[tp]; ok && o != mid {
				continue
			}
			kept = append(kept, tp)
		}
		assignments[mid] = kept
	}
}

func (c *Consumer) joinGroup() error {
	// One budget spans the whole join round, including every nested
	// findCoordinator lookup — the inner calls spend the same allowance
	// instead of starting fresh timers, so join cannot overshoot its
	// stated deadline.
	budget := retry.NewBudgetOn(c.cfg.Retry.Clock, requestTimeout*2)
	loop := retry.New(c.cfg.Retry, budget, c.cancel)
	retries := c.metrics.retryAttempts("join_group")
	fail := func(err error) error {
		return retryErr(fmt.Sprintf("join group %q", c.cfg.Group), err)
	}
	for round := 0; ; round++ {
		if round > 0 {
			retries.Inc()
		}
		// Check (not Wait) at loop top: the retry-immediately branches
		// below re-enter here and must still observe deadline and close.
		if err := loop.Check(); err != nil {
			return fail(err)
		}
		coord, err := c.meta.findCoordinator(c.cfg.Group, protocol.CoordinatorGroup, budget)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.coordinator = coord
		memberID := c.memberID
		subs := append([]string(nil), c.subscription...)
		c.mu.Unlock()
		var userData []byte
		if c.cfg.UserData != nil {
			userData = c.cfg.UserData()
		}
		var owned []protocol.TopicPartition
		if c.cfg.Cooperative {
			c.mu.Lock()
			owned = append([]protocol.TopicPartition(nil), c.assignment...)
			c.mu.Unlock()
		}
		resp, serr := c.send(coord, &protocol.JoinGroupRequest{
			Group:            c.cfg.Group,
			MemberID:         memberID,
			ClientID:         c.cfg.ClientID,
			SessionTimeoutMs: int64(c.cfg.SessionTimeout / time.Millisecond),
			Subscription:     subs,
			ProtocolName:     c.cfg.Assignor.Name(),
			UserData:         userData,
			Owned:            owned,
		})
		if serr != nil {
			if err := loop.Wait(); err != nil {
				return fail(err)
			}
			continue
		}
		jr := resp.(*protocol.JoinGroupResponse)
		if debugOn && jr.Err != protocol.ErrNone {
			fmt.Printf("[debug] consumer %s: join error %v\n", memberID, jr.Err)
		}
		switch jr.Err {
		case protocol.ErrNone:
		case protocol.ErrUnknownMemberID:
			c.mu.Lock()
			c.memberID = ""
			c.mu.Unlock()
			continue
		case protocol.ErrNotCoordinator, protocol.ErrCoordinatorNotAvailable:
			if err := loop.Wait(); err != nil {
				return fail(err)
			}
			continue
		default:
			if jr.Err.Retriable() {
				if err := loop.Wait(); err != nil {
					return fail(err)
				}
				continue
			}
			return jr.Err.Err()
		}

		c.mu.Lock()
		c.memberID = jr.MemberID
		c.generation = jr.GenerationID
		c.mu.Unlock()

		sync := &protocol.SyncGroupRequest{
			Group:        c.cfg.Group,
			MemberID:     jr.MemberID,
			GenerationID: jr.GenerationID,
		}
		if jr.MemberID == jr.LeaderID {
			assignments, userDatas := c.cfg.Assignor.Assign(jr.Members, func(topic string) int32 {
				n, err := c.meta.partitions(topic)
				if err != nil {
					return 0
				}
				return n
			})
			if c.cfg.Cooperative {
				withholdMoving(assignments, jr.Members)
			}
			for mid, tps := range assignments {
				sync.Assignments = append(sync.Assignments, protocol.MemberAssignment{
					MemberID:   mid,
					Partitions: tps,
					UserData:   userDatas[mid],
				})
			}
		}
		sresp, serr := c.send(coord, sync)
		if serr != nil {
			if err := loop.Wait(); err != nil {
				return fail(err)
			}
			continue
		}
		sr := sresp.(*protocol.SyncGroupResponse)
		if debugOn && sr.Err != protocol.ErrNone {
			fmt.Printf("[debug] consumer %s: sync error %v\n", jr.MemberID, sr.Err)
		}
		switch sr.Err {
		case protocol.ErrNone:
		case protocol.ErrRebalanceInProgress, protocol.ErrIllegalGeneration:
			continue
		case protocol.ErrUnknownMemberID:
			c.mu.Lock()
			c.memberID = ""
			c.mu.Unlock()
			continue
		default:
			if sr.Err.Retriable() {
				if err := loop.Wait(); err != nil {
					return fail(err)
				}
				continue
			}
			return sr.Err.Err()
		}

		c.mu.Lock()
		if c.cfg.Cooperative {
			// Stage the result; the polling goroutine applies it as a
			// delta (applyCooperativeAssignment). Assignment and
			// positions stay untouched so in-flight fetches continue.
			c.pendingAssign = &stagedAssignment{partitions: sr.Partitions, userData: sr.UserData}
		} else {
			c.assignment = sr.Partitions
			c.assignData = sr.UserData
			// Positions for partitions we no longer own are dropped; newly
			// assigned partitions initialize from committed offsets.
			pos := make(map[protocol.TopicPartition]int64)
			for _, tp := range sr.Partitions {
				if off, ok := c.pos[tp]; ok {
					pos[tp] = off
				}
			}
			c.pos = pos
		}
		c.inGroup = true
		c.mu.Unlock()
		c.needRejoin.Store(false)
		c.startHeartbeat()
		return nil
	}
}

func (c *Consumer) startHeartbeat() {
	c.stopHeartbeat()
	c.mu.Lock()
	stop := make(chan struct{})
	c.hbStop = stop
	coord := c.coordinator
	memberID := c.memberID
	gen := c.generation
	c.mu.Unlock()
	c.hbDone.Add(1)
	go func() {
		defer c.hbDone.Done()
		clock := c.net.Clock()
		for {
			select {
			case <-stop:
				return
			case <-clock.After(c.cfg.HeartbeatInterval):
			}
			resp, err := c.send(coord, &protocol.HeartbeatRequest{
				Group: c.cfg.Group, MemberID: memberID, GenerationID: gen,
			})
			if err != nil {
				c.needRejoin.Store(true)
				return
			}
			if hr := resp.(*protocol.HeartbeatResponse); hr.Err != protocol.ErrNone {
				if debugOn {
					fmt.Printf("[debug] consumer %s gen %d: heartbeat error %v\n", memberID, gen, hr.Err)
				}
				c.needRejoin.Store(true)
				return
			}
		}
	}()
}

func (c *Consumer) stopHeartbeat() {
	c.mu.Lock()
	stop := c.hbStop
	c.hbStop = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	c.hbDone.Wait()
}

// ensurePositions initializes fetch positions from committed offsets or
// the reset policy.
func (c *Consumer) ensurePositions() error {
	c.mu.Lock()
	var missing []protocol.TopicPartition
	for _, tp := range c.assignment {
		if _, ok := c.pos[tp]; !ok {
			missing = append(missing, tp)
		}
	}
	group := c.cfg.Group
	c.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}
	committed := make(map[protocol.TopicPartition]int64)
	if group != "" {
		offs, err := c.Committed(missing...)
		if err != nil {
			// Falling back to the reset policy here would silently rewind
			// and reprocess committed input; surface the error instead.
			return err
		}
		for tp, off := range offs {
			committed[tp] = off
		}
	}
	for _, tp := range missing {
		off, ok := committed[tp]
		if !ok || off < 0 {
			var err error
			if c.cfg.Reset == ResetLatest {
				off, err = c.listOffset(tp, -1)
			} else {
				off, err = c.listOffset(tp, -2)
			}
			if err != nil {
				return err
			}
		}
		c.mu.Lock()
		c.pos[tp] = off
		c.mu.Unlock()
	}
	return nil
}

func (c *Consumer) listOffset(tp protocol.TopicPartition, t int64) (int64, error) {
	budget := retry.NewBudgetOn(c.cfg.Retry.Clock, requestTimeout)
	retries := c.metrics.retryAttempts("list_offsets")
	offset := int64(-1)
	err := retry.Do(c.cfg.Retry, budget, c.cancel, func(attempt int) (bool, error) {
		if attempt > 0 {
			retries.Inc()
		}
		leader, err := c.meta.leaderFor(tp)
		if err != nil {
			return false, err
		}
		resp, serr := c.send(leader, &protocol.ListOffsetsRequest{TP: tp, Time: t})
		if serr != nil {
			c.meta.invalidate(tp.Topic)
			return false, serr
		}
		lr := resp.(*protocol.ListOffsetsResponse)
		if lr.Err == protocol.ErrNone {
			offset = lr.Offset
			return true, nil
		}
		if !lr.Err.Retriable() {
			return true, lr.Err.Err()
		}
		c.meta.invalidate(tp.Topic)
		return false, lr.Err.Err()
	})
	if err != nil {
		return -1, retryErr(fmt.Sprintf("list offsets for %s", tp), err)
	}
	return offset, nil
}

// BeginningOffset and EndOffset expose log bounds (used for restoration).
func (c *Consumer) BeginningOffset(tp protocol.TopicPartition) (int64, error) {
	return c.listOffset(tp, -2)
}

// EndOffset returns the current readable end (high watermark).
func (c *Consumer) EndOffset(tp protocol.TopicPartition) (int64, error) {
	return c.listOffset(tp, -1)
}

// StableOffset returns the last stable offset: the read-committed end of
// the partition. Streams restoration replays changelogs up to this bound.
func (c *Consumer) StableOffset(tp protocol.TopicPartition) (int64, error) {
	return c.listOffset(tp, -3)
}

// fetch reads every assigned partition from its leader, one RPC per
// leader, in parallel.
func (c *Consumer) fetch() ([]Message, error) {
	defer c.metrics.fetchLat.ObserveSince(c.net.Clock().Now())
	c.mu.Lock()
	byLeader := make(map[int32][]protocol.FetchEntry)
	for _, tp := range c.assignment {
		off, ok := c.pos[tp]
		if !ok {
			continue
		}
		leader, err := c.meta.leaderFor(tp)
		if err != nil {
			continue
		}
		byLeader[leader] = append(byLeader[leader], protocol.FetchEntry{TP: tp, Offset: off})
	}
	iso := c.cfg.Isolation
	c.mu.Unlock()

	type result struct {
		parts []protocol.FetchPartition
	}
	results := make(chan result, len(byLeader))
	var wg sync.WaitGroup
	for leader, entries := range byLeader {
		wg.Add(1)
		go func(leader int32, entries []protocol.FetchEntry) {
			defer wg.Done()
			resp, err := c.send(leader, &protocol.FetchRequest{
				ReplicaID:  -1,
				Isolation:  iso,
				MaxBytes:   1 << 20,
				MaxRecords: c.cfg.MaxPollRecords,
				Entries:    entries,
			})
			if err != nil {
				for _, e := range entries {
					c.meta.invalidate(e.TP.Topic)
				}
				return
			}
			results <- result{parts: resp.(*protocol.FetchResponse).Parts}
		}(leader, entries)
	}
	wg.Wait()
	close(results)

	var msgs []Message
	for r := range results {
		for _, part := range r.parts {
			switch part.Err {
			case protocol.ErrNone:
			case protocol.ErrNotLeader, protocol.ErrUnknownTopicOrPartition:
				c.meta.invalidate(part.TP.Topic)
				continue
			case protocol.ErrOffsetOutOfRange:
				c.resetPosition(part.TP)
				continue
			default:
				continue
			}
			if c.cfg.ObserveFetch != nil {
				c.cfg.ObserveFetch(part.TP, part.HighWatermark, part.LastStableOffset, part.LogStartOffset)
			}
			msgs = append(msgs, c.deliver(part)...)
		}
	}
	// Compare the TP fields directly: TP.String() formats (allocates) per
	// comparison, which dominated the fetch path at high record rates.
	sort.SliceStable(msgs, func(i, j int) bool {
		a, b := msgs[i].TP, msgs[j].TP
		if a.Topic != b.Topic {
			return a.Topic < b.Topic
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return msgs[i].Offset < msgs[j].Offset
	})
	if len(msgs) > c.cfg.MaxPollRecords {
		// Rewind positions beyond the cap so the surplus is refetched.
		for _, m := range msgs[c.cfg.MaxPollRecords:] {
			c.mu.Lock()
			if cur := c.pos[m.TP]; m.Offset < cur {
				c.pos[m.TP] = m.Offset
			}
			c.mu.Unlock()
		}
		msgs = msgs[:c.cfg.MaxPollRecords]
	}
	c.metrics.fetchRecords.Observe(int64(len(msgs)))
	return msgs, nil
}

func (c *Consumer) resetPosition(tp protocol.TopicPartition) {
	t := int64(-2)
	if c.cfg.Reset == ResetLatest {
		t = -1
	}
	if off, err := c.listOffset(tp, t); err == nil {
		c.mu.Lock()
		c.pos[tp] = off
		c.mu.Unlock()
	}
}

// deliver converts fetched batches to messages, dropping aborted
// transactional data and control markers under read-committed isolation
// (paper Section 4.2.3) and advancing the partition position.
func (c *Consumer) deliver(part protocol.FetchPartition) []Message {
	c.mu.Lock()
	pos, ok := c.pos[part.TP]
	c.mu.Unlock()
	if !ok {
		return nil
	}
	// Each aborted range runs from its first offset to the producer's next
	// abort marker. Ranges must be consumed as their markers pass: a batch
	// the same producer writes after an abort marker belongs to a new
	// transaction, not the closed range.
	// The common fetch carries no aborted transactions: leave both maps
	// nil then (reads of a nil map are fine) instead of allocating two
	// maps per partition per poll.
	var abortedStarts map[int64][]int64 // pid -> ascending range starts
	var activeAborted map[int64]bool
	if len(part.AbortedTxns) > 0 {
		abortedStarts = make(map[int64][]int64, len(part.AbortedTxns))
		for _, a := range part.AbortedTxns {
			abortedStarts[a.ProducerID] = append(abortedStarts[a.ProducerID], a.FirstOffset)
		}
		for _, starts := range abortedStarts {
			sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
		}
		activeAborted = make(map[int64]bool, len(abortedStarts))
	}
	var msgs []Message
	for _, b := range part.Batches {
		if b.LastOffset() < pos {
			continue
		}
		if starts := abortedStarts[b.ProducerID]; len(starts) > 0 && b.BaseOffset >= starts[0] {
			activeAborted[b.ProducerID] = true
		}
		if b.Control {
			if m, err := b.Marker(); err == nil && m.Type == protocol.MarkerAbort {
				delete(activeAborted, b.ProducerID)
				if starts := abortedStarts[b.ProducerID]; len(starts) > 0 && starts[0] <= b.BaseOffset {
					abortedStarts[b.ProducerID] = starts[1:]
				}
			}
			pos = b.LastOffset() + 1
			continue
		}
		skip := c.cfg.Isolation == protocol.ReadCommitted &&
			b.Transactional && activeAborted[b.ProducerID]
		if !skip {
			for i := range b.Records {
				off := b.BaseOffset + int64(i)
				if off < pos {
					continue
				}
				msgs = append(msgs, Message{TP: part.TP, Offset: off, Record: b.Records[i]})
			}
		}
		pos = b.LastOffset() + 1
	}
	c.mu.Lock()
	c.pos[part.TP] = pos
	c.mu.Unlock()
	if lag := part.HighWatermark - pos; lag >= 0 {
		c.metrics.fetchLag(part.TP.Topic, part.TP.Partition).Set(lag)
	}
	return msgs
}

// Commit durably commits consumed offsets for the group (ALOS mode).
func (c *Consumer) Commit(offsets []protocol.OffsetEntry) error {
	c.mu.Lock()
	coord := c.coordinator
	memberID := c.memberID
	gen := c.generation
	group := c.cfg.Group
	c.mu.Unlock()
	if group == "" {
		return fmt.Errorf("client: commit without a group")
	}
	budget := retry.NewBudgetOn(c.cfg.Retry.Clock, requestTimeout)
	retries := c.metrics.retryAttempts("offset_commit")
	return retryErr("offset commit", retry.Do(c.cfg.Retry, budget, c.cancel, func(attempt int) (bool, error) {
		if attempt > 0 {
			retries.Inc()
		}
		if coord == 0 {
			var err error
			coord, err = c.meta.findCoordinator(group, protocol.CoordinatorGroup, budget)
			if err != nil {
				return true, err
			}
			c.mu.Lock()
			c.coordinator = coord
			c.mu.Unlock()
		}
		resp, err := c.send(coord, &protocol.OffsetCommitRequest{
			Group:        group,
			MemberID:     memberID,
			GenerationID: gen,
			Offsets:      offsets,
		})
		if err != nil {
			coord = 0
			return false, err
		}
		code := resp.(*protocol.OffsetCommitResponse).Err
		switch {
		case code == protocol.ErrNone:
			return true, nil
		case code == protocol.ErrIllegalGeneration, code == protocol.ErrUnknownMemberID,
			code == protocol.ErrRebalanceInProgress:
			c.needRejoin.Store(true)
			return true, code.Err()
		case !code.Retriable():
			return true, code.Err()
		}
		return false, code.Err()
	}))
}

// Committed returns the group's committed offsets (-1 when none).
func (c *Consumer) Committed(tps ...protocol.TopicPartition) (map[protocol.TopicPartition]int64, error) {
	group := c.cfg.Group
	if group == "" {
		return nil, fmt.Errorf("client: committed offsets without a group")
	}
	budget := retry.NewBudgetOn(c.cfg.Retry.Clock, requestTimeout)
	var out map[protocol.TopicPartition]int64
	err := retry.Do(c.cfg.Retry, budget, c.cancel, func(int) (bool, error) {
		coord, err := c.meta.findCoordinator(group, protocol.CoordinatorGroup, budget)
		if err != nil {
			return true, err
		}
		resp, serr := c.send(coord, &protocol.OffsetFetchRequest{Group: group, TPs: tps})
		if serr != nil {
			return false, serr
		}
		ofr := resp.(*protocol.OffsetFetchResponse)
		if ofr.Err == protocol.ErrNone {
			out = make(map[protocol.TopicPartition]int64, len(ofr.Offsets))
			for _, e := range ofr.Offsets {
				out[e.TP] = e.Offset
			}
			return true, nil
		}
		if !ofr.Err.Retriable() {
			return true, ofr.Err.Err()
		}
		return false, ofr.Err.Err()
	})
	if err != nil {
		return nil, retryErr("offset fetch", err)
	}
	return out, nil
}

// Abandon releases the consumer without leaving the group — the crash
// path: the coordinator discovers the death via session timeout.
func (c *Consumer) Abandon() {
	if !c.beginClose() {
		return
	}
	// A background cooperative join may start a heartbeat on success;
	// wait it out (closing fired the cancellation channel, so it returns
	// promptly) before stopping heartbeats, or the new one would leak.
	c.joinDone.Wait()
	c.stopHeartbeat()
	c.net.Unregister(c.self)
}

// beginClose transitions the consumer to closed and fires the
// cancellation channel, reporting whether this call won the transition.
// Abandon and Close both route through it, so Consumer.closeCh keeps a
// single closing function (chanown).
func (c *Consumer) beginClose() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.closed = true
	close(c.closeCh)
	return true
}

// Close leaves the group and releases the network endpoint. Closing
// fires the cancellation channel, so a retry blocked on an unreachable
// coordinator unblocks promptly instead of holding its goroutine (and
// the stream thread driving it) for the full deadline.
func (c *Consumer) Close() {
	if !c.beginClose() {
		return
	}
	// See Abandon: drain any background cooperative join before touching
	// the heartbeat it might start.
	c.joinDone.Wait()
	c.mu.Lock()
	coord := c.coordinator
	memberID := c.memberID
	inGroup := c.inGroup
	c.mu.Unlock()
	c.stopHeartbeat()
	if inGroup && memberID != "" {
		// Best-effort goodbye; the session timeout reaps us either way.
		_, _ = c.send(coord, &protocol.LeaveGroupRequest{Group: c.cfg.Group, MemberID: memberID})
	}
	c.net.Unregister(c.self)
}
