package client

import (
	"strconv"

	"kstreams/internal/obs"
	"kstreams/internal/transport"
)

// clientMetrics holds the client-layer instrument handles, shared by the
// producer and consumer of the same network.
type clientMetrics struct {
	reg            *obs.Registry
	produceLat     *obs.Histogram // one produce/flush operation, retries included
	fetchLat       *obs.Histogram // one fetch round across all leaders
	batchRecords   *obs.Histogram // records per produced batch
	fetchRecords   *obs.Histogram // records per fetch round
	produceRetries *obs.Counter   // cached: produce runs per batch, the lookup shouldn't
	revokedParts   *obs.Counter   // partitions revoked across rebalances (delta-only under cooperative)
}

func newClientMetrics(net *transport.Network) *clientMetrics {
	reg := net.Obs()
	return &clientMetrics{
		reg:            reg,
		produceLat:     reg.Histogram("client_produce_latency"),
		fetchLat:       reg.Histogram("client_fetch_latency"),
		batchRecords:   reg.SizeHistogram("client_batch_records"),
		fetchRecords:   reg.SizeHistogram("client_fetch_records"),
		produceRetries: reg.Counter("client_retry_attempts_total", obs.L("op", "produce")),
		revokedParts:   reg.Counter("rebalance_partitions_revoked_total"),
	}
}

// produceRetryCounter returns the construction-time produce retry counter;
// the registry lookup (label sort + map hit) stays off the per-batch path.
func (m *clientMetrics) produceRetryCounter() *obs.Counter {
	if m == nil {
		return nil
	}
	return m.produceRetries
}

// retryAttempts returns the retry counter for one operation kind; callers
// look it up once per operation and Inc it per extra attempt.
//
//kslint:coldpath one registry lookup per client operation (join/commit/txn), amortized over many records; the per-batch produce path uses the cached produceRetryCounter instead
func (m *clientMetrics) retryAttempts(op string) *obs.Counter {
	if m == nil {
		return nil
	}
	return m.reg.Counter("client_retry_attempts_total", obs.L("op", op))
}

// fetchLag returns the per-partition consumer lag gauge (high watermark
// minus fetch position).
func (m *clientMetrics) fetchLag(topic string, partition int32) *obs.Gauge {
	if m == nil {
		return nil
	}
	return m.reg.Gauge("client_fetch_lag",
		obs.L("topic", topic),
		obs.L("partition", strconv.Itoa(int(partition))))
}
