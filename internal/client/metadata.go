// Package client implements the Kafka client side: an idempotent and
// transactional producer (paper Sections 4.1-4.2) and a consumer with
// group membership, offset management, and read-committed isolation
// (Section 4.2.3). Both talk to brokers through the transport fabric and
// are the building blocks the Streams runtime (internal/core) is made of.
//
// All request loops route through internal/retry: exponential backoff
// with deterministic jitter, one deadline budget per logical operation
// (propagated through nested calls like joinGroup → findCoordinator),
// and cancellation tied to the client's Close so a blocked retry never
// outlives its owner.
package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

// ErrFenced reports that this producer was fenced by a newer instance with
// the same transactional id (a zombie, paper Section 2.1) and must close.
var ErrFenced = errors.New("client: producer fenced by newer epoch")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("client: closed")

// requestTimeout is the default deadline budget for one logical
// metadata-dependent operation, nested lookups included.
const requestTimeout = 15 * time.Second

// retryErr annotates a retry loop give-up with the operation name.
// Cancellation maps onto ErrClosed so callers that already handle a
// closed client (e.g. the stream thread) treat an interrupted retry the
// same way.
//
//kslint:coldpath formats an error label only after the retried operation has already failed
func retryErr(op string, err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, retry.ErrCanceled):
		return fmt.Errorf("client: %s interrupted: %w", op, ErrClosed)
	case errors.Is(err, retry.ErrBudgetExhausted):
		return fmt.Errorf("client: %s timed out: %w", op, err)
	default:
		return err
	}
}

// mergeCancel returns a channel that closes when either input fires.
// closeCh is always non-nil and always closed eventually (on Close), so
// the relay goroutine cannot leak; extra is an optional external cancel
// (a stream thread's kill signal).
func mergeCancel(closeCh <-chan struct{}, extra <-chan struct{}) <-chan struct{} {
	if extra == nil {
		return closeCh
	}
	out := make(chan struct{})
	go func() {
		select {
		case <-closeCh:
		case <-extra:
		}
		close(out)
	}()
	return out
}

// metadata caches topic partition leadership, refreshed on routing errors.
type metadata struct {
	net        *transport.Network
	self       int32
	controller int32
	policy     retry.Policy
	cancel     <-chan struct{}

	mu     sync.Mutex
	topics map[string][]protocol.PartitionMetadata
}

func newMetadata(net *transport.Network, self, controller int32, policy retry.Policy, cancel <-chan struct{}) *metadata {
	return &metadata{
		net:        net,
		self:       self,
		controller: controller,
		policy:     policy,
		cancel:     cancel,
		topics:     make(map[string][]protocol.PartitionMetadata),
	}
}

// refresh fetches metadata for the named topics.
func (m *metadata) refresh(topics ...string) error {
	// Metadata is shared across operations, so lookups carry no trace.
	resp, err := m.net.SendTraced(m.self, m.controller, &protocol.MetadataRequest{Topics: topics}, nil)
	if err != nil {
		return err
	}
	md := resp.(*protocol.MetadataResponse)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range md.Topics {
		if t.Err != protocol.ErrNone {
			delete(m.topics, t.Name)
			continue
		}
		m.topics[t.Name] = t.Partitions
	}
	return nil
}

// leaderFor resolves the leader broker for a partition, refreshing on miss.
func (m *metadata) leaderFor(tp protocol.TopicPartition) (int32, error) {
	for attempt := 0; attempt < 2; attempt++ {
		m.mu.Lock()
		parts, ok := m.topics[tp.Topic]
		m.mu.Unlock()
		if ok && int(tp.Partition) < len(parts) {
			if l := parts[tp.Partition].Leader; l >= 0 {
				return l, nil
			}
		}
		if err := m.refresh(tp.Topic); err != nil {
			return -1, err
		}
	}
	//kslint:ignore hotalloc error construction after metadata refresh failed, not the routed send path
	return -1, fmt.Errorf("client: no leader for %s", tp)
}

// partitions returns the partition count of a topic.
func (m *metadata) partitions(topic string) (int32, error) {
	m.mu.Lock()
	parts, ok := m.topics[topic]
	m.mu.Unlock()
	if !ok {
		if err := m.refresh(topic); err != nil {
			return 0, err
		}
		m.mu.Lock()
		parts, ok = m.topics[topic]
		m.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("client: unknown topic %q", topic)
		}
	}
	return int32(len(parts)), nil
}

// invalidate drops cached metadata for a topic after a routing error.
func (m *metadata) invalidate(topic string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.topics, topic)
}

// findCoordinator resolves the group or transaction coordinator for a
// key. The caller's budget bounds the lookup, so a nested resolution
// (joinGroup → findCoordinator) spends the outer operation's allowance
// instead of starting a fresh timer.
func (m *metadata) findCoordinator(key string, typ protocol.CoordinatorType, budget *retry.Budget) (int32, error) {
	var node int32
	err := retry.Do(m.policy, budget, m.cancel, func(int) (bool, error) {
		resp, err := m.net.SendTraced(m.self, m.controller, &protocol.FindCoordinatorRequest{Key: key, Type: typ}, nil)
		if err != nil {
			return false, err
		}
		fc := resp.(*protocol.FindCoordinatorResponse)
		switch {
		case fc.Err == protocol.ErrNone:
			node = fc.NodeID
			return true, nil
		case !fc.Err.Retriable():
			return true, fc.Err.Err()
		}
		return false, fc.Err.Err()
	})
	if err != nil {
		//kslint:ignore hotalloc label formatting runs only after coordinator discovery failed
		return -1, retryErr(fmt.Sprintf("find coordinator for %q", key), err)
	}
	return node, nil
}
