// Package client implements the Kafka client side: an idempotent and
// transactional producer (paper Sections 4.1-4.2) and a consumer with
// group membership, offset management, and read-committed isolation
// (Section 4.2.3). Both talk to brokers through the transport fabric and
// are the building blocks the Streams runtime (internal/core) is made of.
package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"kstreams/internal/protocol"
	"kstreams/internal/transport"
)

// ErrFenced reports that this producer was fenced by a newer instance with
// the same transactional id (a zombie, paper Section 2.1) and must close.
var ErrFenced = errors.New("client: producer fenced by newer epoch")

// ErrClosed reports use after Close.
var ErrClosed = errors.New("client: closed")

// requestTimeout bounds retry loops for metadata-dependent requests.
const requestTimeout = 15 * time.Second

const retryBackoff = 2 * time.Millisecond

// metadata caches topic partition leadership, refreshed on routing errors.
type metadata struct {
	net        *transport.Network
	self       int32
	controller int32

	mu     sync.Mutex
	topics map[string][]protocol.PartitionMetadata
}

func newMetadata(net *transport.Network, self, controller int32) *metadata {
	return &metadata{
		net:        net,
		self:       self,
		controller: controller,
		topics:     make(map[string][]protocol.PartitionMetadata),
	}
}

// refresh fetches metadata for the named topics.
func (m *metadata) refresh(topics ...string) error {
	resp, err := m.net.Send(m.self, m.controller, &protocol.MetadataRequest{Topics: topics})
	if err != nil {
		return err
	}
	md := resp.(*protocol.MetadataResponse)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range md.Topics {
		if t.Err != protocol.ErrNone {
			delete(m.topics, t.Name)
			continue
		}
		m.topics[t.Name] = t.Partitions
	}
	return nil
}

// leaderFor resolves the leader broker for a partition, refreshing on miss.
func (m *metadata) leaderFor(tp protocol.TopicPartition) (int32, error) {
	for attempt := 0; attempt < 2; attempt++ {
		m.mu.Lock()
		parts, ok := m.topics[tp.Topic]
		m.mu.Unlock()
		if ok && int(tp.Partition) < len(parts) {
			if l := parts[tp.Partition].Leader; l >= 0 {
				return l, nil
			}
		}
		if err := m.refresh(tp.Topic); err != nil {
			return -1, err
		}
	}
	return -1, fmt.Errorf("client: no leader for %s", tp)
}

// partitions returns the partition count of a topic.
func (m *metadata) partitions(topic string) (int32, error) {
	m.mu.Lock()
	parts, ok := m.topics[topic]
	m.mu.Unlock()
	if !ok {
		if err := m.refresh(topic); err != nil {
			return 0, err
		}
		m.mu.Lock()
		parts, ok = m.topics[topic]
		m.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("client: unknown topic %q", topic)
		}
	}
	return int32(len(parts)), nil
}

// invalidate drops cached metadata for a topic after a routing error.
func (m *metadata) invalidate(topic string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.topics, topic)
}

// findCoordinator resolves the group or transaction coordinator for a key.
func (m *metadata) findCoordinator(key string, typ protocol.CoordinatorType) (int32, error) {
	deadline := time.Now().Add(requestTimeout)
	for {
		resp, err := m.net.Send(m.self, m.controller, &protocol.FindCoordinatorRequest{Key: key, Type: typ})
		if err == nil {
			fc := resp.(*protocol.FindCoordinatorResponse)
			if fc.Err == protocol.ErrNone {
				return fc.NodeID, nil
			}
			if !fc.Err.Retriable() {
				return -1, fc.Err.Err()
			}
		}
		if time.Now().After(deadline) {
			return -1, fmt.Errorf("client: find coordinator for %q timed out", key)
		}
		time.Sleep(retryBackoff)
	}
}
