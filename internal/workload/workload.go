// Package workload generates the synthetic input streams used by the
// benchmark harness and examples, substituting for the paper's production
// traffic (Section 6) and its streaming data generator (Section 4.3):
// keyed event streams with configurable key skew, event-time spacing, and
// out-of-order arrivals, plus domain-specific generators for pageviews
// (Figure 2), market ticks (Bloomberg MxFlow), and conversation events
// (Expedia CP).
package workload

import (
	"fmt"
	"math/rand"
)

// StreamSpec shapes a synthetic keyed stream.
type StreamSpec struct {
	// Keys is the key-space size; keys are "key-000042"-style strings.
	Keys int
	// ZipfS > 1 skews key popularity (Zipf exponent); 0 means uniform.
	ZipfS float64
	// OutOfOrderFraction of records carry a timestamp earlier than the
	// current event-time head.
	OutOfOrderFraction float64
	// MaxDelayMs bounds how far back an out-of-order timestamp may fall.
	MaxDelayMs int64
	// StartTs is the first event timestamp (ms).
	StartTs int64
	// IntervalMs advances event time per record.
	IntervalMs int64
	// ValueBytes pads values to this size (minimum value content applies).
	ValueBytes int
}

func (s *StreamSpec) fill() {
	if s.Keys <= 0 {
		s.Keys = 100
	}
	if s.IntervalMs <= 0 {
		s.IntervalMs = 1
	}
	if s.MaxDelayMs <= 0 {
		s.MaxDelayMs = 1000
	}
	if s.StartTs <= 0 {
		s.StartTs = 1_600_000_000_000
	}
}

// Stream emits records deterministically from a seed.
type Stream struct {
	spec StreamSpec
	rng  *rand.Rand
	zipf *rand.Zipf
	head int64 // event-time head
	n    int64
}

// NewStream builds a deterministic generator.
func NewStream(seed int64, spec StreamSpec) *Stream {
	spec.fill()
	rng := rand.New(rand.NewSource(seed))
	s := &Stream{spec: spec, rng: rng, head: spec.StartTs}
	if spec.ZipfS > 1 {
		s.zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(spec.Keys-1))
	}
	return s
}

// Next returns the next record.
func (s *Stream) Next() (key, value []byte, ts int64) {
	var k int
	if s.zipf != nil {
		k = int(s.zipf.Uint64())
	} else {
		k = s.rng.Intn(s.spec.Keys)
	}
	s.head += s.spec.IntervalMs
	ts = s.head
	if s.spec.OutOfOrderFraction > 0 && s.rng.Float64() < s.spec.OutOfOrderFraction {
		ts -= 1 + s.rng.Int63n(s.spec.MaxDelayMs)
	}
	s.n++
	key = []byte(fmt.Sprintf("key-%06d", k))
	v := fmt.Sprintf("v-%d", s.n)
	if pad := s.spec.ValueBytes - len(v); pad > 0 {
		buf := make([]byte, s.spec.ValueBytes)
		copy(buf, v)
		for i := len(v); i < len(buf); i++ {
			buf[i] = 'x'
		}
		value = buf
	} else {
		value = []byte(v)
	}
	return key, value, ts
}

// Count returns how many records were generated.
func (s *Stream) Count() int64 { return s.n }

// PageView is the Figure 2 event type: a view of a page in a category
// with a dwell period in milliseconds.
type PageView struct {
	Page     string `json:"page"`
	Category string `json:"category"`
	Period   int64  `json:"period"`
	UserID   string `json:"user_id"`
}

// PageViews generates pageview events.
type PageViews struct {
	rng        *rand.Rand
	categories []string
	head       int64
	oooFrac    float64
	maxDelay   int64
}

// NewPageViews builds a deterministic pageview generator.
func NewPageViews(seed int64, categories int, oooFraction float64, maxDelayMs int64) *PageViews {
	cats := make([]string, categories)
	for i := range cats {
		cats[i] = fmt.Sprintf("category-%02d", i)
	}
	return &PageViews{
		rng:        rand.New(rand.NewSource(seed)),
		categories: cats,
		head:       1_600_000_000_000,
		oooFrac:    oooFraction,
		maxDelay:   maxDelayMs,
	}
}

// Next returns a pageview and its event timestamp.
func (g *PageViews) Next() (PageView, int64) {
	g.head += int64(1 + g.rng.Intn(20))
	ts := g.head
	if g.oooFrac > 0 && g.rng.Float64() < g.oooFrac {
		ts -= 1 + g.rng.Int63n(g.maxDelay)
	}
	return PageView{
		Page:     fmt.Sprintf("/page/%d", g.rng.Intn(1000)),
		Category: g.categories[g.rng.Intn(len(g.categories))],
		Period:   int64(g.rng.Intn(120_000)), // dwell up to 2 minutes
		UserID:   fmt.Sprintf("user-%04d", g.rng.Intn(5000)),
	}, ts
}

// Tick is a market data event (Bloomberg MxFlow substitute): a quote for
// a derivative symbol.
type Tick struct {
	Symbol string  `json:"symbol"`
	Bid    float64 `json:"bid"`
	Ask    float64 `json:"ask"`
	Size   int64   `json:"size"`
}

// Ticks generates market ticks with Zipf symbol popularity (a few hot
// symbols take most updates, like real derivatives flow).
type Ticks struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	symbols []string
	mid     []float64
	head    int64
	oooFrac float64
}

// NewTicks builds a deterministic tick generator.
func NewTicks(seed int64, symbols int, oooFraction float64) *Ticks {
	rng := rand.New(rand.NewSource(seed))
	syms := make([]string, symbols)
	mid := make([]float64, symbols)
	for i := range syms {
		syms[i] = fmt.Sprintf("SYM%04d", i)
		mid[i] = 20 + rng.Float64()*480
	}
	return &Ticks{
		rng:     rng,
		zipf:    rand.NewZipf(rng, 1.2, 1, uint64(symbols-1)),
		symbols: syms,
		mid:     mid,
		head:    1_600_000_000_000,
		oooFrac: oooFraction,
	}
}

// Next returns a tick and its event timestamp.
func (g *Ticks) Next() (Tick, int64) {
	i := int(g.zipf.Uint64())
	g.mid[i] *= 1 + (g.rng.Float64()-0.5)*0.002
	spread := g.mid[i] * 0.001
	g.head++
	ts := g.head
	if g.oooFrac > 0 && g.rng.Float64() < g.oooFrac {
		ts -= 1 + g.rng.Int63n(500)
	}
	return Tick{
		Symbol: g.symbols[i],
		Bid:    g.mid[i] - spread,
		Ask:    g.mid[i] + spread,
		Size:   int64(1 + g.rng.Intn(1000)),
	}, ts
}

// ConversationEvent is an Expedia CP-style dialogue event.
type ConversationEvent struct {
	ConversationID string `json:"conversation_id"`
	Seq            int    `json:"seq"`
	Kind           string `json:"kind"` // message, intent, booking, close
	Text           string `json:"text"`
}

// Conversations generates strictly ordered events per conversation,
// interleaved across many live conversations.
type Conversations struct {
	rng  *rand.Rand
	live []conv
	head int64
	next int
}

type conv struct {
	id  string
	seq int
}

// NewConversations builds a deterministic conversation generator.
func NewConversations(seed int64, concurrent int) *Conversations {
	rng := rand.New(rand.NewSource(seed))
	g := &Conversations{rng: rng, head: 1_600_000_000_000}
	for i := 0; i < concurrent; i++ {
		g.live = append(g.live, conv{id: fmt.Sprintf("conv-%05d", i)})
	}
	g.next = concurrent
	return g
}

var kinds = []string{"message", "message", "message", "intent", "booking", "close"}

// Next returns an event and its timestamp; closed conversations are
// replaced with fresh ones.
func (g *Conversations) Next() (ConversationEvent, int64) {
	i := g.rng.Intn(len(g.live))
	c := &g.live[i]
	kind := kinds[g.rng.Intn(len(kinds))]
	c.seq++
	ev := ConversationEvent{
		ConversationID: c.id,
		Seq:            c.seq,
		Kind:           kind,
		Text:           fmt.Sprintf("event %d in %s", c.seq, c.id),
	}
	g.head += int64(1 + g.rng.Intn(50))
	if kind == "close" {
		g.live[i] = conv{id: fmt.Sprintf("conv-%05d", g.next)}
		g.next++
	}
	return ev, g.head
}
