package workload

import (
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(7, StreamSpec{Keys: 10, OutOfOrderFraction: 0.3})
	b := NewStream(7, StreamSpec{Keys: 10, OutOfOrderFraction: 0.3})
	for i := 0; i < 100; i++ {
		ka, va, ta := a.Next()
		kb, vb, tb := b.Next()
		if string(ka) != string(kb) || string(va) != string(vb) || ta != tb {
			t.Fatalf("divergence at %d", i)
		}
	}
	if a.Count() != 100 {
		t.Fatalf("count = %d", a.Count())
	}
}

func TestStreamOutOfOrderFraction(t *testing.T) {
	g := NewStream(1, StreamSpec{Keys: 10, OutOfOrderFraction: 0.25, MaxDelayMs: 5000, IntervalMs: 100})
	ooo := 0
	var head int64
	for i := 0; i < 2000; i++ {
		_, _, ts := g.Next()
		if ts < head {
			ooo++
		}
		if ts > head {
			head = ts
		}
	}
	frac := float64(ooo) / 2000
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("out-of-order fraction = %.2f, want ~0.25", frac)
	}
}

func TestStreamZipfSkew(t *testing.T) {
	g := NewStream(1, StreamSpec{Keys: 100, ZipfS: 1.5})
	counts := map[string]int{}
	for i := 0; i < 5000; i++ {
		k, _, _ := g.Next()
		counts[string(k)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5000/10 {
		t.Fatalf("hottest key only %d of 5000 — no skew", max)
	}
}

func TestStreamValuePadding(t *testing.T) {
	g := NewStream(1, StreamSpec{Keys: 3, ValueBytes: 64})
	_, v, _ := g.Next()
	if len(v) != 64 {
		t.Fatalf("value length = %d", len(v))
	}
}

func TestPageViews(t *testing.T) {
	g := NewPageViews(3, 4, 0.2, 1000)
	cats := map[string]bool{}
	var prev int64
	ooo := 0
	for i := 0; i < 1000; i++ {
		pv, ts := g.Next()
		cats[pv.Category] = true
		if pv.Period < 0 || pv.Period > 120000 {
			t.Fatalf("period out of range: %d", pv.Period)
		}
		if ts < prev {
			ooo++
		}
		if ts > prev {
			prev = ts
		}
	}
	if len(cats) != 4 {
		t.Fatalf("categories = %d", len(cats))
	}
	if ooo == 0 {
		t.Fatal("no out-of-order events at 20% fraction")
	}
}

func TestTicksPlausible(t *testing.T) {
	g := NewTicks(5, 20, 0)
	syms := map[string]int{}
	for i := 0; i < 2000; i++ {
		tick, _ := g.Next()
		syms[tick.Symbol]++
		if tick.Bid <= 0 || tick.Ask <= tick.Bid {
			t.Fatalf("implausible tick: %+v", tick)
		}
		if tick.Size <= 0 || tick.Size > 1000 {
			t.Fatalf("size out of range: %d", tick.Size)
		}
	}
	// Zipf skew: the hottest symbol dominates.
	max := 0
	for _, c := range syms {
		if c > max {
			max = c
		}
	}
	if max < 300 {
		t.Fatalf("hottest symbol only %d of 2000", max)
	}
}

func TestConversationsOrderedPerConversation(t *testing.T) {
	g := NewConversations(9, 10)
	lastSeq := map[string]int{}
	closedThenContinued := false
	closed := map[string]bool{}
	for i := 0; i < 2000; i++ {
		ev, _ := g.Next()
		if closed[ev.ConversationID] {
			closedThenContinued = true
		}
		if ev.Seq != lastSeq[ev.ConversationID]+1 {
			t.Fatalf("conversation %s: seq %d after %d", ev.ConversationID, ev.Seq, lastSeq[ev.ConversationID])
		}
		lastSeq[ev.ConversationID] = ev.Seq
		if ev.Kind == "close" {
			closed[ev.ConversationID] = true
		}
	}
	if closedThenContinued {
		t.Fatal("events emitted for a closed conversation")
	}
	if len(lastSeq) <= 10 {
		t.Fatal("no conversation turnover")
	}
}
