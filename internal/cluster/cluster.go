// Package cluster assembles a complete in-process Kafka cluster: a
// controller (metadata, replica placement, leader election, ISR
// management, producer-id allocation) plus N brokers wired together over
// the transport fabric. It is the failure-injection surface for tests and
// benchmarks: brokers can be crashed and restarted, recovering from their
// retained storage backends exactly like a broker restarting off its disk.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"kstreams/internal/broker"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/storage"
	"kstreams/internal/transport"
)

// ControllerNode is the controller's node id on the transport network.
// Brokers are numbered 1..N.
const ControllerNode int32 = 0

// Config parameterizes the cluster.
type Config struct {
	// Brokers is the number of brokers (default 3, as in the paper's
	// evaluation testbed).
	Brokers int
	// ReplicationFactor for internal topics and the CreateTopic default;
	// capped at Brokers (default min(3, Brokers)).
	ReplicationFactor int
	// RPCLatency and Jitter configure the transport fabric.
	RPCLatency time.Duration
	Jitter     time.Duration
	// AppendLatency models per-append storage latency on partition leaders.
	AppendLatency time.Duration
	// SegmentBytes is the log segment roll threshold.
	SegmentBytes int64
	// DataDir, when non-empty, stores logs on the real filesystem under
	// DataDir/broker-<id>; otherwise logs live in memory.
	DataDir string
	// OffsetsPartitions / TxnPartitions size the internal topics.
	OffsetsPartitions int32
	TxnPartitions     int32
	// CleanerInterval enables background compaction on brokers when > 0.
	CleanerInterval time.Duration
	// GroupRebalanceTimeout bounds consumer group rebalance rounds.
	GroupRebalanceTimeout time.Duration
	// TxnTimeout aborts idle transactions.
	TxnTimeout time.Duration
	// Seed makes transport jitter deterministic.
	Seed int64
	// Clock is the time source for the transport fabric and every broker
	// wait (nil uses the wall clock). The simulator substitutes a virtual
	// clock so the whole cluster runs on simulated time.
	Clock retry.Clock
	// ReplicaPollInterval overrides the follower fetch cadence; 0 keeps
	// the broker default. Simulations coarsen it so replication progress
	// aligns with virtual-clock quanta.
	ReplicaPollInterval time.Duration
	// Faults, when non-nil, is shared with every broker so tests can
	// toggle deliberate protocol bugs (see broker.Faults).
	Faults *broker.Faults
}

func (c *Config) fill() {
	if c.Brokers <= 0 {
		c.Brokers = 3
	}
	if c.ReplicationFactor <= 0 {
		c.ReplicationFactor = 3
	}
	if c.ReplicationFactor > c.Brokers {
		c.ReplicationFactor = c.Brokers
	}
	if c.OffsetsPartitions <= 0 {
		c.OffsetsPartitions = 8
	}
	if c.TxnPartitions <= 0 {
		c.TxnPartitions = 8
	}
}

// Cluster owns the controller and brokers.
type Cluster struct {
	cfg Config
	net *transport.Network

	mu       sync.Mutex
	brokers  map[int32]*broker.Broker
	backends map[int32]storage.Backend

	ctl *controller
}

// New starts a cluster and creates the internal coordinator topics.
func New(cfg Config) (*Cluster, error) {
	cfg.fill()
	c := &Cluster{
		cfg:      cfg,
		net:      transport.New(transport.Options{RPCLatency: cfg.RPCLatency, Jitter: cfg.Jitter, Seed: cfg.Seed, Clock: cfg.Clock}),
		brokers:  make(map[int32]*broker.Broker),
		backends: make(map[int32]storage.Backend),
	}
	c.ctl = newController(c)
	c.net.Register(ControllerNode, c.ctl.handleRPC)
	for i := 1; i <= cfg.Brokers; i++ {
		id := int32(i)
		be, err := c.newBackend(id)
		if err != nil {
			return nil, err
		}
		c.backends[id] = be
		c.brokers[id] = c.startBroker(id, be)
		c.ctl.registerBroker(id)
	}
	if err := c.CreateTopic(broker.OffsetsTopic, cfg.OffsetsPartitions, 0,
		protocol.TopicConfig{Compacted: true}); err != nil {
		return nil, fmt.Errorf("cluster: creating offsets topic: %w", err)
	}
	if err := c.CreateTopic(broker.TxnTopic, cfg.TxnPartitions, 0,
		protocol.TopicConfig{Compacted: true}); err != nil {
		return nil, fmt.Errorf("cluster: creating txn topic: %w", err)
	}
	return c, nil
}

func (c *Cluster) newBackend(id int32) (storage.Backend, error) {
	if c.cfg.DataDir == "" {
		return storage.NewMem(), nil
	}
	return storage.NewFS(fmt.Sprintf("%s/broker-%d", c.cfg.DataDir, id))
}

func (c *Cluster) startBroker(id int32, be storage.Backend) *broker.Broker {
	return broker.New(c.net, broker.Config{
		ID:                    id,
		ControllerID:          ControllerNode,
		Backend:               be,
		SegmentBytes:          c.cfg.SegmentBytes,
		AppendLatency:         c.cfg.AppendLatency,
		CleanerInterval:       c.cfg.CleanerInterval,
		GroupRebalanceTimeout: c.cfg.GroupRebalanceTimeout,
		OffsetsPartitions:     c.cfg.OffsetsPartitions,
		TxnPartitions:         c.cfg.TxnPartitions,
		TxnTimeout:            c.cfg.TxnTimeout,
		ReplicaPollInterval:   c.cfg.ReplicaPollInterval,
		Faults:                c.cfg.Faults,
	})
}

// Net exposes the transport fabric (clients register on it).
func (c *Cluster) Net() *transport.Network { return c.net }

// Controller returns the controller's node id for client RPCs.
func (c *Cluster) Controller() int32 { return ControllerNode }

// CreateTopic creates a topic with the given partition count. rf=0 uses the
// cluster default replication factor.
func (c *Cluster) CreateTopic(name string, partitions int32, rf int, cfg protocol.TopicConfig) error {
	if rf <= 0 {
		rf = c.cfg.ReplicationFactor
	}
	resp := c.ctl.handleCreateTopic(&protocol.CreateTopicRequest{
		Name: name, Partitions: partitions, ReplicationFactor: rf, Config: cfg,
	})
	return resp.Err.Err()
}

// CrashBroker stops a broker abruptly: its node becomes unreachable, its
// leaderships move to ISR survivors. Storage is retained for restart.
func (c *Cluster) CrashBroker(id int32) {
	c.mu.Lock()
	b := c.brokers[id]
	delete(c.brokers, id)
	c.mu.Unlock()
	if b == nil {
		return
	}
	c.net.Crash(id)
	b.Stop()
	c.ctl.brokerFailed(id)
}

// RestartBroker brings a crashed broker back on its retained storage; it
// recovers logs, follows current leaders, and rejoins ISRs as it catches up.
func (c *Cluster) RestartBroker(id int32) error {
	c.mu.Lock()
	if _, running := c.brokers[id]; running {
		c.mu.Unlock()
		return fmt.Errorf("cluster: broker %d already running", id)
	}
	be, ok := c.backends[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: unknown broker %d", id)
	}
	c.net.Restore(id)
	b := c.startBroker(id, be)
	c.mu.Lock()
	c.brokers[id] = b
	c.mu.Unlock()
	c.ctl.brokerReturned(id)
	return nil
}

// Broker returns a running broker by id (nil if crashed), for tests that
// need to poke broker internals (e.g. forced compaction).
func (c *Cluster) Broker(id int32) *broker.Broker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.brokers[id]
}

// LeaderOf returns the current leader broker id for a partition, or -1.
func (c *Cluster) LeaderOf(tp protocol.TopicPartition) int32 {
	return c.ctl.leaderOf(tp)
}

// TxnPartitions returns the effective __transaction_state partition
// count (after defaulting), which maps transactional ids to coordinators.
func (c *Cluster) TxnPartitions() int32 { return c.cfg.TxnPartitions }

// RPCCount proxies the transport's delivered-RPC counter (the Figure-5
// write-amplification proxy).
func (c *Cluster) RPCCount() int64 { return c.net.RPCCount() }

// RPCAttempts proxies the transport's attempted-RPC counter, which also
// counts sends that failed fast against unreachable destinations.
func (c *Cluster) RPCAttempts() int64 { return c.net.RPCAttempts() }

// Close stops all brokers. Each broker is retired through the controller
// first (ISR shrink and leader re-election), so in-flight transaction
// marker writes on surviving leaders are not left waiting for acks from
// already-stopped followers.
func (c *Cluster) Close() {
	c.mu.Lock()
	brokers := make(map[int32]*broker.Broker, len(c.brokers))
	for id, b := range c.brokers {
		brokers[id] = b
	}
	c.brokers = make(map[int32]*broker.Broker)
	c.mu.Unlock()
	for id, b := range brokers {
		c.ctl.brokerFailed(id)
		b.Stop()
	}
	c.net.Unregister(ControllerNode)
}
