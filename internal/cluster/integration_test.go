package cluster

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
)

func testCluster(t *testing.T, brokers int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Brokers:               brokers,
		OffsetsPartitions:     4,
		TxnPartitions:         4,
		GroupRebalanceTimeout: 300 * time.Millisecond,
		TxnTimeout:            30 * time.Second,
	})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func rec(key, val string, ts int64) protocol.Record {
	return protocol.Record{Key: []byte(key), Value: []byte(val), Timestamp: ts}
}

func pollAll(t *testing.T, cons *client.Consumer, want int, timeout time.Duration) []client.Message {
	t.Helper()
	var out []client.Message
	deadline := time.Now().Add(timeout)
	for len(out) < want && time.Now().Before(deadline) {
		msgs, err := cons.Poll()
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		out = append(out, msgs...)
		if len(msgs) == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	return out
}

func TestProduceConsumeRoundTrip(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("events", 4, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{Controller: c.Controller()})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for i := 0; i < 100; i++ {
		if err := prod.Send("events", rec(fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d", i), int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	cons := client.NewConsumer(c.Net(), client.ConsumerConfig{Controller: c.Controller()})
	defer cons.Close()
	var tps []protocol.TopicPartition
	for p := int32(0); p < 4; p++ {
		tps = append(tps, protocol.TopicPartition{Topic: "events", Partition: p})
	}
	cons.Assign(tps...)
	msgs := pollAll(t, cons, 100, 5*time.Second)
	if len(msgs) != 100 {
		t.Fatalf("consumed %d of 100", len(msgs))
	}
	seen := make(map[string]bool)
	for _, m := range msgs {
		seen[string(m.Record.Value)] = true
	}
	if len(seen) != 100 {
		t.Fatalf("unique values %d of 100 (duplicates or loss)", len(seen))
	}
}

func TestKeyRoutingIsStable(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("routed", 8, 0, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{Controller: c.Controller()})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	p1, _ := prod.PartitionFor("routed", []byte("alpha"))
	p2, _ := prod.PartitionFor("routed", []byte("alpha"))
	if p1 != p2 {
		t.Fatalf("same key routed to %d and %d", p1, p2)
	}
	if client.Partition([]byte("alpha"), 8) != p1 {
		t.Fatal("Partition helper disagrees with producer routing")
	}
}

func TestTransactionCommitVisibility(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("out", 2, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), TransactionalID: "app-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()

	rc := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Isolation: protocol.ReadCommitted,
	})
	defer rc.Close()
	rc.Assign(protocol.TopicPartition{Topic: "out", Partition: 0},
		protocol.TopicPartition{Topic: "out", Partition: 1})

	if err := prod.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := prod.Send("out", rec(fmt.Sprintf("k%d", i), "v", int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	// Open transaction: read-committed sees nothing.
	if msgs := pollAll(t, rc, 1, 150*time.Millisecond); len(msgs) != 0 {
		t.Fatalf("read committed saw %d records from an open txn", len(msgs))
	}
	if err := prod.CommitTxn(); err != nil {
		t.Fatal(err)
	}
	if msgs := pollAll(t, rc, 10, 5*time.Second); len(msgs) != 10 {
		t.Fatalf("after commit: %d of 10", len(msgs))
	}
}

func TestTransactionAbortInvisibility(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("out", 1, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), TransactionalID: "app-2",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()

	// Aborted transaction, then a committed one.
	if err := prod.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	prod.Send("out", rec("a", "aborted", 1))
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := prod.AbortTxn(); err != nil {
		t.Fatal(err)
	}
	if err := prod.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	prod.Send("out", rec("b", "committed", 2))
	if err := prod.CommitTxn(); err != nil {
		t.Fatal(err)
	}

	rc := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Isolation: protocol.ReadCommitted,
	})
	defer rc.Close()
	rc.Assign(protocol.TopicPartition{Topic: "out", Partition: 0})
	msgs := pollAll(t, rc, 1, 5*time.Second)
	if len(msgs) != 1 || string(msgs[0].Record.Value) != "committed" {
		t.Fatalf("read committed got %+v", msgs)
	}
	// Read-uncommitted sees both (the aborted record is in the log).
	ru := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Isolation: protocol.ReadUncommitted,
	})
	defer ru.Close()
	ru.Assign(protocol.TopicPartition{Topic: "out", Partition: 0})
	if msgs := pollAll(t, ru, 2, 5*time.Second); len(msgs) != 2 {
		t.Fatalf("read uncommitted got %d records", len(msgs))
	}
}

func TestZombieFencing(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("out", 1, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	// First instance of the application.
	zombie, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), TransactionalID: "app-x",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer zombie.Close()
	if err := zombie.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	zombie.Send("out", rec("k", "zombie-write", 1))
	if err := zombie.Flush(); err != nil {
		t.Fatal(err)
	}

	// A replacement instance registers the same transactional id: the
	// coordinator bumps the epoch, aborting the zombie's open transaction.
	fresh, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), TransactionalID: "app-x",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()

	// The zombie can neither write nor commit.
	if err := zombie.CommitTxn(); !errors.Is(err, client.ErrFenced) {
		t.Fatalf("zombie commit: %v, want fenced", err)
	}

	// The fresh instance works, and the zombie's record is aborted.
	if err := fresh.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	fresh.Send("out", rec("k", "fresh-write", 2))
	if err := fresh.CommitTxn(); err != nil {
		t.Fatal(err)
	}
	rc := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Isolation: protocol.ReadCommitted,
	})
	defer rc.Close()
	rc.Assign(protocol.TopicPartition{Topic: "out", Partition: 0})
	msgs := pollAll(t, rc, 1, 5*time.Second)
	if len(msgs) != 1 || string(msgs[0].Record.Value) != "fresh-write" {
		t.Fatalf("visible records: %+v", msgs)
	}
}

func TestTransactionalOffsetsAtomicity(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("out", 1, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), TransactionalID: "app-o",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	src := protocol.TopicPartition{Topic: "src", Partition: 0}

	// Abort: offsets must not become visible.
	if err := prod.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	prod.Send("out", rec("k", "v1", 1))
	if err := prod.SendOffsetsToTxn("group-a", []protocol.OffsetEntry{{TP: src, Offset: 5}}, "", 0); err != nil {
		t.Fatal(err)
	}
	if err := prod.AbortTxn(); err != nil {
		t.Fatal(err)
	}
	checker := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Group: "group-a",
	})
	defer checker.Close()
	offs, err := checker.Committed(src)
	if err != nil {
		t.Fatal(err)
	}
	if offs[src] != -1 {
		t.Fatalf("aborted offsets visible: %d", offs[src])
	}

	// Commit: offsets visible.
	if err := prod.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	prod.Send("out", rec("k", "v2", 2))
	if err := prod.SendOffsetsToTxn("group-a", []protocol.OffsetEntry{{TP: src, Offset: 7}}, "", 0); err != nil {
		t.Fatal(err)
	}
	if err := prod.CommitTxn(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		offs, err = checker.Committed(src)
		if err != nil {
			t.Fatal(err)
		}
		if offs[src] == 7 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("committed offset = %d, want 7", offs[src])
		}
		time.Sleep(time.Millisecond)
	}
}

func TestConsumerGroupRebalance(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("in", 4, 0, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	mk := func() *client.Consumer {
		return client.NewConsumer(c.Net(), client.ConsumerConfig{
			Controller:        c.Controller(),
			Group:             "g1",
			SessionTimeout:    500 * time.Millisecond,
			HeartbeatInterval: 50 * time.Millisecond,
		})
	}
	c1 := mk()
	defer c1.Close()
	c1.Subscribe("in")
	if _, err := c1.Poll(); err != nil {
		t.Fatal(err)
	}
	if got := len(c1.Assignment()); got != 4 {
		t.Fatalf("solo member owns %d of 4 partitions", got)
	}

	c2 := mk()
	c2.Subscribe("in")
	// Joins block until all known members rejoin, so each consumer polls
	// from its own goroutine (as real client threads do). c1 learns about
	// the rebalance via heartbeat and rejoins.
	pollLoop := func(c *client.Consumer, stop <-chan struct{}) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Poll()
			time.Sleep(2 * time.Millisecond)
		}
	}
	stop := make(chan struct{})
	go pollLoop(c1, stop)
	go pollLoop(c2, stop)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c1.Assignment()) == 2 && len(c2.Assignment()) == 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(c1.Assignment()) != 2 || len(c2.Assignment()) != 2 {
		close(stop)
		t.Fatalf("assignment after join: c1=%d c2=%d", len(c1.Assignment()), len(c2.Assignment()))
	}
	close(stop)
	time.Sleep(10 * time.Millisecond)
	// A member leaving returns its partitions to the survivor.
	c2.Close()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c1.Poll()
		if len(c1.Assignment()) == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(c1.Assignment()) != 4 {
		t.Fatalf("assignment after leave: %d", len(c1.Assignment()))
	}
}

func TestBrokerCrashLeaderFailover(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("ha", 1, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	tp := protocol.TopicPartition{Topic: "ha", Partition: 0}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), Idempotent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for i := 0; i < 50; i++ {
		if err := prod.Send("ha", rec(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}

	leader := c.LeaderOf(tp)
	if leader < 0 {
		t.Fatal("no leader")
	}
	c.CrashBroker(leader)
	newLeader := c.LeaderOf(tp)
	if newLeader < 0 || newLeader == leader {
		t.Fatalf("failover leader = %d (was %d)", newLeader, leader)
	}

	// Producing continues against the new leader.
	for i := 50; i < 100; i++ {
		if err := prod.Send("ha", rec(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), int64(i))); err != nil {
			t.Fatalf("send after failover: %v", err)
		}
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}

	cons := client.NewConsumer(c.Net(), client.ConsumerConfig{Controller: c.Controller()})
	defer cons.Close()
	cons.Assign(tp)
	msgs := pollAll(t, cons, 100, 5*time.Second)
	unique := make(map[string]bool)
	for _, m := range msgs {
		unique[string(m.Record.Value)] = true
	}
	if len(unique) != 100 {
		t.Fatalf("after failover: %d unique of 100 (loss or duplication)", len(unique))
	}

	// The crashed broker restarts, catches up, and rejoins the ISR.
	if err := c.RestartBroker(leader); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		md := c.ctl.handleMetadata(&protocol.MetadataRequest{Topics: []string{"ha"}})
		if len(md.Topics) == 1 && len(md.Topics[0].Partitions) == 1 &&
			len(md.Topics[0].Partitions[0].ISR) == 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("restarted broker never rejoined the ISR")
}

func TestCommittedDataSurvivesFullFailoverChain(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("chain", 1, 3, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	tp := protocol.TopicPartition{Topic: "chain", Partition: 0}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{
		Controller: c.Controller(), Idempotent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()

	total := 0
	for round := 0; round < 2; round++ {
		for i := 0; i < 20; i++ {
			if err := prod.Send("chain", rec(fmt.Sprintf("r%d-k%d", round, i), "v", int64(total))); err != nil {
				t.Fatal(err)
			}
			total++
		}
		if err := prod.Flush(); err != nil {
			t.Fatal(err)
		}
		leader := c.LeaderOf(tp)
		c.CrashBroker(leader)
		defer c.RestartBroker(leader)
		if c.LeaderOf(tp) < 0 {
			t.Fatal("partition offline with survivors in ISR")
		}
	}
	cons := client.NewConsumer(c.Net(), client.ConsumerConfig{Controller: c.Controller()})
	defer cons.Close()
	cons.Assign(tp)
	msgs := pollAll(t, cons, total, 5*time.Second)
	unique := make(map[string]bool)
	for _, m := range msgs {
		unique[string(m.Record.Key)] = true
	}
	if len(unique) != total {
		t.Fatalf("%d unique keys of %d after two failovers", len(unique), total)
	}
}

func TestGroupCoordinatorFailover(t *testing.T) {
	c := testCluster(t, 3)
	if err := c.CreateTopic("in", 1, 0, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	tp := protocol.TopicPartition{Topic: "in", Partition: 0}
	cons := client.NewConsumer(c.Net(), client.ConsumerConfig{
		Controller: c.Controller(), Group: "durable-group",
	})
	defer cons.Close()
	if err := cons.Commit([]protocol.OffsetEntry{{TP: tp, Offset: 42}}); err != nil {
		t.Fatal(err)
	}
	// Crash the coordinator broker; the offsets partition fails over and the
	// new coordinator replays the log.
	idx := coordinatorPartitionForTest("durable-group", 4)
	coord := c.LeaderOf(protocol.TopicPartition{Topic: "__consumer_offsets", Partition: idx})
	c.CrashBroker(coord)
	defer c.RestartBroker(coord)

	deadline := time.Now().Add(5 * time.Second)
	for {
		offs, err := cons.Committed(tp)
		if err == nil && offs[tp] == 42 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("committed offset after coordinator failover: %v (err %v)", offs, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeleteRecords(t *testing.T) {
	c := testCluster(t, 1)
	if err := c.CreateTopic("purge", 1, 1, protocol.TopicConfig{}); err != nil {
		t.Fatal(err)
	}
	tp := protocol.TopicPartition{Topic: "purge", Partition: 0}
	prod, err := client.NewProducer(c.Net(), client.ProducerConfig{Controller: c.Controller()})
	if err != nil {
		t.Fatal(err)
	}
	defer prod.Close()
	for i := 0; i < 10; i++ {
		prod.Send("purge", rec(fmt.Sprintf("k%d", i), "v", int64(i)))
	}
	if err := prod.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Net().Send(c.Net().AllocClientID(), 1, &protocol.DeleteRecordsRequest{TP: tp, BeforeOffset: 6})
	if err != nil {
		t.Fatal(err)
	}
	dr := resp.(*protocol.DeleteRecordsResponse)
	if dr.Err != protocol.ErrNone || dr.LogStartOffset != 6 {
		t.Fatalf("delete records: %+v", dr)
	}
	cons := client.NewConsumer(c.Net(), client.ConsumerConfig{Controller: c.Controller()})
	defer cons.Close()
	cons.Assign(tp)
	msgs := pollAll(t, cons, 4, 5*time.Second)
	if len(msgs) != 4 || msgs[0].Offset != 6 {
		t.Fatalf("after purge: %d msgs, first offset %d", len(msgs), msgs[0].Offset)
	}
}

// coordinatorPartitionForTest mirrors broker.CoordinatorPartition.
func coordinatorPartitionForTest(key string, n int32) int32 {
	h := int32(0)
	_ = h
	// FNV-1a, as in broker.CoordinatorPartition.
	const offset32, prime32 = 2166136261, 16777619
	v := uint32(offset32)
	for i := 0; i < len(key); i++ {
		v ^= uint32(key[i])
		v *= prime32
	}
	return int32(v % uint32(n))
}
