package cluster

import (
	"sync"

	"kstreams/internal/broker"
	"kstreams/internal/protocol"
)

// controller is the cluster's metadata authority: it places replicas,
// elects leaders from the ISR on failures, arbitrates ISR changes (so that
// a partitioned leader cannot unilaterally shrink the ISR and advance the
// high watermark), resolves coordinators, and allocates producer ids.
type controller struct {
	c *Cluster

	mu      sync.Mutex
	topics  map[string]*topicState
	live    map[int32]bool
	nextPID int64
}

type partState struct {
	leader      int32
	leaderEpoch int32
	replicas    []int32
	isr         []int32
}

type topicState struct {
	name       string
	cfg        protocol.TopicConfig
	partitions []*partState
}

func newController(c *Cluster) *controller {
	return &controller{
		c:      c,
		topics: make(map[string]*topicState),
		live:   make(map[int32]bool),
	}
}

func (ct *controller) registerBroker(id int32) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.live[id] = true
}

func (ct *controller) handleRPC(from int32, req any) any {
	switch r := req.(type) {
	case *protocol.MetadataRequest:
		return ct.handleMetadata(r)
	case *protocol.CreateTopicRequest:
		return ct.handleCreateTopic(r)
	case *protocol.FindCoordinatorRequest:
		return ct.handleFindCoordinator(r)
	case *protocol.AlterISRRequest:
		return ct.handleAlterISR(r)
	case *protocol.AllocatePIDRequest:
		return ct.handleAllocatePID()
	default:
		return &protocol.MetadataResponse{}
	}
}

func (ct *controller) handleAllocatePID() *protocol.AllocatePIDResponse {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ct.nextPID++
	return &protocol.AllocatePIDResponse{ProducerID: ct.nextPID}
}

func (ct *controller) handleCreateTopic(r *protocol.CreateTopicRequest) *protocol.CreateTopicResponse {
	ct.mu.Lock()
	if _, exists := ct.topics[r.Name]; exists {
		ct.mu.Unlock()
		return &protocol.CreateTopicResponse{Err: protocol.ErrTopicAlreadyExists}
	}
	var liveIDs []int32
	for id, up := range ct.live {
		if up {
			liveIDs = append(liveIDs, id)
		}
	}
	sortInt32(liveIDs)
	rf := r.ReplicationFactor
	if rf <= 0 {
		rf = ct.c.cfg.ReplicationFactor
	}
	if rf > len(liveIDs) {
		ct.mu.Unlock()
		return &protocol.CreateTopicResponse{Err: protocol.ErrBrokerUnavailable}
	}
	if rf <= 0 {
		ct.mu.Unlock()
		return &protocol.CreateTopicResponse{Err: protocol.ErrBrokerUnavailable}
	}
	ts := &topicState{name: r.Name, cfg: r.Config}
	for p := int32(0); p < r.Partitions; p++ {
		replicas := make([]int32, rf)
		for j := 0; j < rf; j++ {
			replicas[j] = liveIDs[(int(p)+j)%len(liveIDs)]
		}
		ts.partitions = append(ts.partitions, &partState{
			leader:   replicas[0],
			replicas: replicas,
			isr:      append([]int32(nil), replicas...),
		})
	}
	ct.topics[r.Name] = ts
	ct.mu.Unlock()

	for p := range ts.partitions {
		ct.pushLeaderAndISR(ts, int32(p), true)
	}
	return &protocol.CreateTopicResponse{}
}

// pushLeaderAndISR sends the partition's current state to all its replicas.
func (ct *controller) pushLeaderAndISR(ts *topicState, p int32, isNew bool) {
	ct.mu.Lock()
	ps := ts.partitions[p]
	req := &protocol.LeaderAndISRRequest{
		TP:          protocol.TopicPartition{Topic: ts.name, Partition: p},
		Leader:      ps.leader,
		LeaderEpoch: ps.leaderEpoch,
		Replicas:    append([]int32(nil), ps.replicas...),
		ISR:         append([]int32(nil), ps.isr...),
		Config:      ts.cfg,
		IsNew:       isNew,
	}
	replicas := append([]int32(nil), ps.replicas...)
	ct.mu.Unlock()
	for _, id := range replicas {
		ct.c.net.Send(ControllerNode, id, req) // unreachable replicas catch up on restart
	}
}

func (ct *controller) handleMetadata(r *protocol.MetadataRequest) *protocol.MetadataResponse {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	resp := &protocol.MetadataResponse{}
	for id, up := range ct.live {
		if up {
			resp.Brokers = append(resp.Brokers, id)
		}
	}
	sortInt32(resp.Brokers)
	names := r.Topics
	if len(names) == 0 {
		for n := range ct.topics {
			names = append(names, n)
		}
	}
	for _, n := range names {
		ts, ok := ct.topics[n]
		if !ok {
			resp.Topics = append(resp.Topics, protocol.TopicMetadata{
				Name: n, Err: protocol.ErrUnknownTopicOrPartition,
			})
			continue
		}
		tm := protocol.TopicMetadata{Name: n, Config: ts.cfg}
		for p, ps := range ts.partitions {
			tm.Partitions = append(tm.Partitions, protocol.PartitionMetadata{
				Partition:   int32(p),
				Leader:      ps.leader,
				LeaderEpoch: ps.leaderEpoch,
				Replicas:    append([]int32(nil), ps.replicas...),
				ISR:         append([]int32(nil), ps.isr...),
			})
		}
		resp.Topics = append(resp.Topics, tm)
	}
	return resp
}

func (ct *controller) handleFindCoordinator(r *protocol.FindCoordinatorRequest) *protocol.FindCoordinatorResponse {
	topic := broker.OffsetsTopic
	numParts := ct.c.cfg.OffsetsPartitions
	if r.Type == protocol.CoordinatorTxn {
		topic = broker.TxnTopic
		numParts = ct.c.cfg.TxnPartitions
	}
	idx := broker.CoordinatorPartition(r.Key, numParts)
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ts, ok := ct.topics[topic]
	if !ok || int(idx) >= len(ts.partitions) || ts.partitions[idx].leader < 0 {
		return &protocol.FindCoordinatorResponse{Err: protocol.ErrCoordinatorNotAvailable}
	}
	return &protocol.FindCoordinatorResponse{NodeID: ts.partitions[idx].leader}
}

// handleAlterISR arbitrates a leader-requested ISR change (follower
// rejoin). Requests with stale epochs are rejected.
func (ct *controller) handleAlterISR(r *protocol.AlterISRRequest) *protocol.AlterISRResponse {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ts, ok := ct.topics[r.TP.Topic]
	if !ok || int(r.TP.Partition) >= len(ts.partitions) {
		return &protocol.AlterISRResponse{Err: protocol.ErrUnknownTopicOrPartition}
	}
	ps := ts.partitions[r.TP.Partition]
	if r.LeaderEpoch != ps.leaderEpoch {
		return &protocol.AlterISRResponse{Err: protocol.ErrNotLeader}
	}
	// Only accept additions of live replicas; the controller is the sole
	// authority for removals (on broker failure).
	newISR := ps.isr
	for _, id := range r.NewISR {
		if !containsInt32(newISR, id) && ct.live[id] && containsInt32(ps.replicas, id) {
			newISR = append(newISR, id)
		}
	}
	ps.isr = newISR
	return &protocol.AlterISRResponse{ISR: append([]int32(nil), ps.isr...)}
}

// brokerFailed removes the broker from all ISRs and re-elects leaders for
// the partitions it led, notifying surviving replicas.
func (ct *controller) brokerFailed(id int32) {
	ct.mu.Lock()
	ct.live[id] = false
	type push struct {
		ts *topicState
		p  int32
	}
	var pushes []push
	for _, ts := range ct.topics {
		for p, ps := range ts.partitions {
			inISR := containsInt32(ps.isr, id)
			wasLeader := ps.leader == id
			if !inISR && !wasLeader {
				continue
			}
			// Keep the failed broker in the ISR if it is the only member:
			// its data is the only complete copy (no unclean election).
			if inISR && len(ps.isr) > 1 {
				ps.isr = removeInt32(ps.isr, id)
			}
			if wasLeader {
				ps.leader = -1
				for _, cand := range ps.isr {
					if ct.live[cand] {
						ps.leader = cand
						break
					}
				}
				ps.leaderEpoch++
			}
			pushes = append(pushes, push{ts, int32(p)})
		}
	}
	ct.mu.Unlock()
	for _, u := range pushes {
		ct.pushLeaderAndISR(u.ts, u.p, false)
	}
}

// brokerReturned marks the broker live again and re-installs its replicas;
// offline partitions whose only ISR member returned get their leader back.
func (ct *controller) brokerReturned(id int32) {
	ct.mu.Lock()
	ct.live[id] = true
	type push struct {
		ts *topicState
		p  int32
	}
	var pushes []push
	for _, ts := range ct.topics {
		for p, ps := range ts.partitions {
			if !containsInt32(ps.replicas, id) {
				continue
			}
			if ps.leader < 0 && containsInt32(ps.isr, id) {
				ps.leader = id
				ps.leaderEpoch++
			}
			pushes = append(pushes, push{ts, int32(p)})
		}
	}
	ct.mu.Unlock()
	for _, u := range pushes {
		ct.pushLeaderAndISR(u.ts, u.p, false)
	}
}

func (ct *controller) leaderOf(tp protocol.TopicPartition) int32 {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	ts, ok := ct.topics[tp.Topic]
	if !ok || int(tp.Partition) >= len(ts.partitions) {
		return -1
	}
	return ts.partitions[tp.Partition].leader
}

func containsInt32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func removeInt32(s []int32, v int32) []int32 {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
