package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"kstreams/internal/protocol"
	"kstreams/internal/storage"
)

func newTestLog(t *testing.T, cfg Config) (*Log, *storage.Mem) {
	t.Helper()
	be := storage.NewMem()
	l, err := Open(be, "t/p0", cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, be
}

func batch(pid int64, epoch int16, seq int32, kvs ...string) *protocol.RecordBatch {
	b := &protocol.RecordBatch{ProducerID: pid, ProducerEpoch: epoch, BaseSequence: seq}
	for i := 0; i+1 < len(kvs); i += 2 {
		var key, val []byte
		if kvs[i] != "" {
			key = []byte(kvs[i])
		}
		if kvs[i+1] != "" {
			val = []byte(kvs[i+1])
		}
		b.Records = append(b.Records, protocol.Record{Key: key, Value: val, Timestamp: int64(100 + i)})
	}
	return b
}

func plainBatch(kvs ...string) *protocol.RecordBatch {
	b := batch(protocol.NoProducerID, 0, protocol.NoSequence, kvs...)
	return b
}

func mustAppend(t *testing.T, l *Log, b *protocol.RecordBatch) int64 {
	t.Helper()
	res := l.Append(b)
	if res.Err != protocol.ErrNone {
		t.Fatalf("append: %v", res.Err)
	}
	return res.BaseOffset
}

func readAll(t *testing.T, l *Log) []protocol.Record {
	t.Helper()
	var out []protocol.Record
	off := l.StartOffset()
	for off < l.EndOffset() {
		bs, err := l.Read(off, l.EndOffset(), 1<<20)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if len(bs) == 0 {
			break
		}
		for _, b := range bs {
			for i := range b.Records {
				if b.BaseOffset+int64(i) >= off && !b.Control {
					out = append(out, b.Records[i])
				}
			}
			off = b.LastOffset() + 1
		}
	}
	return out
}

func TestAppendRead(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	off := mustAppend(t, l, plainBatch("a", "1", "b", "2"))
	if off != 0 {
		t.Fatalf("first base offset = %d", off)
	}
	off = mustAppend(t, l, plainBatch("c", "3"))
	if off != 2 {
		t.Fatalf("second base offset = %d", off)
	}
	if l.EndOffset() != 3 {
		t.Fatalf("end offset = %d", l.EndOffset())
	}
	recs := readAll(t, l)
	if len(recs) != 3 || string(recs[2].Key) != "c" {
		t.Fatalf("read back %d records: %+v", len(recs), recs)
	}
}

func TestReadMidBatchAndBounds(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	mustAppend(t, l, plainBatch("a", "1", "b", "2", "c", "3"))
	mustAppend(t, l, plainBatch("d", "4"))

	bs, err := l.Read(1, 4, 1<<20)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(bs) != 2 || bs[0].BaseOffset != 0 {
		t.Fatalf("mid-batch read should return containing batch: %+v", bs)
	}
	// maxOffset caps delivery.
	bs, err = l.Read(0, 3, 1<<20)
	if err != nil || len(bs) != 1 {
		t.Fatalf("capped read: %v %d batches", err, len(bs))
	}
	// Out of range.
	if _, err := l.Read(5, 10, 1<<20); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("want out of range, got %v", err)
	}
	// Reading at exactly the end offset is an empty, valid read.
	if bs, err := l.Read(4, 10, 1<<20); err != nil || len(bs) != 0 {
		t.Fatalf("read at end: %v %v", bs, err)
	}
}

func TestReadMaxBytes(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	for i := 0; i < 10; i++ {
		mustAppend(t, l, plainBatch(fmt.Sprintf("k%d", i), "v"))
	}
	bs, err := l.Read(0, 100, 1) // smaller than one batch: still returns one
	if err != nil || len(bs) != 1 {
		t.Fatalf("minimal read: %v, %d batches", err, len(bs))
	}
	one := len(protocol.EncodeBatch(bs[0]))
	bs, err = l.Read(0, 100, 3*one)
	if err != nil || len(bs) != 3 {
		t.Fatalf("sized read: %v, %d batches want 3", err, len(bs))
	}
}

func TestSegmentRollingAndRecovery(t *testing.T) {
	be := storage.NewMem()
	l, err := Open(be, "t/p0", Config{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, l, plainBatch(fmt.Sprintf("key-%02d", i), "value"))
	}
	if len(l.segments) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(l.segments))
	}
	want := readAll(t, l)
	l.Close()

	l2, err := Open(be, "t/p0", Config{SegmentBytes: 64})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.EndOffset() != 20 {
		t.Fatalf("recovered end offset = %d", l2.EndOffset())
	}
	got := readAll(t, l2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i].Key) != string(want[i].Key) {
			t.Fatalf("record %d key %q != %q", i, got[i].Key, want[i].Key)
		}
	}
}

func TestTornTailRecovery(t *testing.T) {
	be := storage.NewMem()
	l, _ := Open(be, "t/p0", Config{})
	mustAppend(t, l, plainBatch("a", "1"))
	mustAppend(t, l, plainBatch("b", "2"))
	seg := l.segments[0]
	// Simulate a torn write: chop bytes off the last append.
	if err := seg.file.Truncate(seg.file.Size() - 3); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(be, "t/p0", Config{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.EndOffset() != 1 {
		t.Fatalf("end offset after torn tail = %d, want 1", l2.EndOffset())
	}
	// The log must accept fresh appends after healing.
	res := l2.Append(plainBatch("c", "3"))
	if res.Err != protocol.ErrNone || res.BaseOffset != 1 {
		t.Fatalf("append after heal: %+v", res)
	}
}

func TestIdempotentDuplicate(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	off1 := mustAppend(t, l, batch(7, 0, 0, "a", "1", "b", "2"))
	mustAppend(t, l, batch(7, 0, 2, "c", "3"))

	// Exact duplicate of the first batch: same offset back, nothing appended.
	end := l.EndOffset()
	res := l.Append(batch(7, 0, 0, "a", "1", "b", "2"))
	if res.Err != protocol.ErrDuplicateSequence || res.BaseOffset != off1 {
		t.Fatalf("duplicate append: %+v want dup at %d", res, off1)
	}
	if l.EndOffset() != end {
		t.Fatal("duplicate append extended the log")
	}
	// Sequence gap: rejected.
	res = l.Append(batch(7, 0, 5, "x", "y"))
	if res.Err != protocol.ErrOutOfOrderSequence {
		t.Fatalf("gap append: %v", res.Err)
	}
	// Stale epoch: fenced.
	mustAppend(t, l, batch(7, 1, 0, "d", "4"))
	res = l.Append(batch(7, 0, 3, "z", "9"))
	if res.Err != protocol.ErrProducerFenced {
		t.Fatalf("stale epoch append: %v", res.Err)
	}
	// New epoch must restart sequences at zero.
	res = l.Append(batch(7, 2, 4, "z", "9"))
	if res.Err != protocol.ErrOutOfOrderSequence {
		t.Fatalf("new epoch nonzero seq: %v", res.Err)
	}
}

func TestIdempotentStateSurvivesRecovery(t *testing.T) {
	be := storage.NewMem()
	l, _ := Open(be, "t/p0", Config{})
	off := mustAppend(t, l, batch(9, 0, 0, "a", "1"))
	l.Close()
	// Paper 4.1: a new leader re-populates its sequence cache from the log.
	l2, err := Open(be, "t/p0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := l2.Append(batch(9, 0, 0, "a", "1"))
	if res.Err != protocol.ErrDuplicateSequence || res.BaseOffset != off {
		t.Fatalf("dup after recovery: %+v", res)
	}
	if got := l2.ProducerEpoch(9); got != 0 {
		t.Fatalf("recovered epoch = %d", got)
	}
}

func txnBatch(pid int64, epoch int16, seq int32, kvs ...string) *protocol.RecordBatch {
	b := batch(pid, epoch, seq, kvs...)
	b.Transactional = true
	return b
}

func TestTransactionTracking(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	mustAppend(t, l, plainBatch("p", "q"))
	if l.FirstUnstable() != -1 {
		t.Fatal("no txn yet")
	}
	mustAppend(t, l, txnBatch(5, 0, 0, "a", "1"))
	mustAppend(t, l, txnBatch(5, 0, 1, "b", "2"))
	if got := l.FirstUnstable(); got != 1 {
		t.Fatalf("first unstable = %d, want 1", got)
	}
	if !l.HasOngoing(5) {
		t.Fatal("txn should be open")
	}
	// Commit marker resolves the transaction.
	res := l.Append(protocol.NewMarkerBatch(5, 0, 999, protocol.ControlMarker{Type: protocol.MarkerCommit}))
	if res.Err != protocol.ErrNone {
		t.Fatalf("marker append: %v", res.Err)
	}
	if l.FirstUnstable() != -1 || l.HasOngoing(5) {
		t.Fatal("txn should be resolved")
	}
	if ab := l.AbortedIn(0, l.EndOffset()); len(ab) != 0 {
		t.Fatalf("committed txn in aborted index: %+v", ab)
	}
}

func TestAbortedIndex(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	mustAppend(t, l, txnBatch(5, 0, 0, "a", "1")) // offsets 0
	mustAppend(t, l, plainBatch("x", "y"))        // 1
	mustAppend(t, l, txnBatch(5, 0, 1, "b", "2")) // 2
	res := l.Append(protocol.NewMarkerBatch(5, 0, 0, protocol.ControlMarker{Type: protocol.MarkerAbort}))
	if res.Err != protocol.ErrNone {
		t.Fatal(res.Err)
	}
	ab := l.AbortedIn(0, l.EndOffset())
	if len(ab) != 1 || ab[0].ProducerID != 5 || ab[0].FirstOffset != 0 || ab[0].LastOffset != 3 {
		t.Fatalf("aborted index: %+v", ab)
	}
	// Range filter excludes non-overlapping windows.
	if ab := l.AbortedIn(4, 10); len(ab) != 0 {
		t.Fatalf("non-overlapping range: %+v", ab)
	}
	// Aborted index survives recovery.
	l2, err := Open(l.backend, "t/p0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	ab = l2.AbortedIn(0, l2.EndOffset())
	if len(ab) != 1 || ab[0].FirstOffset != 0 {
		t.Fatalf("recovered aborted index: %+v", ab)
	}
}

func TestTruncateTo(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	mustAppend(t, l, plainBatch("a", "1"))
	mustAppend(t, l, txnBatch(5, 0, 0, "b", "2"))
	mustAppend(t, l, plainBatch("c", "3"))
	if err := l.TruncateTo(1); err != nil {
		t.Fatal(err)
	}
	if l.EndOffset() != 1 {
		t.Fatalf("end after truncate = %d", l.EndOffset())
	}
	// Producer/txn state is rebuilt: the open txn vanished with its batch.
	if l.FirstUnstable() != -1 {
		t.Fatal("truncated txn still tracked")
	}
	// Appends continue from the cut.
	if off := mustAppend(t, l, plainBatch("d", "4")); off != 1 {
		t.Fatalf("append after truncate at %d", off)
	}
	recs := readAll(t, l)
	if len(recs) != 2 || string(recs[1].Key) != "d" {
		t.Fatalf("post-truncate read: %+v", recs)
	}
}

func TestAdvanceStartOffset(t *testing.T) {
	be := storage.NewMem()
	l, _ := Open(be, "t/p0", Config{SegmentBytes: 48})
	for i := 0; i < 12; i++ {
		mustAppend(t, l, plainBatch(fmt.Sprintf("k%02d", i), "v"))
	}
	segsBefore := len(l.segments)
	got, err := l.AdvanceStartOffset(6)
	if err != nil || got != 6 {
		t.Fatalf("advance: %d %v", got, err)
	}
	if len(l.segments) >= segsBefore {
		t.Fatalf("no segments dropped: %d -> %d", segsBefore, len(l.segments))
	}
	if _, err := l.Read(0, 12, 1<<20); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("read below start: %v", err)
	}
	// Start offset persists across recovery.
	l.Close()
	l2, err := Open(be, "t/p0", Config{SegmentBytes: 48})
	if err != nil {
		t.Fatal(err)
	}
	if l2.StartOffset() != 6 {
		t.Fatalf("recovered start offset = %d", l2.StartOffset())
	}
	// Advancing backwards is a no-op.
	if got, _ := l2.AdvanceStartOffset(2); got != 6 {
		t.Fatalf("backwards advance moved start to %d", got)
	}
}

func TestOffsetForTimestamp(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	b := plainBatch("a", "1")
	b.Records[0].Timestamp = 100
	mustAppend(t, l, b)
	b = plainBatch("b", "2")
	b.Records[0].Timestamp = 200
	mustAppend(t, l, b)
	if got := l.OffsetForTimestamp(150); got != 1 {
		t.Fatalf("offset for ts 150 = %d", got)
	}
	if got := l.OffsetForTimestamp(50); got != 0 {
		t.Fatalf("offset for ts 50 = %d", got)
	}
	if got := l.OffsetForTimestamp(300); got != -1 {
		t.Fatalf("offset for ts 300 = %d", got)
	}
}

func TestCompaction(t *testing.T) {
	be := storage.NewMem()
	l, _ := Open(be, "t/p0", Config{SegmentBytes: 1, Compacted: true}) // roll every batch
	mustAppend(t, l, plainBatch("a", "1"))
	mustAppend(t, l, plainBatch("b", "2"))
	mustAppend(t, l, plainBatch("a", "3"))
	mustAppend(t, l, plainBatch("c", ""))  // tombstone for c (nil value)
	mustAppend(t, l, plainBatch("b", "4")) // stays in active segment

	if err := l.Compact(l.EndOffset()); err != nil {
		t.Fatal(err)
	}
	if l.Compactions() != 1 {
		t.Fatalf("compactions = %d", l.Compactions())
	}
	recs := readAll(t, l)
	// Region = offsets 0..3 (active segment holds offset 4).
	// Survivors: b@1 is shadowed? No: latest b in region is offset 1, kept;
	// a@2 kept (shadows a@0); c tombstone kept; plus active b@4.
	byKey := map[string]string{}
	for _, r := range recs {
		byKey[string(r.Key)] = string(r.Value)
	}
	if byKey["a"] != "3" || byKey["b"] != "4" {
		t.Fatalf("compacted values: %+v", byKey)
	}
	if v, ok := byKey["c"]; !ok || v != "" {
		t.Fatalf("tombstone lost: %+v", byKey)
	}
	// a@0 must be gone: count records for key a in region.
	countA := 0
	for _, r := range recs {
		if string(r.Key) == "a" {
			countA++
		}
	}
	if countA != 1 {
		t.Fatalf("key a appears %d times after compaction", countA)
	}
	// Offsets are preserved; reads from a mid-gap offset find the next batch.
	bs, err := l.Read(0, l.EndOffset(), 1<<20)
	if err != nil || len(bs) == 0 {
		t.Fatalf("read after compaction: %v", err)
	}
	if bs[0].BaseOffset == 0 && string(bs[0].Records[0].Value) == "1" {
		t.Fatal("shadowed record a@0 still readable")
	}
}

func TestCompactionSkipsOpenTransactions(t *testing.T) {
	l, _ := newTestLog(t, Config{SegmentBytes: 1, Compacted: true})
	mustAppend(t, l, plainBatch("a", "1"))
	mustAppend(t, l, txnBatch(5, 0, 0, "a", "2")) // open txn at offset 1
	mustAppend(t, l, plainBatch("a", "3"))
	if err := l.Compact(l.EndOffset()); err != nil {
		t.Fatal(err)
	}
	// Nothing below the open transaction start (offset 1) may move past it:
	// region bound is min(HW, firstUnstable)=1, so only offset 0 region —
	// that single segment holds just a@1... it is compactable alone.
	recs := readAll(t, l)
	if len(recs) != 3 {
		t.Fatalf("open-txn data disturbed: %+v", recs)
	}
}

func TestCompactionDropsAbortedRecords(t *testing.T) {
	l, _ := newTestLog(t, Config{SegmentBytes: 1, Compacted: true})
	mustAppend(t, l, txnBatch(5, 0, 0, "a", "aborted-value"))
	res := l.Append(protocol.NewMarkerBatch(5, 0, 0, protocol.ControlMarker{Type: protocol.MarkerAbort}))
	if res.Err != protocol.ErrNone {
		t.Fatal(res.Err)
	}
	mustAppend(t, l, txnBatch(5, 1, 0, "a", "committed-value"))
	res = l.Append(protocol.NewMarkerBatch(5, 1, 0, protocol.ControlMarker{Type: protocol.MarkerCommit}))
	if res.Err != protocol.ErrNone {
		t.Fatal(res.Err)
	}
	mustAppend(t, l, plainBatch("pad", "x")) // keep active segment non-region
	if err := l.Compact(l.EndOffset()); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, l)
	for _, r := range recs {
		if string(r.Value) == "aborted-value" {
			t.Fatal("aborted record survived compaction")
		}
	}
	found := false
	for _, r := range recs {
		if string(r.Key) == "a" && string(r.Value) == "committed-value" {
			found = true
		}
	}
	if !found {
		t.Fatalf("committed record lost: %+v", recs)
	}
}

// TestCompactionReplayEquivalence is the compaction invariant from
// DESIGN.md: replaying a compacted changelog rebuilds exactly the final
// table that replaying the uncompacted log would.
func TestCompactionReplayEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		be := storage.NewMem()
		l, err := Open(be, "t/p0", Config{SegmentBytes: 128, Compacted: true})
		if err != nil {
			return false
		}
		keys := []string{"a", "b", "c", "d", "e"}
		want := map[string]string{}
		for i := 0; i < 100; i++ {
			k := keys[rng.Intn(len(keys))]
			v := fmt.Sprintf("v%d", i)
			if rng.Intn(10) == 0 {
				v = "" // tombstone
			}
			b := plainBatch(k, v)
			if l.Append(b).Err != protocol.ErrNone {
				return false
			}
			want[k] = v
		}
		if err := l.Compact(l.EndOffset()); err != nil {
			return false
		}
		got := map[string]string{}
		off := l.StartOffset()
		for off < l.EndOffset() {
			bs, err := l.Read(off, l.EndOffset(), 1<<20)
			if err != nil || len(bs) == 0 {
				return false
			}
			for _, b := range bs {
				for i := range b.Records {
					got[string(b.Records[i].Key)] = string(b.Records[i].Value)
				}
				off = b.LastOffset() + 1
			}
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestIdempotentResendProperty is invariant 1 from DESIGN.md: resending any
// previously appended batch never changes the log contents.
func TestIdempotentResendProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, err := Open(storage.NewMem(), "t/p0", Config{})
		if err != nil {
			return false
		}
		var sent []*protocol.RecordBatch
		seq := int32(0)
		for i := 0; i < 30; i++ {
			if len(sent) > 0 && rng.Intn(3) == 0 {
				// Resend a random earlier batch (simulated retry).
				dup := sent[rng.Intn(len(sent))]
				cp := *dup
				cp.BaseOffset = 0
				res := l.Append(&cp)
				if res.Err != protocol.ErrDuplicateSequence && res.Err != protocol.ErrNone {
					// Only the most recent 5 are cached; older resends may
					// still be recognized as dup (-1 offset) — both fine.
					return false
				}
				if res.Err == protocol.ErrNone {
					return false // a resend must never be accepted as new
				}
				continue
			}
			n := 1 + rng.Intn(3)
			b := &protocol.RecordBatch{ProducerID: 1, BaseSequence: seq}
			for j := 0; j < n; j++ {
				b.Records = append(b.Records, protocol.Record{
					Key: []byte{byte(i)}, Value: []byte{byte(j)}, Timestamp: int64(i),
				})
			}
			res := l.Append(b)
			if res.Err != protocol.ErrNone {
				return false
			}
			seq += int32(n)
			sent = append(sent, b)
		}
		// Log must contain exactly the unique batches, in order.
		var total int64
		for _, b := range sent {
			total += int64(len(b.Records))
		}
		return l.EndOffset() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRollSegment(t *testing.T) {
	l, _ := newTestLog(t, Config{Compacted: true})
	mustAppend(t, l, plainBatch("a", "1"))
	mustAppend(t, l, plainBatch("a", "2"))
	if err := l.RollSegment(); err != nil {
		t.Fatal(err)
	}
	if len(l.segments) != 2 {
		t.Fatalf("segments after roll = %d", len(l.segments))
	}
	// Rolling an empty active segment is a no-op.
	if err := l.RollSegment(); err != nil {
		t.Fatal(err)
	}
	if len(l.segments) != 2 {
		t.Fatalf("empty roll created a segment")
	}
	// Now the old segment is cleanable.
	if err := l.Compact(l.EndOffset()); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, l)
	if len(recs) != 1 || string(recs[0].Value) != "2" {
		t.Fatalf("post-roll compaction: %+v", recs)
	}
}

func TestFilesystemBackendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	be, err := storage.NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(be, "topic/0", Config{SegmentBytes: 64, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, plainBatch(fmt.Sprintf("k%d", i), "v"))
	}
	l.Close()
	l2, err := Open(be, "topic/0", Config{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.EndOffset() != 10 {
		t.Fatalf("fs recovery end offset = %d", l2.EndOffset())
	}
	if recs := readAll(t, l2); len(recs) != 10 {
		t.Fatalf("fs recovery read %d records", len(recs))
	}
}
