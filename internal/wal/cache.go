package wal

import (
	"sync"

	"kstreams/internal/protocol"
)

// DefaultCacheBytes bounds the decoded-batch cache when Config.CacheBytes
// is zero. Sized so a busy partition serves tail fetches (the common case:
// consumers and followers read what was just appended) without touching
// the segment file or the decoder at all.
const DefaultCacheBytes = 32 << 20

// batchCache memoizes decoded batches by base offset so the fetch path can
// hand out the batch decoded at append time instead of re-reading and
// re-decoding the segment bytes on every fetch. Entries are accounted by
// their encoded size and evicted FIFO — the appended-order queue matches
// log access patterns (tail readers) closely enough that LRU bookkeeping
// on every hit isn't worth the contention.
//
// Cached *RecordBatch values are shared: every reader of the same offset
// gets the same pointer, and the WAL populates entries straight from the
// append path. Callers must treat fetched batches as immutable (see
// DESIGN.md §10 for the ownership rules).
//
// Lock order: batchCache.mu nests strictly inside Log.mu and never
// acquires any other lock.
type batchCache struct {
	mu     sync.Mutex
	limit  int64
	bytes  int64
	byBase map[int64]cacheEntry
	// fifo holds insertion-ordered base offsets; head indexes the oldest
	// live element. Stale bases (invalidated entries) are skipped lazily
	// at eviction time.
	fifo []int64
	head int

	hits, misses int64
}

type cacheEntry struct {
	b    *protocol.RecordBatch
	size int64
}

func newBatchCache(limit int64) *batchCache {
	if limit == 0 {
		limit = DefaultCacheBytes
	}
	if limit < 0 {
		limit = 0 // disabled: every put is over budget
	}
	return &batchCache{limit: limit, byBase: make(map[int64]cacheEntry)}
}

// get returns the cached batch at base, or nil on a miss: the read side
// of the decode cache every fetch consults before touching segments.
//
//kslint:hotpath
func (c *batchCache) get(base int64) *protocol.RecordBatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byBase[base]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	return e.b
}

func (c *batchCache) put(base int64, b *protocol.RecordBatch, size int64) {
	if size > c.limit {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byBase[base]; ok {
		return
	}
	for c.bytes+size > c.limit && c.head < len(c.fifo) {
		old := c.fifo[c.head]
		c.head++
		if e, ok := c.byBase[old]; ok {
			c.bytes -= e.size
			delete(c.byBase, old)
		}
	}
	if c.head == len(c.fifo) {
		c.fifo = c.fifo[:0]
		c.head = 0
	} else if c.head > len(c.fifo)/2 {
		c.fifo = append(c.fifo[:0], c.fifo[c.head:]...)
		c.head = 0
	}
	c.byBase[base] = cacheEntry{b: b, size: size}
	c.fifo = append(c.fifo, base)
	c.bytes += size
}

// invalidateFrom drops every entry at or beyond offset. Truncation may
// re-append different content at the same offsets, so these entries must
// not survive.
func (c *batchCache) invalidateFrom(offset int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for base, e := range c.byBase {
		if base >= offset {
			c.bytes -= e.size
			delete(c.byBase, base)
		}
	}
}

// reset empties the cache. Compaction rewrites batch boundaries within the
// cleaned region, so offset-keyed entries can no longer be trusted.
func (c *batchCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byBase = make(map[int64]cacheEntry)
	c.fifo = c.fifo[:0]
	c.head = 0
	c.bytes = 0
}

func (c *batchCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
