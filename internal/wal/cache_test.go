package wal

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"kstreams/internal/protocol"
	"kstreams/internal/storage"
)

func cacheTestLog(t *testing.T, cfg Config) *Log {
	t.Helper()
	l, err := Open(storage.NewMem(), "p0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		b := &protocol.RecordBatch{
			ProducerID:   protocol.NoProducerID,
			BaseSequence: protocol.NoSequence,
			Records: []protocol.Record{{
				Key:       []byte(fmt.Sprintf("k%d", i)),
				Value:     []byte(fmt.Sprintf("v%d", i)),
				Timestamp: int64(i),
			}},
		}
		if res := l.Append(b); res.Err != protocol.ErrNone {
			t.Fatalf("append %d: %v", i, res.Err)
		}
	}
}

// TestReadServesAppendedBatchFromCache pins the zero-copy contract: a tail
// fetch immediately after an append returns the very batch pointer the
// append decoded, without re-reading the segment.
func TestReadServesAppendedBatchFromCache(t *testing.T) {
	l := cacheTestLog(t, Config{})
	b := &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records:      []protocol.Record{{Key: []byte("k"), Value: []byte("v"), Timestamp: 1}},
	}
	if res := l.Append(b); res.Err != protocol.ErrNone {
		t.Fatal(res.Err)
	}
	got, err := l.Read(0, 1, 1<<20)
	if err != nil || len(got) != 1 {
		t.Fatalf("read: %d batches, err %v", len(got), err)
	}
	if got[0] != b {
		t.Error("tail fetch did not serve the appended batch pointer (cache miss)")
	}
	hits, misses := l.CacheStats()
	if hits != 1 || misses != 0 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/0", hits, misses)
	}
}

func TestReadCacheMissDecodesAndCaches(t *testing.T) {
	l := cacheTestLog(t, Config{})
	appendN(t, l, 3)
	// Evict everything the appends cached, then read twice: first read
	// misses and repopulates, second hits.
	l.cache.reset()
	first, err := l.Read(0, 3, 1<<20)
	if err != nil || len(first) != 3 {
		t.Fatalf("first read: %d batches, err %v", len(first), err)
	}
	second, err := l.Read(0, 3, 1<<20)
	if err != nil || len(second) != 3 {
		t.Fatalf("second read: %d batches, err %v", len(second), err)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("batch %d: second read did not reuse cached pointer", i)
		}
	}
	hits, misses := l.CacheStats()
	if misses != 3 || hits != 3 {
		t.Errorf("cache stats = %d hits / %d misses, want 3/3", hits, misses)
	}
}

func TestCacheDisabledStillReads(t *testing.T) {
	l := cacheTestLog(t, Config{CacheBytes: -1})
	appendN(t, l, 2)
	got, err := l.Read(0, 2, 1<<20)
	if err != nil || len(got) != 2 {
		t.Fatalf("read: %d batches, err %v", len(got), err)
	}
	hits, _ := l.CacheStats()
	if hits != 0 {
		t.Errorf("disabled cache reported %d hits", hits)
	}
}

func TestCacheEvictsFIFOUnderByteBudget(t *testing.T) {
	c := newBatchCache(100)
	mk := func(i int) *protocol.RecordBatch {
		return &protocol.RecordBatch{BaseOffset: int64(i)}
	}
	for i := 0; i < 5; i++ {
		c.put(int64(i), mk(i), 40) // budget holds two entries
	}
	if c.bytes > 100 {
		t.Fatalf("cache over budget: %d bytes", c.bytes)
	}
	if c.get(0) != nil || c.get(1) != nil || c.get(2) != nil {
		t.Error("oldest entries survived eviction")
	}
	if c.get(3) == nil || c.get(4) == nil {
		t.Error("newest entries were evicted")
	}
	// An entry larger than the whole budget is refused outright.
	c.put(99, mk(99), 1000)
	if c.get(99) != nil {
		t.Error("over-budget entry was cached")
	}
}

func TestTruncateInvalidatesCache(t *testing.T) {
	l := cacheTestLog(t, Config{})
	appendN(t, l, 5)
	if err := l.TruncateTo(2); err != nil {
		t.Fatal(err)
	}
	// Re-append different content at the truncated offsets; reads must see
	// the new records, not stale cached batches.
	for i := 2; i < 5; i++ {
		b := &protocol.RecordBatch{
			ProducerID:   protocol.NoProducerID,
			BaseSequence: protocol.NoSequence,
			Records:      []protocol.Record{{Key: []byte("nk"), Value: []byte(fmt.Sprintf("new%d", i)), Timestamp: int64(i)}},
		}
		if res := l.Append(b); res.Err != protocol.ErrNone {
			t.Fatal(res.Err)
		}
	}
	got, err := l.Read(2, 5, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := fmt.Sprintf("new%d", i+2)
		if string(b.Records[0].Value) != want {
			t.Errorf("offset %d: value %q, want %q (stale cache survived truncation)",
				b.BaseOffset, b.Records[0].Value, want)
		}
	}
}

func TestCompactionResetsCache(t *testing.T) {
	l := cacheTestLog(t, Config{Compacted: true, SegmentBytes: 1})
	for i := 0; i < 6; i++ {
		b := &protocol.RecordBatch{
			ProducerID:   protocol.NoProducerID,
			BaseSequence: protocol.NoSequence,
			Records:      []protocol.Record{{Key: []byte("same-key"), Value: []byte(fmt.Sprintf("v%d", i)), Timestamp: int64(i)}},
		}
		if res := l.Append(b); res.Err != protocol.ErrNone {
			t.Fatal(res.Err)
		}
	}
	if _, err := l.Read(0, 6, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(6); err != nil {
		t.Fatal(err)
	}
	if l.Compactions() == 0 {
		t.Skip("no compaction pass ran")
	}
	got, err := l.Read(0, 6, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Only the latest value per key survives below the active segment;
	// every returned record must be one of the appended values and the
	// final offset must carry the final value.
	last := got[len(got)-1]
	if string(last.Records[len(last.Records)-1].Value) != "v5" {
		t.Errorf("latest value lost after compaction: %+v", last)
	}
}

// TestConcurrentAppendFetchRace drives appends and reads from parallel
// goroutines (run under -race in CI). It verifies the publish ordering the
// fetch path depends on: index metadata becomes visible only after the
// batch bytes are durably in the segment, so a racing read can never
// observe a torn or half-written batch, and every offset it does observe
// carries exactly the content appended there.
func TestConcurrentAppendFetchRace(t *testing.T) {
	l := cacheTestLog(t, Config{SegmentBytes: 4096})
	const total = 400
	var wg sync.WaitGroup
	readers := 4
	errs := make(chan error, readers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			b := &protocol.RecordBatch{
				ProducerID:   protocol.NoProducerID,
				BaseSequence: protocol.NoSequence,
				Records: []protocol.Record{{
					Key:       []byte(fmt.Sprintf("k%d", i)),
					Value:     []byte(fmt.Sprintf("v%d", i)),
					Timestamp: int64(i),
				}},
			}
			if res := l.Append(b); res.Err != protocol.ErrNone {
				errs <- fmt.Errorf("append %d: %v", i, res.Err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var next int64
			for next < total {
				end := l.EndOffset()
				if end <= next {
					continue
				}
				batches, err := l.Read(next, end, 1<<20)
				if err != nil {
					errs <- fmt.Errorf("read at %d: %w", next, err)
					return
				}
				for _, b := range batches {
					for i := range b.Records {
						off := b.BaseOffset + int64(i)
						wantK, wantV := fmt.Sprintf("k%d", off), fmt.Sprintf("v%d", off)
						if string(b.Records[i].Key) != wantK || string(b.Records[i].Value) != wantV {
							errs <- fmt.Errorf("offset %d: got (%q,%q), want (%q,%q)",
								off, b.Records[i].Key, b.Records[i].Value, wantK, wantV)
							return
						}
					}
					next = b.LastOffset() + 1
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// The log end is only advanced after bytes hit the segment, so a full
	// re-read must round-trip every record.
	all, err := l.Read(0, total, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, b := range all {
		n += len(b.Records)
	}
	if n != total {
		t.Fatalf("re-read %d records, want %d", n, total)
	}
}

// TestZeroCopyReaderSurvivesEviction pins the reader half of the DESIGN
// §10 ownership contract under -race: a consumer holding Record.Value
// views fetched through the cache must keep seeing the original bytes
// while eviction churn — a tiny byte budget fed by concurrent appends,
// plus full resets — drops and repopulates entries underneath it.
// Eviction drops references, never bytes: a dropped batch stays intact
// for whoever still holds it, and nothing on the log side may ever write
// through a handed-out view. The race detector sees any violation of
// the second half directly; the content checks catch the first.
func TestZeroCopyReaderSurvivesEviction(t *testing.T) {
	l := cacheTestLog(t, Config{CacheBytes: 2048, SegmentBytes: 8192})
	const preload = 50
	const total = 300
	appendN(t, l, preload)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 6)

	// Appender: keeps the FIFO cache evicting for the whole test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := preload; i < total; i++ {
			b := &protocol.RecordBatch{
				ProducerID:   protocol.NoProducerID,
				BaseSequence: protocol.NoSequence,
				Records: []protocol.Record{{
					Key:       []byte(fmt.Sprintf("k%d", i)),
					Value:     []byte(fmt.Sprintf("v%d", i)),
					Timestamp: int64(i),
				}},
			}
			if res := l.Append(b); res.Err != protocol.ErrNone {
				errs <- fmt.Errorf("append %d: %v", i, res.Err)
				return
			}
		}
	}()

	// Evictor: full resets on top of the byte-budget churn, so readers
	// also cross the compaction-style drop-everything path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.cache.reset()
				runtime.Gosched()
			}
		}
	}()

	// Readers: fetch, hold the raw value views, and re-verify every view
	// they have ever taken on each pass — any eviction that freed or
	// recycled the backing bytes shows up as corrupted history.
	verify := func(held map[int64][]byte) error {
		for off, v := range held {
			if want := fmt.Sprintf("v%d", off); string(v) != want {
				return fmt.Errorf("held view for offset %d changed under eviction: got %q, want %q", off, v, want)
			}
		}
		return nil
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make(map[int64][]byte)
			done := false
			for !done {
				select {
				case <-stop:
					done = true // one final pass over the full log
				default:
				}
				batches, err := l.Read(0, l.EndOffset(), 1<<20)
				if err != nil {
					errs <- fmt.Errorf("read: %w", err)
					return
				}
				for _, b := range batches {
					for i := range b.Records {
						held[b.BaseOffset+int64(i)] = b.Records[i].Value
					}
				}
				if err := verify(held); err != nil {
					errs <- err
					return
				}
			}
			if len(held) != total {
				errs <- fmt.Errorf("final pass held %d views, want %d", len(held), total)
				return
			}
			errs <- nil
		}()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestSharedDecodeRoundTripsThroughLog guards the wal-level use of
// DecodeBatchShared: what comes back from Read must equal what went in,
// byte for byte, even though the records alias the read buffer.
func TestSharedDecodeRoundTripsThroughLog(t *testing.T) {
	l := cacheTestLog(t, Config{})
	in := &protocol.RecordBatch{
		ProducerID: 3, ProducerEpoch: 1, BaseSequence: 0, Transactional: true,
		Records: []protocol.Record{
			{Key: []byte("a"), Value: []byte("1"), Timestamp: 10,
				Headers: []protocol.Header{{Key: "h", Value: []byte("x")}}},
			{Key: nil, Value: []byte("2"), Timestamp: 11},
		},
	}
	if res := l.Append(in); res.Err != protocol.ErrNone {
		t.Fatal(res.Err)
	}
	l.cache.reset() // force the read to go through the segment + shared decode
	got, err := l.Read(0, 2, 1<<20)
	if err != nil || len(got) != 1 {
		t.Fatalf("read: %d batches, err %v", len(got), err)
	}
	if !reflect.DeepEqual(*in, *got[0]) {
		t.Fatalf("round-trip mismatch:\n in %+v\nout %+v", in, got[0])
	}
}
