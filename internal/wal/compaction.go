package wal

import (
	"fmt"

	"kstreams/internal/protocol"
)

// Compact rewrites the cleanable region of a compacted log keeping only the
// record with the highest offset for every key, exactly what Kafka's log
// cleaner provides for changelog topics (paper Section 3.2): "brokers ...
// remove records for which another record was appended with the same key
// but a higher offset".
//
// Like Kafka's cleaner, only whole, non-active segments are compacted. The
// cleanable region is further bounded by cleanUpTo (typically the high
// watermark) and by the first offset of any open transaction, so that only
// resolved transactions are rewritten and read-committed filtering state
// for open transactions is never disturbed. Aborted records and resolved
// control markers inside the region are dropped; surviving records keep
// their original offsets (consumers tolerate offset gaps). Tombstones (nil
// values) survive as the latest value for their key so that table deletions
// replay correctly.
func (l *Log) Compact(cleanUpTo int64) error {
	if !l.cfg.Compacted {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	end := cleanUpTo
	for _, off := range l.ongoing {
		if off < end {
			end = off
		}
	}
	active := l.segments[len(l.segments)-1]
	if active.base < end {
		end = active.base
	}
	if end <= l.startOffset {
		return nil
	}

	// Select the whole segments that fall entirely below the bound.
	var region []*segment
	for _, seg := range l.segments[:len(l.segments)-1] {
		if seg.lastOffset() < end {
			region = append(region, seg)
		}
	}
	if len(region) == 0 {
		return nil
	}
	regionEnd := region[len(region)-1].lastOffset() + 1

	// Pass 1: decode the region, recording the highest offset per key.
	type rec struct {
		offset int64
		r      protocol.Record
	}
	isAborted := func(pid, off int64) bool {
		for _, a := range l.aborted {
			if a.ProducerID == pid && off >= a.FirstOffset && off < a.LastOffset {
				return true
			}
		}
		return false
	}
	latest := make(map[string]int64)
	var regionRecs []rec
	for _, seg := range region {
		for _, m := range seg.metas {
			buf := make([]byte, m.size)
			if _, err := seg.file.ReadAt(buf, m.pos); err != nil {
				return err
			}
			// Survivor records alias buf only until they are re-encoded
			// into the clean segment below, so the shared decode is safe.
			b, _, err := protocol.DecodeBatchShared(buf)
			if err != nil {
				return err
			}
			if b.Control {
				continue // resolved marker; drop
			}
			for i := range b.Records {
				off := b.BaseOffset + int64(i)
				if off < l.startOffset {
					continue
				}
				if b.Transactional && isAborted(b.ProducerID, off) {
					continue
				}
				regionRecs = append(regionRecs, rec{offset: off, r: b.Records[i]})
				latest[string(b.Records[i].Key)] = off
			}
		}
	}

	// Pass 2: write survivors into a fresh segment file, then swap it in.
	base := region[0].base
	cleanName := fmt.Sprintf("%s/%020d.log.clean", l.dir, base)
	finalName := fmt.Sprintf("%s/%020d.log", l.dir, base)
	cf, err := l.backend.Create(cleanName)
	if err != nil {
		return err
	}
	clean := &segment{base: base, name: finalName, file: cf}
	encBuf := protocol.GetFrameBuf()
	defer protocol.PutFrameBuf(encBuf)
	for _, rr := range regionRecs {
		if latest[string(rr.r.Key)] != rr.offset {
			continue
		}
		b := &protocol.RecordBatch{
			BaseOffset:   rr.offset,
			ProducerID:   protocol.NoProducerID,
			BaseSequence: protocol.NoSequence,
			Records:      []protocol.Record{rr.r},
		}
		enc := protocol.AppendBatch((*encBuf)[:0], b)
		*encBuf = enc
		pos, err := cf.Append(enc)
		if err != nil {
			return err
		}
		clean.metas = append(clean.metas, batchMeta{
			baseOffset:   rr.offset,
			lastOffset:   rr.offset,
			pos:          pos,
			size:         int32(len(enc)),
			maxTimestamp: rr.r.Timestamp,
			producerID:   protocol.NoProducerID,
		})
	}
	for _, seg := range region {
		seg.file.Close()
		if err := l.backend.Remove(seg.name); err != nil {
			return err
		}
	}
	if err := l.backend.Rename(cleanName, finalName); err != nil {
		return err
	}
	l.segments = append([]*segment{clean}, l.segments[len(region):]...)

	// Aborted ranges fully below the compacted boundary no longer matter.
	var liveAborted []AbortedRange
	for _, a := range l.aborted {
		if a.LastOffset >= regionEnd {
			liveAborted = append(liveAborted, a)
		}
	}
	l.aborted = liveAborted
	// Compaction regrouped records into fresh single-record batches, so
	// offset-keyed cache entries for the region are stale. Drop them all
	// rather than tracking which offsets the region covered.
	l.cache.reset()
	l.compactions++
	return nil
}

// RollSegment closes the active segment and opens a new one at the log end
// offset, making the closed segment eligible for compaction. The broker's
// cleaner calls this before compacting a partition that has accumulated
// enough dirty data in its active segment.
func (l *Log) RollSegment() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	active := l.segments[len(l.segments)-1]
	if len(active.metas) == 0 {
		return nil
	}
	return l.rollLocked(l.nextOffset)
}
