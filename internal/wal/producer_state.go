package wal

import (
	"kstreams/internal/protocol"
)

// maxCachedBatches is how many recent batch sequence ranges are retained
// per producer for duplicate detection, matching Kafka's producer state
// cache depth.
const maxCachedBatches = 5

type batchRef struct {
	baseSeq    int32
	lastSeq    int32
	baseOffset int64
}

type producerState struct {
	epoch  int16
	recent []batchRef // most recent last
}

func (p *producerState) lastSeq() int32 {
	if len(p.recent) == 0 {
		return protocol.NoSequence
	}
	return p.recent[len(p.recent)-1].lastSeq
}

// producerStateTable implements the broker-side sequence-number cache the
// paper describes in Section 4.1: "latest sequence numbers per-producer are
// cached" and rebuilt from the local log on leader failover.
type producerStateTable struct {
	byID map[int64]*producerState
}

func newProducerStateTable() *producerStateTable {
	return &producerStateTable{byID: make(map[int64]*producerState)}
}

// check validates an incoming batch against cached producer state without
// mutating it. It returns ErrNone to accept, ErrDuplicateSequence with the
// original base offset for an exact duplicate of a cached batch,
// ErrDuplicateSequence with offset -1 for an older-than-cache duplicate,
// ErrOutOfOrderSequence for a gap, or ErrProducerFenced for a stale epoch.
func (t *producerStateTable) check(b *protocol.RecordBatch) (protocol.ErrorCode, int64) {
	if b.ProducerID == protocol.NoProducerID {
		return protocol.ErrNone, -1
	}
	st, ok := t.byID[b.ProducerID]
	if !ok {
		return protocol.ErrNone, -1
	}
	if b.ProducerEpoch < st.epoch {
		return protocol.ErrProducerFenced, -1
	}
	if b.ProducerEpoch > st.epoch {
		// New producer session: sequences restart at zero.
		if b.BaseSequence != 0 && b.BaseSequence != protocol.NoSequence {
			return protocol.ErrOutOfOrderSequence, -1
		}
		return protocol.ErrNone, -1
	}
	if b.BaseSequence == protocol.NoSequence {
		return protocol.ErrNone, -1
	}
	last := st.lastSeq()
	switch {
	case last == protocol.NoSequence:
		return protocol.ErrNone, -1
	case b.BaseSequence == last+1:
		return protocol.ErrNone, -1
	case b.BaseSequence > last+1:
		return protocol.ErrOutOfOrderSequence, -1
	default:
		// At or below the last appended sequence: a retry. Find the cached
		// twin to return its offset.
		for _, r := range st.recent {
			if r.baseSeq == b.BaseSequence && r.lastSeq == b.LastSequence() {
				return protocol.ErrDuplicateSequence, r.baseOffset
			}
		}
		return protocol.ErrDuplicateSequence, -1
	}
}

// record registers an accepted batch's sequence range and epoch.
func (t *producerStateTable) record(b *protocol.RecordBatch) {
	if b.ProducerID == protocol.NoProducerID {
		return
	}
	st, ok := t.byID[b.ProducerID]
	if !ok {
		st = &producerState{epoch: b.ProducerEpoch}
		t.byID[b.ProducerID] = st
	}
	if b.ProducerEpoch > st.epoch {
		st.epoch = b.ProducerEpoch
		st.recent = nil
	}
	if b.BaseSequence == protocol.NoSequence {
		return
	}
	st.recent = append(st.recent, batchRef{
		baseSeq:    b.BaseSequence,
		lastSeq:    b.LastSequence(),
		baseOffset: b.BaseOffset,
	})
	if len(st.recent) > maxCachedBatches {
		st.recent = st.recent[len(st.recent)-maxCachedBatches:]
	}
}

// observeEpoch bumps the producer's epoch when a newer one is seen on a
// control marker, fencing older sessions.
func (t *producerStateTable) observeEpoch(pid int64, epoch int16) {
	st, ok := t.byID[pid]
	if !ok {
		t.byID[pid] = &producerState{epoch: epoch}
		return
	}
	if epoch > st.epoch {
		st.epoch = epoch
		st.recent = nil
	}
}

// epochOf returns the cached epoch for a producer, or -1 when unknown.
func (t *producerStateTable) epochOf(pid int64) int16 {
	if st, ok := t.byID[pid]; ok {
		return st.epoch
	}
	return -1
}
