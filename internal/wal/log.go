// Package wal implements the replicated log's local storage: a segmented
// append-only log of record batches with offset assignment, idempotent
// producer state (sequence-number de-duplication, paper Section 4.1),
// ongoing-transaction tracking for the last stable offset, an aborted
// transaction index for read-committed fetches, and key-based log
// compaction for changelog topics.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"kstreams/internal/protocol"
	"kstreams/internal/storage"
)

// Config controls one log's behaviour.
type Config struct {
	// SegmentBytes is the roll threshold for the active segment.
	SegmentBytes int64
	// Compacted enables latest-per-key compaction via Compact.
	Compacted bool
	// Fsync forces a sync after every append (filesystem backend only).
	Fsync bool
	// CacheBytes bounds the decoded-batch cache serving zero-copy fetches.
	// Zero selects DefaultCacheBytes; negative disables the cache.
	CacheBytes int64
}

// DefaultSegmentBytes is used when Config.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// AbortedRange records one aborted transaction's data range, used to
// filter fetches under read-committed isolation.
type AbortedRange struct {
	ProducerID  int64
	FirstOffset int64
	LastOffset  int64 // offset of the abort marker
}

type batchMeta struct {
	baseOffset    int64
	lastOffset    int64
	pos           int64 // byte position within the segment file
	size          int32 // encoded size
	maxTimestamp  int64
	producerID    int64
	transactional bool
	control       bool
}

type segment struct {
	base  int64
	name  string
	file  storage.File
	metas []batchMeta
}

func (s *segment) size() int64 { return s.file.Size() }

func (s *segment) lastOffset() int64 {
	if len(s.metas) == 0 {
		return s.base - 1
	}
	return s.metas[len(s.metas)-1].lastOffset
}

// Log is one partition's local log.
type Log struct {
	mu       sync.RWMutex
	backend  storage.Backend
	dir      string
	cfg      Config
	segments []*segment

	startOffset int64
	nextOffset  int64

	producers *producerStateTable
	// ongoing maps producer id to the first offset of its open transaction.
	ongoing map[int64]int64
	aborted []AbortedRange

	// cache serves decoded batches to the fetch path without re-reading
	// or re-decoding segment bytes. Entries are published only after the
	// backing bytes are durable; see appendLocked.
	cache *batchCache

	// compactions counts completed compaction passes (metrics/tests).
	compactions int
}

// ErrOffsetOutOfRange reports a read below the log start or above the end.
var ErrOffsetOutOfRange = errors.New("wal: offset out of range")

// Open creates or recovers the log stored under dir within the backend.
func Open(backend storage.Backend, dir string, cfg Config) (*Log, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	l := &Log{
		backend:   backend,
		dir:       dir,
		cfg:       cfg,
		producers: newProducerStateTable(),
		ongoing:   make(map[int64]int64),
		cache:     newBatchCache(cfg.CacheBytes),
	}
	names, err := backend.List(dir + "/")
	if err != nil {
		return nil, err
	}
	var segNames []string
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".log" {
			segNames = append(segNames, n)
		}
	}
	sort.Strings(segNames)
	if len(segNames) == 0 {
		if err := l.readMetaFile(); err != nil {
			return nil, err
		}
		l.nextOffset = l.startOffset
		if err := l.rollLocked(l.startOffset); err != nil {
			return nil, err
		}
		return l, nil
	}
	if err := l.readMetaFile(); err != nil {
		return nil, err
	}
	for _, name := range segNames {
		f, err := backend.Open(name)
		if err != nil {
			return nil, err
		}
		var base int64
		if _, err := fmt.Sscanf(name[len(dir)+1:], "%020d.log", &base); err != nil {
			return nil, fmt.Errorf("wal: bad segment name %q: %v", name, err)
		}
		seg := &segment{base: base, name: name, file: f}
		if err := l.recoverSegment(seg); err != nil {
			return nil, err
		}
		l.segments = append(l.segments, seg)
	}
	last := l.segments[len(l.segments)-1]
	l.nextOffset = last.lastOffset() + 1
	if l.nextOffset < l.startOffset {
		l.nextOffset = l.startOffset
	}
	return l, nil
}

// recoverSegment scans a segment file, rebuilding batch metadata, producer
// state, ongoing-transaction tracking and the aborted index. A trailing
// partial write (torn append) is truncated away.
func (l *Log) recoverSegment(seg *segment) error {
	size := seg.file.Size()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := seg.file.ReadAt(buf, 0); err != nil {
			return err
		}
	}
	var pos int64
	for pos < size {
		// Shared decode: recovery only extracts metadata and producer
		// state, so aliasing the scan buffer avoids copying every batch.
		b, n, err := protocol.DecodeBatchShared(buf[pos:])
		if err != nil {
			// Torn tail: discard the rest.
			if terr := seg.file.Truncate(pos); terr != nil {
				return terr
			}
			break
		}
		l.indexBatch(seg, &b, pos, int32(n))
		pos += int64(n)
	}
	return nil
}

// indexBatch appends metadata for a decoded batch and updates producer and
// transaction state. Caller holds the lock (or is single-threaded setup).
func (l *Log) indexBatch(seg *segment, b *protocol.RecordBatch, pos int64, size int32) {
	seg.metas = append(seg.metas, batchMeta{
		baseOffset:    b.BaseOffset,
		lastOffset:    b.LastOffset(),
		pos:           pos,
		size:          size,
		maxTimestamp:  b.MaxTimestamp(),
		producerID:    b.ProducerID,
		transactional: b.Transactional,
		control:       b.Control,
	})
	l.trackBatch(b)
}

// trackBatch updates producer sequences and transaction ranges for an
// appended or recovered batch.
func (l *Log) trackBatch(b *protocol.RecordBatch) {
	if b.ProducerID == protocol.NoProducerID {
		return
	}
	if b.Control {
		m, err := b.Marker()
		if err == nil {
			if first, ok := l.ongoing[b.ProducerID]; ok {
				if m.Type == protocol.MarkerAbort {
					l.aborted = append(l.aborted, AbortedRange{
						ProducerID:  b.ProducerID,
						FirstOffset: first,
						LastOffset:  b.BaseOffset,
					})
				}
				delete(l.ongoing, b.ProducerID)
			}
		}
		l.producers.observeEpoch(b.ProducerID, b.ProducerEpoch)
		return
	}
	l.producers.record(b)
	if b.Transactional {
		if _, ok := l.ongoing[b.ProducerID]; !ok {
			l.ongoing[b.ProducerID] = b.BaseOffset
		}
	}
}

func (l *Log) rollLocked(base int64) error {
	name := segmentName(l.dir, base)
	f, err := l.backend.Create(name)
	if err != nil {
		return err
	}
	l.segments = append(l.segments, &segment{base: base, name: name, file: f})
	return nil
}

// segmentName formats dir/<20-digit zero-padded base>.log without fmt:
// segment rolls happen under the append lock on the hot path.
func segmentName(dir string, base int64) string {
	var digits [20]byte
	for i := len(digits) - 1; i >= 0; i-- {
		digits[i] = byte('0' + base%10)
		base /= 10
	}
	return dir + "/" + string(digits[:]) + ".log"
}

// AppendResult reports the outcome of an idempotent append attempt.
type AppendResult struct {
	Err        protocol.ErrorCode
	BaseOffset int64
}

// Append validates the batch against producer state, assigns offsets, and
// appends it. Duplicate sequences return ErrDuplicateSequence with the
// original base offset (the client treats this as success); gaps return
// ErrOutOfOrderSequence; stale epochs return ErrProducerFenced.
//
//kslint:hotpath
func (l *Log) Append(b *protocol.RecordBatch) AppendResult {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !b.Control {
		if code, off := l.producers.check(b); code != protocol.ErrNone {
			return AppendResult{Err: code, BaseOffset: off}
		}
	}
	b.BaseOffset = l.nextOffset
	if err := l.appendLocked(b); err != nil {
		return AppendResult{Err: protocol.ErrInvalidRecord}
	}
	return AppendResult{BaseOffset: b.BaseOffset}
}

// AppendAssigned appends a batch whose offsets were already assigned by a
// leader (follower replication path). The batch must continue the log.
//
//kslint:hotpath
func (l *Log) AppendAssigned(b *protocol.RecordBatch) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b.BaseOffset != l.nextOffset {
		//kslint:ignore hotalloc a non-contiguous append is a replication protocol violation, not steady state
		return fmt.Errorf("wal: non-contiguous append: batch base %d, log end %d",
			b.BaseOffset, l.nextOffset)
	}
	return l.appendLocked(b)
}

func (l *Log) appendLocked(b *protocol.RecordBatch) error {
	if len(b.Records) == 0 {
		return errors.New("wal: empty batch")
	}
	seg := l.segments[len(l.segments)-1]
	if seg.size() >= l.cfg.SegmentBytes && len(seg.metas) > 0 {
		if err := l.rollLocked(l.nextOffset); err != nil {
			return err
		}
		seg = l.segments[len(l.segments)-1]
	}
	// Encode into a pooled frame buffer: File.Append copies the bytes
	// (both backends), so the buffer can go back to the pool immediately.
	encBuf := protocol.GetFrameBuf()
	enc := protocol.AppendBatch((*encBuf)[:0], b)
	*encBuf = enc
	pos, err := seg.file.Append(enc)
	if err != nil {
		protocol.PutFrameBuf(encBuf)
		return err
	}
	if l.cfg.Fsync {
		if err := seg.file.Sync(); err != nil {
			protocol.PutFrameBuf(encBuf)
			return err
		}
	}
	size := int32(len(enc))
	protocol.PutFrameBuf(encBuf)
	l.indexBatch(seg, b, pos, size)
	// Publish to the cache only now: the bytes are durable (and synced if
	// configured), so a concurrent fetch served from the cache can never
	// observe a batch whose backing storage write could still fail.
	l.cache.put(b.BaseOffset, b, int64(size))
	l.nextOffset = b.LastOffset() + 1
	return nil
}

// StartOffset returns the log start offset (first available record).
func (l *Log) StartOffset() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.startOffset
}

// EndOffset returns the next offset to be assigned (log end offset).
func (l *Log) EndOffset() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextOffset
}

// FirstUnstable returns the first offset of the earliest open transaction,
// or -1 when no transaction is open. The last stable offset is
// min(FirstUnstable, high watermark); the broker combines the two.
func (l *Log) FirstUnstable() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	first := int64(-1)
	for _, off := range l.ongoing {
		if first < 0 || off < first {
			first = off
		}
	}
	return first
}

// AbortedIn returns aborted transaction ranges overlapping [from, to).
func (l *Log) AbortedIn(from, to int64) []AbortedRange {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []AbortedRange
	for _, a := range l.aborted {
		if a.LastOffset >= from && a.FirstOffset < to {
			//kslint:ignore hotalloc aborted ranges are empty on the steady-state read-committed path; preallocating would cost an allocation every fetch
			out = append(out, a)
		}
	}
	return out
}

// Read returns consecutive batches starting at the batch containing offset
// (or the next batch after a compaction gap), stopping before maxOffset and
// after maxBytes of encoded data (at least one batch is always returned
// when data is available). It reports ErrOffsetOutOfRange for offsets below
// the log start or above the log end.
//
//kslint:hotpath
func (l *Log) Read(offset, maxOffset int64, maxBytes int) ([]*protocol.RecordBatch, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if offset < l.startOffset || offset > l.nextOffset {
		return nil, ErrOffsetOutOfRange
	}
	if maxOffset > l.nextOffset {
		maxOffset = l.nextOffset
	}
	if offset >= maxOffset {
		return nil, nil
	}
	si := sort.Search(len(l.segments), func(i int) bool {
		return l.segments[i].lastOffset() >= offset
	})
	// Fetches return a handful of batches before tripping maxBytes;
	// preallocate for the common case instead of growing per batch.
	out := make([]*protocol.RecordBatch, 0, 16)
	total := 0
	for ; si < len(l.segments); si++ {
		seg := l.segments[si]
		mi := sort.Search(len(seg.metas), func(i int) bool {
			return seg.metas[i].lastOffset >= offset
		})
		for ; mi < len(seg.metas); mi++ {
			m := seg.metas[mi]
			if m.baseOffset >= maxOffset {
				return out, nil
			}
			if total > 0 && total+int(m.size) > maxBytes {
				return out, nil
			}
			if b := l.cache.get(m.baseOffset); b != nil {
				out = append(out, b)
				total += int(m.size)
				continue
			}
			//kslint:ignore hotalloc buf becomes the cache entry's backing store; pooling it would recycle bytes still aliased by readers
			buf := make([]byte, m.size)
			if _, err := seg.file.ReadAt(buf, m.pos); err != nil {
				return nil, err
			}
			// Shared decode: the batch aliases buf, which is never reused
			// or mutated — readers treat batches as immutable (DESIGN §10).
			b, _, err := protocol.DecodeBatchShared(buf)
			if err != nil {
				return nil, err
			}
			//kslint:ignore zerocopy the cache is the designated owner of shared batches (DESIGN §10); eviction drops the reference, never the bytes
			l.cache.put(m.baseOffset, &b, int64(m.size))
			out = append(out, &b)
			total += int(m.size)
		}
	}
	return out, nil
}

// OffsetForTimestamp returns the first offset whose batch max timestamp is
// at least ts, or -1 when no such batch exists.
func (l *Log) OffsetForTimestamp(ts int64) int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	for _, seg := range l.segments {
		for _, m := range seg.metas {
			if m.maxTimestamp >= ts {
				return m.baseOffset
			}
		}
	}
	return -1
}

// TruncateTo discards all records at and beyond offset, rebuilding producer
// and transaction state from the remaining log. Used when a replica becomes
// a follower and must drop uncommitted records.
func (l *Log) TruncateTo(offset int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset >= l.nextOffset {
		return nil
	}
	if offset < l.startOffset {
		offset = l.startOffset
	}
	// Drop whole segments beyond the cut.
	for len(l.segments) > 1 && l.segments[len(l.segments)-1].base >= offset {
		seg := l.segments[len(l.segments)-1]
		seg.file.Close()
		if err := l.backend.Remove(seg.name); err != nil {
			return err
		}
		l.segments = l.segments[:len(l.segments)-1]
	}
	// Cut within the now-last segment.
	seg := l.segments[len(l.segments)-1]
	cut := sort.Search(len(seg.metas), func(i int) bool {
		return seg.metas[i].lastOffset >= offset
	})
	if cut < len(seg.metas) {
		if err := seg.file.Truncate(seg.metas[cut].pos); err != nil {
			return err
		}
		seg.metas = seg.metas[:cut]
	}
	l.nextOffset = offset
	// Re-appends after truncation may place different content at the same
	// offsets; cached batches at or beyond the cut must not survive.
	l.cache.invalidateFrom(offset)
	l.rebuildStateLocked()
	return nil
}

// rebuildStateLocked rescans all batch metadata to reconstruct producer
// sequences, open transactions, and the aborted index after truncation.
func (l *Log) rebuildStateLocked() {
	l.producers = newProducerStateTable()
	l.ongoing = make(map[int64]int64)
	l.aborted = nil
	for _, seg := range l.segments {
		for _, m := range seg.metas {
			buf := make([]byte, m.size)
			if _, err := seg.file.ReadAt(buf, m.pos); err != nil {
				continue
			}
			// Shared decode: trackBatch retains no byte slices.
			b, _, err := protocol.DecodeBatchShared(buf)
			if err != nil {
				continue
			}
			l.trackBatch(&b)
		}
	}
}

// AdvanceStartOffset raises the log start offset (delete-records), dropping
// whole segments that fall entirely below it.
func (l *Log) AdvanceStartOffset(offset int64) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if offset > l.nextOffset {
		offset = l.nextOffset
	}
	if offset <= l.startOffset {
		return l.startOffset, nil
	}
	l.startOffset = offset
	for len(l.segments) > 1 && l.segments[1].base <= offset {
		seg := l.segments[0]
		seg.file.Close()
		if err := l.backend.Remove(seg.name); err != nil {
			return 0, err
		}
		l.segments = l.segments[1:]
	}
	if err := l.writeMetaFileLocked(); err != nil {
		return 0, err
	}
	return l.startOffset, nil
}

// Size returns the total byte size of all segments.
func (l *Log) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var n int64
	for _, seg := range l.segments {
		n += seg.size()
	}
	return n
}

// CacheStats reports decoded-batch cache hits and misses (tests/metrics).
func (l *Log) CacheStats() (hits, misses int64) {
	return l.cache.stats()
}

// Compactions returns how many compaction passes have completed.
func (l *Log) Compactions() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.compactions
}

// ProducerEpoch returns the latest observed epoch for a producer id, or -1.
func (l *Log) ProducerEpoch(pid int64) int16 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.producers.epochOf(pid)
}

// HasOngoing reports whether the producer has an open transaction here.
func (l *Log) HasOngoing(pid int64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.ongoing[pid]
	return ok
}

// Close releases all segment files.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, seg := range l.segments {
		if err := seg.file.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- log start offset persistence ---

func (l *Log) metaName() string { return l.dir + "/meta" }

func (l *Log) readMetaFile() error {
	f, err := l.backend.Open(l.metaName())
	if err != nil {
		if errors.Is(err, storage.ErrNotFound) {
			return nil
		}
		return err
	}
	defer f.Close()
	var buf [8]byte
	if _, err := f.ReadAt(buf[:], 0); err != nil {
		return nil // treat unreadable meta as absent
	}
	l.startOffset = int64(binary.BigEndian.Uint64(buf[:]))
	return nil
}

func (l *Log) writeMetaFileLocked() error {
	f, err := l.backend.Create(l.metaName())
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(l.startOffset))
	_, err = f.Append(buf[:])
	return err
}
