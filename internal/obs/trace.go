package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span is one timed step inside a Trace — typically a single broker
// round-trip attributed to the enclosing operation.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// Trace collects the spans of one end-to-end operation (e.g. a Streams
// commit): attach it to a producer, and every RPC the transport sends on
// its behalf records a span, so the commit's wall time decomposes into
// its broker round-trips.
type Trace struct {
	Name  string
	Start time.Time

	mu    sync.Mutex
	spans []Span
	dur   time.Duration
	done  bool
}

// NewTrace starts a trace for a named operation.
func NewTrace(name string) *Trace {
	return &Trace{Name: name, Start: time.Now()}
}

// StartSpan opens a named span and returns the func that closes it.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		t.mu.Lock()
		t.spans = append(t.spans, Span{Name: name, Start: start, Dur: time.Since(start)})
		t.mu.Unlock()
	}
}

// Finish seals the trace, fixing its total duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		t.done = true
		t.dur = time.Since(t.Start)
	}
	t.mu.Unlock()
}

// Dur returns the total duration (elapsed so far if not finished).
func (t *Trace) Dur() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.done {
		return t.dur
	}
	return time.Since(t.Start)
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// String renders the trace as one line per span with offsets relative to
// the trace start, e.g.:
//
//	commit 3.1ms
//	  +0.0ms EndTxn 1.2ms
//	  +1.3ms WriteTxnMarkers 0.9ms
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %.1fms", t.Name, float64(t.Dur().Microseconds())/1000)
	for _, s := range t.Spans() {
		fmt.Fprintf(&b, "\n  +%.1fms %s %.1fms",
			float64(s.Start.Sub(t.Start).Microseconds())/1000,
			s.Name,
			float64(s.Dur.Microseconds())/1000)
	}
	return b.String()
}
