package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func startExport(t *testing.T, r *Registry) *ExportServer {
	t.Helper()
	e, err := ServeExport(r, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeExport: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// Prometheus text format: every non-comment line is
// name{label="v",...} value — with metric names and label keys in the
// legal charset and values plain integers here.
var promLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? -?[0-9]+$`)

func TestExportMetricsIsValidPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport_rpcs_total", L("kind", "Produce")).Add(7)
	r.Counter("transport_rpcs_total", L("kind", "Fetch")).Add(3)
	r.Gauge("broker_partition_high_watermark", L("topic", "t"), L("partition", "0")).Set(42)
	r.Histogram("client_commit_latency_ns").Observe(1000)
	r.Histogram("client_commit_latency_ns").Observe(2000)
	e := startExport(t, r)

	code, body := get(t, "http://"+e.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics status %d", code)
	}
	types := map[string]string{}
	samples := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := types[name]; dup {
				t.Fatalf("family %s typed twice (%s, %s)", name, prev, typ)
			}
			types[name] = typ
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Fatalf("invalid Prometheus sample line %q", line)
		}
		samples[line] = true
	}
	if types["transport_rpcs_total"] != "counter" ||
		types["broker_partition_high_watermark"] != "gauge" ||
		types["client_commit_latency_ns"] != "summary" {
		t.Fatalf("family types wrong: %v", types)
	}
	for _, want := range []string{
		`transport_rpcs_total{kind="Produce"} 7`,
		`transport_rpcs_total{kind="Fetch"} 3`,
		`broker_partition_high_watermark{partition="0",topic="t"} 42`,
		`client_commit_latency_ns_count 2`,
	} {
		if !samples[want] {
			t.Fatalf("missing sample %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(body, `client_commit_latency_ns{quantile="0.99"}`) {
		t.Fatalf("no p99 quantile sample in:\n%s", body)
	}
}

func TestExportSnapshotRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("transport_rpcs_total", L("kind", "Produce")).Add(11)
	r.Gauge("completeness_task_lag_ms", L("task", "events-0")).Set(250)
	r.Histogram("client_commit_latency_ns").Observe(5000)
	e := startExport(t, r)

	code, body := get(t, "http://"+e.Addr()+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("GET /snapshot status %d", code)
	}
	var got Snapshot
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("snapshot JSON: %v", err)
	}
	want := r.Snapshot()
	if got.Counters["transport_rpcs_total{kind=Produce}"] != want.Counters["transport_rpcs_total{kind=Produce}"] {
		t.Fatalf("counter did not round-trip: %v vs %v", got.Counters, want.Counters)
	}
	if got.Gauges["completeness_lag_ms"] != 250 {
		t.Fatalf("rollup gauge = %d, want 250", got.Gauges["completeness_lag_ms"])
	}
	h := got.Histograms["client_commit_latency_ns"]
	if h.Count != 1 || h.Unit != UnitNanoseconds {
		t.Fatalf("histogram stat did not round-trip: %+v", h)
	}
}

func TestExportTraceAndFlightRec(t *testing.T) {
	r := NewRegistry()
	tr := NewTrace("commit")
	tr.StartSpan("EndTxn")()
	tr.Finish()
	r.RecordTrace(tr)
	e := startExport(t, r)

	code, body := get(t, "http://"+e.Addr()+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET /trace status %d", code)
	}
	var traces []exportTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(traces) != 1 || traces[0].Name != "commit" || len(traces[0].Spans) != 1 {
		t.Fatalf("traces = %+v", traces)
	}

	// No recorder attached: /flightrec is a 404 and counts an error.
	if code, _ := get(t, "http://"+e.Addr()+"/flightrec"); code != http.StatusNotFound {
		t.Fatalf("GET /flightrec without recorder status %d, want 404", code)
	}
	f := NewFlightRecorder(64)
	r.SetFlightRecorder(f)
	f.Record("fault", "crash", "", 1, 0)
	code, body = get(t, "http://"+e.Addr()+"/flightrec")
	if code != http.StatusOK {
		t.Fatalf("GET /flightrec status %d", code)
	}
	reason, evs, err := ParseFlightDump(strings.NewReader(body))
	if err != nil || reason != "http" || len(evs) != 1 {
		t.Fatalf("flightrec dump: reason=%q evs=%d err=%v", reason, len(evs), err)
	}

	// Unknown paths 404 and count errors; requests counted per path.
	if code, _ := get(t, "http://"+e.Addr()+"/nope"); code != http.StatusNotFound {
		t.Fatalf("GET /nope status %d", code)
	}
	s := r.Snapshot()
	if s.Counter("export_http_requests_total{path=trace}") != 1 {
		t.Fatalf("trace requests not counted: %v", s.Counters)
	}
	if s.Counter("export_http_errors_total") != 2 {
		t.Fatalf("export_http_errors_total = %d, want 2 (bare /flightrec + /nope)", s.Counter("export_http_errors_total"))
	}
}
