package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// HistogramStat is a point-in-time summary of one histogram.
type HistogramStat struct {
	Count int64
	Mean  int64
	P50   int64
	P95   int64
	P99   int64
	Max   int64
	Unit  Unit
}

// Snapshot is a consistent-enough point-in-time view of a registry:
// each instrument is read atomically, though the set as a whole is not
// a single transaction (new samples may land between reads).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramStat
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramStat{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	// Cluster-wide completeness rollup: the worst per-task event-time lag
	// is how far behind event time the whole application's output is (the
	// paper's completeness measure). Computed at snapshot time so per-task
	// updates stay a bare gauge store.
	rollup, found := int64(0), false
	for k, v := range s.Gauges {
		if BaseName(k) == "completeness_task_lag_ms" {
			found = true
			if v > rollup {
				rollup = v
			}
		}
	}
	if found {
		s.Gauges["completeness_lag_ms"] = rollup
	}
	for k, h := range hists {
		s.Histograms[k] = HistogramStat{
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Quantile(50),
			P95:   h.Quantile(95),
			P99:   h.Quantile(99),
			Max:   h.Max(),
			Unit:  h.Unit(),
		}
	}
	return s
}

// Counter returns the snapshotted value of one counter by full name
// (0 if absent).
func (s *Snapshot) Counter(full string) int64 {
	if s == nil {
		return 0
	}
	return s.Counters[full]
}

// SumCounter sums every counter in the snapshot whose base name (the part
// before '{') equals base — the family total across all label sets.
func (s *Snapshot) SumCounter(base string) int64 {
	if s == nil {
		return 0
	}
	var sum int64
	for k, v := range s.Counters {
		if BaseName(k) == base {
			sum += v
		}
	}
	return sum
}

// FormatValue renders v per unit: durations scale to a readable unit,
// counts print raw.
func FormatValue(v int64, u Unit) string {
	if u == UnitCount {
		return fmt.Sprintf("%d", v)
	}
	d := time.Duration(v)
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1000)
	default:
		return fmt.Sprintf("%dns", v)
	}
}

// WriteText dumps the snapshot in a stable, sorted, line-oriented format:
//
//	counter <name> <value>
//	gauge   <name> <value>
//	hist    <name> count=N mean=M p50=A p95=B p99=C max=D
func WriteText(w io.Writer, s *Snapshot) {
	if s == nil {
		return
	}
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "counter %s %d\n", k, s.Counters[k])
	}
	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(w, "gauge   %s %d\n", k, s.Gauges[k])
	}
	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := s.Histograms[k]
		fmt.Fprintf(w, "hist    %s count=%d mean=%s p50=%s p95=%s p99=%s max=%s\n",
			k, h.Count,
			FormatValue(h.Mean, h.Unit),
			FormatValue(h.P50, h.Unit),
			FormatValue(h.P95, h.Unit),
			FormatValue(h.P99, h.Unit),
			FormatValue(h.Max, h.Unit))
	}
}

// Text renders WriteText to a string.
func (s *Snapshot) Text() string {
	var b strings.Builder
	WriteText(&b, s)
	return b.String()
}
