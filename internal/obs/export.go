package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
)

// ExportServer is the opt-in HTTP export plane over one registry: the
// runtime surface that turns the in-process instruments into something a
// human (kstop -live) or a scraper (Prometheus) can watch while the
// cluster runs.
//
//	GET /metrics   Prometheus text exposition (counters, gauges,
//	               histograms as summaries)
//	GET /snapshot  the Snapshot struct as JSON (round-trips through
//	               snapshot.go)
//	GET /trace     recently finished traces with their spans, as JSON
//	GET /flightrec the attached flight recorder's ring as a dump
//	               artifact (404 when no recorder is attached)
type ExportServer struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// ServeExport starts the export plane on addr ("127.0.0.1:0" picks a
// free port) and returns once the listener is bound.
func ServeExport(reg *Registry, addr string) (*ExportServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	e := &ExportServer{reg: reg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", e.handleMetrics)
	mux.HandleFunc("/snapshot", e.handleSnapshot)
	mux.HandleFunc("/trace", e.handleTrace)
	mux.HandleFunc("/flightrec", e.handleFlightRec)
	mux.HandleFunc("/", e.handleNotFound)
	e.srv = &http.Server{Handler: mux}
	go e.srv.Serve(ln)
	return e, nil
}

// Addr returns the bound listen address (host:port).
func (e *ExportServer) Addr() string {
	if e == nil {
		return ""
	}
	return e.ln.Addr().String()
}

// Close stops the server and its listener.
func (e *ExportServer) Close() error {
	if e == nil {
		return nil
	}
	return e.srv.Close()
}

func (e *ExportServer) count(path string) {
	e.reg.Counter("export_http_requests_total", L("path", path)).Inc()
}

func (e *ExportServer) handleNotFound(w http.ResponseWriter, r *http.Request) {
	e.reg.Counter("export_http_errors_total").Inc()
	http.NotFound(w, r)
}

func (e *ExportServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	e.count("metrics")
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, e.reg.Snapshot())
}

func (e *ExportServer) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	e.count("snapshot")
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(e.reg.Snapshot()); err != nil {
		e.reg.Counter("export_http_errors_total").Inc()
	}
}

// exportTrace / exportSpan are the /trace wire shapes. Span offsets are
// relative to the trace start so the JSON carries no wall-clock epoch.
type exportTrace struct {
	Name  string       `json:"name"`
	DurNS int64        `json:"dur_ns"`
	Spans []exportSpan `json:"spans"`
}

type exportSpan struct {
	Name     string `json:"name"`
	OffsetNS int64  `json:"offset_ns"`
	DurNS    int64  `json:"dur_ns"`
}

func (e *ExportServer) handleTrace(w http.ResponseWriter, _ *http.Request) {
	e.count("trace")
	traces := e.reg.RecentTraces()
	out := make([]exportTrace, 0, len(traces))
	for _, t := range traces {
		et := exportTrace{Name: t.Name, DurNS: int64(t.Dur()), Spans: []exportSpan{}}
		for _, s := range t.Spans() {
			et.Spans = append(et.Spans, exportSpan{
				Name:     s.Name,
				OffsetNS: int64(s.Start.Sub(t.Start)),
				DurNS:    int64(s.Dur),
			})
		}
		out = append(out, et)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		e.reg.Counter("export_http_errors_total").Inc()
	}
}

func (e *ExportServer) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	f := e.reg.FlightRecorder()
	if f == nil {
		e.handleNotFound(w, r)
		return
	}
	e.count("flightrec")
	w.Header().Set("Content-Type", "application/json")
	if err := f.WriteJSON(w, "http"); err != nil {
		e.reg.Counter("export_http_errors_total").Inc()
	}
}

// --- Prometheus text exposition ---

// WritePrometheus renders a snapshot in the Prometheus text format
// (version 0.0.4): counters and gauges as typed samples, histograms as
// summaries (p50/p95/p99 quantiles plus _sum and _count, where _sum is
// approximated as mean×count — the histogram keeps no exact sum).
// Values keep the instrument's native unit (nanoseconds for latency
// histograms, raw counts otherwise).
func WritePrometheus(w io.Writer, s *Snapshot) {
	if s == nil {
		return
	}
	writePromFamilies(w, s.Counters, "counter")
	writePromFamilies(w, s.Gauges, "gauge")

	names := make([]string, 0, len(s.Histograms))
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, full := range names {
		h := s.Histograms[full]
		base := BaseName(full)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s summary\n", base)
		}
		for _, q := range [...]struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s%s %d\n", base, promLabels(full, "quantile", q.q), q.v)
		}
		fmt.Fprintf(w, "%s_sum%s %d\n", base, promLabels(full), h.Mean*h.Count)
		fmt.Fprintf(w, "%s_count%s %d\n", base, promLabels(full), h.Count)
	}
}

func writePromFamilies(w io.Writer, vals map[string]int64, typ string) {
	names := make([]string, 0, len(vals))
	for k := range vals {
		names = append(names, k)
	}
	sort.Strings(names)
	typed := map[string]bool{}
	for _, full := range names {
		base := BaseName(full)
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
		}
		fmt.Fprintf(w, "%s%s %d\n", base, promLabels(full), vals[full])
	}
}

// promLabels converts the canonical "{k=v,...}" block of a full metric
// name into Prometheus syntax ({k="v",...}), appending any extra
// key/value pairs (given as alternating strings). Returns "" for an
// unlabeled name with no extras.
func promLabels(full string, extra ...string) string {
	var pairs []string
	if i := strings.IndexByte(full, '{'); i >= 0 {
		for _, kv := range strings.Split(strings.TrimSuffix(full[i+1:], "}"), ",") {
			if k, v, ok := strings.Cut(kv, "="); ok {
				pairs = append(pairs, k+`="`+promEscape(v)+`"`)
			}
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, extra[i]+`="`+promEscape(extra[i+1])+`"`)
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}

func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
