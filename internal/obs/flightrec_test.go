package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingKeepsNewest(t *testing.T) {
	f := NewFlightRecorder(64)
	for i := 0; i < 100; i++ {
		f.Record("note", "n", "", int64(i), 0)
	}
	evs := f.Events()
	if len(evs) != 64 {
		t.Fatalf("resident events = %d, want 64", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(36 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest evicted first)", i, ev.Seq, want)
		}
	}
	if f.Len() != 100 {
		t.Fatalf("Len = %d, want 100", f.Len())
	}
}

func TestNilFlightRecorderIsNoOp(t *testing.T) {
	var f *FlightRecorder
	f.Record("note", "n", "", 0, 0)
	if f.Events() != nil || f.Len() != 0 {
		t.Fatal("nil recorder recorded")
	}
	if err := f.DumpFile("/nonexistent/should/not/matter", "x"); err != nil {
		t.Fatalf("nil DumpFile errored: %v", err)
	}
}

func TestFlightRecorderDumpRoundTrips(t *testing.T) {
	f := NewFlightRecorder(64)
	f.Record("fault", "crash-broker", "broker 2", 123, 0)
	f.Record("violation", "I1", "read-committed saw aborted data", 456, 0)
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := f.DumpFile(path, "test-reason"); err != nil {
		t.Fatalf("DumpFile: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reason, evs, err := ParseFlightDump(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ParseFlightDump: %v", err)
	}
	if reason != "test-reason" {
		t.Fatalf("reason = %q", reason)
	}
	if len(evs) != 2 || evs[0].Name != "crash-broker" || evs[1].Kind != "violation" {
		t.Fatalf("events round-tripped wrong: %+v", evs)
	}
}

func TestFlightRecorderCountsThroughRegistry(t *testing.T) {
	r := NewRegistry()
	f := NewFlightRecorder(64)
	r.SetFlightRecorder(f)
	if r.FlightRecorder() != f {
		t.Fatal("recorder not attached")
	}
	for i := 0; i < 70; i++ {
		f.Record("note", "n", "", int64(i), 0)
	}
	s := r.Snapshot()
	if got := s.Counter("flightrec_events_total"); got != 70 {
		t.Fatalf("flightrec_events_total = %d, want 70", got)
	}
	if got := s.Counter("flightrec_overwrites_total"); got != 6 {
		t.Fatalf("flightrec_overwrites_total = %d, want 6", got)
	}
	path := filepath.Join(t.TempDir(), "f.json")
	if err := f.DumpFile(path, "r"); err != nil {
		t.Fatal(err)
	}
	if got := r.Snapshot().Counter("flightrec_dumps_total"); got != 1 {
		t.Fatalf("flightrec_dumps_total = %d, want 1", got)
	}
}

func TestFlightRecorderCapturesTraces(t *testing.T) {
	r := NewRegistry()
	f := NewFlightRecorder(64)
	r.SetFlightRecorder(f)
	tr := NewTrace("commit")
	done := tr.StartSpan("EndTxn")
	time.Sleep(time.Millisecond)
	done()
	tr.Finish()
	r.RecordTrace(tr)
	evs := f.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want trace+span", len(evs))
	}
	if evs[0].Kind != "trace" || evs[0].Name != "commit" {
		t.Fatalf("first event %+v, want the trace", evs[0])
	}
	if evs[1].Kind != "span" || evs[1].Name != "commit/EndTxn" || evs[1].Dur <= 0 {
		t.Fatalf("second event %+v, want the span with a duration", evs[1])
	}
}

func TestFlightRecorderConcurrentRecord(t *testing.T) {
	f := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.Record("note", "n", "", int64(i), 0)
			}
		}()
	}
	wg.Wait()
	if f.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", f.Len())
	}
	evs := f.Events()
	if len(evs) != 128 {
		t.Fatalf("resident = %d, want 128", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatal("events not in strict seq order")
		}
	}
}

func TestGlobalFlightRecorderDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "global.json")
	f := NewFlightRecorder(64)
	SetGlobalFlightRecorder(f, path)
	defer SetGlobalFlightRecorder(nil, "")
	GlobalFlightRecorder().Record("note", "hello", "", 1, 0)
	got, ok := DumpGlobalFlightRecorder("leak")
	if !ok || got != path {
		t.Fatalf("DumpGlobalFlightRecorder = %q, %v", got, ok)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	reason, evs, err := ParseFlightDump(bytes.NewReader(data))
	if err != nil || reason != "leak" || len(evs) != 1 {
		t.Fatalf("dump parse: reason=%q evs=%d err=%v", reason, len(evs), err)
	}
	SetGlobalFlightRecorder(nil, "")
	if _, ok := DumpGlobalFlightRecorder("x"); ok {
		t.Fatal("dump succeeded with no recorder installed")
	}
}

func TestLabelCardinalityGuardSpills(t *testing.T) {
	r := NewRegistry()
	r.SetLabelCap(4)
	var inCap []*Gauge
	for i := 0; i < 4; i++ {
		inCap = append(inCap, r.Gauge("stream_task_lag", L("task", string(rune('a'+i)))))
	}
	over1 := r.Gauge("stream_task_lag", L("task", "overflow-1"))
	over2 := r.Gauge("stream_task_lag", L("task", "overflow-2"))
	if over1 != over2 {
		t.Fatal("spilled label-sets did not share the overflow bucket")
	}
	for _, g := range inCap {
		if g == over1 {
			t.Fatal("in-cap gauge aliased to the overflow bucket")
		}
	}
	// The cached redirect must return the same bucket on re-lookup.
	if r.Gauge("stream_task_lag", L("task", "overflow-1")) != over1 {
		t.Fatal("redirect cache broken")
	}
	s := r.Snapshot()
	if _, ok := s.Gauges["stream_task_lag{label=_overflow}"]; !ok {
		t.Fatalf("no overflow bucket in snapshot: %v", s.Gauges)
	}
	if _, ok := s.Gauges["stream_task_lag{task=overflow-1}"]; ok {
		t.Fatal("spilled label-set leaked into the snapshot")
	}
	if got := s.Counter("obs_label_overflow_total{family=stream_task_lag}"); got != 2 {
		t.Fatalf("obs_label_overflow_total = %d, want 2", got)
	}
	// Unlabeled instruments never spill, and other kinds guard too.
	if r.Counter("stream_task_lag_unrelated_total") == nil {
		t.Fatal("unlabeled counter nil")
	}
	r.SetLabelCap(1)
	c1 := r.Counter("stream_evts_total", L("task", "a"))
	c2 := r.Counter("stream_evts_total", L("task", "b"))
	c3 := r.Counter("stream_evts_total", L("task", "c"))
	if c1 == c2 || c2 != c3 {
		t.Fatal("counter spill wrong")
	}
	h1 := r.Histogram("stream_lat_ns", L("task", "a"))
	h2 := r.Histogram("stream_lat_ns", L("task", "b"))
	h3 := r.Histogram("stream_lat_ns", L("task", "c"))
	if h1 == h2 || h2 != h3 {
		t.Fatal("histogram spill wrong")
	}
}

func TestCompletenessRollupInSnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Snapshot()
	if _, ok := s.Gauges["completeness_lag_ms"]; ok {
		t.Fatal("rollup present with no task gauges")
	}
	r.Gauge("completeness_task_lag_ms", L("task", "events-0")).Set(120)
	r.Gauge("completeness_task_lag_ms", L("task", "events-1")).Set(45)
	s = r.Snapshot()
	if got := s.Gauges["completeness_lag_ms"]; got != 120 {
		t.Fatalf("completeness_lag_ms = %d, want max task lag 120", got)
	}
}
