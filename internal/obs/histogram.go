package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Unit describes what a histogram's values measure, for rendering.
type Unit uint8

const (
	// UnitNanoseconds marks a latency histogram fed time.Duration values.
	UnitNanoseconds Unit = iota
	// UnitCount marks a dimensionless size histogram (records, bytes).
	UnitCount
)

// Histogram bucketing is log-linear (HdrHistogram style): each power of
// two is split into 2^histSubBits linear sub-buckets, bounding relative
// error at 1/2^histSubBits (6.25%) while keeping the bucket array small
// and fully atomic — Observe is two atomic adds plus a handful of
// compare-and-swaps only when min/max move.
const (
	histSubBits  = 4
	histSubCount = 1 << histSubBits // 16
	// 64-bit values span 60 exponent groups past the first linear run.
	histBuckets = histSubCount * (64 - histSubBits + 1)
)

// Histogram is a lock-free fixed-bucket histogram of int64 samples.
// Negative samples are clamped to zero. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // stored as value+1; 0 means "no samples yet"
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
	unit    Unit
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // >= histSubBits
	shift := uint(exp - histSubBits)
	return (exp-histSubBits+1)*histSubCount + int((u>>shift)&(histSubCount-1))
}

// bucketUpper returns the largest value mapping to bucket idx, the
// representative reported for quantiles (so quantile estimates never
// undershoot the true value by more than one bucket width).
func bucketUpper(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := idx/histSubCount + histSubBits - 1
	sub := idx % histSubCount
	shift := uint(exp - histSubBits)
	return int64((uint64(sub)+histSubCount+1)<<shift) - 1
}

// Observe records one sample.
//
//kslint:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		m := h.min.Load()
		if m != 0 && m <= v+1 {
			break
		}
		if h.min.CompareAndSwap(m, v+1) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m {
			break
		}
		if h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Mean returns the exact mean of recorded samples (0 if empty).
func (h *Histogram) Mean() int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return h.sum.Load() / n
}

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return m - 1
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an estimate of the p-th percentile (p in [0,100]),
// accurate to one log-linear bucket (<= 6.25% relative error) and clamped
// to the observed [Min, Max], which makes p=0 and p=100 exact.
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	v := h.Max()
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= rank {
			v = bucketUpper(i)
			break
		}
	}
	if min := h.Min(); v < min {
		v = min
	}
	if max := h.Max(); v > max {
		v = max
	}
	return v
}

// Unit reports what the samples measure.
func (h *Histogram) Unit() Unit {
	if h == nil {
		return UnitCount
	}
	return h.unit
}
