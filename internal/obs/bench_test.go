package obs

import (
	"testing"
	"time"
)

// The disabled path — a nil registry's instruments — must cost almost
// nothing, so instrumentation can stay unconditionally in hot paths.

func BenchmarkObsDisabledCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("off")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterInc(b *testing.B) {
	c := NewRegistry().Counter("on")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("on")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("lat")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 37)
	}
}

func BenchmarkObsRegistryLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("rpc", L("kind", "Produce"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("rpc", L("kind", "Produce"))
	}
}

func BenchmarkObsDisabledFlightRecord(b *testing.B) {
	var f *FlightRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record("span", "commit", "", int64(i), 0)
	}
}

func BenchmarkObsFlightRecord(b *testing.B) {
	f := NewFlightRecorder(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record("span", "commit", "", int64(i), 0)
	}
}

// TestFlightRecorderDisabledOverheadGuard pins the disabled recorder to
// a ns-scale, alloc-free no-op: with no recorder attached, the Record
// call must cost only its nil check.
func TestFlightRecorderDisabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	var f *FlightRecorder
	if allocs := testing.AllocsPerRun(1000, func() {
		f.Record("span", "commit", "", 1, 0)
	}); allocs != 0 {
		t.Fatalf("disabled flight recorder allocates %.1f per op, want 0", allocs)
	}
	const iters = 5_000_000
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f.Record("span", "commit", "", int64(i), 0)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	perOp := best / iters
	t.Logf("disabled flight record: %v/op", perOp)
	// Hard gate 1µs for CI noise; the design point is ~1ns (a nil check).
	if perOp > time.Microsecond {
		t.Fatalf("disabled flight recorder Record costs %v/op, want ns-scale", perOp)
	}
}

// TestCounterOpOverheadGuard is the CI-friendly form of the <50ns/op
// claim: it measures amortized cost over a large loop and fails only on
// gross regressions (a mutex, an allocation, a map hit per op), with
// slack for noisy shared runners.
func TestCounterOpOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	const iters = 5_000_000
	measure := func(f func()) time.Duration {
		best := time.Duration(1 << 62)
		for attempt := 0; attempt < 3; attempt++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				f()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best / iters
	}
	var nilReg *Registry
	off := nilReg.Counter("off")
	perOpOff := measure(off.Inc)
	on := NewRegistry().Counter("on")
	perOpOn := measure(on.Inc)
	t.Logf("disabled counter: %v/op, live counter: %v/op", perOpOff, perOpOn)
	// The design target is <50ns; the hard gate is 1µs so a loaded CI
	// machine cannot flake, while a lock or allocation still trips it.
	if perOpOff > time.Microsecond {
		t.Fatalf("disabled counter Inc costs %v/op, want ~<50ns", perOpOff)
	}
	if perOpOn > time.Microsecond {
		t.Fatalf("live counter Inc costs %v/op, want ~<50ns", perOpOn)
	}
}
