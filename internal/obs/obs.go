// Package obs is the repo's dependency-free observability layer: a
// metrics registry of atomic counters, gauges, and lock-cheap fixed-bucket
// latency histograms, organized into labeled families, plus a lightweight
// span/trace facility that attributes an end-to-end operation (a Streams
// commit) to its constituent broker round-trips.
//
// The paper's figures are explained entirely by counts and cadences —
// control-record RPCs per partition, coordinator round-trips per commit,
// restore progress after failure — so every layer of the system reports
// into one registry (owned by the transport Network, shared by the whole
// embedded cluster) and experiments print a Snapshot of it next to
// throughput numbers.
//
// All types are safe for concurrent use, and every operation is nil-safe:
// a nil *Registry (observability disabled) hands out nil instruments whose
// methods are no-ops, so instrumented code needs no guards.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric family.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// fullName renders "name{k1=v1,k2=v2}" with labels sorted by key, the
// canonical identity of a metric inside the registry and its snapshots.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// BaseName strips the label block off a full metric name.
func BaseName(full string) string {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i]
	}
	return full
}

// LabelValue extracts one label's value from a full metric name ("" if
// absent).
func LabelValue(full, key string) string {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return ""
	}
	for _, kv := range strings.Split(strings.TrimSuffix(full[i+1:], "}"), ",") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return v
		}
	}
	return ""
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//kslint:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
//
//kslint:hotpath
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (watermarks, lag, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
//
//kslint:hotpath
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds metric families by canonical name. Instruments are
// created on first use and live forever (no eviction): the families the
// system emits — per-RPC-kind, per-topic-partition, per-stream-task — are
// bounded by the workload's shape. As a backstop against a family whose
// labels are NOT bounded (per-partition watermarks at thousands of
// partitions, a bug interpolating a value into a label), each family is
// capped at DefaultLabelCap distinct label-sets; further label-sets spill
// into a single {label=_overflow} bucket and count an
// obs_label_overflow_total{family=...} overflow counter.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// Cardinality guard state (all under mu). familySets counts distinct
	// label-sets created per family; the alias maps cache spilled full
	// name → overflow instrument so hot paths keep their read-lock fast
	// path after a spill.
	labelCap     int
	familySets   map[string]int
	counterAlias map[string]*Counter
	gaugeAlias   map[string]*Gauge
	histAlias    map[string]*Histogram

	flight atomic.Pointer[FlightRecorder]

	traceMu sync.Mutex
	traces  []*Trace // ring of recently finished traces
	traceAt int
}

// recentTraceCap bounds the kept-trace ring.
const recentTraceCap = 16

// DefaultLabelCap is the per-family distinct-label-set cap. Real
// workloads sit far below it; hitting it means a label is carrying an
// unbounded value.
const DefaultLabelCap = 1024

// aliasCap bounds the spill-redirect cache itself (the guard must not
// become its own cardinality leak); past it, spilled lookups still work
// but take the slow path every call.
const aliasCap = 4 * DefaultLabelCap

// overflowLabelValue marks the bucket absorbing spilled label-sets.
const overflowLabelValue = "_overflow"

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		hists:        make(map[string]*Histogram),
		labelCap:     DefaultLabelCap,
		familySets:   make(map[string]int),
		counterAlias: make(map[string]*Counter),
		gaugeAlias:   make(map[string]*Gauge),
		histAlias:    make(map[string]*Histogram),
	}
}

// SetLabelCap overrides the per-family distinct-label-set cap (tests,
// tools). Instruments already created keep their identity; only future
// label-sets are affected.
func (r *Registry) SetLabelCap(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.labelCap = n
	r.mu.Unlock()
}

// spill decides, under r.mu, whether a brand-new label-set for family
// name must divert to the overflow bucket, counting the diversion when
// so. Unlabeled instruments never spill (one per family by definition).
func (r *Registry) spill(name string, labels []Label) bool {
	if len(labels) == 0 {
		return false
	}
	if r.familySets[name] < r.labelCap {
		r.familySets[name]++
		return false
	}
	// Created via direct map access: Registry.Counter would deadlock on
	// mu, and the guard's own counter must never itself spill.
	oname := fullName("obs_label_overflow_total", []Label{L("family", name)})
	oc := r.counters[oname]
	if oc == nil {
		oc = &Counter{}
		r.counters[oname] = oc
	}
	oc.Inc()
	return true
}

// overflowName is the canonical identity of family name's spill bucket.
func overflowName(name string) string {
	return fullName(name, []Label{L("label", overflowLabelValue)})
}

// Counter returns (creating if needed) the counter for name+labels. Hot
// paths should hold on to the returned handle: the lookup takes a read
// lock, while Counter.Add is a bare atomic op.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	full := fullName(name, labels)
	r.mu.RLock()
	c := r.counters[full]
	if c == nil {
		c = r.counterAlias[full]
	}
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[full]; c != nil {
		return c
	}
	if c = r.counterAlias[full]; c != nil {
		return c
	}
	if r.spill(name, labels) {
		oname := overflowName(name)
		c = r.counters[oname]
		if c == nil {
			c = &Counter{}
			r.counters[oname] = c
		}
		if len(r.counterAlias) < aliasCap {
			r.counterAlias[full] = c
		}
		return c
	}
	c = &Counter{}
	r.counters[full] = c
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	full := fullName(name, labels)
	r.mu.RLock()
	g := r.gauges[full]
	if g == nil {
		g = r.gaugeAlias[full]
	}
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[full]; g != nil {
		return g
	}
	if g = r.gaugeAlias[full]; g != nil {
		return g
	}
	if r.spill(name, labels) {
		oname := overflowName(name)
		g = r.gauges[oname]
		if g == nil {
			g = &Gauge{}
			r.gauges[oname] = g
		}
		if len(r.gaugeAlias) < aliasCap {
			r.gaugeAlias[full] = g
		}
		return g
	}
	g = &Gauge{}
	r.gauges[full] = g
	return g
}

// Histogram returns (creating if needed) a latency histogram (nanosecond
// unit) for name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.histogram(name, UnitNanoseconds, labels)
}

// SizeHistogram returns (creating if needed) a histogram of dimensionless
// sizes (batch records, bytes) for name+labels.
func (r *Registry) SizeHistogram(name string, labels ...Label) *Histogram {
	return r.histogram(name, UnitCount, labels)
}

func (r *Registry) histogram(name string, unit Unit, labels []Label) *Histogram {
	if r == nil {
		return nil
	}
	full := fullName(name, labels)
	r.mu.RLock()
	h := r.hists[full]
	if h == nil {
		h = r.histAlias[full]
	}
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[full]; h != nil {
		return h
	}
	if h = r.histAlias[full]; h != nil {
		return h
	}
	if r.spill(name, labels) {
		oname := overflowName(name)
		h = r.hists[oname]
		if h == nil {
			h = &Histogram{unit: unit}
			r.hists[oname] = h
		}
		if len(r.histAlias) < aliasCap {
			r.histAlias[full] = h
		}
		return h
	}
	h = &Histogram{unit: unit}
	r.hists[full] = h
	return h
}

// SetFlightRecorder attaches a flight recorder to the registry: finished
// traces recorded via RecordTrace are fed into its ring, and its
// flightrec_* counters are wired up. A nil recorder detaches.
func (r *Registry) SetFlightRecorder(f *FlightRecorder) {
	if r == nil {
		return
	}
	if f != nil {
		f.events = r.Counter("flightrec_events_total")
		f.overwrites = r.Counter("flightrec_overwrites_total")
		f.dumps = r.Counter("flightrec_dumps_total")
	}
	r.flight.Store(f)
}

// FlightRecorder returns the attached recorder (nil when none).
func (r *Registry) FlightRecorder() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight.Load()
}

// RecordTrace keeps a finished trace in the recent-trace ring for
// snapshot-time attribution dumps.
func (r *Registry) RecordTrace(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.flight.Load().recordTrace(t)
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if len(r.traces) < recentTraceCap {
		r.traces = append(r.traces, t)
		return
	}
	r.traces[r.traceAt%recentTraceCap] = t
	r.traceAt++
}

// RecentTraces returns the kept traces, oldest first.
func (r *Registry) RecentTraces() []*Trace {
	if r == nil {
		return nil
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	out := make([]*Trace, 0, len(r.traces))
	if len(r.traces) == recentTraceCap {
		at := r.traceAt % recentTraceCap
		out = append(out, r.traces[at:]...)
		out = append(out, r.traces[:at]...)
		return out
	}
	return append(out, r.traces...)
}
