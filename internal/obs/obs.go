// Package obs is the repo's dependency-free observability layer: a
// metrics registry of atomic counters, gauges, and lock-cheap fixed-bucket
// latency histograms, organized into labeled families, plus a lightweight
// span/trace facility that attributes an end-to-end operation (a Streams
// commit) to its constituent broker round-trips.
//
// The paper's figures are explained entirely by counts and cadences —
// control-record RPCs per partition, coordinator round-trips per commit,
// restore progress after failure — so every layer of the system reports
// into one registry (owned by the transport Network, shared by the whole
// embedded cluster) and experiments print a Snapshot of it next to
// throughput numbers.
//
// All types are safe for concurrent use, and every operation is nil-safe:
// a nil *Registry (observability disabled) hands out nil instruments whose
// methods are no-ops, so instrumented code needs no guards.
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension of a metric family.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// fullName renders "name{k1=v1,k2=v2}" with labels sorted by key, the
// canonical identity of a metric inside the registry and its snapshots.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// BaseName strips the label block off a full metric name.
func BaseName(full string) string {
	if i := strings.IndexByte(full, '{'); i >= 0 {
		return full[:i]
	}
	return full
}

// LabelValue extracts one label's value from a full metric name ("" if
// absent).
func LabelValue(full, key string) string {
	i := strings.IndexByte(full, '{')
	if i < 0 {
		return ""
	}
	for _, kv := range strings.Split(strings.TrimSuffix(full[i+1:], "}"), ",") {
		if k, v, ok := strings.Cut(kv, "="); ok && k == key {
			return v
		}
	}
	return ""
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value (watermarks, lag, queue depth).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds metric families by canonical name. Instruments are
// created on first use and live forever (no eviction): the families the
// system emits — per-RPC-kind, per-topic-partition, per-stream-task — are
// bounded by the workload's shape.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	traceMu sync.Mutex
	traces  []*Trace // ring of recently finished traces
	traceAt int
}

// recentTraceCap bounds the kept-trace ring.
const recentTraceCap = 16

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the counter for name+labels. Hot
// paths should hold on to the returned handle: the lookup takes a read
// lock, while Counter.Add is a bare atomic op.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	full := fullName(name, labels)
	r.mu.RLock()
	c := r.counters[full]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[full]; c == nil {
		c = &Counter{}
		r.counters[full] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	full := fullName(name, labels)
	r.mu.RLock()
	g := r.gauges[full]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[full]; g == nil {
		g = &Gauge{}
		r.gauges[full] = g
	}
	return g
}

// Histogram returns (creating if needed) a latency histogram (nanosecond
// unit) for name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.histogram(name, UnitNanoseconds, labels)
}

// SizeHistogram returns (creating if needed) a histogram of dimensionless
// sizes (batch records, bytes) for name+labels.
func (r *Registry) SizeHistogram(name string, labels ...Label) *Histogram {
	return r.histogram(name, UnitCount, labels)
}

func (r *Registry) histogram(name string, unit Unit, labels []Label) *Histogram {
	if r == nil {
		return nil
	}
	full := fullName(name, labels)
	r.mu.RLock()
	h := r.hists[full]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[full]; h == nil {
		h = &Histogram{unit: unit}
		r.hists[full] = h
	}
	return h
}

// RecordTrace keeps a finished trace in the recent-trace ring for
// snapshot-time attribution dumps.
func (r *Registry) RecordTrace(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if len(r.traces) < recentTraceCap {
		r.traces = append(r.traces, t)
		return
	}
	r.traces[r.traceAt%recentTraceCap] = t
	r.traceAt++
}

// RecentTraces returns the kept traces, oldest first.
func (r *Registry) RecentTraces() []*Trace {
	if r == nil {
		return nil
	}
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	out := make([]*Trace, 0, len(r.traces))
	if len(r.traces) == recentTraceCap {
		at := r.traceAt % recentTraceCap
		out = append(out, r.traces[at:]...)
		out = append(out, r.traces[:at]...)
		return out
	}
	return append(out, r.traces...)
}
