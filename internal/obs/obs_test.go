package obs

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFullNameSortsLabels(t *testing.T) {
	got := fullName("rpc", []Label{L("kind", "Produce"), L("broker", "1")})
	want := "rpc{broker=1,kind=Produce}"
	if got != want {
		t.Fatalf("fullName = %q, want %q", got, want)
	}
	if fullName("rpc", nil) != "rpc" {
		t.Fatalf("unlabeled name mangled")
	}
}

func TestBaseNameAndLabelValue(t *testing.T) {
	full := "rpc{broker=1,kind=Produce}"
	if BaseName(full) != "rpc" {
		t.Fatalf("BaseName = %q", BaseName(full))
	}
	if v := LabelValue(full, "kind"); v != "Produce" {
		t.Fatalf("LabelValue(kind) = %q", v)
	}
	if v := LabelValue(full, "absent"); v != "" {
		t.Fatalf("LabelValue(absent) = %q", v)
	}
	if v := LabelValue("rpc", "kind"); v != "" {
		t.Fatalf("LabelValue on unlabeled = %q", v)
	}
}

func TestRegistryReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", L("k", "v"))
	b := r.Counter("c", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if r.Counter("c", L("k", "w")) == a {
		t.Fatal("distinct labels shared a counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name returned distinct histograms")
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter recorded")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge recorded")
	}
	h := r.Histogram("h")
	h.Observe(42)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Quantile(50) != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram recorded")
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *Trace
	tr.StartSpan("x")()
	tr.Finish()
	r.RecordTrace(tr)
	if r.RecentTraces() != nil {
		t.Fatal("nil registry kept traces")
	}
}

func TestConcurrentIncObserveSnapshot(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			c := r.Counter("ops", L("g", "shared"))
			h := r.Histogram("lat", L("g", "shared"))
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(rng.Int63n(1_000_000))
				r.Gauge("depth").Set(int64(j))
				if j%100 == 0 {
					// Snapshots race with writers by design; they must
					// stay internally sane, never panic.
					s := r.Snapshot()
					if s.Counter("ops{g=shared}") < 0 {
						t.Error("negative counter in snapshot")
					}
				}
			}
		}(int64(i))
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("ops{g=shared}"); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	h := s.Histograms["lat{g=shared}"]
	if h.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	if h.P50 > h.P95 || h.P95 > h.P99 || h.P99 > h.Max {
		t.Fatalf("quantiles not monotone: %+v", h)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Uniform 1..100ms in 1ms steps: quantiles are known exactly, and the
	// log-linear buckets bound relative error at 1/16.
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i) * int64(time.Millisecond))
	}
	checks := []struct {
		p    float64
		want int64
	}{
		{0, int64(1 * time.Millisecond)},
		{50, int64(50 * time.Millisecond)},
		{95, int64(95 * time.Millisecond)},
		{99, int64(99 * time.Millisecond)},
		{100, int64(100 * time.Millisecond)},
	}
	for _, c := range checks {
		got := h.Quantile(c.p)
		lo := c.want - c.want/16
		hi := c.want + c.want/16
		if got < lo || got > hi {
			t.Errorf("p%v = %v, want within 6.25%% of %v", c.p, got, c.want)
		}
	}
	if h.Min() != int64(time.Millisecond) {
		t.Errorf("Min = %d", h.Min())
	}
	if h.Max() != int64(100*time.Millisecond) {
		t.Errorf("Max = %d", h.Max())
	}
	// Mean is tracked exactly, not from buckets.
	if got := h.Mean(); got != int64(50500*time.Microsecond) {
		t.Errorf("Mean = %d, want %d", got, int64(50500*time.Microsecond))
	}
}

func TestHistogramPointMass(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 1000; i++ {
		h.Observe(12345)
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Quantile(p); got != 12345 {
			t.Fatalf("p%v of point mass = %d", p, got)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(50) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Observe(-5) // clamped to 0
	h.Observe(0)
	if h.Count() != 2 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("zero-clamp: count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	// Bucket mapping must be self-consistent across the full range.
	for _, v := range []int64{0, 1, 15, 16, 17, 255, 256, 1 << 20, 1<<62 + 12345} {
		idx := bucketIndex(v)
		if up := bucketUpper(idx); up < v {
			t.Errorf("bucketUpper(%d)=%d < value %d", idx, up, v)
		}
		if idx > 0 {
			if low := bucketUpper(idx - 1); low >= v {
				t.Errorf("value %d should be above bucket %d upper %d", v, idx-1, low)
			}
		}
	}
}

func TestSnapshotTextStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total", L("kind", "Fetch")).Add(1)
	r.Gauge("hw", L("tp", "t-0")).Set(9)
	r.Histogram("lat").Observe(int64(3 * time.Millisecond))
	text := r.Snapshot().Text()
	if text != r.Snapshot().Text() {
		t.Fatal("snapshot text not stable across identical snapshots")
	}
	for _, want := range []string{
		"counter a_total{kind=Fetch} 1",
		"counter b_total 2",
		"gauge   hw{tp=t-0} 9",
		"hist    lat count=1",
		"p50=3.00ms",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	// Counters sort before their lexicographic successors: stable ordering.
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Error("counters not sorted")
	}
}

func TestSumCounter(t *testing.T) {
	r := NewRegistry()
	r.Counter("rpc_total", L("kind", "Produce")).Add(3)
	r.Counter("rpc_total", L("kind", "Fetch")).Add(4)
	r.Counter("rpc_other").Add(100)
	if got := r.Snapshot().SumCounter("rpc_total"); got != 7 {
		t.Fatalf("SumCounter = %d, want 7", got)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("commit")
	end := tr.StartSpan("EndTxn")
	time.Sleep(time.Millisecond)
	end()
	tr.StartSpan("WriteTxnMarkers")()
	tr.Finish()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "EndTxn" || spans[0].Dur < time.Millisecond {
		t.Fatalf("span[0] = %+v", spans[0])
	}
	if tr.Dur() < spans[0].Dur {
		t.Fatal("trace shorter than its span")
	}
	str := tr.String()
	if !strings.Contains(str, "commit") || !strings.Contains(str, "EndTxn") {
		t.Fatalf("String() = %q", str)
	}
	d := tr.Dur()
	time.Sleep(2 * time.Millisecond)
	if tr.Dur() != d {
		t.Fatal("finished trace duration not frozen")
	}
}

func TestRecentTracesRing(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < recentTraceCap+5; i++ {
		tr := NewTrace("op")
		tr.Finish()
		r.RecordTrace(tr)
	}
	if got := len(r.RecentTraces()); got != recentTraceCap {
		t.Fatalf("ring kept %d traces, want %d", got, recentTraceCap)
	}
}
