package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// FlightEvent is one entry in the flight recorder's ring: a finished
// span, an injected fault, an invariant violation, or any other
// operator-relevant moment worth keeping for a post-mortem.
type FlightEvent struct {
	// Seq is the global record order (dense, starts at 0). Ring eviction
	// drops the lowest sequences first.
	Seq uint64 `json:"seq"`
	// TS is the event time in nanoseconds on whatever clock the caller
	// records with (virtual nanoseconds under simulation, wall otherwise).
	TS int64 `json:"ts_ns"`
	// Kind classifies the event: "span", "trace", "fault", "violation",
	// "note".
	Kind string `json:"kind"`
	// Name is the short identity (span name, fault kind, invariant tag).
	Name string `json:"name"`
	// Detail carries free-form context (schedule event text, violation
	// message).
	Detail string `json:"detail,omitempty"`
	// Dur is the event duration in nanoseconds (spans; 0 otherwise).
	Dur int64 `json:"dur_ns,omitempty"`
}

// FlightRecorder is a fixed-size lock-free ring of recent FlightEvents:
// the black box that turns a red nightly into a self-contained
// post-mortem artifact. Record publishes each event with a single atomic
// pointer store, so writers on hot-ish paths never contend on a lock;
// the ring simply overwrites the oldest slot once full. A nil
// *FlightRecorder (recording disabled) makes every method a no-op, the
// same contract as the registry's instruments.
type FlightRecorder struct {
	mask  uint64
	seq   atomic.Uint64
	slots []atomic.Pointer[FlightEvent]

	// Wired by Registry.SetFlightRecorder; nil-safe when unwired.
	events     *Counter // flightrec_events_total
	overwrites *Counter // flightrec_overwrites_total
	dumps      *Counter // flightrec_dumps_total

	dumpMu sync.Mutex
}

// NewFlightRecorder returns a recorder keeping the last capacity events
// (rounded up to a power of two, minimum 64).
func NewFlightRecorder(capacity int) *FlightRecorder {
	n := 64
	for n < capacity {
		n <<= 1
	}
	return &FlightRecorder{mask: uint64(n - 1), slots: make([]atomic.Pointer[FlightEvent], n)}
}

// Record appends one event. Safe for concurrent use; the only cost on
// the disabled (nil) path is the receiver check.
func (f *FlightRecorder) Record(kind, name, detail string, ts, dur int64) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1) - 1
	ev := &FlightEvent{Seq: seq, TS: ts, Kind: kind, Name: name, Detail: detail, Dur: dur}
	f.slots[seq&f.mask].Store(ev)
	f.events.Inc()
	if seq > f.mask {
		f.overwrites.Inc()
	}
}

// Len returns how many events have ever been recorded (not just those
// still resident in the ring).
func (f *FlightRecorder) Len() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Events returns the resident events in sequence order (oldest first).
// Concurrent writers may be mid-overwrite; whatever pointer each slot
// holds at read time is returned, so the result is a consistent set of
// whole events even if not a perfectly contiguous sequence window.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if ev := f.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// flightDump is the on-disk artifact layout: one JSON object, so a
// post-mortem is a single parseable file.
type flightDump struct {
	Version  int           `json:"version"`
	Reason   string        `json:"reason"`
	Recorded uint64        `json:"recorded_total"`
	Resident int           `json:"resident"`
	Events   []FlightEvent `json:"events"`
}

// flightDumpVersion is bumped on incompatible artifact layout changes.
const flightDumpVersion = 1

// WriteJSON renders the artifact to w.
func (f *FlightRecorder) WriteJSON(w io.Writer, reason string) error {
	if f == nil {
		return nil
	}
	evs := f.Events()
	d := flightDump{
		Version:  flightDumpVersion,
		Reason:   reason,
		Recorded: f.Len(),
		Resident: len(evs),
		Events:   evs,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// DumpFile writes the artifact to path (creating or truncating it) and
// counts the dump. Dumps are serialized so two triggers (an invariant
// violation racing a leak guard) cannot interleave one file.
func (f *FlightRecorder) DumpFile(path, reason string) error {
	if f == nil {
		return nil
	}
	f.dumpMu.Lock()
	defer f.dumpMu.Unlock()
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := f.WriteJSON(file, reason)
	cerr := file.Close()
	if werr != nil {
		return werr
	}
	if cerr != nil {
		return cerr
	}
	f.dumps.Inc()
	return nil
}

// ParseFlightDump reads an artifact back (tests, tooling).
func ParseFlightDump(r io.Reader) (reason string, events []FlightEvent, err error) {
	var d flightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return "", nil, err
	}
	if d.Version != flightDumpVersion {
		return "", nil, fmt.Errorf("obs: flight dump version %d, want %d", d.Version, flightDumpVersion)
	}
	return d.Reason, d.Events, nil
}

// recordTrace feeds a finished trace into the ring: one "trace" event
// plus one "span" event per recorded span.
func (f *FlightRecorder) recordTrace(t *Trace) {
	if f == nil || t == nil {
		return
	}
	f.Record("trace", t.Name, "", t.Start.UnixNano(), int64(t.Dur()))
	for _, s := range t.Spans() {
		f.Record("span", t.Name+"/"+s.Name, "", s.Start.UnixNano(), int64(s.Dur))
	}
}

// --- global recorder ---

// globalFlight is the process-wide recorder teardown hooks dump when a
// harness-level failure fires (harness.LeakGuard, sim invariant checks).
// It is global because those hooks have no path to the run's registry:
// a leaked goroutine is detected after the cluster under test is gone.
type globalFlight struct {
	f    *FlightRecorder
	path string
}

var globalFlightRec atomic.Pointer[globalFlight]

// SetGlobalFlightRecorder installs (or, with a nil recorder, clears) the
// process-wide flight recorder and the file its automatic dumps go to.
func SetGlobalFlightRecorder(f *FlightRecorder, dumpPath string) {
	if f == nil {
		globalFlightRec.Store(nil)
		return
	}
	globalFlightRec.Store(&globalFlight{f: f, path: dumpPath})
}

// GlobalFlightRecorder returns the installed recorder (nil when none),
// so any layer can record without plumbing.
func GlobalFlightRecorder() *FlightRecorder {
	if g := globalFlightRec.Load(); g != nil {
		return g.f
	}
	return nil
}

// DumpGlobalFlightRecorder writes the installed recorder's ring to its
// configured path. It reports the path and whether a dump happened (no
// recorder installed, or a write error, yields false).
func DumpGlobalFlightRecorder(reason string) (string, bool) {
	g := globalFlightRec.Load()
	if g == nil {
		return "", false
	}
	if err := g.f.DumpFile(g.path, reason); err != nil {
		return "", false
	}
	return g.path, true
}
