package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// chanOwn enforces close ownership on channels that outlive a function:
// package-level channels and struct-field channels (DESIGN.md §12).
//
// Two checks:
//
//  1. Single closer (module-wide census): each channel class is closed
//     by exactly one function. Two closers is how shutdown races start —
//     the select-guarded `close` idiom is not atomic, so two paths that
//     both "close if not closed" can still panic; ownership means one
//     function (often a sync.Once body) performs every close and the
//     rest signal through it. Closes through a local alias
//     (stop := c.hbStop; close(stop)) count against the field.
//  2. No send after close (per function, path-sensitive): on any path
//     where a channel was closed — locals included — a later send or
//     second close on that path is a guaranteed panic. The walk forks at
//     branches and joins by union, excluding terminating branches, the
//     same gen/kill discipline as poollife; calls are checked against
//     send summaries propagated over the call graph, so a close followed
//     by a call into a helper that sends on the same class is caught.
//
// Deferred closes are exempt from check 2's ordering (they run at
// return, after every send in the body), but count as closers in the
// census.
type chanOwn struct {
	module string
	fset   *token.FileSet
	graph  *CallGraph
}

func newChanOwn(module string) *chanOwn { return &chanOwn{module: module} }

func (*chanOwn) Name() string { return "chanown" }
func (*chanOwn) Doc() string {
	return "each long-lived channel has exactly one closing function, and no send or second close is reachable after a close on any path"
}

func (c *chanOwn) Run(p *Pass) {
	c.fset = p.Fset
	c.graph = p.Graph
}

// closeSite records one close of a channel class.
type closeSite struct {
	fn  *types.Func
	pos token.Pos
}

func (c *chanOwn) Finalize(report func(Diagnostic)) {
	if c.graph == nil {
		return
	}
	sends := c.sendSummaries()

	closers := make(map[string][]closeSite)
	var found []Diagnostic
	for _, fn := range c.graph.Funcs() {
		node := c.graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		info := node.Pkg.Info
		aliases := chanAliases(info, node.Decl.Body)
		// Census: every close in the body (func literals included — the
		// literal's close still belongs to this function's code).
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, ok := isCloseCall(info, call)
			if !ok {
				return true
			}
			if cls := chanClassOf(info, arg, aliases); cls != "" {
				closers[cls] = append(closers[cls], closeSite{fn: fn, pos: call.Pos()})
			}
			return true
		})
		// Path check: close→send / close→close ordering inside the body.
		w := &coWalker{info: info, fset: c.fset, aliases: aliases, sends: sends, graph: c.graph}
		w.block(node.Decl.Body, make(coState))
		found = append(found, w.found...)
	}

	// Census verdicts: more than one distinct closing function.
	classes := make([]string, 0, len(closers))
	for cls := range closers {
		classes = append(classes, cls)
	}
	sort.Strings(classes)
	for _, cls := range classes {
		sites := closers[cls]
		sort.Slice(sites, func(i, j int) bool {
			return c.fset.Position(sites[i].pos).String() < c.fset.Position(sites[j].pos).String()
		})
		var fns []string
		seen := make(map[*types.Func]bool)
		for _, s := range sites {
			if !seen[s.fn] {
				seen[s.fn] = true
				fns = append(fns, c.graph.displayName(s.fn))
			}
		}
		if len(fns) <= 1 {
			continue
		}
		found = append(found, Diagnostic{
			Pos:  c.fset.Position(sites[0].pos),
			Rule: "chanown",
			Message: "channel " + strings.TrimPrefix(cls, c.module+"/") + " is closed by " +
				strconv.Itoa(len(fns)) + " functions (" + strings.Join(fns, ", ") +
				"); close ownership requires exactly one — route the others through a single closing helper",
		})
	}

	sortDiags(found)
	for _, d := range found {
		report(d)
	}
}

// sendSummaries computes, to a fixpoint over the call graph, the channel
// classes each module function may send on (directly or via callees).
func (c *chanOwn) sendSummaries() map[*types.Func]map[string]bool {
	sends := make(map[*types.Func]map[string]bool)
	mark := func(fn *types.Func, cls string) bool {
		m := sends[fn]
		if m == nil {
			m = make(map[string]bool)
			sends[fn] = m
		}
		if m[cls] {
			return false
		}
		m[cls] = true
		return true
	}
	// Seed: direct sends on field / package-level channels.
	for _, fn := range c.graph.Funcs() {
		node := c.graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		info := node.Pkg.Info
		aliases := chanAliases(info, node.Decl.Body)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			s, ok := n.(*ast.SendStmt)
			if !ok {
				return true
			}
			if cls := chanClassOf(info, s.Chan, aliases); cls != "" {
				mark(fn, cls)
			}
			return true
		})
	}
	// Propagate caller ← callee until stable.
	for changed := true; changed; {
		changed = false
		for _, fn := range c.graph.Funcs() {
			node := c.graph.Node(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Edges {
				for cls := range sends[e.Callee.Origin()] {
					if mark(fn, cls) {
						changed = true
					}
				}
			}
		}
	}
	return sends
}

// coKey identifies a channel inside the path walk: a class string for
// field / package-level channels, or the local object.
type coKey struct {
	obj types.Object
	cls string
}

func (k coKey) String() string {
	if k.cls != "" {
		return k.cls
	}
	return k.obj.Name()
}

// coState maps closed channels to their close position on this path.
type coState map[coKey]token.Pos

func (s coState) clone() coState {
	out := make(coState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// coWalker is the path-sensitive close/send walker. It mirrors the
// poollife walk shape: statements thread state, branches fork and join
// by union, terminating branches drop out of the join.
type coWalker struct {
	info    *types.Info
	fset    *token.FileSet
	aliases map[types.Object]string
	sends   map[*types.Func]map[string]bool
	graph   *CallGraph
	found   []Diagnostic
	seen    map[token.Pos]bool
}

func (w *coWalker) keyOf(e ast.Expr) (coKey, bool) {
	if cls := chanClassOf(w.info, e, w.aliases); cls != "" {
		return coKey{cls: cls}, true
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		obj := w.info.Uses[id]
		if obj == nil {
			obj = w.info.Defs[id]
		}
		if obj != nil && isChanType(obj.Type()) {
			return coKey{obj: obj}, true
		}
	}
	return coKey{}, false
}

func (w *coWalker) report(pos token.Pos, msg string) {
	if w.seen == nil {
		w.seen = make(map[token.Pos]bool)
	}
	if w.seen[pos] {
		return
	}
	w.seen[pos] = true
	w.found = append(w.found, Diagnostic{Pos: w.fset.Position(pos), Rule: "chanown", Message: msg})
}

// block walks stmts with state, returning the state at fall-through.
// A nil return means every path out of the block terminates.
func (w *coWalker) block(b *ast.BlockStmt, st coState) coState {
	if b == nil {
		return st
	}
	return w.stmts(b.List, st)
}

func (w *coWalker) stmts(list []ast.Stmt, st coState) coState {
	for _, s := range list {
		if st = w.stmt(s, st); st == nil {
			return nil
		}
	}
	return st
}

func (w *coWalker) stmt(s ast.Stmt, st coState) coState {
	switch x := s.(type) {
	case *ast.ReturnStmt:
		w.exprs(x.Results, st)
		return nil
	case *ast.BranchStmt:
		return nil // break/continue/goto end this straight-line path
	case *ast.ExprStmt:
		w.expr(x.X, st)
	case *ast.SendStmt:
		w.checkSend(x, st)
		w.expr(x.Value, st)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.expr(r, st)
		}
		// Re-making a closed channel reopens it on this path.
		for i, l := range x.Lhs {
			if k, ok := w.keyOf(l); ok && i < len(x.Rhs) {
				if call, isCall := ast.Unparen(x.Rhs[i]).(*ast.CallExpr); isCall {
					if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "make" {
						delete(st, k)
					}
				}
			}
		}
	case *ast.DeferStmt:
		// Defers run at return, after the body's sends: census-only.
		for _, a := range x.Call.Args {
			w.expr(a, st)
		}
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			w.expr(a, st)
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.exprs(vs.Values, st)
				}
			}
		}
	case *ast.IfStmt:
		if x.Init != nil {
			if st = w.stmt(x.Init, st); st == nil {
				return nil
			}
		}
		w.expr(x.Cond, st)
		thenSt := w.block(x.Body, st.clone())
		var elseSt coState
		if x.Else != nil {
			elseSt = w.stmt(x.Else, st.clone())
		} else {
			elseSt = st.clone()
		}
		return mergeCO(thenSt, elseSt)
	case *ast.BlockStmt:
		return w.block(x, st)
	case *ast.ForStmt:
		if x.Init != nil {
			if st = w.stmt(x.Init, st); st == nil {
				return nil
			}
		}
		// Two passes over the body: the second sees closes from the
		// first, catching close-then-send across iterations.
		first := w.block(x.Body, st.clone())
		if first != nil {
			w.block(x.Body, first.clone())
			st = mergeCO(st, first)
		}
		return st
	case *ast.RangeStmt:
		w.expr(x.X, st)
		first := w.block(x.Body, st.clone())
		if first != nil {
			w.block(x.Body, first.clone())
			st = mergeCO(st, first)
		}
		return st
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branches(x, st)
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	}
	return st
}

// branches forks state per case clause and joins by union.
func (w *coWalker) branches(s ast.Stmt, st coState) coState {
	var bodies [][]ast.Stmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			if st = w.stmt(x.Init, st); st == nil {
				return nil
			}
		}
		if x.Tag != nil {
			w.expr(x.Tag, st)
		}
		for _, cl := range x.Body.List {
			bodies = append(bodies, cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			if st = w.stmt(x.Init, st); st == nil {
				return nil
			}
		}
		for _, cl := range x.Body.List {
			bodies = append(bodies, cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			comm := cl.(*ast.CommClause)
			if send, ok := comm.Comm.(*ast.SendStmt); ok {
				w.checkSend(send, st)
			}
			bodies = append(bodies, comm.Body)
		}
	}
	if len(bodies) == 0 {
		return st
	}
	var out coState
	for _, body := range bodies {
		if end := w.stmts(body, st.clone()); end != nil {
			out = mergeCO(out, end)
		}
	}
	// A switch/select without a covering default can fall through.
	return mergeCO(out, st)
}

func mergeCO(a, b coState) coState {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	for k, v := range b {
		if _, ok := a[k]; !ok {
			a[k] = v
		}
	}
	return a
}

func (w *coWalker) exprs(list []ast.Expr, st coState) {
	for _, e := range list {
		w.expr(e, st)
	}
}

// expr scans an expression for closes and calls that matter to state.
func (w *coWalker) expr(e ast.Expr, st coState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // runs on another frame; not this path
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if arg, isClose := isCloseCall(w.info, call); isClose {
			if k, ok := w.keyOf(arg); ok {
				if prev, closed := st[k]; closed {
					w.report(call.Pos(), "channel "+k.String()+" closed twice on this path (previous close at "+
						w.fset.Position(prev).String()+"); closing a closed channel panics")
				} else {
					st[k] = call.Pos()
				}
			}
			return true
		}
		// A call into a function that may send on a closed class.
		if fn := calleeFunc(w.info, call); fn != nil {
			if m := w.sends[fn.Origin()]; m != nil {
				for k, pos := range st {
					if k.cls != "" && m[k.cls] {
						w.report(call.Pos(), "call to "+w.graph.displayName(fn.Origin())+
							" may send on "+k.String()+" after it was closed at "+
							w.fset.Position(pos).String()+"; sending on a closed channel panics")
					}
				}
			}
		}
		return true
	})
}

func (w *coWalker) checkSend(s *ast.SendStmt, st coState) {
	k, ok := w.keyOf(s.Chan)
	if !ok {
		return
	}
	if pos, closed := st[k]; closed {
		w.report(s.Arrow, "send on "+k.String()+" after it was closed at "+
			w.fset.Position(pos).String()+"; sending on a closed channel panics")
	}
}
