package lint

import "go/ast"

// sendTraced flags direct (*transport.Network).Send calls outside the
// allowlist. Send is SendTraced with a nil trace: a client-side call site
// that uses it silently opts the RPC out of span attribution, leaving
// holes in the per-commit traces DESIGN §7 promises (every broker
// round-trip of an operation lands in its trace). Client code must call
// SendTraced and thread the attached trace — or pass an explicit nil
// where an operation genuinely has no trace context.
type sendTraced struct{ module string }

func (sendTraced) Name() string { return "sendtraced" }
func (sendTraced) Doc() string {
	return "client-side transport RPCs must use SendTraced so obs spans stay complete"
}

func (s sendTraced) Run(p *Pass) {
	transportPkg := s.module + "/internal/transport"
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if isMethod(fn, transportPkg, "Network", "Send") {
				p.Reportf(call.Pos(), "sendtraced",
					"direct transport.Send drops the RPC from obs traces: call SendTraced with the operation's trace (or an explicit nil)")
			}
			return true
		})
	}
}
