package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrder is the static deadlock detector: it abstracts every mutex to
// a lock class (the owning type and field — all instances of
// broker.Broker.mu are one class), summarizes per function which classes
// are acquired while which are held, closes the summaries over the call
// graph (including interface-dispatch edges), and reports every cycle in
// the resulting lock-order graph as a potential deadlock with a full
// witness path.
//
// The class abstraction deliberately ignores *instances*: two different
// Partition values locked in a fixed global order would be a false
// positive, so an edge from a class to itself is skipped — the rule only
// reports cross-class cycles, where no instance ordering can save you.
//
// Per function the shared lockWalker (see lockheld.go) provides the
// path-sensitive held set; the summary records
//
//   - direct acquisitions (for the may-acquire closure),
//   - direct held→acquired pairs (intra-function order edges),
//   - the held set at every call site, keyed by call position so it
//     lines up with the call-graph edges at the same position.
//
// Finalize then runs a may-acquire fixpoint over the call graph (what
// classes can this function's closure take, with a witness chain),
// derives the class digraph, and reports one finding per strongly
// connected component of two or more classes, rendered as the canonical
// cycle starting from the lexicographically smallest class.
type lockOrder struct {
	module string
	fset   *token.FileSet
	graph  *CallGraph
	sums   map[*types.Func]*lockSummary
}

func newLockOrder(module string) *lockOrder {
	return &lockOrder{module: module, sums: make(map[*types.Func]*lockSummary)}
}

func (*lockOrder) Name() string { return "lockorder" }
func (*lockOrder) Doc() string {
	return "no cycle in the module-wide lock-order graph (potential deadlock), witnessed through the call graph"
}

// lockAcq is one acquisition (or held lock): its class and a position —
// the acquire site.
type lockAcq struct {
	class string
	pos   token.Pos
}

// lockPair is a direct intra-function order edge: `to` acquired at pos
// while `from` was held.
type lockPair struct {
	from, to string
	pos      token.Pos
}

type lockSummary struct {
	acquires []lockAcq
	direct   []lockPair
	// heldAt maps a call position to the (class-sorted) locks held there;
	// the key matches CGEdge.Pos for the same call.
	heldAt map[token.Pos][]lockAcq
}

func (l *lockOrder) Run(p *Pass) {
	l.fset = p.Fset
	l.graph = p.Graph
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &lockSummary{heldAt: make(map[token.Pos][]lockAcq)}
			l.sums[fn] = sum
			w := &lockWalker{pass: p, hooks: lockHooks{
				keyOf: func(recv ast.Expr) (string, bool) { return lockClassOf(p.Pkg.Info, recv) },
				onAcquire: func(key, op string, pos token.Pos, held lockset) {
					sum.acquires = append(sum.acquires, lockAcq{class: key, pos: pos})
					for _, h := range sortedLockset(held) {
						sum.direct = append(sum.direct, lockPair{from: h.class, to: key, pos: pos})
					}
				},
				onExpr: func(n ast.Node, held lockset) {
					ast.Inspect(n, func(x ast.Node) bool {
						if _, ok := x.(*ast.FuncLit); ok {
							return false
						}
						if call, ok := x.(*ast.CallExpr); ok {
							sum.heldAt[call.Pos()] = sortedLockset(held)
						}
						return true
					})
				},
			}}
			// The body, then every FuncLit inside it as an independent
			// body (the call graph attributes closure calls to this
			// declaration, so the summary does too; the held set inside a
			// closure is its own).
			w.walkBody(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					w.walkBody(lit.Body)
				}
				return true
			})
		}
	}
}

// sortedLockset renders a held set as class-sorted acquisitions.
func sortedLockset(held lockset) []lockAcq {
	out := make([]lockAcq, 0, len(held))
	for class, pos := range held {
		out = append(out, lockAcq{class: class, pos: pos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].class < out[j].class })
	return out
}

// lockClassOf abstracts a mutex receiver expression to its lock class:
//
//	pt.mu.Lock()           → partition.Partition.mu   (field on a named type)
//	b.Lock()               → broker.Broker            (embedded mutex)
//	registryMu.Lock()      → obs.registryMu           (package-level var)
//	otherpkg.Mu.Lock()     → otherpkg.Mu              (qualified package var)
//
// Function-local mutexes have no cross-function ordering story and
// return ok=false, which makes the walker ignore them entirely.
func lockClassOf(info *types.Info, e ast.Expr) (string, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Name() + "." + x.Sel.Name, true
			}
		}
		if named := namedOf(info.TypeOf(x.X)); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + x.Sel.Name, true
		}
		return "", false
	case *ast.Ident:
		v, ok := info.ObjectOf(x).(*types.Var)
		if !ok {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), true
		}
		if named := namedOf(v.Type()); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
		}
		return "", false
	default:
		if named := namedOf(info.TypeOf(e)); named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name(), true
		}
		return "", false
	}
}

// namedOf returns the named type behind t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// acqWitness explains how a function's closure acquires a class: the
// call chain below the function (empty when it acquires directly) and
// the acquire site.
type acqWitness struct {
	chain []*types.Func
	pos   token.Pos
}

// orderEdge is one class-digraph edge with its first (deterministic)
// witness rendering.
type orderEdge struct {
	witness string
	pos     token.Pos
}

func (l *lockOrder) Finalize(report func(Diagnostic)) {
	if l.graph == nil {
		return
	}
	g := l.graph
	fns := g.Funcs()

	// May-acquire closure with witness back-pointers. Iteration order is
	// fixed (sorted functions, sorted edges, sorted classes) and a class
	// keeps its first witness, so the result is run-to-run stable.
	may := make(map[*types.Func]map[string]acqWitness)
	for _, fn := range fns {
		m := make(map[string]acqWitness)
		if sum := l.sums[fn]; sum != nil {
			for _, a := range sum.acquires {
				if _, ok := m[a.class]; !ok {
					m[a.class] = acqWitness{pos: a.pos}
				}
			}
		}
		may[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			m := may[fn]
			for _, e := range g.Node(fn).Edges {
				cm := may[e.Callee.Origin()]
				if cm == nil {
					continue
				}
				for _, class := range sortedKeys(cm) {
					if _, ok := m[class]; ok {
						continue
					}
					w := cm[class]
					m[class] = acqWitness{
						chain: append([]*types.Func{e.Callee.Origin()}, w.chain...),
						pos:   w.pos,
					}
					changed = true
				}
			}
		}
	}

	// The class digraph. First witness per (from,to) wins; self-edges are
	// skipped — same-class ordering is an instance question this
	// abstraction cannot decide.
	edges := make(map[string]map[string]orderEdge)
	addEdge := func(from, to string, e orderEdge) {
		if from == to {
			return
		}
		if edges[from] == nil {
			edges[from] = make(map[string]orderEdge)
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = e
		}
	}
	for _, fn := range fns {
		sum := l.sums[fn]
		if sum == nil {
			continue
		}
		for _, d := range sum.direct {
			addEdge(d.from, d.to, orderEdge{
				witness: fmt.Sprintf("%s (Lock at %s)", g.displayName(fn), l.fset.Position(d.pos)),
				pos:     d.pos,
			})
		}
		for _, e := range g.Node(fn).Edges {
			held := sum.heldAt[e.Pos]
			if len(held) == 0 {
				continue
			}
			cm := may[e.Callee.Origin()]
			if len(cm) == 0 {
				continue
			}
			for _, class := range sortedKeys(cm) {
				w := cm[class]
				parts := []string{g.displayName(fn), g.displayName(e.Callee)}
				for _, c := range w.chain {
					parts = append(parts, g.displayName(c))
				}
				witness := fmt.Sprintf("%s (Lock at %s)", strings.Join(parts, " → "), l.fset.Position(w.pos))
				for _, h := range held {
					addEdge(h.class, class, orderEdge{witness: witness, pos: w.pos})
				}
			}
		}
	}

	// Cycles: Tarjan SCC over the class digraph with sorted adjacency,
	// one finding per component of two or more classes.
	classes := sortedKeys(edges)
	seenClass := make(map[string]bool)
	for _, c := range classes {
		seenClass[c] = true
	}
	for _, m := range edges {
		for _, to := range sortedKeys(m) {
			if !seenClass[to] {
				seenClass[to] = true
				classes = append(classes, to)
			}
		}
	}
	sort.Strings(classes)
	for _, scc := range stronglyConnected(classes, edges) {
		if len(scc) < 2 {
			continue
		}
		cycle := canonicalCycle(scc, edges)
		if cycle == nil {
			continue
		}
		var names, parts []string
		for _, c := range cycle {
			names = append(names, c)
		}
		names = append(names, cycle[0])
		for i, c := range cycle {
			next := cycle[(i+1)%len(cycle)]
			e := edges[c][next]
			parts = append(parts, fmt.Sprintf("%s → %s via %s", c, next, e.witness))
		}
		first := edges[cycle[0]][cycle[1%len(cycle)]]
		report(Diagnostic{
			Pos:  l.fset.Position(first.pos),
			Rule: "lockorder",
			Message: fmt.Sprintf("potential deadlock: lock-order cycle %s; %s",
				strings.Join(names, " → "), strings.Join(parts, "; ")),
		})
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stronglyConnected is Tarjan's algorithm (iterative via recursion on a
// small class set is fine) over the class digraph, visiting nodes and
// neighbors in sorted order so component order is deterministic.
func stronglyConnected(classes []string, edges map[string]map[string]orderEdge) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedKeys(edges[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Strings(scc)
			sccs = append(sccs, scc)
		}
	}
	for _, c := range classes {
		if _, seen := index[c]; !seen {
			strongconnect(c)
		}
	}
	return sccs
}

// canonicalCycle extracts one concrete cycle from an SCC: the shortest
// path (BFS, sorted neighbors) from the lexicographically smallest class
// back to itself, staying inside the component.
func canonicalCycle(scc []string, edges map[string]map[string]orderEdge) []string {
	in := make(map[string]bool, len(scc))
	for _, c := range scc {
		in[c] = true
	}
	start := scc[0] // scc is sorted
	type qe struct{ path []string }
	queue := []qe{{path: []string{start}}}
	visited := map[string]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		last := cur.path[len(cur.path)-1]
		for _, n := range sortedKeys(edges[last]) {
			if !in[n] {
				continue
			}
			if n == start && len(cur.path) > 1 {
				return cur.path
			}
			if n == start || visited[n] {
				continue
			}
			visited[n] = true
			queue = append(queue, qe{path: append(append([]string(nil), cur.path...), n)})
		}
	}
	// A 2-cycle a→b→a always resolves above; an SCC that somehow does
	// not yield a cycle is skipped rather than mis-reported.
	return nil
}
