package lint

import (
	"go/ast"
	"go/types"
)

// wallClock is the interprocedural companion to nosleep: it flags any
// production function whose call closure reaches raw wall-clock time —
// time.Now, time.Since, time.Sleep, time.After, time.NewTimer,
// time.NewTicker, time.Tick — without going through one of the module's
// two sanctioned time seams:
//
//   - internal/retry owns behavioral time: retry.Clock (Now/Sleep/After)
//     and the backoff loops, so fault injection can observe, clamp, and
//     cancel every wait;
//   - internal/obs owns observational time: traces and histograms stamp
//     their own clocks internally.
//
// nosleep catches a literal time.Sleep in the function under review;
// this rule closes the helper hole — a production function calling a
// helper (possibly through an interface method implemented in another
// package) that sleeps or reads the wall clock is just as
// nondeterministic, and the taint walk over the call graph sees it. The
// finding carries the shortest witness chain from the function to the
// offending time call.
type wallClock struct {
	module string
}

func (wallClock) Name() string { return "wallclock" }
func (wallClock) Doc() string {
	return "no production call closure reaches raw time.Now/Since/Sleep/After/Ticker outside the retry.Clock and obs seams"
}

// wallFuncs are the time package functions that read or wait on the wall
// clock. Constructors of durations (time.Duration math) are pure and
// deliberately absent.
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Sleep": true, "After": true,
	"NewTimer": true, "NewTicker": true, "Tick": true, "Until": true,
}

func (w wallClock) seam(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case w.module + "/internal/retry", w.module + "/internal/obs":
		return true
	}
	return false
}

func (w wallClock) isWallCall(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
		signature(fn).Recv() == nil && wallFuncs[fn.Name()]
}

func (w wallClock) Run(p *Pass) {
	if p.Pkg.Path == w.module+"/internal/retry" || p.Pkg.Path == w.module+"/internal/obs" {
		return // the seams themselves own raw wall time
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			steps := p.Graph.FindPath(fn, w.isWallCall, w.seam)
			if steps == nil {
				continue
			}
			last := steps[len(steps)-1]
			p.Reportf(steps[0].Pos, "wallclock",
				"call closure reaches %s outside the retry.Clock/obs seams: %s (time call at %s); thread a retry.Clock (retry.Wall at the edge) or move the timestamp into an obs instrument",
				p.Graph.displayName(last.Fn),
				p.Graph.renderPath(fn, steps),
				p.Fset.Position(last.Pos))
		}
	}
}
