package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// spinLoop forbids busy-wait loops on the hot path. Using hotalloc's
// policy roots (`//kslint:hotpath` doc markers, `//kslint:coldpath`
// seams), every function reachable from a root is scanned for loops that
// can spin without yielding: a `for {}` or `for cond {}` whose body —
// conditions included — performs no blocking operation on any iteration:
// no channel send or receive (a `select` with `default` does not block in
// its comm clauses; one without `default` does), no range over a channel,
// no sync.Cond.Wait / WaitGroup.Wait / clock or timer wait, and no call
// into a module function that may block (a fixpoint summary over the call
// graph, so `for p.hw <= last { p.waitLocked(dl) }` is fine because
// waitLocked parks on its cond var). Counted `for i := ...; i < n; i++`
// loops and ranges over collections are bounded work, not waits, and are
// skipped.
//
// The finding carries the hot chain from the root, hotalloc-style, so the
// reader sees why the loop is considered hot.
type spinLoop struct {
	module string
	fset   *token.FileSet
	graph  *CallGraph
}

func newSpinLoop(module string) *spinLoop { return &spinLoop{module: module} }

func (*spinLoop) Name() string { return "spinloop" }
func (*spinLoop) Doc() string {
	return "no loop reachable from a //kslint:hotpath root can busy-spin: every unbounded loop blocks on a channel, cond, or clock each iteration"
}

func (s *spinLoop) Run(p *Pass) {
	s.fset = p.Fset
	s.graph = p.Graph
}

func (s *spinLoop) Finalize(report func(Diagnostic)) {
	if s.graph == nil {
		return
	}
	var roots []*types.Func
	cold := make(map[*types.Func]bool)
	for _, fn := range s.graph.Funcs() {
		node := s.graph.Node(fn)
		if declMarked(node.Decl, "kslint:hotpath") {
			roots = append(roots, fn)
		}
		if declMarked(node.Decl, "kslint:coldpath") {
			cold[fn] = true
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return FuncID(roots[i]) < FuncID(roots[j]) })

	blocks := s.blockSummaries()

	// Hot reachability with parent links, exactly hotalloc's walk.
	parent := make(map[*types.Func]*types.Func)
	reach := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		reach[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := s.graph.Node(fn)
		if node == nil || node.Decl == nil {
			continue
		}
		for _, e := range node.Edges {
			callee := e.Callee.Origin()
			if reach[callee] || cold[callee] {
				continue
			}
			if n := s.graph.Node(callee); n == nil || n.Decl == nil {
				continue
			}
			reach[callee] = true
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}

	chain := func(fn *types.Func) string {
		var names []string
		for f := fn; f != nil; f = parent[f] {
			names = append(names, s.graph.displayName(f))
		}
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
		return "hot via " + strings.Join(names, " → ")
	}

	var found []Diagnostic
	for _, fn := range s.graph.Funcs() {
		if !reach[fn] {
			continue
		}
		node := s.graph.Node(fn)
		if node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		where := chain(fn)
		for _, pos := range spinLoops(node.Pkg.Info, node.Decl.Body, blocks) {
			found = append(found, Diagnostic{
				Pos:  s.fset.Position(pos),
				Rule: "spinloop",
				Message: "loop can busy-spin (" + where + "): no channel operation, cond/clock wait, " +
					"or blocking call on its iteration path and no bound; add a blocking arm or bound the loop",
			})
		}
	}
	sortDiags(found)
	for _, d := range found {
		report(d)
	}
}

// blockSummaries computes, to a fixpoint, whether each module function
// may block: a direct blocking construct in its body, or a call to a
// function that may.
func (s *spinLoop) blockSummaries() map[*types.Func]bool {
	blocks := make(map[*types.Func]bool)
	for _, fn := range s.graph.Funcs() {
		node := s.graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		if directlyBlocks(node.Pkg.Info, node.Decl.Body) {
			blocks[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range s.graph.Funcs() {
			if blocks[fn] {
				continue
			}
			node := s.graph.Node(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Edges {
				if blocks[e.Callee.Origin()] || blockingStdlib(e.Callee) {
					blocks[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return blocks
}

// blockingStdlib recognizes blocking leaves outside the module.
func blockingStdlib(fn *types.Func) bool {
	return isPkgFunc(fn, "time", "Sleep") ||
		isMethod(fn, "sync", "Cond", "Wait") ||
		isMethod(fn, "sync", "WaitGroup", "Wait") ||
		isPkgFunc(fn, "runtime", "Gosched")
}

// directlyBlocks reports whether body contains a blocking construct
// outside spawned-goroutine literals: a send/receive not under a
// select-with-default comm, a select without default, a range over a
// channel, or a blocking stdlib call.
func directlyBlocks(info *types.Info, body ast.Node) bool {
	blocking := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if blocking {
				return false
			}
			switch x := m.(type) {
			case *ast.GoStmt:
				for _, a := range x.Call.Args {
					walk(a)
				}
				return false // the spawned body blocks its own goroutine
			case *ast.SendStmt:
				blocking = true
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					blocking = true
					return false
				}
			case *ast.RangeStmt:
				if isChanType(info.TypeOf(x.X)) {
					blocking = true
					return false
				}
			case *ast.SelectStmt:
				if selectBlocks(info, x) {
					blocking = true
					return false
				}
				// Non-blocking select: its comm ops never block, but the
				// case bodies run normally.
				for _, cl := range x.Body.List {
					for _, st := range cl.(*ast.CommClause).Body {
						walk(st)
					}
				}
				return false
			case *ast.CallExpr:
				if fn := calleeFunc(info, x); fn != nil && blockingStdlib(fn) {
					blocking = true
					return false
				}
			}
			return true
		})
	}
	walk(body)
	return blocking
}

// selectBlocks reports whether a select statement can block: no default
// clause.
func selectBlocks(info *types.Info, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		if cl.(*ast.CommClause).Comm == nil {
			return false // default clause
		}
	}
	return true
}

// spinLoops returns the positions of unbounded loops in body that cannot
// block on any iteration: no direct blocking construct in the loop
// subtree and no call to a may-block function. Two loop shapes make
// their own progress and are exempt: a loop whose body assigns to a
// variable its condition reads (monotone drains — `for len(p) > 0 { p =
// p[n:] }`), and a lock-free CAS retry (`for { ...CompareAndSwap...
// break }` — a failed CAS means another writer progressed).
func spinLoops(info *types.Info, body ast.Node, blocks map[*types.Func]bool) []token.Pos {
	var out []token.Pos
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.ForStmt:
				if x.Post == nil && !loopBlocks(info, x, blocks) &&
					!selfAdvancing(x) && !casRetry(info, x.Body) {
					out = append(out, x.For)
				}
				if x.Cond != nil {
					walk(x.Cond)
				}
				walk(x.Body)
				return false
			}
			return true
		})
	}
	walk(body)
	return out
}

// selfAdvancing reports whether the loop's body assigns to (or
// increments) an expression its condition reads — the loop owns its
// progress, so it is bounded work, not a wait.
func selfAdvancing(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return false
	}
	read := make(map[string]bool)
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			read[types.ExprString(n.(ast.Expr))] = true
		}
		return true
	})
	advanced := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if advanced {
				return false
			}
			switch x := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					if read[types.ExprString(l)] {
						advanced = true
					}
				}
			case *ast.IncDecStmt:
				if read[types.ExprString(x.X)] {
					advanced = true
				}
			case *ast.UnaryExpr:
				// &x escaping into a call may mutate x (binary.Read-style
				// decoders); treat it as progress the analysis can't track.
				if x.Op == token.AND && read[types.ExprString(x.X)] {
					advanced = true
				}
			}
			return true
		})
	}
	walk(loop.Body)
	return advanced
}

// casRetry reports whether the loop body performs an atomic
// compare-and-swap — the canonical lock-free retry, where a failed swap
// proves another goroutine made progress.
func casRetry(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		if strings.HasPrefix(fn.Name(), "CompareAndSwap") {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopBlocks reports whether one loop's iteration path (cond and body)
// contains a blocking construct or a call into a may-block function.
func loopBlocks(info *types.Info, loop *ast.ForStmt, blocks map[*types.Func]bool) bool {
	var scan []ast.Node
	if loop.Cond != nil {
		scan = append(scan, loop.Cond)
	}
	scan = append(scan, loop.Body)
	for _, n := range scan {
		if directlyBlocks(info, n) {
			return true
		}
		mayBlockCall := false
		ast.Inspect(n, func(m ast.Node) bool {
			if mayBlockCall {
				return false
			}
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := m.(*ast.GoStmt); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && blocks[fn.Origin()] {
				mayBlockCall = true
				return false
			}
			return true
		})
		if mayBlockCall {
			return true
		}
	}
	return false
}
