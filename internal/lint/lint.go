// Package lint implements kslint, the repo's stdlib-only static-analysis
// pass. The paper's guarantees (exactly-once commit cycles, revision-based
// completeness) only reproduce while the harness stays deterministic and
// the broker/client hot paths keep their concurrency discipline; kslint
// machine-checks those invariants instead of leaving them to review:
//
//	nosleep      no raw time.Sleep in production code (waits go through
//	             the retry clock so fault-injection timing is deterministic)
//	norawrand    no global math/rand functions (seeded *rand.Rand only)
//	lockheld-rpc no mutex held across a transport RPC or channel send
//	sendtraced   client-side RPCs use SendTraced so obs spans stay complete
//	errdrop      no silently discarded errors from broker/client APIs
//	obsnames     metric families follow the DESIGN §7 naming scheme and
//	             each family is registered from a single package
//	wallclock    no production call closure reaches raw wall-clock time
//	             outside the retry.Clock / obs seams (interprocedural)
//	lockorder    no cycle in the module-wide lock-order graph — potential
//	             deadlocks reported with a call-graph witness path
//	lockbalance  no mutex still held (and not defer-unlocked) on any
//	             path out of a function
//	txnproto     transactional producers follow begin→offsets→commit/abort
//	             on every path, seen through wrappers and interfaces
//	poollife     no use, alias, or second Put of a pooled buffer after it
//	             was released to its pool (path-sensitive, with release
//	             summaries over the call graph)
//	zerocopy     no retention or mutation of zero-copy batch views
//	             (shared decode results, WAL cache entries) outside the
//	             DESIGN §10 ownership contract (taint, witness chains)
//	atomicmix    a field accessed via sync/atomic anywhere is accessed
//	             atomically everywhere (module-wide census)
//	hotalloc     no fmt/log, unpreallocated grow-append, interface
//	             boxing, or per-record allocation reachable from
//	             //kslint:hotpath roots; //kslint:coldpath is the seam
//	goleak       every production go statement has a termination witness:
//	             a signal-channel (chan struct{}) receive, an exit path,
//	             a bound, or a //kslint:finite reason on its function
//	chanown      each package-level or struct-field channel has exactly
//	             one closing function, and no send or second close is
//	             reachable after a close on any path
//	waitbalance  sync.WaitGroup Add(n) literals balance the Done sites of
//	             the function and every goroutine it spawns; no Add
//	             inside a spawned goroutine
//	spinloop     no loop reachable from a //kslint:hotpath root can
//	             busy-spin: unbounded loops block on a channel, cond, or
//	             clock each iteration
//
// The last twelve are interprocedural: they query the module-wide call
// graph built in callgraph.go (static dispatch plus interface-method
// resolution over the module's concrete types). Analyzers are written
// purely on go/ast + go/parser + go/types; see loader.go for how the
// module is type-checked without x/tools. Findings can be suppressed per
// line with `//kslint:ignore <rule>[,<rule>] reason`, per file with
// `//kslint:file-ignore <rule> reason`, and per path prefix through
// Config.Allow; the goroutine-lifecycle rules (DESIGN.md §12) honor
// `//kslint:finite <reason>` on a function's doc comment as a
// termination assertion.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one finding at a source position (module-relative file).
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Pass hands one type-checked package to an analyzer, together with the
// module-wide call graph the interprocedural rules query. Graph is the
// same object across every package's pass, so a Finalizer may retain it.
type Pass struct {
	Module string // module path, e.g. "kstreams"
	Fset   *token.FileSet
	Pkg    *Package
	Graph  *CallGraph
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.report(Diagnostic{Pos: p.Fset.Position(pos), Rule: rule, Message: fmt.Sprintf(format, args...)})
}

// Analyzer is one kslint rule.
type Analyzer interface {
	// Name is the rule id used in output, allowlists, and ignore comments.
	Name() string
	// Doc is the one-line description printed by kslint -list.
	Doc() string
	// Run inspects one package and reports findings on the pass.
	Run(*Pass)
}

// Finalizer is implemented by analyzers that also need a module-wide view
// (e.g. obsnames' single-registration-package check); Finalize runs once
// after every package's Run.
type Finalizer interface {
	Finalize(report func(Diagnostic))
}

// Config scopes the rules: Allow maps a rule name to module-relative path
// prefixes (directories or files) exempt from it.
type Config struct {
	Allow map[string][]string
}

// DefaultConfig is the repository policy. Allowlist rationale:
//
//   - nosleep: internal/retry owns the Clock implementation (the one
//     place raw sleeps are the point); internal/harness and
//     internal/experiments are the wall-clock experiment drivers; cmd
//     and examples are interactive demos.
//   - sendtraced: internal/transport defines Send; broker-to-broker and
//     controller RPCs (internal/broker, internal/cluster) carry no
//     client trace context by design — spans attribute *client*
//     operations; cmd and examples are untraced tooling.
//   - wallclock: same rationale as nosleep, interprocedurally — the
//     harness/experiment drivers and interactive tooling run in real
//     time on purpose, so their closures may reach the wall clock.
//     internal/lint itself is on the list for one reason: the linter
//     times its own analysis (timing.go) for the `make lint` budget
//     gate, and developer tooling measuring itself has no determinism
//     contract to protect.
func DefaultConfig() Config {
	return Config{Allow: map[string][]string{
		"nosleep": {
			"internal/retry",
			"internal/harness",
			"internal/experiments",
			"cmd",
			"examples",
		},
		"wallclock": {
			"internal/harness",
			"internal/experiments",
			"internal/lint",
			"cmd",
			"examples",
		},
		"sendtraced": {
			"internal/transport",
			"internal/broker",
			"internal/cluster",
			"cmd",
			"examples",
		},
	}}
}

// allowed reports whether file (module-relative) is exempt from rule.
func (c Config) allowed(rule, file string) bool {
	for _, prefix := range c.Allow[rule] {
		prefix = strings.TrimSuffix(prefix, "/")
		if file == prefix || strings.HasPrefix(file, prefix+"/") {
			return true
		}
	}
	return false
}

// Analyzers returns the full rule set for a module path.
func Analyzers(module string) []Analyzer {
	return []Analyzer{
		noSleep{},
		noRawRand{},
		lockHeld{module: module},
		sendTraced{module: module},
		errDrop{module: module},
		newObsNames(module),
		wallClock{module: module},
		newLockOrder(module),
		lockBalance{},
		newTxnProto(module),
		newPoolLife(module),
		newZeroCopy(module),
		newAtomicMix(module),
		newHotAlloc(module),
		newGoLeak(module),
		newChanOwn(module),
		newWaitBalance(module),
		newSpinLoop(module),
	}
}

// Run lints the module rooted at root: every package is loaded and
// type-checked, each analyzer (optionally restricted to ruleFilter names)
// runs over it, and the surviving diagnostics — after per-path allowlists
// and //kslint:ignore suppressions — are returned stable-sorted by
// file, line, column, rule, message so CI diffs are reproducible.
func Run(root string, cfg Config, ruleFilter []string) ([]Diagnostic, error) {
	diags, _, err := RunTimed(root, cfg, ruleFilter)
	return diags, err
}

// RunAnalyzers applies analyzers to an already-loaded module. Split out
// so tests can lint fixture packages with a custom config. Delegates to
// RunAnalyzersTimed (timing.go) and drops the breakdown.
func RunAnalyzers(mod *Module, cfg Config, analyzers []Analyzer) []Diagnostic {
	diags, _ := RunAnalyzersTimed(mod, cfg, analyzers)
	return diags
}

// LintPackage runs analyzers over a single (usually fixture) package.
func LintPackage(loader *Loader, pkg *Package, cfg Config, analyzers []Analyzer) []Diagnostic {
	mod := &Module{Root: loader.Root(), Path: loader.ModulePath(), Fset: loader.Fset(), Pkgs: []*Package{pkg}}
	return RunAnalyzers(mod, cfg, analyzers)
}

// filter drops allowlisted and comment-suppressed diagnostics.
func filter(mod *Module, cfg Config, diags []Diagnostic) []Diagnostic {
	suppressed := make(map[string]map[int][]string)
	fileIgnored := make(map[string][]string)
	for _, pkg := range mod.Pkgs {
		for file, lines := range pkg.suppress {
			suppressed[file] = lines
		}
		for file, rules := range pkg.fileIgnore {
			fileIgnored[file] = rules
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		if cfg.allowed(d.Rule, d.Pos.Filename) {
			continue
		}
		if rulesSuppressed(suppressed[d.Pos.Filename][d.Pos.Line], d.Rule) {
			continue
		}
		if rulesSuppressed(fileIgnored[d.Pos.Filename], d.Rule) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func rulesSuppressed(rules []string, rule string) bool {
	for _, r := range rules {
		if r == rule || r == "all" {
			return true
		}
	}
	return false
}

// suppressions extracts //kslint:ignore directives from a file. A
// directive suppresses the named rules on its own line (trailing comment)
// and on the line below it (standalone comment above the statement):
//
//	foo()            //kslint:ignore errdrop best-effort cleanup
//	//kslint:ignore nosleep settle delay is part of the scenario
//	time.Sleep(d)
func suppressions(fset *token.FileSet, f *ast.File) map[int][]string {
	out := make(map[int][]string)
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, "//kslint:ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			var rules []string
			for _, r := range strings.Split(fields[0], ",") {
				if r = strings.TrimSpace(r); r != "" {
					rules = append(rules, r)
				}
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], rules...)
			out[line+1] = append(out[line+1], rules...)
		}
	}
	return out
}

// fileIgnores extracts //kslint:file-ignore directives: each suppresses
// the named rules (or "all") for the entire file it appears in. Like the
// line form, a reason is required by convention and carried in the
// comment:
//
//	//kslint:file-ignore wallclock this file owns the wall-clock seam
func fileIgnores(f *ast.File) []string {
	var rules []string
	for _, group := range f.Comments {
		for _, c := range group.List {
			rest, ok := strings.CutPrefix(c.Text, "//kslint:file-ignore")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			for _, r := range strings.Split(fields[0], ",") {
				if r = strings.TrimSpace(r); r != "" {
					rules = append(rules, r)
				}
			}
		}
	}
	return rules
}

// JSONDiagnostic is the stable wire form of a finding for kslint -json.
type JSONDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// ToJSON renders diagnostics as an indented JSON array in the same
// stable order RunAnalyzers emits them (an empty slice renders as []).
func ToJSON(diags []Diagnostic) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// --- shared type-resolution helpers used by the analyzers ---

// calleeFunc resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (receiver-less), e.g. time.Sleep.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && signature(fn).Recv() == nil
}

// isMethod reports whether fn is a method named name on the named type
// typeName (possibly behind a pointer) declared in pkgPath.
func isMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath || fn.Name() != name {
		return false
	}
	recv := signature(fn).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// signature returns fn's *types.Signature (portable across go versions).
func signature(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// lastResultIsError reports whether fn's final result is the error type.
func lastResultIsError(fn *types.Func) bool {
	res := signature(fn).Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
