package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// waitBalance checks sync.WaitGroup Add/Done/Wait balance across
// goroutine boundaries. For each function that calls Add on a group, the
// rule matches literal Add(n) counts against Done calls — the function's
// own (deferred or inline, the lockbalance treatment), plus the Done
// sites inside each goroutine it spawns: a spawned FuncLit is scanned in
// place, a spawned method resolves through the call graph so the
// Add-here/Done-in-worker split (Broker.New adds, replicaLoop dones)
// still balances. Loop bodies must balance on their own — an Add inside
// a loop matched only outside it means the counter drifts per iteration.
//
// Findings:
//   - surplus Adds: Wait hangs forever once the spawned goroutines exit;
//   - surplus Dones: the counter goes negative and panics;
//   - Add inside a spawned goroutine: races the parent's Wait (the
//     canonical misuse the sync docs call out).
//
// Non-literal Add(n), Done under a loop in a spawned body, and spawns
// the graph cannot resolve make the group's balance unknowable, and the
// function is skipped — the rule prefers silence to guessing. Functions
// that only Done (workers) are the callee half of a cross-function
// balance and are skipped too.
type waitBalance struct {
	module string
	fset   *token.FileSet
	graph  *CallGraph
}

func newWaitBalance(module string) *waitBalance { return &waitBalance{module: module} }

func (*waitBalance) Name() string { return "waitbalance" }
func (*waitBalance) Doc() string {
	return "sync.WaitGroup Add(n) literals balance the Done sites of this function and every goroutine it spawns; no Add inside a spawned goroutine"
}

func (w *waitBalance) Run(p *Pass) {
	w.fset = p.Fset
	w.graph = p.Graph
}

// wbKey identifies a WaitGroup: a field class string or a local object.
type wbKey struct {
	obj types.Object
	cls string
}

func (k wbKey) String() string {
	if k.cls != "" {
		return k.cls
	}
	return k.obj.Name()
}

// wbTally accumulates one group's balance inside one scope.
type wbTally struct {
	delta    int
	unknown  bool
	firstAdd token.Pos
	hasAdd   bool
}

func (w *waitBalance) Finalize(report func(Diagnostic)) {
	if w.graph == nil {
		return
	}
	var found []Diagnostic
	for _, fn := range w.graph.Funcs() {
		node := w.graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		fw := &wbWalker{
			info:  node.Pkg.Info,
			fset:  w.fset,
			graph: w.graph,
		}
		tallies := make(map[wbKey]*wbTally)
		fw.scan(node.Decl.Body, tallies)
		for k, t := range tallies {
			if d := verdict(w.fset, k, t); d != nil {
				found = append(found, *d)
			}
		}
		found = append(found, fw.found...)
	}
	// A body spawned from several sites is scanned once per site; its
	// violations must still report once.
	seen := make(map[string]bool)
	dedup := found[:0]
	for _, d := range found {
		key := d.Pos.String() + "|" + d.Message
		if !seen[key] {
			seen[key] = true
			dedup = append(dedup, d)
		}
	}
	sortDiags(dedup)
	for _, d := range dedup {
		report(d)
	}
}

// verdict turns a scope's tally into a finding, or nil when balanced or
// unknowable.
func verdict(fset *token.FileSet, k wbKey, t *wbTally) *Diagnostic {
	if t.unknown || !t.hasAdd || t.delta == 0 {
		return nil
	}
	msg := k.String() + ": "
	if t.delta > 0 {
		msg += strconv.Itoa(t.delta) + " Add(s) have no matching Done in this function or the goroutines it spawns; Wait will hang"
	} else {
		msg += strconv.Itoa(-t.delta) + " more Done(s) than Add(s); the WaitGroup counter goes negative and panics"
	}
	return &Diagnostic{Pos: fset.Position(t.firstAdd), Rule: "waitbalance", Message: msg}
}

type wbWalker struct {
	info  *types.Info
	fset  *token.FileSet
	graph *CallGraph
	found []Diagnostic
}

func (w *wbWalker) keyOf(recv ast.Expr) (wbKey, bool) {
	if cls := chanClassOf(w.info, deref(recv), nil); cls != "" {
		return wbKey{cls: cls}, true
	}
	if id, ok := ast.Unparen(deref(recv)).(*ast.Ident); ok {
		obj := w.info.Uses[id]
		if obj == nil {
			obj = w.info.Defs[id]
		}
		if obj != nil {
			return wbKey{obj: obj}, true
		}
	}
	return wbKey{}, false
}

// deref strips a leading & so (&wg) and wg resolve to the same key.
func deref(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return ast.Unparen(e)
}

func tallyFor(tallies map[wbKey]*wbTally, k wbKey) *wbTally {
	t := tallies[k]
	if t == nil {
		t = &wbTally{}
		tallies[k] = t
	}
	return t
}

// scan walks one scope (a function body or a loop body), accumulating
// Add/Done/spawn balance into tallies. Loop bodies get their own tally
// scope; their verdicts are reported at the loop.
func (w *wbWalker) scan(n ast.Node, tallies map[wbKey]*wbTally) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false // a literal's calls run on its own frame (or goroutine)
		case *ast.ForStmt:
			w.loopScope(x.Body, x.For, tallies)
			return false
		case *ast.RangeStmt:
			w.loopScope(x.Body, x.For, tallies)
			return false
		case *ast.GoStmt:
			w.spawn(x, tallies)
			return false
		case *ast.CallExpr:
			w.call(x, tallies, false)
		}
		return true
	})
}

// loopScope tallies a loop body independently: per-iteration imbalance is
// its own finding, and an unknown inside poisons the enclosing tally.
func (w *wbWalker) loopScope(body *ast.BlockStmt, pos token.Pos, outer map[wbKey]*wbTally) {
	inner := make(map[wbKey]*wbTally)
	w.scan(body, inner)
	for k, t := range inner {
		switch {
		case t.unknown:
			tallyFor(outer, k).unknown = true
		case t.hasAdd && t.delta != 0:
			if d := verdict(w.fset, k, t); d != nil {
				d.Message = d.Message + " (per loop iteration)"
				w.found = append(w.found, *d)
			}
		case !t.hasAdd && t.delta != 0:
			// Dones without Adds in a loop: the enclosing function's
			// Adds cannot match a per-iteration Done count statically.
			tallyFor(outer, k).unknown = true
		}
	}
}

// call tallies one Add/Done/Wait call. spawned marks calls inside a
// goroutine body, where Add is a race with the parent's Wait.
func (w *wbWalker) call(call *ast.CallExpr, tallies map[wbKey]*wbTally, spawned bool) {
	if recv, ok := wgMethod(w.info, call, "Add"); ok {
		k, okKey := w.keyOf(recv)
		if !okKey {
			return
		}
		t := tallyFor(tallies, k)
		if spawned {
			w.found = append(w.found, Diagnostic{
				Pos: w.fset.Position(call.Pos()), Rule: "waitbalance",
				Message: k.String() + ": Add inside a spawned goroutine races the parent's Wait; Add before the go statement",
			})
			return
		}
		if !t.hasAdd {
			t.hasAdd = true
			t.firstAdd = call.Pos()
		}
		n, okLit := intLit(call.Args)
		if !okLit {
			t.unknown = true
			return
		}
		t.delta += n
		return
	}
	if recv, ok := wgMethod(w.info, call, "Done"); ok {
		if k, okKey := w.keyOf(recv); okKey {
			tallyFor(tallies, k).delta--
		}
		return
	}
}

// intLit extracts a literal int argument: Add(2) → 2.
func intLit(args []ast.Expr) (int, bool) {
	if len(args) != 1 {
		return 0, false
	}
	lit, ok := ast.Unparen(args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	n, err := strconv.Atoi(lit.Value)
	if err != nil {
		return 0, false
	}
	return n, true
}

// spawn credits the Done sites of the goroutine a go statement starts.
func (w *wbWalker) spawn(gs *ast.GoStmt, tallies map[wbKey]*wbTally) {
	lit, fn := spawnTargets(w.info, w.graph, gs)
	switch {
	case lit != nil:
		w.spawnedBody(lit.Body, w.info, tallies)
	case fn != nil:
		node := w.graph.Node(fn)
		w.spawnedBody(node.Decl.Body, node.Pkg.Info, tallies)
	default:
		// Unresolvable spawn: if it captures or receives a WaitGroup we
		// cannot see its Dones; poison every group mentioned in the args.
		for _, a := range gs.Call.Args {
			w.poisonWaitGroups(a, tallies)
		}
	}
}

// spawnedBody counts Done calls (and flags Adds) inside one spawned
// goroutine body. info may differ from the walker's package when the
// spawned method lives elsewhere; keys still unify through field classes.
// Groups declared *inside* the spawned body are its own private fan-out
// (completeTxn's per-broker WaitGroup) — they balance when the spawned
// function is analyzed as a function, so they neither credit nor race
// the parent's tally here.
func (w *wbWalker) spawnedBody(body *ast.BlockStmt, info *types.Info, tallies map[wbKey]*wbTally) {
	sw := &wbWalker{info: info, fset: w.fset, graph: w.graph}
	ownGroup := func(k wbKey) bool {
		return k.obj != nil && k.obj.Pos() >= body.Pos() && k.obj.Pos() <= body.End()
	}
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false // nested spawn tallies at its own site
			case *ast.ForStmt:
				walk(x.Body, true)
				return false
			case *ast.RangeStmt:
				walk(x.Body, true)
				return false
			case *ast.CallExpr:
				if recv, ok := wgMethod(info, x, "Done"); ok {
					if k, okKey := sw.keyOf(recv); okKey && !ownGroup(k) {
						if inLoop {
							tallyFor(tallies, k).unknown = true
						} else {
							tallyFor(tallies, k).delta--
						}
					}
					return true
				}
				if recv, ok := wgMethod(info, x, "Add"); ok {
					if k, okKey := sw.keyOf(recv); okKey && !ownGroup(k) {
						w.found = append(w.found, Diagnostic{
							Pos: w.fset.Position(x.Pos()), Rule: "waitbalance",
							Message: k.String() + ": Add inside a spawned goroutine races the parent's Wait; Add before the go statement",
						})
						tallyFor(tallies, k).unknown = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)
}

// poisonWaitGroups marks every WaitGroup-typed expression under e
// unknowable.
func (w *wbWalker) poisonWaitGroups(e ast.Expr, tallies map[wbKey]*wbTally) {
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		t := w.info.TypeOf(ex)
		if t == nil {
			return true
		}
		if p, okp := t.(*types.Pointer); okp {
			t = p.Elem()
		}
		named, okn := t.(*types.Named)
		if !okn || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "WaitGroup" {
			return true
		}
		if k, okk := w.keyOf(ex); okk {
			tallyFor(tallies, k).unknown = true
		}
		return true
	})
}
