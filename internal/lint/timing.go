package lint

import (
	"sort"
	"strings"
	"time"
)

// Per-rule wall-time accounting for the lint budget gate (`make check`
// fails when the whole analysis blows its 60s budget, and the -timings
// breakdown says which rule to blame). A rule's time is the sum of its
// Run calls across every package plus its Finalize, so the module-wide
// rules (call-graph walkers) charge their fixpoints where they happen.
//
// This file is why internal/lint sits on the wallclock allowlist in
// DefaultConfig: the linter is developer tooling measuring itself, not
// production stream-processing code, so the determinism rationale the
// rule protects does not apply here.

// RuleTiming is one rule's accumulated analysis wall time.
type RuleTiming struct {
	Rule    string
	Elapsed time.Duration
}

// Timings is a RunAnalyzersTimed breakdown: per-rule entries sorted
// slowest-first, plus the load-independent analysis wall total (graph
// build + every Run + every Finalize + filtering).
type Timings struct {
	Rules []RuleTiming
	Wall  time.Duration
}

// String renders the breakdown as aligned lines, slowest rule first.
func (t Timings) String() string {
	var b strings.Builder
	for _, rt := range t.Rules {
		b.WriteString("  ")
		b.WriteString(rt.Rule)
		for i := len(rt.Rule); i < 12; i++ {
			b.WriteByte(' ')
		}
		b.WriteString(" ")
		b.WriteString(rt.Elapsed.Round(time.Microsecond).String())
		b.WriteByte('\n')
	}
	b.WriteString("  total        ")
	b.WriteString(t.Wall.Round(time.Microsecond).String())
	b.WriteByte('\n')
	return b.String()
}

// RunTimed is Run with a timing breakdown: same diagnostics, plus how
// long each rule and the whole analysis took.
func RunTimed(root string, cfg Config, ruleFilter []string) ([]Diagnostic, Timings, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, Timings{}, err
	}
	mod, err := loader.LoadAll()
	if err != nil {
		return nil, Timings{}, err
	}
	analyzers := selectAnalyzers(mod.Path, ruleFilter)
	diags, timings := RunAnalyzersTimed(mod, cfg, analyzers)
	return diags, timings, nil
}

// RunAnalyzersTimed applies analyzers to an already-loaded module,
// recording per-rule wall time. RunAnalyzers delegates here and drops the
// breakdown, so both paths run the identical analysis.
func RunAnalyzersTimed(mod *Module, cfg Config, analyzers []Analyzer) ([]Diagnostic, Timings) {
	perRule := make(map[string]time.Duration, len(analyzers))
	start := time.Now()
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	graph := BuildCallGraph(mod)
	for _, pkg := range mod.Pkgs {
		pass := &Pass{Module: mod.Path, Fset: mod.Fset, Pkg: pkg, Graph: graph, report: report}
		for _, a := range analyzers {
			t0 := time.Now()
			a.Run(pass)
			perRule[a.Name()] += time.Since(t0)
		}
	}
	for _, a := range analyzers {
		if f, ok := a.(Finalizer); ok {
			t0 := time.Now()
			f.Finalize(report)
			perRule[a.Name()] += time.Since(t0)
		}
	}
	diags = filter(mod, cfg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	timings := Timings{Wall: time.Since(start)}
	for _, a := range analyzers {
		timings.Rules = append(timings.Rules, RuleTiming{Rule: a.Name(), Elapsed: perRule[a.Name()]})
	}
	sort.SliceStable(timings.Rules, func(i, j int) bool {
		return timings.Rules[i].Elapsed > timings.Rules[j].Elapsed
	})
	return diags, timings
}

// selectAnalyzers resolves the rule subset for a module, all rules when
// the filter is empty.
func selectAnalyzers(module string, ruleFilter []string) []Analyzer {
	analyzers := Analyzers(module)
	if len(ruleFilter) == 0 {
		return analyzers
	}
	keep := make(map[string]bool, len(ruleFilter))
	for _, r := range ruleFilter {
		keep[strings.TrimSpace(r)] = true
	}
	var sel []Analyzer
	for _, a := range analyzers {
		if keep[a.Name()] {
			sel = append(sel, a)
		}
	}
	return sel
}
