package lint_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"kstreams/internal/lint"
)

// Fixture tests for the four memory-safety rules (poollife, zerocopy,
// atomicmix, hotalloc): each gets true positives that must fire and
// near-misses that must stay silent, exercising the interprocedural
// summaries in both directions.

// --- poollife ---

func TestPoolLifeFlagsUseAfterPut(t *testing.T) {
	// grab wraps sync.Pool.Get, so the use-after-release is only visible
	// through the returns-pooled summary.
	diags := lintFixture(t, lint.Config{}, "lintfixture/poollife_uap", `
package fixture

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func grab() *[]byte { return pool.Get().(*[]byte) }

func UseAfterPut() int {
	buf := grab()
	pool.Put(buf)
	return len(*buf)
}
`, "poollife")
	wantFindings(t, diags, "poollife")
	if !strings.Contains(diags[0].Message, "used after release") ||
		!strings.Contains(diags[0].Message, "buf") {
		t.Fatalf("want a use-after-release finding naming buf: %s", diags[0].Message)
	}
}

func TestPoolLifeFlagsDoublePutThroughWrapper(t *testing.T) {
	// recycle releases its parameter on the caller's behalf; the second
	// Put is a double release only the releases-param summary can see.
	diags := lintFixture(t, lint.Config{}, "lintfixture/poollife_double", `
package fixture

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func recycle(b *[]byte) { pool.Put(b) }

func DoublePut() {
	buf := pool.Get().(*[]byte)
	recycle(buf)
	pool.Put(buf)
}
`, "poollife")
	wantFindings(t, diags, "poollife")
	if !strings.Contains(diags[0].Message, "released twice") {
		t.Fatalf("want a double-release finding: %s", diags[0].Message)
	}
}

func TestPoolLifeAcceptsReleaseAndReturnBranch(t *testing.T) {
	// The WAL append idiom: an error branch that releases and returns
	// must not poison the fall-through path. The frame pool in
	// internal/protocol is a designated source like sync.Pool.
	diags := lintFixture(t, lint.Config{}, "lintfixture/poollife_branch", `
package fixture

import "kstreams/internal/protocol"

func Encode(data []byte) int {
	buf := protocol.GetFrameBuf()
	*buf = append(*buf, data...)
	if len(data) == 0 {
		protocol.PutFrameBuf(buf)
		return 0
	}
	n := len(*buf)
	protocol.PutFrameBuf(buf)
	return n
}
`, "poollife")
	wantFindings(t, diags)
}

func TestPoolLifeAcceptsDeferredPut(t *testing.T) {
	// defer Put is the normal pattern: every use in the body happens
	// before the deferred release runs.
	diags := lintFixture(t, lint.Config{}, "lintfixture/poollife_defer", `
package fixture

import "sync"

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

func WithDefer(data []byte) int {
	buf := pool.Get().(*[]byte)
	defer pool.Put(buf)
	*buf = append(*buf, data...)
	return len(*buf)
}
`, "poollife")
	wantFindings(t, diags)
}

// --- zerocopy ---

func TestZeroCopyFlagsRetentionInGlobal(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/zerocopy_retain", `
package fixture

import "kstreams/internal/protocol"

var stash []protocol.Record

func Retain(frame []byte) {
	b, _, _ := protocol.DecodeBatchShared(frame)
	stash = b.Records
}
`, "zerocopy")
	wantFindings(t, diags, "zerocopy")
	if !strings.Contains(diags[0].Message, "protocol.DecodeBatchShared result") ||
		!strings.Contains(diags[0].Message, "retained in package-level var stash") {
		t.Fatalf("finding should carry provenance and the retention target: %s", diags[0].Message)
	}
}

func TestZeroCopyFlagsMutationThroughView(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/zerocopy_mutate", `
package fixture

import "kstreams/internal/protocol"

func Patch(frame []byte) {
	b, _, _ := protocol.DecodeBatchShared(frame)
	v := b.Records[0].Value
	v[0] ^= 1
}
`, "zerocopy")
	wantFindings(t, diags, "zerocopy")
	if !strings.Contains(diags[0].Message, "mutated through an aliasing view") {
		t.Fatalf("want a mutation finding: %s", diags[0].Message)
	}
}

func TestZeroCopyFlagsRetentionThroughHelper(t *testing.T) {
	// hold stores its parameter into a package-level slice; the caller's
	// finding flows through the retains-parameter summary.
	diags := lintFixture(t, lint.Config{}, "lintfixture/zerocopy_helper", `
package fixture

import "kstreams/internal/protocol"

var keep [][]byte

func hold(p []byte) { keep = append(keep, p) }

func Stash(frame []byte) {
	b, _, _ := protocol.DecodeBatchShared(frame)
	hold(b.Records[0].Value)
}
`, "zerocopy")
	wantFindings(t, diags, "zerocopy")
	if !strings.Contains(diags[0].Message, "hold, which leaves it retained in package-level var keep") {
		t.Fatalf("finding should name the retaining helper and its sink: %s", diags[0].Message)
	}
}

func TestZeroCopyAcceptsClone(t *testing.T) {
	// Record.Clone is the sanctioned escape hatch: a deep copy owns its
	// bytes, so retaining it is fine.
	diags := lintFixture(t, lint.Config{}, "lintfixture/zerocopy_clone", `
package fixture

import "kstreams/internal/protocol"

var kept []byte

func CloneThenKeep(frame []byte) {
	b, _, _ := protocol.DecodeBatchShared(frame)
	r := b.Records[0].Clone()
	kept = r.Value
}
`, "zerocopy")
	wantFindings(t, diags)
}

func TestZeroCopyAcceptsLocalUseAndStringCopy(t *testing.T) {
	// Reading the view inside the borrow and converting to string (which
	// copies) both honor the ownership contract.
	diags := lintFixture(t, lint.Config{}, "lintfixture/zerocopy_local", `
package fixture

import "kstreams/internal/protocol"

var name string

func Inspect(frame []byte) int {
	b, _, _ := protocol.DecodeBatchShared(frame)
	name = string(b.Records[0].Key)
	n := 0
	for _, r := range b.Records {
		n += len(r.Value)
	}
	return n
}
`, "zerocopy")
	wantFindings(t, diags)
}

// --- atomicmix ---

func TestAtomicMixFlagsPlainReadOfAtomicField(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/atomicmix_field", `
package fixture

import "sync/atomic"

type counter struct{ n int64 }

func (c *counter) Inc() { atomic.AddInt64(&c.n, 1) }

func (c *counter) Read() int64 { return c.n }
`, "atomicmix")
	wantFindings(t, diags, "atomicmix")
	if !strings.Contains(diags[0].Message, "plain access to n") ||
		!strings.Contains(diags[0].Message, "data race") {
		t.Fatalf("want a plain-access finding on field n: %s", diags[0].Message)
	}
}

func TestAtomicMixFlagsPlainWriteOfAtomicGlobal(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/atomicmix_global", `
package fixture

import "sync/atomic"

var hits int64

func Bump() { atomic.AddInt64(&hits, 1) }

func Reset() { hits = 0 }
`, "atomicmix")
	wantFindings(t, diags, "atomicmix")
	if !strings.Contains(diags[0].Message, "plain access to hits") {
		t.Fatalf("want a plain-access finding on hits: %s", diags[0].Message)
	}
}

func TestAtomicMixAcceptsConstructorAndCompositeLit(t *testing.T) {
	// Initialization before the value is shared is not a race: composite
	// literal keys and constructor bodies are exempt.
	diags := lintFixture(t, lint.Config{}, "lintfixture/atomicmix_init", `
package fixture

import "sync/atomic"

type gauge struct{ v int64 }

func (g *gauge) Set(x int64) { atomic.StoreInt64(&g.v, x) }

func NewGauge(x int64) *gauge {
	g := &gauge{}
	g.v = x
	return g
}

func fresh(x int64) *gauge { return &gauge{v: x} }
`, "atomicmix")
	wantFindings(t, diags)
}

func TestAtomicMixAcceptsConsistentAndTypedAtomics(t *testing.T) {
	// A var accessed atomically everywhere is fine, and typed atomics
	// (atomic.Int64) are out of scope: the type system already forbids
	// plain access.
	diags := lintFixture(t, lint.Config{}, "lintfixture/atomicmix_ok", `
package fixture

import "sync/atomic"

var total int64

var typed atomic.Int64

func Add(d int64) { atomic.AddInt64(&total, d) }

func Get() int64 { return atomic.LoadInt64(&total) }

func TypedBump() { typed.Store(typed.Load() + 1) }
`, "atomicmix")
	wantFindings(t, diags)
}

// --- hotalloc ---

func TestHotAllocFlagsFmtThroughHelper(t *testing.T) {
	// render is hot only by reachability from the annotated root; the
	// finding must spell out the chain.
	diags := lintFixture(t, lint.Config{}, "lintfixture/hotalloc_fmt", `
package fixture

import "fmt"

//kslint:hotpath
func Process(n int) string { return render(n) }

func render(n int) string { return fmt.Sprintf("record %d", n) }
`, "hotalloc")
	wantFindings(t, diags, "hotalloc")
	msg := diags[0].Message
	if !strings.Contains(msg, "fmt.Sprintf") || !strings.Contains(msg, "hot via") ||
		!strings.Contains(msg, "Process") || !strings.Contains(msg, "render") {
		t.Fatalf("want a fmt finding carrying the hot chain: %s", msg)
	}
}

func TestHotAllocFlagsGrowAppendAndConversion(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/hotalloc_grow", `
package fixture

//kslint:hotpath
func Gather(keys []string) [][]byte {
	var out [][]byte
	for _, k := range keys {
		out = append(out, []byte(k))
	}
	return out
}
`, "hotalloc")
	wantFindings(t, diags, "hotalloc", "hotalloc")
	if !strings.Contains(diags[0].Message, "grow-append to out") {
		t.Fatalf("want a grow-append finding: %s", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "conversion in a loop") {
		t.Fatalf("want a per-iteration conversion finding: %s", diags[1].Message)
	}
}

func TestHotAllocFlagsInterfaceBoxing(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/hotalloc_box", `
package fixture

type payload struct{ a int64 }

func sink(v any) {}

//kslint:hotpath
func Emit(p payload) { sink(p) }
`, "hotalloc")
	wantFindings(t, diags, "hotalloc")
	if !strings.Contains(diags[0].Message, "boxes a") ||
		!strings.Contains(diags[0].Message, "payload") ||
		!strings.Contains(diags[0].Message, "sink") {
		t.Fatalf("want a boxing finding naming the type and callee: %s", diags[0].Message)
	}
}

func TestHotAllocAcceptsColdpathSeam(t *testing.T) {
	// A coldpath helper is the sanctioned place for error formatting:
	// reachability stops at the seam.
	diags := lintFixture(t, lint.Config{}, "lintfixture/hotalloc_cold", `
package fixture

import "fmt"

//kslint:hotpath
func Handle(n int) error {
	if n < 0 {
		return fail(n)
	}
	return nil
}

//kslint:coldpath error formatting runs only on the failure path
func fail(n int) error { return fmt.Errorf("bad record %d", n) }
`, "hotalloc")
	wantFindings(t, diags)
}

func TestHotAllocAcceptsPreallocAndUnreachable(t *testing.T) {
	// Preallocated appends and parameter-owned append targets are exempt,
	// and a fmt call in a function no root reaches is not hot at all.
	diags := lintFixture(t, lint.Config{}, "lintfixture/hotalloc_ok", `
package fixture

import "fmt"

//kslint:hotpath
func Copy(keys []string) []string {
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}

//kslint:hotpath
func Fill(dst []byte, src []byte) []byte {
	for _, b := range src {
		dst = append(dst, b)
	}
	return dst
}

func debugDump(keys []string) string { return fmt.Sprint(keys) }
`, "hotalloc")
	wantFindings(t, diags)
}

// --- determinism and JSON across the four rules ---

// memsafetyDeterminismSrc triggers each of the four rules exactly once.
const memsafetyDeterminismSrc = `
package fixture

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kstreams/internal/protocol"
)

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var stash []protocol.Record

var flags int64

func PoolBug() int {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	return len(*buf)
}

func Retain(frame []byte) {
	b, _, _ := protocol.DecodeBatchShared(frame)
	stash = b.Records
}

func Flag() { atomic.StoreInt64(&flags, 1) }

func Peek() int64 { return flags }

//kslint:hotpath
func Hot(n int) string { return fmt.Sprintf("%d", n) }
`

var memsafetyRules = []string{"poollife", "zerocopy", "atomicmix", "hotalloc"}

func TestMemSafetyDeterministicOutput(t *testing.T) {
	// Same loaded package, fresh analyzer instances each run (Finalizer
	// state must not leak), byte-identical renderings.
	ldr := testLoader(t)
	pkg, err := ldr.LoadFixture("lintfixture/memsafety_det",
		map[string]string{"fixture.go": memsafetyDeterminismSrc})
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	run := func() []lint.Diagnostic {
		return lint.LintPackage(ldr, pkg, lint.Config{}, pickAnalyzers(ldr, memsafetyRules))
	}
	first := run()
	wantFindings(t, first, "poollife", "zerocopy", "atomicmix", "hotalloc")
	for i := 0; i < 3; i++ {
		if got := render(run()); got != render(first) {
			t.Fatalf("memory-safety rules are not deterministic:\n--- first ---\n%s--- run %d ---\n%s",
				render(first), i+2, got)
		}
	}
}

func TestMemSafetyJSONRoundTrip(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/memsafety_json",
		memsafetyDeterminismSrc, memsafetyRules...)
	wantFindings(t, diags, "poollife", "zerocopy", "atomicmix", "hotalloc")

	data, err := lint.ToJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []lint.JSONDiagnostic
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("kslint -json output must be parseable: %v", err)
	}
	want := make([]lint.JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		want = append(want, lint.JSONDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	if !reflect.DeepEqual(decoded, want) {
		t.Fatalf("round-trip mismatch:\ngot  %#v\nwant %#v", decoded, want)
	}
}

func TestMemSafetySuppressions(t *testing.T) {
	// Line ignores with a reason silence exactly the named rule — the
	// policy the module-wide cleanup relies on.
	diags := lintFixture(t, lint.Config{}, "lintfixture/memsafety_suppress", `
package fixture

import "sync/atomic"

var hits int64

func Bump() { atomic.AddInt64(&hits, 1) }

func Reset() {
	//kslint:ignore atomicmix reset runs only between test iterations, never concurrently
	hits = 0
}
`, "atomicmix")
	wantFindings(t, diags)
}
