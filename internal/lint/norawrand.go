package lint

import "go/ast"

// noRawRand flags global math/rand (and math/rand/v2) package functions
// in production code. The global source is shared mutable state: two
// goroutines interleaving draws make workload generation and jitter
// schedules depend on scheduling, so experiment runs stop being
// reproducible under a fixed seed. Constructors (New, NewSource, NewZipf,
// NewPCG, ...) and methods on a seeded *rand.Rand are fine — that is the
// required pattern.
type noRawRand struct{}

func (noRawRand) Name() string { return "norawrand" }
func (noRawRand) Doc() string {
	return "no global math/rand functions in production code; draw from a seeded *rand.Rand"
}

// globalRandFuncs are the package-level functions that consume the shared
// global source. Constructors are deliberately absent.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func (noRawRand) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if (path == "math/rand" || path == "math/rand/v2") &&
				signature(fn).Recv() == nil && globalRandFuncs[fn.Name()] {
				p.Reportf(call.Pos(), "norawrand",
					"global %s.%s draws from the shared source: use a seeded *rand.Rand so runs are reproducible", path, fn.Name())
			}
			return true
		})
	}
}
