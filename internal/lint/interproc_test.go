package lint_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"kstreams/internal/lint"
)

// --- wallclock ---

func TestWallClockFlagsTaintedClosure(t *testing.T) {
	// stamp reads the wall clock directly; Outer reaches it only through
	// the helper, and Deep only through a two-hop chain. All three are
	// tainted, each with its own witness path.
	diags := lintFixture(t, lint.Config{}, "lintfixture/wallclock_tp", `
package fixture

import "time"

func Outer() time.Time { return stamp() }

func Deep() time.Time { return stamp2() }

func stamp() time.Time { return time.Now() }

func stamp2() time.Time { return stamp() }
`, "wallclock")
	wantFindings(t, diags, "wallclock", "wallclock", "wallclock", "wallclock")
	// Findings are position-sorted: Outer (line 6), Deep (8), stamp (10),
	// stamp2 (12). Outer's witness must spell out the chain into stamp.
	if !strings.Contains(diags[0].Message, "Outer") ||
		!strings.Contains(diags[0].Message, "stamp") ||
		!strings.Contains(diags[0].Message, "time.Now") {
		t.Fatalf("Outer's finding should carry the witness chain to time.Now: %s", diags[0].Message)
	}
	// Deep's chain has two hops: Deep → stamp2 → stamp → time.Now.
	if !strings.Contains(diags[1].Message, "stamp2") || !strings.Contains(diags[1].Message, "time.Now") {
		t.Fatalf("Deep's finding should walk through stamp2: %s", diags[1].Message)
	}
}

func TestWallClockFlagsTickerHelper(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/wallclock_ticker", `
package fixture

import "time"

func RunLoop(stop chan struct{}) {
	t := newTicker()
	defer t.Stop()
	select {
	case <-stop:
	case <-t.C:
	}
}

func newTicker() *time.Ticker { return time.NewTicker(time.Millisecond) }
`, "wallclock")
	wantFindings(t, diags, "wallclock", "wallclock")
	if !strings.Contains(diags[0].Message, "time.NewTicker") {
		t.Fatalf("witness should end at time.NewTicker: %s", diags[0].Message)
	}
}

func TestWallClockAcceptsSeams(t *testing.T) {
	// Time through retry.Clock (injected or the package-level Wall) and
	// through obs instruments is the sanctioned pattern: both seams block
	// the taint walk, even though their implementations read the wall
	// clock internally.
	diags := lintFixture(t, lint.Config{}, "lintfixture/wallclock_ok", `
package fixture

import (
	"time"

	"kstreams/internal/obs"
	"kstreams/internal/retry"
)

func Pace(c retry.Clock, d time.Duration) { c.Sleep(d) }

func PaceWall(d time.Duration) { retry.Wall.Sleep(d) }

func Observe(h *obs.Histogram, start time.Time) { h.ObserveSince(start) }

func Deadline(c retry.Clock, d time.Duration) time.Time { return c.Now().Add(d) }
`, "wallclock")
	wantFindings(t, diags)
}

func TestWallClockIgnoresPureDurationMath(t *testing.T) {
	// Duration arithmetic and formatting never touch the clock; only the
	// reading/waiting functions are wall taints.
	diags := lintFixture(t, lint.Config{}, "lintfixture/wallclock_pure", `
package fixture

import "time"

func Budget(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func Render(d time.Duration) string { return d.Round(time.Millisecond).String() }
`, "wallclock")
	wantFindings(t, diags)
}

func TestWallClockThroughInterfaceDispatch(t *testing.T) {
	// The production function lives in a package that never imports time;
	// the only path to the wall clock runs through an interface method
	// whose implementation is in a different package. The ImplCall edges
	// make the taint visible anyway.
	ldr := testLoader(t)
	api, err := ldr.LoadFixture("lintfixture/iface_api", map[string]string{"fixture.go": `
package fixture

type Ticker interface {
	Tick()
}

func Drive(t Ticker) { t.Tick() }
`})
	if err != nil {
		t.Fatal(err)
	}
	impl, err := ldr.LoadFixture("lintfixture/iface_impl", map[string]string{"fixture.go": `
package fixture

import "time"

type WallTicker struct{}

func (WallTicker) Tick() { time.Sleep(time.Millisecond) }
`})
	if err != nil {
		t.Fatal(err)
	}
	mod := &lint.Module{Root: ldr.Root(), Path: ldr.ModulePath(), Fset: ldr.Fset(), Pkgs: []*lint.Package{api, impl}}
	diags := lint.RunAnalyzers(mod, lint.Config{}, pickAnalyzers(ldr, []string{"wallclock"}))
	// Two findings, file-sorted: Drive (via dispatch) and the impl itself.
	wantFindings(t, diags, "wallclock", "wallclock")
	if !strings.Contains(diags[0].Pos.Filename, "iface_api") {
		t.Fatalf("the interface caller should be flagged: %s", render(diags))
	}
	if !strings.Contains(diags[0].Message, "Drive") ||
		!strings.Contains(diags[0].Message, "WallTicker.Tick") ||
		!strings.Contains(diags[0].Message, "time.Sleep") {
		t.Fatalf("witness should cross the dispatch into the implementing package: %s", diags[0].Message)
	}
}

// --- lockorder ---

func TestLockOrderSeededCycle(t *testing.T) {
	// The canonical two-mutex deadlock: AB holds A.mu while (through a
	// helper) taking B.mu, BA nests them the other way round. One finding,
	// with the full witness for both edges of the cycle.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockorder_tp", `
package fixture

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockB(b)
}

func lockB(b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
`, "lockorder")
	wantFindings(t, diags, "lockorder")
	msg := diags[0].Message
	if !strings.Contains(msg, "potential deadlock: lock-order cycle fixture.A.mu → fixture.B.mu → fixture.A.mu") {
		t.Fatalf("cycle rendering: %s", msg)
	}
	// The A→B edge is witnessed through the call chain AB → lockB; the
	// B→A edge directly inside BA. Both carry the acquire position.
	if !strings.Contains(msg, "AB → lintfixture/lockorder_tp.lockB (Lock at ") {
		t.Fatalf("A→B witness should walk through the helper: %s", msg)
	}
	if !strings.Contains(msg, ".BA (Lock at ") {
		t.Fatalf("B→A witness should name BA and the Lock site: %s", msg)
	}
}

func TestLockOrderCrossFunctionClosureCycle(t *testing.T) {
	// Neither function nests the second lock syntactically: each acquires
	// one class and calls a helper whose closure takes the other. Only the
	// may-acquire fixpoint over the call graph sees the cycle.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockorder_deep", `
package fixture

import "sync"

type Reg struct{ mu sync.Mutex }

type Store struct{ mu sync.Mutex }

func (r *Reg) Update(s *Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	touchStore(s)
}

func touchStore(s *Store) { viaStore(s) }

func viaStore(s *Store) {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (s *Store) Flush(r *Reg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	touchReg(r)
}

func touchReg(r *Reg) {
	r.mu.Lock()
	defer r.mu.Unlock()
}
`, "lockorder")
	wantFindings(t, diags, "lockorder")
	msg := diags[0].Message
	if !strings.Contains(msg, "fixture.Reg.mu") || !strings.Contains(msg, "fixture.Store.mu") {
		t.Fatalf("cycle should span both classes: %s", msg)
	}
	if !strings.Contains(msg, "touchStore → lintfixture/lockorder_deep.viaStore") {
		t.Fatalf("witness should spell the full two-hop chain: %s", msg)
	}
}

func TestLockOrderConsistentOrderIsClean(t *testing.T) {
	// Everyone takes A before B: a populated order graph with no cycle.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockorder_ok", `
package fixture

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func One(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

func Two(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
}
`, "lockorder")
	wantFindings(t, diags)
}

func TestLockOrderInstanceAndSequentialNearMisses(t *testing.T) {
	// Shift nests two instances of the same class — an ordering question
	// about instances, which the class abstraction cannot decide, so the
	// self-edge is skipped. Seq takes B then A but releases B first, so
	// there is no held-across pair and no B→A edge despite One's A→B.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockorder_near", `
package fixture

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func One(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func Shift(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func Seq(a *A, b *B) {
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}
`, "lockorder")
	wantFindings(t, diags)
}

// --- lockbalance ---

func TestLockBalanceFlagsLeakedLocks(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockbalance_tp", `
package fixture

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) Leak() {
	s.mu.Lock()
}

func (s *S) EarlyReturn(cond bool) {
	s.mu.Lock()
	if cond {
		return
	}
	s.mu.Unlock()
}
`, "lockbalance")
	wantFindings(t, diags, "lockbalance", "lockbalance")
	if !strings.Contains(diags[0].Message, "s.mu is still held at function exit") {
		t.Fatalf("message should name the leaked lock: %s", diags[0].Message)
	}
	if diags[1].Pos.Line != 15 {
		t.Fatalf("EarlyReturn leak should be reported at the return (line 15), got line %d\n%s",
			diags[1].Pos.Line, render(diags))
	}
}

func TestLockBalanceNearMisses(t *testing.T) {
	// defer covers every later exit; a branch that unlocks before its
	// return is balanced; a return placed before the Lock is trivially
	// clean; a terminating panic branch never exits normally.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockbalance_ok", `
package fixture

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) DeferOK(cond bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cond {
		return
	}
}

func (s *S) BranchOK(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

func (s *S) GuardOK(cond bool) {
	if cond {
		return
	}
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) PanicOK(cond bool) {
	s.mu.Lock()
	if cond {
		panic("invariant")
	}
	s.mu.Unlock()
}
`, "lockbalance")
	wantFindings(t, diags)
}

// --- txnproto ---

func TestTxnProtoFlagsOutOfOrderSteps(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/txnproto_tp", `
package fixture

import (
	"kstreams/internal/client"
	"kstreams/internal/protocol"
	"kstreams/internal/transport"
)

func DoubleBegin(p *client.Producer) {
	_ = p.BeginTxn()
	_ = p.BeginTxn()
}

func OffsetsAfterCommit(p *client.Producer, offs []protocol.OffsetEntry) {
	_ = p.BeginTxn()
	_ = p.CommitTxn()
	_ = p.SendOffsetsToTxn("g", offs, "m", 1)
}

func CommitFresh(net *transport.Network) {
	p, err := client.NewProducer(net, client.ProducerConfig{})
	if err != nil {
		return
	}
	_ = p.CommitTxn()
}
`, "txnproto")
	wantFindings(t, diags, "txnproto", "txnproto", "txnproto")
	if !strings.Contains(diags[0].Message, "step begin: BeginTxn on p while a transaction is already open") {
		t.Fatalf("double begin: %s", diags[0].Message)
	}
	if !strings.Contains(diags[1].Message, "step offsets: SendOffsetsToTxn on p outside an open transaction") {
		t.Fatalf("offsets after commit: %s", diags[1].Message)
	}
	if !strings.Contains(diags[2].Message, "step commit: CommitTxn on p with no open transaction") {
		t.Fatalf("commit on fresh producer: %s", diags[2].Message)
	}
}

func TestTxnProtoFlagsLeakedOpenTxn(t *testing.T) {
	// An error return between BeginTxn and CommitTxn leaves the
	// transaction open; nothing in this fixture module ever aborts, so the
	// escape check fires at the leaking return.
	diags := lintFixture(t, lint.Config{}, "lintfixture/txnproto_leak", `
package fixture

import "kstreams/internal/client"

func work() error { return nil }

func Leak(p *client.Producer) error {
	if err := p.BeginTxn(); err != nil {
		return err
	}
	if err := work(); err != nil {
		return err
	}
	return p.CommitTxn()
}
`, "txnproto")
	wantFindings(t, diags, "txnproto")
	if !strings.Contains(diags[0].Message, "step abort: error path returns with the transaction on p still open") {
		t.Fatalf("leak message: %s", diags[0].Message)
	}
	if diags[0].Pos.Line != 13 {
		t.Fatalf("leak should be reported at the escaping return (line 13), got %d\n%s",
			diags[0].Pos.Line, render(diags))
	}
}

func TestTxnProtoAcceptsProtocolShapes(t *testing.T) {
	// The idiomatic commit cycle: abort on the offsets and commit failure
	// paths (a failed CommitTxn leaves the txn open, so AbortTxn there is
	// legal), and a begin failure opens nothing.
	diags := lintFixture(t, lint.Config{}, "lintfixture/txnproto_ok", `
package fixture

import (
	"kstreams/internal/client"
	"kstreams/internal/protocol"
)

func Cycle(p *client.Producer, offs []protocol.OffsetEntry) error {
	if err := p.BeginTxn(); err != nil {
		return err
	}
	if err := p.SendOffsetsToTxn("g", offs, "m", 1); err != nil {
		_ = p.AbortTxn()
		return err
	}
	if err := p.CommitTxn(); err != nil {
		_ = p.AbortTxn()
		return err
	}
	return nil
}
`, "txnproto")
	wantFindings(t, diags)
}

func TestTxnProtoAcceptsDeferredAbortAndCallerCleanup(t *testing.T) {
	// DeferAbort covers its error exits with a deferred AbortTxn; attempt
	// returns with the txn open but its only caller aborts on failure, so
	// abort is reachable and neither function is flagged.
	diags := lintFixture(t, lint.Config{}, "lintfixture/txnproto_defer", `
package fixture

import "kstreams/internal/client"

func work() error { return nil }

func DeferAbort(p *client.Producer) error {
	if err := p.BeginTxn(); err != nil {
		return err
	}
	defer p.AbortTxn() //kslint:ignore errdrop abort on the way out is best-effort
	if err := work(); err != nil {
		return err
	}
	return p.CommitTxn()
}

func attempt(p *client.Producer) error {
	if err := p.BeginTxn(); err != nil {
		return err
	}
	return work()
}

func Drive(p *client.Producer) error {
	if err := attempt(p); err != nil {
		_ = p.AbortTxn()
		return err
	}
	return p.CommitTxn()
}
`, "txnproto")
	wantFindings(t, diags)
}

// --- output stability, JSON, file-ignore ---

// TestDeterministicOutput runs the full rule set repeatedly over one
// fixture module that triggers the map-heavy analyses (lock-order SCCs,
// txn states, call-graph walks) and requires byte-identical renderings —
// the property `make lint` diffs in CI depend on.
func TestDeterministicOutput(t *testing.T) {
	ldr := testLoader(t)
	pkg, err := ldr.LoadFixture("lintfixture/determinism", map[string]string{"fixture.go": `
package fixture

import (
	"sync"
	"time"

	"kstreams/internal/client"
)

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

func AB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func BA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

func Stamp() time.Time { return helper() }

func helper() time.Time { return time.Now() }

func Double(p *client.Producer) {
	_ = p.BeginTxn()
	_ = p.BeginTxn()
}

func Leak(s *A) {
	s.mu.Lock()
}
`})
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 4; i++ {
		// Fresh analyzer instances each round: the stateful rules
		// (lockorder summaries, txnproto caches) must not leak state, and
		// map iteration anywhere in the pipeline must not leak order.
		diags := lint.LintPackage(ldr, pkg, lint.Config{}, pickAnalyzers(ldr, nil))
		if len(diags) == 0 {
			t.Fatal("determinism fixture should produce findings")
		}
		out := render(diags)
		if i == 0 {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("run %d differs from run 0:\n--- run 0 ---\n%s--- run %d ---\n%s", i, first, i, out)
		}
	}
}

// TestRunByteIdentical runs the real lint.Run entry point twice over the
// whole module — with an empty config, so the allowlisted packages
// produce genuine findings — and requires the two outputs to be
// byte-for-byte equal, including every witness path rendered from the
// call graph.
func TestRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two whole-module type-checks are slow")
	}
	run := func() string {
		diags, err := lint.Run("../..", lint.Config{}, nil)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if len(diags) == 0 {
			t.Fatal("an empty config over the module should surface the allowlisted findings")
		}
		return render(diags)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("lint.Run output is not stable across runs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/json_rt", `
package fixture

import "time"

func wait() { time.Sleep(time.Millisecond) }
`, "nosleep")
	wantFindings(t, diags, "nosleep")

	data, err := lint.ToJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []lint.JSONDiagnostic
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("kslint -json output must be parseable: %v", err)
	}
	want := make([]lint.JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		want = append(want, lint.JSONDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	if !reflect.DeepEqual(decoded, want) {
		t.Fatalf("round-trip mismatch:\ngot  %#v\nwant %#v", decoded, want)
	}

	// No findings renders as an empty array, not null.
	empty, err := lint.ToJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(empty)) != "[]" {
		t.Fatalf("empty diagnostics must render as []: %q", empty)
	}
}

func TestFileIgnoreScopesByRule(t *testing.T) {
	// file-ignore suppresses the named rule everywhere in the file but
	// leaves other rules running: the sleeps are forgiven, the tainted
	// closures are not.
	diags := lintFixture(t, lint.Config{}, "lintfixture/fileignore", `
package fixture

//kslint:file-ignore nosleep this file is a timing shim by design

import "time"

func a() { time.Sleep(time.Millisecond) }

func b() { time.Sleep(time.Millisecond) }
`, "nosleep", "wallclock")
	wantFindings(t, diags, "wallclock", "wallclock")
}

func TestFileIgnoreAll(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/fileignore_all", `
package fixture

//kslint:file-ignore all generated demo file

import "time"

func a() { time.Sleep(time.Millisecond) }
`, "nosleep", "wallclock")
	wantFindings(t, diags)
}
