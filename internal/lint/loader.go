package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test view of a module package: the
// unit analyzers run over. Dir is module-relative ("" for the root
// package) so diagnostic positions are stable across machines.
type Package struct {
	Dir   string
	Path  string
	Pkg   *types.Package
	Info  *types.Info
	Files []*ast.File
	// Funcs indexes every declared function and method to its syntax —
	// the per-package summary the interprocedural layer (callgraph.go)
	// builds its nodes from.
	Funcs      map[*types.Func]*ast.FuncDecl
	suppress   map[string]map[int][]string // rel file -> line -> suppressed rules
	fileIgnore map[string][]string         // rel file -> rules ignored for the whole file
}

// Module is the loaded view of the whole repository.
type Module struct {
	Root string // absolute filesystem root (dir holding go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // stable order by Dir
}

// Loader parses and type-checks module packages using only the standard
// library: module-internal imports are resolved recursively against the
// repository tree and everything else goes through the source importer
// (stdlib from $GOROOT/src), so kslint needs no x/tools dependency and
// no pre-built export data.
type Loader struct {
	root    string
	module  string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader opens the module rooted at root (the directory containing
// go.mod) and prepares a shared type-checking cache.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		root:    abs,
		module:  mod,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.module }

// Fset returns the shared file set (positions are module-relative).
func (l *Loader) Fset() *token.FileSet { return l.fset }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// repository tree, everything else delegates to the stdlib source
// importer.
func (l *Loader) Import(importPath string) (*types.Package, error) {
	if importPath != l.module && !strings.HasPrefix(importPath, l.module+"/") {
		return l.std.Import(importPath)
	}
	pkg, err := l.load(importPath)
	if err != nil {
		return nil, err
	}
	return pkg.Pkg, nil
}

// dirFor maps an import path to its module-relative directory.
func (l *Loader) dirFor(importPath string) string {
	return strings.TrimPrefix(strings.TrimPrefix(importPath, l.module), "/")
}

// load type-checks one module package (non-test files only), memoized.
func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.cache[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	rel := l.dirFor(importPath)
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	sources := make(map[string][]byte)
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sources[path.Join(rel, name)] = data
	}
	pkg, err := l.check(importPath, rel, sources)
	if err != nil {
		return nil, err
	}
	l.cache[importPath] = pkg
	return pkg, nil
}

// check parses and type-checks one package from in-memory sources keyed
// by module-relative filename. It is shared by the on-disk loader and the
// test-fixture loader.
func (l *Loader) check(importPath, rel string, sources map[string][]byte) (*Package, error) {
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	suppress := make(map[string]map[int][]string)
	fileIgnore := make(map[string][]string)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		if s := suppressions(l.fset, f); len(s) > 0 {
			suppress[name] = s
		}
		if rules := fileIgnores(f); len(rules) > 0 {
			fileIgnore[name] = rules
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	funcs := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				funcs[fn] = fd
			}
		}
	}
	return &Package{
		Dir: rel, Path: importPath, Pkg: tpkg, Info: info, Files: files,
		Funcs: funcs, suppress: suppress, fileIgnore: fileIgnore,
	}, nil
}

// LoadFixture type-checks in-memory sources as the package at dirRel
// (which need not exist on disk); imports of module packages resolve
// against the real tree. Used by analyzer tests.
func (l *Loader) LoadFixture(dirRel string, files map[string]string) (*Package, error) {
	sources := make(map[string][]byte, len(files))
	for name, src := range files {
		sources[path.Join(dirRel, name)] = []byte(src)
	}
	return l.check(path.Join(l.module, dirRel), dirRel, sources)
}

// LoadAll discovers every package directory under the module root and
// loads each one, returning them in stable Dir order.
func (l *Loader) LoadAll() (*Module, error) {
	var dirs []string
	err := filepath.WalkDir(l.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			rel, err := filepath.Rel(l.root, filepath.Dir(p))
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	dirs = dedupe(dirs)
	mod := &Module{Root: l.root, Path: l.module, Fset: l.fset}
	for _, rel := range dirs {
		importPath := l.module
		if rel != "" {
			importPath = path.Join(l.module, rel)
		}
		pkg, err := l.load(importPath)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || sorted[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
