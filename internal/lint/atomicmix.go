package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// atomicMix enforces all-or-nothing atomicity per variable: any struct
// field or package-level variable that is accessed through sync/atomic
// anywhere in the module must be accessed atomically everywhere. A plain
// read racing an atomic store is just as much a data race as two plain
// accesses — the atomic call on one side buys nothing — and it is the
// easiest regression to introduce: the field looks like an ordinary
// int64, so a new code path reads it directly and the race detector only
// catches it if a test happens to exercise both sides concurrently.
//
// Phase 1 (per-package Run) takes a module-wide census: every
// sync/atomic.{Add,Load,Store,Swap,CompareAndSwap}* call whose address
// argument is `&x` or `&s.f` marks the *types.Var behind it as
// atomic-class. Typed atomics (atomic.Int64 and friends) are ignored —
// the type system already prevents plain access. Locals are ignored:
// a local only races if it escapes, and then it is a field or global at
// the point of sharing.
//
// Phase 2 (Finalize) rescans every file for plain uses of censused
// variables. Exempt: the atomic-call operands themselves, composite-lit
// field keys (initialization before the value is shared), and accesses
// inside constructors (functions named New*/new*/init) for the same
// reason. Findings point at the plain access, naming the first atomic
// use so the reader can see both sides of the race.
type atomicMix struct {
	module string
	fset   *token.FileSet
	pkgs   []*Package
}

func newAtomicMix(module string) *atomicMix { return &atomicMix{module: module} }

func (*atomicMix) Name() string { return "atomicmix" }
func (*atomicMix) Doc() string {
	return "a field accessed via sync/atomic anywhere must be accessed atomically everywhere (module-wide census)"
}

// Run only accumulates packages; the analysis is module-wide.
func (a *atomicMix) Run(p *Pass) {
	a.fset = p.Fset
	a.pkgs = append(a.pkgs, p.Pkg)
}

// atomicCallVar resolves a sync/atomic call to the variable its address
// argument points at, or nil. ident is the operand identifier to exempt
// from the plain-access scan (the field selector or the bare name).
func atomicCallVar(info *types.Info, call *ast.CallExpr) (*types.Var, *ast.Ident) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, nil
	}
	if sig := signature(fn); sig != nil && sig.Recv() != nil {
		return nil, nil // typed atomics police themselves
	}
	name := fn.Name()
	if !strings.HasPrefix(name, "Add") && !strings.HasPrefix(name, "Load") &&
		!strings.HasPrefix(name, "Store") && !strings.HasPrefix(name, "Swap") &&
		!strings.HasPrefix(name, "CompareAndSwap") {
		return nil, nil
	}
	if len(call.Args) == 0 {
		return nil, nil
	}
	addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, nil
	}
	switch operand := ast.Unparen(addr.X).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[operand.Sel].(*types.Var); ok {
			return v, operand.Sel
		}
	case *ast.Ident:
		if v, ok := info.Uses[operand].(*types.Var); ok {
			return v, operand
		}
	}
	return nil, nil
}

// tracked reports whether v is in scope for the census: a struct field,
// or a package-level variable. Locals are excluded.
func trackedAtomicVar(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func constructorExempt(fd *ast.FuncDecl) bool {
	n := fd.Name.Name
	return n == "init" || strings.HasPrefix(n, "New") || strings.HasPrefix(n, "new")
}

func (a *atomicMix) Finalize(report func(Diagnostic)) {
	// Phase 1: census. classes maps each atomic-accessed var to its first
	// atomic-use position; exempt holds operand identifiers of atomic
	// calls and composite-literal keys, by position.
	classes := make(map[*types.Var]token.Position)
	exempt := make(map[token.Pos]bool)
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.CallExpr:
					v, id := atomicCallVar(pkg.Info, x)
					if v == nil || !trackedAtomicVar(v) {
						return true
					}
					exempt[id.Pos()] = true
					if _, have := classes[v]; !have {
						classes[v] = a.fset.Position(x.Pos())
					}
				case *ast.KeyValueExpr:
					if key, ok := x.Key.(*ast.Ident); ok {
						exempt[key.Pos()] = true
					}
				}
				return true
			})
		}
	}
	if len(classes) == 0 {
		return
	}

	// Phase 2: find plain accesses. Package-level GenDecls are
	// initialization; constructor bodies are exempt wholesale.
	var found []Diagnostic
	seen := make(map[token.Pos]bool)
	for _, pkg := range a.pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || constructorExempt(fd) {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok || exempt[id.Pos()] || seen[id.Pos()] {
						return true
					}
					v, ok := pkg.Info.Uses[id].(*types.Var)
					if !ok {
						return true
					}
					first, censused := classes[v]
					if !censused {
						return true
					}
					seen[id.Pos()] = true
					found = append(found, Diagnostic{
						Pos:  a.fset.Position(id.Pos()),
						Rule: "atomicmix",
						Message: "plain access to " + v.Name() +
							", which is accessed via sync/atomic elsewhere (first at " + first.String() +
							"): mixing atomic and plain access is a data race",
					})
					return true
				})
			}
		}
	}
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	for _, d := range found {
		report(d)
	}
}
