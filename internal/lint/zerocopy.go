package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// zeroCopy is a taint analysis over the zero-copy fetch path. The
// designated sources hand out views into long-lived shared buffers —
// protocol.DecodeBatchShared (record keys/values/headers alias the
// decoded frame) and the WAL decoded-batch cache (every reader of an
// offset gets the same *RecordBatch) — and DESIGN §10's ownership
// contract says those views are borrowed: valid only while the batch
// stays reachable, and immutable always. The rule flags the two ways the
// contract breaks:
//
//   - retention: a tainted value stored into a package-level variable, a
//     receiver field, a channel, or a spawned goroutine outlives the
//     borrow and pins (or races with) the cache's backing buffer;
//   - mutation: an element write or copy into tainted bytes scribbles on
//     memory shared with every other reader of the same offset.
//
// Record.Clone is the sanctioned escape hatch (a deep copy owns its
// bytes) and strips taint, as do string conversions (which copy).
//
// Two summaries propagate over the call graph so taint is seen through
// helpers: "returns shared" (a function whose result aliases a source)
// and "retains parameter i" (a function that stores its argument into a
// long-lived sink — e.g. batchCache.put). Findings carry the provenance
// chain back to the source, wallclock-style. Taint does not cross plain
// function values, channels, or the transport boundary; stores into
// local structs that later escape are likewise not tracked.
type zeroCopy struct {
	module string
	graph  *CallGraph
	sum    *zcSummaries
}

func newZeroCopy(module string) *zeroCopy { return &zeroCopy{module: module} }

func (*zeroCopy) Name() string { return "zerocopy" }
func (*zeroCopy) Doc() string {
	return "no retention or mutation of zero-copy batch views (shared decode results, WAL cache entries) outside the DESIGN §10 ownership contract"
}

// zcProv is the provenance a tainted value carries: a human-readable
// chain fragment back to the source, the source position, and — during
// the retains-summary evaluation — the parameter index the taint was
// seeded from (-1 otherwise).
type zcProv struct {
	desc  string
	pos   token.Pos
	param int
}

type zcSummaries struct {
	returnsShared map[*types.Func]zcProv
	retains       map[*types.Func]map[int]zcProv
}

// sourceCall recognizes the designated zero-copy sources.
func (z *zeroCopy) sourceCall(fn *types.Func) (string, bool) {
	switch {
	case isPkgFunc(fn, z.module+"/internal/protocol", "DecodeBatchShared"):
		return "protocol.DecodeBatchShared result", true
	case isMethod(fn, z.module+"/internal/wal", "batchCache", "get"):
		return "WAL decoded-batch cache entry", true
	}
	return "", false
}

// zcAliasType reports whether a value of type t can alias shared bytes.
// Basic types (including string: conversions copy) and function values
// cannot; error is excluded so err results don't ride the taint.
func zcAliasType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Basic, *types.Signature:
		return false
	}
	return true
}

// summaries computes (and memoizes per graph) the returns-shared and
// retains-parameter fixpoint over every declared function.
func (z *zeroCopy) summaries(g *CallGraph) *zcSummaries {
	if z.sum != nil && z.graph == g {
		return z.sum
	}
	z.graph = g
	s := &zcSummaries{
		returnsShared: make(map[*types.Func]zcProv),
		retains:       make(map[*types.Func]map[int]zcProv),
	}
	for iter, changed := 0, true; changed && iter < 8; iter++ {
		changed = false
		for _, fn := range g.Funcs() {
			node := g.Node(fn)
			if node.Decl == nil || node.Decl.Body == nil {
				continue
			}
			// Returns-shared: source taint only.
			if _, have := s.returnsShared[fn]; !have {
				e := z.newEval(node, s)
				e.propagate(node.Decl.Body)
				if pv, ok := e.returnsTainted(node.Decl.Body); ok {
					s.returnsShared[fn] = pv
					changed = true
				}
			}
			// Retains: parameter taint flowing into long-lived sinks.
			pe := z.newEval(node, s)
			if !pe.seedParams(node) {
				continue
			}
			pe.propagate(node.Decl.Body)
			pe.scanSinks(node.Decl.Body, func(pv zcProv, target string, pos token.Pos) {
				if pv.param < 0 {
					return // source-derived: reported at the package pass
				}
				if s.retains[fn] == nil {
					s.retains[fn] = make(map[int]zcProv)
				}
				if _, have := s.retains[fn][pv.param]; !have {
					s.retains[fn][pv.param] = zcProv{desc: target, pos: pos, param: -1}
					changed = true
				}
			})
		}
	}
	z.sum = s
	return s
}

func (z *zeroCopy) Run(p *Pass) {
	s := z.summaries(p.Graph)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := p.Graph.Node(fn)
			if node == nil {
				continue
			}
			e := z.newEval(node, s)
			e.propagate(fd.Body)
			if len(e.tainted) == 0 {
				continue
			}
			e.scanSinks(fd.Body, func(pv zcProv, target string, pos token.Pos) {
				p.Reportf(pos, "zerocopy",
					"zero-copy batch bytes (%s) %s: WAL-backed views are borrowed — immutable, and valid only while the batch is reachable; deep-copy (Record.Clone) first (DESIGN §10)",
					pv.desc, target)
			})
		}
	}
}

// zcEval evaluates taint for one function body.
type zcEval struct {
	z       *zeroCopy
	info    *types.Info
	sum     *zcSummaries
	tainted map[types.Object]zcProv
	recv    types.Object
}

func (z *zeroCopy) newEval(node *CGNode, s *zcSummaries) *zcEval {
	e := &zcEval{z: z, info: node.Pkg.Info, sum: s, tainted: make(map[types.Object]zcProv)}
	if r := node.Decl.Recv; r != nil && len(r.List) == 1 && len(r.List[0].Names) == 1 {
		e.recv = node.Pkg.Info.Defs[r.List[0].Names[0]]
	}
	return e
}

// seedParams taints every alias-capable parameter; reports whether any
// seed was planted.
func (e *zcEval) seedParams(node *CGNode) bool {
	sig := signature(node.Fn)
	seeded := false
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if !zcAliasType(p.Type()) {
			continue
		}
		e.tainted[p] = zcProv{desc: "parameter " + p.Name(), pos: p.Pos(), param: i}
		seeded = true
	}
	return seeded
}

// taintOf evaluates whether an expression yields a tainted value.
func (e *zcEval) taintOf(x ast.Expr) (zcProv, bool) {
	switch v := x.(type) {
	case *ast.Ident:
		obj := e.info.Uses[v]
		if obj == nil {
			obj = e.info.Defs[v]
		}
		if pv, ok := e.tainted[obj]; ok {
			return pv, true
		}
	case *ast.ParenExpr:
		return e.taintOf(v.X)
	case *ast.StarExpr:
		return e.taintOf(v.X)
	case *ast.TypeAssertExpr:
		return e.taintOf(v.X)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return e.taintOf(v.X)
		}
	case *ast.SelectorExpr:
		if !zcAliasType(e.info.TypeOf(x)) {
			return zcProv{}, false
		}
		return e.taintOf(v.X)
	case *ast.IndexExpr:
		if !zcAliasType(e.info.TypeOf(x)) {
			return zcProv{}, false
		}
		return e.taintOf(v.X)
	case *ast.SliceExpr:
		return e.taintOf(v.X)
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if pv, ok := e.taintOf(el); ok {
				return pv, true
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if _, builtin := e.info.Uses[id].(*types.Builtin); builtin {
				if id.Name == "append" {
					for _, a := range v.Args {
						if pv, ok := e.taintOf(a); ok {
							return pv, true
						}
					}
				}
				return zcProv{}, false
			}
		}
		fn := calleeFunc(e.info, v)
		if fn == nil {
			return zcProv{}, false // conversions copy or re-type; func values untracked
		}
		fn = fn.Origin()
		if fn.Name() == "Clone" {
			return zcProv{}, false // deep copy: the sanctioned escape hatch
		}
		if desc, ok := e.z.sourceCall(fn); ok {
			return zcProv{desc: desc, pos: v.Pos(), param: -1}, true
		}
		if pv, ok := e.sum.returnsShared[fn]; ok {
			return zcProv{desc: e.z.graph.displayName(fn) + " → " + pv.desc, pos: v.Pos(), param: -1}, true
		}
	}
	return zcProv{}, false
}

// taintIdent binds taint to an assignment target identifier (type-gated).
func (e *zcEval) taintIdent(x ast.Expr, pv zcProv) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := e.info.Defs[id]
	if obj == nil {
		obj = e.info.Uses[id]
	}
	if obj == nil || !zcAliasType(obj.Type()) {
		return false
	}
	if _, have := e.tainted[obj]; have {
		return false
	}
	e.tainted[obj] = pv
	return true
}

// propagate runs the flow-insensitive assignment fixpoint over body
// (closures included: they evaluate in the same frame).
func (e *zcEval) propagate(body *ast.BlockStmt) {
	for pass, changed := 0, true; changed && pass < 8; pass++ {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Rhs {
						if pv, ok := e.taintOf(x.Rhs[i]); ok && e.taintIdent(x.Lhs[i], pv) {
							changed = true
						}
					}
				} else if len(x.Rhs) == 1 {
					if pv, ok := e.taintOf(x.Rhs[0]); ok {
						for _, l := range x.Lhs {
							if e.taintIdent(l, pv) {
								changed = true
							}
						}
					}
				}
			case *ast.ValueSpec:
				if len(x.Values) == 0 {
					return true
				}
				for i, name := range x.Names {
					var rhs ast.Expr
					if len(x.Values) == len(x.Names) {
						rhs = x.Values[i]
					} else {
						rhs = x.Values[0]
					}
					if pv, ok := e.taintOf(rhs); ok && e.taintIdent(name, pv) {
						changed = true
					}
				}
			case *ast.RangeStmt:
				if pv, ok := e.taintOf(x.X); ok {
					if x.Value != nil && e.taintIdent(x.Value, pv) {
						changed = true
					}
					if x.Key != nil && e.taintIdent(x.Key, pv) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// returnsTainted reports whether body (FuncLits excluded) returns a
// tainted result.
func (e *zcEval) returnsTainted(body *ast.BlockStmt) (zcProv, bool) {
	var out zcProv
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if found {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if pv, ok := e.taintOf(r); ok {
				out, found = pv, true
				return false
			}
		}
		return true
	})
	return out, found
}

// rootObj resolves an lvalue chain (s.f[i], *p, g.m[k]) to its base
// identifier's object.
func (e *zcEval) rootObj(x ast.Expr) types.Object {
	for {
		switch v := x.(type) {
		case *ast.ParenExpr:
			x = v.X
		case *ast.SelectorExpr:
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		case *ast.SliceExpr:
			x = v.X
		case *ast.Ident:
			if o := e.info.Uses[v]; o != nil {
				return o
			}
			return e.info.Defs[v]
		default:
			return nil
		}
	}
}

func zcPkgLevel(o types.Object) bool {
	v, ok := o.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// retentionTarget classifies an assignment target as a long-lived sink.
func (e *zcEval) retentionTarget(lhs ast.Expr) (string, bool) {
	root := e.rootObj(lhs)
	if root == nil {
		return "", false
	}
	switch lhs.(type) {
	case *ast.Ident:
		if zcPkgLevel(root) {
			return "retained in package-level var " + root.Name(), true
		}
	case *ast.SelectorExpr, *ast.IndexExpr:
		if zcPkgLevel(root) {
			return "retained via package-level var " + root.Name(), true
		}
		if e.recv != nil && root == e.recv {
			return "retained in a field of receiver " + root.Name(), true
		}
	}
	return "", false
}

// mutationBase reports whether lhs writes through tainted slice/array
// bytes (v[i] = x or *p = x with a tainted base).
func (e *zcEval) mutationBase(lhs ast.Expr) (zcProv, bool) {
	switch v := lhs.(type) {
	case *ast.IndexExpr:
		switch e.info.TypeOf(v.X).Underlying().(type) {
		case *types.Slice, *types.Array:
			return e.taintOf(v.X)
		}
	case *ast.StarExpr:
		return e.taintOf(v.X)
	}
	return zcProv{}, false
}

// scanSinks reports every contract violation in body to hit.
func (e *zcEval) scanSinks(body *ast.BlockStmt, hit func(pv zcProv, target string, pos token.Pos)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					if pv, ok := e.mutationBase(x.Lhs[i]); ok {
						hit(pv, "mutated through an aliasing view", x.Lhs[i].Pos())
						continue
					}
					if pv, ok := e.taintOf(x.Rhs[i]); ok {
						if target, sink := e.retentionTarget(x.Lhs[i]); sink {
							hit(pv, target, x.Lhs[i].Pos())
						}
					}
				}
			}
		case *ast.SendStmt:
			if pv, ok := e.taintOf(x.Value); ok {
				hit(pv, "sent to a channel (escapes the borrow)", x.Pos())
			}
		case *ast.GoStmt:
			for _, a := range x.Call.Args {
				if pv, ok := e.taintOf(a); ok {
					hit(pv, "handed to a spawned goroutine", x.Pos())
				}
			}
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				e.goCapture(lit, x.Pos(), hit)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, builtin := e.info.Uses[id].(*types.Builtin); builtin {
					if id.Name == "copy" && len(x.Args) == 2 {
						if pv, ok := e.taintOf(x.Args[0]); ok {
							hit(pv, "mutated through an aliasing view (copy target)", x.Pos())
						}
					}
					return true
				}
			}
			fn := calleeFunc(e.info, x)
			if fn == nil {
				return true
			}
			fn = fn.Origin()
			m := e.sum.retains[fn]
			if len(m) == 0 {
				return true
			}
			idxs := make([]int, 0, len(m))
			for i := range m {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				if i >= len(x.Args) {
					continue
				}
				if pv, ok := e.taintOf(x.Args[i]); ok {
					hit(pv, "passed to "+e.z.graph.displayName(fn)+", which leaves it "+m[i].desc, x.Args[i].Pos())
				}
			}
		}
		return true
	})
}

// goCapture reports tainted identifiers a spawned closure captures from
// the enclosing frame (locals declared inside the closure are its own).
func (e *zcEval) goCapture(lit *ast.FuncLit, pos token.Pos, hit func(zcProv, string, token.Pos)) {
	reported := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := e.info.Uses[id]
		if obj == nil {
			return true
		}
		pv, tainted := e.tainted[obj]
		if !tainted {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // declared inside the closure
		}
		hit(pv, "captured by a spawned goroutine", pos)
		reported = true
		return false
	})
}
