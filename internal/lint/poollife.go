package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// poolLife checks the lifetime discipline of pooled buffers: a value
// obtained from a sync.Pool (or from the batch-frame pool behind
// protocol.GetFrameBuf) must not be used, aliased into a live value, or
// released a second time after it has been handed back. The pool may
// recycle the memory to another goroutine the moment Put returns, so a
// late read is a data race and a double Put corrupts the free list.
//
// The analysis is a per-function gen/kill walk in the style of the lock
// walker: acquiring binds the assigned identifier to a fresh lifetime
// token, aliasing assignments join later identifiers to the same token,
// and a release call kills the token on the current path. Branches fork
// the path state and re-join on the union of releases — a buffer released
// on either arm of an if is treated as released afterwards — except that
// terminating branches (release-and-return error paths, the idiom the WAL
// append path uses) do not poison the fall-through. Two escape summaries
// are propagated over the call graph so the rule sees through helpers:
// "returns a pooled value" (a wrapper around Get) and "releases parameter
// i" (a wrapper around Put).
//
// Approximations, on the safe-for-signal side: closures are walked as
// independent bodies (a capture that outlives the enclosing release is
// not tracked), and a release inside a loop body is not propagated to the
// next iteration.
type poolLife struct {
	module string
	graph  *CallGraph
	sum    *poolSummaries
}

func newPoolLife(module string) *poolLife { return &poolLife{module: module} }

func (*poolLife) Name() string { return "poollife" }
func (*poolLife) Doc() string {
	return "no use, alias, or second Put of a pooled buffer after it was released to its pool"
}

// poolSummaries are the interprocedural facts: which module functions hand
// out pooled values and which release an argument on the caller's behalf.
type poolSummaries struct {
	returnsPooled map[*types.Func]bool
	releases      map[*types.Func]map[int]bool
}

// summaries computes (and memoizes per graph) the fixpoint of both escape
// summaries over every declared function.
func (a *poolLife) summaries(g *CallGraph) *poolSummaries {
	if a.sum != nil && a.graph == g {
		return a.sum
	}
	s := &poolSummaries{
		returnsPooled: make(map[*types.Func]bool),
		releases:      make(map[*types.Func]map[int]bool),
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			node := g.Node(fn)
			if node.Decl == nil || node.Decl.Body == nil {
				continue
			}
			if !s.returnsPooled[fn] && a.fnReturnsPooled(node, s) {
				s.returnsPooled[fn] = true
				changed = true
			}
			for _, idx := range a.fnReleasedParams(node, s) {
				if s.releases[fn] == nil {
					s.releases[fn] = make(map[int]bool)
				}
				if !s.releases[fn][idx] {
					s.releases[fn][idx] = true
					changed = true
				}
			}
		}
	}
	a.graph, a.sum = g, s
	return s
}

// poolSource reports whether call yields a pooled value: sync.Pool.Get,
// the module's frame pool, or a summarized wrapper.
func (a *poolLife) poolSource(info *types.Info, call *ast.CallExpr, s *poolSummaries) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	fn = fn.Origin()
	return isMethod(fn, "sync", "Pool", "Get") ||
		isPkgFunc(fn, a.module+"/internal/protocol", "GetFrameBuf") ||
		s.returnsPooled[fn]
}

// releaseArgs returns the argument indexes call releases back to a pool
// (nil when it is not a releasing call).
func (a *poolLife) releaseArgs(info *types.Info, call *ast.CallExpr, s *poolSummaries) []int {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if isMethod(fn, "sync", "Pool", "Put") || isPkgFunc(fn, a.module+"/internal/protocol", "PutFrameBuf") {
		return []int{0}
	}
	m := s.releases[fn]
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// unwrapToCall strips parens and type assertions (the sync.Pool.Get
// idiom: framePool.Get().(*[]byte)) down to a call expression, if any.
func unwrapToCall(e ast.Expr) *ast.CallExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			c, _ := e.(*ast.CallExpr)
			return c
		}
	}
}

// fnReturnsPooled reports whether node's function returns a pooled value,
// directly or via a local bound to one (flow-insensitive, one pass).
func (a *poolLife) fnReturnsPooled(node *CGNode, s *poolSummaries) bool {
	info := node.Pkg.Info
	pooled := make(map[types.Object]bool)
	isPooledExpr := func(e ast.Expr) bool {
		if c := unwrapToCall(e); c != nil {
			return a.poolSource(info, c, s)
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return pooled[info.Uses[id]]
		}
		return false
	}
	found := false
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i := range x.Rhs {
				id, ok := x.Lhs[i].(*ast.Ident)
				if !ok || !isPooledExpr(x.Rhs[i]) {
					continue
				}
				if obj := info.Defs[id]; obj != nil {
					pooled[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					pooled[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if isPooledExpr(r) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// fnReleasedParams returns the parameter indexes node's function (possibly
// conditionally) releases, deferred releases included: either way the
// value is back in the pool by the time the function returns.
func (a *poolLife) fnReleasedParams(node *CGNode, s *poolSummaries) []int {
	sig := signature(node.Fn)
	if sig.Params().Len() == 0 {
		return nil
	}
	info := node.Pkg.Info
	params := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i)] = i
	}
	var out []int
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, ai := range a.releaseArgs(info, call, s) {
			if ai >= len(call.Args) {
				continue
			}
			if id, ok := ast.Unparen(call.Args[ai]).(*ast.Ident); ok {
				if pi, ok := params[info.Uses[id]]; ok {
					out = append(out, pi)
				}
			}
		}
		return true
	})
	return out
}

func (a *poolLife) Run(p *Pass) {
	s := a.summaries(p.Graph)
	w := &plWalker{pass: p, rule: a, sum: s, seen: make(map[token.Pos]bool)}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.walkBody(fn.Body)
				}
			case *ast.FuncLit:
				w.walkBody(fn.Body)
			}
			return true
		})
	}
}

// plToken is one pooled-buffer lifetime: shared by every alias of the
// value, so a release through any name kills them all.
type plToken struct {
	name string
	pos  token.Pos
}

// plState is one path's view: identifier bindings, tokens released so
// far, and tokens with a pending deferred release.
type plState struct {
	bind     map[types.Object]*plToken
	released map[*plToken]token.Pos
	deferred map[*plToken]token.Pos
}

func newPlState() *plState {
	return &plState{
		bind:     make(map[types.Object]*plToken),
		released: make(map[*plToken]token.Pos),
		deferred: make(map[*plToken]token.Pos),
	}
}

func (st *plState) clone() *plState {
	out := newPlState()
	for k, v := range st.bind {
		out.bind[k] = v
	}
	for k, v := range st.released {
		out.released[k] = v
	}
	for k, v := range st.deferred {
		out.deferred[k] = v
	}
	return out
}

// merge unions b into st: a buffer released (or bound) on either joining
// path counts afterwards — the may-released direction.
func (st *plState) merge(b *plState) {
	for k, v := range b.bind {
		if _, ok := st.bind[k]; !ok {
			st.bind[k] = v
		}
	}
	for k, v := range b.released {
		if _, ok := st.released[k]; !ok {
			st.released[k] = v
		}
	}
	for k, v := range b.deferred {
		if _, ok := st.deferred[k]; !ok {
			st.deferred[k] = v
		}
	}
}

// plWalker walks one body in statement order threading plState, with
// lockWalker's branching semantics (fork, union join, terminating-branch
// exclusion).
type plWalker struct {
	pass *Pass
	rule *poolLife
	sum  *poolSummaries
	seen map[token.Pos]bool // report dedup across re-scanned subtrees
}

func (w *plWalker) walkBody(body *ast.BlockStmt) {
	w.stmts(body.List, newPlState())
}

func (w *plWalker) stmts(list []ast.Stmt, st *plState) *plState {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *plWalker) report(pos token.Pos, format string, args ...any) {
	if w.seen[pos] {
		return
	}
	w.seen[pos] = true
	w.pass.Reportf(pos, "poollife", format, args...)
}

// checkUses reports any read of an identifier whose token is released on
// this path. FuncLits are skipped (walked as independent bodies).
func (w *plWalker) checkUses(n ast.Node, st *plState) {
	if n == nil {
		return
	}
	info := w.pass.Pkg.Info
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		tok := st.bind[info.Uses[id]]
		if tok == nil {
			return true
		}
		if rel, released := st.released[tok]; released {
			w.report(id.Pos(), "pooled buffer %s used after release (released at %s): the pool may already have handed the memory to another goroutine",
				tok.name, w.pass.Fset.Position(rel))
		}
		return true
	})
}

// tokenOf resolves an argument expression to the lifetime token it names.
func (w *plWalker) tokenOf(e ast.Expr, st *plState) *plToken {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return st.bind[w.pass.Pkg.Info.Uses[id]]
	}
	return nil
}

// release processes a releasing call: double-release detection, then the
// kill (or, for defers, the pending-release mark).
func (w *plWalker) release(call *ast.CallExpr, idxs []int, st *plState, isDefer bool) {
	fset := w.pass.Fset
	releasing := make(map[int]bool, len(idxs))
	for _, i := range idxs {
		releasing[i] = true
	}
	for ai, arg := range call.Args {
		if !releasing[ai] {
			w.checkUses(arg, st)
			continue
		}
		tok := w.tokenOf(arg, st)
		if tok == nil {
			continue
		}
		if prev, ok := st.released[tok]; ok {
			w.report(call.Pos(), "pooled buffer %s released twice (already released at %s): a double Put corrupts the pool",
				tok.name, fset.Position(prev))
			continue
		}
		if isDefer {
			if prev, ok := st.deferred[tok]; ok {
				w.report(call.Pos(), "pooled buffer %s released twice (deferred release already pending from %s): a double Put corrupts the pool",
					tok.name, fset.Position(prev))
				continue
			}
			st.deferred[tok] = call.Pos()
			continue
		}
		if def, ok := st.deferred[tok]; ok {
			w.report(call.Pos(), "pooled buffer %s released here and again by the deferred release at %s: a double Put corrupts the pool",
				tok.name, fset.Position(def))
		}
		st.released[tok] = call.Pos()
	}
}

// exprStmt handles a statement-position expression: release calls get
// gen/kill treatment, everything else a use scan.
func (w *plWalker) exprStmt(e ast.Expr, st *plState) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if idxs := w.rule.releaseArgs(w.pass.Pkg.Info, call, w.sum); idxs != nil {
			w.checkUses(call.Fun, st)
			w.release(call, idxs, st, false)
			return
		}
	}
	w.checkUses(e, st)
}

// poolAliasType limits alias propagation to pointer- and slice-typed
// bindings: a call result like (pos, err) must not join the token just
// because the buffer appeared among the arguments.
func poolAliasType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice:
		return true
	}
	return false
}

// aliasToken returns the token e's value may alias, skipping fresh
// allocations and size queries (make/new/len/cap/copy roots).
func (w *plWalker) aliasToken(e ast.Expr, st *plState) *plToken {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, builtin := w.pass.Pkg.Info.Uses[id].(*types.Builtin); builtin {
				switch id.Name {
				case "make", "new", "len", "cap", "copy":
					return nil
				}
			}
		}
	}
	info := w.pass.Pkg.Info
	var tok *plToken
	ast.Inspect(e, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if tok != nil {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			tok = st.bind[info.Uses[id]]
		}
		return true
	})
	return tok
}

// bindLHS binds one assignment target. Pooled-source results gen a fresh
// token; alias-capable RHS joins the existing token; anything else clears
// a stale binding.
func (w *plWalker) bindLHS(lhs, rhs ast.Expr, st *plState) {
	info := w.pass.Pkg.Info
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	if c := unwrapToCall(rhs); c != nil && w.rule.poolSource(info, c, w.sum) {
		st.bind[obj] = &plToken{name: id.Name, pos: rhs.Pos()}
		return
	}
	if poolAliasType(obj.Type()) {
		if tok := w.aliasToken(rhs, st); tok != nil {
			st.bind[obj] = tok
			return
		}
	}
	delete(st.bind, obj)
}

func (w *plWalker) assign(lhs, rhs []ast.Expr, st *plState) {
	for _, r := range rhs {
		w.checkUses(r, st)
	}
	for _, l := range lhs {
		if _, isIdent := l.(*ast.Ident); !isIdent {
			w.checkUses(l, st) // *buf = ..., s.f = ...: reads the base
		}
	}
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			w.bindLHS(lhs[i], rhs[i], st)
		}
	case len(rhs) == 1 && len(lhs) > 1:
		// Multi-value: only a pooled source in result 0 (the comma-ok
		// type-assert idiom) gens; no alias join through call results.
		if c := unwrapToCall(rhs[0]); c != nil && w.rule.poolSource(w.pass.Pkg.Info, c, w.sum) {
			w.bindLHS(lhs[0], rhs[0], st)
		}
	}
}

func (w *plWalker) stmt(s ast.Stmt, st *plState) *plState {
	switch x := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return w.stmts(x.List, st)
	case *ast.ExprStmt:
		w.exprStmt(x.X, st)
		return st
	case *ast.AssignStmt:
		w.assign(x.Lhs, x.Rhs, st)
		return st
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				w.assign(lhs, vs.Values, st)
			}
		}
		return st
	case *ast.DeferStmt:
		if idxs := w.rule.releaseArgs(w.pass.Pkg.Info, x.Call, w.sum); idxs != nil {
			w.release(x.Call, idxs, st, true)
			return st
		}
		for _, a := range x.Call.Args {
			w.checkUses(a, st)
		}
		return st
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			w.checkUses(a, st)
		}
		return st
	case *ast.SendStmt:
		w.checkUses(x.Chan, st)
		w.checkUses(x.Value, st)
		return st
	case *ast.IncDecStmt:
		w.checkUses(x.X, st)
		return st
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.checkUses(r, st)
		}
		return st
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	case *ast.IfStmt:
		st = w.stmt(x.Init, st)
		w.checkUses(x.Cond, st)
		then := w.stmts(x.Body.List, st.clone())
		alt := st.clone()
		altTerm := false
		if x.Else != nil {
			alt = w.stmt(x.Else, alt)
			if blk, ok := x.Else.(*ast.BlockStmt); ok {
				altTerm = terminates(blk.List)
			}
		}
		switch {
		case terminates(x.Body.List) && altTerm:
			return st
		case terminates(x.Body.List):
			return alt
		case altTerm:
			return then
		}
		then.merge(alt)
		return then
	case *ast.ForStmt:
		st = w.stmt(x.Init, st)
		w.checkUses(x.Cond, st)
		body := w.stmts(x.Body.List, st.clone())
		w.stmt(x.Post, body)
		return st
	case *ast.RangeStmt:
		w.checkUses(x.X, st)
		w.stmts(x.Body.List, st.clone())
		return st
	case *ast.SwitchStmt:
		st = w.stmt(x.Init, st)
		w.checkUses(x.Tag, st)
		return w.caseClauses(x.Body, st)
	case *ast.TypeSwitchStmt:
		st = w.stmt(x.Init, st)
		w.stmt(x.Assign, st)
		return w.caseClauses(x.Body, st)
	case *ast.SelectStmt:
		out := st.clone()
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			branch := st.clone()
			if cc.Comm != nil {
				branch = w.stmt(cc.Comm, branch)
			}
			branch = w.stmts(cc.Body, branch)
			if !terminates(cc.Body) {
				out.merge(branch)
			}
		}
		return out
	default:
		return st
	}
}

// caseClauses walks a switch body forking per clause and union-joining
// the non-terminating outcomes.
func (w *plWalker) caseClauses(body *ast.BlockStmt, st *plState) *plState {
	out := st.clone()
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.checkUses(e, st)
		}
		branch := w.stmts(cc.Body, st.clone())
		if !terminates(cc.Body) {
			out.merge(branch)
		}
	}
	return out
}
