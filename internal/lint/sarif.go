package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF (Static Analysis Results Interchange Format) 2.1.0 output, the
// wire form GitHub code scanning ingests. The emitted log carries one run
// with the full rule table (so a clean run still documents what was
// checked) and one result per diagnostic, in the same stable order
// RunAnalyzers returns them — byte-identical across reruns of the same
// tree, like every other kslint output mode.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// ToSARIF renders diagnostics as a SARIF 2.1.0 log. Every registered rule
// appears in the driver's rule table; each finding references its rule by
// id and index and is reported at level "error" — kslint has no warning
// tier, a surviving finding fails the build. File URIs are the
// module-relative paths kslint already reports, slash-separated, against
// the %SRCROOT% base GitHub resolves to the checkout root.
func ToSARIF(diags []Diagnostic) ([]byte, error) {
	analyzers := Analyzers("")
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		index[a.Name()] = i
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifMessage{Text: a.Doc()},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: index[d.Rule],
			Level:     "error",
			Message:   sarifMessage{Text: d.Rule + ": " + d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "kslint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}
