package lint_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"kstreams/internal/lint"
)

// Fixture tests for the four goroutine-lifecycle rules (goleak, chanown,
// waitbalance, spinloop): each gets true positives that must fire and
// near-misses that must stay silent, exercising the interprocedural
// machinery (spawn-closure BFS, close census, cross-goroutine Done
// matching, hot-reachability) in both directions.

// --- goleak ---

func TestGoLeakFlagsUnwitnessedLiteral(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/goleak_lit", `
package fixture

func step() {}

func Spawn() {
	go func() {
		for {
			step()
		}
	}()
}
`, "goleak")
	wantFindings(t, diags, "goleak")
	if !strings.Contains(diags[0].Message, "no termination witness") ||
		!strings.Contains(diags[0].Message, "spawned func literal") {
		t.Fatalf("want an unwitnessed-literal finding: %s", diags[0].Message)
	}
}

func TestGoLeakFlagsLoopThroughCallGraph(t *testing.T) {
	// The loop is two hops from the spawn: go worker() → pump() → for {}.
	// Only the call-graph BFS can see it, and the chain must say how.
	diags := lintFixture(t, lint.Config{}, "lintfixture/goleak_chain", `
package fixture

func step() {}

func pump() {
	for {
		step()
	}
}

func worker() { pump() }

func Spawn() { go worker() }
`, "goleak")
	wantFindings(t, diags, "goleak")
	if !strings.Contains(diags[0].Message, "worker") || !strings.Contains(diags[0].Message, "pump") {
		t.Fatalf("want the spawn→worker→pump chain in the finding: %s", diags[0].Message)
	}
}

func TestGoLeakAcceptsSignalSelectLoop(t *testing.T) {
	// The production idiom: an infinite loop gated on a stop channel. The
	// return under the signal receive is the termination witness.
	diags := lintFixture(t, lint.Config{}, "lintfixture/goleak_signal", `
package fixture

func sink(int) {}

func Run(stop chan struct{}, in chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-in:
				sink(v)
			}
		}
	}()
}
`, "goleak")
	wantFindings(t, diags)
}

func TestGoLeakAcceptsBoundedLoop(t *testing.T) {
	// A conditional loop is the author's own bound; only for{} counts as
	// an infinite-loop hazard.
	diags := lintFixture(t, lint.Config{}, "lintfixture/goleak_bounded", `
package fixture

func step() {}

func Spawn() {
	go func() {
		for i := 0; i < 8; i++ {
			step()
		}
	}()
}
`, "goleak")
	wantFindings(t, diags)
}

func TestGoLeakHonorsFiniteAnnotation(t *testing.T) {
	// //kslint:finite on the callee's doc comment asserts termination the
	// analysis cannot see; the BFS must not enter the function.
	diags := lintFixture(t, lint.Config{}, "lintfixture/goleak_finite", `
package fixture

func step() {}

// drain works a backlog the enqueue side has already capped.
//
//kslint:finite backlog is bounded by the enqueue cap
func drain() {
	for {
		step()
	}
}

func Spawn() { go drain() }
`, "goleak")
	wantFindings(t, diags)
}

// --- chanown ---

func TestChanOwnFlagsTwoClosers(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/chanown_two", `
package fixture

var done = make(chan struct{})

func StopA() { close(done) }

func StopB() { close(done) }
`, "chanown")
	wantFindings(t, diags, "chanown")
	if !strings.Contains(diags[0].Message, "closed by 2 functions") {
		t.Fatalf("want a close-ownership finding: %s", diags[0].Message)
	}
}

func TestChanOwnFlagsSendAfterClose(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/chanown_sendafter", `
package fixture

type S struct {
	ch chan struct{}
}

func (s *S) Shutdown() {
	close(s.ch)
	s.ch <- struct{}{}
}
`, "chanown")
	wantFindings(t, diags, "chanown")
	if !strings.Contains(diags[0].Message, "after it was closed") {
		t.Fatalf("want a send-after-close finding: %s", diags[0].Message)
	}
}

func TestChanOwnAcceptsSingleOwner(t *testing.T) {
	// One closing function and sends only on other paths: the contract.
	diags := lintFixture(t, lint.Config{}, "lintfixture/chanown_single", `
package fixture

var done = make(chan struct{})

func Publish() { done <- struct{}{} }

func Stop() { close(done) }
`, "chanown")
	wantFindings(t, diags)
}

func TestChanOwnAcceptsReopenWithMake(t *testing.T) {
	// Assigning a fresh make() after close reopens the channel on that
	// path; the send targets the new channel, not the closed one.
	diags := lintFixture(t, lint.Config{}, "lintfixture/chanown_reopen", `
package fixture

type R struct {
	ch chan struct{}
}

func (r *R) Cycle() {
	close(r.ch)
	r.ch = make(chan struct{})
	r.ch <- struct{}{}
}
`, "chanown")
	wantFindings(t, diags)
}

// --- waitbalance ---

func TestWaitBalanceFlagsSurplusAdd(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/waitbalance_hang", `
package fixture

import "sync"

func Hang() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { wg.Done() }()
	wg.Wait()
}
`, "waitbalance")
	wantFindings(t, diags, "waitbalance")
	if !strings.Contains(diags[0].Message, "Wait will hang") {
		t.Fatalf("want a surplus-Add finding: %s", diags[0].Message)
	}
}

func TestWaitBalanceFlagsAddInSpawnedGoroutine(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/waitbalance_race", `
package fixture

import "sync"

func Race() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1)
		wg.Done()
	}()
	wg.Wait()
}
`, "waitbalance")
	wantFindings(t, diags, "waitbalance")
	if !strings.Contains(diags[0].Message, "races the parent's Wait") {
		t.Fatalf("want an Add-inside-goroutine finding: %s", diags[0].Message)
	}
}

func TestWaitBalanceAcceptsDeferredDone(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/waitbalance_ok", `
package fixture

import "sync"

func work() {}

func Balanced() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
`, "waitbalance")
	wantFindings(t, diags)
}

func TestWaitBalanceAcceptsNonLiteralAdd(t *testing.T) {
	// Add(n) with a runtime count is unknowable statically; the rule
	// prefers silence to guessing.
	diags := lintFixture(t, lint.Config{}, "lintfixture/waitbalance_dyn", `
package fixture

import "sync"

func Fan(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() { wg.Done() }()
	}
	wg.Wait()
}
`, "waitbalance")
	wantFindings(t, diags)
}

// --- spinloop ---

func TestSpinLoopFlagsHotPoll(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/spinloop_poll", `
package fixture

var ready bool

//kslint:hotpath
func HotPoll() {
	for {
		if ready {
			return
		}
	}
}
`, "spinloop")
	wantFindings(t, diags, "spinloop")
	if !strings.Contains(diags[0].Message, "busy-spin") {
		t.Fatalf("want a busy-spin finding: %s", diags[0].Message)
	}
}

func TestSpinLoopFlagsSpinThroughCallGraph(t *testing.T) {
	// The spin is one call away from the hot root; the finding must carry
	// the hot-via chain.
	diags := lintFixture(t, lint.Config{}, "lintfixture/spinloop_chain", `
package fixture

var ready bool

func spin() {
	for {
		if ready {
			return
		}
	}
}

//kslint:hotpath
func HotRoot() { spin() }
`, "spinloop")
	wantFindings(t, diags, "spinloop")
	if !strings.Contains(diags[0].Message, "hot via") || !strings.Contains(diags[0].Message, "HotRoot") {
		t.Fatalf("want the hot-via chain in the finding: %s", diags[0].Message)
	}
}

func TestSpinLoopAcceptsBlockingLoop(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/spinloop_block", `
package fixture

func use(struct{}) {}

//kslint:hotpath
func HotWait(ch chan struct{}) {
	for {
		use(<-ch)
	}
}
`, "spinloop")
	wantFindings(t, diags)
}

func TestSpinLoopAcceptsCASRetry(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/spinloop_cas", `
package fixture

import "sync/atomic"

//kslint:hotpath
func HotIncr(v *int64) {
	for {
		old := atomic.LoadInt64(v)
		if atomic.CompareAndSwapInt64(v, old, old+1) {
			return
		}
	}
}
`, "spinloop")
	wantFindings(t, diags)
}

func TestSpinLoopIgnoresColdLoops(t *testing.T) {
	// The identical poll loop with no //kslint:hotpath root in its
	// reachability cone is not the rule's business.
	diags := lintFixture(t, lint.Config{}, "lintfixture/spinloop_cold", `
package fixture

var ready bool

func ColdPoll() {
	for {
		if ready {
			return
		}
	}
}
`, "spinloop")
	wantFindings(t, diags)
}

// --- determinism, JSON, SARIF, suppressions across the four rules ---

// lifecycleDeterminismSrc triggers each of the four rules exactly once.
const lifecycleDeterminismSrc = `
package fixture

import "sync"

var done = make(chan struct{})

func StopA() { close(done) }

func StopB() { close(done) }

func step() {}

func Leak() {
	go func() {
		for {
			step()
		}
	}()
}

func Hang() {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { wg.Done() }()
	wg.Wait()
}

var ready bool

//kslint:hotpath
func HotPoll() {
	for {
		if ready {
			return
		}
	}
}
`

var lifecycleRules = []string{"goleak", "chanown", "waitbalance", "spinloop"}

var lifecycleWant = []string{"chanown", "goleak", "waitbalance", "spinloop"}

func TestLifecycleDeterministicOutput(t *testing.T) {
	// Same loaded package, fresh analyzer instances each run (Finalizer
	// state must not leak), byte-identical renderings.
	ldr := testLoader(t)
	pkg, err := ldr.LoadFixture("lintfixture/lifecycle_det",
		map[string]string{"fixture.go": lifecycleDeterminismSrc})
	if err != nil {
		t.Fatalf("fixture: %v", err)
	}
	run := func() []lint.Diagnostic {
		return lint.LintPackage(ldr, pkg, lint.Config{}, pickAnalyzers(ldr, lifecycleRules))
	}
	first := run()
	wantFindings(t, first, lifecycleWant...)
	for i := 0; i < 3; i++ {
		if got := render(run()); got != render(first) {
			t.Fatalf("lifecycle rules are not deterministic:\n--- first ---\n%s--- run %d ---\n%s",
				render(first), i+2, got)
		}
	}
}

func TestLifecycleJSONRoundTrip(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/lifecycle_json",
		lifecycleDeterminismSrc, lifecycleRules...)
	wantFindings(t, diags, lifecycleWant...)

	data, err := lint.ToJSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []lint.JSONDiagnostic
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("kslint -json output must be parseable: %v", err)
	}
	want := make([]lint.JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		want = append(want, lint.JSONDiagnostic{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	if !reflect.DeepEqual(decoded, want) {
		t.Fatalf("round-trip mismatch:\ngot  %#v\nwant %#v", decoded, want)
	}
}

// sarifShape mirrors the subset of SARIF 2.1.0 the round-trip asserts on.
type sarifShape struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI       string `json:"uri"`
						URIBaseID string `json:"uriBaseId"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

func TestLifecycleSARIFRoundTrip(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/lifecycle_sarif",
		lifecycleDeterminismSrc, lifecycleRules...)
	wantFindings(t, diags, lifecycleWant...)

	data, err := lint.ToSARIF(diags)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifShape
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("kslint -sarif output must be parseable: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Fatalf("want a SARIF 2.1.0 log, got version %q schema %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly one run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "kslint" {
		t.Fatalf("driver name = %q, want kslint", run.Tool.Driver.Name)
	}
	if got, want := len(run.Tool.Driver.Rules), len(lint.Analyzers("")); got != want {
		t.Fatalf("rule table has %d entries, want all %d registered rules", got, want)
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		d := diags[i]
		if res.RuleID != d.Rule || res.Level != "error" {
			t.Fatalf("result %d: ruleId %q level %q, want %q error", i, res.RuleID, res.Level, d.Rule)
		}
		if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Fatalf("result %d: ruleIndex %d points at %q, want %q",
				i, res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
		if !strings.Contains(res.Message.Text, d.Message) {
			t.Fatalf("result %d message %q does not carry the finding %q", i, res.Message.Text, d.Message)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != d.Pos.Filename || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Fatalf("result %d: uri %q base %q, want %q %%SRCROOT%%",
				i, loc.ArtifactLocation.URI, loc.ArtifactLocation.URIBaseID, d.Pos.Filename)
		}
		if loc.Region.StartLine != d.Pos.Line || loc.Region.StartColumn != d.Pos.Column {
			t.Fatalf("result %d: region %d:%d, want %d:%d",
				i, loc.Region.StartLine, loc.Region.StartColumn, d.Pos.Line, d.Pos.Column)
		}
	}

	again, err := lint.ToSARIF(diags)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("ToSARIF is not byte-identical across calls on the same findings")
	}
}

func TestLifecycleSuppressions(t *testing.T) {
	// Line ignores with a reason silence exactly the named rule at the
	// reported position — the policy every intentional exception in the
	// module relies on.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lifecycle_suppress", `
package fixture

import "sync"

var done = make(chan struct{})

// StopA is the lexically-first closer, where the census reports.
func StopA() {
	//kslint:ignore chanown fixture exercises the suppression path
	close(done)
}

func StopB() { close(done) }

func step() {}

func Leak() {
	//kslint:ignore goleak fixture exercises the suppression path
	go func() {
		for {
			step()
		}
	}()
}

func Hang() {
	var wg sync.WaitGroup
	//kslint:ignore waitbalance fixture exercises the suppression path
	wg.Add(2)
	go func() { wg.Done() }()
	wg.Wait()
}

var ready bool

//kslint:hotpath
func HotPoll() {
	//kslint:ignore spinloop fixture exercises the suppression path
	for {
		if ready {
			return
		}
	}
}
`, lifecycleRules...)
	wantFindings(t, diags)
}
