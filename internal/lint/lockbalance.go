package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockBalance checks that no mutex leaks out of a function: on every
// path to a return (or to falling off the end), each acquired lock has
// either been unlocked on that path or has a deferred unlock registered
// before the exit. It reuses the shared lockWalker, so branch forks and
// intersection joins make the check path-sensitive: an early return
// inside `if cond { mu.Unlock(); return }` is clean, an early return
// before the unlock is a leak.
//
// Deferred unlocks are tracked in statement order, which is exactly the
// flow-sensitivity the idiom needs: `mu.Lock(); defer mu.Unlock()`
// covers every later exit, while a return between the Lock and the defer
// is still (correctly) a leak.
type lockBalance struct{}

func (lockBalance) Name() string { return "lockbalance" }
func (lockBalance) Doc() string {
	return "every acquired mutex is unlocked or defer-unlocked on every path out of the function"
}

func (lockBalance) Run(p *Pass) {
	check := func(body *ast.BlockStmt) {
		deferred := make(map[string]bool)
		w := &lockWalker{pass: p, hooks: lockHooks{
			keyOf: func(recv ast.Expr) (string, bool) { return types.ExprString(recv), true },
			onDefer: func(key, op string, pos token.Pos) {
				if op == "Unlock" || op == "RUnlock" {
					deferred[key] = true
				}
			},
			onExit: func(pos token.Pos, held lockset) {
				var leaked []string
				for key := range held {
					if !deferred[key] {
						leaked = append(leaked, key)
					}
				}
				sort.Strings(leaked)
				for _, key := range leaked {
					p.Reportf(pos, "lockbalance",
						"%s is still held at function exit (locked at %s) with no unlock or deferred unlock on this path",
						key, p.Fset.Position(held[key]))
				}
			},
		}}
		w.walkBody(body)
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					check(fn.Body)
				}
			case *ast.FuncLit:
				check(fn.Body)
			}
			return true
		})
	}
}
