package lint

import (
	"go/ast"
	"go/types"
)

// errDrop flags statement-position calls to exported internal/broker and
// internal/client APIs whose trailing error result is silently discarded.
// Those errors carry the protocol outcomes the exactly-once guarantee
// depends on (fenced epochs, aborted transactions, lost leadership);
// dropping one turns a consistency violation into a silent no-op. An
// explicit `_ =` assignment is allowed — it documents the decision.
type errDrop struct{ module string }

func (errDrop) Name() string { return "errdrop" }
func (errDrop) Doc() string {
	return "no silently discarded errors from internal/broker and internal/client APIs"
}

func (e errDrop) Run(p *Pass) {
	scoped := map[string]bool{
		e.module + "/internal/broker": true,
		e.module + "/internal/client": true,
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || !scoped[fn.Pkg().Path()] {
				return true
			}
			if !fn.Exported() || !lastResultIsError(fn) {
				return true
			}
			p.Reportf(call.Pos(), "errdrop",
				"%s result dropped: handle the error or discard it explicitly with _ =", qualifiedName(fn))
			return true
		})
	}
}

// qualifiedName renders Type.Method or pkg.Func for a diagnostic.
func qualifiedName(fn *types.Func) string {
	if recv := signature(fn).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
