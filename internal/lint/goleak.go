package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// goLeak proves every production `go` statement can terminate. A spawned
// goroutine leaks when it reaches an infinite loop (`for {}`) carrying no
// termination witness: no receive from a signal channel (chan struct{} —
// a stop/done channel or ctx.Done()), no return, no break out of the
// loop, no goto, and no panic/os.Exit. Conditional loops (`for cond {}`)
// and ranges count as bounded: the condition is the author's bound, and
// range over a channel ends when the sender closes it. Note the witness
// must be a *signal* read — `<-clock.After(d)` carries time.Time and does
// not qualify, because a tick wakes the loop up but never shuts it down.
//
// The check is interprocedural: from each spawn site it walks the call
// closure (FuncLit bodies in place, declared callees through the module
// call graph) and reports the first reachable unwitnessed loop with the
// spawn→loop chain. A function whose doc comment carries
// `//kslint:finite <reason>` asserts termination and is not entered —
// that is the annotation for loops bounded by invariants the analysis
// cannot see (deadline budgets, monotone queue drains).
type goLeak struct {
	module string
	fset   *token.FileSet
	graph  *CallGraph
}

func newGoLeak(module string) *goLeak { return &goLeak{module: module} }

func (*goLeak) Name() string { return "goleak" }
func (*goLeak) Doc() string {
	return "every production go statement has a termination witness: a signal-channel receive, an exit path, a bound, or a //kslint:finite reason"
}

func (g *goLeak) Run(p *Pass) {
	g.fset = p.Fset
	g.graph = p.Graph
}

// hazard is one unwitnessed infinite loop inside a function body.
type leakHazard struct {
	pos token.Pos
}

func (g *goLeak) Finalize(report func(Diagnostic)) {
	if g.graph == nil {
		return
	}
	// Per-function summaries: the unwitnessed loops of each declared body.
	hazards := make(map[*types.Func][]leakHazard)
	finite := make(map[*types.Func]bool)
	for _, fn := range g.graph.Funcs() {
		node := g.graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		if declMarked(node.Decl, "kslint:finite") {
			finite[fn] = true
			continue
		}
		hazards[fn] = unwitnessedLoops(node.Pkg.Info, node.Decl.Body)
	}

	var found []Diagnostic
	for _, fn := range g.graph.Funcs() {
		node := g.graph.Node(fn)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			continue
		}
		info := node.Pkg.Info
		enclosingFinite := declMarked(node.Decl, "kslint:finite")
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if enclosingFinite {
				return true
			}
			if d := g.checkSpawn(info, gs, hazards, finite); d != nil {
				found = append(found, *d)
			}
			return true
		})
	}
	sortDiags(found)
	for _, d := range found {
		report(d)
	}
}

// checkSpawn walks the call closure of one go statement and returns a
// finding for the first reachable unwitnessed loop, if any.
func (g *goLeak) checkSpawn(info *types.Info, gs *ast.GoStmt, hazards map[*types.Func][]leakHazard, finite map[*types.Func]bool) *Diagnostic {
	lit, fn := spawnTargets(info, g.graph, gs)
	var seeds []*types.Func
	switch {
	case lit != nil:
		// The spawned closure itself, checked in place.
		if hz := unwitnessedLoops(info, lit.Body); len(hz) > 0 {
			return g.finding(gs, hz[0].pos, "the spawned func literal", nil)
		}
		seeds = litCallees(info, g.graph, lit)
	case fn != nil:
		seeds = []*types.Func{fn}
	default:
		return nil // func value or external callee: unresolvable
	}

	// BFS over the module call graph; parent links render the chain.
	parent := make(map[*types.Func]*types.Func)
	visited := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, s := range seeds {
		if !visited[s] && !finite[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if hz := hazards[cur]; len(hz) > 0 {
			return g.finding(gs, hz[0].pos, g.graph.displayName(cur), g.chain(cur, parent))
		}
		node := g.graph.Node(cur)
		if node == nil {
			continue
		}
		for _, e := range node.Edges {
			callee := e.Callee.Origin()
			if visited[callee] || finite[callee] {
				continue
			}
			if n := g.graph.Node(callee); n == nil || n.Decl == nil {
				continue
			}
			visited[callee] = true
			parent[callee] = cur
			queue = append(queue, callee)
		}
	}
	return nil
}

func (g *goLeak) chain(fn *types.Func, parent map[*types.Func]*types.Func) []string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, g.graph.displayName(f))
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return names
}

func (g *goLeak) finding(gs *ast.GoStmt, loopPos token.Pos, where string, chain []string) *Diagnostic {
	lp := g.fset.Position(loopPos)
	path := "spawn"
	for _, c := range chain {
		path += " → " + c
	}
	msg := "goroutine has no termination witness: " + where +
		" loops forever at " + lp.Filename + ":" + strconv.Itoa(lp.Line) + " (" + path +
		") with no signal-channel receive, return, break, or bound; " +
		"gate the loop on a close signal or annotate its function //kslint:finite <reason>"
	return &Diagnostic{Pos: g.fset.Position(gs.Pos()), Rule: "goleak", Message: msg}
}

// unwitnessedLoops finds `for {}` loops in body whose subtree (func
// literals excluded — their statements run on other goroutines or other
// frames) contains no termination witness.
func unwitnessedLoops(info *types.Info, body ast.Node) []leakHazard {
	var out []leakHazard
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt:
				if x.Cond == nil && !loopHasWitness(info, x.Body) {
					out = append(out, leakHazard{pos: x.For})
				}
				// Nested loops are scanned on their own.
				walk(x.Body)
				return false
			}
			return true
		})
	}
	walk(body)
	return out
}

// loopHasWitness scans one infinite loop's body for a termination
// witness: a return, a break that exits *this* loop (bare break only at
// the loop's own nesting level; any labeled break), a goto, a panic or
// process exit, or a receive from / range over a signal channel.
func loopHasWitness(info *types.Info, body *ast.BlockStmt) bool {
	witness := false
	// depth counts enclosing break targets (for/range/select/switch)
	// between a statement and this loop, so `break` inside a nested
	// select is not mistaken for a loop exit.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			if witness {
				return false
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				witness = true
				return false
			case *ast.BranchStmt:
				switch x.Tok {
				case token.BREAK:
					if depth == 0 || x.Label != nil {
						witness = true
					}
				case token.GOTO:
					witness = true
				}
				return false
			case *ast.ForStmt, *ast.RangeStmt, *ast.SelectStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
				if r, ok := x.(*ast.RangeStmt); ok && isSignalChan(info.TypeOf(r.X)) {
					witness = true // range over a stop channel ends at close
					return false
				}
				for _, child := range children(x) {
					walk(child, depth+1)
				}
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && isSignalChan(info.TypeOf(x.X)) {
					witness = true
					return false
				}
			case *ast.CallExpr:
				if isExitCall(info, x) {
					witness = true
					return false
				}
			}
			return true
		})
	}
	walk(body, 0)
	return witness
}

// children returns the sub-nodes of a break-target statement that should
// be walked one nesting level deeper.
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	switch x := n.(type) {
	case *ast.ForStmt:
		if x.Init != nil {
			out = append(out, x.Init)
		}
		if x.Cond != nil {
			out = append(out, x.Cond)
		}
		if x.Post != nil {
			out = append(out, x.Post)
		}
		out = append(out, x.Body)
	case *ast.RangeStmt:
		out = append(out, x.X, x.Body)
	case *ast.SelectStmt:
		out = append(out, x.Body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			out = append(out, x.Init)
		}
		if x.Tag != nil {
			out = append(out, x.Tag)
		}
		out = append(out, x.Body)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			out = append(out, x.Init)
		}
		out = append(out, x.Assign, x.Body)
	}
	return out
}

// isExitCall reports calls that abandon the goroutine or process: panic,
// os.Exit, runtime.Goexit, log.Fatal*.
func isExitCall(info *types.Info, call *ast.CallExpr) bool {
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[fun].(*types.Builtin); builtin && fun.Name == "panic" {
			return true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	return isPkgFunc(fn, "os", "Exit") || isPkgFunc(fn, "runtime", "Goexit") ||
		isPkgFunc(fn, "log", "Fatal") || isPkgFunc(fn, "log", "Fatalf") || isPkgFunc(fn, "log", "Fatalln")
}
