package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// txnProto checks the transactional-producer protocol as a state machine
// over call sites, per the paper's EOS commit cycle:
//
//	step begin:   BeginTxn may not run while a transaction is already open
//	step offsets: SendOffsetsToTxn may not run outside an open transaction
//	              (in particular not after CommitTxn)
//	step commit:  CommitTxn/AbortTxn may not run with the transaction
//	              definitely closed (no BeginTxn reached on this path)
//	step abort:   an error path that leaves the function with a
//	              transaction still open must have AbortTxn reachable in
//	              some transitive caller, or the txn leaks until timeout
//
// The txn primitives are the four methods on internal/client.Producer.
// Module wrappers (e.g. kafka.Producer.BeginTxn) are classified by name
// plus a call-graph path to the same-named primitive, so the check sees
// through the public facade — and through interface dispatch, since the
// graph's ImplCall edges participate in those paths.
//
// Analysis is path-sensitive per receiver expression with three states:
// Unknown (the default — a producer handed in from elsewhere may or may
// not be in a txn), Open, and Closed. Closed is only asserted when this
// function saw it happen: a constructor call, a commit/abort, or a
// failed begin. Branches fork the state and re-join: equal states keep,
// different states widen to Unknown. A call into any module function
// whose closure touches a txn primitive widens every tracked state to
// Unknown (it may have moved the machine). Ops whose error result is
// captured outside the `if err := ...; err != nil` idiom widen the
// receiver to Unknown — both outcomes are live; only the idiomatic form
// splits into a precise success/failure pair of branch states.
type txnProto struct {
	module string
	graph  *CallGraph
	// wrappers maps module methods that are classified facades of a txn
	// primitive to the protocol op name; built once per graph.
	wrappers map[*types.Func]string
	touches  map[*types.Func]bool
	aborts   map[*types.Func]bool
}

func newTxnProto(module string) *txnProto {
	return &txnProto{module: module}
}

func (*txnProto) Name() string { return "txnproto" }
func (*txnProto) Doc() string {
	return "transactional producer call sites follow the begin→offsets→commit/abort protocol on every path"
}

var txnOps = []string{"BeginTxn", "CommitTxn", "AbortTxn", "SendOffsetsToTxn"}

// primitiveOp classifies fn as one of the client.Producer txn primitives.
func (t *txnProto) primitiveOp(fn *types.Func) (string, bool) {
	for _, op := range txnOps {
		if isMethod(fn, t.module+"/internal/client", "Producer", op) {
			return op, true
		}
	}
	return "", false
}

// prime builds the per-graph caches: wrapper classification and the
// touches-txn memo table.
func (t *txnProto) prime(g *CallGraph) {
	if t.graph == g {
		return
	}
	t.graph = g
	t.wrappers = make(map[*types.Func]string)
	t.touches = make(map[*types.Func]bool)
	t.aborts = make(map[*types.Func]bool)
	for _, fn := range g.Funcs() {
		if _, ok := t.primitiveOp(fn); ok {
			continue
		}
		name := fn.Name()
		isOp := false
		for _, op := range txnOps {
			if name == op {
				isOp = true
			}
		}
		if !isOp || signature(fn).Recv() == nil {
			continue
		}
		hit := func(callee *types.Func) bool {
			op, ok := t.primitiveOp(callee)
			return ok && op == name
		}
		if g.FindPath(fn, hit, nil) != nil {
			t.wrappers[fn] = name
		}
	}
}

// opOf classifies a call as a protocol op (primitive or wrapper) and
// returns the receiver expression.
func (t *txnProto) opOf(info *types.Info, call *ast.CallExpr) (op string, recv ast.Expr, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", nil, false
	}
	fn = fn.Origin()
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	if op, ok := t.primitiveOp(fn); ok {
		return op, sel.X, true
	}
	if op, ok := t.wrappers[fn]; ok {
		return op, sel.X, true
	}
	return "", nil, false
}

// touchesTxn reports whether fn's call closure reaches any txn primitive.
func (t *txnProto) touchesTxn(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	fn = fn.Origin()
	if v, ok := t.touches[fn]; ok {
		return v
	}
	hit := func(callee *types.Func) bool { _, ok := t.primitiveOp(callee); return ok }
	v := t.graph.FindPath(fn, hit, nil) != nil
	t.touches[fn] = v
	return v
}

// abortReachable reports whether any transitive caller of fn has
// AbortTxn in its call closure — the escape hatch for error paths that
// return with an open transaction for the caller to clean up.
func (t *txnProto) abortReachable(fn *types.Func) bool {
	hitAbort := func(callee *types.Func) bool {
		if op, ok := t.primitiveOp(callee); ok {
			return op == "AbortTxn"
		}
		return t.wrappers[callee] == "AbortTxn"
	}
	visited := map[*types.Func]bool{fn: true}
	queue := t.graph.Callers(fn)
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		if visited[c] {
			continue
		}
		visited[c] = true
		if v, ok := t.aborts[c]; ok {
			if v {
				return true
			}
		} else {
			v := t.graph.FindPath(c, hitAbort, nil) != nil
			t.aborts[c] = v
			if v {
				return true
			}
		}
		queue = append(queue, t.graph.Callers(c)...)
	}
	return false
}

// --- per-function state machine ---

type txnStateKind int

const (
	txnUnknown txnStateKind = iota
	txnOpen
	txnClosed
)

// txnSt is one receiver's state plus the position that established it.
type txnSt struct {
	kind txnStateKind
	pos  token.Pos
}

// txnState maps a receiver expression (by spelling) to its state; a
// missing key means Unknown.
type txnState map[string]txnSt

func (s txnState) clone() txnState {
	out := make(txnState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinTxn(a, b txnState) txnState {
	out := txnState{}
	for k, va := range a {
		if vb, ok := b[k]; ok && va.kind == vb.kind {
			out[k] = va
		}
	}
	return out
}

type txnWalker struct {
	rule       *txnProto
	pass       *Pass
	fn         *types.Func
	hasErr     bool // fn's last result is error
	deferAbort bool // a deferred call reaches AbortTxn
}

func (t *txnProto) Run(p *Pass) {
	t.prime(p.Graph)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			w := &txnWalker{rule: t, pass: p, fn: fn, hasErr: lastResultIsError(fn)}
			w.stmts(fd.Body.List, txnState{})
		}
	}
}

func (w *txnWalker) stmts(list []ast.Stmt, st txnState) txnState {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *txnWalker) stmt(s ast.Stmt, st txnState) txnState {
	switch n := s.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return w.stmts(n.List, st)
	case *ast.ExprStmt:
		// A bare op call: the error is discarded, so the op is modeled as
		// taking effect (that discard is errdrop's problem, not ours).
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if op, recv, ok := w.rule.opOf(w.pass.Pkg.Info, call); ok {
				w.checkOp(op, recv, st, call.Pos())
				w.applySuccess(op, recv, st, call.Pos())
				return st
			}
		}
		w.scanExpr(n.X, st)
		return st
	case *ast.AssignStmt:
		// x := Constructor(...) starts a fresh, definitely-closed producer.
		if n.Tok == token.DEFINE && len(n.Lhs) >= 1 && len(n.Rhs) >= 1 {
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, ok := ast.Unparen(rhs).(*ast.CallExpr); !ok {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" && w.isProducerType(w.pass.Pkg.Info.TypeOf(id)) {
					w.scanExpr(rhs, st)
					st[id.Name] = txnSt{kind: txnClosed, pos: id.Pos()}
					continue
				}
				w.scanExpr(rhs, st)
			}
			for _, lhs := range n.Lhs {
				w.scanExpr(lhs, st)
			}
			return st
		}
		// `_ = recv.Op()` discards the error like a bare call.
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if op, recv, ok := w.rule.opOf(w.pass.Pkg.Info, call); ok {
						w.checkOp(op, recv, st, call.Pos())
						w.applySuccess(op, recv, st, call.Pos())
						return st
					}
				}
			}
		}
		for _, e := range n.Rhs {
			w.scanExpr(e, st)
		}
		for _, e := range n.Lhs {
			w.scanExpr(e, st)
		}
		return st
	case *ast.DeclStmt:
		w.scanExpr(n.Decl, st)
		return st
	case *ast.DeferStmt:
		// A deferred abort (directly or through a helper whose closure
		// reaches one) covers every later error exit.
		if op, recv, ok := w.rule.opOf(w.pass.Pkg.Info, n.Call); ok {
			_ = recv
			if op == "AbortTxn" {
				w.deferAbort = true
			}
			return st
		}
		if fn := calleeFunc(w.pass.Pkg.Info, n.Call); fn != nil && w.rule.graph.Node(fn) != nil {
			hitAbort := func(callee *types.Func) bool {
				if op, ok := w.rule.primitiveOp(callee); ok {
					return op == "AbortTxn"
				}
				return w.rule.wrappers[callee] == "AbortTxn"
			}
			if hitAbort(fn.Origin()) || w.rule.graph.FindPath(fn.Origin(), hitAbort, nil) != nil {
				w.deferAbort = true
			}
		}
		for _, a := range n.Call.Args {
			w.scanExpr(a, st)
		}
		return st
	case *ast.GoStmt:
		for _, a := range n.Call.Args {
			w.scanExpr(a, st)
		}
		return st
	case *ast.SendStmt:
		w.scanExpr(n.Chan, st)
		w.scanExpr(n.Value, st)
		return st
	case *ast.IncDecStmt:
		w.scanExpr(n.X, st)
		return st
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, st)
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			w.scanExpr(e, st)
		}
		w.checkEscape(n, st)
		return st
	case *ast.IfStmt:
		if out, handled := w.errIdiom(n, st); handled {
			return out
		}
		st = w.stmt(n.Init, st)
		w.scanExpr(n.Cond, st)
		then := w.stmts(n.Body.List, st.clone())
		alt := st.clone()
		altTerm := false
		if n.Else != nil {
			alt = w.stmt(n.Else, alt)
			if blk, ok := n.Else.(*ast.BlockStmt); ok {
				altTerm = terminates(blk.List)
			}
		}
		switch {
		case terminates(n.Body.List) && altTerm:
			return st
		case terminates(n.Body.List):
			return alt
		case altTerm:
			return then
		}
		return joinTxn(then, alt)
	case *ast.ForStmt:
		st = w.stmt(n.Init, st)
		w.scanExpr(n.Cond, st)
		body := w.stmts(n.Body.List, st.clone())
		w.stmt(n.Post, body)
		// The loop body may or may not run (and may run again): keep only
		// what body and entry agree on.
		return joinTxn(st, body)
	case *ast.RangeStmt:
		w.scanExpr(n.X, st)
		body := w.stmts(n.Body.List, st.clone())
		return joinTxn(st, body)
	case *ast.SwitchStmt:
		st = w.stmt(n.Init, st)
		w.scanExpr(n.Tag, st)
		return w.clauses(n.Body, st)
	case *ast.TypeSwitchStmt:
		st = w.stmt(n.Init, st)
		w.stmt(n.Assign, st)
		return w.clauses(n.Body, st)
	case *ast.SelectStmt:
		var outs []txnState
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			branch := st.clone()
			branch = w.stmt(cc.Comm, branch)
			branch = w.stmts(cc.Body, branch)
			if !terminates(cc.Body) {
				outs = append(outs, branch)
			}
		}
		if len(outs) == 0 {
			return st
		}
		out := outs[0]
		for _, o := range outs[1:] {
			out = joinTxn(out, o)
		}
		return out
	default:
		return st
	}
}

func (w *txnWalker) clauses(body *ast.BlockStmt, st txnState) txnState {
	result := st
	sawDefault := false
	first := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.scanExpr(e, st)
		}
		if cc.List == nil {
			sawDefault = true
		}
		out := w.stmts(cc.Body, st.clone())
		if terminates(cc.Body) {
			continue
		}
		if first {
			result = out
			first = false
		} else {
			result = joinTxn(result, out)
		}
	}
	if !sawDefault {
		result = joinTxn(result, st)
	}
	return result
}

// errIdiom handles `if err := recv.Op(); err != nil { ... }` (and the
// err == nil flip): the op's violation check runs against the pre-state,
// then the two branches see the precise failure/success states.
func (w *txnWalker) errIdiom(n *ast.IfStmt, st txnState) (txnState, bool) {
	asn, ok := n.Init.(*ast.AssignStmt)
	if !ok || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
		return nil, false
	}
	errID, ok := asn.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := ast.Unparen(asn.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	op, recv, ok := w.rule.opOf(w.pass.Pkg.Info, call)
	if !ok {
		return nil, false
	}
	bin, ok := n.Cond.(*ast.BinaryExpr)
	if !ok {
		return nil, false
	}
	condID, ok := ast.Unparen(bin.X).(*ast.Ident)
	if !ok || condID.Name != errID.Name || !isNilIdent(bin.Y) {
		return nil, false
	}
	var failFirst bool
	switch bin.Op {
	case token.NEQ:
		failFirst = true // then-branch is the failure branch
	case token.EQL:
		failFirst = false
	default:
		return nil, false
	}

	w.checkOp(op, recv, st, call.Pos())
	succ := st.clone()
	w.applySuccess(op, recv, succ, call.Pos())
	fail := st.clone()
	w.applyFailure(op, recv, fail, call.Pos())

	thenIn, elseIn := succ, fail
	if failFirst {
		thenIn, elseIn = fail, succ
	}
	then := w.stmts(n.Body.List, thenIn.clone())
	alt := elseIn.clone()
	altTerm := false
	if n.Else != nil {
		alt = w.stmt(n.Else, alt)
		if blk, ok := n.Else.(*ast.BlockStmt); ok {
			altTerm = terminates(blk.List)
		}
	}
	switch {
	case terminates(n.Body.List) && altTerm:
		return st, true
	case terminates(n.Body.List):
		return alt, true
	case altTerm:
		return then, true
	}
	return joinTxn(then, alt), true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isProducerType reports whether t is (a pointer to) client.Producer or
// a module type owning classified wrapper methods.
func (w *txnWalker) isProducerType(t types.Type) bool {
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() == w.rule.module+"/internal/client" && named.Obj().Name() == "Producer" {
		return true
	}
	for wr := range w.rule.wrappers {
		if recv := signature(wr).Recv(); recv != nil {
			if rn := namedOf(recv.Type()); rn != nil && rn.Obj() == named.Obj() {
				return true
			}
		}
	}
	return false
}

// scanExpr walks an expression: nested protocol ops (result consumed by
// arbitrary code) widen their receiver to Unknown, and calls into module
// code that touches the txn machine widen everything.
func (w *txnWalker) scanExpr(n ast.Node, st txnState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, recv, ok := w.rule.opOf(w.pass.Pkg.Info, call); ok {
			// The op runs, but its error goes somewhere we don't model:
			// check against the pre-state, then widen.
			w.checkOp(op, recv, st, call.Pos())
			delete(st, types.ExprString(recv))
			return true
		}
		if fn := calleeFunc(w.pass.Pkg.Info, call); fn != nil {
			if w.rule.graph.Node(fn) != nil && w.rule.touchesTxn(fn) {
				for k := range st {
					delete(st, k)
				}
			}
		}
		return true
	})
}

// checkOp reports protocol violations of op against the receiver's
// current state.
func (w *txnWalker) checkOp(op string, recv ast.Expr, st txnState, pos token.Pos) {
	key := types.ExprString(recv)
	cur := st[key] // zero value = Unknown
	switch op {
	case "BeginTxn":
		if cur.kind == txnOpen {
			w.pass.Reportf(pos, "txnproto",
				"step begin: BeginTxn on %s while a transaction is already open (opened at %s)",
				key, w.pass.Fset.Position(cur.pos))
		}
	case "SendOffsetsToTxn":
		if cur.kind == txnClosed {
			w.pass.Reportf(pos, "txnproto",
				"step offsets: SendOffsetsToTxn on %s outside an open transaction (closed at %s) — offsets must ride inside the txn for exactly-once",
				key, w.pass.Fset.Position(cur.pos))
		}
	case "CommitTxn", "AbortTxn":
		if cur.kind == txnClosed {
			w.pass.Reportf(pos, "txnproto",
				"step commit: %s on %s with no open transaction: BeginTxn is not reached on this path (closed at %s)",
				op, key, w.pass.Fset.Position(cur.pos))
		}
	}
}

// applySuccess transitions the receiver's state as if op succeeded.
func (w *txnWalker) applySuccess(op string, recv ast.Expr, st txnState, pos token.Pos) {
	key := types.ExprString(recv)
	switch op {
	case "BeginTxn":
		st[key] = txnSt{kind: txnOpen, pos: pos}
	case "CommitTxn", "AbortTxn":
		st[key] = txnSt{kind: txnClosed, pos: pos}
	case "SendOffsetsToTxn":
		// Offsets do not move the machine; a successful call implies the
		// txn was open.
		st[key] = txnSt{kind: txnOpen, pos: pos}
	}
}

// applyFailure transitions the receiver's state as if op failed.
func (w *txnWalker) applyFailure(op string, recv ast.Expr, st txnState, pos token.Pos) {
	key := types.ExprString(recv)
	switch op {
	case "BeginTxn":
		// Failed begin: no transaction opened; keep the pre-state.
	case "CommitTxn":
		// Failed commit: the transaction is still open and must be
		// aborted by someone.
		st[key] = txnSt{kind: txnOpen, pos: pos}
	case "AbortTxn":
		// Failed abort still ends this attempt's protocol obligations.
		st[key] = txnSt{kind: txnClosed, pos: pos}
	case "SendOffsetsToTxn":
		// Failure leaves the txn as it was.
	}
}

// checkEscape fires at a return statement: if this is an error path (the
// function returns a non-nil final error expression) and some receiver
// is definitely Open, an abort must be reachable from a transitive
// caller or registered via defer.
func (w *txnWalker) checkEscape(ret *ast.ReturnStmt, st txnState) {
	if !w.hasErr || w.deferAbort || len(ret.Results) == 0 {
		return
	}
	if isNilIdent(ret.Results[len(ret.Results)-1]) {
		return
	}
	var open []string
	for key, v := range st {
		if v.kind == txnOpen {
			open = append(open, key)
		}
	}
	if len(open) == 0 {
		return
	}
	sort.Strings(open)
	if w.rule.abortReachable(w.fn) {
		return
	}
	for _, key := range open {
		w.pass.Reportf(ret.Pos(), "txnproto",
			"step abort: error path returns with the transaction on %s still open (opened at %s) and no AbortTxn reachable in any caller — the txn leaks until the coordinator times it out",
			key, w.pass.Fset.Position(st[key].pos))
	}
}
