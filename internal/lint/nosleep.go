package lint

import "go/ast"

// noSleep flags raw time.Sleep calls in production code. A bare sleep in
// the broker/client/core hot paths is invisible to fault injection and to
// Close/kill cancellation: the determinism chaos tests rely on (and the
// paper's repeatable commit-cycle timing) requires waits to go through
// internal/retry's backoff loops or the retry.Clock so tests can observe,
// clamp, and cancel them.
type noSleep struct{}

func (noSleep) Name() string { return "nosleep" }
func (noSleep) Doc() string {
	return "no raw time.Sleep in production code; wait via internal/retry (Loop.Wait or Clock)"
}

func (noSleep) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(p.Pkg.Info, call); isPkgFunc(fn, "time", "Sleep") {
				p.Reportf(call.Pos(), "nosleep",
					"raw time.Sleep: route the wait through internal/retry (Loop.Wait or Clock.Sleep) so fault-injection timing stays deterministic and cancellable")
			}
			return true
		})
	}
}
