package lint_test

import (
	"strings"
	"sync"
	"testing"

	"kstreams/internal/lint"
)

// The loader is shared across tests: it memoizes type-checked module
// packages (transport, client, obs, ...) that every fixture imports, and
// the stdlib source importer is the expensive part of a cold load.
var (
	loaderOnce sync.Once
	sharedLdr  *lint.Loader
	loaderErr  error
)

func testLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() { sharedLdr, loaderErr = lint.NewLoader("../..") })
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return sharedLdr
}

// lintFixture type-checks src as a single-file package at dirRel and runs
// the named rules (all rules when none given) with cfg.
func lintFixture(t *testing.T, cfg lint.Config, dirRel, src string, rules ...string) []lint.Diagnostic {
	t.Helper()
	ldr := testLoader(t)
	pkg, err := ldr.LoadFixture(dirRel, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatalf("fixture %s: %v", dirRel, err)
	}
	return lint.LintPackage(ldr, pkg, cfg, pickAnalyzers(ldr, rules))
}

func pickAnalyzers(ldr *lint.Loader, rules []string) []lint.Analyzer {
	all := lint.Analyzers(ldr.ModulePath())
	if len(rules) == 0 {
		return all
	}
	keep := make(map[string]bool, len(rules))
	for _, r := range rules {
		keep[r] = true
	}
	var sel []lint.Analyzer
	for _, a := range all {
		if keep[a.Name()] {
			sel = append(sel, a)
		}
	}
	return sel
}

// wantFindings asserts the diagnostics' rules match want exactly (order
// follows the stable sort).
func wantFindings(t *testing.T, diags []lint.Diagnostic, want ...string) {
	t.Helper()
	var got []string
	for _, d := range diags {
		got = append(got, d.Rule)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %v\n%s", len(got), got, want, render(diags))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("finding %d rule = %s, want %s\n%s", i, got[i], want[i], render(diags))
		}
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}

// --- nosleep ---

func TestNoSleepFlagsRawSleep(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/nosleep_tp", `
package fixture

import "time"

func wait() {
	time.Sleep(5 * time.Millisecond)
}
`, "nosleep")
	wantFindings(t, diags, "nosleep")
	if !strings.Contains(diags[0].Message, "internal/retry") {
		t.Fatalf("message should point at the retry clock: %s", diags[0].Message)
	}
}

func TestNoSleepIgnoresClockAndHomonyms(t *testing.T) {
	// Clock.Sleep is the sanctioned seam; a local method named Sleep and
	// time.After are different functions entirely.
	diags := lintFixture(t, lint.Config{}, "lintfixture/nosleep_ok", `
package fixture

import (
	"time"

	"kstreams/internal/retry"
)

type throttler struct{}

func (throttler) Sleep(d time.Duration) {}

func wait(c retry.Clock) {
	retry.Or(c).Sleep(time.Millisecond)
	throttler{}.Sleep(time.Millisecond)
	<-time.After(0)
}
`, "nosleep")
	wantFindings(t, diags)
}

// --- norawrand ---

func TestNoRawRandFlagsGlobalFuncs(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/norawrand_tp", `
package fixture

import "math/rand"

func draw() int {
	rand.Shuffle(3, func(i, j int) {})
	return rand.Intn(10)
}
`, "norawrand")
	wantFindings(t, diags, "norawrand", "norawrand")
}

func TestNoRawRandAllowsSeededSource(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/norawrand_ok", `
package fixture

import "math/rand"

func draw() int {
	r := rand.New(rand.NewSource(42))
	r.Shuffle(3, func(i, j int) {})
	return r.Intn(10)
}
`, "norawrand")
	wantFindings(t, diags)
}

// --- lockheld-rpc ---

func TestLockHeldFlagsRPCUnderMutex(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockheld_tp", `
package fixture

import (
	"sync"

	"kstreams/internal/transport"
)

type node struct {
	mu  sync.Mutex
	net *transport.Network
}

func (n *node) rpc() {
	n.mu.Lock()
	n.net.SendTraced(1, 2, nil, nil)
	n.mu.Unlock()
}
`, "lockheld-rpc")
	wantFindings(t, diags, "lockheld-rpc")
	if !strings.Contains(diags[0].Message, "n.mu") {
		t.Fatalf("message should name the held lock: %s", diags[0].Message)
	}
}

func TestLockHeldFlagsChannelSendAndDeferScope(t *testing.T) {
	// defer mu.Unlock() keeps the lock held to the end of the body, so
	// the bare channel send below is under the lock.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockheld_chan", `
package fixture

import "sync"

type q struct {
	mu sync.Mutex
	ch chan int
}

func (s *q) push(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- v
}
`, "lockheld-rpc")
	wantFindings(t, diags, "lockheld-rpc")
	if !strings.Contains(diags[0].Message, "channel send") {
		t.Fatalf("message should say channel send: %s", diags[0].Message)
	}
}

func TestLockHeldNearMisses(t *testing.T) {
	// Unlock-before-RPC, a select comm send (cancellable), and a send
	// inside a FuncLit (separate goroutine discipline) are all clean.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockheld_ok", `
package fixture

import (
	"sync"

	"kstreams/internal/transport"
)

type node struct {
	mu   sync.Mutex
	net  *transport.Network
	stop chan struct{}
	ch   chan int
}

func (n *node) rpc() {
	n.mu.Lock()
	n.mu.Unlock()
	n.net.SendTraced(1, 2, nil, nil)
}

func (n *node) trySend(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	select {
	case n.ch <- v:
	case <-n.stop:
	}
}

func (n *node) spawn() {
	n.mu.Lock()
	defer n.mu.Unlock()
	f := func() { n.net.SendTraced(1, 2, nil, nil) }
	_ = f
}
`, "lockheld-rpc")
	wantFindings(t, diags)
}

func TestLockHeldBranchJoin(t *testing.T) {
	// A terminating error branch must not weaken the join: after
	// `if bad { mu.Unlock(); return }` the lock is still held on the
	// fall-through, so the RPC is flagged. The second function unlocks on
	// every live path, so its RPC is clean.
	diags := lintFixture(t, lint.Config{}, "lintfixture/lockheld_join", `
package fixture

import (
	"sync"

	"kstreams/internal/transport"
)

type node struct {
	mu  sync.Mutex
	net *transport.Network
}

func (n *node) heldOnFallthrough(bad bool) {
	n.mu.Lock()
	if bad {
		n.mu.Unlock()
		return
	}
	n.net.SendTraced(1, 2, nil, nil)
	n.mu.Unlock()
}

func (n *node) releasedOnEveryPath(bad bool) {
	n.mu.Lock()
	if bad {
		n.mu.Unlock()
	} else {
		n.mu.Unlock()
	}
	n.net.SendTraced(1, 2, nil, nil)
}
`, "lockheld-rpc")
	wantFindings(t, diags, "lockheld-rpc")
	if diags[0].Pos.Line != 21 {
		t.Fatalf("finding at line %d, want 21 (the fall-through RPC)\n%s", diags[0].Pos.Line, render(diags))
	}
}

// --- sendtraced ---

func TestSendTracedFlagsRawSend(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/sendtraced_tp", `
package fixture

import "kstreams/internal/transport"

func call(n *transport.Network) {
	n.Send(1, 2, "ping")
}
`, "sendtraced")
	wantFindings(t, diags, "sendtraced")
}

func TestSendTracedAcceptsTracedAndHomonyms(t *testing.T) {
	// SendTraced with an explicit nil is the sanctioned spelling; a Send
	// method on an unrelated type is out of scope.
	diags := lintFixture(t, lint.Config{}, "lintfixture/sendtraced_ok", `
package fixture

import "kstreams/internal/transport"

type mailer struct{}

func (mailer) Send(to string) {}

func call(n *transport.Network) {
	n.SendTraced(1, 2, "ping", nil)
	mailer{}.Send("x")
}
`, "sendtraced")
	wantFindings(t, diags)
}

// --- errdrop ---

func TestErrDropFlagsDiscardedError(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/errdrop_tp", `
package fixture

import "kstreams/internal/client"

func cleanup(p *client.Producer) {
	p.AbortTxn()
}
`, "errdrop")
	wantFindings(t, diags, "errdrop")
	if !strings.Contains(diags[0].Message, "Producer.AbortTxn") {
		t.Fatalf("message should name the API: %s", diags[0].Message)
	}
}

func TestErrDropNearMisses(t *testing.T) {
	// An explicit `_ =` documents the decision; a handled error is the
	// point; a non-error result in statement position is someone else's
	// problem (govet's, if anyone's).
	diags := lintFixture(t, lint.Config{}, "lintfixture/errdrop_ok", `
package fixture

import (
	"kstreams/internal/broker"
	"kstreams/internal/client"
)

func cleanup(p *client.Producer) error {
	_ = p.AbortTxn()
	if err := p.Flush(); err != nil {
		return err
	}
	broker.CoordinatorPartition("group", 8)
	return nil
}
`, "errdrop")
	wantFindings(t, diags)
}

// --- obsnames ---

func TestObsNamesFlagsSchemeViolations(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/obsnames_tp", `
package fixture

import "kstreams/internal/obs"

func register(r *obs.Registry, suffix string) {
	r.Counter("bogus_things_total")    // unknown area
	r.Counter("broker_appends")       // counter without _total
	r.Gauge("BrokerDepth")            // not lower_snake_case
	r.Histogram("txn_commit" + suffix) // computed name
}
`, "obsnames")
	wantFindings(t, diags, "obsnames", "obsnames", "obsnames", "obsnames")
	for want, frag := range map[int]string{
		0: "unknown area", 1: "_total", 2: "lower_snake_case", 3: "compile-time constant",
	} {
		if !strings.Contains(diags[want].Message, frag) {
			t.Fatalf("finding %d should mention %q: %s", want, frag, diags[want].Message)
		}
	}
}

func TestObsNamesAcceptsSchemeAndLegacy(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/obsnames_ok", `
package fixture

import "kstreams/internal/obs"

const commitName = "stream_commit_cycles_total"

func register(r *obs.Registry) {
	r.Counter(commitName)
	r.Counter("transport_rpcs_attempted") // grandfathered pre-§7 aggregate
	r.Gauge("group_members_active")
	r.SizeHistogram("broker_batch_bytes")
}
`, "obsnames")
	wantFindings(t, diags)
}

func TestObsNamesSingleOwnerAcrossPackages(t *testing.T) {
	// The Finalize pass sees the whole module: the same family registered
	// from two packages is exactly one finding, attributed to the
	// lexically-later package.
	ldr := testLoader(t)
	src := `
package fixture

import "kstreams/internal/obs"

func register(r *obs.Registry) {
	r.Gauge("stream_tasks_assigned")
}
`
	a, err := ldr.LoadFixture("lintfixture/owner_a", map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ldr.LoadFixture("lintfixture/owner_b", map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	mod := &lint.Module{Root: ldr.Root(), Path: ldr.ModulePath(), Fset: ldr.Fset(), Pkgs: []*lint.Package{a, b}}
	diags := lint.RunAnalyzers(mod, lint.Config{}, pickAnalyzers(ldr, []string{"obsnames"}))
	wantFindings(t, diags, "obsnames")
	if !strings.Contains(diags[0].Message, "multiple packages") ||
		!strings.Contains(diags[0].Message, "lintfixture/owner_a") {
		t.Fatalf("finding should name both owners: %s", diags[0].Message)
	}
}

// --- suppression comments ---

func TestIgnoreCommentSuppresses(t *testing.T) {
	// Trailing comment suppresses its own line; a standalone comment
	// suppresses the line below; a comment naming a different rule does
	// not; the unsuppressed call still fires.
	diags := lintFixture(t, lint.Config{}, "lintfixture/suppress", `
package fixture

import "time"

func wait() {
	time.Sleep(time.Millisecond) //kslint:ignore nosleep settle is the scenario
	//kslint:ignore nosleep warm-up is wall-clock by design
	time.Sleep(time.Millisecond)
	time.Sleep(time.Millisecond) //kslint:ignore errdrop wrong rule
	time.Sleep(time.Millisecond)
}
`, "nosleep")
	wantFindings(t, diags, "nosleep", "nosleep")
	if diags[0].Pos.Line != 10 || diags[1].Pos.Line != 11 {
		t.Fatalf("unsuppressed findings at lines %d,%d; want 10,11\n%s",
			diags[0].Pos.Line, diags[1].Pos.Line, render(diags))
	}
}

func TestIgnoreAllAndMultiRule(t *testing.T) {
	diags := lintFixture(t, lint.Config{}, "lintfixture/suppress_multi", `
package fixture

import (
	"math/rand"
	"time"
)

func jitter() {
	//kslint:ignore nosleep,norawrand demo path
	time.Sleep(time.Duration(rand.Intn(3)))
	time.Sleep(time.Duration(rand.Intn(3))) //kslint:ignore all demo path
}
`, "nosleep", "norawrand")
	wantFindings(t, diags)
}

// --- allowlists ---

func TestAllowlistScopesByPathPrefix(t *testing.T) {
	src := `
package fixture

import "time"

func wait() { time.Sleep(time.Millisecond) }
`
	cfg := lint.Config{Allow: map[string][]string{"nosleep": {"lintfixture/allowed"}}}
	if diags := lintFixture(t, cfg, "lintfixture/allowed/sub", src, "nosleep"); len(diags) != 0 {
		t.Fatalf("allowlisted subdir still flagged:\n%s", render(diags))
	}
	diags := lintFixture(t, cfg, "lintfixture/allowedelsewhere", src, "nosleep")
	wantFindings(t, diags, "nosleep")
}

func TestDefaultConfigAllowsHarnessSleeps(t *testing.T) {
	// internal/harness drives wall-clock experiments; the repo policy
	// exempts it from nosleep but not from errdrop.
	src := `
package fixture

import "time"

func settle() { time.Sleep(time.Millisecond) }
`
	diags := lintFixture(t, lint.DefaultConfig(), "internal/harness/sub", src, "nosleep")
	wantFindings(t, diags)
}

// --- whole-module self-check ---

// TestModuleIsClean is the linter's own acceptance gate: the repository —
// including internal/lint and cmd/kslint themselves — must produce zero
// unsuppressed diagnostics under the default policy. This is the same
// invocation `make lint` runs.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow")
	}
	diags, err := lint.Run("../..", lint.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("module not clean:\n%s", render(diags))
	}
}
