package lint

// Shared machinery for the goroutine-lifecycle rules (goleak, chanown,
// waitbalance, spinloop; DESIGN.md §12). The rules agree on three
// resolutions so their findings compose:
//
//   - a *signal channel* is `chan struct{}` — the repo's stop/done idiom.
//     Receiving from one is a termination witness; `clock.After` channels
//     carry time.Time and deliberately do not qualify (a tick is not a
//     shutdown order).
//   - a *channel class* names a channel that outlives one function: a
//     struct field ("pkg.Type.field") or a package-level var ("pkg.var").
//     Locals that alias one (stop := c.hbStop) resolve to the same class,
//     one assignment level deep, so a close through the alias still
//     counts against the field's ownership.
//   - a *spawned body* is what a `go` statement runs: a FuncLit checked
//     in place, or a declared function/method resolved through the call
//     graph. Func values and stdlib callees are unresolvable and skipped.

import (
	"go/ast"
	"go/types"
	"sort"
)

// isChanType reports whether t is (or points at) a channel type.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isSignalChan reports whether t is a channel of struct{} — the
// stop/done signal idiom (ctx.Done() has this shape too).
func isSignalChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// chanClassOf resolves the channel class of e: "pkg.Type.field" for a
// struct-field channel, "pkg.var" for a package-level channel, or "" for
// locals, parameters, and anything else. aliases (optional) maps local
// objects to the class they were assigned from.
func chanClassOf(info *types.Info, e ast.Expr, aliases map[types.Object]string) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok && sel.Obj() != nil {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
			return ""
		}
		// Qualified package-level var: pkg.Var.
		if id, ok := x.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
					return v.Pkg().Path() + "." + v.Name()
				}
			}
		}
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return ""
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
		if aliases != nil {
			return aliases[obj]
		}
	}
	return ""
}

// chanAliases maps each local channel variable in body to the channel
// class it aliases (stop := c.hbStop), flow-insensitively and one level
// deep. Good enough for the close-through-local idiom; a re-aliased
// local resolves to its last recorded source.
func chanAliases(info *types.Info, body *ast.BlockStmt) map[types.Object]string {
	out := make(map[types.Object]string)
	ast.Inspect(body, func(n ast.Node) bool {
		asn, ok := n.(*ast.AssignStmt)
		if !ok || len(asn.Lhs) != len(asn.Rhs) {
			return true
		}
		for i := range asn.Lhs {
			id, ok := ast.Unparen(asn.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isChanType(obj.Type()) {
				continue
			}
			if cls := chanClassOf(info, asn.Rhs[i], nil); cls != "" {
				out[obj] = cls
			}
		}
		return true
	})
	return out
}

// isCloseCall reports whether call is the builtin close and returns its
// argument.
func isCloseCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "close" || len(call.Args) != 1 {
		return nil, false
	}
	if _, builtin := info.Uses[fun].(*types.Builtin); !builtin {
		return nil, false
	}
	return call.Args[0], true
}

// spawnTargets resolves what a go statement runs: the FuncLit spawned in
// place (lit non-nil), or the declared module function the call graph
// knows (fn non-nil). Both nil means the target is a func value or an
// external function the analysis cannot enter.
func spawnTargets(info *types.Info, graph *CallGraph, g *ast.GoStmt) (lit *ast.FuncLit, fn *types.Func) {
	if l, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return l, nil
	}
	callee := calleeFunc(info, g.Call)
	if callee == nil {
		return nil, nil
	}
	callee = callee.Origin()
	if node := graph.Node(callee); node != nil && node.Decl != nil {
		return nil, callee
	}
	return nil, nil
}

// litCallees lists the module functions a FuncLit calls directly
// (nested go statements excluded: those goroutines are checked at their
// own spawn sites). Order follows the source, so downstream walks stay
// deterministic.
func litCallees(info *types.Info, graph *CallGraph, lit *ast.FuncLit) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if g, ok := m.(*ast.GoStmt); ok {
				// Still resolve arguments, but not the spawned call.
				for _, a := range g.Call.Args {
					walk(a)
				}
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			fn = fn.Origin()
			if seen[fn] {
				return true
			}
			if node := graph.Node(fn); node != nil && node.Decl != nil {
				seen[fn] = true
				out = append(out, fn)
			}
			return true
		})
	}
	walk(lit.Body)
	return out
}

// sortDiags orders findings by position for deterministic module-wide
// reporting (the Finalize-based rules collect before emitting).
func sortDiags(found []Diagnostic) {
	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// wgMethod reports whether call invokes sync.WaitGroup's name method and
// returns the receiver expression.
func wgMethod(info *types.Info, call *ast.CallExpr, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if !isMethod(fn, "sync", "WaitGroup", name) {
		return nil, false
	}
	return sel.X, true
}
