package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// obsNames enforces the DESIGN §7 metric namespace on every registration
// against the internal/obs registry (Counter, Gauge, Histogram,
// SizeHistogram):
//
//   - the family name must be a compile-time constant — dynamic names
//     defeat dashboards and make snapshots non-reproducible;
//   - it must follow the area_noun_unit scheme: a known area prefix
//     (transport, broker, group, txn, client, stream, completeness,
//     export, flightrec, obs) followed by lower_snake_case words;
//   - counter families end in _total (the two pre-§7 legacy aggregate
//     counters are grandfathered);
//   - each family is registered from a single package, so ownership of a
//     name is unambiguous (checked module-wide in Finalize).
type obsNames struct {
	module   string
	families map[string]map[string]token.Position // name -> registering pkg dir -> first pos
}

func newObsNames(module string) *obsNames {
	return &obsNames{module: module, families: make(map[string]map[string]token.Position)}
}

func (*obsNames) Name() string { return "obsnames" }
func (*obsNames) Doc() string {
	return "obs metric families follow the DESIGN §7 area_noun_unit scheme, from a single package"
}

var (
	obsNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)
	obsAreas  = map[string]bool{
		"transport": true, "broker": true, "group": true, "txn": true,
		"client": true, "stream": true,
		// Completeness-observability families (DESIGN §11): event-time
		// watermark/lag, the HTTP export plane, the span flight recorder,
		// and the registry's own meta-metrics (label-cardinality guard).
		"completeness": true, "export": true, "flightrec": true, "obs": true,
		// Recovery families (DESIGN §13): cooperative-rebalance revocation
		// accounting, standby-replica tailing lag, and failover MTTR.
		"rebalance": true, "standby": true, "recovery": true,
	}
	obsRegFns  = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "SizeHistogram": true}
	legacyObs  = map[string]bool{"transport_rpcs_attempted": true, "transport_rpcs_delivered": true}
	obsAreaMsg = "transport|broker|group|txn|client|stream|completeness|export|flightrec|obs|rebalance|standby|recovery"
)

func (o *obsNames) Run(p *Pass) {
	obsPkg := o.module + "/internal/obs"
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil || !obsRegFns[fn.Name()] || !isMethod(fn, obsPkg, "Registry", fn.Name()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := p.Pkg.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				p.Reportf(arg.Pos(), "obsnames",
					"metric family name must be a compile-time constant string, not a computed value")
				return true
			}
			name := constant.StringVal(tv.Value)
			o.checkName(p, arg.Pos(), fn.Name(), name)
			byPkg := o.families[name]
			if byPkg == nil {
				byPkg = make(map[string]token.Position)
				o.families[name] = byPkg
			}
			if _, seen := byPkg[p.Pkg.Dir]; !seen {
				byPkg[p.Pkg.Dir] = p.Fset.Position(arg.Pos())
			}
			return true
		})
	}
}

func (o *obsNames) checkName(p *Pass, pos token.Pos, kind, name string) {
	if legacyObs[name] {
		return
	}
	if !obsNameRE.MatchString(name) {
		p.Reportf(pos, "obsnames",
			"metric family %q is not area_noun_unit lower_snake_case (see DESIGN §7)", name)
		return
	}
	area := name[:strings.Index(name, "_")]
	if !obsAreas[area] {
		p.Reportf(pos, "obsnames",
			"metric family %q has unknown area %q: the DESIGN §7 namespace starts with %s", name, area, obsAreaMsg)
	}
	if kind == "Counter" && !strings.HasSuffix(name, "_total") {
		p.Reportf(pos, "obsnames",
			"counter family %q must end in _total (see DESIGN §7)", name)
	}
}

// Finalize reports families registered from more than one package.
func (o *obsNames) Finalize(report func(Diagnostic)) {
	names := make([]string, 0, len(o.families))
	for name := range o.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		byPkg := o.families[name]
		if len(byPkg) < 2 {
			continue
		}
		dirs := make([]string, 0, len(byPkg))
		for d := range byPkg {
			dirs = append(dirs, d)
		}
		sort.Strings(dirs)
		for _, d := range dirs[1:] {
			report(Diagnostic{
				Pos:  byPkg[d],
				Rule: "obsnames",
				Message: "metric family \"" + name + "\" is registered from multiple packages (" +
					strings.Join(dirs, ", ") + "): one package must own each family",
			})
		}
	}
}
