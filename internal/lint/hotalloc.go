package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotAlloc enforces allocation discipline on the hot path. The hot path
// is policy, not heuristics: a function carrying `//kslint:hotpath` in
// its doc comment is a root (produce append, fetch, batch encode/decode,
// obs counter increments), and everything statically reachable from a
// root through the call graph inherits the discipline. A function
// carrying `//kslint:coldpath <reason>` is a seam: reachability stops
// there, and calls into it are exempt — that is how a hot function
// delegates its error-formatting or stall diagnostics without dragging
// fmt into the steady state.
//
// Inside the hot region, four allocation patterns are findings:
//
//  1. calls into fmt.* or log.* — formatting boxes every operand and
//     serializes on the output path;
//  2. grow-append in a loop to a slice the function created without
//     capacity — each growth is an allocation plus a copy;
//  3. boxing a concrete non-pointer-shaped value into an interface
//     parameter — one heap allocation per call;
//  4. per-iteration make/new or string↔[]byte conversions in a loop —
//     an allocation per record.
//
// Findings carry the shortest hot chain from a root, wallclock-style,
// so the reader sees why the function is considered hot. Append targets
// that are parameters are exempt (the caller owns preallocation, as in
// protocol.AppendBatch's dst), as are append targets behind selectors
// (field buffers are typically amortized across calls).
type hotAlloc struct {
	module string
	fset   *token.FileSet
	graph  *CallGraph
}

func newHotAlloc(module string) *hotAlloc { return &hotAlloc{module: module} }

func (*hotAlloc) Name() string { return "hotalloc" }
func (*hotAlloc) Doc() string {
	return "no fmt/log calls, unpreallocated grow-append, interface boxing, or per-record allocation reachable from //kslint:hotpath roots"
}

func (h *hotAlloc) Run(p *Pass) {
	h.fset = p.Fset
	h.graph = p.Graph
}

func declMarked(decl *ast.FuncDecl, marker string) bool {
	if decl == nil || decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

func (h *hotAlloc) Finalize(report func(Diagnostic)) {
	if h.graph == nil {
		return
	}
	// Collect annotated roots and coldpath seams.
	var roots []*types.Func
	cold := make(map[*types.Func]bool)
	for _, fn := range h.graph.Funcs() {
		node := h.graph.Node(fn)
		if declMarked(node.Decl, "kslint:hotpath") {
			roots = append(roots, fn)
		}
		if declMarked(node.Decl, "kslint:coldpath") {
			cold[fn] = true
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return FuncID(roots[i]) < FuncID(roots[j]) })

	// Multi-source BFS; parent links give the shortest hot chain.
	parent := make(map[*types.Func]*types.Func)
	reach := make(map[*types.Func]bool)
	queue := append([]*types.Func(nil), roots...)
	for _, r := range roots {
		reach[r] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := h.graph.Node(fn)
		if node == nil || node.Decl == nil {
			continue
		}
		for _, e := range node.Edges {
			callee := e.Callee.Origin()
			if reach[callee] || cold[callee] {
				continue
			}
			if n := h.graph.Node(callee); n == nil || n.Decl == nil {
				continue // stdlib and external leaves checked at the edge, not entered
			}
			reach[callee] = true
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}

	chain := func(fn *types.Func) string {
		var names []string
		for f := fn; f != nil; f = parent[f] {
			names = append(names, h.graph.displayName(f))
		}
		for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
			names[i], names[j] = names[j], names[i]
		}
		return "hot via " + strings.Join(names, " → ")
	}

	var found []Diagnostic
	seen := make(map[string]bool)
	hit := func(pos token.Pos, format string) {
		p := h.fset.Position(pos)
		key := p.String() + "|" + format
		if seen[key] {
			return
		}
		seen[key] = true
		found = append(found, Diagnostic{Pos: p, Rule: "hotalloc", Message: format})
	}

	for _, fn := range h.graph.Funcs() {
		if !reach[fn] {
			continue
		}
		node := h.graph.Node(fn)
		h.checkFmtEdges(node, cold, chain, hit)
		h.checkBody(node, cold, chain, hit)
	}

	sort.Slice(found, func(i, j int) bool {
		a, b := found[i], found[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	for _, d := range found {
		report(d)
	}
}

// checkFmtEdges flags calls into fmt and log from a hot function.
func (h *hotAlloc) checkFmtEdges(node *CGNode, cold map[*types.Func]bool, chain func(*types.Func) string, hit func(token.Pos, string)) {
	for _, e := range node.Edges {
		pkg := e.Callee.Pkg()
		if pkg == nil || cold[e.Callee.Origin()] {
			continue
		}
		if pkg.Path() == "fmt" || pkg.Path() == "log" {
			hit(e.Pos, "hot path calls "+pkg.Path()+"."+e.Callee.Name()+
				" ("+chain(node.Fn)+"): formatting boxes every operand and allocates; move it behind a //kslint:coldpath helper")
		}
	}
}

// preallocated collects local slice objects initialized with a sized
// make: make(T, n, cap) always, make(T, n) when n is a non-zero literal.
func preallocated(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" {
			return
		}
		if _, builtin := info.Uses[fun].(*types.Builtin); !builtin {
			return
		}
		sized := len(call.Args) >= 3
		if len(call.Args) == 2 {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); !ok || lit.Value != "0" {
				sized = true
			}
		}
		if !sized {
			return
		}
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					record(x.Lhs[i], x.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) == len(x.Names) {
				for i := range x.Names {
					record(x.Names[i], x.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// checkBody flags in-loop grow-append, interface boxing, and in-loop
// make/new/string-conversion allocations inside one hot function.
func (h *hotAlloc) checkBody(node *CGNode, cold map[*types.Func]bool, chain func(*types.Func) string, hit func(token.Pos, string)) {
	body := node.Decl.Body
	if body == nil {
		return
	}
	info := node.Pkg.Info
	prealloc := preallocated(info, body)
	where := chain(node.Fn)

	var walk func(n ast.Node, loopDepth int)
	walk = func(n ast.Node, loopDepth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.ForStmt:
				if x.Init != nil {
					walk(x.Init, loopDepth)
				}
				walk(x.Body, loopDepth+1)
				return false
			case *ast.RangeStmt:
				walk(x.Body, loopDepth+1)
				return false
			case *ast.AssignStmt:
				if loopDepth > 0 {
					h.checkGrowAppend(info, x, prealloc, node, where, hit)
				}
			case *ast.CallExpr:
				h.checkCall(info, x, cold, loopDepth, where, hit)
			}
			return true
		})
	}
	walk(body, 0)
}

// checkGrowAppend flags x = append(x, ...) in a loop when x is a local
// the function created without capacity. Parameters (caller preallocates)
// and selector targets (amortized field buffers) are exempt.
func (h *hotAlloc) checkGrowAppend(info *types.Info, asn *ast.AssignStmt, prealloc map[types.Object]bool, node *CGNode, where string, hit func(token.Pos, string)) {
	if len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(asn.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return
	}
	if _, builtin := info.Uses[fun].(*types.Builtin); !builtin {
		return
	}
	lhs, ok := ast.Unparen(asn.Lhs[0]).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || arg0.Name != lhs.Name {
		return
	}
	obj := info.Uses[lhs]
	if obj == nil {
		obj = info.Defs[lhs]
	}
	if obj == nil || prealloc[obj] {
		return
	}
	// Locals only: an object declared inside the body. Parameters and
	// named results sit in the signature, outer captures elsewhere.
	if obj.Pos() < node.Decl.Body.Pos() || obj.Pos() > node.Decl.Body.End() {
		return
	}
	hit(asn.Pos(), "grow-append to "+lhs.Name+" in a loop ("+where+
		"): every growth reallocates and copies; preallocate with make(T, 0, n)")
}

func pointerShaped(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Info()&types.IsUntyped != 0
	}
	return false
}

// checkCall flags interface boxing at hot call sites and, inside loops,
// per-record make/new and string↔[]byte conversions.
func (h *hotAlloc) checkCall(info *types.Info, call *ast.CallExpr, cold map[*types.Func]bool, loopDepth int, where string, hit func(token.Pos, string)) {
	// Builtin make/new in a loop.
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, builtin := info.Uses[fun].(*types.Builtin); builtin {
			if loopDepth > 0 && (fun.Name == "make" || fun.Name == "new") {
				hit(call.Pos(), "per-iteration "+fun.Name+" in a loop ("+where+"): allocates per record; hoist or pool the buffer")
			}
			return
		}
	}
	// Conversions: string([]byte) / []byte(string) copy per record.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if loopDepth > 0 && len(call.Args) == 1 {
			to, from := tv.Type.Underlying(), info.TypeOf(call.Args[0])
			if from != nil && convAllocates(to, from.Underlying()) {
				hit(call.Pos(), "per-iteration string↔[]byte conversion in a loop ("+where+"): copies per record")
			}
		}
		return
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return // func values and method expressions: untracked
	}
	fn = fn.Origin()
	if cold[fn] {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "log") {
		return // already flagged as a fmt/log edge
	}
	sig := signature(fn)
	if sig == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos && i == np-1 {
				pt = sig.Params().At(np - 1).Type() // slice passed through, no boxing
			} else if s, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, iface := pt.Underlying().(*types.Interface); !iface {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || pointerShaped(at) {
			continue
		}
		hit(arg.Pos(), "argument boxes a "+at.String()+" into an interface parameter of "+
			h.graph.displayName(fn)+" ("+where+"): boxing allocates per call")
	}
}

// convAllocates reports whether a conversion between these underlying
// types copies memory (string↔[]byte/[]rune).
func convAllocates(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.(*types.Slice)
		if !ok {
			return false
		}
		e, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}
