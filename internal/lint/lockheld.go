package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockHeld is an intra-procedural check that no sync.Mutex/RWMutex is
// held across a transport RPC ((*Network).Send/SendTraced) or a blocking
// channel send. The transport invokes the destination handler
// synchronously in the caller's goroutine, so an RPC made under a lock
// can re-enter the same lock through the handler (deadlock) and at
// minimum serializes every contender behind an injected network delay —
// the hazard class the retry chaos tests hunt dynamically, checked here
// statically.
//
// The path-sensitive held-set machinery lives in lockWalker, which is
// shared with the lockorder and lockbalance rules through hooks: the
// walker owns branching/join/defer/select semantics, the rules own what
// to do at acquisitions, expressions, sends, and exits.
type lockHeld struct{ module string }

func (lockHeld) Name() string { return "lockheld-rpc" }
func (lockHeld) Doc() string {
	return "no mutex held across a transport Send/SendTraced or a blocking channel send"
}

func (l lockHeld) Run(p *Pass) {
	transport := l.module + "/internal/transport"
	reportHeld := func(pos token.Pos, held lockset, what string) {
		for key, at := range held {
			p.Reportf(pos, "lockheld-rpc",
				"%s while holding %s (locked at %s): release the lock first — the handler runs synchronously and may re-enter it",
				what, key, p.Fset.Position(at))
		}
	}
	w := &lockWalker{pass: p, hooks: lockHooks{
		keyOf: func(recv ast.Expr) (string, bool) { return types.ExprString(recv), true },
		onExpr: func(n ast.Node, held lockset) {
			ast.Inspect(n, func(x ast.Node) bool {
				switch e := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.CallExpr:
					fn := calleeFunc(p.Pkg.Info, e)
					if isMethod(fn, transport, "Network", "Send") || isMethod(fn, transport, "Network", "SendTraced") {
						reportHeld(e.Pos(), held, "transport RPC")
					}
				}
				return true
			})
		},
		onSend: func(pos token.Pos, held lockset) { reportHeld(pos, held, "channel send") },
	}}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.walkBody(fn.Body)
				}
			case *ast.FuncLit:
				w.walkBody(fn.Body)
			}
			return true
		})
	}
}

// lockset maps a lock's identity (per the rule's keyOf) to where it was
// acquired.
type lockset map[string]token.Pos

func (s lockset) clone() lockset {
	out := make(lockset, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func intersect(a, b lockset) lockset {
	out := lockset{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// lockHooks parameterize the shared walker. Any hook may be nil.
type lockHooks struct {
	// keyOf names a lock from its receiver expression; ok=false makes the
	// walker ignore the operation entirely (e.g. a function-local mutex
	// when only type-level classes matter).
	keyOf func(recv ast.Expr) (string, bool)
	// onAcquire fires at each Lock/RLock, with the set held just before.
	onAcquire func(key, op string, pos token.Pos, held lockset)
	// onDefer fires for a deferred lock operation (usually Unlock).
	onDefer func(key, op string, pos token.Pos)
	// onExpr fires for every scanned non-lock expression while at least
	// one lock is held.
	onExpr func(n ast.Node, held lockset)
	// onSend fires at a blocking (non-select) channel send while at least
	// one lock is held.
	onSend func(pos token.Pos, held lockset)
	// onExit fires at each return statement and at a fall-off-the-end,
	// with that path's held set.
	onExit func(pos token.Pos, held lockset)
}

// lockWalker walks one function body in order, tracking the set of held
// locks per path: branches fork a copy of the set and re-join on the
// intersection (a lock counts as held after an if/switch only when every
// path kept it). `defer mu.Unlock()` leaves the lock held for the rest
// of the body, matching its runtime meaning. Channel sends that are
// select comm-clauses are exempt from onSend — a select is cancellable.
// FuncLit bodies are not descended into — they run on their own schedule
// and are walked as independent bodies by the rules that care.
type lockWalker struct {
	pass  *Pass
	hooks lockHooks
}

// walkBody processes one function (or FuncLit) body from an empty held
// set, firing onExit at the fall-through if the body does not terminate.
func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	held := w.stmts(body.List, lockset{})
	if !terminates(body.List) && w.hooks.onExit != nil {
		w.hooks.onExit(body.End(), held)
	}
}

// stmts processes a statement list in order, threading the held set.
func (w *lockWalker) stmts(list []ast.Stmt, held lockset) lockset {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held lockset) lockset {
	switch st := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.stmts(st.List, held)
	case *ast.ExprStmt:
		if key, op, ok := w.lockOp(st.X); ok {
			switch op {
			case "Lock", "RLock":
				if w.hooks.onAcquire != nil {
					w.hooks.onAcquire(key, op, st.Pos(), held)
				}
				held[key] = st.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return held
		}
		w.scan(st.X, held)
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// body; only scan the call's arguments (evaluated now).
		if recv, op, ok := mutexOp(w.pass.Pkg.Info, st.Call); ok {
			if w.hooks.onDefer != nil {
				if key, keyOK := w.key(recv); keyOK {
					w.hooks.onDefer(key, op, st.Pos())
				}
			}
			return held
		}
		for _, a := range st.Call.Args {
			w.scan(a, held)
		}
		return held
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			w.scan(a, held)
		}
		return held
	case *ast.SendStmt:
		if w.hooks.onSend != nil && len(held) > 0 {
			w.hooks.onSend(st.Pos(), held)
		}
		w.scan(st.Chan, held)
		w.scan(st.Value, held)
		return held
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scan(e, held)
		}
		for _, e := range st.Lhs {
			w.scan(e, held)
		}
		return held
	case *ast.DeclStmt:
		w.scan(st.Decl, held)
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scan(e, held)
		}
		if w.hooks.onExit != nil {
			w.hooks.onExit(st.Pos(), held)
		}
		return held
	case *ast.IncDecStmt:
		w.scan(st.X, held)
		return held
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.IfStmt:
		held = w.stmt(st.Init, held)
		w.scan(st.Cond, held)
		then := w.stmts(st.Body.List, held.clone())
		alt := held.clone()
		altTerm := false
		if st.Else != nil {
			alt = w.stmt(st.Else, alt)
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				altTerm = terminates(blk.List)
			}
		}
		// A branch that returns (or breaks out) never reaches the code
		// after the if, so it must not weaken the join.
		switch {
		case terminates(st.Body.List) && altTerm:
			return held // unreachable fall-through; keep pre-state
		case terminates(st.Body.List):
			return alt
		case altTerm:
			return then
		}
		return intersect(then, alt)
	case *ast.ForStmt:
		held = w.stmt(st.Init, held)
		w.scan(st.Cond, held)
		body := w.stmts(st.Body.List, held.clone())
		w.stmt(st.Post, body)
		return held
	case *ast.RangeStmt:
		w.scan(st.X, held)
		w.stmts(st.Body.List, held.clone())
		return held
	case *ast.SwitchStmt:
		held = w.stmt(st.Init, held)
		w.scan(st.Tag, held)
		return w.clauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		held = w.stmt(st.Init, held)
		w.stmt(st.Assign, held)
		return w.clauses(st.Body, held)
	case *ast.SelectStmt:
		// Comm clauses are cancellable by construction; only walk the
		// bodies. Recv comms with assignments still get scanned.
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			branch := held.clone()
			if cc.Comm != nil {
				if _, ok := cc.Comm.(*ast.SendStmt); !ok {
					branch = w.stmt(cc.Comm, branch)
				}
			}
			w.stmts(cc.Body, branch)
		}
		return held
	default:
		return held
	}
}

// clauses walks a switch body; the result is the intersection of every
// clause's outcome plus the fall-through state when there is no default.
func (w *lockWalker) clauses(body *ast.BlockStmt, held lockset) lockset {
	result := held
	sawDefault := false
	first := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.scan(e, held)
		}
		if cc.List == nil {
			sawDefault = true
		}
		out := w.stmts(cc.Body, held.clone())
		if terminates(cc.Body) {
			continue // this clause never falls out of the switch
		}
		if first {
			result = out
			first = false
		} else {
			result = intersect(result, out)
		}
	}
	if !sawDefault {
		result = intersect(result, held)
	}
	return result
}

// terminates reports whether a statement list always transfers control
// away (return, branch, or panic as its final statement).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// scan hands an expression (or decl) to the rule's onExpr hook while
// locks are held.
func (w *lockWalker) scan(n ast.Node, held lockset) {
	if n == nil || len(held) == 0 || w.hooks.onExpr == nil {
		return
	}
	w.hooks.onExpr(n, held)
}

// key applies the rule's keyOf to a lock receiver expression.
func (w *lockWalker) key(recv ast.Expr) (string, bool) {
	if w.hooks.keyOf == nil {
		return "", false
	}
	return w.hooks.keyOf(recv)
}

// lockOp recognizes a mutex operation and names the lock via keyOf.
func (w *lockWalker) lockOp(e ast.Expr) (key, op string, ok bool) {
	recv, op, ok := mutexOp(w.pass.Pkg.Info, e)
	if !ok {
		return "", "", false
	}
	key, ok = w.key(recv)
	if !ok {
		return "", "", false
	}
	return key, op, true
}

// mutexOp recognizes a sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock call
// and returns the receiver expression and operation name. Shared by the
// intra-procedural lockheld-rpc walker and the interprocedural lockorder
// summaries (which key the receiver by type rather than by spelling).
func mutexOp(info *types.Info, e ast.Expr) (recv ast.Expr, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return nil, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	if r := signature(fn).Recv(); r == nil || !isMutexType(r.Type()) {
		return nil, "", false
	}
	return sel.X, fn.Name(), true
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}
