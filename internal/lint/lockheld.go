package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockHeld is an intra-procedural check that no sync.Mutex/RWMutex is
// held across a transport RPC ((*Network).Send/SendTraced) or a blocking
// channel send. The transport invokes the destination handler
// synchronously in the caller's goroutine, so an RPC made under a lock
// can re-enter the same lock through the handler (deadlock) and at
// minimum serializes every contender behind an injected network delay —
// the hazard class the retry chaos tests hunt dynamically, checked here
// statically.
//
// The analysis walks each function body in order, tracking the set of
// held locks per path: branches fork a copy of the set and re-join on
// the intersection (a lock counts as held after an if/switch only when
// every path kept it). `defer mu.Unlock()` leaves the lock held for the
// rest of the body, matching its runtime meaning. Channel sends that are
// select comm-clauses are skipped — a select is cancellable. FuncLit
// bodies are analyzed as independent functions (they usually run on
// another goroutine).
type lockHeld struct{ module string }

func (lockHeld) Name() string { return "lockheld-rpc" }
func (lockHeld) Doc() string {
	return "no mutex held across a transport Send/SendTraced or a blocking channel send"
}

func (l lockHeld) Run(p *Pass) {
	w := &lockWalker{pass: p, transport: l.module + "/internal/transport"}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					w.stmts(fn.Body.List, lockset{})
				}
			case *ast.FuncLit:
				w.stmts(fn.Body.List, lockset{})
			}
			return true
		})
	}
}

// lockset maps a lock's receiver expression (e.g. "b.mu") to where it was
// acquired.
type lockset map[string]token.Pos

func (s lockset) clone() lockset {
	out := make(lockset, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func intersect(a, b lockset) lockset {
	out := lockset{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

type lockWalker struct {
	pass      *Pass
	transport string
}

// stmts processes a statement list in order, threading the held set.
func (w *lockWalker) stmts(list []ast.Stmt, held lockset) lockset {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held lockset) lockset {
	switch st := s.(type) {
	case nil:
		return held
	case *ast.BlockStmt:
		return w.stmts(st.List, held)
	case *ast.ExprStmt:
		if key, op, ok := w.lockOp(st.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = st.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return held
		}
		w.scan(st.X, held)
		return held
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held for the rest of the
		// body; only scan the call's arguments (evaluated now).
		if _, _, ok := w.lockOp(st.Call); ok {
			return held
		}
		for _, a := range st.Call.Args {
			w.scan(a, held)
		}
		return held
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			w.scan(a, held)
		}
		return held
	case *ast.SendStmt:
		w.reportHeld(st.Pos(), held, "channel send")
		w.scan(st.Chan, held)
		w.scan(st.Value, held)
		return held
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scan(e, held)
		}
		for _, e := range st.Lhs {
			w.scan(e, held)
		}
		return held
	case *ast.DeclStmt:
		w.scan(st.Decl, held)
		return held
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scan(e, held)
		}
		return held
	case *ast.IncDecStmt:
		w.scan(st.X, held)
		return held
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, held)
	case *ast.IfStmt:
		held = w.stmt(st.Init, held)
		w.scan(st.Cond, held)
		then := w.stmts(st.Body.List, held.clone())
		alt := held.clone()
		altTerm := false
		if st.Else != nil {
			alt = w.stmt(st.Else, alt)
			if blk, ok := st.Else.(*ast.BlockStmt); ok {
				altTerm = terminates(blk.List)
			}
		}
		// A branch that returns (or breaks out) never reaches the code
		// after the if, so it must not weaken the join.
		switch {
		case terminates(st.Body.List) && altTerm:
			return held // unreachable fall-through; keep pre-state
		case terminates(st.Body.List):
			return alt
		case altTerm:
			return then
		}
		return intersect(then, alt)
	case *ast.ForStmt:
		held = w.stmt(st.Init, held)
		w.scan(st.Cond, held)
		body := w.stmts(st.Body.List, held.clone())
		w.stmt(st.Post, body)
		return held
	case *ast.RangeStmt:
		w.scan(st.X, held)
		w.stmts(st.Body.List, held.clone())
		return held
	case *ast.SwitchStmt:
		held = w.stmt(st.Init, held)
		w.scan(st.Tag, held)
		return w.clauses(st.Body, held)
	case *ast.TypeSwitchStmt:
		held = w.stmt(st.Init, held)
		w.stmt(st.Assign, held)
		return w.clauses(st.Body, held)
	case *ast.SelectStmt:
		// Comm clauses are cancellable by construction; only walk the
		// bodies. Recv comms with assignments still get scanned.
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			branch := held.clone()
			if cc.Comm != nil {
				if _, ok := cc.Comm.(*ast.SendStmt); !ok {
					branch = w.stmt(cc.Comm, branch)
				}
			}
			w.stmts(cc.Body, branch)
		}
		return held
	default:
		return held
	}
}

// clauses walks a switch body; the result is the intersection of every
// clause's outcome plus the fall-through state when there is no default.
func (w *lockWalker) clauses(body *ast.BlockStmt, held lockset) lockset {
	result := held
	sawDefault := false
	first := true
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.scan(e, held)
		}
		if cc.List == nil {
			sawDefault = true
		}
		out := w.stmts(cc.Body, held.clone())
		if terminates(cc.Body) {
			continue // this clause never falls out of the switch
		}
		if first {
			result = out
			first = false
		} else {
			result = intersect(result, out)
		}
	}
	if !sawDefault {
		result = intersect(result, held)
	}
	return result
}

// terminates reports whether a statement list always transfers control
// away (return, branch, or panic as its final statement).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// scan inspects an expression (or decl) for transport RPC calls made
// while locks are held, skipping nested FuncLit bodies.
func (w *lockWalker) scan(n ast.Node, held lockset) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := calleeFunc(w.pass.Pkg.Info, e)
			if isMethod(fn, w.transport, "Network", "Send") || isMethod(fn, w.transport, "Network", "SendTraced") {
				w.reportHeld(e.Pos(), held, "transport RPC")
			}
		}
		return true
	})
}

func (w *lockWalker) reportHeld(pos token.Pos, held lockset, what string) {
	for key, at := range held {
		w.pass.Reportf(pos, "lockheld-rpc",
			"%s while holding %s (locked at %s): release the lock first — the handler runs synchronously and may re-enter it",
			what, key, w.pass.Fset.Position(at))
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock on a sync.Mutex or
// sync.RWMutex (including one embedded in a struct) and returns the
// receiver expression as the lock's identity.
func (w *lockWalker) lockOp(e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn := calleeFunc(w.pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	if recv := signature(fn).Recv(); recv == nil || !isMutexType(recv.Type()) {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	return named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex"
}
