package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of kslint: a module-wide call
// graph the taint- and summary-based rules (wallclock, lockorder,
// txnproto) query. Nodes are declared module functions; edges are call
// sites. Two dispatch mechanisms are modeled:
//
//   - static dispatch: the callee an identifier or selector resolves to,
//     including stdlib functions (which become leaf targets with no node
//     of their own — useful as taint sources);
//   - interface dispatch: a call through an interface method gets one
//     edge to the interface method itself (the seam checks key off it,
//     e.g. "went through retry.Clock") plus one edge per module type
//     that implements the interface, resolved to that type's concrete
//     method. This is what lets a rule see a txn or clock violation hide
//     behind an interface implemented in another package.
//
// Calls inside a FuncLit are attributed to the enclosing declared
// function: the closure runs on the declarer's behalf (often on another
// goroutine it spawned), so for may-reach summaries that attribution is
// the sound one. Dynamic calls through plain function values are not
// modeled; none of the invariants kslint checks flow through them today.
//
// Every accessor returns deterministically ordered slices (sorted by
// FuncID, then position) so diagnostics built from graph walks are
// byte-identical across runs.

// CGEdge is one call site: the resolved callee and where the call occurs.
type CGEdge struct {
	Callee *types.Func
	Pos    token.Pos
	// Dispatch marks how the callee was resolved: a direct static call,
	// the interface method a dynamic call names, or a concrete method the
	// interface resolution added.
	Dispatch DispatchKind
}

// DispatchKind classifies a call edge.
type DispatchKind int

const (
	// StaticCall is a direct call to a known function or method.
	StaticCall DispatchKind = iota
	// InterfaceCall is a dynamic call through an interface method.
	InterfaceCall
	// ImplCall is a synthesized edge from an interface call site to a
	// module type's concrete method implementing it.
	ImplCall
)

// CGNode is one declared module function with its outgoing call sites.
type CGNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Pkg   *Package
	Edges []CGEdge // sorted by position, then callee id
}

// CallGraph is the module-wide graph. Build it with BuildCallGraph; all
// query methods are read-only and safe to share across analyzers.
type CallGraph struct {
	module  string
	fset    *token.FileSet
	nodes   map[*types.Func]*CGNode
	order   []*types.Func // nodes sorted by FuncID
	callers map[*types.Func][]*types.Func
}

// BuildCallGraph constructs the graph over every package of the module
// view. Interface-method resolution considers the named types of those
// same packages (a fixture Module restricted to two packages resolves
// only between them, which is what the dispatch tests rely on).
func BuildCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		module:  mod.Path,
		fset:    mod.Fset,
		nodes:   make(map[*types.Func]*CGNode),
		callers: make(map[*types.Func][]*types.Func),
	}
	// Pass 1: nodes for every declared function.
	for _, pkg := range mod.Pkgs {
		for fn, decl := range pkg.Funcs {
			g.nodes[fn] = &CGNode{Fn: fn, Decl: decl, Pkg: pkg}
		}
	}
	// The named types interface dispatch resolves against.
	var concrete []types.Type
	for _, pkg := range mod.Pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			concrete = append(concrete, named)
		}
	}
	implCache := make(map[*types.Func][]*types.Func)
	// Pass 2: edges.
	for _, pkg := range mod.Pkgs {
		for fn, decl := range pkg.Funcs {
			node := g.nodes[fn]
			if decl.Body == nil {
				continue
			}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg.Info, call)
				if callee == nil {
					return true
				}
				callee = callee.Origin()
				if iface := interfaceRecv(callee); iface != nil {
					node.Edges = append(node.Edges, CGEdge{Callee: callee, Pos: call.Pos(), Dispatch: InterfaceCall})
					impls, cached := implCache[callee]
					if !cached {
						impls = resolveImpls(callee, iface, concrete, g.nodes)
						implCache[callee] = impls
					}
					for _, impl := range impls {
						node.Edges = append(node.Edges, CGEdge{Callee: impl, Pos: call.Pos(), Dispatch: ImplCall})
					}
					return true
				}
				node.Edges = append(node.Edges, CGEdge{Callee: callee, Pos: call.Pos(), Dispatch: StaticCall})
				return true
			})
		}
	}
	// Deterministic edge order, then the reverse adjacency.
	for _, node := range g.nodes {
		sort.Slice(node.Edges, func(i, j int) bool {
			a, b := node.Edges[i], node.Edges[j]
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			if a.Dispatch != b.Dispatch {
				return a.Dispatch < b.Dispatch
			}
			return FuncID(a.Callee) < FuncID(b.Callee)
		})
		g.order = append(g.order, node.Fn)
	}
	sort.Slice(g.order, func(i, j int) bool { return FuncID(g.order[i]) < FuncID(g.order[j]) })
	for _, fn := range g.order {
		seen := make(map[*types.Func]bool)
		for _, e := range g.nodes[fn].Edges {
			if g.nodes[e.Callee] != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				g.callers[e.Callee] = append(g.callers[e.Callee], fn)
			}
		}
	}
	return g
}

// interfaceRecv returns the interface type fn is a method of, or nil.
func interfaceRecv(fn *types.Func) *types.Interface {
	recv := signature(fn).Recv()
	if recv == nil {
		return nil
	}
	iface, _ := recv.Type().Underlying().(*types.Interface)
	return iface
}

// resolveImpls finds, among the module's concrete named types, the
// methods implementing iface's method fn — restricted to methods the
// graph has a node for (declared in the module view).
func resolveImpls(fn *types.Func, iface *types.Interface, concrete []types.Type, nodes map[*types.Func]*CGNode) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	for _, t := range concrete {
		ptr := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, fn.Pkg(), fn.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		m = m.Origin()
		if nodes[m] != nil && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return FuncID(out[i]) < FuncID(out[j]) })
	return out
}

// Node returns fn's node, or nil when fn has no body in the module view.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Funcs returns every declared function, sorted by FuncID.
func (g *CallGraph) Funcs() []*types.Func { return g.order }

// Callers returns the declared functions with at least one edge to fn,
// sorted by FuncID.
func (g *CallGraph) Callers(fn *types.Func) []*types.Func {
	if fn == nil {
		return nil
	}
	return g.callers[fn.Origin()]
}

// PathStep is one hop of a witness path: the function (or leaf callee)
// reached and the call site that reached it.
type PathStep struct {
	Fn  *types.Func
	Pos token.Pos
}

// FindPath runs a breadth-first search from `from` and returns the
// shortest chain of call edges to the first callee for which hit returns
// true. Traversal descends only into module functions and skips any
// function for which skip returns true (skip may be nil). hit is tested
// on edge targets — including leaf callees like stdlib functions — so a
// taint rule can search for "a call that lands on time.Sleep". The
// returned steps exclude `from` itself; nil means no path. Ties break on
// edge order, so the result is deterministic.
func (g *CallGraph) FindPath(from *types.Func, hit func(*types.Func) bool, skip func(*types.Func) bool) []PathStep {
	start := g.Node(from)
	if start == nil {
		return nil
	}
	type queued struct {
		fn   *types.Func
		path []PathStep
	}
	visited := map[*types.Func]bool{start.Fn: true}
	queue := []queued{{fn: start.Fn}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.nodes[cur.fn].Edges {
			if skip != nil && skip(e.Callee) {
				continue
			}
			step := append(append([]PathStep(nil), cur.path...), PathStep{Fn: e.Callee, Pos: e.Pos})
			if hit(e.Callee) {
				return step
			}
			if next := g.nodes[e.Callee]; next != nil && !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, queued{fn: e.Callee, path: step})
			}
		}
	}
	return nil
}

// FuncID is the stable, fully-qualified identity of a function used for
// ordering and debug dumps: pkgpath.Type.Method or pkgpath.Func.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return "<nil>"
	}
	name := fn.Name()
	if recv := signature(fn).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		switch tt := t.(type) {
		case *types.Named:
			name = tt.Obj().Name() + "." + name
		default:
			name = t.String() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + name
	}
	return name
}

// displayName renders fn compactly for diagnostics: the module prefix is
// trimmed so witness chains stay readable (internal/broker.Broker.fetch).
func (g *CallGraph) displayName(fn *types.Func) string {
	id := FuncID(fn)
	if rest, ok := strings.CutPrefix(id, g.module+"/"); ok {
		return rest
	}
	return strings.TrimPrefix(id, g.module+".")
}

// renderPath formats "A → B → C" for a witness chain starting at from.
func (g *CallGraph) renderPath(from *types.Func, steps []PathStep) string {
	parts := []string{g.displayName(from)}
	for _, s := range steps {
		parts = append(parts, g.displayName(s.Fn))
	}
	return strings.Join(parts, " → ")
}

// Dump writes the whole graph in FuncID order, one "caller -> callee"
// line per edge annotated with the dispatch kind and call position —
// the kslint -graph debug view.
func (g *CallGraph) Dump() string {
	var b strings.Builder
	kind := map[DispatchKind]string{StaticCall: "static", InterfaceCall: "iface", ImplCall: "impl"}
	for _, fn := range g.order {
		node := g.nodes[fn]
		if len(node.Edges) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s:\n", FuncID(fn))
		for _, e := range node.Edges {
			pos := g.fset.Position(e.Pos)
			fmt.Fprintf(&b, "  -> %s [%s] at %s:%d\n", FuncID(e.Callee), kind[e.Dispatch], pos.Filename, pos.Line)
		}
	}
	return b.String()
}
