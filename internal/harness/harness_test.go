package harness

import (
	"strings"
	"testing"
	"time"
)

func TestLatenciesPercentiles(t *testing.T) {
	l := &Latencies{}
	if l.Percentile(50) != 0 || l.Mean() != 0 || l.Count() != 0 {
		t.Fatal("empty recorder must report zeros")
	}
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	// Percentiles come from the log-linear obs histogram: accurate to one
	// bucket, i.e. within 6.25% above the true value.
	within := func(got, want time.Duration) bool {
		return got >= want && float64(got) <= float64(want)*1.0625
	}
	if got := l.Percentile(50); !within(got, 50*time.Millisecond) {
		t.Fatalf("p50 = %v", got)
	}
	if got := l.Percentile(99); !within(got, 99*time.Millisecond) {
		t.Fatalf("p99 = %v", got)
	}
	// p100 clamps to the observed max, so it is exact.
	if got := l.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
	// Mean is exact: the histogram keeps an exact running sum.
	if got := l.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if !strings.Contains(l.Summary(), "n=100") {
		t.Fatalf("summary = %q", l.Summary())
	}
}

func TestPacerRate(t *testing.T) {
	p := NewPacer(1000) // 1ms interval
	start := time.Now()
	for i := 0; i < 20; i++ {
		p.Wait()
	}
	el := time.Since(start)
	if el < 15*time.Millisecond {
		t.Fatalf("20 events at 1000/s took only %v", el)
	}
	// Zero rate never blocks.
	z := NewPacer(0)
	start = time.Now()
	for i := 0; i < 1000; i++ {
		z.Wait()
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("zero-rate pacer blocked")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value", "ratio")
	tb.Add("alpha", 42, 3.14159)
	tb.Add("a-very-long-name", time.Duration(1500)*time.Microsecond, 0.5)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: header and separator have equal width.
	if len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add(10)
	c.Add(5)
	if c.Total() != 15 {
		t.Fatalf("total = %d", c.Total())
	}
	time.Sleep(10 * time.Millisecond)
	if c.Rate() <= 0 {
		t.Fatalf("rate = %f", c.Rate())
	}
}
