package harness

import (
	"os"
	"strconv"
)

// SeedTB is the slice of *testing.T the seed helper needs; declared here
// for the same reason as TB in leak.go — this package links into the
// benchmark binaries and must not import "testing".
type SeedTB interface {
	Helper()
	Logf(format string, args ...any)
	Failed() bool
	Cleanup(func())
}

// Seed returns the randomness seed for a test: the KSTREAMS_SEED
// environment variable when set, otherwise the given default. When the
// test fails, the seed in effect is logged so the exact schedule — crash
// victims, fault timings, key choices — can be replayed:
//
//	KSTREAMS_SEED=42 go test -run TestChaosExactlyOnce ./streams/
//
// Every source of randomness in a failure-injecting test must flow from
// this value (directly or via derived sub-seeds); an unseeded rand or a
// wall-clock-dependent branch makes the printed seed a lie.
func Seed(t SeedTB, fallback int64) int64 {
	t.Helper()
	seed := fallback
	if env := os.Getenv("KSTREAMS_SEED"); env != "" {
		if v, err := strconv.ParseInt(env, 10, 64); err == nil {
			seed = v
		} else {
			t.Logf("harness: ignoring unparsable KSTREAMS_SEED=%q: %v", env, err)
		}
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("harness: test failed with seed %d; replay with KSTREAMS_SEED=%d", seed, seed)
		}
	})
	return seed
}
