package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"kstreams/internal/obs"
)

// TB is the slice of *testing.T the leak guard needs; declared here so
// this package (linked into the benchmark binaries) never imports
// "testing".
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// LeakGuard snapshots the goroutine population so a test can assert in
// teardown that everything it spawned — stream threads, replica fetchers,
// coordinator timers — actually exited. The chaos and broker-failure
// tests wire it in: a leaked goroutine after Close means a retry loop
// or heartbeat survived its client, exactly the class of bug that turns
// the deterministic harness flaky.
type LeakGuard struct {
	before   int
	baseline map[string]int
}

// NewLeakGuard records the current goroutine count and a per-creation-site
// census. Take it before the cluster under test is built.
func NewLeakGuard() *LeakGuard {
	return &LeakGuard{before: runtime.NumGoroutine(), baseline: census()}
}

// Check waits up to settle for the goroutine count to return to the
// snapshot level (shutdown is asynchronous: closed clients unwind their
// retry loops on their next wakeup), then reports every goroutine whose
// creation site gained population since the snapshot, labeled with its
// current state. Zero or negative settle uses a 2s default.
func (g *LeakGuard) Check(t TB, settle time.Duration) {
	t.Helper()
	if settle <= 0 {
		settle = 2 * time.Second
	}
	deadline := time.Now().Add(settle)
	for runtime.NumGoroutine() > g.before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	now := runtime.NumGoroutine()
	if now <= g.before {
		return
	}
	leaks := diffCensus(g.baseline, census())
	if len(leaks) == 0 {
		// Count is elevated but every site balances — churn caught
		// mid-flight (e.g. a timer goroutine being reaped); not a leak.
		return
	}
	// A leak means some component outlived its shutdown: dump the flight
	// recorder (when one is installed) so the recent spans and fault
	// events around the failure survive as a post-mortem artifact.
	dumped := ""
	if path, ok := obs.DumpGlobalFlightRecorder("goroutine-leak"); ok {
		dumped = "\nflight recorder dumped to " + path
	}
	t.Errorf("goroutine leak: %d before, %d after settle; leaked by creation site:\n%s%s",
		g.before, now, strings.Join(leaks, "\n"), dumped)
}

// census counts live goroutines by signature: the "created by" site when
// present (the stable identity of a goroutine class), else its top frame.
func census() map[string]int {
	out := make(map[string]int)
	for _, rec := range goroutineStacks() {
		out[rec.site]++
	}
	return out
}

// diffCensus renders the sites whose population grew, labeled with a
// sample state, sorted for stable test output.
func diffCensus(before, after map[string]int) []string {
	var lines []string
	states := make(map[string]string)
	for _, rec := range goroutineStacks() {
		if states[rec.site] == "" {
			states[rec.site] = rec.state
		}
	}
	for site, n := range after {
		if grew := n - before[site]; grew > 0 {
			lines = append(lines, fmt.Sprintf("  +%d  %s  [%s]", grew, site, states[site]))
		}
	}
	sort.Strings(lines)
	return lines
}

type goroutineRec struct {
	state string // e.g. "chan receive", "select"
	site  string // creation site (or top frame)
}

// goroutineStacks parses runtime.Stack(all=true) into one record per
// goroutine.
func goroutineStacks() []goroutineRec {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var recs []goroutineRec
	for _, block := range strings.Split(string(buf), "\n\n") {
		lines := strings.Split(strings.TrimSpace(block), "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], "goroutine ") {
			continue
		}
		rec := goroutineRec{state: stateOf(lines[0])}
		for i := len(lines) - 1; i > 0; i-- {
			if rest, ok := strings.CutPrefix(lines[i], "created by "); ok {
				rec.site = "created by " + strings.TrimSpace(strings.SplitN(rest, " in goroutine", 2)[0])
				break
			}
		}
		if rec.site == "" && len(lines) > 1 {
			rec.site = strings.TrimSpace(lines[1])
		}
		recs = append(recs, rec)
	}
	return recs
}

// stateOf extracts "chan receive" from "goroutine 7 [chan receive]:".
func stateOf(header string) string {
	if i := strings.Index(header, "["); i >= 0 {
		if j := strings.Index(header[i:], "]"); j > 0 {
			return header[i+1 : i+j]
		}
	}
	return "unknown"
}
