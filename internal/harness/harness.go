// Package harness provides the measurement plumbing for the experiment
// suite: latency recording with percentiles, throughput windows, fixed-rate
// pacing, and figure/table renderers that print the same rows and series
// the paper's evaluation reports.
package harness

import (
	"fmt"
	"io"
	"strings"
	"time"

	"kstreams/internal/obs"
)

// Latencies records latency samples and reports percentiles. It is backed
// by the obs log-linear histogram, so percentiles carry that histogram's
// bucket resolution (<= 6.25% relative error) while Mean, Min-side p0 and
// Max-side p100 stay exact; in exchange recording is a fixed-size atomic
// operation instead of an unbounded sample slice.
type Latencies struct {
	h obs.Histogram
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.h.Observe(int64(d))
}

// Count returns the number of samples.
func (l *Latencies) Count() int {
	return int(l.h.Count())
}

// Percentile returns the p-th percentile (0 < p <= 100), or 0 if empty.
func (l *Latencies) Percentile(p float64) time.Duration {
	return time.Duration(l.h.Quantile(p))
}

// Mean returns the average sample, or 0 if empty.
func (l *Latencies) Mean() time.Duration {
	return time.Duration(l.h.Mean())
}

// Hist exposes the backing histogram for callers that feed obs snapshots.
func (l *Latencies) Hist() *obs.Histogram {
	return &l.h
}

// Summary formats count/mean/p50/p99.
func (l *Latencies) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v",
		l.Count(), l.Mean().Round(time.Microsecond),
		l.Percentile(50).Round(time.Microsecond),
		l.Percentile(99).Round(time.Microsecond))
}

// Pacer emits load at a fixed rate.
type Pacer struct {
	interval time.Duration
	next     time.Time
}

// NewPacer targets ratePerSec events per second.
func NewPacer(ratePerSec float64) *Pacer {
	if ratePerSec <= 0 {
		return &Pacer{}
	}
	return &Pacer{interval: time.Duration(float64(time.Second) / ratePerSec)}
}

// Wait blocks until the next slot; zero-rate pacers never block.
func (p *Pacer) Wait() {
	if p.interval == 0 {
		return
	}
	now := time.Now()
	if p.next.IsZero() {
		p.next = now
	}
	if d := p.next.Sub(now); d > 0 {
		time.Sleep(d)
	}
	p.next = p.next.Add(p.interval)
}

// Table renders experiment rows aligned like the paper's tables.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable sets the column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Add appends a row (values are formatted with %v).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(100 * time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Counter tracks throughput over a wall-clock window, pairing an obs
// counter with the window's start time.
type Counter struct {
	n     obs.Counter
	start time.Time
}

// NewCounter starts the window now.
func NewCounter() *Counter { return &Counter{start: time.Now()} }

// Add counts n events.
func (c *Counter) Add(n int64) {
	c.n.Add(n)
}

// Rate returns events/second since the window started.
func (c *Counter) Rate() float64 {
	el := time.Since(c.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(c.n.Value()) / el
}

// Total returns the event count.
func (c *Counter) Total() int64 {
	return c.n.Value()
}
