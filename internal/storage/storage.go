// Package storage provides the byte-level persistence abstraction under the
// log layer: append-only files addressed by name, with a real filesystem
// backend and an in-memory backend. Brokers default to the in-memory
// backend in tests and benchmarks (durability semantics — offsets, replay,
// compaction — are identical), and can use the filesystem backend when a
// data directory is configured.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound reports a missing file.
var ErrNotFound = errors.New("storage: file not found")

// File is an append-only, randomly readable file.
type File interface {
	io.ReaderAt
	// Append writes p at the end of the file and returns the position at
	// which it was written.
	Append(p []byte) (pos int64, err error)
	// Size returns the current length in bytes.
	Size() int64
	// Truncate discards everything at and beyond size.
	Truncate(size int64) error
	// Sync flushes buffered data to stable storage.
	Sync() error
	Close() error
}

// Backend creates, opens, lists, and removes files by name. Names may
// contain '/' separators; backends treat them as opaque hierarchical keys.
type Backend interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	// List returns names with the given prefix in lexicographic order.
	List(prefix string) ([]string, error)
	Remove(name string) error
	// Rename atomically replaces newName with oldName's content.
	Rename(oldName, newName string) error
}

// --- In-memory backend ---

type memFile struct {
	mu  sync.RWMutex
	buf []byte
}

func (f *memFile) Append(p []byte) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pos := int64(len(f.buf))
	f.buf = append(f.buf, p...)
	return pos, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Size() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return int64(len(f.buf))
}

func (f *memFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < 0 || size > int64(len(f.buf)) {
		return fmt.Errorf("storage: truncate size %d out of range [0,%d]", size, len(f.buf))
	}
	f.buf = f.buf[:size]
	return nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

// Mem is an in-memory Backend. The zero value is not usable; call NewMem.
type Mem struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile)}
}

// Create makes (or resets) the named file.
func (m *Mem) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{}
	m.files[name] = f
	return f, nil
}

// Open returns the named file.
func (m *Mem) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f, nil
}

// List returns names with the prefix, sorted.
func (m *Mem) List(prefix string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for name := range m.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes the named file.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(m.files, name)
	return nil
}

// Rename moves oldName over newName.
func (m *Mem) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, oldName)
	}
	delete(m.files, oldName)
	m.files[newName] = f
	return nil
}

// --- Filesystem backend ---

// FS stores files under a root directory.
type FS struct {
	root string
}

// NewFS returns a filesystem backend rooted at dir, creating it if needed.
func NewFS(dir string) (*FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &FS{root: dir}, nil
}

func (s *FS) path(name string) string {
	return filepath.Join(s.root, filepath.FromSlash(name))
}

type fsFile struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

func (f *fsFile) Append(p []byte) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	pos := f.size
	if _, err := f.f.WriteAt(p, pos); err != nil {
		return 0, err
	}
	f.size += int64(len(p))
	return pos, nil
}

func (f *fsFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }

func (f *fsFile) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *fsFile) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	f.size = size
	return nil
}

func (f *fsFile) Sync() error  { return f.f.Sync() }
func (f *fsFile) Close() error { return f.f.Close() }

// Create makes (or resets) the named file.
func (s *FS) Create(name string) (File, error) {
	p := s.path(name)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(p, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &fsFile{f: f}, nil
}

// Open returns the named file positioned for appends at its end.
func (s *FS) Open(name string) (File, error) {
	f, err := os.OpenFile(s.path(name), os.O_RDWR, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fsFile{f: f, size: st.Size()}, nil
}

// List returns names with the prefix, sorted, using '/'-separated keys.
func (s *FS) List(prefix string) ([]string, error) {
	var out []string
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes the named file.
func (s *FS) Remove(name string) error {
	err := os.Remove(s.path(name))
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return err
}

// Rename moves oldName over newName.
func (s *FS) Rename(oldName, newName string) error {
	if err := os.MkdirAll(filepath.Dir(s.path(newName)), 0o755); err != nil {
		return err
	}
	err := os.Rename(s.path(oldName), s.path(newName))
	if os.IsNotExist(err) {
		return fmt.Errorf("%w: %s", ErrNotFound, oldName)
	}
	return err
}
