package storage_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"kstreams/internal/protocol"
	"kstreams/internal/storage"
	"kstreams/internal/wal"
)

// TestBackendsEncodeIdentically proves the two storage backends are pure
// byte transports: a log written through Mem and one written through FS
// with the same appends must hold byte-identical files, segment roll
// points included. Any divergence would make on-disk recovery and the
// in-memory simulator test different encodings.
func TestBackendsEncodeIdentically(t *testing.T) {
	mem := storage.NewMem()
	fs, err := storage.NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Small segments so the appends below roll several times; rolls are
	// part of what must line up byte for byte.
	cfg := wal.Config{SegmentBytes: 512}
	write := func(backend storage.Backend) {
		t.Helper()
		log, err := wal.Open(backend, "golden-0", cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			b := &protocol.RecordBatch{
				ProducerID:   protocol.NoProducerID,
				BaseSequence: protocol.NoSequence,
				Records: []protocol.Record{
					{Key: []byte(fmt.Sprintf("k%02d", i%7)), Value: []byte(fmt.Sprintf("value-%03d", i)), Timestamp: int64(1000 + i)},
					{Key: []byte("fixed"), Value: bytes.Repeat([]byte{byte(i)}, 1+i%13), Timestamp: int64(1000 + i)},
				},
			}
			if res := log.Append(b); res.Err != protocol.ErrNone {
				t.Fatalf("append %d: %v", i, res.Err)
			}
		}
	}
	write(mem)
	write(fs)

	memFiles, err := mem.List("golden-0")
	if err != nil {
		t.Fatal(err)
	}
	fsFiles, err := fs.List("golden-0")
	if err != nil {
		t.Fatal(err)
	}
	if len(memFiles) == 0 {
		t.Fatal("no files written")
	}
	if fmt.Sprint(memFiles) != fmt.Sprint(fsFiles) {
		t.Fatalf("file sets differ:\nmem: %v\nfs:  %v", memFiles, fsFiles)
	}
	if len(memFiles) < 2 {
		t.Fatalf("expected multiple segments (got %v); shrink SegmentBytes so rolls are covered", memFiles)
	}

	for _, name := range memFiles {
		a := readAll(t, mem, name)
		b := readAll(t, fs, name)
		if !bytes.Equal(a, b) {
			i := 0
			for i < len(a) && i < len(b) && a[i] == b[i] {
				i++
			}
			t.Errorf("%s: backends diverge at byte %d (mem %d bytes, fs %d bytes)", name, i, len(a), len(b))
		}
	}
}

func readAll(t *testing.T, backend storage.Backend, name string) []byte {
	t.Helper()
	f, err := backend.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	return buf
}
