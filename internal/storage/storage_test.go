package storage

import (
	"errors"
	"io"
	"reflect"
	"testing"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fs, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"mem": NewMem(), "fs": fs}
}

func TestBackendContract(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// Missing files error with ErrNotFound.
			if _, err := be.Open("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("open missing: %v", err)
			}
			if err := be.Remove("nope"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("remove missing: %v", err)
			}

			f, err := be.Create("dir/a.log")
			if err != nil {
				t.Fatal(err)
			}
			pos, err := f.Append([]byte("hello"))
			if err != nil || pos != 0 {
				t.Fatalf("append: %d %v", pos, err)
			}
			pos, err = f.Append([]byte("world"))
			if err != nil || pos != 5 {
				t.Fatalf("second append: %d %v", pos, err)
			}
			if f.Size() != 10 {
				t.Fatalf("size = %d", f.Size())
			}
			buf := make([]byte, 5)
			if _, err := f.ReadAt(buf, 5); err != nil && err != io.EOF {
				t.Fatalf("read: %v", err)
			}
			if string(buf) != "world" {
				t.Fatalf("read = %q", buf)
			}
			// Reading past the end reports EOF.
			if n, err := f.ReadAt(buf, 100); n != 0 || err == nil {
				t.Fatalf("past-end read: %d %v", n, err)
			}
			if err := f.Truncate(5); err != nil {
				t.Fatal(err)
			}
			if f.Size() != 5 {
				t.Fatalf("size after truncate = %d", f.Size())
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}

			// Reopen sees the same bytes (size survives).
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			g, err := be.Open("dir/a.log")
			if err != nil {
				t.Fatal(err)
			}
			if g.Size() != 5 {
				t.Fatalf("reopened size = %d", g.Size())
			}
			g.Close()

			// List with prefix, sorted.
			be.Create("dir/b.log")
			be.Create("other/c.log")
			got, err := be.List("dir/")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, []string{"dir/a.log", "dir/b.log"}) {
				t.Fatalf("list: %v", got)
			}

			// Rename replaces the destination.
			if err := be.Rename("dir/b.log", "dir/a.log"); err != nil {
				t.Fatal(err)
			}
			if got, _ := be.List("dir/"); len(got) != 1 {
				t.Fatalf("after rename: %v", got)
			}
			if err := be.Rename("missing", "x"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("rename missing: %v", err)
			}

			// Remove.
			if err := be.Remove("dir/a.log"); err != nil {
				t.Fatal(err)
			}
			if got, _ := be.List("dir/"); len(got) != 0 {
				t.Fatalf("after remove: %v", got)
			}
		})
	}
}

func TestMemTruncateBounds(t *testing.T) {
	be := NewMem()
	f, _ := be.Create("x")
	f.Append([]byte("abc"))
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
	if err := f.Truncate(99); err == nil {
		t.Fatal("oversize truncate accepted")
	}
}

func TestCreateResetsExisting(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			f, _ := be.Create("r")
			f.Append([]byte("old"))
			f.Close()
			g, _ := be.Create("r")
			if g.Size() != 0 {
				t.Fatalf("create did not reset: %d", g.Size())
			}
			g.Close()
		})
	}
}
