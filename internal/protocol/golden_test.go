package protocol

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

// goldenBatches are representative batches whose encodings are pinned below.
// Zero-copy fetch hands stored encodings straight to consumers, so the wire
// format is a compatibility surface: any byte-level drift must fail here
// loudly rather than surface as cross-version corruption.
func goldenBatches() map[string]*RecordBatch {
	plain := &RecordBatch{
		BaseOffset: 7, ProducerID: NoProducerID, BaseSequence: NoSequence,
		Records: []Record{
			{Key: []byte("user-1"), Value: []byte("pageview"), Timestamp: 1000},
			{Key: nil, Value: []byte("tick"), Timestamp: 1001},
		},
	}
	txn := &RecordBatch{
		BaseOffset: 120, ProducerID: 9, ProducerEpoch: 2, BaseSequence: 33,
		Transactional: true,
		Records: []Record{
			{Key: []byte("k"), Value: []byte("v"), Timestamp: 2000,
				Headers: []Header{
					{Key: "source", Value: []byte("topic-a")},
					{Key: "empty", Value: nil},
				}},
		},
	}
	ctrl := NewMarkerBatch(9, 2, 3000, ControlMarker{Type: MarkerCommit, CoordinatorEpoch: 5})
	ctrl.BaseOffset = 121
	return map[string]*RecordBatch{"plain": plain, "transactional": txn, "control": ctrl}
}

var goldenHex = map[string]string{
	"plain":         "0000005a0200d473fc9c0000000000000007ffffffffffffffff0000ffffffff0000000200000000000003e800000006757365722d310000000870616765766965770000000000000000000003e9ffffffff000000047469636b00000000",
	"transactional": "000000580201255fb835000000000000007800000000000000090002000000210000000100000000000007d0000000016b00000001760000000200000006736f7572636500000007746f7069632d6100000005656d707479ffffffff",
	"control":       "000000390203d0457622000000000000007900000000000000090002ffffffff000000010000000000000bb8ffffffff00000005010000000500000000",
}

func TestEncodeBatchGoldenBytes(t *testing.T) {
	for name, b := range goldenBatches() {
		want, err := hex.DecodeString(goldenHex[name])
		if err != nil {
			t.Fatalf("bad golden hex for %s: %v", name, err)
		}
		got := EncodeBatch(b)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoding drifted from golden bytes\n got %x\nwant %x", name, got, want)
		}
	}
}

func TestAppendBatchMatchesEncode(t *testing.T) {
	for name, b := range goldenBatches() {
		want := EncodeBatch(b)
		if len(want) != EncodedBatchSize(b) {
			t.Errorf("%s: EncodedBatchSize = %d, encoding is %d bytes",
				name, EncodedBatchSize(b), len(want))
		}
		// Appending onto a non-empty prefix must leave the prefix intact.
		prefix := []byte("prefix")
		got := AppendBatch(append([]byte(nil), prefix...), b)
		if !bytes.Equal(got[:len(prefix)], prefix) {
			t.Fatalf("%s: AppendBatch clobbered the prefix", name)
		}
		if !bytes.Equal(got[len(prefix):], want) {
			t.Errorf("%s: AppendBatch and EncodeBatch disagree", name)
		}
	}
}

func TestAppendBatchPooledZeroAlloc(t *testing.T) {
	b := sampleBatch()
	buf := GetFrameBuf()
	defer PutFrameBuf(buf)
	*buf = AppendBatch((*buf)[:0], b) // warm the buffer to full size
	allocs := testing.AllocsPerRun(100, func() {
		*buf = AppendBatch((*buf)[:0], b)
	})
	if allocs != 0 {
		t.Errorf("AppendBatch into warm pooled buffer allocates %v/op, want 0", allocs)
	}
	out, n, err := DecodeBatch(*buf)
	if err != nil || n != len(*buf) {
		t.Fatalf("decode pooled encoding: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(*b, out) {
		t.Fatal("pooled encoding does not round-trip")
	}
}

func TestPutFrameBufDropsOversized(t *testing.T) {
	big := make([]byte, 0, maxPooledFrame+1)
	PutFrameBuf(&big) // must not panic or pin; nothing observable to assert
	PutFrameBuf(nil)  // nil is tolerated
}

func TestDecodeBatchSharedAliases(t *testing.T) {
	b := sampleBatch()
	buf := EncodeBatch(b)
	shared, n, err := DecodeBatchShared(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("shared decode: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(*b, shared) {
		t.Fatal("shared decode does not round-trip")
	}
	// Mutating the backing buffer must show through the shared batch
	// (proving zero-copy) while a plain DecodeBatch stays isolated.
	isolated, _, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	v := shared.Records[0].Value
	old := v[0]
	// Locate the byte inside buf and flip it there.
	idx := bytes.Index(buf, []byte("v1"))
	if idx < 0 {
		t.Fatal("value bytes not found in encoding")
	}
	buf[idx] = 'z'
	if v[0] != 'z' {
		t.Error("DecodeBatchShared returned a copy, expected an alias")
	}
	if isolated.Records[0].Value[0] != old {
		t.Error("DecodeBatch returned an alias, expected a copy")
	}
}

func TestDecodeBatchSharedAppendCannotScribble(t *testing.T) {
	b := &RecordBatch{
		ProducerID: NoProducerID, BaseSequence: NoSequence,
		Records: []Record{
			{Key: []byte("a"), Value: []byte("b"), Timestamp: 1},
			{Key: []byte("c"), Value: []byte("d"), Timestamp: 2},
		},
	}
	buf := EncodeBatch(b)
	orig := append([]byte(nil), buf...)
	shared, _, err := DecodeBatchShared(buf)
	if err != nil {
		t.Fatal(err)
	}
	// An append through an aliased field must reallocate (full-slice
	// expressions cap the alias), never write into the shared buffer.
	_ = append(shared.Records[0].Value, 'X')
	if !bytes.Equal(buf, orig) {
		t.Fatal("append through shared field scribbled on the backing buffer")
	}
}

// TestDecodeBatchHostileInput covers the framing attacks a broker reading
// a torn or corrupted segment tail (or a fuzzer) can present: truncated
// frames, frames claiming more bytes than exist, record/header counts the
// body cannot hold, and field lengths running past the body.
func TestDecodeBatchHostileInput(t *testing.T) {
	valid := EncodeBatch(sampleBatch())
	mutate := func(f func(p []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	fixCRC := func(p []byte) []byte {
		binary.BigEndian.PutUint32(p[6:10], crcOf(p[10:]))
		return p
	}
	cases := map[string][]byte{
		"empty":       {},
		"three bytes": {0, 0, 0},
		"zero frame":  {0, 0, 0, 0},
		"tiny frame":  {0, 0, 0, 5, 2, 0, 0, 0, 0},
		"frame past end": mutate(func(p []byte) []byte {
			binary.BigEndian.PutUint32(p[0:4], uint32(len(p))) // one byte too many
			return p
		}),
		"giant frame": mutate(func(p []byte) []byte {
			binary.BigEndian.PutUint32(p[0:4], 1<<31-1)
			return p
		}),
		"hostile record count": mutate(func(p []byte) []byte {
			// recordCount sits after 8+8+2+4 bytes of body.
			binary.BigEndian.PutUint32(p[10+22:], 1<<30)
			return fixCRC(p)
		}),
		"negative record count": mutate(func(p []byte) []byte {
			binary.BigEndian.PutUint32(p[10+22:], 0xffffffff)
			return fixCRC(p)
		}),
		"hostile header count": mutate(func(p []byte) []byte {
			// First record: ts(8) keyLen(4)+2 valLen(4)+2 then headerCount.
			binary.BigEndian.PutUint32(p[10+26+8+4+2+4+2:], 1<<30)
			return fixCRC(p)
		}),
		"key length past body": mutate(func(p []byte) []byte {
			binary.BigEndian.PutUint32(p[10+26+8:], 1<<20)
			return fixCRC(p)
		}),
		"truncated mid-record": fixCRC(func() []byte {
			p := append([]byte(nil), valid[:len(valid)-10]...)
			binary.BigEndian.PutUint32(p[0:4], uint32(len(p)-4))
			return p
		}()),
	}
	for name, buf := range cases {
		if _, _, err := DecodeBatch(buf); !errors.Is(err, ErrCorruptBatch) {
			t.Errorf("%s: want ErrCorruptBatch, got %v", name, err)
		}
		if _, _, err := DecodeBatchShared(buf); !errors.Is(err, ErrCorruptBatch) {
			t.Errorf("%s (shared): want ErrCorruptBatch, got %v", name, err)
		}
	}
}

func crcOf(body []byte) uint32 {
	return crc32.Checksum(body, castagnoli)
}

// FuzzDecodeBatch asserts DecodeBatch never panics and never silently
// mis-frames: any successful decode must re-encode to the exact bytes it
// consumed, and the shared variant must agree with the copying one.
func FuzzDecodeBatch(f *testing.F) {
	for _, b := range goldenBatches() {
		f.Add(EncodeBatch(b))
	}
	f.Add(EncodeBatch(sampleBatch()))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := DecodeBatch(data)
		sb, sn, serr := DecodeBatchShared(data)
		if (err == nil) != (serr == nil) || n != sn {
			t.Fatalf("copying and shared decode disagree: (%d,%v) vs (%d,%v)", n, err, sn, serr)
		}
		if err != nil {
			return
		}
		if n < headerBytes || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		if !reflect.DeepEqual(b, sb) {
			t.Fatal("copying and shared decode returned different batches")
		}
		if re := EncodeBatch(&b); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n in %x\nout %x", data[:n], re)
		}
	})
}
