package protocol

import "fmt"

// ErrorCode is the broker-side error taxonomy carried in RPC responses,
// mirroring (a subset of) Kafka's protocol error codes. Code zero means
// success so that zero-valued responses are OK responses.
type ErrorCode int16

const (
	ErrNone ErrorCode = iota
	// ErrUnknownTopicOrPartition: the topic or partition does not exist on
	// this broker's metadata view.
	ErrUnknownTopicOrPartition
	// ErrNotLeader: this broker does not host the leader replica; the client
	// must refresh metadata and retry.
	ErrNotLeader
	// ErrOutOfOrderSequence: an idempotent append skipped sequence numbers,
	// indicating lost intermediate batches; the producer must fail.
	ErrOutOfOrderSequence
	// ErrDuplicateSequence: the batch was already appended; the broker
	// acknowledges without re-appending. Clients treat this as success.
	ErrDuplicateSequence
	// ErrUnknownProducerID: the broker has no state for this producer id.
	ErrUnknownProducerID
	// ErrProducerFenced: a newer epoch for the same producer or
	// transactional id exists; this producer is a zombie and must stop.
	ErrProducerFenced
	// ErrInvalidTxnState: the requested transition is illegal for the
	// transaction's current state.
	ErrInvalidTxnState
	// ErrConcurrentTransactions: the previous transaction is still
	// completing; the client should retry shortly.
	ErrConcurrentTransactions
	// ErrCoordinatorNotAvailable: the coordinator partition has no leader.
	ErrCoordinatorNotAvailable
	// ErrNotCoordinator: this broker is not the coordinator for the key.
	ErrNotCoordinator
	// ErrOffsetOutOfRange: a fetch offset is below the log start or above
	// the log end offset.
	ErrOffsetOutOfRange
	// ErrRebalanceInProgress: the group is rebalancing; rejoin.
	ErrRebalanceInProgress
	// ErrUnknownMemberID: the member is not part of the group generation.
	ErrUnknownMemberID
	// ErrIllegalGeneration: the request's generation is stale.
	ErrIllegalGeneration
	// ErrTopicAlreadyExists: create-topic for an existing topic.
	ErrTopicAlreadyExists
	// ErrBrokerUnavailable: the target broker is crashed or unreachable.
	ErrBrokerUnavailable
	// ErrRequestTimedOut: the broker could not satisfy acks in time.
	ErrRequestTimedOut
	// ErrInvalidRecord: the batch failed validation (CRC, framing).
	ErrInvalidRecord
	// ErrTransactionAborted: the ongoing transaction was aborted (e.g. by
	// timeout) and the producer must start a new one.
	ErrTransactionAborted
	// ErrGroupIDNotFound: offset fetch for an unknown group.
	ErrGroupIDNotFound
	// ErrUnstableOffsetCommit: a transactional offset commit for the
	// requested partitions is awaiting its marker; fetch again shortly.
	ErrUnstableOffsetCommit
)

var errText = map[ErrorCode]string{
	ErrNone:                    "none",
	ErrUnknownTopicOrPartition: "unknown topic or partition",
	ErrNotLeader:               "not leader for partition",
	ErrOutOfOrderSequence:      "out of order sequence number",
	ErrDuplicateSequence:       "duplicate sequence number",
	ErrUnknownProducerID:       "unknown producer id",
	ErrProducerFenced:          "producer fenced by newer epoch",
	ErrInvalidTxnState:         "invalid transaction state transition",
	ErrConcurrentTransactions:  "concurrent transactions",
	ErrCoordinatorNotAvailable: "coordinator not available",
	ErrNotCoordinator:          "not coordinator",
	ErrOffsetOutOfRange:        "offset out of range",
	ErrRebalanceInProgress:     "group rebalance in progress",
	ErrUnknownMemberID:         "unknown member id",
	ErrIllegalGeneration:       "illegal generation",
	ErrTopicAlreadyExists:      "topic already exists",
	ErrBrokerUnavailable:       "broker unavailable",
	ErrRequestTimedOut:         "request timed out",
	ErrInvalidRecord:           "invalid record",
	ErrTransactionAborted:      "transaction aborted",
	ErrGroupIDNotFound:         "group id not found",
	ErrUnstableOffsetCommit:    "unstable offset commit pending",
}

func (e ErrorCode) String() string {
	if s, ok := errText[e]; ok {
		return s
	}
	return fmt.Sprintf("ErrorCode(%d)", int16(e))
}

// Err converts the code to a Go error, or nil for ErrNone.
func (e ErrorCode) Err() error {
	if e == ErrNone {
		return nil
	}
	return &Error{Code: e}
}

// Retriable reports whether a client may transparently retry the request
// (after refreshing metadata where appropriate).
func (e ErrorCode) Retriable() bool {
	switch e {
	case ErrNotLeader, ErrConcurrentTransactions, ErrCoordinatorNotAvailable,
		ErrNotCoordinator, ErrBrokerUnavailable, ErrRequestTimedOut,
		ErrRebalanceInProgress, ErrUnstableOffsetCommit,
		// A replica that has not (re)installed the partition yet reports
		// it unknown; clients refresh metadata and retry, as in Kafka.
		ErrUnknownTopicOrPartition:
		return true
	default:
		return false
	}
}

// Error wraps an ErrorCode as a Go error.
type Error struct {
	Code ErrorCode
}

func (e *Error) Error() string { return "kafka: " + e.Code.String() }

// CodeOf extracts the ErrorCode from an error produced by Err, or ErrNone
// for nil, or -1 for foreign errors.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return ErrNone
	}
	if pe, ok := err.(*Error); ok {
		return pe.Code
	}
	return -1
}
