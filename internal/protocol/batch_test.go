package protocol

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleBatch() *RecordBatch {
	return &RecordBatch{
		BaseOffset:    42,
		ProducerID:    7,
		ProducerEpoch: 3,
		BaseSequence:  100,
		Transactional: true,
		Records: []Record{
			{Key: []byte("k1"), Value: []byte("v1"), Timestamp: 1111},
			{Key: nil, Value: []byte("v2"), Timestamp: 2222,
				Headers: []Header{{Key: "h", Value: []byte("hv")}}},
			{Key: []byte("k3"), Value: nil, Timestamp: 3333},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := sampleBatch()
	buf := EncodeBatch(in)
	out, n, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(*in, out) {
		t.Fatalf("roundtrip mismatch:\n in=%+v\nout=%+v", *in, out)
	}
}

func TestBatchRoundTripEmptyAndNil(t *testing.T) {
	in := &RecordBatch{
		BaseSequence: NoSequence,
		ProducerID:   NoProducerID,
		Records: []Record{
			{Key: []byte{}, Value: []byte{}, Timestamp: 0},
		},
	}
	out, _, err := DecodeBatch(EncodeBatch(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Records[0].Key == nil || out.Records[0].Value == nil {
		t.Fatalf("empty (non-nil) slices must stay non-nil, got %+v", out.Records[0])
	}
	in2 := &RecordBatch{Records: []Record{{Timestamp: 5}}}
	out2, _, err := DecodeBatch(EncodeBatch(in2))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out2.Records[0].Key != nil || out2.Records[0].Value != nil {
		t.Fatalf("nil slices must stay nil, got %+v", out2.Records[0])
	}
}

func TestBatchScanMultiple(t *testing.T) {
	var buf []byte
	var want []RecordBatch
	for i := 0; i < 5; i++ {
		b := sampleBatch()
		b.BaseOffset = int64(i * 10)
		want = append(want, *b)
		buf = append(buf, EncodeBatch(b)...)
	}
	var got []RecordBatch
	for len(buf) > 0 {
		b, n, err := DecodeBatch(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		got = append(got, b)
		buf = buf[n:]
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("scan mismatch: want %d batches, got %d", len(want), len(got))
	}
}

func TestBatchCorruptionDetected(t *testing.T) {
	buf := EncodeBatch(sampleBatch())
	for _, i := range []int{4, 6, 10, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[i] ^= 0xff
		if _, _, err := DecodeBatch(bad); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
	if _, _, err := DecodeBatch(buf[:3]); err == nil {
		t.Error("truncated frame went undetected")
	}
	if _, _, err := DecodeBatch(buf[:len(buf)-2]); err == nil {
		t.Error("short buffer went undetected")
	}
}

func TestBatchDerivedFields(t *testing.T) {
	b := sampleBatch()
	if got := b.LastOffset(); got != 44 {
		t.Errorf("LastOffset = %d, want 44", got)
	}
	if got := b.LastSequence(); got != 102 {
		t.Errorf("LastSequence = %d, want 102", got)
	}
	if got := b.MaxTimestamp(); got != 3333 {
		t.Errorf("MaxTimestamp = %d, want 3333", got)
	}
	b.BaseSequence = NoSequence
	if got := b.LastSequence(); got != NoSequence {
		t.Errorf("LastSequence = %d, want NoSequence", got)
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	for _, typ := range []MarkerType{MarkerCommit, MarkerAbort} {
		m := ControlMarker{Type: typ, CoordinatorEpoch: 9}
		got, err := DecodeMarker(EncodeMarker(m))
		if err != nil {
			t.Fatalf("decode %v: %v", typ, err)
		}
		if got != m {
			t.Errorf("roundtrip %v: got %+v", typ, got)
		}
	}
	if _, err := DecodeMarker([]byte{9, 0, 0, 0, 0}); err == nil {
		t.Error("unknown marker type accepted")
	}
	if _, err := DecodeMarker([]byte{1}); err == nil {
		t.Error("short marker accepted")
	}
}

func TestMarkerBatch(t *testing.T) {
	mb := NewMarkerBatch(5, 2, 1234, ControlMarker{Type: MarkerAbort, CoordinatorEpoch: 1})
	out, _, err := DecodeBatch(EncodeBatch(mb))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.Control || !out.Transactional {
		t.Fatalf("marker batch flags lost: %+v", out)
	}
	m, err := out.Marker()
	if err != nil {
		t.Fatalf("Marker: %v", err)
	}
	if m.Type != MarkerAbort || m.CoordinatorEpoch != 1 {
		t.Errorf("marker = %+v", m)
	}
	data := sampleBatch()
	if _, err := data.Marker(); err == nil {
		t.Error("Marker on data batch should fail")
	}
}

// genRecords builds a random but valid record slice from quick-generated
// bytes, keeping sizes small so the property test stays fast.
func genRecords(r *rand.Rand, n int) []Record {
	recs := make([]Record, n)
	blob := func() []byte {
		if r.Intn(5) == 0 {
			return nil
		}
		p := make([]byte, r.Intn(40))
		r.Read(p)
		return p
	}
	for i := range recs {
		recs[i] = Record{Key: blob(), Value: blob(), Timestamp: r.Int63n(1 << 40)}
		for j := r.Intn(3); j > 0; j-- {
			recs[i].Headers = append(recs[i].Headers,
				Header{Key: string(blob()), Value: blob()})
		}
	}
	return recs
}

func TestBatchRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(seed int64, txn, ctrl bool) bool {
		r := rand.New(rand.NewSource(seed))
		in := RecordBatch{
			BaseOffset:    r.Int63n(1 << 32),
			ProducerID:    r.Int63n(1000) - 1,
			ProducerEpoch: int16(r.Intn(100)),
			BaseSequence:  int32(r.Intn(1000)) - 1,
			Transactional: txn,
			Control:       ctrl,
			Records:       genRecords(r, 1+r.Intn(8)),
		}
		buf := EncodeBatch(&in)
		out, n, err := DecodeBatch(buf)
		if err != nil || n != len(buf) {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBatchEncodeDeterministic(t *testing.T) {
	a := EncodeBatch(sampleBatch())
	b := EncodeBatch(sampleBatch())
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestErrorCodes(t *testing.T) {
	if ErrNone.Err() != nil {
		t.Error("ErrNone.Err() must be nil")
	}
	err := ErrNotLeader.Err()
	if err == nil || CodeOf(err) != ErrNotLeader {
		t.Errorf("CodeOf roundtrip failed: %v", err)
	}
	if CodeOf(nil) != ErrNone {
		t.Error("CodeOf(nil) must be ErrNone")
	}
	if !ErrNotLeader.Retriable() || ErrOutOfOrderSequence.Retriable() {
		t.Error("retriable classification wrong")
	}
	if ErrorCode(999).String() == "" {
		t.Error("unknown code must still format")
	}
}

func TestRecordClone(t *testing.T) {
	r := Record{Key: []byte("k"), Value: []byte("v"), Timestamp: 1,
		Headers: []Header{{Key: "h", Value: []byte("x")}}}
	c := r.Clone()
	r.Key[0] = 'z'
	r.Value[0] = 'z'
	r.Headers[0].Value[0] = 'z'
	if string(c.Key) != "k" || string(c.Value) != "v" || string(c.Headers[0].Value) != "x" {
		t.Fatalf("clone aliases original: %+v", c)
	}
}
