package protocol

// This file defines the request/response vocabulary exchanged between
// clients, brokers, and the controller. RPCs travel in-process through
// internal/transport, so they stay as Go structs; only record batches (the
// data that is persisted and replicated) use the binary codec in batch.go.

// IsolationLevel selects which records a fetch may return.
type IsolationLevel int8

const (
	// ReadUncommitted returns every appended record up to the high
	// watermark, including open and aborted transactional data.
	ReadUncommitted IsolationLevel = iota
	// ReadCommitted returns records only up to the last stable offset and
	// filters out aborted transactions (paper Section 4.2.3).
	ReadCommitted
)

// CoordinatorType selects which coordinator FindCoordinator resolves.
type CoordinatorType int8

const (
	CoordinatorGroup CoordinatorType = iota
	CoordinatorTxn
)

// --- Metadata and admin ---

// TopicConfig carries per-topic settings at creation time.
type TopicConfig struct {
	// Compacted enables log compaction (changelog topics): the cleaner
	// retains only the latest record per key.
	Compacted bool
	// RetentionBytes bounds partition size for non-compacted topics;
	// 0 means unlimited.
	RetentionBytes int64
}

// CreateTopicRequest asks the controller to create a topic.
type CreateTopicRequest struct {
	Name              string
	Partitions        int32
	ReplicationFactor int
	Config            TopicConfig
}

// CreateTopicResponse reports creation success or failure.
type CreateTopicResponse struct {
	Err ErrorCode
}

// MetadataRequest fetches cluster and topic metadata. Empty Topics means
// all topics.
type MetadataRequest struct {
	Topics []string
}

// PartitionMetadata describes one partition's replica placement.
type PartitionMetadata struct {
	Partition   int32
	Leader      int32 // broker id, -1 if none
	LeaderEpoch int32
	Replicas    []int32
	ISR         []int32
}

// TopicMetadata describes one topic.
type TopicMetadata struct {
	Name       string
	Err        ErrorCode
	Config     TopicConfig
	Partitions []PartitionMetadata
}

// MetadataResponse lists live brokers and requested topics.
type MetadataResponse struct {
	Brokers []int32
	Topics  []TopicMetadata
}

// --- Produce / fetch ---

// ProduceEntry is one batch destined for one partition.
type ProduceEntry struct {
	TP    TopicPartition
	Batch *RecordBatch
}

// AckMode selects when a produce response is sent.
type AckMode int8

const (
	// AcksAll replies after the batch is committed: replicated to the full
	// ISR and covered by the high watermark (the default, and the only mode
	// that preserves exactly-once guarantees across leader failover).
	AcksAll AckMode = iota
	// AcksLeader replies as soon as the leader has appended the batch to
	// its local log, before replication. Lower latency, weaker durability:
	// an unlucky leader failure can lose acknowledged records.
	AcksLeader
)

// ProduceRequest appends batches. TransactionalID is set for transactional
// producers so brokers can sanity-check partition registration.
type ProduceRequest struct {
	TransactionalID string
	Acks            AckMode
	Entries         []ProduceEntry
}

// ProduceResult is the per-partition outcome of a produce.
type ProduceResult struct {
	TP         TopicPartition
	Err        ErrorCode
	BaseOffset int64
}

// ProduceResponse carries one result per request entry.
type ProduceResponse struct {
	Results []ProduceResult
}

// FetchEntry names one partition and the offset to read from.
type FetchEntry struct {
	TP     TopicPartition
	Offset int64
}

// FetchRequest reads records from one or more partitions. ReplicaID >= 0
// marks an internal follower fetch, which additionally conveys the
// follower's log end offsets (the entry offsets) for ISR and high-watermark
// tracking on the leader.
type FetchRequest struct {
	ReplicaID int32 // -1 for consumer fetches
	MaxBytes  int   // per-partition byte cap
	// MaxRecords bounds records returned per partition (0 = unbounded); it
	// lets consumers honor their poll cap without over-fetching.
	MaxRecords int
	Isolation  IsolationLevel
	Entries    []FetchEntry
}

// AbortedTxn identifies an aborted transaction overlapping the fetched
// range; read-committed consumers drop its records.
type AbortedTxn struct {
	ProducerID  int64
	FirstOffset int64
}

// FetchPartition is the per-partition fetch outcome.
type FetchPartition struct {
	TP               TopicPartition
	Err              ErrorCode
	HighWatermark    int64
	LastStableOffset int64
	LogStartOffset   int64
	Batches          []*RecordBatch
	AbortedTxns      []AbortedTxn
}

// FetchResponse returns one entry per requested partition.
type FetchResponse struct {
	Parts []FetchPartition
}

// ListOffsetsRequest resolves a timestamp to an offset. Time -1 means the
// log end offset ("latest"), -2 the log start offset ("earliest").
type ListOffsetsRequest struct {
	TP   TopicPartition
	Time int64
}

// ListOffsetsResponse returns the resolved offset.
type ListOffsetsResponse struct {
	Err    ErrorCode
	Offset int64
}

// DeleteRecordsRequest advances the log start offset of a partition, used
// by Streams to purge consumed repartition data (paper Section 3.2).
type DeleteRecordsRequest struct {
	TP           TopicPartition
	BeforeOffset int64
}

// DeleteRecordsResponse acknowledges the purge.
type DeleteRecordsResponse struct {
	Err            ErrorCode
	LogStartOffset int64
}

// --- Coordinators ---

// FindCoordinatorRequest locates the group or transaction coordinator for
// a key (group id or transactional id).
type FindCoordinatorRequest struct {
	Key  string
	Type CoordinatorType
}

// FindCoordinatorResponse names the coordinator broker.
type FindCoordinatorResponse struct {
	Err    ErrorCode
	NodeID int32
}

// --- Transactions (KIP-98-style) ---

// InitProducerIDRequest registers a transactional id (or requests a fresh
// idempotent producer id when TransactionalID is empty). The coordinator
// completes any open transaction for the id and bumps the epoch, fencing
// zombies (paper Section 4.2.1).
type InitProducerIDRequest struct {
	TransactionalID string
	TxnTimeoutMs    int64
}

// InitProducerIDResponse returns the producer session identity.
type InitProducerIDResponse struct {
	Err           ErrorCode
	ProducerID    int64
	ProducerEpoch int16
}

// AddPartitionsToTxnRequest registers partitions about to receive writes in
// the current transaction (paper Figure 4.c).
type AddPartitionsToTxnRequest struct {
	TransactionalID string
	ProducerID      int64
	ProducerEpoch   int16
	Partitions      []TopicPartition
}

// AddPartitionsToTxnResponse acknowledges registration.
type AddPartitionsToTxnResponse struct {
	Err ErrorCode
}

// EndTxnRequest initiates the two-phase commit (or abort) of the ongoing
// transaction (paper Figure 4.e).
type EndTxnRequest struct {
	TransactionalID string
	ProducerID      int64
	ProducerEpoch   int16
	Commit          bool
}

// EndTxnResponse acknowledges that phase one (the PrepareCommit /
// PrepareAbort record in the transaction log) is durable; phase two
// proceeds asynchronously.
type EndTxnResponse struct {
	Err ErrorCode
}

// WriteTxnMarkersRequest is the coordinator-to-broker phase-two RPC that
// appends commit/abort control markers to registered partitions.
type WriteTxnMarkersRequest struct {
	ProducerID       int64
	ProducerEpoch    int16
	CoordinatorEpoch int32
	Type             MarkerType
	Partitions       []TopicPartition
}

// WriteTxnMarkersResponse reports per-partition marker append outcomes.
type WriteTxnMarkersResponse struct {
	Results []ProduceResult
}

// OffsetEntry is one partition's committed position.
type OffsetEntry struct {
	TP       TopicPartition
	Offset   int64
	Metadata string
}

// TxnOffsetCommitRequest adds consumed-offset commits to the ongoing
// transaction so that they become visible atomically with the outputs.
// MemberID and GenerationID, when set, carry the committing application's
// consumer group metadata: the coordinator rejects commits from stale
// generations, fencing zombie Streams threads whose tasks migrated away
// (the eos-v2 fencing model, paper Section 6.1 / Kafka 2.6).
type TxnOffsetCommitRequest struct {
	TransactionalID string
	ProducerID      int64
	ProducerEpoch   int16
	Group           string
	MemberID        string
	GenerationID    int32
	Offsets         []OffsetEntry
}

// TxnOffsetCommitResponse acknowledges the staged offsets.
type TxnOffsetCommitResponse struct {
	Err ErrorCode
}

// --- Consumer groups ---

// JoinGroupRequest enters a member into a consumer group generation.
type JoinGroupRequest struct {
	Group            string
	MemberID         string // empty on first join; coordinator assigns one
	ClientID         string
	SessionTimeoutMs int64
	// Subscription lists the topics the member wants; the elected leader
	// receives everyone's subscription to compute assignments.
	Subscription []string
	// ProtocolName lets Streams request its sticky task-aware assignor.
	ProtocolName string
	// UserData is opaque assignor input (e.g. previously owned tasks).
	UserData []byte
	// Owned lists the partitions the member still holds at join time.
	// Cooperative members keep processing these through the join round;
	// the leader withholds any partition moving between members for one
	// generation so ownership is handed over only after the old owner
	// has revoked it (and rejoined). Eager members send nil.
	Owned []TopicPartition
}

// JoinGroupMember is a member's subscription as seen by the group leader.
type JoinGroupMember struct {
	MemberID     string
	Subscription []string
	UserData     []byte
	// Owned is the member's currently-held partitions (cooperative
	// protocol); the leader uses it to withhold moving partitions.
	Owned []TopicPartition
}

// JoinGroupResponse tells the member its id, the generation, and — if it
// was elected leader — the full membership for assignment.
type JoinGroupResponse struct {
	Err          ErrorCode
	GenerationID int32
	MemberID     string
	LeaderID     string
	Members      []JoinGroupMember // populated only for the leader
}

// MemberAssignment is the leader-computed assignment for one member.
type MemberAssignment struct {
	MemberID   string
	Partitions []TopicPartition
	UserData   []byte
}

// SyncGroupRequest distributes assignments: the leader includes them, the
// followers send empty assignments and receive their own back.
type SyncGroupRequest struct {
	Group        string
	MemberID     string
	GenerationID int32
	Assignments  []MemberAssignment
}

// SyncGroupResponse returns the caller's assignment.
type SyncGroupResponse struct {
	Err        ErrorCode
	Partitions []TopicPartition
	UserData   []byte
}

// HeartbeatRequest keeps a member alive and learns about rebalances.
type HeartbeatRequest struct {
	Group        string
	MemberID     string
	GenerationID int32
}

// HeartbeatResponse may demand a rejoin via ErrRebalanceInProgress.
type HeartbeatResponse struct {
	Err ErrorCode
}

// LeaveGroupRequest removes a member, triggering a rebalance.
type LeaveGroupRequest struct {
	Group    string
	MemberID string
}

// LeaveGroupResponse acknowledges departure.
type LeaveGroupResponse struct {
	Err ErrorCode
}

// OffsetCommitRequest commits offsets outside a transaction (ALOS mode).
type OffsetCommitRequest struct {
	Group        string
	MemberID     string
	GenerationID int32
	Offsets      []OffsetEntry
}

// OffsetCommitResponse acknowledges the commit.
type OffsetCommitResponse struct {
	Err ErrorCode
}

// OffsetFetchRequest reads a group's committed offsets.
type OffsetFetchRequest struct {
	Group string
	TPs   []TopicPartition
}

// OffsetFetchEntry is one partition's committed offset; -1 if none.
type OffsetFetchEntry struct {
	TP     TopicPartition
	Offset int64
	Err    ErrorCode
}

// OffsetFetchResponse lists committed offsets.
type OffsetFetchResponse struct {
	Err     ErrorCode
	Offsets []OffsetFetchEntry
}

// --- Controller-to-broker ---

// LeaderAndISRRequest installs a partition replica on a broker: whether it
// leads or follows, the leader epoch, and the current ISR.
type LeaderAndISRRequest struct {
	TP          TopicPartition
	Leader      int32
	LeaderEpoch int32
	Replicas    []int32
	ISR         []int32
	Config      TopicConfig
	// IsNew marks initial placement (create the local log).
	IsNew bool
}

// LeaderAndISRResponse acknowledges the state change.
type LeaderAndISRResponse struct {
	Err ErrorCode
}

// AlterISRRequest is sent by a partition leader to the controller when a
// caught-up follower should (re)join the ISR.
type AlterISRRequest struct {
	TP          TopicPartition
	LeaderEpoch int32
	NewISR      []int32
}

// AlterISRResponse confirms (or rejects, on stale epoch) the change.
type AlterISRResponse struct {
	Err ErrorCode
	ISR []int32
}

// AllocatePIDRequest asks the controller for a fresh producer id.
type AllocatePIDRequest struct{}

// AllocatePIDResponse returns the allocated producer id.
type AllocatePIDResponse struct {
	Err        ErrorCode
	ProducerID int64
}
