// Package protocol defines the wire-level data model shared by brokers and
// clients: records, record batches, transaction control markers, topic
// coordinates, and the error codes surfaced by broker RPCs.
//
// The binary batch format is a simplified cousin of Kafka's record batch
// format v2: a fixed header carrying offset/producer/transaction metadata
// followed by length-prefixed records, the whole batch protected by a CRC.
package protocol

import "fmt"

// Record is a single timestamped key-value event. Key and Value are opaque
// byte slices; Timestamp is event time in milliseconds since the Unix epoch
// and is assigned by the producer (or the application) rather than the
// broker, so that log (offset) order and event-time order may legitimately
// disagree — the out-of-order scenario the paper's Section 5 addresses.
type Record struct {
	Key       []byte
	Value     []byte
	Timestamp int64
	Headers   []Header
}

// Header is an application-defined key-value annotation on a record.
type Header struct {
	Key   string
	Value []byte
}

// Clone returns a deep copy of the record so that callers may retain it
// beyond the lifetime of the buffer it was decoded from.
func (r Record) Clone() Record {
	c := Record{Timestamp: r.Timestamp}
	if r.Key != nil {
		c.Key = append([]byte(nil), r.Key...)
	}
	if r.Value != nil {
		c.Value = append([]byte(nil), r.Value...)
	}
	if r.Headers != nil {
		c.Headers = make([]Header, len(r.Headers))
		for i, h := range r.Headers {
			c.Headers[i] = Header{Key: h.Key, Value: append([]byte(nil), h.Value...)}
		}
	}
	return c
}

// TopicPartition names one partition of one topic.
type TopicPartition struct {
	Topic     string
	Partition int32
}

func (tp TopicPartition) String() string {
	return fmt.Sprintf("%s-%d", tp.Topic, tp.Partition)
}

// MarkerType distinguishes transaction control markers.
type MarkerType int8

const (
	// MarkerCommit marks all records appended by the marker's producer id
	// before this offset (since the previous marker) as committed.
	MarkerCommit MarkerType = iota + 1
	// MarkerAbort marks them as aborted; read-committed consumers must not
	// deliver them.
	MarkerAbort
)

func (m MarkerType) String() string {
	switch m {
	case MarkerCommit:
		return "COMMIT"
	case MarkerAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("MarkerType(%d)", int8(m))
	}
}

// ControlMarker is the payload of a control batch: the transaction
// coordinator writes one to every partition registered in a transaction
// during the second phase of the two-phase commit (paper Figure 4.f).
type ControlMarker struct {
	Type             MarkerType
	CoordinatorEpoch int32
}

// NoProducerID is the producer id of non-idempotent appends.
const NoProducerID int64 = -1

// NoSequence is the base sequence of non-idempotent appends.
const NoSequence int32 = -1
