package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// RecordBatch is the unit of appending, replication, and fetching. All
// records in a batch share the producer identity and transactional flag;
// sequence numbers are inferred monotonically from BaseSequence (paper
// Section 4.1: only the first record's sequence number is encoded).
type RecordBatch struct {
	// BaseOffset is the log offset of the first record, assigned by the
	// leader on append. Producers send it as 0.
	BaseOffset int64
	// ProducerID and ProducerEpoch identify the (possibly idempotent or
	// transactional) producer session. NoProducerID means a plain append.
	ProducerID    int64
	ProducerEpoch int16
	// BaseSequence is the per-partition sequence number of the first record,
	// used by brokers to de-duplicate retried appends.
	BaseSequence int32
	// Transactional marks the batch as part of an ongoing transaction;
	// read-committed consumers withhold it until a marker resolves it.
	Transactional bool
	// Control marks a transaction marker batch written by the coordinator.
	Control bool
	Records []Record
}

// LastOffset returns the offset of the final record in the batch.
func (b *RecordBatch) LastOffset() int64 {
	return b.BaseOffset + int64(len(b.Records)) - 1
}

// LastSequence returns the sequence number of the final record, or
// NoSequence for non-idempotent batches.
func (b *RecordBatch) LastSequence() int32 {
	if b.BaseSequence == NoSequence {
		return NoSequence
	}
	return b.BaseSequence + int32(len(b.Records)) - 1
}

// MaxTimestamp returns the largest record timestamp in the batch.
func (b *RecordBatch) MaxTimestamp() int64 {
	var max int64 = -1
	for i := range b.Records {
		if b.Records[i].Timestamp > max {
			max = b.Records[i].Timestamp
		}
	}
	return max
}

// Marker decodes the control marker carried by a control batch.
func (b *RecordBatch) Marker() (ControlMarker, error) {
	if !b.Control || len(b.Records) != 1 {
		return ControlMarker{}, errors.New("protocol: not a control batch")
	}
	return DecodeMarker(b.Records[0].Value)
}

const (
	batchMagic byte = 2

	flagTransactional byte = 1 << 0
	flagControl       byte = 1 << 1

	// headerBytes is the fixed frame prefix: uint32 length, magic, flags,
	// crc32c. The length field counts everything after itself.
	headerBytes = 4 + 1 + 1 + 4
	// fixedBodyBytes is the fixed-size portion of the body: baseOffset,
	// producerID, producerEpoch, baseSequence, recordCount.
	fixedBodyBytes = 8 + 8 + 2 + 4 + 4
	// minRecordBytes is the smallest wire size of one record: timestamp,
	// nil key length, nil value length, zero header count.
	minRecordBytes = 8 + 4 + 4 + 4
	// minHeaderBytes is the smallest wire size of one header: empty key
	// length plus nil value length.
	minHeaderBytes = 4 + 4
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptBatch reports a CRC mismatch or malformed framing on decode.
var ErrCorruptBatch = errors.New("protocol: corrupt record batch")

// EncodedBatchSize returns the exact number of bytes EncodeBatch produces
// for b, letting callers size buffers without encoding twice.
func EncodedBatchSize(b *RecordBatch) int {
	n := headerBytes + fixedBodyBytes
	for i := range b.Records {
		r := &b.Records[i]
		n += 8 + 4 + len(r.Key) + 4 + len(r.Value) + 4
		for _, h := range r.Headers {
			n += 4 + len(h.Key) + 4 + len(h.Value)
		}
	}
	return n
}

// AppendBatch appends the length-framed encoding of b to dst and returns
// the extended slice. It grows dst at most once (to the exact final size)
// and computes the CRC32C in a single pass over the finished body, so an
// encode through a pooled buffer performs zero allocations. Layout after
// the uint32 length frame: magic, flags, crc32c (over the remainder),
// baseOffset, producerID, producerEpoch, baseSequence, recordCount,
// records.
//
//kslint:hotpath
func AppendBatch(dst []byte, b *RecordBatch) []byte {
	size := EncodedBatchSize(b)
	base := len(dst)
	if cap(dst)-base < size {
		grown := make([]byte, base, base+size)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:base+size]
	out := dst[base:]

	var flags byte
	if b.Transactional {
		flags |= flagTransactional
	}
	if b.Control {
		flags |= flagControl
	}
	binary.BigEndian.PutUint32(out[0:4], uint32(size-4))
	out[4] = batchMagic
	out[5] = flags
	// out[6:10] holds the CRC, filled after the body is complete.

	i := headerBytes
	put64 := func(v int64) {
		binary.BigEndian.PutUint64(out[i:i+8], uint64(v))
		i += 8
	}
	put32 := func(v int32) {
		binary.BigEndian.PutUint32(out[i:i+4], uint32(v))
		i += 4
	}
	putBytes := func(p []byte) {
		if p == nil {
			put32(-1)
			return
		}
		put32(int32(len(p)))
		i += copy(out[i:], p)
	}

	put64(b.BaseOffset)
	put64(b.ProducerID)
	binary.BigEndian.PutUint16(out[i:i+2], uint16(b.ProducerEpoch))
	i += 2
	put32(b.BaseSequence)
	put32(int32(len(b.Records)))
	for ri := range b.Records {
		r := &b.Records[ri]
		put64(r.Timestamp)
		putBytes(r.Key)
		putBytes(r.Value)
		put32(int32(len(r.Headers)))
		for _, h := range r.Headers {
			put32(int32(len(h.Key)))
			i += copy(out[i:], h.Key)
			putBytes(h.Value)
		}
	}

	crc := crc32.Checksum(out[headerBytes:], castagnoli)
	binary.BigEndian.PutUint32(out[6:10], crc)
	return dst
}

// EncodeBatch serializes the batch with a leading total-length frame so that
// consecutive batches can be scanned out of a segment file. The result is a
// single exact-size allocation; hot paths that can recycle buffers should
// prefer AppendBatch with a frame buffer from GetFrameBuf.
func EncodeBatch(b *RecordBatch) []byte {
	return AppendBatch(nil, b)
}

// maxPooledFrame bounds the capacity of buffers returned to the frame
// pool so one giant batch cannot pin memory for the process lifetime.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 16<<10)
		return &b
	},
}

// GetFrameBuf returns a reusable encode/read buffer. Callers append into
// (*buf)[:0] (or resize it) and hand it back with PutFrameBuf once the
// bytes have been copied to their destination (a segment file, a hash).
// The buffer must not be retained past PutFrameBuf.
func GetFrameBuf() *[]byte {
	return framePool.Get().(*[]byte)
}

// PutFrameBuf recycles a buffer obtained from GetFrameBuf. Oversized
// buffers are dropped instead of pooled.
func PutFrameBuf(buf *[]byte) {
	if buf == nil || cap(*buf) > maxPooledFrame {
		return
	}
	*buf = (*buf)[:0]
	framePool.Put(buf)
}

// DecodeBatch reads one length-framed batch from the front of buf and
// returns it together with the total number of bytes consumed. Record keys,
// values, and header values are defensive copies, safe to retain after buf
// is reused.
func DecodeBatch(buf []byte) (RecordBatch, int, error) {
	return decodeBatch(buf, false)
}

// DecodeBatchShared is DecodeBatch without the defensive copies: record
// keys, values, and header values alias buf directly. The caller must
// guarantee buf stays live and immutable for as long as the returned
// batch (or anything that aliases its records) is reachable — the WAL
// uses it when decoding into its long-lived batch cache.
//
//kslint:hotpath
func DecodeBatchShared(buf []byte) (RecordBatch, int, error) {
	return decodeBatch(buf, true)
}

// errCRCMismatch is built once: the decode hot path returns it without
// formatting anything.
var errCRCMismatch = fmt.Errorf("%w: crc mismatch", ErrCorruptBatch)

// corruptf wraps ErrCorruptBatch with formatted detail.
//
//kslint:coldpath corruption errors terminate the decode; formatting never runs for a valid batch
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorruptBatch}, args...)...)
}

func decodeBatch(buf []byte, share bool) (RecordBatch, int, error) {
	if len(buf) < 4 {
		return RecordBatch{}, 0, ErrCorruptBatch
	}
	frame := int(binary.BigEndian.Uint32(buf[0:4]))
	// The frame must at least hold magic+flags+crc and the fixed body.
	if frame < headerBytes-4+fixedBodyBytes || len(buf) < 4+frame {
		return RecordBatch{}, 0, ErrCorruptBatch
	}
	total := 4 + frame
	if buf[4] != batchMagic {
		return RecordBatch{}, 0, corruptf("bad magic %d", buf[4])
	}
	flags := buf[5]
	// The flags byte is outside the CRC, so unknown bits are rejected
	// outright: tolerating them would let a single flipped bit survive
	// the checksum and change re-encoded bytes.
	if flags&^(flagTransactional|flagControl) != 0 {
		return RecordBatch{}, 0, corruptf("unknown flags %#x", flags)
	}
	crc := binary.BigEndian.Uint32(buf[6:10])
	body := buf[headerBytes:total]
	if crc32.Checksum(body, castagnoli) != crc {
		return RecordBatch{}, 0, errCRCMismatch
	}

	pos := 0
	fail := func() (RecordBatch, int, error) { return RecordBatch{}, 0, ErrCorruptBatch }
	get64 := func() (int64, bool) {
		if pos+8 > len(body) {
			return 0, false
		}
		v := int64(binary.BigEndian.Uint64(body[pos : pos+8]))
		pos += 8
		return v, true
	}
	get32 := func() (int32, bool) {
		if pos+4 > len(body) {
			return 0, false
		}
		v := int32(binary.BigEndian.Uint32(body[pos : pos+4]))
		pos += 4
		return v, true
	}
	getBytes := func() ([]byte, bool) {
		n, ok := get32()
		if !ok {
			return nil, false
		}
		if n < 0 {
			return nil, true
		}
		if int(n) > len(body)-pos {
			return nil, false
		}
		var p []byte
		if share {
			// Three-index slice: an append through the result cannot
			// scribble past the field into the shared buffer.
			p = body[pos : pos+int(n) : pos+int(n)]
		} else {
			p = make([]byte, n)
			copy(p, body[pos:pos+int(n)])
		}
		pos += int(n)
		return p, true
	}

	var b RecordBatch
	b.Transactional = flags&flagTransactional != 0
	b.Control = flags&flagControl != 0

	var ok bool
	if b.BaseOffset, ok = get64(); !ok {
		return fail()
	}
	if b.ProducerID, ok = get64(); !ok {
		return fail()
	}
	if pos+2 > len(body) {
		return fail()
	}
	b.ProducerEpoch = int16(binary.BigEndian.Uint16(body[pos : pos+2]))
	pos += 2
	if b.BaseSequence, ok = get32(); !ok {
		return fail()
	}
	count, ok := get32()
	// A hostile count is rejected (and the prealloc capped) against the
	// bytes actually present: every record occupies at least
	// minRecordBytes, so a count the body cannot hold is corrupt rather
	// than an invitation to allocate gigabytes.
	if !ok || count < 0 || int64(count)*minRecordBytes > int64(len(body)-pos) {
		return fail()
	}
	b.Records = make([]Record, 0, count)
	for i := int32(0); i < count; i++ {
		var r Record
		if r.Timestamp, ok = get64(); !ok {
			return fail()
		}
		if r.Key, ok = getBytes(); !ok {
			return fail()
		}
		if r.Value, ok = getBytes(); !ok {
			return fail()
		}
		hc, ok := get32()
		if !ok || hc < 0 || int64(hc)*minHeaderBytes > int64(len(body)-pos) {
			return fail()
		}
		if hc > 0 {
			//kslint:ignore hotalloc the headers slice is the decode output itself, sized exactly once per record that has headers
			r.Headers = make([]Header, 0, hc)
		}
		for j := int32(0); j < hc; j++ {
			k, ok := getBytes()
			if !ok {
				return fail()
			}
			v, ok := getBytes()
			if !ok {
				return fail()
			}
			//kslint:ignore hotalloc header keys are string-typed in the Record API; the copy is the decode output, not a transient
			r.Headers = append(r.Headers, Header{Key: string(k), Value: v})
		}
		b.Records = append(b.Records, r)
	}
	if pos != len(body) {
		return fail()
	}
	return b, total, nil
}

// EncodeMarker serializes a control marker into a record value.
func EncodeMarker(m ControlMarker) []byte {
	out := make([]byte, 5)
	out[0] = byte(m.Type)
	binary.BigEndian.PutUint32(out[1:5], uint32(m.CoordinatorEpoch))
	return out
}

// DecodeMarker parses a control marker from a control record's value.
func DecodeMarker(p []byte) (ControlMarker, error) {
	if len(p) != 5 {
		//kslint:ignore hotalloc a malformed marker is corruption, never the steady-state commit path
		return ControlMarker{}, fmt.Errorf("protocol: marker payload length %d", len(p))
	}
	m := ControlMarker{
		Type:             MarkerType(p[0]),
		CoordinatorEpoch: int32(binary.BigEndian.Uint32(p[1:5])),
	}
	if m.Type != MarkerCommit && m.Type != MarkerAbort {
		//kslint:ignore hotalloc an unknown marker type is corruption, never the steady-state commit path
		return ControlMarker{}, fmt.Errorf("protocol: unknown marker type %d", p[0])
	}
	return m, nil
}

// NewMarkerBatch builds the control batch the transaction coordinator
// appends to each registered partition during phase two of a commit or
// abort (paper Figure 4.f).
func NewMarkerBatch(pid int64, epoch int16, now int64, m ControlMarker) *RecordBatch {
	return &RecordBatch{
		ProducerID:    pid,
		ProducerEpoch: epoch,
		BaseSequence:  NoSequence,
		Transactional: true,
		Control:       true,
		Records:       []Record{{Timestamp: now, Value: EncodeMarker(m)}},
	}
}
