package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecordBatch is the unit of appending, replication, and fetching. All
// records in a batch share the producer identity and transactional flag;
// sequence numbers are inferred monotonically from BaseSequence (paper
// Section 4.1: only the first record's sequence number is encoded).
type RecordBatch struct {
	// BaseOffset is the log offset of the first record, assigned by the
	// leader on append. Producers send it as 0.
	BaseOffset int64
	// ProducerID and ProducerEpoch identify the (possibly idempotent or
	// transactional) producer session. NoProducerID means a plain append.
	ProducerID    int64
	ProducerEpoch int16
	// BaseSequence is the per-partition sequence number of the first record,
	// used by brokers to de-duplicate retried appends.
	BaseSequence int32
	// Transactional marks the batch as part of an ongoing transaction;
	// read-committed consumers withhold it until a marker resolves it.
	Transactional bool
	// Control marks a transaction marker batch written by the coordinator.
	Control bool
	Records []Record
}

// LastOffset returns the offset of the final record in the batch.
func (b *RecordBatch) LastOffset() int64 {
	return b.BaseOffset + int64(len(b.Records)) - 1
}

// LastSequence returns the sequence number of the final record, or
// NoSequence for non-idempotent batches.
func (b *RecordBatch) LastSequence() int32 {
	if b.BaseSequence == NoSequence {
		return NoSequence
	}
	return b.BaseSequence + int32(len(b.Records)) - 1
}

// MaxTimestamp returns the largest record timestamp in the batch.
func (b *RecordBatch) MaxTimestamp() int64 {
	var max int64 = -1
	for i := range b.Records {
		if b.Records[i].Timestamp > max {
			max = b.Records[i].Timestamp
		}
	}
	return max
}

// Marker decodes the control marker carried by a control batch.
func (b *RecordBatch) Marker() (ControlMarker, error) {
	if !b.Control || len(b.Records) != 1 {
		return ControlMarker{}, errors.New("protocol: not a control batch")
	}
	return DecodeMarker(b.Records[0].Value)
}

const (
	batchMagic byte = 2

	flagTransactional byte = 1 << 0
	flagControl       byte = 1 << 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptBatch reports a CRC mismatch or malformed framing on decode.
var ErrCorruptBatch = errors.New("protocol: corrupt record batch")

// EncodeBatch serializes the batch with a leading total-length frame so that
// consecutive batches can be scanned out of a segment file. Layout after the
// uint32 length: magic, flags, crc32c (over the remainder), baseOffset,
// producerID, producerEpoch, baseSequence, recordCount, records.
func EncodeBatch(b *RecordBatch) []byte {
	body := make([]byte, 0, 64+32*len(b.Records))
	var scratch [8]byte

	put64 := func(v int64) {
		binary.BigEndian.PutUint64(scratch[:8], uint64(v))
		body = append(body, scratch[:8]...)
	}
	put32 := func(v int32) {
		binary.BigEndian.PutUint32(scratch[:4], uint32(v))
		body = append(body, scratch[:4]...)
	}
	put16 := func(v int16) {
		binary.BigEndian.PutUint16(scratch[:2], uint16(v))
		body = append(body, scratch[:2]...)
	}
	putBytes := func(p []byte) {
		if p == nil {
			put32(-1)
			return
		}
		put32(int32(len(p)))
		body = append(body, p...)
	}

	put64(b.BaseOffset)
	put64(b.ProducerID)
	put16(b.ProducerEpoch)
	put32(b.BaseSequence)
	put32(int32(len(b.Records)))
	for i := range b.Records {
		r := &b.Records[i]
		put64(r.Timestamp)
		putBytes(r.Key)
		putBytes(r.Value)
		put32(int32(len(r.Headers)))
		for _, h := range r.Headers {
			putBytes([]byte(h.Key))
			putBytes(h.Value)
		}
	}

	var flags byte
	if b.Transactional {
		flags |= flagTransactional
	}
	if b.Control {
		flags |= flagControl
	}
	crc := crc32.Checksum(body, castagnoli)

	out := make([]byte, 4+2+4+len(body))
	binary.BigEndian.PutUint32(out[0:4], uint32(2+4+len(body)))
	out[4] = batchMagic
	out[5] = flags
	binary.BigEndian.PutUint32(out[6:10], crc)
	copy(out[10:], body)
	return out
}

// DecodeBatch reads one length-framed batch from the front of buf and
// returns it together with the total number of bytes consumed.
func DecodeBatch(buf []byte) (RecordBatch, int, error) {
	if len(buf) < 4 {
		return RecordBatch{}, 0, ErrCorruptBatch
	}
	frame := int(binary.BigEndian.Uint32(buf[0:4]))
	if frame < 6 || len(buf) < 4+frame {
		return RecordBatch{}, 0, ErrCorruptBatch
	}
	total := 4 + frame
	if buf[4] != batchMagic {
		return RecordBatch{}, 0, fmt.Errorf("%w: bad magic %d", ErrCorruptBatch, buf[4])
	}
	flags := buf[5]
	crc := binary.BigEndian.Uint32(buf[6:10])
	body := buf[10:total]
	if crc32.Checksum(body, castagnoli) != crc {
		return RecordBatch{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorruptBatch)
	}

	pos := 0
	fail := func() (RecordBatch, int, error) { return RecordBatch{}, 0, ErrCorruptBatch }
	get64 := func() (int64, bool) {
		if pos+8 > len(body) {
			return 0, false
		}
		v := int64(binary.BigEndian.Uint64(body[pos : pos+8]))
		pos += 8
		return v, true
	}
	get32 := func() (int32, bool) {
		if pos+4 > len(body) {
			return 0, false
		}
		v := int32(binary.BigEndian.Uint32(body[pos : pos+4]))
		pos += 4
		return v, true
	}
	get16 := func() (int16, bool) {
		if pos+2 > len(body) {
			return 0, false
		}
		v := int16(binary.BigEndian.Uint16(body[pos : pos+2]))
		pos += 2
		return v, true
	}
	getBytes := func() ([]byte, bool) {
		n, ok := get32()
		if !ok {
			return nil, false
		}
		if n < 0 {
			return nil, true
		}
		if pos+int(n) > len(body) {
			return nil, false
		}
		p := make([]byte, n)
		copy(p, body[pos:pos+int(n)])
		pos += int(n)
		return p, true
	}

	var b RecordBatch
	b.Transactional = flags&flagTransactional != 0
	b.Control = flags&flagControl != 0

	var ok bool
	if b.BaseOffset, ok = get64(); !ok {
		return fail()
	}
	if b.ProducerID, ok = get64(); !ok {
		return fail()
	}
	if b.ProducerEpoch, ok = get16(); !ok {
		return fail()
	}
	if b.BaseSequence, ok = get32(); !ok {
		return fail()
	}
	count, ok := get32()
	if !ok || count < 0 {
		return fail()
	}
	b.Records = make([]Record, 0, count)
	for i := int32(0); i < count; i++ {
		var r Record
		if r.Timestamp, ok = get64(); !ok {
			return fail()
		}
		if r.Key, ok = getBytes(); !ok {
			return fail()
		}
		if r.Value, ok = getBytes(); !ok {
			return fail()
		}
		hc, ok := get32()
		if !ok || hc < 0 {
			return fail()
		}
		for j := int32(0); j < hc; j++ {
			k, ok := getBytes()
			if !ok {
				return fail()
			}
			v, ok := getBytes()
			if !ok {
				return fail()
			}
			r.Headers = append(r.Headers, Header{Key: string(k), Value: v})
		}
		b.Records = append(b.Records, r)
	}
	if pos != len(body) {
		return fail()
	}
	return b, total, nil
}

// EncodeMarker serializes a control marker into a record value.
func EncodeMarker(m ControlMarker) []byte {
	out := make([]byte, 5)
	out[0] = byte(m.Type)
	binary.BigEndian.PutUint32(out[1:5], uint32(m.CoordinatorEpoch))
	return out
}

// DecodeMarker parses a control marker from a control record's value.
func DecodeMarker(p []byte) (ControlMarker, error) {
	if len(p) != 5 {
		return ControlMarker{}, fmt.Errorf("protocol: marker payload length %d", len(p))
	}
	m := ControlMarker{
		Type:             MarkerType(p[0]),
		CoordinatorEpoch: int32(binary.BigEndian.Uint32(p[1:5])),
	}
	if m.Type != MarkerCommit && m.Type != MarkerAbort {
		return ControlMarker{}, fmt.Errorf("protocol: unknown marker type %d", p[0])
	}
	return m, nil
}

// NewMarkerBatch builds the control batch the transaction coordinator
// appends to each registered partition during phase two of a commit or
// abort (paper Figure 4.f).
func NewMarkerBatch(pid int64, epoch int16, now int64, m ControlMarker) *RecordBatch {
	return &RecordBatch{
		ProducerID:    pid,
		ProducerEpoch: epoch,
		BaseSequence:  NoSequence,
		Transactional: true,
		Control:       true,
		Records:       []Record{{Timestamp: now, Value: EncodeMarker(m)}},
	}
}
