package broker

import (
	"kstreams/internal/obs"
)

// brokerMetrics holds the broker-layer instrument handles, resolved once
// at construction so hot paths pay only atomic ops. The registry is the
// transport network's — shared by every broker in the cluster — so
// unlabeled instruments aggregate cluster-wide, which is the granularity
// the paper's figures reason about; per-partition gauges carry
// topic/partition labels.
type brokerMetrics struct {
	reg *obs.Registry

	produceLat      *obs.Histogram // handleProduce, append + replication wait
	fetchConsumer   *obs.Histogram // handleFetch serving clients
	fetchReplica    *obs.Histogram // handleFetch serving follower replication
	appendLat       *obs.Histogram // leader log append incl. storage delay
	rebalances      *obs.Counter   // group generations completed
	txnCommits      *obs.Counter   // transactions reaching PrepareCommit
	txnAborts       *obs.Counter   // transactions reaching PrepareAbort
	txnPrepareLat   *obs.Histogram // phase 1: Prepare record persist
	txnMarkersLat   *obs.Histogram // phase 2: marker writes across brokers
	txnCompleteLat  *obs.Histogram // phase 2 tail: Complete record persist
	markerCommitTPs *obs.Counter   // commit markers written, one per partition
	markerAbortTPs  *obs.Counter   // abort markers written, one per partition
}

func newBrokerMetrics(reg *obs.Registry) *brokerMetrics {
	return &brokerMetrics{
		reg:             reg,
		produceLat:      reg.Histogram("broker_produce_latency"),
		fetchConsumer:   reg.Histogram("broker_fetch_latency", obs.L("role", "consumer")),
		fetchReplica:    reg.Histogram("broker_fetch_latency", obs.L("role", "replica")),
		appendLat:       reg.Histogram("broker_append_latency"),
		rebalances:      reg.Counter("group_rebalances_total"),
		txnCommits:      reg.Counter("txn_commits_total"),
		txnAborts:       reg.Counter("txn_aborts_total"),
		txnPrepareLat:   reg.Histogram("txn_phase_latency", obs.L("phase", "prepare")),
		txnMarkersLat:   reg.Histogram("txn_phase_latency", obs.L("phase", "markers")),
		txnCompleteLat:  reg.Histogram("txn_phase_latency", obs.L("phase", "complete")),
		markerCommitTPs: reg.Counter("txn_marker_partitions_total", obs.L("type", "commit")),
		markerAbortTPs:  reg.Counter("txn_marker_partitions_total", obs.L("type", "abort")),
	}
}
