package broker

import (
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"strconv"
	"sync"
	"time"

	"kstreams/internal/obs"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/storage"
	"kstreams/internal/transport"
	"kstreams/internal/wal"
)

var debugOn = os.Getenv("KSTREAMS_DEBUG") != ""

// Internal topic names (paper Section 4.2.1: the transaction log is "another
// internal Kafka topic"; offset commits are "appends to an internal Kafka
// topic as well").
const (
	OffsetsTopic = "__consumer_offsets"
	TxnTopic     = "__transaction_state"
)

// CoordinatorPartition maps a group or transactional id to a partition of
// the corresponding internal topic. Clients, brokers, and the controller
// must agree on this mapping, so it lives here.
func CoordinatorPartition(key string, numPartitions int32) int32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int32(h.Sum32() % uint32(numPartitions))
}

// Config parameterizes a broker.
type Config struct {
	// ID is this broker's node id on the transport network.
	ID int32
	// ControllerID is the controller's node id.
	ControllerID int32
	// Backend stores this broker's logs; reuse across restarts to model a
	// broker recovering from its local disk.
	Backend storage.Backend
	// SegmentBytes is the per-log segment roll threshold.
	SegmentBytes int64
	// AppendLatency models storage latency charged per leader append.
	AppendLatency time.Duration
	// ReplicaPollInterval paces follower fetch loops when idle.
	ReplicaPollInterval time.Duration
	// CleanerInterval paces the compaction pass; 0 disables background
	// cleaning (tests call CompactAll explicitly).
	CleanerInterval time.Duration
	// GroupRebalanceTimeout bounds how long a rebalance waits for all known
	// members to rejoin before evicting stragglers.
	GroupRebalanceTimeout time.Duration
	// GroupSessionCheckInterval paces member liveness checks.
	GroupSessionCheckInterval time.Duration
	// OffsetsPartitions and TxnPartitions are the partition counts of the
	// internal __consumer_offsets and __transaction_state topics; all
	// brokers and the controller must agree on them.
	OffsetsPartitions int32
	TxnPartitions     int32
	// TxnTimeout aborts transactions idle longer than this.
	TxnTimeout time.Duration
	// ProduceTimeout bounds how long an acks=all append waits for
	// replication before reporting ErrRequestTimedOut.
	ProduceTimeout time.Duration
	// Faults, when non-nil, enables deliberate protocol-bug injection for
	// harness self-tests; nil means no faults are ever active.
	Faults *Faults
}

func (c *Config) fill() {
	if c.ReplicaPollInterval <= 0 {
		c.ReplicaPollInterval = 100 * time.Microsecond
	}
	if c.GroupRebalanceTimeout <= 0 {
		c.GroupRebalanceTimeout = 2 * time.Second
	}
	if c.GroupSessionCheckInterval <= 0 {
		c.GroupSessionCheckInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = wal.DefaultSegmentBytes
	}
	if c.OffsetsPartitions <= 0 {
		c.OffsetsPartitions = 8
	}
	if c.TxnPartitions <= 0 {
		c.TxnPartitions = 8
	}
	if c.TxnTimeout <= 0 {
		c.TxnTimeout = 60 * time.Second
	}
	if c.ProduceTimeout <= 0 {
		c.ProduceTimeout = defaultProduceTimeout
	}
}

// Broker hosts partition replicas and the two coordinators.
type Broker struct {
	cfg     Config
	net     *transport.Network
	clock   retry.Clock // the transport fabric's shared time source
	metrics *brokerMetrics

	mu         sync.RWMutex
	partitions map[protocol.TopicPartition]*partition

	group *groupCoordinator
	txn   *txnCoordinator

	stopCh  chan struct{}
	stopped bool
	wg      sync.WaitGroup

	// replProbe tracks the replica loop's current Send for stall diagnosis.
	replProbe struct {
		sync.Mutex
		target int32
		since  time.Time
		active bool
	}
}

// New starts a broker: it registers on the network and spawns the
// replication, cleaning, and coordinator maintenance loops.
func New(net *transport.Network, cfg Config) *Broker {
	cfg.fill()
	b := &Broker{
		cfg:        cfg,
		net:        net,
		clock:      net.Clock(),
		metrics:    newBrokerMetrics(net.Obs()),
		partitions: make(map[protocol.TopicPartition]*partition),
		stopCh:     make(chan struct{}),
	}
	b.group = newGroupCoordinator(b)
	b.txn = newTxnCoordinator(b)
	net.Register(cfg.ID, b.handleRPC)
	b.wg.Add(2)
	go b.replicaLoop()
	go b.maintenanceLoop()
	return b
}

// ID returns the broker's node id.
func (b *Broker) ID() int32 { return b.cfg.ID }

// Stop halts all background work. The broker's storage backend retains its
// logs; a restarted broker (a new Broker with the same backend) recovers
// from them.
func (b *Broker) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	parts := make([]*partition, 0, len(b.partitions))
	for _, p := range b.partitions {
		parts = append(parts, p)
	}
	b.mu.Unlock()
	close(b.stopCh)
	for _, p := range parts {
		p.stop()
	}
	b.net.Unregister(b.cfg.ID)
	b.wg.Wait()
	b.txn.stop()
	b.mu.Lock()
	for _, p := range b.partitions {
		p.log.Close()
	}
	b.mu.Unlock()
}

func (b *Broker) partition(tp protocol.TopicPartition) *partition {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.partitions[tp]
}

// handleRPC dispatches every request type the broker serves.
func (b *Broker) handleRPC(from int32, req any) any {
	switch r := req.(type) {
	case *protocol.ProduceRequest:
		return b.handleProduce(r)
	case *protocol.FetchRequest:
		return b.handleFetch(r)
	case *protocol.ListOffsetsRequest:
		return b.handleListOffsets(r)
	case *protocol.DeleteRecordsRequest:
		return b.handleDeleteRecords(r)
	case *protocol.LeaderAndISRRequest:
		return b.handleLeaderAndISR(r)
	case *protocol.WriteTxnMarkersRequest:
		return b.handleWriteTxnMarkers(r)
	case *protocol.InitProducerIDRequest:
		return b.txn.handleInitProducerID(r)
	case *protocol.AddPartitionsToTxnRequest:
		return b.txn.handleAddPartitions(r)
	case *protocol.EndTxnRequest:
		return b.txn.handleEndTxn(r)
	case *protocol.TxnOffsetCommitRequest:
		return b.group.handleTxnOffsetCommit(r)
	case *protocol.JoinGroupRequest:
		return b.group.handleJoin(r)
	case *protocol.SyncGroupRequest:
		return b.group.handleSync(r)
	case *protocol.HeartbeatRequest:
		return b.group.handleHeartbeat(r)
	case *protocol.LeaveGroupRequest:
		return b.group.handleLeave(r)
	case *protocol.OffsetCommitRequest:
		return b.group.handleOffsetCommit(r)
	case *protocol.OffsetFetchRequest:
		return b.group.handleOffsetFetch(r)
	default:
		return fmt.Errorf("broker %d: unknown request %T", b.cfg.ID, req)
	}
}

func (b *Broker) handleProduce(r *protocol.ProduceRequest) *protocol.ProduceResponse {
	defer b.metrics.produceLat.ObserveSince(b.clock.Now())
	// Append every partition first, then wait for replication of all of
	// them: the acks=all round-trips of independent partitions overlap.
	resp := &protocol.ProduceResponse{}
	waits := make([]func() protocol.ErrorCode, len(r.Entries))
	for i, e := range r.Entries {
		p := b.partition(e.TP)
		if p == nil {
			resp.Results = append(resp.Results, protocol.ProduceResult{
				TP: e.TP, Err: protocol.ErrUnknownTopicOrPartition,
			})
			continue
		}
		res, wait := p.appendOnly(b.cfg.ID, e.Batch)
		resp.Results = append(resp.Results, res)
		if wait != nil && r.Acks == protocol.AcksLeader && !p.hasAppendHook() {
			// acks=leader: the append is durable on the leader, so reply
			// without waiting for replication. Partitions owned by a
			// coordinator are excluded — their append hook must only fire
			// once the batch is committed, so they always wait.
			wait = nil
		}
		waits[i] = wait
	}
	for i, wait := range waits {
		if wait == nil {
			continue
		}
		if code := wait(); code != protocol.ErrNone {
			resp.Results[i].Err = code
		}
	}
	return resp
}

// handleFetch assembles the fetch response for every requested
// partition: the encode half of the consumer/replica read path.
//
//kslint:hotpath
func (b *Broker) handleFetch(r *protocol.FetchRequest) *protocol.FetchResponse {
	fetchLat := b.metrics.fetchConsumer
	if r.ReplicaID >= 0 {
		fetchLat = b.metrics.fetchReplica
	}
	defer fetchLat.ObserveSince(b.clock.Now())
	resp := &protocol.FetchResponse{Parts: make([]protocol.FetchPartition, 0, len(r.Entries))}
	maxBytes := r.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	for _, e := range r.Entries {
		p := b.partition(e.TP)
		if p == nil {
			resp.Parts = append(resp.Parts, protocol.FetchPartition{
				TP: e.TP, Err: protocol.ErrUnknownTopicOrPartition,
			})
			continue
		}
		resp.Parts = append(resp.Parts, p.fetchAsLeader(b.cfg.ID, r.ReplicaID, e.Offset, maxBytes, r.MaxRecords, r.Isolation))
	}
	return resp
}

func (b *Broker) handleListOffsets(r *protocol.ListOffsetsRequest) *protocol.ListOffsetsResponse {
	p := b.partition(r.TP)
	if p == nil {
		return &protocol.ListOffsetsResponse{Err: protocol.ErrUnknownTopicOrPartition}
	}
	if _, lead := p.leader(); !lead {
		return &protocol.ListOffsetsResponse{Err: protocol.ErrNotLeader}
	}
	switch r.Time {
	case -1: // latest readable
		return &protocol.ListOffsetsResponse{Offset: p.highWatermark()}
	case -2: // earliest
		return &protocol.ListOffsetsResponse{Offset: p.log.StartOffset()}
	case -3: // last stable offset (read-committed end)
		return &protocol.ListOffsetsResponse{Offset: p.lastStable()}
	default:
		off := p.log.OffsetForTimestamp(r.Time)
		if off < 0 {
			off = p.highWatermark()
		}
		return &protocol.ListOffsetsResponse{Offset: off}
	}
}

func (b *Broker) handleDeleteRecords(r *protocol.DeleteRecordsRequest) *protocol.DeleteRecordsResponse {
	p := b.partition(r.TP)
	if p == nil {
		return &protocol.DeleteRecordsResponse{Err: protocol.ErrUnknownTopicOrPartition}
	}
	if _, lead := p.leader(); !lead {
		return &protocol.DeleteRecordsResponse{Err: protocol.ErrNotLeader}
	}
	off := r.BeforeOffset
	if hw := p.highWatermark(); off > hw {
		off = hw // never delete unreplicated records
	}
	start, err := p.log.AdvanceStartOffset(off)
	if err != nil {
		return &protocol.DeleteRecordsResponse{Err: protocol.ErrInvalidRecord}
	}
	return &protocol.DeleteRecordsResponse{LogStartOffset: start}
}

// handleLeaderAndISR installs or updates a partition replica per the
// controller's instruction.
func (b *Broker) handleLeaderAndISR(r *protocol.LeaderAndISRRequest) *protocol.LeaderAndISRResponse {
	b.mu.Lock()
	p, ok := b.partitions[r.TP]
	if !ok {
		dir := fmt.Sprintf("topics/%s/%d", r.TP.Topic, r.TP.Partition)
		l, err := wal.Open(b.cfg.Backend, dir, wal.Config{
			SegmentBytes: b.cfg.SegmentBytes,
			Compacted:    r.Config.Compacted,
		})
		if err != nil {
			b.mu.Unlock()
			return &protocol.LeaderAndISRResponse{Err: protocol.ErrInvalidRecord}
		}
		p = newPartition(r.TP, r.Config, b.cfg.ID, l, b.cfg.AppendLatency, b.net.Clock())
		p.produceTimeout = b.cfg.ProduceTimeout
		p.onISRChange = b.forwardISRChange
		p.appendLat = b.metrics.appendLat
		tpLabels := []obs.Label{
			obs.L("topic", r.TP.Topic),
			obs.L("partition", strconv.Itoa(int(r.TP.Partition))),
		}
		p.hwGauge = b.metrics.reg.Gauge("broker_partition_high_watermark", tpLabels...)
		p.lsoGauge = b.metrics.reg.Gauge("broker_partition_last_stable_offset", tpLabels...)
		p.isrGauge = b.metrics.reg.Gauge("broker_partition_isr_size", tpLabels...)
		b.partitions[r.TP] = p
	}
	b.mu.Unlock()

	p.mu.Lock()
	stale := r.LeaderEpoch < p.leaderEpoch
	p.mu.Unlock()
	if stale {
		return &protocol.LeaderAndISRResponse{Err: protocol.ErrNone}
	}

	if r.Leader == b.cfg.ID {
		p.becomeLeader(r.LeaderEpoch, r.Replicas, r.ISR)
		b.coordinatorLeadershipChange(r.TP, p, true)
	} else {
		if err := p.becomeFollower(r.LeaderEpoch, r.Leader, r.Replicas, r.ISR); err != nil {
			return &protocol.LeaderAndISRResponse{Err: protocol.ErrInvalidRecord}
		}
		b.coordinatorLeadershipChange(r.TP, p, false)
	}
	if debugOn {
		log.Printf("broker %d: leaderAndISR %s leader=%d epoch=%d", b.cfg.ID, r.TP, r.Leader, r.LeaderEpoch)
	}
	return &protocol.LeaderAndISRResponse{Err: protocol.ErrNone}
}

// coordinatorLeadershipChange hands internal-topic partitions to the group
// and transaction coordinators, which materialize their state by replaying
// the partition log (paper Section 4.2.1: replicas elected as the new
// coordinator "rebuild an in-memory collection of the current transactions
// by replaying the metadata update records from the transaction logs").
func (b *Broker) coordinatorLeadershipChange(tp protocol.TopicPartition, p *partition, leading bool) {
	switch tp.Topic {
	case OffsetsTopic:
		if leading {
			b.group.takePartition(tp.Partition, p)
		} else {
			b.group.dropPartition(tp.Partition)
		}
	case TxnTopic:
		if leading {
			b.txn.takePartition(tp.Partition, p)
		} else {
			b.txn.dropPartition(tp.Partition)
		}
	}
}

// forwardISRChange relays a leader's ISR expansion request to the
// controller and applies the confirmed result.
func (b *Broker) forwardISRChange(tp protocol.TopicPartition, epoch int32, isr []int32) {
	resp, err := b.net.Send(b.cfg.ID, b.cfg.ControllerID, &protocol.AlterISRRequest{
		TP: tp, LeaderEpoch: epoch, NewISR: isr,
	})
	if err != nil {
		return
	}
	ar := resp.(*protocol.AlterISRResponse)
	if ar.Err != protocol.ErrNone {
		return
	}
	if p := b.partition(tp); p != nil {
		p.setISR(epoch, ar.ISR)
	}
}

// handleWriteTxnMarkers appends control markers to registered partitions,
// sequentially per broker: markers share the request-handler and log-append
// path, which is what makes end-to-end latency grow with the number of
// transactional partitions (paper Section 4.3 / Figure 5.a).
func (b *Broker) handleWriteTxnMarkers(r *protocol.WriteTxnMarkersRequest) *protocol.WriteTxnMarkersResponse {
	resp := &protocol.WriteTxnMarkersResponse{}
	for _, tp := range r.Partitions {
		select {
		case <-b.stopCh:
			// Broker shutting down: let the coordinator retry elsewhere
			// after the controller re-elects leaders.
			resp.Results = append(resp.Results, protocol.ProduceResult{
				TP: tp, Err: protocol.ErrBrokerUnavailable,
			})
			continue
		default:
		}
		p := b.partition(tp)
		if p == nil {
			resp.Results = append(resp.Results, protocol.ProduceResult{
				TP: tp, Err: protocol.ErrUnknownTopicOrPartition,
			})
			continue
		}
		if b.cfg.Faults != nil && r.Type == protocol.MarkerAbort && b.cfg.Faults.DropAbortMarkers.Load() {
			// Injected bug: acknowledge the abort marker without writing
			// it, leaving the aborted range unfenced on the log.
			resp.Results = append(resp.Results, protocol.ProduceResult{TP: tp})
			continue
		}
		if !p.log.HasOngoing(r.ProducerID) {
			// No open transaction here (e.g. a marker retry already landed):
			// acknowledge idempotently.
			if _, lead := p.leader(); lead {
				if debugOn {
					log.Printf("broker %d: marker %v for pid=%d on %v: no ongoing txn, idempotent ack",
						b.cfg.ID, r.Type, r.ProducerID, tp)
				}
				resp.Results = append(resp.Results, protocol.ProduceResult{TP: tp})
				continue
			}
		}
		mb := protocol.NewMarkerBatch(r.ProducerID, r.ProducerEpoch,
			b.clock.Now().UnixMilli(),
			protocol.ControlMarker{Type: r.Type, CoordinatorEpoch: r.CoordinatorEpoch})
		res := p.appendAsLeader(b.cfg.ID, mb)
		if debugOn {
			log.Printf("broker %d: marker %v for pid=%d on %v: appended base=%d err=%v",
				b.cfg.ID, r.Type, r.ProducerID, tp, res.BaseOffset, res.Err)
		}
		resp.Results = append(resp.Results, res)
	}
	return resp
}

// replicaLoop drives follower replication: one fetch RPC per leader broker
// per cycle, covering every partition this broker follows from it.
func (b *Broker) replicaLoop() {
	defer b.wg.Done()
	lastDebug := b.clock.Now()
	idle := b.cfg.ReplicaPollInterval
	for {
		if debugOn && b.clock.Now().Sub(lastDebug) > 5*time.Second {
			lastDebug = b.clock.Now()
			b.mu.RLock()
			counts := map[int32]int{}
			total := 0
			for _, p := range b.partitions {
				total++
				p.mu.Lock()
				if !p.isLeader && !p.stopped {
					counts[p.leaderID]++
				}
				p.mu.Unlock()
			}
			b.mu.RUnlock()
			log.Printf("broker %d: replica view: total=%d following=%v", b.cfg.ID, total, counts)
		}
		select {
		case <-b.stopCh:
			return
		default:
		}
		moved := b.replicateOnce()
		if moved {
			idle = b.cfg.ReplicaPollInterval
			continue
		}
		select {
		case <-b.stopCh:
			return
		case <-b.clock.After(idle):
		}
		// Exponential idle backoff: tight polling while data flows (so
		// acks=all appends commit quickly), cheap when quiescent — large
		// partition counts make every scan expensive.
		if idle < 16*b.cfg.ReplicaPollInterval {
			idle *= 2
		}
	}
}

// replicateOnce fetches from every leader this broker follows; it reports
// whether any data arrived (to skip the idle sleep).
func (b *Broker) replicateOnce() bool {
	byLeader := make(map[int32][]*partition)
	b.mu.RLock()
	for _, p := range b.partitions {
		p.mu.Lock()
		if !p.isLeader && !p.stopped && p.leaderID != b.cfg.ID && p.leaderID >= 0 {
			byLeader[p.leaderID] = append(byLeader[p.leaderID], p)
		}
		p.mu.Unlock()
	}
	b.mu.RUnlock()

	moved := false
	for leader, parts := range byLeader {
		cycleStart := b.clock.Now()
		req := &protocol.FetchRequest{ReplicaID: b.cfg.ID, MaxBytes: 1 << 20}
		for _, p := range parts {
			req.Entries = append(req.Entries, protocol.FetchEntry{
				TP: p.tp, Offset: p.log.EndOffset(),
			})
		}
		b.replProbe.Lock()
		b.replProbe.target, b.replProbe.since, b.replProbe.active = leader, b.clock.Now(), true
		b.replProbe.Unlock()
		resp, err := b.net.Send(b.cfg.ID, leader, req)
		b.replProbe.Lock()
		b.replProbe.active = false
		b.replProbe.Unlock()
		if err != nil {
			continue // leader crashed or partitioned; controller will re-elect
		}
		fr := resp.(*protocol.FetchResponse)
		for _, part := range fr.Parts {
			if part.Err != protocol.ErrNone {
				if debugOn {
					log.Printf("broker %d: replica fetch %s from %d: %v", b.cfg.ID, part.TP, leader, part.Err)
				}
				continue
			}
			p := b.partition(part.TP)
			if p == nil {
				continue
			}
			if len(part.Batches) > 0 {
				moved = true
			}
			if err := p.appendAsFollower(part.Batches, part.HighWatermark, part.LogStartOffset); err != nil {
				if debugOn {
					log.Printf("broker %d: follower append %s: %v", b.cfg.ID, part.TP, err)
				}
				// Divergence (should not happen after HW truncation): refetch
				// from scratch next cycle after truncating to our HW.
				p.log.TruncateTo(p.highWatermark())
			}
		}
		if debugOn {
			if d := b.clock.Now().Sub(cycleStart); d > 200*time.Millisecond {
				log.Printf("broker %d: slow replica cycle to leader %d: %v (%d partitions)",
					b.cfg.ID, leader, d.Round(time.Millisecond), len(parts))
			}
		}
	}
	return moved
}

// maintenanceLoop runs compaction and coordinator liveness ticks. Both
// cadences ride the broker clock (deadline tracking instead of tickers,
// since clock.After re-arms per wait) so fault injection can warp them.
func (b *Broker) maintenanceLoop() {
	defer b.wg.Done()
	cleanInterval := maxDuration(b.cfg.CleanerInterval, time.Second)
	sessionInterval := b.cfg.GroupSessionCheckInterval
	nextClean := b.clock.Now().Add(cleanInterval)
	nextSession := b.clock.Now().Add(sessionInterval)
	for {
		now := b.clock.Now()
		wait := nextClean.Sub(now)
		if d := nextSession.Sub(now); d < wait {
			wait = d
		}
		if wait < 0 {
			wait = 0
		}
		select {
		case <-b.stopCh:
			return
		case <-b.clock.After(wait):
		}
		now = b.clock.Now()
		if !now.Before(nextClean) {
			nextClean = now.Add(cleanInterval)
			if b.cfg.CleanerInterval > 0 {
				b.CompactAll()
			}
		}
		if !now.Before(nextSession) {
			nextSession = now.Add(sessionInterval)
			if debugOn {
				b.replProbe.Lock()
				if b.replProbe.active && now.Sub(b.replProbe.since) > 2*time.Second {
					log.Printf("broker %d: replica fetch to leader %d STUCK for %v",
						b.cfg.ID, b.replProbe.target, now.Sub(b.replProbe.since).Round(time.Second))
				}
				b.replProbe.Unlock()
			}
			b.group.tick()
			b.txn.tick()
		}
	}
}

// CompactAll rolls and compacts every compacted partition this broker
// leads. Exposed for tests and the admin tool.
func (b *Broker) CompactAll() {
	b.mu.RLock()
	parts := make([]*partition, 0, len(b.partitions))
	for _, p := range b.partitions {
		parts = append(parts, p)
	}
	b.mu.RUnlock()
	for _, p := range parts {
		if _, lead := p.leader(); !lead || !p.cfg.Compacted {
			continue
		}
		p.log.RollSegment()
		p.log.Compact(p.highWatermark())
	}
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
