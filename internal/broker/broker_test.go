package broker

import (
	"encoding/json"
	"testing"
	"time"

	"kstreams/internal/protocol"
	"kstreams/internal/storage"
	"kstreams/internal/wal"
)

func TestCoordinatorPartitionStableAndBounded(t *testing.T) {
	for _, key := range []string{"", "group-a", "app-1-0_3", "x"} {
		a := CoordinatorPartition(key, 8)
		b := CoordinatorPartition(key, 8)
		if a != b {
			t.Fatalf("unstable hash for %q", key)
		}
		if a < 0 || a >= 8 {
			t.Fatalf("out of range: %d", a)
		}
	}
	// Keys spread across partitions.
	seen := map[int32]bool{}
	for i := 0; i < 64; i++ {
		seen[CoordinatorPartition(string(rune('a'+i)), 8)] = true
	}
	if len(seen) < 4 {
		t.Fatalf("poor spread: %d partitions used", len(seen))
	}
}

func TestOffsetRecordCodec(t *testing.T) {
	tp := protocol.TopicPartition{Topic: "events", Partition: 3}
	k := offsetKey("my-group", tp)
	group, gotTP, ok := parseOffsetKey(k)
	if !ok || group != "my-group" || gotTP != tp {
		t.Fatalf("key roundtrip: %q %v %v", group, gotTP, ok)
	}
	if _, _, ok := parseOffsetKey([]byte("garbage")); ok {
		t.Fatal("garbage key parsed")
	}
	if _, _, ok := parseOffsetKey([]byte("c|g|t|notanumber")); ok {
		t.Fatal("non-numeric partition parsed")
	}

	e := protocol.OffsetEntry{TP: tp, Offset: 12345, Metadata: "m"}
	got, ok := parseOffsetValue(tp, offsetValue(e))
	if !ok || got != e {
		t.Fatalf("value roundtrip: %+v %v", got, ok)
	}
	if _, ok := parseOffsetValue(tp, []byte{1}); ok {
		t.Fatal("short value parsed")
	}
}

func TestTxnMetaJSONRoundTrip(t *testing.T) {
	in := txnMeta{
		ID: "app-1", PID: 7, Epoch: 3, State: TxnPrepareCommit,
		Partitions: []protocol.TopicPartition{{Topic: "out", Partition: 1}},
		TimeoutMs:  30000,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out txnMeta
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.PID != in.PID || out.State != in.State || len(out.Partitions) != 1 {
		t.Fatalf("roundtrip: %+v", out)
	}
}

func TestTxnStateStrings(t *testing.T) {
	for st, want := range map[TxnState]string{
		TxnEmpty: "Empty", TxnOngoing: "Ongoing",
		TxnPrepareCommit: "PrepareCommit", TxnPrepareAbort: "PrepareAbort",
		TxnCompleteCommit: "CompleteCommit", TxnCompleteAbort: "CompleteAbort",
	} {
		if st.String() != want {
			t.Fatalf("%d -> %q", st, st.String())
		}
	}
	if TxnState(99).String() == "" {
		t.Fatal("unknown state must format")
	}
}

func newTestPartition(t *testing.T) *partition {
	t.Helper()
	l, err := wal.Open(storage.NewMem(), "t/0", wal.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return newPartition(protocol.TopicPartition{Topic: "t", Partition: 0},
		protocol.TopicConfig{}, 1, l, 0, nil)
}

func TestPartitionHWAdvancesWithISRReports(t *testing.T) {
	p := newTestPartition(t)
	p.becomeLeader(0, []int32{1, 2, 3}, []int32{1, 2, 3})

	done := make(chan protocol.ProduceResult, 1)
	go func() {
		done <- p.appendAsLeader(1, &protocol.RecordBatch{
			ProducerID:   protocol.NoProducerID,
			BaseSequence: protocol.NoSequence,
			Records:      []protocol.Record{{Key: []byte("k"), Value: []byte("v")}},
		})
	}()
	// Only one follower reports: HW held.
	time.Sleep(10 * time.Millisecond)
	p.fetchAsLeader(1, 2, 1, 1<<20, 0, protocol.ReadUncommitted)
	select {
	case res := <-done:
		t.Fatalf("append acked with partial ISR: %+v", res)
	case <-time.After(30 * time.Millisecond):
	}
	// Second follower catches up: append completes.
	p.fetchAsLeader(1, 3, 1, 1<<20, 0, protocol.ReadUncommitted)
	select {
	case res := <-done:
		if res.Err != protocol.ErrNone {
			t.Fatalf("append: %+v", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("append never acknowledged")
	}
	if p.highWatermark() != 1 {
		t.Fatalf("hw = %d", p.highWatermark())
	}
}

func TestPartitionSoleReplicaImmediateAck(t *testing.T) {
	p := newTestPartition(t)
	p.becomeLeader(0, []int32{1}, []int32{1})
	res := p.appendAsLeader(1, &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records:      []protocol.Record{{Key: []byte("k"), Value: []byte("v")}},
	})
	if res.Err != protocol.ErrNone || p.highWatermark() != 1 {
		t.Fatalf("sole-replica append: %+v hw=%d", res, p.highWatermark())
	}
}

func TestPartitionRejectsWhenNotLeader(t *testing.T) {
	p := newTestPartition(t)
	p.becomeFollower(0, 2, []int32{1, 2}, []int32{1, 2})
	res := p.appendAsLeader(1, &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records:      []protocol.Record{{Key: []byte("k")}},
	})
	if res.Err != protocol.ErrNotLeader {
		t.Fatalf("append on follower: %v", res.Err)
	}
	out := p.fetchAsLeader(1, -1, 0, 1<<20, 0, protocol.ReadUncommitted)
	if out.Err != protocol.ErrNotLeader {
		t.Fatalf("fetch on follower: %v", out.Err)
	}
}

func TestPartitionBecomeFollowerTruncatesToHW(t *testing.T) {
	p := newTestPartition(t)
	p.becomeLeader(0, []int32{1, 2}, []int32{1, 2})
	// Append without waiting (background) so the record stays above HW.
	go p.appendAsLeader(1, &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records:      []protocol.Record{{Key: []byte("k")}},
	})
	deadline := time.Now().Add(time.Second)
	for p.log.EndOffset() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if p.log.EndOffset() != 1 {
		t.Fatal("append never landed")
	}
	// Demote: the uncommitted record (above HW=0) is dropped.
	if err := p.becomeFollower(1, 2, []int32{1, 2}, []int32{2}); err != nil {
		t.Fatal(err)
	}
	if p.log.EndOffset() != 0 {
		t.Fatalf("follower kept uncommitted records: end=%d", p.log.EndOffset())
	}
}

func TestLastStableReflectsOpenTxn(t *testing.T) {
	p := newTestPartition(t)
	p.becomeLeader(0, []int32{1}, []int32{1})
	p.appendAsLeader(1, &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records:      []protocol.Record{{Key: []byte("a")}},
	})
	b := &protocol.RecordBatch{
		ProducerID: 9, ProducerEpoch: 0, BaseSequence: 0, Transactional: true,
		Records: []protocol.Record{{Key: []byte("txn")}},
	}
	p.appendAsLeader(1, b)
	if got := p.lastStable(); got != 1 {
		t.Fatalf("lso = %d, want 1 (open txn at offset 1)", got)
	}
	mk := protocol.NewMarkerBatch(9, 0, 0, protocol.ControlMarker{Type: protocol.MarkerCommit})
	p.appendAsLeader(1, mk)
	if got := p.lastStable(); got != p.highWatermark() {
		t.Fatalf("lso = %d after marker, hw = %d", got, p.highWatermark())
	}
}
