package broker

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"kstreams/internal/protocol"
)

// Transaction coordinator (paper Section 4.2): manages the metadata of
// every transactional producer hashed to the __transaction_state partitions
// this broker leads. All state transitions are persisted as appends to the
// transaction log before taking effect; the PrepareCommit record is the
// synchronization barrier — "once the state update is replicated in the
// transaction log, there is no turning back".

// TxnState is a transaction's lifecycle state, as stored in the txn log.
type TxnState int8

const (
	TxnEmpty TxnState = iota
	TxnOngoing
	TxnPrepareCommit
	TxnPrepareAbort
	TxnCompleteCommit
	TxnCompleteAbort
)

func (s TxnState) String() string {
	switch s {
	case TxnEmpty:
		return "Empty"
	case TxnOngoing:
		return "Ongoing"
	case TxnPrepareCommit:
		return "PrepareCommit"
	case TxnPrepareAbort:
		return "PrepareAbort"
	case TxnCompleteCommit:
		return "CompleteCommit"
	case TxnCompleteAbort:
		return "CompleteAbort"
	default:
		return fmt.Sprintf("TxnState(%d)", int8(s))
	}
}

// txnMeta is the durable metadata of one transactional id. The JSON tags
// define the transaction log record format.
type txnMeta struct {
	ID         string                    `json:"id"`
	PID        int64                     `json:"pid"`
	Epoch      int16                     `json:"epoch"`
	State      TxnState                  `json:"state"`
	Partitions []protocol.TopicPartition `json:"partitions,omitempty"`
	TimeoutMs  int64                     `json:"timeout_ms"`
}

type txnEntry struct {
	opMu sync.Mutex // serializes operations on this transactional id
	meta txnMeta
	last time.Time // last producer activity, for timeout aborts
}

type txnCoordinator struct {
	b *Broker

	mu    sync.Mutex
	owned map[int32]*partition
	txns  map[string]*txnEntry

	leaderCache map[protocol.TopicPartition]int32

	stopCh chan struct{}
	wg     sync.WaitGroup
}

func newTxnCoordinator(b *Broker) *txnCoordinator {
	return &txnCoordinator{
		b:           b,
		owned:       make(map[int32]*partition),
		txns:        make(map[string]*txnEntry),
		leaderCache: make(map[protocol.TopicPartition]int32),
		stopCh:      make(chan struct{}),
	}
}

func (tc *txnCoordinator) stop() {
	tc.mu.Lock()
	select {
	case <-tc.stopCh:
	default:
		close(tc.stopCh)
	}
	tc.mu.Unlock()
	tc.wg.Wait()
}

// takePartition assumes coordination for the transactional ids hashed to
// this txn-log partition, replaying the log to rebuild metadata and
// resuming the phase-two marker writes of any prepared transactions.
func (tc *txnCoordinator) takePartition(idx int32, p *partition) {
	tc.mu.Lock()
	tc.owned[idx] = p
	tc.mu.Unlock()

	off := p.log.StartOffset()
	end := p.log.EndOffset()
	type resumption struct {
		e      *txnEntry
		commit bool
	}
	var resume []resumption
	for off < end {
		batches, err := p.log.Read(off, end, 1<<20)
		if err != nil || len(batches) == 0 {
			break
		}
		for _, b := range batches {
			for i := range b.Records {
				var m txnMeta
				if err := json.Unmarshal(b.Records[i].Value, &m); err != nil {
					continue
				}
				tc.mu.Lock()
				e, ok := tc.txns[m.ID]
				if !ok {
					e = &txnEntry{}
					tc.txns[m.ID] = e
				}
				e.meta = m
				e.last = tc.b.clock.Now()
				tc.mu.Unlock()
			}
			off = b.LastOffset() + 1
		}
	}
	tc.mu.Lock()
	for _, e := range tc.txns {
		if CoordinatorPartition(e.meta.ID, tc.b.cfg.TxnPartitions) != idx {
			continue
		}
		if e.meta.State == TxnPrepareCommit || e.meta.State == TxnPrepareAbort {
			resume = append(resume, resumption{e, e.meta.State == TxnPrepareCommit})
		}
	}
	tc.mu.Unlock()
	for _, r := range resume {
		tc.wg.Add(1)
		go tc.completeTxn(r.e, r.commit)
	}
}

func (tc *txnCoordinator) dropPartition(idx int32) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	delete(tc.owned, idx)
	for id := range tc.txns {
		if CoordinatorPartition(id, tc.b.cfg.TxnPartitions) == idx {
			delete(tc.txns, id)
		}
	}
}

// ownsTxn resolves the txn-log partition for a transactional id.
func (tc *txnCoordinator) ownsTxn(id string) (*partition, bool) {
	idx := CoordinatorPartition(id, tc.b.cfg.TxnPartitions)
	tc.mu.Lock()
	defer tc.mu.Unlock()
	p, ok := tc.owned[idx]
	return p, ok
}

// persist appends the metadata to the transaction log and waits for
// replication; only then may the in-memory state change take effect.
func (tc *txnCoordinator) persist(p *partition, m txnMeta) protocol.ErrorCode {
	v, err := json.Marshal(m)
	if err != nil {
		return protocol.ErrInvalidRecord
	}
	b := &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records: []protocol.Record{{
			Key:       []byte("txn|" + m.ID),
			Value:     v,
			Timestamp: tc.b.clock.Now().UnixMilli(),
		}},
	}
	res := p.appendAsLeader(tc.b.cfg.ID, b)
	return res.Err
}

func (tc *txnCoordinator) entry(id string) *txnEntry {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	e, ok := tc.txns[id]
	if !ok {
		e = &txnEntry{meta: txnMeta{ID: id, PID: -1, Epoch: -1, State: TxnEmpty}}
		tc.txns[id] = e
	}
	return e
}

// allocatePID asks the controller for a fresh producer id.
func (tc *txnCoordinator) allocatePID() (int64, protocol.ErrorCode) {
	resp, err := tc.b.net.Send(tc.b.cfg.ID, tc.b.cfg.ControllerID, &protocol.AllocatePIDRequest{})
	if err != nil {
		return -1, protocol.ErrCoordinatorNotAvailable
	}
	r := resp.(*protocol.AllocatePIDResponse)
	return r.ProducerID, r.Err
}

// handleInitProducerID registers a transactional id: completing any open
// transaction, bumping the epoch to fence zombies, and returning the
// producer session identity (paper Figure 4.b).
func (tc *txnCoordinator) handleInitProducerID(r *protocol.InitProducerIDRequest) *protocol.InitProducerIDResponse {
	if r.TransactionalID == "" {
		// Idempotence-only producer: no coordinator state.
		pid, errc := tc.allocatePID()
		return &protocol.InitProducerIDResponse{Err: errc, ProducerID: pid, ProducerEpoch: 0}
	}
	p, ok := tc.ownsTxn(r.TransactionalID)
	if !ok {
		return &protocol.InitProducerIDResponse{Err: protocol.ErrNotCoordinator}
	}
	e := tc.entry(r.TransactionalID)
	e.opMu.Lock()
	defer e.opMu.Unlock()

	// Wait out an in-flight completion (phase two still writing markers).
	if errc := tc.awaitCompletion(e); errc != protocol.ErrNone {
		return &protocol.InitProducerIDResponse{Err: errc}
	}

	m := tc.getMeta(e)
	if m.PID < 0 {
		pid, errc := tc.allocatePID()
		if errc != protocol.ErrNone {
			return &protocol.InitProducerIDResponse{Err: errc}
		}
		m.PID = pid
	}
	if m.State == TxnOngoing {
		// Abort the previous incarnation's open transaction before handing
		// the id to the new one.
		m.State = TxnPrepareAbort
		m.Epoch++
		if errc := tc.persist(p, m); errc != protocol.ErrNone {
			return &protocol.InitProducerIDResponse{Err: errc}
		}
		tc.setMeta(e, m)
		tc.runCompletion(e, false)
		if errc := tc.awaitCompletion(e); errc != protocol.ErrNone {
			return &protocol.InitProducerIDResponse{Err: errc}
		}
		m = tc.getMeta(e)
	} else {
		m.Epoch++
	}
	if r.TxnTimeoutMs > 0 {
		m.TimeoutMs = r.TxnTimeoutMs
	}
	m.State = TxnEmpty
	m.Partitions = nil
	if errc := tc.persist(p, m); errc != protocol.ErrNone {
		return &protocol.InitProducerIDResponse{Err: errc}
	}
	tc.setMeta(e, m)
	return &protocol.InitProducerIDResponse{
		ProducerID:    m.PID,
		ProducerEpoch: m.Epoch,
	}
}

// awaitCompletion blocks while the entry's transaction is in a Prepare
// state (its phase-two goroutine is still writing markers).
func (tc *txnCoordinator) awaitCompletion(e *txnEntry) protocol.ErrorCode {
	deadline := tc.b.clock.Now().Add(10 * time.Second)
	for {
		tc.mu.Lock()
		st := e.meta.State
		tc.mu.Unlock()
		if st != TxnPrepareCommit && st != TxnPrepareAbort {
			return protocol.ErrNone
		}
		if tc.b.clock.Now().After(deadline) {
			return protocol.ErrConcurrentTransactions
		}
		select {
		case <-tc.stopCh:
			return protocol.ErrBrokerUnavailable
		case <-tc.b.clock.After(2 * time.Millisecond):
		}
	}
}

// setMeta publishes a metadata update and refreshes the activity clock
// that tick's timeout scan reads; callers hold e.opMu.
func (tc *txnCoordinator) setMeta(e *txnEntry, m txnMeta) {
	tc.mu.Lock()
	e.meta = m
	e.last = tc.b.clock.Now()
	tc.mu.Unlock()
}

// getMeta snapshots the entry's metadata. Handlers hold e.opMu, but the
// phase-two completion goroutine publishes its terminal state under tc.mu
// only, so reads must take tc.mu too.
func (tc *txnCoordinator) getMeta(e *txnEntry) txnMeta {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return e.meta
}

// checkIdentity validates the producer session against a metadata snapshot.
func checkIdentity(m txnMeta, pid int64, epoch int16) protocol.ErrorCode {
	if m.PID != pid {
		return protocol.ErrUnknownProducerID
	}
	if epoch < m.Epoch {
		return protocol.ErrProducerFenced
	}
	if epoch > m.Epoch {
		return protocol.ErrInvalidTxnState
	}
	return protocol.ErrNone
}

// handleAddPartitions registers partitions with the ongoing transaction
// (paper Figure 4.c), starting one if necessary.
func (tc *txnCoordinator) handleAddPartitions(r *protocol.AddPartitionsToTxnRequest) *protocol.AddPartitionsToTxnResponse {
	p, ok := tc.ownsTxn(r.TransactionalID)
	if !ok {
		return &protocol.AddPartitionsToTxnResponse{Err: protocol.ErrNotCoordinator}
	}
	e := tc.entry(r.TransactionalID)
	e.opMu.Lock()
	defer e.opMu.Unlock()
	m := tc.getMeta(e)
	if errc := checkIdentity(m, r.ProducerID, r.ProducerEpoch); errc != protocol.ErrNone {
		return &protocol.AddPartitionsToTxnResponse{Err: errc}
	}
	prevState := m.State
	switch m.State {
	case TxnPrepareCommit, TxnPrepareAbort:
		return &protocol.AddPartitionsToTxnResponse{Err: protocol.ErrConcurrentTransactions}
	case TxnEmpty, TxnCompleteCommit, TxnCompleteAbort:
		m.State = TxnOngoing
		m.Partitions = nil
	case TxnOngoing:
	}
	existing := make(map[protocol.TopicPartition]bool, len(m.Partitions))
	for _, tp := range m.Partitions {
		existing[tp] = true
	}
	added := false
	for _, tp := range r.Partitions {
		if !existing[tp] {
			m.Partitions = append(m.Partitions, tp)
			added = true
		}
	}
	if added || m.State != prevState {
		if errc := tc.persist(p, m); errc != protocol.ErrNone {
			return &protocol.AddPartitionsToTxnResponse{Err: errc}
		}
	}
	tc.setMeta(e, m)
	return &protocol.AddPartitionsToTxnResponse{}
}

// handleEndTxn runs phase one of the two-phase commit: persist the Prepare
// state (the point of no return), acknowledge, and write markers
// asynchronously (paper Figure 4.e/f).
func (tc *txnCoordinator) handleEndTxn(r *protocol.EndTxnRequest) *protocol.EndTxnResponse {
	p, ok := tc.ownsTxn(r.TransactionalID)
	if !ok {
		return &protocol.EndTxnResponse{Err: protocol.ErrNotCoordinator}
	}
	e := tc.entry(r.TransactionalID)
	e.opMu.Lock()
	defer e.opMu.Unlock()
	m := tc.getMeta(e)
	if errc := checkIdentity(m, r.ProducerID, r.ProducerEpoch); errc != protocol.ErrNone {
		return &protocol.EndTxnResponse{Err: errc}
	}
	switch m.State {
	case TxnEmpty:
		// Nothing to commit or abort.
		return &protocol.EndTxnResponse{}
	case TxnCompleteCommit:
		if r.Commit {
			return &protocol.EndTxnResponse{} // idempotent retry
		}
		return &protocol.EndTxnResponse{Err: protocol.ErrInvalidTxnState}
	case TxnCompleteAbort:
		if !r.Commit {
			return &protocol.EndTxnResponse{}
		}
		return &protocol.EndTxnResponse{Err: protocol.ErrInvalidTxnState}
	case TxnPrepareCommit, TxnPrepareAbort:
		return &protocol.EndTxnResponse{Err: protocol.ErrConcurrentTransactions}
	}
	if r.Commit {
		m.State = TxnPrepareCommit
	} else {
		m.State = TxnPrepareAbort
	}
	prepareStart := tc.b.clock.Now()
	if errc := tc.persist(p, m); errc != protocol.ErrNone {
		return &protocol.EndTxnResponse{Err: errc}
	}
	tc.b.metrics.txnPrepareLat.ObserveSince(prepareStart)
	if r.Commit {
		tc.b.metrics.txnCommits.Inc()
	} else {
		tc.b.metrics.txnAborts.Inc()
	}
	tc.setMeta(e, m)
	tc.runCompletion(e, r.Commit)
	return &protocol.EndTxnResponse{}
}

// runCompletion starts phase two in the background.
func (tc *txnCoordinator) runCompletion(e *txnEntry, commit bool) {
	tc.wg.Add(1)
	go tc.completeTxn(e, commit)
}

// completeTxn writes commit/abort markers to every registered partition,
// retrying through leadership changes, then persists the Complete state.
func (tc *txnCoordinator) completeTxn(e *txnEntry, commit bool) {
	defer tc.wg.Done()
	tc.mu.Lock()
	m := e.meta
	tc.mu.Unlock()

	mtype := protocol.MarkerAbort
	if commit {
		mtype = protocol.MarkerCommit
	}
	if debugOn {
		log.Printf("txn %s: completeTxn start commit=%v pid=%d epoch=%d state=%v parts=%v",
			m.ID, commit, m.PID, m.Epoch, m.State, m.Partitions)
		defer log.Printf("txn %s: completeTxn done commit=%v", m.ID, commit)
	}
	markerTPs := tc.b.metrics.markerAbortTPs
	if commit {
		markerTPs = tc.b.metrics.markerCommitTPs
	}
	markersStart := tc.b.clock.Now()
	pending := make(map[protocol.TopicPartition]bool, len(m.Partitions))
	for _, tp := range m.Partitions {
		pending[tp] = true
	}
	for len(pending) > 0 {
		select {
		case <-tc.stopCh:
			return // a successor coordinator resumes from the Prepare record
		default:
		}
		byBroker := tc.resolveLeaders(pending)
		// One request per broker, sent in parallel: within a broker the
		// marker appends are sequential (that per-partition cost is what
		// Figure 5.a's latency measures), but brokers work concurrently.
		type brokerResult struct {
			tps  []protocol.TopicPartition
			resp *protocol.WriteTxnMarkersResponse
		}
		results := make(chan brokerResult, len(byBroker))
		var wg sync.WaitGroup
		for bid, tps := range byBroker {
			wg.Add(1)
			go func(bid int32, tps []protocol.TopicPartition) {
				defer wg.Done()
				resp, err := tc.b.net.Send(tc.b.cfg.ID, bid, &protocol.WriteTxnMarkersRequest{
					ProducerID:    m.PID,
					ProducerEpoch: m.Epoch,
					Type:          mtype,
					Partitions:    tps,
				})
				if err != nil {
					results <- brokerResult{tps: tps}
					return
				}
				results <- brokerResult{tps: tps, resp: resp.(*protocol.WriteTxnMarkersResponse)}
			}(bid, tps)
		}
		wg.Wait()
		close(results)
		progress := false
		for br := range results {
			if br.resp == nil {
				tc.invalidateLeaders(br.tps)
				continue
			}
			for _, res := range br.resp.Results {
				switch res.Err {
				case protocol.ErrNone, protocol.ErrDuplicateSequence:
					if pending[res.TP] {
						markerTPs.Inc()
					}
					delete(pending, res.TP)
					progress = true
				case protocol.ErrNotLeader, protocol.ErrUnknownTopicOrPartition:
					tc.invalidateLeaders([]protocol.TopicPartition{res.TP})
				}
			}
		}
		if !progress && len(pending) > 0 {
			select {
			case <-tc.stopCh:
				return
			case <-tc.b.clock.After(5 * time.Millisecond):
			}
		}
	}

	tc.b.metrics.txnMarkersLat.ObserveSince(markersStart)

	// Phase two done: record completion. No handler mutates the entry while
	// it is in a Prepare state (they wait or bail out), so opMu is not
	// needed here — taking it would deadlock with handleInitProducerID,
	// which holds it while awaiting this very completion.
	p, ok := tc.ownsTxn(m.ID)
	if !ok {
		return // lost coordination; successor resumes
	}
	tc.mu.Lock()
	cur := e.meta
	tc.mu.Unlock()
	if cur.Epoch != m.Epoch || (cur.State != TxnPrepareCommit && cur.State != TxnPrepareAbort) {
		return
	}
	done := m
	if commit {
		done.State = TxnCompleteCommit
	} else {
		done.State = TxnCompleteAbort
	}
	completeStart := tc.b.clock.Now()
	if errc := tc.persist(p, done); errc != protocol.ErrNone {
		return
	}
	tc.b.metrics.txnCompleteLat.ObserveSince(completeStart)
	tc.mu.Lock()
	e.meta = done
	tc.mu.Unlock()
}

// resolveLeaders groups pending marker partitions by their current leader.
func (tc *txnCoordinator) resolveLeaders(pending map[protocol.TopicPartition]bool) map[int32][]protocol.TopicPartition {
	tc.mu.Lock()
	var missing []string
	seen := make(map[string]bool)
	for tp := range pending {
		if _, ok := tc.leaderCache[tp]; !ok && !seen[tp.Topic] {
			missing = append(missing, tp.Topic)
			seen[tp.Topic] = true
		}
	}
	tc.mu.Unlock()
	if len(missing) > 0 {
		resp, err := tc.b.net.Send(tc.b.cfg.ID, tc.b.cfg.ControllerID,
			&protocol.MetadataRequest{Topics: missing})
		if err == nil {
			md := resp.(*protocol.MetadataResponse)
			tc.mu.Lock()
			for _, t := range md.Topics {
				for _, pm := range t.Partitions {
					if pm.Leader >= 0 {
						tc.leaderCache[protocol.TopicPartition{Topic: t.Name, Partition: pm.Partition}] = pm.Leader
					}
				}
			}
			tc.mu.Unlock()
		}
	}
	out := make(map[int32][]protocol.TopicPartition)
	tc.mu.Lock()
	for tp := range pending {
		if leader, ok := tc.leaderCache[tp]; ok {
			out[leader] = append(out[leader], tp)
		}
	}
	tc.mu.Unlock()
	return out
}

func (tc *txnCoordinator) invalidateLeaders(tps []protocol.TopicPartition) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, tp := range tps {
		delete(tc.leaderCache, tp)
	}
}

// tick aborts transactions idle beyond their timeout, bumping the epoch so
// the stalled producer is fenced when it returns (paper Section 4.2.2:
// "the transaction coordinator itself could also abort an ongoing
// transaction when the transaction times out").
func (tc *txnCoordinator) tick() {
	type victim struct {
		e *txnEntry
		p *partition
	}
	var victims []victim
	now := tc.b.clock.Now()
	tc.mu.Lock()
	for _, e := range tc.txns {
		timeout := time.Duration(e.meta.TimeoutMs) * time.Millisecond
		if timeout <= 0 {
			timeout = tc.b.cfg.TxnTimeout
		}
		if e.meta.State == TxnOngoing && now.Sub(e.last) > timeout {
			idx := CoordinatorPartition(e.meta.ID, tc.b.cfg.TxnPartitions)
			if p, ok := tc.owned[idx]; ok {
				victims = append(victims, victim{e, p})
			}
		}
	}
	tc.mu.Unlock()
	for _, v := range victims {
		v.e.opMu.Lock()
		tc.mu.Lock()
		m := v.e.meta
		tc.mu.Unlock()
		if m.State != TxnOngoing {
			v.e.opMu.Unlock()
			continue
		}
		m.State = TxnPrepareAbort
		m.Epoch++ // fence the stalled producer
		if errc := tc.persist(v.p, m); errc == protocol.ErrNone {
			tc.setMeta(v.e, m)
			tc.runCompletion(v.e, false)
		}
		v.e.opMu.Unlock()
	}
}
