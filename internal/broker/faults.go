package broker

import "sync/atomic"

// Faults is a bag of deliberately injectable protocol bugs, shared by
// every broker in a cluster. The simulator's self-test flips one on and
// asserts that the invariant checkers catch it — proving the harness can
// actually see the class of bug it exists to find. All fields default to
// off; production paths never set them.
type Faults struct {
	// DropAbortMarkers makes handleWriteTxnMarkers acknowledge abort
	// markers without appending them, so aborted data is never fenced off
	// the log: read-committed consumers will observe aborted records
	// (invariant I4) and the LSO stalls below the HW.
	DropAbortMarkers atomic.Bool
}
