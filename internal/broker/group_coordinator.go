package broker

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"time"

	"kstreams/internal/protocol"
	"kstreams/internal/retry"
)

// Group coordinator: manages consumer group membership (join/sync/
// heartbeat generations with member fencing) and committed offsets for the
// groups hashed to the __consumer_offsets partitions this broker leads.
// Offset commits are appends to the offsets partition — "offset commits in
// Kafka are translated internally as appends to an internal Kafka topic"
// (paper Section 4.2) — so transactional offset commits become visible
// atomically with the transaction's data when the commit marker lands.

type groupState int

const (
	groupEmpty groupState = iota
	groupPreparing
	groupAwaitingSync
	groupStable
)

type member struct {
	id             string
	subscription   []string
	userData       []byte
	sessionTimeout time.Duration
	lastSeen       time.Time
	joined         bool
	// joinParked is true while the member's join request is blocked in
	// the rebalance barrier. A rebalance reset must not clear such a
	// member's joined flag: it cannot rejoin (its one request is already
	// here), and evicting it bounces it back as a brand-new member whose
	// join resets the next round — mutual eviction that livelocks the
	// group at RPC speed.
	joinParked bool
	// owned is the partition set the member reported still holding at its
	// last join (cooperative protocol). The leader sees it per member and
	// withholds partitions that would move between live owners, so a
	// partition is never assigned to two members of the same generation.
	owned          []protocol.TopicPartition
	assignment     []protocol.TopicPartition
	assignUserData []byte
}

type group struct {
	name    string
	partIdx int32
	clock   retry.Clock

	mu   sync.Mutex
	cond *sync.Cond

	state      groupState
	generation int32
	members    map[string]*member
	leader     string
	nextMember int
	// persistedGen is the highest generation durably recorded in the
	// offsets log as a group-metadata record. Generations (and the member
	// id counter) must survive coordinator failover, or a re-formed group
	// would hand out the same (member id, generation) pairs again and a
	// zombie's transactional offset commit would pass fencing (Kafka
	// persists GroupMetadata in __consumer_offsets for the same reason).
	persistedGen int32

	// committed holds materialized offsets; pendingTxn stages transactional
	// offset commits until their marker resolves them.
	committed  map[protocol.TopicPartition]protocol.OffsetEntry
	pendingTxn map[int64][]protocol.OffsetEntry
}

func newGroup(name string, partIdx int32, clock retry.Clock) *group {
	g := &group{
		name:       name,
		partIdx:    partIdx,
		clock:      retry.Or(clock),
		members:    make(map[string]*member),
		committed:  make(map[protocol.TopicPartition]protocol.OffsetEntry),
		pendingTxn: make(map[int64][]protocol.OffsetEntry),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

type groupCoordinator struct {
	b *Broker

	mu     sync.Mutex
	owned  map[int32]*partition
	groups map[string]*group
}

func newGroupCoordinator(b *Broker) *groupCoordinator {
	return &groupCoordinator{
		b:      b,
		owned:  make(map[int32]*partition),
		groups: make(map[string]*group),
	}
}

// takePartition makes this broker the coordinator for the groups hashed to
// the given offsets partition: it replays the partition log to materialize
// committed offsets, then subscribes to marker appends.
func (gc *groupCoordinator) takePartition(idx int32, p *partition) {
	gc.mu.Lock()
	gc.owned[idx] = p
	gc.mu.Unlock()
	gc.replay(idx, p)
	p.mu.Lock()
	p.onAppend = func(b *protocol.RecordBatch) { gc.observeBatch(idx, b) }
	p.mu.Unlock()
}

func (gc *groupCoordinator) dropPartition(idx int32) {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	if p, ok := gc.owned[idx]; ok {
		p.mu.Lock()
		p.onAppend = nil
		p.mu.Unlock()
	}
	delete(gc.owned, idx)
	// Groups on this partition move with the new coordinator; members will
	// rediscover it and rejoin there. Drop local state.
	for name, g := range gc.groups {
		if g.partIdx == idx {
			g.mu.Lock()
			g.state = groupEmpty
			g.cond.Broadcast()
			g.mu.Unlock()
			delete(gc.groups, name)
		}
	}
}

// replay rebuilds offset state from the partition log.
func (gc *groupCoordinator) replay(idx int32, p *partition) {
	off := p.log.StartOffset()
	end := p.log.EndOffset()
	for off < end {
		batches, err := p.log.Read(off, end, 1<<20)
		if err != nil || len(batches) == 0 {
			return
		}
		for _, b := range batches {
			gc.observeBatch(idx, b)
			off = b.LastOffset() + 1
		}
	}
}

// observeBatch materializes offset records and transaction markers landing
// on an owned offsets partition.
func (gc *groupCoordinator) observeBatch(idx int32, b *protocol.RecordBatch) {
	if b.Control {
		m, err := b.Marker()
		if err != nil {
			return
		}
		gc.resolvePending(idx, b.ProducerID, m.Type == protocol.MarkerCommit)
		return
	}
	for i := range b.Records {
		if name, ok := parseGroupMetaKey(b.Records[i].Key); ok {
			gen, next, ok := parseGroupMetaValue(b.Records[i].Value)
			if !ok {
				continue
			}
			g := gc.groupFor(name, true)
			g.mu.Lock()
			// Adopt monotonically: a failed-over coordinator resumes the
			// generation sequence instead of restarting it, keeping old
			// (member, generation) pairs permanently fenced.
			if gen > g.generation {
				g.generation = gen
			}
			if gen > g.persistedGen {
				g.persistedGen = gen
			}
			if next > g.nextMember {
				g.nextMember = next
			}
			g.mu.Unlock()
			continue
		}
		groupName, tp, ok := parseOffsetKey(b.Records[i].Key)
		if !ok {
			continue
		}
		entry, ok := parseOffsetValue(tp, b.Records[i].Value)
		if !ok {
			continue
		}
		g := gc.groupFor(groupName, false)
		if g == nil {
			g = gc.groupFor(groupName, true)
		}
		g.mu.Lock()
		if b.Transactional {
			g.pendingTxn[b.ProducerID] = append(g.pendingTxn[b.ProducerID], entry)
		} else {
			g.committed[entry.TP] = entry
		}
		g.mu.Unlock()
	}
}

// resolvePending commits or discards staged transactional offsets when the
// producer's marker arrives (paper Section 4.2.3: committed offsets "are
// also only reflected when the ongoing transaction is committed").
func (gc *groupCoordinator) resolvePending(idx int32, pid int64, commit bool) {
	gc.mu.Lock()
	groups := make([]*group, 0, len(gc.groups))
	for _, g := range gc.groups {
		if g.partIdx == idx {
			groups = append(groups, g)
		}
	}
	gc.mu.Unlock()
	for _, g := range groups {
		g.mu.Lock()
		if staged, ok := g.pendingTxn[pid]; ok {
			if commit {
				for _, e := range staged {
					g.committed[e.TP] = e
				}
			}
			delete(g.pendingTxn, pid)
		}
		g.mu.Unlock()
	}
}

// groupFor returns the group state, optionally creating it.
func (gc *groupCoordinator) groupFor(name string, create bool) *group {
	gc.mu.Lock()
	defer gc.mu.Unlock()
	g, ok := gc.groups[name]
	if !ok && create {
		g = newGroup(name, CoordinatorPartition(name, gc.b.cfg.OffsetsPartitions), gc.b.clock)
		gc.groups[name] = g
	}
	return g
}

// ownsGroup checks the coordinator hash routing.
func (gc *groupCoordinator) ownsGroup(name string) (*partition, bool) {
	idx := CoordinatorPartition(name, gc.b.cfg.OffsetsPartitions)
	gc.mu.Lock()
	defer gc.mu.Unlock()
	p, ok := gc.owned[idx]
	return p, ok
}

// --- membership ---

func (gc *groupCoordinator) handleJoin(r *protocol.JoinGroupRequest) *protocol.JoinGroupResponse {
	p, ok := gc.ownsGroup(r.Group)
	if !ok {
		return &protocol.JoinGroupResponse{Err: protocol.ErrNotCoordinator}
	}
	g := gc.groupFor(r.Group, true)
	resp := gc.joinLocked(g, r)
	if resp.Err == protocol.ErrNone {
		// No member may act on a generation that is not durable: a crash
		// of this coordinator would otherwise reset the counter and
		// un-fence zombies holding the old numbers.
		if code := gc.persistGroupMeta(p, g); code != protocol.ErrNone {
			return &protocol.JoinGroupResponse{Err: code}
		}
	}
	return resp
}

func (gc *groupCoordinator) joinLocked(g *group, r *protocol.JoinGroupRequest) *protocol.JoinGroupResponse {
	g.mu.Lock()
	defer g.mu.Unlock()

	id := r.MemberID
	if id == "" {
		g.nextMember++
		id = fmt.Sprintf("%s-%s-%d", r.Group, r.ClientID, g.nextMember)
	} else if _, ok := g.members[id]; !ok {
		return &protocol.JoinGroupResponse{Err: protocol.ErrUnknownMemberID}
	}
	m, ok := g.members[id]
	if !ok {
		m = &member{id: id}
		g.members[id] = m
	}
	m.subscription = r.Subscription
	m.userData = r.UserData
	m.owned = r.Owned
	m.sessionTimeout = time.Duration(r.SessionTimeoutMs) * time.Millisecond
	if m.sessionTimeout <= 0 {
		m.sessionTimeout = 10 * time.Second
	}
	m.lastSeen = g.clock.Now()
	m.joined = true

	if g.state != groupPreparing {
		// Start a new rebalance round: everyone else must rejoin. Members
		// whose join request is already parked in the barrier stay joined
		// — they are carried into this round and answered with its
		// generation.
		g.state = groupPreparing
		for _, other := range g.members {
			if other != m && !other.joinParked {
				other.joined = false
			}
		}
		g.cond.Broadcast()
	}

	m.joinParked = true
	deadline := g.clock.Now().Add(gc.b.cfg.GroupRebalanceTimeout)
	for g.state == groupPreparing && !g.allJoinedLocked() && g.clock.Now().Before(deadline) {
		g.waitLocked(deadline)
	}
	m.joinParked = false
	if g.state == groupPreparing {
		// Complete the round (possibly evicting stragglers).
		for mid, other := range g.members {
			if !other.joined {
				delete(g.members, mid)
			}
		}
		g.generation++
		gc.b.metrics.rebalances.Inc()
		g.leader = ""
		for mid := range g.members {
			if g.leader == "" || mid < g.leader {
				g.leader = mid
			}
		}
		g.state = groupAwaitingSync
		g.cond.Broadcast()
	}

	if _, still := g.members[id]; !still {
		return &protocol.JoinGroupResponse{Err: protocol.ErrUnknownMemberID}
	}
	resp := &protocol.JoinGroupResponse{
		GenerationID: g.generation,
		MemberID:     id,
		LeaderID:     g.leader,
	}
	if id == g.leader {
		for _, other := range g.members {
			resp.Members = append(resp.Members, protocol.JoinGroupMember{
				MemberID:     other.id,
				Subscription: other.subscription,
				UserData:     other.userData,
				Owned:        other.owned,
			})
		}
	}
	return resp
}

func (g *group) allJoinedLocked() bool {
	for _, m := range g.members {
		if !m.joined {
			return false
		}
	}
	return true
}

// waitLocked waits on the group condition with a timeout pulse.
func (g *group) waitLocked(deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-g.clock.After(20 * time.Millisecond):
			g.cond.Broadcast()
		case <-done:
		}
	}()
	g.cond.Wait()
	close(done)
	_ = deadline
}

func (gc *groupCoordinator) handleSync(r *protocol.SyncGroupRequest) *protocol.SyncGroupResponse {
	if _, ok := gc.ownsGroup(r.Group); !ok {
		return &protocol.SyncGroupResponse{Err: protocol.ErrNotCoordinator}
	}
	g := gc.groupFor(r.Group, false)
	if g == nil {
		return &protocol.SyncGroupResponse{Err: protocol.ErrUnknownMemberID}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[r.MemberID]
	if !ok {
		return &protocol.SyncGroupResponse{Err: protocol.ErrUnknownMemberID}
	}
	if r.GenerationID != g.generation {
		return &protocol.SyncGroupResponse{Err: protocol.ErrIllegalGeneration}
	}
	if g.state == groupPreparing {
		return &protocol.SyncGroupResponse{Err: protocol.ErrRebalanceInProgress}
	}
	if g.state == groupAwaitingSync && r.MemberID == g.leader {
		for _, a := range r.Assignments {
			if target, ok := g.members[a.MemberID]; ok {
				target.assignment = a.Partitions
				target.assignUserData = a.UserData
			}
		}
		g.state = groupStable
		g.cond.Broadcast()
	}
	deadline := g.clock.Now().Add(gc.b.cfg.GroupRebalanceTimeout)
	for g.state == groupAwaitingSync && r.GenerationID == g.generation && g.clock.Now().Before(deadline) {
		g.waitLocked(deadline)
	}
	if g.state != groupStable || r.GenerationID != g.generation {
		return &protocol.SyncGroupResponse{Err: protocol.ErrRebalanceInProgress}
	}
	m.lastSeen = g.clock.Now()
	return &protocol.SyncGroupResponse{
		Partitions: m.assignment,
		UserData:   m.assignUserData,
	}
}

func (gc *groupCoordinator) handleHeartbeat(r *protocol.HeartbeatRequest) *protocol.HeartbeatResponse {
	if _, ok := gc.ownsGroup(r.Group); !ok {
		return &protocol.HeartbeatResponse{Err: protocol.ErrNotCoordinator}
	}
	g := gc.groupFor(r.Group, false)
	if g == nil {
		return &protocol.HeartbeatResponse{Err: protocol.ErrUnknownMemberID}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	m, ok := g.members[r.MemberID]
	if !ok {
		return &protocol.HeartbeatResponse{Err: protocol.ErrUnknownMemberID}
	}
	if r.GenerationID != g.generation {
		return &protocol.HeartbeatResponse{Err: protocol.ErrIllegalGeneration}
	}
	m.lastSeen = g.clock.Now()
	if g.state != groupStable {
		return &protocol.HeartbeatResponse{Err: protocol.ErrRebalanceInProgress}
	}
	return &protocol.HeartbeatResponse{}
}

func (gc *groupCoordinator) handleLeave(r *protocol.LeaveGroupRequest) *protocol.LeaveGroupResponse {
	if _, ok := gc.ownsGroup(r.Group); !ok {
		return &protocol.LeaveGroupResponse{Err: protocol.ErrNotCoordinator}
	}
	g := gc.groupFor(r.Group, false)
	if g == nil {
		return &protocol.LeaveGroupResponse{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.members[r.MemberID]; ok {
		delete(g.members, r.MemberID)
		if len(g.members) == 0 {
			g.state = groupEmpty
		} else if g.state == groupStable || g.state == groupAwaitingSync {
			g.state = groupPreparing
			for _, other := range g.members {
				other.joined = false
			}
		}
		g.cond.Broadcast()
	}
	return &protocol.LeaveGroupResponse{}
}

// tick evicts members whose session expired, triggering a rebalance.
func (gc *groupCoordinator) tick() {
	gc.mu.Lock()
	groups := make([]*group, 0, len(gc.groups))
	for _, g := range gc.groups {
		groups = append(groups, g)
	}
	gc.mu.Unlock()
	now := gc.b.clock.Now()
	for _, g := range groups {
		g.mu.Lock()
		changed := false
		for id, m := range g.members {
			if g.state == groupPreparing && !m.joined {
				continue // the join round's own deadline handles these
			}
			if now.Sub(m.lastSeen) > m.sessionTimeout {
				delete(g.members, id)
				changed = true
			}
		}
		if changed {
			if len(g.members) == 0 {
				g.state = groupEmpty
			} else {
				g.state = groupPreparing
				for _, m := range g.members {
					m.joined = false
				}
			}
			g.cond.Broadcast()
		}
		g.mu.Unlock()
	}
}

// --- group metadata persistence ---

func groupMetaKey(groupName string) []byte {
	return []byte("g|" + groupName)
}

func parseGroupMetaKey(k []byte) (string, bool) {
	s := string(k)
	if !strings.HasPrefix(s, "g|") {
		return "", false
	}
	return s[2:], true
}

func groupMetaValue(generation int32, nextMember int) []byte {
	out := make([]byte, 12)
	binary.BigEndian.PutUint32(out[:4], uint32(generation))
	binary.BigEndian.PutUint64(out[4:], uint64(nextMember))
	return out
}

func parseGroupMetaValue(v []byte) (int32, int, bool) {
	if len(v) != 12 {
		return 0, 0, false
	}
	return int32(binary.BigEndian.Uint32(v[:4])), int(binary.BigEndian.Uint64(v[4:])), true
}

// persistGroupMeta appends a group-metadata record (generation and member
// id counter) to the group's offsets partition if the current generation
// is newer than the last persisted one. Concurrent joiners may append the
// same snapshot twice; replay takes the maximum, so duplicates are
// harmless. Called without g.mu held — the append blocks on replication.
func (gc *groupCoordinator) persistGroupMeta(p *partition, g *group) protocol.ErrorCode {
	g.mu.Lock()
	gen := g.generation
	next := g.nextMember
	stale := gen <= g.persistedGen
	g.mu.Unlock()
	if stale {
		return protocol.ErrNone
	}
	b := &protocol.RecordBatch{
		ProducerID:   protocol.NoProducerID,
		BaseSequence: protocol.NoSequence,
		Records: []protocol.Record{{
			Key:       groupMetaKey(g.name),
			Value:     groupMetaValue(gen, next),
			Timestamp: gc.b.clock.Now().UnixMilli(),
		}},
	}
	if res := p.appendAsLeader(gc.b.cfg.ID, b); res.Err != protocol.ErrNone {
		return res.Err
	}
	g.mu.Lock()
	if gen > g.persistedGen {
		g.persistedGen = gen
	}
	g.mu.Unlock()
	return protocol.ErrNone
}

// --- offsets ---

func offsetKey(groupName string, tp protocol.TopicPartition) []byte {
	return []byte(fmt.Sprintf("c|%s|%s|%d", groupName, tp.Topic, tp.Partition))
}

func parseOffsetKey(k []byte) (string, protocol.TopicPartition, bool) {
	parts := strings.Split(string(k), "|")
	if len(parts) != 4 || parts[0] != "c" {
		return "", protocol.TopicPartition{}, false
	}
	var pnum int32
	if _, err := fmt.Sscanf(parts[3], "%d", &pnum); err != nil {
		return "", protocol.TopicPartition{}, false
	}
	return parts[1], protocol.TopicPartition{Topic: parts[2], Partition: pnum}, true
}

func offsetValue(e protocol.OffsetEntry) []byte {
	out := make([]byte, 8+len(e.Metadata))
	binary.BigEndian.PutUint64(out[:8], uint64(e.Offset))
	copy(out[8:], e.Metadata)
	return out
}

func parseOffsetValue(tp protocol.TopicPartition, v []byte) (protocol.OffsetEntry, bool) {
	if len(v) < 8 {
		return protocol.OffsetEntry{}, false
	}
	return protocol.OffsetEntry{
		TP:       tp,
		Offset:   int64(binary.BigEndian.Uint64(v[:8])),
		Metadata: string(v[8:]),
	}, true
}

// appendOffsets durably appends offset records to the group's partition.
func (gc *groupCoordinator) appendOffsets(p *partition, groupName string, offsets []protocol.OffsetEntry, pid int64, epoch int16, txn bool) protocol.ErrorCode {
	b := &protocol.RecordBatch{
		ProducerID:    pid,
		ProducerEpoch: epoch,
		BaseSequence:  protocol.NoSequence,
		Transactional: txn,
	}
	now := gc.b.clock.Now().UnixMilli()
	for _, e := range offsets {
		b.Records = append(b.Records, protocol.Record{
			Key:       offsetKey(groupName, e.TP),
			Value:     offsetValue(e),
			Timestamp: now,
		})
	}
	res := p.appendAsLeader(gc.b.cfg.ID, b)
	if res.Err == protocol.ErrDuplicateSequence {
		return protocol.ErrNone
	}
	return res.Err
}

func (gc *groupCoordinator) handleOffsetCommit(r *protocol.OffsetCommitRequest) *protocol.OffsetCommitResponse {
	p, ok := gc.ownsGroup(r.Group)
	if !ok {
		return &protocol.OffsetCommitResponse{Err: protocol.ErrNotCoordinator}
	}
	g := gc.groupFor(r.Group, true)
	if r.MemberID != "" {
		g.mu.Lock()
		m, known := g.members[r.MemberID]
		gen := g.generation
		g.mu.Unlock()
		if !known {
			return &protocol.OffsetCommitResponse{Err: protocol.ErrUnknownMemberID}
		}
		if r.GenerationID != gen {
			return &protocol.OffsetCommitResponse{Err: protocol.ErrIllegalGeneration}
		}
		g.mu.Lock()
		m.lastSeen = g.clock.Now()
		g.mu.Unlock()
	}
	if err := gc.appendOffsets(p, r.Group, r.Offsets, protocol.NoProducerID, 0, false); err != protocol.ErrNone {
		return &protocol.OffsetCommitResponse{Err: err}
	}
	// The append hook materialized the offsets; nothing more to do.
	return &protocol.OffsetCommitResponse{}
}

func (gc *groupCoordinator) handleTxnOffsetCommit(r *protocol.TxnOffsetCommitRequest) *protocol.TxnOffsetCommitResponse {
	p, ok := gc.ownsGroup(r.Group)
	if !ok {
		return &protocol.TxnOffsetCommitResponse{Err: protocol.ErrNotCoordinator}
	}
	if r.MemberID != "" {
		// Group-metadata fencing: a committer whose generation is stale has
		// lost its tasks to a rebalance and must not commit their offsets.
		g := gc.groupFor(r.Group, false)
		if g == nil {
			return &protocol.TxnOffsetCommitResponse{Err: protocol.ErrUnknownMemberID}
		}
		g.mu.Lock()
		_, known := g.members[r.MemberID]
		gen := g.generation
		g.mu.Unlock()
		if !known {
			return &protocol.TxnOffsetCommitResponse{Err: protocol.ErrUnknownMemberID}
		}
		if r.GenerationID != gen {
			return &protocol.TxnOffsetCommitResponse{Err: protocol.ErrIllegalGeneration}
		}
	}
	if err := gc.appendOffsets(p, r.Group, r.Offsets, r.ProducerID, r.ProducerEpoch, true); err != protocol.ErrNone {
		return &protocol.TxnOffsetCommitResponse{Err: err}
	}
	return &protocol.TxnOffsetCommitResponse{}
}

func (gc *groupCoordinator) handleOffsetFetch(r *protocol.OffsetFetchRequest) *protocol.OffsetFetchResponse {
	if _, ok := gc.ownsGroup(r.Group); !ok {
		return &protocol.OffsetFetchResponse{Err: protocol.ErrNotCoordinator}
	}
	g := gc.groupFor(r.Group, false)
	resp := &protocol.OffsetFetchResponse{}
	if g != nil {
		// A transactional offset commit awaiting its marker makes the
		// requested offsets unstable: the fetch must retry until the
		// transaction resolves, or a consumer could read a stale position
		// and reprocess committed input (Kafka's UNSTABLE_OFFSET_COMMIT).
		g.mu.Lock()
		unstable := false
		for _, staged := range g.pendingTxn {
			for _, e := range staged {
				for _, tp := range r.TPs {
					if e.TP == tp {
						unstable = true
					}
				}
			}
		}
		g.mu.Unlock()
		if unstable {
			return &protocol.OffsetFetchResponse{Err: protocol.ErrUnstableOffsetCommit}
		}
	}
	for _, tp := range r.TPs {
		e := protocol.OffsetFetchEntry{TP: tp, Offset: -1}
		if g != nil {
			g.mu.Lock()
			if c, ok := g.committed[tp]; ok {
				e.Offset = c.Offset
				e.Err = protocol.ErrNone
			}
			g.mu.Unlock()
		}
		resp.Offsets = append(resp.Offsets, e)
	}
	return resp
}
