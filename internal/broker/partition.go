// Package broker implements one Kafka broker: partition replicas with
// leader/follower roles, the produce path with idempotent de-duplication,
// the fetch path with read-committed filtering, follower replication and
// high-watermark tracking, the consumer group coordinator, and the
// transaction coordinator (paper Sections 3 and 4).
package broker

import (
	"log"
	"sync"
	"time"

	"kstreams/internal/obs"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/wal"
)

// defaultProduceTimeout bounds how long an acks=all append waits for
// replication before reporting ErrRequestTimedOut when Config.ProduceTimeout
// is unset. The deadline is measured on the partition's injected clock, so
// it holds under the simulator's virtual time as well as wall time.
const defaultProduceTimeout = 10 * time.Second

// partition is one replica of a topic partition hosted by this broker.
type partition struct {
	tp   protocol.TopicPartition
	cfg  protocol.TopicConfig
	self int32 // hosting broker's id
	log  *wal.Log

	mu   sync.Mutex
	cond *sync.Cond

	leaderID    int32
	leaderEpoch int32
	replicas    []int32
	isr         []int32
	isLeader    bool
	stopped     bool

	// hw is the high watermark: the largest offset known to be replicated
	// to every in-sync replica. Never regresses.
	hw int64
	// followerLEO tracks, on the leader, each follower's log end offset as
	// reported by its replica fetches.
	followerLEO map[int32]int64
	// lastFetch records each follower's last replica fetch (diagnostics).
	// Stamped from p.clock — never the wall clock — so the ages printed in
	// replication-stall diagnostics stay meaningful under virtual time.
	lastFetch map[int32]time.Time

	// produceTimeout bounds acks=all replication waits; zero selects
	// defaultProduceTimeout.
	produceTimeout time.Duration

	// appendDelay models storage latency per leader append, paced by the
	// hosting broker's clock (the transport fabric's shared time source).
	appendDelay time.Duration
	clock       retry.Clock

	// Observability handles, set by the hosting broker after construction;
	// nil handles no-op, so bare newPartition (tests) works uninstrumented.
	appendLat *obs.Histogram
	hwGauge   *obs.Gauge
	lsoGauge  *obs.Gauge
	isrGauge  *obs.Gauge

	// onAppend, when set by a coordinator that owns this partition, runs
	// after every successful leader append (data and markers) so the
	// coordinator can materialize state from its own log.
	onAppend func(*protocol.RecordBatch)

	// onISRChange notifies the broker that the leader wants the ISR
	// changed (follower caught up); the broker forwards to the controller.
	onISRChange func(tp protocol.TopicPartition, epoch int32, isr []int32)
}

func newPartition(tp protocol.TopicPartition, cfg protocol.TopicConfig, self int32, log *wal.Log, appendDelay time.Duration, clock retry.Clock) *partition {
	p := &partition{
		tp:   tp,
		cfg:  cfg,
		self: self,
		log:  log,
		// No leader is known until the first leaderAndISR lands. The zero
		// value would read as node 0 — the controller — and the replica
		// loop would fetch from it (the partition is visible in the
		// broker's map before becomeLeader/becomeFollower runs).
		leaderID:    -1,
		followerLEO: make(map[int32]int64),
		lastFetch:   make(map[int32]time.Time),
		appendDelay: appendDelay,
		clock:       retry.Or(clock),
	}
	p.cond = sync.NewCond(&p.mu)
	// A recovered replica trusts its local log up to its end; the controller
	// will make it a follower first, which truncates to the leader's state.
	p.hw = log.EndOffset()
	return p
}

// becomeLeader installs leadership state. The high watermark is preserved
// (it never regresses); follower progress is re-learned from their fetches.
func (p *partition) becomeLeader(epoch int32, replicas, isr []int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaderEpoch = epoch
	p.leaderID = p.self
	p.replicas = replicas
	p.isr = isr
	p.isrGauge.Set(int64(len(isr)))
	p.isLeader = true
	p.followerLEO = make(map[int32]int64)
	p.lastFetch = make(map[int32]time.Time)
	// The ISR may have shrunk (e.g. to the leader alone): recompute the
	// watermark so waiting appends are released.
	p.advanceHWLocked()
	p.cond.Broadcast()
}

// becomeFollower drops leadership and truncates the log to the high
// watermark: records above it were never committed and will be re-fetched
// from the new leader, which (being in the ISR) has everything below it.
func (p *partition) becomeFollower(epoch int32, leader int32, replicas, isr []int32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.leaderEpoch = epoch
	p.leaderID = leader
	p.replicas = replicas
	p.isr = isr
	p.isrGauge.Set(int64(len(isr)))
	p.isLeader = false
	p.cond.Broadcast()
	return p.log.TruncateTo(p.hw)
}

// setISR applies a controller-confirmed ISR (e.g. after a broker crash).
func (p *partition) setISR(epoch int32, isr []int32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if epoch < p.leaderEpoch {
		return
	}
	p.leaderEpoch = epoch
	p.isr = isr
	p.isrGauge.Set(int64(len(isr)))
	p.advanceHWLocked()
	p.cond.Broadcast()
}

func (p *partition) stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stopped = true
	p.cond.Broadcast()
}

func (p *partition) leader() (int32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leaderID, p.isLeader
}

// hasAppendHook reports whether a coordinator owns this partition (its
// append hook must only fire after commit, so acks=leader never applies).
func (p *partition) hasAppendHook() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.onAppend != nil
}

func (p *partition) highWatermark() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hw
}

// lastStable returns the last stable offset: min(high watermark, first
// offset of any open transaction). Read-committed fetches stop here
// (paper Section 4.2.3).
func (p *partition) lastStable() int64 {
	hw := p.highWatermark()
	if fu := p.log.FirstUnstable(); fu >= 0 && fu < hw {
		hw = fu
	}
	p.lsoGauge.Set(hw)
	return hw
}

// advanceHWLocked recomputes the high watermark as the minimum log end
// offset across the leader and all in-sync followers.
func (p *partition) advanceHWLocked() {
	min := p.log.EndOffset()
	for _, id := range p.isr {
		if id == p.self {
			continue // the leader's own LEO is the starting minimum
		}
		leo, ok := p.followerLEO[id]
		if !ok {
			// Unknown progress for an in-sync follower: hold the watermark.
			return
		}
		if leo < min {
			min = leo
		}
	}
	if min > p.hw {
		p.hw = min
		p.hwGauge.Set(min)
		p.cond.Broadcast()
	}
}

// isrContains reports membership; caller holds the lock.
func isrContains(isr []int32, id int32) bool {
	for _, m := range isr {
		if m == id {
			return true
		}
	}
	return false
}

// selfOnly reports whether the leader is the only replica expected in sync.
func (p *partition) soleReplicaLocked(selfID int32) bool {
	for _, id := range p.isr {
		if id != selfID {
			return false
		}
	}
	return true
}

// appendAsLeader validates and appends a batch, then waits until it is
// replicated to the full ISR (acks=all). Returns the assigned base offset.
func (p *partition) appendAsLeader(selfID int32, b *protocol.RecordBatch) protocol.ProduceResult {
	res, wait := p.appendOnly(selfID, b)
	if wait != nil {
		if code := wait(); code != protocol.ErrNone {
			res.Err = code
		}
	}
	return res
}

// appendOnly validates and appends a batch without waiting for
// replication. It returns the produce result and, on success, a wait
// function that blocks until the batch is committed (high watermark past
// it) and then fires the coordinator append hook. Multi-partition produce
// requests append everything first and run the waits afterwards, so the
// replication round-trips of independent partitions overlap.
//
//kslint:hotpath
func (p *partition) appendOnly(selfID int32, b *protocol.RecordBatch) (protocol.ProduceResult, func() protocol.ErrorCode) {
	res := protocol.ProduceResult{TP: p.tp}
	p.mu.Lock()
	if !p.isLeader || p.stopped {
		p.mu.Unlock()
		res.Err = protocol.ErrNotLeader
		return res, nil
	}
	epoch := p.leaderEpoch
	p.mu.Unlock()

	appendStart := p.clock.Now()
	p.clock.Sleep(p.appendDelay)
	ar := p.log.Append(b)
	p.appendLat.ObserveSince(appendStart)
	switch ar.Err {
	case protocol.ErrNone:
	case protocol.ErrDuplicateSequence:
		// Already appended by an earlier attempt: acknowledge with the
		// original offset without waiting again.
		res.Err = protocol.ErrDuplicateSequence
		res.BaseOffset = ar.BaseOffset
		return res, nil
	default:
		res.Err = ar.Err
		return res, nil
	}
	res.BaseOffset = ar.BaseOffset
	last := b.LastOffset()

	p.mu.Lock()
	if p.soleReplicaLocked(selfID) {
		p.advanceHWLocked()
	}
	p.mu.Unlock()

	return res, func() protocol.ErrorCode {
		if code := p.waitCommitted(selfID, epoch, last); code != protocol.ErrNone {
			return code
		}
		p.mu.Lock()
		hook := p.onAppend
		p.mu.Unlock()
		if hook != nil {
			hook(b)
		}
		return protocol.ErrNone
	}
}

// waitCommitted blocks until the high watermark passes last.
func (p *partition) waitCommitted(selfID int32, epoch int32, last int64) protocol.ErrorCode {
	p.mu.Lock()
	defer p.mu.Unlock()
	timeout := p.produceTimeout
	if timeout <= 0 {
		timeout = defaultProduceTimeout
	}
	deadline := p.clock.Now().Add(timeout)
	for p.hw <= last {
		if !p.isLeader || p.stopped || p.leaderEpoch != epoch {
			return protocol.ErrNotLeader
		}
		if p.clock.Now().After(deadline) {
			p.logStallLocked(selfID, last)
			return protocol.ErrRequestTimedOut
		}
		p.waitLocked(deadline)
	}
	return protocol.ErrNone
}

// logStallLocked snapshots follower state and reports a replication
// stall. p.mu must be held.
//
//kslint:coldpath runs once per timed-out produce, never in steady state
func (p *partition) logStallLocked(selfID int32, last int64) {
	isr := append([]int32(nil), p.isr...)
	leo := make(map[int32]int64, len(p.followerLEO))
	for id, off := range p.followerLEO {
		leo[id] = off
	}
	ages := make(map[int32]time.Duration, len(p.lastFetch))
	for id, at := range p.lastFetch {
		ages[id] = p.clock.Now().Sub(at).Round(time.Millisecond)
	}
	log.Printf("broker %d: produce to %s timed out waiting for replication: hw=%d last=%d leo=%d isr=%v followerLEO=%v fetchAges=%v",
		selfID, p.tp, p.hw, last, p.log.EndOffset(), isr, leo, ages)
}

// waitLocked blocks on the condition variable with a coarse timeout pulse
// so deadline checks make progress even without state changes.
func (p *partition) waitLocked(deadline time.Time) {
	done := make(chan struct{})
	go func() {
		select {
		case <-p.clock.After(10 * time.Millisecond):
			p.cond.Broadcast()
		case <-done:
		}
	}()
	p.cond.Wait()
	close(done)
}

// fetchAsLeader serves a replica or consumer fetch for this partition.
//
//kslint:hotpath
func (p *partition) fetchAsLeader(selfID, replicaID int32, offset int64, maxBytes, maxRecords int, iso protocol.IsolationLevel) protocol.FetchPartition {
	out := protocol.FetchPartition{TP: p.tp}
	p.mu.Lock()
	if !p.isLeader || p.stopped {
		p.mu.Unlock()
		out.Err = protocol.ErrNotLeader
		return out
	}
	if replicaID >= 0 {
		// Replica fetch: the offset is the follower's log end offset.
		p.lastFetch[replicaID] = p.clock.Now()
		if prev, ok := p.followerLEO[replicaID]; !ok || offset > prev {
			p.followerLEO[replicaID] = offset
			p.advanceHWLocked()
		}
		// A caught-up follower rejoins the ISR.
		if !isrContains(p.isr, replicaID) && isrContains(p.replicas, replicaID) && offset >= p.hw {
			newISR := append(append([]int32(nil), p.isr...), replicaID)
			epoch := p.leaderEpoch
			notify := p.onISRChange
			p.mu.Unlock()
			if notify != nil {
				notify(p.tp, epoch, newISR)
			}
			p.mu.Lock()
		}
	}
	hw := p.hw
	p.mu.Unlock()

	out.HighWatermark = hw
	// Compute the LSO from the same HW snapshot the response reports:
	// recomputing via lastStable() could read a fresher, higher HW and
	// hand a consumer an observation where LSO > HW.
	lso := hw
	if fu := p.log.FirstUnstable(); fu >= 0 && fu < lso {
		lso = fu
	}
	p.lsoGauge.Set(lso)
	out.LastStableOffset = lso
	out.LogStartOffset = p.log.StartOffset()

	maxOffset := p.log.EndOffset() // replicas read everything
	if replicaID < 0 {
		if iso == protocol.ReadCommitted {
			maxOffset = out.LastStableOffset
		} else {
			maxOffset = hw
		}
		if maxRecords > 0 && offset+int64(maxRecords) < maxOffset {
			// Offsets are dense outside compaction gaps, so this bounds
			// the record count without a second decode pass.
			maxOffset = offset + int64(maxRecords)
		}
	}
	batches, err := p.log.Read(offset, maxOffset, maxBytes)
	if err != nil {
		out.Err = protocol.ErrOffsetOutOfRange
		return out
	}
	out.Batches = batches
	if replicaID < 0 && iso == protocol.ReadCommitted && len(batches) > 0 {
		end := batches[len(batches)-1].LastOffset() + 1
		for _, a := range p.log.AbortedIn(offset, end) {
			out.AbortedTxns = append(out.AbortedTxns, protocol.AbortedTxn{
				ProducerID:  a.ProducerID,
				FirstOffset: a.FirstOffset,
			})
		}
	}
	return out
}

// appendAsFollower applies leader-assigned batches from a replica fetch and
// adopts the leader's high watermark and log start offset.
func (p *partition) appendAsFollower(batches []*protocol.RecordBatch, leaderHW, leaderStart int64) error {
	for _, b := range batches {
		if b.BaseOffset < p.log.EndOffset() {
			continue // already have it
		}
		if err := p.log.AppendAssigned(b); err != nil {
			return err
		}
	}
	if leaderStart > p.log.StartOffset() {
		if _, err := p.log.AdvanceStartOffset(leaderStart); err != nil {
			return err
		}
	}
	p.mu.Lock()
	leo := p.log.EndOffset()
	if leaderHW > p.hw {
		if leaderHW > leo {
			leaderHW = leo
		}
		if leaderHW > p.hw {
			p.hw = leaderHW
		}
	}
	p.mu.Unlock()
	return nil
}
