package core

import (
	"testing"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/obs"
)

// buildObsTask is buildTask with a live metrics registry attached, so
// completeness instruments are observable.
func buildObsTask(t *testing.T, topo *Topology, reg *obs.Registry) *Task {
	t.Helper()
	sub := topo.SubTopologies()[0]
	task, err := NewTask(TaskID{SubTopology: sub.ID, Partition: 0}, sub, taskConfig{
		topology:       topo,
		changelogTopic: func(s string) string { return "app-" + s + "-changelog" },
		partitionsOf:   func(string) int32 { return 2 },
		registry:       NewStoreRegistry(),
		metrics:        &AtomicMetrics{},
		obsReg:         reg,
	}, &captureCollector{})
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func twoSourceTopology(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	topo.AddSource("a", "alpha", fakeSerde{}, fakeSerde{})
	topo.AddSource("b", "beta", fakeSerde{}, fakeSerde{})
	var seen []string
	topo.AddProcessor("p", func() Processor { return &orderProc{seen: &seen} }, "a", "b")
	topo.AddStore(StoreSpec{Name: "glue", KeySerde: fakeSerde{}, ValSerde: fakeSerde{}}, "p")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func drain(t *testing.T, task *Task) {
	t.Helper()
	for task.Buffered() > 0 {
		if ok, err := task.ProcessOne(); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
}

// TestWatermarkMinOverInputs: the task watermark is the min over its
// input partitions' observed frontiers, not the max the stream time
// tracks: the slowest input bounds completeness.
func TestWatermarkMinOverInputs(t *testing.T) {
	reg := obs.NewRegistry()
	task := buildObsTask(t, twoSourceTopology(t), reg)
	if task.Watermark() != -1 {
		t.Fatalf("watermark before data = %d, want -1", task.Watermark())
	}
	tpA, m1 := msg("alpha", 0, 0, "a1", 100)
	_, m2 := msg("alpha", 0, 1, "a2", 300)
	tpB, m3 := msg("beta", 0, 0, "b1", 50)
	_, m4 := msg("beta", 0, 1, "b2", 200)
	task.AddRecords(tpA, []client.Message{m1, m2})
	task.AddRecords(tpB, []client.Message{m3, m4})
	drain(t, task)
	if st, wm := task.StreamTime(), task.Watermark(); st != 300 || wm != 200 {
		t.Fatalf("streamTime=%d watermark=%d, want 300 and min-input 200", st, wm)
	}
	if got := reg.Snapshot().SumCounter("completeness_out_of_order_total"); got != 0 {
		t.Fatalf("in-order run counted %d out-of-order records", got)
	}
}

// TestWatermarkMonotonePerTask: an input delivering behind its own
// frontier counts out-of-order and never drags the watermark backwards —
// including the idle-input case where a late-starting partition's first
// record sits below the already-established frontier.
func TestWatermarkMonotonePerTask(t *testing.T) {
	reg := obs.NewRegistry()
	task := buildObsTask(t, twoSourceTopology(t), reg)

	// Only alpha delivers: the watermark follows the sole active input.
	tpA, m1 := msg("alpha", 0, 0, "a1", 100)
	task.AddRecords(tpA, []client.Message{m1})
	drain(t, task)
	if wm := task.Watermark(); wm != 100 {
		t.Fatalf("single active input watermark = %d, want 100", wm)
	}

	// alpha goes backwards: out-of-order, watermark holds.
	_, m2 := msg("alpha", 0, 1, "a2", 40)
	task.AddRecords(tpA, []client.Message{m2})
	drain(t, task)
	if wm := task.Watermark(); wm != 100 {
		t.Fatalf("watermark after out-of-order record = %d, want 100", wm)
	}
	if got := reg.Snapshot().SumCounter("completeness_out_of_order_total"); got != 1 {
		t.Fatalf("out-of-order total = %d, want 1", got)
	}

	// beta wakes up below the frontier: merged min is 60, but the
	// watermark is monotone and must hold at 100.
	tpB, m3 := msg("beta", 0, 0, "b1", 60)
	task.AddRecords(tpB, []client.Message{m3})
	drain(t, task)
	if wm := task.Watermark(); wm != 100 {
		t.Fatalf("watermark after idle input woke below frontier = %d, want 100", wm)
	}
	// beta is now the slow input: advancing alpha does not move the
	// watermark until beta passes it.
	_, m4 := msg("alpha", 0, 2, "a3", 500)
	task.AddRecords(tpA, []client.Message{m4})
	drain(t, task)
	if wm := task.Watermark(); wm != 100 {
		t.Fatalf("watermark = %d, want 100 while beta lags at 60", wm)
	}
	_, m5 := msg("beta", 0, 1, "b2", 450)
	task.AddRecords(tpB, []client.Message{m5})
	drain(t, task)
	if wm := task.Watermark(); wm != 450 {
		t.Fatalf("watermark = %d, want min(500, 450)", wm)
	}
}

// TestWatermarkOpOverheadGuard enforces the ≤50ns design target for the
// per-record watermark fold the same way the obs counter guard does:
// amortized over a big loop, hard-gated at 1µs so CI noise cannot flake
// it while a map lookup, lock, or allocation still trips it.
func TestWatermarkOpOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	const iters = 5_000_000
	wm := newWmTracker(2)
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			wm.observe(i&1, int64(i))
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	perOp := best / iters
	t.Logf("watermark observe: %v/op", perOp)
	if perOp > time.Microsecond {
		t.Fatalf("watermark observe costs %v/op, want ~<50ns", perOp)
	}
}
