package core

import (
	"fmt"
	"sort"
)

// NodeType distinguishes topology nodes.
type NodeType int

const (
	NodeSource NodeType = iota
	NodeProcessor
	NodeSink
)

// Partitioner routes a sink record to an output partition; nil uses
// hash-of-key.
type Partitioner func(key any, keyBytes []byte, numPartitions int32) int32

// Node is one operator in the topology graph.
type Node struct {
	Name string
	Type NodeType

	// Topic, KeySerde, ValueSerde apply to sources and sinks.
	Topic       string
	KeySerde    Serde
	ValueSerde  Serde
	Partitioner Partitioner

	// Supplier builds the per-task processor instance (processors only).
	Supplier func() Processor

	// Stores lists state store names this processor accesses.
	Stores []string

	children []string
	parents  []string
}

// StoreSpec declares a state store attached to processors.
type StoreSpec struct {
	Name string
	// Windowed selects a window store instead of a key-value store.
	Windowed bool
	KeySerde Serde
	ValSerde Serde
	// Changelog enables capture to a compacted changelog topic named
	// <appID>-<store>-changelog (paper Section 3.2).
	Changelog bool
	// Cached wraps the store with the write-back cache that consolidates
	// downstream emissions per commit interval (KV stores only).
	Cached bool
	// RetentionMs bounds how long windowed entries are kept beyond stream
	// time (window size + grace).
	RetentionMs int64
}

// Topology is the operator graph an application executes.
type Topology struct {
	nodes map[string]*Node
	order []string // insertion order for deterministic iteration
	specs map[string]*StoreSpec

	// RepartitionTopics marks internal topics (created by the app, purged
	// after consumption). Values are the requested partition counts
	// (0 = infer).
	RepartitionTopics map[string]int32

	subs []*SubTopology
}

// SubTopology is a fused group of operators with no network shuffle inside
// (paper Section 3.2).
type SubTopology struct {
	ID           int
	Nodes        []string
	SourceTopics []string
	// sourceByTopic resolves the source node consuming each topic.
	sourceByTopic map[string]*Node
	Stores        []string
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{
		nodes:             make(map[string]*Node),
		specs:             make(map[string]*StoreSpec),
		RepartitionTopics: make(map[string]int32),
	}
}

func (t *Topology) add(n *Node) *Node {
	if _, dup := t.nodes[n.Name]; dup {
		panic(fmt.Sprintf("core: duplicate node name %q", n.Name))
	}
	t.nodes[n.Name] = n
	t.order = append(t.order, n.Name)
	return n
}

// AddSource registers a source node reading a topic.
func (t *Topology) AddSource(name, topic string, keySerde, valSerde Serde) *Node {
	return t.add(&Node{Name: name, Type: NodeSource, Topic: topic, KeySerde: keySerde, ValueSerde: valSerde})
}

// AddProcessor registers a processor node under the given parents.
func (t *Topology) AddProcessor(name string, supplier func() Processor, parents ...string) *Node {
	t.checkParents(name, parents)
	n := t.add(&Node{Name: name, Type: NodeProcessor, Supplier: supplier})
	t.connect(n, parents)
	return n
}

// AddSink registers a sink node writing a topic.
func (t *Topology) AddSink(name, topic string, keySerde, valSerde Serde, partitioner Partitioner, parents ...string) *Node {
	t.checkParents(name, parents)
	n := t.add(&Node{Name: name, Type: NodeSink, Topic: topic, KeySerde: keySerde, ValueSerde: valSerde, Partitioner: partitioner})
	t.connect(n, parents)
	return n
}

func (t *Topology) checkParents(name string, parents []string) {
	for _, p := range parents {
		if _, ok := t.nodes[p]; !ok {
			panic(fmt.Sprintf("core: unknown parent %q of %q", p, name))
		}
	}
}

func (t *Topology) connect(n *Node, parents []string) {
	for _, p := range parents {
		parent, ok := t.nodes[p]
		if !ok {
			panic(fmt.Sprintf("core: unknown parent %q of %q", p, n.Name))
		}
		parent.children = append(parent.children, n.Name)
		n.parents = append(n.parents, p)
	}
}

// AddStore declares a store and connects it to processors.
func (t *Topology) AddStore(spec StoreSpec, processors ...string) {
	if _, dup := t.specs[spec.Name]; dup {
		panic(fmt.Sprintf("core: duplicate store %q", spec.Name))
	}
	sp := spec
	t.specs[spec.Name] = &sp
	for _, pn := range processors {
		n, ok := t.nodes[pn]
		if !ok {
			panic(fmt.Sprintf("core: unknown processor %q for store %q", pn, spec.Name))
		}
		n.Stores = append(n.Stores, spec.Name)
	}
}

// MarkRepartition flags a topic as an internal repartition topic with an
// optional explicit partition count.
func (t *Topology) MarkRepartition(topic string, partitions int32) {
	t.RepartitionTopics[topic] = partitions
}

// Node returns a node by name.
func (t *Topology) Node(name string) *Node { return t.nodes[name] }

// Stores returns the declared store specs.
func (t *Topology) Stores() map[string]*StoreSpec { return t.specs }

// Build computes sub-topologies: connected components of the node graph.
// Edges never cross topics, so components are exactly the operator groups
// with no shuffle inside (paper Section 3.2). Components are numbered in
// a deterministic order (by smallest source topic name).
func (t *Topology) Build() error {
	parent := make(map[string]string, len(t.nodes))
	var find func(string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) { parent[find(a)] = find(b) }
	for name := range t.nodes {
		parent[name] = name
	}
	for _, name := range t.order {
		for _, c := range t.nodes[name].children {
			union(name, c)
		}
	}
	// Nodes sharing a state store must execute in the same task (e.g. both
	// sides of a join access the same buffers), so they join one
	// sub-topology even without a direct edge.
	storeUsers := make(map[string]string)
	for _, name := range t.order {
		for _, st := range t.nodes[name].Stores {
			if first, ok := storeUsers[st]; ok {
				union(first, name)
			} else {
				storeUsers[st] = name
			}
		}
	}
	groups := make(map[string][]string)
	for _, name := range t.order {
		r := find(name)
		groups[r] = append(groups[r], name)
	}

	var subs []*SubTopology
	for _, members := range groups {
		sub := &SubTopology{sourceByTopic: make(map[string]*Node)}
		storeSet := make(map[string]bool)
		for _, name := range members {
			n := t.nodes[name]
			sub.Nodes = append(sub.Nodes, name)
			if n.Type == NodeSource {
				if _, dup := sub.sourceByTopic[n.Topic]; dup {
					return fmt.Errorf("core: two sources read topic %q in one sub-topology", n.Topic)
				}
				sub.sourceByTopic[n.Topic] = n
				sub.SourceTopics = append(sub.SourceTopics, n.Topic)
			}
			for _, s := range n.Stores {
				if !storeSet[s] {
					storeSet[s] = true
					sub.Stores = append(sub.Stores, s)
				}
			}
		}
		if len(sub.SourceTopics) == 0 {
			return fmt.Errorf("core: sub-topology %v has no source", sub.Nodes)
		}
		sort.Strings(sub.SourceTopics)
		sort.Strings(sub.Stores)
		sort.Strings(sub.Nodes)
		subs = append(subs, sub)
	}
	sort.Slice(subs, func(i, j int) bool {
		return subs[i].SourceTopics[0] < subs[j].SourceTopics[0]
	})
	for i, sub := range subs {
		sub.ID = i
	}
	t.subs = subs
	return nil
}

// SubTopologies returns the computed sub-topologies (after Build).
func (t *Topology) SubTopologies() []*SubTopology { return t.subs }

// SubTopologyFor returns the sub-topology consuming a topic, or nil.
func (t *Topology) SubTopologyFor(topic string) *SubTopology {
	for _, sub := range t.subs {
		if _, ok := sub.sourceByTopic[topic]; ok {
			return sub
		}
	}
	return nil
}

// Describe renders the topology like Kafka Streams' Topology#describe.
func (t *Topology) Describe() string {
	out := ""
	for _, sub := range t.subs {
		out += fmt.Sprintf("Sub-topology: %d\n", sub.ID)
		for _, name := range sub.Nodes {
			n := t.nodes[name]
			switch n.Type {
			case NodeSource:
				out += fmt.Sprintf("  Source: %s (topic: %s) --> %v\n", n.Name, n.Topic, n.children)
			case NodeProcessor:
				out += fmt.Sprintf("  Processor: %s (stores: %v) --> %v\n", n.Name, n.Stores, n.children)
			case NodeSink:
				out += fmt.Sprintf("  Sink: %s (topic: %s)\n", n.Name, n.Topic)
			}
		}
	}
	return out
}
