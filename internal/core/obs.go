package core

import (
	"kstreams/internal/obs"
	"kstreams/internal/transport"
)

// threadObs holds the stream-thread instrument handles, created once per
// thread from the network's registry. Every handle is nil-safe, so an
// uninstrumented network costs one nil check per operation.
type threadObs struct {
	reg            *obs.Registry
	commitLat      *obs.Histogram // one completed commit cycle, idle wakeups excluded
	restoreDur     *obs.Histogram // one changelog replay with at least one record
	restoreRecords *obs.Counter
	restoreBytes   *obs.Counter
	// standbyRecords counts committed changelog records applied to warm
	// replicas; mttr is the per-task takeover latency in milliseconds
	// (task creation through restore completion, DESIGN §13) — a standby
	// promotion replays only the tail, a cold start the full changelog.
	standbyRecords *obs.Counter
	mttr           *obs.Histogram
}

func newThreadObs(net *transport.Network) *threadObs {
	reg := net.Obs()
	return &threadObs{
		reg:            reg,
		commitLat:      reg.Histogram("stream_commit_latency"),
		restoreDur:     reg.Histogram("stream_restore_duration"),
		restoreRecords: reg.Counter("stream_restore_records_total"),
		restoreBytes:   reg.Counter("stream_restore_bytes_total"),
		standbyRecords: reg.Counter("standby_records_applied_total"),
		mttr:           reg.SizeHistogram("recovery_mttr_ms"),
	}
}

// standbyLag returns the per-task standby replication lag gauge:
// committed changelog records the warm replica has not applied yet.
func (o *threadObs) standbyLag(id TaskID) *obs.Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge("standby_lag_records", obs.L("task", id.String()))
}

// taskLag returns the per-task event-time lag gauge: the freshest event
// timestamp the thread has observed on any input minus the task's stream
// time. Timestamps are logical in this simulation, so the gauge is in
// event-time units, not wall-clock.
func (o *threadObs) taskLag(id TaskID) *obs.Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge("stream_task_lag", obs.L("task", id.String()))
}
