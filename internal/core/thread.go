package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/obs"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

// restorePolicy paces the changelog stabilize/replay polls during task
// restoration: tighter than the client default because restoration
// latency is on the rebalance critical path.
var restorePolicy = retry.Policy{Initial: time.Millisecond, Max: 10 * time.Millisecond}

// debugOn enables stall diagnostics via KSTREAMS_DEBUG=1.
var debugOn = os.Getenv("KSTREAMS_DEBUG") != ""

// ThreadConfig parameterizes a stream thread.
type ThreadConfig struct {
	AppID      string
	InstanceID string
	Index      int

	Net        *transport.Network
	Controller int32

	Guarantee      Guarantee
	CommitInterval time.Duration
	TxnTimeout     time.Duration

	Topology          *Topology
	Registry          *StoreRegistry
	Metrics           *AtomicMetrics
	PartitionsOf      func(topic string) int32
	ChangelogTopic    func(storeName string) string
	SourceTopics      []string
	RepartitionTopics map[string]bool

	// PollInterval is the idle sleep between empty polls.
	PollInterval time.Duration
	// SessionTimeout / HeartbeatInterval tune group liveness.
	SessionTimeout    time.Duration
	HeartbeatInterval time.Duration
	// PurgeRepartition enables delete-records on consumed repartition
	// topics after commits (paper Section 3.2). Default true.
	PurgeRepartition bool
	// NumStandbyReplicas is the number of warm standby replicas the
	// assignor places per task (on other instances); this thread also
	// runs a standby tailer for the replicas assigned to it. Zero
	// disables standbys (failover replays the full changelog).
	NumStandbyReplicas int
}

// Thread runs read-process-write cycles: poll records, process them
// through tasks in timestamp order, and commit on the commit interval —
// atomically under exactly-once (paper Section 4.2), flush-then-commit
// under at-least-once (Section 3.3).
type Thread struct {
	cfg  ThreadConfig
	name string

	consumer        *client.Consumer
	restoreConsumer *client.Consumer
	admin           *client.Admin

	producer      *client.Producer            // eos-v2 and alos
	taskProducers map[TaskID]*client.Producer // eos-v1

	tasks       map[TaskID]*Task
	inTxn       bool
	taskTxnOpen map[TaskID]bool

	// standby tails this thread's standby replicas (nil when disabled).
	standby *standbyManager
	// nameMu guards prevTasks, the task-name snapshot userData reports:
	// under the cooperative protocol the join (and thus userData) runs on
	// a background goroutine while the poll goroutine mutates th.tasks.
	nameMu    sync.Mutex
	prevTasks []string

	lastCommit    time.Time
	lastCommitted map[protocol.TopicPartition]int64
	clock         retry.Clock // the network fabric's shared time source

	obs *threadObs
	// maxEventTs is the freshest event timestamp observed on any input;
	// thread-confined, read at commit time for the per-task lag gauges.
	maxEventTs int64
	// cycleCommits counts finishCommit calls within the current commit
	// cycle so idle wakeups stay out of the latency histogram.
	cycleCommits int

	stopCh chan struct{}
	// killCh fires only on Kill (the simulated-crash path) and is threaded
	// into every client as its retry-cancel signal: a killed thread blocked
	// in a retry unblocks promptly instead of serving out the deadline. A
	// graceful Stop does not fire it, so the final commit can still run.
	killCh chan struct{}
	// stopOnce/killOnce own the closes of stopCh/killCh: Stop and Kill
	// can race (an app shutting down while the sim injects a crash), and
	// the old select-guarded close was not atomic — two racing callers
	// could both observe "not closed" and both close, panicking.
	stopOnce sync.Once
	killOnce sync.Once
	done     chan struct{}
	killed   atomic.Bool
	runErr   error
}

// NewThread builds a thread with its consumer and producer clients.
func NewThread(cfg ThreadConfig) (*Thread, error) {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Microsecond
	}
	name := fmt.Sprintf("%s-%s-%d", cfg.AppID, cfg.InstanceID, cfg.Index)
	th := &Thread{
		cfg:           cfg,
		name:          name,
		clock:         cfg.Net.Clock(),
		tasks:         make(map[TaskID]*Task),
		taskProducers: make(map[TaskID]*client.Producer),
		taskTxnOpen:   make(map[TaskID]bool),
		lastCommitted: make(map[protocol.TopicPartition]int64),
		stopCh:        make(chan struct{}),
		killCh:        make(chan struct{}),
		done:          make(chan struct{}),
	}
	th.obs = newThreadObs(cfg.Net)
	th.maxEventTs = -1
	iso := protocol.ReadUncommitted
	if cfg.Guarantee != AtLeastOnce {
		iso = protocol.ReadCommitted
	}
	th.consumer = client.NewConsumer(cfg.Net, client.ConsumerConfig{
		Controller:        cfg.Controller,
		Group:             cfg.AppID,
		ClientID:          name,
		Isolation:         iso,
		Reset:             client.ResetEarliest,
		SessionTimeout:    cfg.SessionTimeout,
		HeartbeatInterval: cfg.HeartbeatInterval,
		Assignor:          &StreamsAssignor{Topology: cfg.Topology, NumStandbys: cfg.NumStandbyReplicas},
		UserData:          th.userData,
		OnRevoked:         th.onRevoked,
		OnAssigned:        th.onAssigned,
		// Incremental rebalancing (DESIGN §13): unaffected tasks keep
		// processing through the generation bump; only moved partitions
		// are revoked, as a delta, after the new assignment arrives.
		Cooperative: true,
		Cancel:      th.killCh,
	})
	if cfg.NumStandbyReplicas > 0 {
		th.standby = newStandbyManager(cfg, th.killCh, th.obs)
	}
	th.restoreConsumer = client.NewConsumer(cfg.Net, client.ConsumerConfig{
		Controller: cfg.Controller,
		Isolation:  protocol.ReadCommitted,
		Reset:      client.ResetEarliest,
		Cancel:     th.killCh,
	})
	th.admin = client.NewAdmin(cfg.Net, cfg.Controller, th.killCh)
	switch cfg.Guarantee {
	case ExactlyOnceV2:
		p, err := client.NewProducer(cfg.Net, client.ProducerConfig{
			Controller:      cfg.Controller,
			TransactionalID: name,
			TxnTimeout:      cfg.TxnTimeout,
			Cancel:          th.killCh,
		})
		if err != nil {
			return nil, err
		}
		th.producer = p
	case AtLeastOnce:
		p, err := client.NewProducer(cfg.Net, client.ProducerConfig{Controller: cfg.Controller, Cancel: th.killCh})
		if err != nil {
			return nil, err
		}
		th.producer = p
	case ExactlyOnceV1:
		// Producers are created per task at assignment time.
	}
	return th, nil
}

// Name returns the thread's client id.
func (th *Thread) Name() string { return th.name }

// restoreRetry is restorePolicy on the thread's clock, so restoration
// backoff elapses in virtual time under simulation.
func (th *Thread) restoreRetry() retry.Policy {
	p := restorePolicy
	p.Clock = th.clock
	return p
}

// userData reports current task ownership (and standby replicas) for
// sticky assignment. It runs on the consumer's background join goroutine,
// so it reads the locked snapshot, never th.tasks directly.
func (th *Thread) userData() []byte {
	th.nameMu.Lock()
	names := append([]string(nil), th.prevTasks...)
	th.nameMu.Unlock()
	var standby []string
	if th.standby != nil {
		for _, id := range th.standby.TaskIDs() {
			standby = append(standby, id.String())
		}
	}
	return EncodeUserData(AssignorUserData{Instance: th.cfg.InstanceID, PrevTasks: names, PrevStandby: standby})
}

// snapshotTaskNames refreshes the snapshot userData reports; called after
// every th.tasks mutation on the poll goroutine.
func (th *Thread) snapshotTaskNames() {
	names := make([]string, 0, len(th.tasks))
	for id := range th.tasks {
		names = append(names, id.String())
	}
	th.nameMu.Lock()
	th.prevTasks = names
	th.nameMu.Unlock()
}

// Start launches the processing loop.
func (th *Thread) Start() {
	th.consumer.Subscribe(th.cfg.SourceTopics...)
	go th.run()
}

// signalStop fires the stop signal exactly once. Stop and Kill both
// route through it, so Thread.stopCh keeps a single closing function
// (chanown) and concurrent Stop/Kill cannot double-close.
func (th *Thread) signalStop() {
	th.stopOnce.Do(func() { close(th.stopCh) })
}

// Stop terminates the loop and waits for the final commit.
func (th *Thread) Stop() {
	th.signalStop()
	<-th.done
}

// Kill terminates the loop abruptly — no final commit, no group leave —
// simulating a crashed instance (paper Section 2.1 failure scenarios).
// In-flight transactions are left open for the coordinator to abort.
func (th *Thread) Kill() {
	th.killed.Store(true)
	th.killOnce.Do(func() { close(th.killCh) })
	th.signalStop()
	<-th.done
}

// Err returns the fatal error that stopped the thread, if any.
func (th *Thread) Err() error { return th.runErr }

func (th *Thread) run() {
	defer close(th.done)
	th.lastCommit = th.clock.Now()
	lastDebug := th.clock.Now()
	for {
		if debugOn && th.clock.Now().Sub(lastDebug) > time.Second {
			lastDebug = th.clock.Now()
			buf := 0
			pos := ""
			for id, t := range th.tasks {
				buf += t.Buffered()
				pos += fmt.Sprintf(" %s:%v", id, t.Positions())
			}
			fmt.Printf("[debug] thread %s: tasks=%d buffered=%d inTxn=%v commitAge=%v pos=%s assign=%v\n",
				th.name, len(th.tasks), buf, th.inTxn, th.clock.Now().Sub(th.lastCommit), pos, th.consumer.Assignment())
		}
		select {
		case <-th.stopCh:
			th.shutdown()
			return
		default:
		}
		msgs, err := th.consumer.Poll()
		if err != nil {
			if errors.Is(err, client.ErrClosed) {
				th.shutdown()
				return
			}
			// Back off through the clock, not a bare sleep, so Stop can
			// interrupt the wait instead of eating a full poll interval.
			select {
			case <-th.stopCh:
			case <-th.clock.After(th.cfg.PollInterval):
			}
			continue
		}
		for _, m := range msgs {
			sub := th.cfg.Topology.SubTopologyFor(m.TP.Topic)
			if sub == nil {
				continue
			}
			id := TaskID{SubTopology: sub.ID, Partition: m.TP.Partition}
			if t, ok := th.tasks[id]; ok {
				if m.Record.Timestamp > th.maxEventTs {
					th.maxEventTs = m.Record.Timestamp
				}
				t.AddRecords(m.TP, []client.Message{m})
			}
		}
		worked := false
		for _, t := range th.tasks {
			for t.Buffered() > 0 {
				ok, perr := t.ProcessOne()
				if perr != nil {
					if th.handleFatal(perr) {
						return
					}
					break
				}
				if ok {
					worked = true
				}
			}
		}
		if th.standby != nil {
			th.standby.poll()
		}
		// The periodic commit defers while a cooperative rebalance is in
		// flight: a commit against the old generation would fence (Illegal
		// Generation) and trigger a destructive abort-and-rejoin even though
		// nothing is wrong. onRevoked still commits at the protocol-safe
		// point, after the new generation is installed.
		if th.clock.Now().Sub(th.lastCommit) >= th.cfg.CommitInterval && !th.consumer.Rebalancing() {
			if err := th.commit(); err != nil {
				if debugOn {
					fmt.Printf("[debug] thread %s: commit error: %v\n", th.name, err)
				}
				if th.handleFatal(err) {
					return
				}
			}
		}
		if !worked && len(msgs) == 0 {
			select {
			case <-th.stopCh:
			case <-th.clock.After(th.cfg.PollInterval):
			}
		}
	}
}

// handleFatal reacts to a processing or commit error. Fencing-class errors
// mean this thread's tasks migrated: abort, wipe local state, and rejoin
// (Kafka Streams' TaskMigrated handling). It reports whether the thread
// must terminate.
func (th *Thread) handleFatal(err error) bool {
	if isFencingErr(err) {
		if debugOn {
			fmt.Printf("[debug] thread %s: fencing error, rejoining: %v\n", th.name, err)
		}
		th.abortAndRejoin()
		return false
	}
	th.runErr = err
	th.shutdown()
	return true
}

func isFencingErr(err error) bool {
	if errors.Is(err, client.ErrFenced) {
		return true
	}
	switch protocol.CodeOf(err) {
	case protocol.ErrIllegalGeneration, protocol.ErrUnknownMemberID, protocol.ErrRebalanceInProgress:
		return true
	}
	return false
}

// abortAndRejoin aborts in-flight transactions, wipes task state (the
// committed changelog is the only source of truth), recreates fenced
// producers, and rejoins the group.
func (th *Thread) abortAndRejoin() {
	switch th.cfg.Guarantee {
	case ExactlyOnceV2:
		if th.inTxn {
			_ = th.producer.AbortTxn() // best effort; fenced producers cannot
			th.inTxn = false
		}
	case ExactlyOnceV1:
		for id, open := range th.taskTxnOpen {
			if open {
				_ = th.taskProducers[id].AbortTxn() // best effort during recovery
				th.taskTxnOpen[id] = false
			}
		}
	}
	for id, t := range th.tasks {
		t.Close(false)
		delete(th.tasks, id)
	}
	if th.cfg.Guarantee == ExactlyOnceV2 {
		// Re-init the producer: a fresh epoch unfences it if the old one was
		// fenced (e.g. by a txn-timeout abort).
		th.producer.Close()
		if p, err := client.NewProducer(th.cfg.Net, client.ProducerConfig{
			Controller:      th.cfg.Controller,
			TransactionalID: th.name,
			TxnTimeout:      th.cfg.TxnTimeout,
			Cancel:          th.killCh,
		}); err == nil {
			th.producer = p
		}
	}
	for id, p := range th.taskProducers {
		p.Close()
		delete(th.taskProducers, id)
	}
	th.snapshotTaskNames()
	// The aborted transaction's consumed records were never committed:
	// rewind to the committed offsets or they would be skipped.
	th.consumer.ResetPositions()
	// Every task is gone, but under the cooperative protocol the rejoin
	// runs in the background while Poll keeps fetching the old assignment.
	// Pause the fetch until onAssigned rebuilds the tasks — consumed
	// records would otherwise be dropped on the floor with their positions
	// advanced, and the next commit would seal the gap (data loss).
	th.consumer.PauseFetch(true)
	th.consumer.Subscribe(th.cfg.SourceTopics...) // forces a rejoin
}

// onRevoked commits in-progress work before partitions are taken away.
// Under the cooperative protocol tps is a delta — only the partitions
// actually moving to another member — so unaffected tasks stay open and
// keep processing through the rebalance (DESIGN §13).
func (th *Thread) onRevoked(tps []protocol.TopicPartition) {
	clean := th.commit() == nil
	if !clean {
		// The failed commit leaves uncommitted input consumed: abort the
		// open transaction and rewind to committed offsets. The aborted
		// transaction spanned every task, so the delta no longer bounds the
		// damage — all tasks close unclean below.
		if th.cfg.Guarantee == ExactlyOnceV2 && th.inTxn {
			_ = th.producer.AbortTxn() // the rewind below restores consistency
			th.inTxn = false
		}
		if th.cfg.Guarantee == ExactlyOnceV1 {
			for id, open := range th.taskTxnOpen {
				if open {
					_ = th.taskProducers[id].AbortTxn() // the rewind below restores consistency
					th.taskTxnOpen[id] = false
				}
			}
		}
		th.consumer.ResetPositions()
	}
	if debugOn {
		fmt.Printf("[debug] thread %s: onRevoked tps=%v clean=%v gen=%d\n", th.name, tps, clean, th.consumer.Generation())
	}
	revoked := TasksFromAssignment(th.cfg.Topology, tps)
	for id, t := range th.tasks {
		if clean {
			if _, moving := revoked[id]; !moving {
				continue // retained task: survives the generation bump live
			}
		}
		t.Close(clean)
		delete(th.tasks, id)
		if p, ok := th.taskProducers[id]; ok {
			p.Close()
			delete(th.taskProducers, id)
		}
		delete(th.taskTxnOpen, id)
	}
	th.snapshotTaskNames()
}

// onAssigned builds tasks for the new assignment, restoring their stores
// from changelogs before processing resumes (paper Section 3.3: "an exact
// copy of the state is restored by replaying the corresponding changelog
// topics"). The delta argument is deliberately ignored: after a fencing
// recovery wiped every task the cooperative rejoin's delta is empty, so
// missing tasks must be rebuilt from the full assignment — the existing-
// task check below makes that idempotent for retained tasks.
func (th *Thread) onAssigned([]protocol.TopicPartition) {
	full := th.consumer.Assignment()
	if debugOn {
		fmt.Printf("[debug] thread %s: onAssigned full=%v gen=%d\n", th.name, full, th.consumer.Generation())
	}
	owned := make(map[protocol.TopicPartition]bool, len(full))
	for _, tp := range full {
		owned[tp] = true
	}
	for tp := range th.lastCommitted {
		if !owned[tp] {
			delete(th.lastCommitted, tp)
		}
	}
	for id := range TasksFromAssignment(th.cfg.Topology, full) {
		if _, exists := th.tasks[id]; exists {
			continue
		}
		takeoverStart := th.clock.Now()
		collector := th.collectorFor(id)
		t, err := NewTask(id, th.cfg.Topology.SubTopologies()[id.SubTopology], taskConfig{
			topology:       th.cfg.Topology,
			changelogTopic: th.cfg.ChangelogTopic,
			partitionsOf:   th.cfg.PartitionsOf,
			registry:       th.cfg.Registry,
			metrics:        th.cfg.Metrics,
			obsReg:         th.obs.reg,
		}, collector)
		if err != nil {
			th.runErr = err
			continue
		}
		if err := th.restoreTask(t); err != nil {
			// A restore interrupted by Stop/Kill is part of shutting down,
			// not a thread failure.
			select {
			case <-th.stopCh:
			default:
				th.runErr = err
			}
		}
		th.tasks[id] = t
		// MTTR (DESIGN §13): takeover latency from task creation through
		// restore completion. Detection time (session timeout) is excluded
		// by construction — this measures how fast state comes back once
		// the group has reacted, which is the axis standbys improve.
		th.obs.mttr.Observe(th.clock.Now().Sub(takeoverStart).Milliseconds())
		if th.cfg.Guarantee == ExactlyOnceV1 {
			// Eager init fences the task's previous owner immediately and
			// guarantees a producer exists for offset-only commits.
			if _, err := th.ensureTaskProducer(id); err != nil {
				th.runErr = err
			}
		}
	}
	th.snapshotTaskNames()
	th.consumer.PauseFetch(false) // tasks exist again; resume the flow
	th.updateStandbys()
}

// updateStandbys reconciles the standby tailer against the leader's latest
// standby placement, carried in the assignment user data.
func (th *Thread) updateStandbys() {
	if th.standby == nil {
		return
	}
	var ud AssignorUserData
	if b := th.consumer.AssignmentUserData(); len(b) > 0 {
		_ = json.Unmarshal(b, &ud)
	}
	ids := make([]TaskID, 0, len(ud.StandbyTasks))
	for _, s := range ud.StandbyTasks {
		if id, ok := ParseTaskID(s); ok {
			ids = append(ids, id)
		}
	}
	th.standby.setTasks(ids)
}

// ensureTaskProducer returns (creating if needed) the eos-v1 per-task
// transactional producer, whose id is appID-taskID so that a migrated
// task's new owner fences the old one.
//
//kslint:coldpath producer construction runs once per task assignment and is cached; steady-state sends reuse the cached producer
func (th *Thread) ensureTaskProducer(id TaskID) (*client.Producer, error) {
	if p, ok := th.taskProducers[id]; ok {
		return p, nil
	}
	p, err := client.NewProducer(th.cfg.Net, client.ProducerConfig{
		Controller:      th.cfg.Controller,
		TransactionalID: th.cfg.AppID + "-" + id.String(),
		TxnTimeout:      th.cfg.TxnTimeout,
		Cancel:          th.killCh,
	})
	if err != nil {
		return nil, err
	}
	th.taskProducers[id] = p
	return p, nil
}

func (th *Thread) collectorFor(id TaskID) Collector {
	if th.cfg.Guarantee != ExactlyOnceV1 {
		return &threadCollector{th: th}
	}
	return &taskCollector{th: th, id: id}
}

// restoreTask replays changelogs into the task's stores, resuming from the
// instance-local restored offset (sticky reuse).
func (th *Thread) restoreTask(t *Task) error {
	restoreOne := func(storeName, topic string, apply func(kb, vb []byte)) error {
		tp := protocol.TopicPartition{Topic: topic, Partition: t.id.Partition % th.cfg.PartitionsOf(topic)}
		from := th.cfg.Registry.RestoredOffset(t.id, storeName)
		// The previous owner's final transaction may still be completing
		// (markers in flight): wait until the changelog has no open
		// transaction, or the restore would miss its committed tail and
		// resume from newer offsets with stale state.
		var end int64
		stabilize := retry.New(th.restoreRetry(), retry.NewBudgetOn(th.clock, 30*time.Second), th.stopCh)
		for {
			lso, err := th.restoreConsumer.StableOffset(tp)
			if err != nil {
				return err
			}
			hw, err := th.restoreConsumer.EndOffset(tp)
			if err != nil {
				return err
			}
			if lso >= hw {
				end = lso
				break
			}
			if werr := stabilize.Wait(); werr != nil {
				return fmt.Errorf("core: changelog %s never stabilized (lso=%d hw=%d): %w", tp, lso, hw, werr)
			}
		}
		if from >= end {
			return nil
		}
		restoreStart := th.clock.Now()
		th.restoreConsumer.Assign(tp)
		th.restoreConsumer.Seek(tp, from)
		drain := retry.New(th.restoreRetry(), retry.NewBudgetOn(th.clock, 30*time.Second), th.stopCh)
		for th.restoreConsumer.Position(tp) < end {
			msgs, err := th.restoreConsumer.Poll()
			if err != nil {
				return err
			}
			for _, m := range msgs {
				apply(m.Record.Key, m.Record.Value)
				th.cfg.Metrics.restores.Add(1)
				th.obs.restoreRecords.Inc()
				th.obs.restoreBytes.Add(int64(len(m.Record.Key) + len(m.Record.Value)))
			}
			if len(msgs) == 0 {
				if werr := drain.Wait(); werr != nil {
					return fmt.Errorf("core: restoring %s from %s stalled: %w", storeName, tp, werr)
				}
			}
		}
		th.cfg.Registry.SetRestoredOffset(t.id, storeName, th.restoreConsumer.Position(tp))
		th.obs.restoreDur.ObserveSince(restoreStart)
		if debugOn {
			fmt.Printf("[debug] thread %s: restored %s %s from=%d end=%d\n", th.name, t.id, tp, from, end)
		}
		return nil
	}
	for name, kv := range t.kvs {
		if kv.changelogTopic == "" {
			continue
		}
		if err := restoreOne(name, kv.changelogTopic, kv.restore); err != nil {
			return err
		}
	}
	for name, w := range t.windows {
		if w.changelogTopic == "" {
			continue
		}
		if err := restoreOne(name, w.changelogTopic, w.restore); err != nil {
			return err
		}
	}
	return nil
}

// attachTrace points every client the commit path touches at tr (nil
// detaches), so the broker round-trips of one commit land in one trace.
func (th *Thread) attachTrace(tr *obs.Trace) {
	if th.producer != nil {
		th.producer.AttachTrace(tr)
	}
	for _, p := range th.taskProducers {
		p.AttachTrace(tr)
	}
	th.consumer.AttachTrace(tr)
}

// commit runs one commit cycle per the configured guarantee.
func (th *Thread) commit() error {
	start := th.clock.Now()
	tr := obs.NewTrace(th.name + "-commit")
	th.attachTrace(tr)
	th.cycleCommits = 0
	defer func() {
		th.attachTrace(nil)
		th.lastCommit = th.clock.Now()
		if th.cycleCommits > 0 {
			tr.Finish()
			th.obs.commitLat.ObserveSince(start)
			th.obs.reg.RecordTrace(tr)
		}
	}()
	for _, t := range th.tasks {
		if err := t.FlushStores(); err != nil {
			return err
		}
	}
	switch th.cfg.Guarantee {
	case ExactlyOnceV2:
		return th.commitEOSv2()
	case ExactlyOnceV1:
		return th.commitEOSv1()
	default:
		return th.commitALOS()
	}
}

func (th *Thread) newOffsets(only *TaskID) []protocol.OffsetEntry {
	var out []protocol.OffsetEntry
	for id, t := range th.tasks {
		if only != nil && id != *only {
			continue
		}
		for tp, off := range t.Positions() {
			if th.lastCommitted[tp] != off {
				out = append(out, protocol.OffsetEntry{TP: tp, Offset: off})
			}
		}
	}
	return out
}

func (th *Thread) commitEOSv2() error {
	offsets := th.newOffsets(nil)
	if !th.inTxn && len(offsets) == 0 {
		return nil
	}
	if !th.inTxn {
		if err := th.producer.BeginTxn(); err != nil {
			return err
		}
		th.inTxn = true
	}
	if len(offsets) > 0 {
		if err := th.producer.SendOffsetsToTxn(th.cfg.AppID, offsets,
			th.consumer.MemberID(), th.consumer.Generation()); err != nil {
			return err
		}
	}
	if err := th.producer.CommitTxn(); err != nil {
		return err
	}
	th.inTxn = false
	th.finishCommit(offsets)
	return nil
}

func (th *Thread) commitEOSv1() error {
	for id, t := range th.tasks {
		offsets := th.newOffsets(&id)
		open := th.taskTxnOpen[id]
		if !open && len(offsets) == 0 {
			continue
		}
		prod := th.taskProducers[id]
		if prod == nil {
			continue
		}
		if !open {
			if err := prod.BeginTxn(); err != nil {
				return err
			}
			th.taskTxnOpen[id] = true
		}
		if len(offsets) > 0 {
			if err := prod.SendOffsetsToTxn(th.cfg.AppID, offsets,
				th.consumer.MemberID(), th.consumer.Generation()); err != nil {
				return err
			}
		}
		if err := prod.CommitTxn(); err != nil {
			return err
		}
		th.taskTxnOpen[id] = false
		th.finishCommit(offsets)
		_ = t
	}
	return nil
}

func (th *Thread) commitALOS() error {
	// Flush outputs first, then commit positions: the at-least-once order
	// of paper Section 3.3 (a crash in between reprocesses records).
	if err := th.producer.Flush(); err != nil {
		return err
	}
	offsets := th.newOffsets(nil)
	if len(offsets) == 0 {
		return nil
	}
	if err := th.consumer.Commit(offsets); err != nil {
		return err
	}
	th.finishCommit(offsets)
	return nil
}

func (th *Thread) finishCommit(offsets []protocol.OffsetEntry) {
	for _, e := range offsets {
		th.lastCommitted[e.TP] = e.Offset
	}
	for _, t := range th.tasks {
		t.MarkClean()
	}
	th.cycleCommits++
	for id, t := range th.tasks {
		if st := t.StreamTime(); st >= 0 && th.maxEventTs >= 0 {
			th.obs.taskLag(id).Set(th.maxEventTs - st)
		}
		// Completeness view (DESIGN §11): the watermark gauge is the task's
		// event-time frontier; its lag against the freshest timestamp the
		// thread has seen on any input is how far behind event time this
		// task's output is. Timestamps are milliseconds, so lag is in ms.
		if wm := t.Watermark(); wm >= 0 {
			t.tobs.watermark.Set(wm)
			if th.maxEventTs >= 0 {
				lag := th.maxEventTs - wm
				if lag < 0 {
					lag = 0
				}
				t.tobs.lag.Set(lag)
				t.tobs.lagHist.Observe(lag)
			}
		}
	}
	th.cfg.Metrics.AddCommit()
	if th.cfg.PurgeRepartition {
		for _, e := range offsets {
			if th.cfg.RepartitionTopics[e.TP.Topic] {
				_ = th.admin.DeleteRecords(e.TP, e.Offset) // best effort; purge retries next commit
			}
		}
	}
}

// shutdown commits, closes tasks, and releases clients. A killed thread
// skips the commit and abandons its tasks unclean.
func (th *Thread) shutdown() {
	clean := false
	if !th.killed.Load() {
		clean = th.commit() == nil
	}
	for id, t := range th.tasks {
		t.Close(clean)
		delete(th.tasks, id)
	}
	if th.standby != nil {
		th.standby.close(th.killed.Load())
	}
	if th.killed.Load() {
		// Drop off the network without leaving the group: the session
		// timeout (or a replacement's join) triggers the rebalance, and the
		// transaction timeout aborts any open transaction.
		th.consumer.Abandon()
		th.restoreConsumer.Abandon()
	} else {
		th.consumer.Close()
		th.restoreConsumer.Close()
	}
	th.admin.Close()
	if th.producer != nil {
		th.producer.Close()
	}
	for _, p := range th.taskProducers {
		p.Close()
	}
}

// TaskIDs returns the thread's current task set (for tests/tools).
func (th *Thread) TaskIDs() []TaskID {
	out := make([]TaskID, 0, len(th.tasks))
	for id := range th.tasks {
		out = append(out, id)
	}
	return out
}

// --- collectors ---

type threadCollector struct{ th *Thread }

func (c *threadCollector) Send(topic string, partition int32, key, value []byte, ts int64) error {
	th := c.th
	if th.cfg.Guarantee == ExactlyOnceV2 && !th.inTxn {
		if err := th.producer.BeginTxn(); err != nil {
			return err
		}
		th.inTxn = true
	}
	return th.producer.SendTo(protocol.TopicPartition{Topic: topic, Partition: partition},
		protocol.Record{Key: key, Value: value, Timestamp: ts})
}

type taskCollector struct {
	th *Thread
	id TaskID
}

func (c *taskCollector) Send(topic string, partition int32, key, value []byte, ts int64) error {
	th := c.th
	prod, err := th.ensureTaskProducer(c.id)
	if err != nil {
		return err
	}
	if !th.taskTxnOpen[c.id] {
		if err := prod.BeginTxn(); err != nil {
			return err
		}
		th.taskTxnOpen[c.id] = true
	}
	return prod.SendTo(protocol.TopicPartition{Topic: topic, Partition: partition},
		protocol.Record{Key: key, Value: value, Timestamp: ts})
}
