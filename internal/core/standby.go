package core

import (
	"sync"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
	"kstreams/internal/retry"
	"kstreams/internal/store"
)

// standbyStore is one changelog partition a standby task tails.
type standbyStore struct {
	id       TaskID
	name     string
	spec     *StoreSpec
	tp       protocol.TopicPartition
	windowed bool
}

// standbyManager keeps warm replicas of the tasks the assignor placed here
// as standbys: it continuously tails their changelog partitions
// (read-committed, so replicas only ever hold committed state) into
// registry entries marked standby, advancing each entry's restoredOffset.
// When the active task later lands on this instance, acquire promotes the
// entry and the restore replays only the tail past restoredOffset instead
// of the whole changelog — failover at tail-replay cost.
//
// The manager owns no goroutine: the thread's run loop drives poll(),
// rate-limited to half the commit interval, because the changelog only
// advances when the active task commits — tailing faster buys nothing.
type standbyManager struct {
	cfg      ThreadConfig
	registry *StoreRegistry
	consumer *client.Consumer
	clock    retry.Clock
	obs      *threadObs
	interval time.Duration

	// tasks is the current standby set; guarded because userData reads it
	// from the consumer's background join goroutine while the poll
	// goroutine updates it.
	mu    sync.Mutex
	tasks map[TaskID][]standbyStore

	// byTP, lso, and lastPoll are confined to the thread's poll goroutine.
	byTP     map[protocol.TopicPartition]standbyStore
	lso      map[protocol.TopicPartition]int64
	lastPoll time.Time
}

func newStandbyManager(cfg ThreadConfig, kill <-chan struct{}, tobs *threadObs) *standbyManager {
	sm := &standbyManager{
		cfg:      cfg,
		registry: cfg.Registry,
		clock:    cfg.Net.Clock(),
		obs:      tobs,
		tasks:    make(map[TaskID][]standbyStore),
		byTP:     make(map[protocol.TopicPartition]standbyStore),
		lso:      make(map[protocol.TopicPartition]int64),
	}
	sm.interval = cfg.CommitInterval / 2
	if sm.interval < cfg.PollInterval {
		sm.interval = cfg.PollInterval
	}
	sm.consumer = client.NewConsumer(cfg.Net, client.ConsumerConfig{
		Controller:   cfg.Controller,
		Isolation:    protocol.ReadCommitted,
		Reset:        client.ResetEarliest,
		Cancel:       kill,
		ObserveFetch: sm.observeFetch,
	})
	return sm
}

// observeFetch records each changelog partition's last stable offset; the
// standby lag gauge is LSO minus tail position. Runs inside the manager's
// own consumer.Poll, on the thread's poll goroutine.
func (sm *standbyManager) observeFetch(tp protocol.TopicPartition, _, lso, _ int64) {
	sm.lso[tp] = lso
}

// TaskIDs snapshots the standby set (sorted order not needed: consumers
// are the assignor's prev-standby stickiness and tests).
func (sm *standbyManager) TaskIDs() []TaskID {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	out := make([]TaskID, 0, len(sm.tasks))
	for id := range sm.tasks {
		out = append(out, id)
	}
	return out
}

// storesFor enumerates a task's changelogged stores.
func (sm *standbyManager) storesFor(id TaskID) []standbyStore {
	subs := sm.cfg.Topology.SubTopologies()
	if id.SubTopology < 0 || id.SubTopology >= len(subs) {
		return nil
	}
	var out []standbyStore
	for _, storeName := range subs[id.SubTopology].Stores {
		spec, ok := sm.cfg.Topology.specs[storeName]
		if !ok || !spec.Changelog {
			continue
		}
		topic := sm.cfg.ChangelogTopic(storeName)
		n := sm.cfg.PartitionsOf(topic)
		if n <= 0 {
			continue
		}
		out = append(out, standbyStore{
			id:       id,
			name:     storeName,
			spec:     spec,
			tp:       protocol.TopicPartition{Topic: topic, Partition: id.Partition % n},
			windowed: spec.Windowed,
		})
	}
	return out
}

// setTasks reconciles the standby set against the assignor's latest
// standby list: dropped tasks demote their entries back to sticky caches,
// new tasks register standby entries and start tailing from whatever
// restoredOffset the registry already holds (sticky reuse).
func (sm *standbyManager) setTasks(ids []TaskID) {
	want := make(map[TaskID]bool, len(ids))
	for _, id := range ids {
		want[id] = true
	}
	sm.mu.Lock()
	for id := range sm.tasks {
		if !want[id] {
			delete(sm.tasks, id)
			sm.registry.releaseStandby(id)
		}
	}
	sm.mu.Unlock()
	for _, id := range ids {
		sm.mu.Lock()
		_, have := sm.tasks[id]
		sm.mu.Unlock()
		if have {
			continue
		}
		stores := sm.storesFor(id)
		ok := len(stores) > 0
		for _, st := range stores {
			if !sm.registry.acquireStandby(st.id, st.name, st.spec) {
				// The task is actively owned on this instance; a standby
				// here would race the owner and replicate nothing.
				ok = false
			}
		}
		if !ok {
			continue
		}
		sm.mu.Lock()
		sm.tasks[id] = stores
		sm.mu.Unlock()
	}
	sm.rebuildAssignment()
}

// rebuildAssignment points the tail consumer at the current standby
// changelog partitions; newly added partitions seek to the registry's
// restored offset so a sticky warm entry resumes instead of re-reading.
func (sm *standbyManager) rebuildAssignment() {
	sm.mu.Lock()
	var all []standbyStore
	for _, stores := range sm.tasks {
		all = append(all, stores...)
	}
	sm.mu.Unlock()
	byTP := make(map[protocol.TopicPartition]standbyStore, len(all))
	tps := make([]protocol.TopicPartition, 0, len(all))
	for _, st := range all {
		if _, dup := byTP[st.tp]; dup {
			continue
		}
		byTP[st.tp] = st
		tps = append(tps, st.tp)
	}
	sm.consumer.Assign(tps...)
	for _, st := range all {
		if sm.consumer.Position(st.tp) < 0 {
			sm.consumer.Seek(st.tp, sm.registry.RestoredOffset(st.id, st.name))
		}
	}
	sm.byTP = byTP
}

// drop removes one task locally (its entry was promoted out from under
// the tailer) without demoting registry state.
func (sm *standbyManager) drop(id TaskID) {
	sm.mu.Lock()
	_, ok := sm.tasks[id]
	delete(sm.tasks, id)
	sm.mu.Unlock()
	if ok {
		sm.rebuildAssignment()
	}
}

// poll runs one rate-limited tail round: fetch committed changelog
// records, apply them batch-wise under the registry's standby apply lock,
// advance restoredOffset, and refresh the lag gauges.
func (sm *standbyManager) poll() {
	now := sm.clock.Now()
	if now.Sub(sm.lastPoll) < sm.interval {
		return
	}
	sm.lastPoll = now
	if len(sm.byTP) == 0 {
		return
	}
	msgs, err := sm.consumer.Poll()
	if err != nil {
		return
	}
	var dropped []TaskID
	for i := 0; i < len(msgs); {
		tp := msgs[i].TP
		j := i
		for j < len(msgs) && msgs[j].TP == tp {
			j++
		}
		st, ok := sm.byTP[tp]
		if !ok {
			i = j
			continue
		}
		e, ok := sm.registry.beginStandbyApply(st.id, st.name)
		if !ok {
			// Promoted (or gone): stop tailing this task.
			dropped = append(dropped, st.id)
			i = j
			continue
		}
		for _, m := range msgs[i:j] {
			applyStandbyRecord(e, st.windowed, m.Record.Key, m.Record.Value)
			sm.obs.standbyRecords.Inc()
		}
		// restoredOffset is written under applyMu; the promoting acquire
		// barriers on applyMu before the restore reads it, so the offset
		// and the store contents move as one consistent changelog prefix.
		e.restoredOffset = sm.consumer.Position(tp)
		sm.registry.endStandbyApply(e)
		i = j
	}
	for _, id := range dropped {
		sm.drop(id)
	}
	sm.updateLag()
}

// updateLag publishes per-task standby lag: committed changelog records
// not yet applied to the replica, summed over the task's stores.
func (sm *standbyManager) updateLag() {
	sm.mu.Lock()
	defer sm.mu.Unlock()
	for id, stores := range sm.tasks {
		total := int64(0)
		for _, st := range stores {
			lso, ok := sm.lso[st.tp]
			if !ok {
				continue
			}
			if pos := sm.consumer.Position(st.tp); pos >= 0 && lso > pos {
				total += lso - pos
			}
		}
		sm.obs.standbyLag(id).Set(total)
	}
}

// close releases the tail consumer. Standby entries stay in the registry
// as clean sticky caches — exactly the state a restart resumes from.
func (sm *standbyManager) close(killed bool) {
	if killed {
		sm.consumer.Abandon()
		return
	}
	sm.consumer.Close()
}

// applyStandbyRecord mirrors TaskKV.restore / TaskWindow.restore onto a
// bare registry entry: committed changelog records go straight to the
// inner store — no cache, no changelog re-emission, no listeners.
func applyStandbyRecord(e *registryEntry, windowed bool, kb, vb []byte) {
	if windowed {
		key, start, ok := store.DecodeWindowKey(kb)
		if !ok {
			return
		}
		e.win.Put(key, start, vb)
		return
	}
	if vb == nil {
		e.kv.Delete(kb)
		return
	}
	e.kv.Put(kb, vb)
}
