package core

import (
	"encoding/json"
	"sort"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
)

// AssignorUserData travels inside the consumer-group join protocol: each
// Streams thread reports its instance and previously-owned tasks so the
// leader can assign stickily, minimizing state migration
// (paper Section 3.3).
type AssignorUserData struct {
	Instance  string   `json:"instance"`
	PrevTasks []string `json:"prev_tasks"`
}

// EncodeUserData serializes assignor user data.
func EncodeUserData(d AssignorUserData) []byte {
	b, _ := json.Marshal(d)
	return b
}

// StreamsAssignor assigns tasks (not raw partitions) to group members: all
// source partitions of one task always land on the same member. It is
// sticky (previous owners keep their tasks when capacity allows) and
// balances task counts across members.
type StreamsAssignor struct {
	Topology *Topology
}

// Name implements client.Assignor.
func (a *StreamsAssignor) Name() string { return "streams" }

// Assign implements client.Assignor; it runs on the group leader.
func (a *StreamsAssignor) Assign(members []protocol.JoinGroupMember, partitionsOf func(string) int32) (map[string][]protocol.TopicPartition, map[string][]byte) {
	// Enumerate all tasks from the topology and live partition counts.
	var tasks []TaskID
	for _, sub := range a.Topology.SubTopologies() {
		n := int32(0)
		for _, topic := range sub.SourceTopics {
			if p := partitionsOf(topic); p > n {
				n = p
			}
		}
		for p := int32(0); p < n; p++ {
			tasks = append(tasks, TaskID{SubTopology: sub.ID, Partition: p})
		}
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].SubTopology != tasks[j].SubTopology {
			return tasks[i].SubTopology < tasks[j].SubTopology
		}
		return tasks[i].Partition < tasks[j].Partition
	})
	sort.Slice(members, func(i, j int) bool { return members[i].MemberID < members[j].MemberID })

	prevOwner := make(map[string]string) // task string -> member id
	for _, m := range members {
		var ud AssignorUserData
		if err := json.Unmarshal(m.UserData, &ud); err != nil {
			continue
		}
		for _, t := range ud.PrevTasks {
			if _, taken := prevOwner[t]; !taken {
				prevOwner[t] = m.MemberID
			}
		}
	}

	capacity := (len(tasks) + len(members) - 1) / len(members)
	assigned := make(map[string][]TaskID, len(members))
	memberSet := make(map[string]bool, len(members))
	for _, m := range members {
		memberSet[m.MemberID] = true
		assigned[m.MemberID] = nil
	}

	// Sticky pass: previous owners keep their tasks up to capacity.
	var unplaced []TaskID
	for _, t := range tasks {
		owner, ok := prevOwner[t.String()]
		if ok && memberSet[owner] && len(assigned[owner]) < capacity {
			assigned[owner] = append(assigned[owner], t)
			continue
		}
		unplaced = append(unplaced, t)
	}
	// Balance pass: remaining tasks go to the least-loaded member
	// (deterministic order).
	for _, t := range unplaced {
		best := ""
		for _, m := range members {
			if best == "" || len(assigned[m.MemberID]) < len(assigned[best]) {
				best = m.MemberID
			}
		}
		assigned[best] = append(assigned[best], t)
	}

	// Translate tasks to partitions and echo the task list as user data.
	outParts := make(map[string][]protocol.TopicPartition, len(members))
	outData := make(map[string][]byte, len(members))
	for mid, ts := range assigned {
		var tps []protocol.TopicPartition
		var names []string
		for _, t := range ts {
			names = append(names, t.String())
			sub := a.Topology.SubTopologies()[t.SubTopology]
			for _, topic := range sub.SourceTopics {
				tps = append(tps, protocol.TopicPartition{Topic: topic, Partition: t.Partition})
			}
		}
		outParts[mid] = tps
		outData[mid], _ = json.Marshal(AssignorUserData{PrevTasks: names})
	}
	return outParts, outData
}

// TasksFromAssignment groups a consumer's partition assignment back into
// task ids using the topology.
func TasksFromAssignment(t *Topology, tps []protocol.TopicPartition) map[TaskID][]protocol.TopicPartition {
	out := make(map[TaskID][]protocol.TopicPartition)
	for _, tp := range tps {
		sub := t.SubTopologyFor(tp.Topic)
		if sub == nil {
			continue
		}
		id := TaskID{SubTopology: sub.ID, Partition: tp.Partition}
		out[id] = append(out[id], tp)
	}
	return out
}

var _ client.Assignor = (*StreamsAssignor)(nil)
