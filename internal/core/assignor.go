package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
)

// AssignorUserData travels inside the consumer-group join protocol: each
// Streams thread reports its instance and previously-owned tasks so the
// leader can assign stickily, minimizing state migration
// (paper Section 3.3).
type AssignorUserData struct {
	Instance  string   `json:"instance"`
	PrevTasks []string `json:"prev_tasks"`
	// PrevStandby reports the tasks the thread currently tails as warm
	// standbys; the leader prefers re-placing a standby where one already
	// exists, and a member whose active owner died is promoted in place.
	PrevStandby []string `json:"prev_standby,omitempty"`
	// StandbyTasks is leader→member only: the standby replicas this
	// member must tail after the rebalance.
	StandbyTasks []string `json:"standby_tasks,omitempty"`
}

// EncodeUserData serializes assignor user data.
func EncodeUserData(d AssignorUserData) []byte {
	b, _ := json.Marshal(d)
	return b
}

// StreamsAssignor assigns tasks (not raw partitions) to group members: all
// source partitions of one task always land on the same member. It is
// sticky (previous owners keep their tasks when capacity allows) and
// balances task counts across members.
type StreamsAssignor struct {
	Topology *Topology
	// NumStandbys is the number of warm standby replicas to place per
	// task, each on a member of a *different instance* than the active
	// owner (a standby on the same instance shares the registry — and the
	// fault domain — with the active, so it would add nothing).
	NumStandbys int
}

// Name implements client.Assignor.
func (a *StreamsAssignor) Name() string { return "streams" }

// Assign implements client.Assignor; it runs on the group leader.
func (a *StreamsAssignor) Assign(members []protocol.JoinGroupMember, partitionsOf func(string) int32) (map[string][]protocol.TopicPartition, map[string][]byte) {
	// Enumerate all tasks from the topology and live partition counts.
	var tasks []TaskID
	for _, sub := range a.Topology.SubTopologies() {
		n := int32(0)
		for _, topic := range sub.SourceTopics {
			if p := partitionsOf(topic); p > n {
				n = p
			}
		}
		for p := int32(0); p < n; p++ {
			tasks = append(tasks, TaskID{SubTopology: sub.ID, Partition: p})
		}
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].SubTopology != tasks[j].SubTopology {
			return tasks[i].SubTopology < tasks[j].SubTopology
		}
		return tasks[i].Partition < tasks[j].Partition
	})
	sort.Slice(members, func(i, j int) bool { return members[i].MemberID < members[j].MemberID })

	prevOwner := make(map[string]string)     // task string -> member id
	prevStandby := make(map[string][]string) // task string -> member ids tailing it
	instance := make(map[string]string)      // member id -> instance
	for _, m := range members {
		var ud AssignorUserData
		if err := json.Unmarshal(m.UserData, &ud); err != nil {
			continue
		}
		instance[m.MemberID] = ud.Instance
		for _, t := range ud.PrevTasks {
			if _, taken := prevOwner[t]; !taken {
				prevOwner[t] = m.MemberID
			}
		}
		for _, t := range ud.PrevStandby {
			prevStandby[t] = append(prevStandby[t], m.MemberID)
		}
	}

	capacity := (len(tasks) + len(members) - 1) / len(members)
	assigned := make(map[string][]TaskID, len(members))
	memberSet := make(map[string]bool, len(members))
	for _, m := range members {
		memberSet[m.MemberID] = true
		assigned[m.MemberID] = nil
	}

	// Sticky pass: previous owners keep their tasks up to capacity.
	var unplaced []TaskID
	for _, t := range tasks {
		owner, ok := prevOwner[t.String()]
		if ok && memberSet[owner] && len(assigned[owner]) < capacity {
			assigned[owner] = append(assigned[owner], t)
			continue
		}
		// Promotion stickiness: the previous owner is gone (or full), but
		// a member tailing the task as a standby holds a warm copy of its
		// state — placing the active there turns failover into a tail
		// replay instead of a full changelog restore. prevStandby lists
		// are built in sorted member order, so the choice is deterministic.
		promoted := false
		for _, sb := range prevStandby[t.String()] {
			if sb != owner && memberSet[sb] && len(assigned[sb]) < capacity {
				assigned[sb] = append(assigned[sb], t)
				promoted = true
				break
			}
		}
		if promoted {
			continue
		}
		unplaced = append(unplaced, t)
	}
	// Balance pass: remaining tasks go to the least-loaded member
	// (deterministic order).
	for _, t := range unplaced {
		best := ""
		for _, m := range members {
			if best == "" || len(assigned[m.MemberID]) < len(assigned[best]) {
				best = m.MemberID
			}
		}
		assigned[best] = append(assigned[best], t)
	}

	// Standby pass: each task gets up to NumStandbys warm replicas, every
	// one on a different instance than the active owner (and than each
	// other). Members already tailing the task keep their standby; the
	// rest goes to the least-standby-loaded eligible member.
	standbys := make(map[string][]TaskID, len(members))
	if a.NumStandbys > 0 && len(members) > 1 {
		activeOf := make(map[string]string, len(tasks))
		for mid, ts := range assigned {
			for _, t := range ts {
				activeOf[t.String()] = mid
			}
		}
		for _, t := range tasks {
			active := activeOf[t.String()]
			placed := map[string]bool{active: true}
			placedInst := map[string]bool{instance[active]: true}
			want := a.NumStandbys
			pick := func(mid string) {
				if want == 0 || placed[mid] || placedInst[instance[mid]] {
					return
				}
				standbys[mid] = append(standbys[mid], t)
				placed[mid] = true
				placedInst[instance[mid]] = true
				want--
			}
			for _, sb := range prevStandby[t.String()] {
				if memberSet[sb] {
					pick(sb)
				}
			}
			for want > 0 {
				best := ""
				for _, m := range members {
					mid := m.MemberID
					if placed[mid] || placedInst[instance[mid]] {
						continue
					}
					if best == "" || len(standbys[mid]) < len(standbys[best]) {
						best = mid
					}
				}
				if best == "" {
					break // no instance left to host another replica
				}
				pick(best)
			}
		}
	}

	// Translate tasks to partitions and echo the task lists as user data.
	outParts := make(map[string][]protocol.TopicPartition, len(members))
	outData := make(map[string][]byte, len(members))
	for mid, ts := range assigned {
		var tps []protocol.TopicPartition
		var names []string
		for _, t := range ts {
			names = append(names, t.String())
			sub := a.Topology.SubTopologies()[t.SubTopology]
			for _, topic := range sub.SourceTopics {
				tps = append(tps, protocol.TopicPartition{Topic: topic, Partition: t.Partition})
			}
		}
		var standbyNames []string
		for _, t := range standbys[mid] {
			standbyNames = append(standbyNames, t.String())
		}
		outParts[mid] = tps
		outData[mid], _ = json.Marshal(AssignorUserData{PrevTasks: names, StandbyTasks: standbyNames})
	}
	return outParts, outData
}

// ParseTaskID inverts TaskID.String (the "sub_partition" form used in
// assignor user data); ok is false for malformed input.
func ParseTaskID(s string) (TaskID, bool) {
	var sub, part int
	if _, err := fmt.Sscanf(s, "%d_%d", &sub, &part); err != nil {
		return TaskID{}, false
	}
	return TaskID{SubTopology: sub, Partition: int32(part)}, true
}

// TasksFromAssignment groups a consumer's partition assignment back into
// task ids using the topology.
func TasksFromAssignment(t *Topology, tps []protocol.TopicPartition) map[TaskID][]protocol.TopicPartition {
	out := make(map[TaskID][]protocol.TopicPartition)
	for _, tp := range tps {
		sub := t.SubTopologyFor(tp.Topic)
		if sub == nil {
			continue
		}
		id := TaskID{SubTopology: sub.ID, Partition: tp.Partition}
		out[id] = append(out[id], tp)
	}
	return out
}

var _ client.Assignor = (*StreamsAssignor)(nil)
