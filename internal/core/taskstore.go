package core

import (
	"kstreams/internal/store"
)

// TaskKV is a task-scoped key-value store: serdes on top of a byte store,
// optional write-back caching, and changelog capture. Every write is
// (eventually) an append to the store's changelog topic, making the store
// a disposable materialized view of that log (paper Section 4).
type TaskKV struct {
	task *Task
	spec *StoreSpec

	inner store.KV
	cache *store.CachingKV

	changelogTopic string

	// flushListener receives consolidated updates when the cache flushes
	// (or immediately, uncached); operators use it to forward downstream.
	flushListener func(keyBytes, newBytes, oldBytes []byte, ts int64)
}

// SetFlushListener registers the downstream-forwarding hook.
func (s *TaskKV) SetFlushListener(fn func(keyBytes, newBytes, oldBytes []byte, ts int64)) {
	s.flushListener = fn
}

// Spec returns the store's declaration.
func (s *TaskKV) Spec() *StoreSpec { return s.spec }

// Get returns the decoded value for a key.
func (s *TaskKV) Get(key any) (any, bool) {
	kb := s.spec.KeySerde.Encode(key)
	var vb []byte
	var ok bool
	if s.cache != nil {
		vb, ok = s.cache.Get(kb)
	} else {
		vb, ok = s.inner.Get(kb)
	}
	if !ok || vb == nil {
		return nil, false
	}
	return s.spec.ValSerde.Decode(vb), true
}

// Put stores a value (nil deletes). Uncached stores emit the update (to
// the changelog and flush listener) immediately; cached stores defer and
// consolidate until Flush.
func (s *TaskKV) Put(key, value any, ts int64) {
	kb := s.spec.KeySerde.Encode(key)
	var vb []byte
	if value != nil {
		vb = s.spec.ValSerde.Encode(value)
	}
	if s.cache != nil {
		s.cache.Put(kb, vb, ts)
		return
	}
	old, _ := s.inner.Get(kb)
	s.inner.Put(kb, vb)
	s.emit(kb, vb, old, ts)
}

// Delete removes a key.
func (s *TaskKV) Delete(key any, ts int64) { s.Put(key, nil, ts) }

// Len returns the number of live keys (committed plus dirty is not
// distinguished; cached stores report the inner store's size).
func (s *TaskKV) Len() int { return s.inner.Len() }

// Range iterates decoded entries in key order (inner store only; cached
// dirty entries are not visible until flush).
func (s *TaskKV) Range(fn func(key, value any) bool) {
	for _, e := range s.inner.Range(nil, nil) {
		if !fn(s.spec.KeySerde.Decode(e.Key), s.spec.ValSerde.Decode(e.Value)) {
			return
		}
	}
}

// Flush pushes dirty cached entries to the inner store, the changelog, and
// the flush listener. Called by the task at commit time.
func (s *TaskKV) Flush() {
	if s.cache == nil {
		return
	}
	s.cache.Flush(func(e store.DirtyEntry) {
		s.emit(e.Key, e.Value, e.OldValue, e.Ts)
	})
}

func (s *TaskKV) emit(kb, vb, old []byte, ts int64) {
	if s.changelogTopic != "" {
		s.task.logChange(s.changelogTopic, kb, vb, ts)
	}
	if s.flushListener != nil {
		s.flushListener(kb, vb, old, ts)
	}
}

// restore applies one changelog record directly to the inner store,
// bypassing cache, changelog, and listeners.
func (s *TaskKV) restore(kb, vb []byte) {
	if vb == nil {
		s.inner.Delete(kb)
		return
	}
	s.inner.Put(kb, vb)
}

// TaskWindow is a task-scoped window store with serdes and changelog
// capture. Window stores are uncached: windowed operators emit updates
// eagerly (the speculative processing of Section 5) and a downstream
// suppress operator consolidates when desired.
type TaskWindow struct {
	task *Task
	spec *StoreSpec

	inner store.Window

	changelogTopic string
}

// Spec returns the store's declaration.
func (s *TaskWindow) Spec() *StoreSpec { return s.spec }

// Put stores a windowed value (nil deletes) and logs the change.
func (s *TaskWindow) Put(key any, start int64, value any, ts int64) {
	kb := s.spec.KeySerde.Encode(key)
	var vb []byte
	if value != nil {
		vb = s.spec.ValSerde.Encode(value)
	}
	s.inner.Put(kb, start, vb)
	if s.changelogTopic != "" {
		s.task.logChange(s.changelogTopic, store.EncodeWindowKey(kb, start), vb, ts)
	}
}

// Get returns the decoded value for (key, window start).
func (s *TaskWindow) Get(key any, start int64) (any, bool) {
	vb, ok := s.inner.Get(s.spec.KeySerde.Encode(key), start)
	if !ok || vb == nil {
		return nil, false
	}
	return s.spec.ValSerde.Decode(vb), true
}

// Fetch returns this key's windows with from <= start <= to.
func (s *TaskWindow) Fetch(key any, from, to int64) []store.WindowEntry {
	return s.inner.Fetch(s.spec.KeySerde.Encode(key), from, to)
}

// FetchAll returns all windows in the start range across keys.
func (s *TaskWindow) FetchAll(from, to int64) []store.WindowEntry {
	return s.inner.FetchAll(from, to)
}

// DecodeValue decodes a fetched entry's value.
func (s *TaskWindow) DecodeValue(vb []byte) any { return s.spec.ValSerde.Decode(vb) }

// DecodeKey decodes a fetched entry's key.
func (s *TaskWindow) DecodeKey(kb []byte) any { return s.spec.KeySerde.Decode(kb) }

// DropBefore garbage-collects windows older than bound (stream time minus
// retention), the expiry of Figure 6.d.
func (s *TaskWindow) DropBefore(bound int64) int {
	return s.inner.DropBefore(bound)
}

// Len returns the number of live windowed entries.
func (s *TaskWindow) Len() int { return s.inner.Len() }

// restore applies one changelog record directly to the inner store.
func (s *TaskWindow) restore(kb, vb []byte) {
	key, start, ok := store.DecodeWindowKey(kb)
	if !ok {
		return
	}
	s.inner.Put(key, start, vb)
}
