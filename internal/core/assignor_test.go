package core

import (
	"testing"

	"kstreams/internal/protocol"
)

func twoSubTopology(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology()
	topo.AddSource("s0", "alpha", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("p0", nopSupplier, "s0")
	topo.AddSource("s1", "beta", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("p1", nopSupplier, "s1")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func partsOf(counts map[string]int32) func(string) int32 {
	return func(topic string) int32 { return counts[topic] }
}

func TestAssignorBalancesTasks(t *testing.T) {
	topo := twoSubTopology(t)
	a := &StreamsAssignor{Topology: topo}
	members := []protocol.JoinGroupMember{
		{MemberID: "m1"}, {MemberID: "m2"},
	}
	parts, userData := a.Assign(members, partsOf(map[string]int32{"alpha": 2, "beta": 2}))
	if len(parts["m1"]) != 2 || len(parts["m2"]) != 2 {
		t.Fatalf("partition split: m1=%v m2=%v", parts["m1"], parts["m2"])
	}
	// No partition assigned twice.
	seen := map[protocol.TopicPartition]string{}
	for mid, tps := range parts {
		for _, tp := range tps {
			if prev, dup := seen[tp]; dup {
				t.Fatalf("%s assigned to both %s and %s", tp, prev, mid)
			}
			seen[tp] = mid
		}
	}
	if len(seen) != 4 {
		t.Fatalf("assigned %d partitions, want 4", len(seen))
	}
	if len(userData["m1"]) == 0 {
		t.Fatal("missing assignment user data")
	}
}

func TestAssignorSticky(t *testing.T) {
	topo := twoSubTopology(t)
	a := &StreamsAssignor{Topology: topo}
	// m2 previously owned task 0_1 (alpha partition 1); it should keep it.
	members := []protocol.JoinGroupMember{
		{MemberID: "m1", UserData: EncodeUserData(AssignorUserData{PrevTasks: []string{"0_0", "1_0"}})},
		{MemberID: "m2", UserData: EncodeUserData(AssignorUserData{PrevTasks: []string{"0_1", "1_1"}})},
	}
	parts, _ := a.Assign(members, partsOf(map[string]int32{"alpha": 2, "beta": 2}))
	owns := func(mid string, tp protocol.TopicPartition) bool {
		for _, x := range parts[mid] {
			if x == tp {
				return true
			}
		}
		return false
	}
	if !owns("m2", protocol.TopicPartition{Topic: "alpha", Partition: 1}) {
		t.Fatalf("stickiness lost: m2=%v", parts["m2"])
	}
	if !owns("m1", protocol.TopicPartition{Topic: "alpha", Partition: 0}) {
		t.Fatalf("stickiness lost: m1=%v", parts["m1"])
	}
}

func TestAssignorTaskIntegrity(t *testing.T) {
	// All source partitions of one task must land on the same member.
	topo := NewTopology()
	topo.AddSource("l", "left", fakeSerde{}, fakeSerde{})
	topo.AddSource("r", "right", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("lj", nopSupplier, "l")
	topo.AddProcessor("rj", nopSupplier, "r")
	topo.AddStore(StoreSpec{Name: "buf", Windowed: true, KeySerde: fakeSerde{}, ValSerde: fakeSerde{}}, "lj", "rj")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	a := &StreamsAssignor{Topology: topo}
	members := []protocol.JoinGroupMember{{MemberID: "m1"}, {MemberID: "m2"}, {MemberID: "m3"}}
	parts, _ := a.Assign(members, partsOf(map[string]int32{"left": 3, "right": 3}))
	owner := map[int32]string{}
	for mid, tps := range parts {
		for _, tp := range tps {
			if prev, ok := owner[tp.Partition]; ok && prev != mid {
				t.Fatalf("task partition %d split across %s and %s", tp.Partition, prev, mid)
			}
			owner[tp.Partition] = mid
		}
	}
	if len(owner) != 3 {
		t.Fatalf("placed %d tasks, want 3", len(owner))
	}
}

func TestTasksFromAssignment(t *testing.T) {
	topo := twoSubTopology(t)
	tps := []protocol.TopicPartition{
		{Topic: "alpha", Partition: 0},
		{Topic: "beta", Partition: 0},
		{Topic: "beta", Partition: 2},
		{Topic: "unknown", Partition: 1},
	}
	tasks := TasksFromAssignment(topo, tps)
	if len(tasks) != 3 {
		t.Fatalf("tasks = %v", tasks)
	}
	alphaSub := topo.SubTopologyFor("alpha").ID
	if got := tasks[TaskID{SubTopology: alphaSub, Partition: 0}]; len(got) != 1 {
		t.Fatalf("alpha task partitions = %v", got)
	}
}

func TestGuaranteeAndTaskIDStrings(t *testing.T) {
	if AtLeastOnce.String() != "at-least-once" || ExactlyOnceV2.String() != "exactly-once-v2" ||
		ExactlyOnceV1.String() != "exactly-once-v1" {
		t.Fatal("guarantee strings wrong")
	}
	if Guarantee(99).String() == "" {
		t.Fatal("unknown guarantee must format")
	}
	if (TaskID{SubTopology: 2, Partition: 5}).String() != "2_5" {
		t.Fatal("task id format")
	}
	if (WindowedKey{Key: "k", Start: 1, End: 2}).String() == "" {
		t.Fatal("windowed key format")
	}
}
