package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"kstreams/internal/client"
	"kstreams/internal/obs"
	"kstreams/internal/protocol"
	"kstreams/internal/store"
)

// Collector sends a task's output records. The stream thread implements it
// on top of its (transactional) producer; every forward to a sink or
// changelog becomes a log append through this interface — the paper's core
// move of capturing "all processing state updates and result outputs ...
// as log appends".
type Collector interface {
	Send(topic string, partition int32, key, value []byte, ts int64) error
}

// AtomicMetrics is the thread-safe counter set shared by an app's tasks.
type AtomicMetrics struct {
	processed   atomic.Int64
	emitted     atomic.Int64
	lateDropped atomic.Int64
	revisions   atomic.Int64
	commits     atomic.Int64
	restores    atomic.Int64
}

// Snapshot returns a consistent-enough copy for reporting.
func (m *AtomicMetrics) Snapshot() Metrics {
	return Metrics{
		Processed:   m.processed.Load(),
		Emitted:     m.emitted.Load(),
		LateDropped: m.lateDropped.Load(),
		Revisions:   m.revisions.Load(),
		Commits:     m.commits.Load(),
		Restores:    m.restores.Load(),
	}
}

// AddCommit counts one commit cycle (called by the thread).
func (m *AtomicMetrics) AddCommit() { m.commits.Add(1) }

// taskConfig carries the app-level context a task needs.
type taskConfig struct {
	topology       *Topology
	changelogTopic func(storeName string) string
	partitionsOf   func(topic string) int32
	registry       *StoreRegistry
	metrics        *AtomicMetrics
	obsReg         *obs.Registry
}

// Task executes one sub-topology instance for one input partition: it
// buffers fetched records per source partition, processes them in
// timestamp order (deterministic record choice, paper Section 7), and
// tracks positions for the commit (paper Section 3.3).
type Task struct {
	id  TaskID
	sub *SubTopology
	cfg taskConfig

	collector Collector

	procs   map[string]Processor
	kvs     map[string]*TaskKV
	kvOrder []string // flush order: topology order of owning processors
	windows map[string]*TaskWindow

	queues     map[protocol.TopicPartition][]client.Message
	queueOrder []protocol.TopicPartition
	positions  map[protocol.TopicPartition]int64

	streamTime   int64
	punctuations []*punctuation

	wm      wmTracker
	tobs    *taskObs
	metrics *taskMetrics
	procErr error

	dirty bool // uncommitted writes exist (EOS wipes stores on unclean close)
}

// taskMetrics are task-local shims over the shared atomic counters.
type taskMetrics struct {
	shared *AtomicMetrics
	// Task-local copies for per-task reporting.
	Processed   int64
	Emitted     int64
	LateDropped int64
	Revisions   int64
}

func (tm *taskMetrics) addProcessed() { tm.Processed++; tm.shared.processed.Add(1) }
func (tm *taskMetrics) addEmitted()   { tm.Emitted++; tm.shared.emitted.Add(1) }

// NewTask instantiates processors and stores for a task.
func NewTask(id TaskID, sub *SubTopology, cfg taskConfig, collector Collector) (*Task, error) {
	t := &Task{
		id:         id,
		sub:        sub,
		cfg:        cfg,
		collector:  collector,
		procs:      make(map[string]Processor),
		kvs:        make(map[string]*TaskKV),
		windows:    make(map[string]*TaskWindow),
		queues:     make(map[protocol.TopicPartition][]client.Message),
		positions:  make(map[protocol.TopicPartition]int64),
		streamTime: -1,
		metrics:    &taskMetrics{shared: cfg.metrics},
	}
	for _, topic := range sub.SourceTopics {
		tp := protocol.TopicPartition{Topic: topic, Partition: id.Partition}
		t.queues[tp] = nil
		t.queueOrder = append(t.queueOrder, tp)
	}
	t.wm = newWmTracker(len(t.queueOrder))
	t.tobs = newTaskObs(cfg.obsReg, id)
	for _, storeName := range sub.Stores {
		spec, ok := cfg.topology.specs[storeName]
		if !ok {
			return nil, fmt.Errorf("core: task %s references undeclared store %q", id, storeName)
		}
		entry := cfg.registry.acquire(id, storeName, spec)
		clTopic := ""
		if spec.Changelog {
			clTopic = cfg.changelogTopic(storeName)
		}
		if spec.Windowed {
			t.windows[storeName] = &TaskWindow{task: t, spec: spec, inner: entry.win, changelogTopic: clTopic}
		} else {
			kv := &TaskKV{task: t, spec: spec, inner: entry.kv, changelogTopic: clTopic}
			if spec.Cached {
				kv.cache = store.NewCachingKV(entry.kv)
			}
			t.kvs[storeName] = kv
		}
	}
	// Instantiate and initialize processors in topological (insertion)
	// order so parents init before children, and record store flush order:
	// flushing upstream caches first lets their emissions land in (and be
	// flushed out of) downstream caches within the same commit, keeping the
	// transaction's state updates complete.
	seenStore := make(map[string]bool)
	for _, name := range cfg.topology.order {
		n := cfg.topology.nodes[name]
		if n.Type != NodeProcessor || !containsStr(sub.Nodes, name) {
			continue
		}
		p := n.Supplier()
		t.procs[name] = p
		p.Init(&Context{task: t, node: n})
		for _, st := range n.Stores {
			if !seenStore[st] && t.kvs[st] != nil {
				seenStore[st] = true
				t.kvOrder = append(t.kvOrder, st)
			}
		}
	}
	for name := range t.kvs {
		if !seenStore[name] {
			t.kvOrder = append(t.kvOrder, name)
		}
	}
	return t, nil
}

func containsStr(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// ID returns the task id.
func (t *Task) ID() TaskID { return t.id }

// SourcePartitions lists the input partitions this task consumes.
func (t *Task) SourcePartitions() []protocol.TopicPartition {
	return append([]protocol.TopicPartition(nil), t.queueOrder...)
}

// AddRecords buffers fetched records for processing.
func (t *Task) AddRecords(tp protocol.TopicPartition, msgs []client.Message) {
	t.queues[tp] = append(t.queues[tp], msgs...)
}

// Buffered returns the number of records waiting to be processed.
func (t *Task) Buffered() int {
	n := 0
	for _, q := range t.queues {
		n += len(q)
	}
	return n
}

// ProcessOne processes the buffered record with the smallest timestamp
// (ties broken by partition order for determinism). It reports whether a
// record was processed and any processing error.
//
//kslint:hotpath
func (t *Task) ProcessOne() (bool, error) {
	var pick protocol.TopicPartition
	pickIdx := -1
	var bestTs int64
	for i, tp := range t.queueOrder {
		q := t.queues[tp]
		if len(q) == 0 {
			continue
		}
		ts := q[0].Record.Timestamp
		if pickIdx < 0 || ts < bestTs {
			pickIdx = i
			bestTs = ts
			pick = tp
		}
	}
	if pickIdx < 0 {
		return false, nil
	}
	msg := t.queues[pick][0]
	t.queues[pick] = t.queues[pick][1:]

	src := t.sub.sourceByTopic[pick.Topic]
	key := decodeOrNil(src.KeySerde, msg.Record.Key)
	val := decodeOrNil(src.ValueSerde, msg.Record.Value)
	ts := msg.Record.Timestamp
	if ts > t.streamTime {
		t.streamTime = ts
	}
	if t.wm.observe(pickIdx, ts) {
		t.tobs.outOfOrder.Inc()
	}
	t.metrics.addProcessed()
	t.dirty = true
	for _, child := range src.children {
		t.deliver(child, key, val, ts)
	}
	t.positions[pick] = msg.Offset + 1
	t.maybePunctuate()
	return true, t.procErr
}

func decodeOrNil(s Serde, p []byte) any {
	if p == nil {
		return nil
	}
	return s.Decode(p)
}

// deliver routes a forwarded record to a child node: a fused processor
// call or a sink append.
func (t *Task) deliver(nodeName string, key, value any, ts int64) {
	n := t.cfg.topology.nodes[nodeName]
	switch n.Type {
	case NodeProcessor:
		t.procs[nodeName].Process(key, value, ts)
	case NodeSink:
		var kb, vb []byte
		if key != nil {
			kb = n.KeySerde.Encode(key)
		}
		if value != nil {
			vb = n.ValueSerde.Encode(value)
		}
		numParts := t.cfg.partitionsOf(n.Topic)
		var part int32
		if n.Partitioner != nil {
			part = n.Partitioner(key, kb, numParts)
		} else if kb != nil {
			part = client.Partition(kb, numParts)
		} else {
			part = t.id.Partition % numParts
		}
		if err := t.collector.Send(n.Topic, part, kb, vb, ts); err != nil && t.procErr == nil {
			t.procErr = err
		}
		t.metrics.addEmitted()
	default:
		if t.procErr == nil {
			//kslint:ignore hotalloc a forward to a source node is a topology-wiring bug caught on the first record, not steady state
			t.procErr = fmt.Errorf("core: forward to source node %q", nodeName)
		}
	}
}

// logChange appends a state update to a changelog topic, co-partitioned
// with the task.
func (t *Task) logChange(topic string, kb, vb []byte, ts int64) {
	numParts := t.cfg.partitionsOf(topic)
	part := t.id.Partition % numParts
	if err := t.collector.Send(topic, part, kb, vb, ts); err != nil && t.procErr == nil {
		t.procErr = err
	}
}

func (t *Task) maybePunctuate() {
	for _, p := range t.punctuations {
		if p.next < 0 {
			p.next = (t.streamTime/p.interval + 1) * p.interval
			continue
		}
		if t.streamTime >= p.next {
			p.fn(t.streamTime)
			p.next = (t.streamTime/p.interval + 1) * p.interval
		}
	}
}

// FlushStores pushes cached store updates to changelogs and downstream in
// topology order (upstream first, so cascading cache writes flush within
// the same commit); part of the commit cycle before offsets are committed.
func (t *Task) FlushStores() error {
	for _, name := range t.kvOrder {
		t.kvs[name].Flush()
	}
	return t.procErr
}

// Positions returns the offsets to commit: one past the last processed
// record of each source partition (only partitions with progress).
func (t *Task) Positions() map[protocol.TopicPartition]int64 {
	out := make(map[protocol.TopicPartition]int64, len(t.positions))
	for tp, off := range t.positions {
		out[tp] = off
	}
	return out
}

// MarkClean records a successful commit: the store registry entries now
// exactly reflect the committed changelog.
func (t *Task) MarkClean() {
	t.dirty = false
	t.cfg.registry.setClean(t.id, true)
}

// MarkDirty flags uncommitted writes (set implicitly by processing).
func (t *Task) MarkDirty() {
	t.cfg.registry.setClean(t.id, false)
}

// Close shuts down processors and releases stores. If clean is false (the
// task is abandoned mid-transaction under EOS), registry entries are
// wiped so the next owner restores purely from the committed changelog.
func (t *Task) Close(clean bool) {
	for _, name := range t.cfg.topology.order {
		if p, ok := t.procs[name]; ok {
			p.Close()
		}
	}
	t.cfg.registry.release(t.id, clean && !t.dirty)
}

// Metrics returns task-local counters.
func (t *Task) Metrics() (processed, emitted int64) {
	return t.metrics.Processed, t.metrics.Emitted
}

// StreamTime exposes the observed stream time.
func (t *Task) StreamTime() int64 { return t.streamTime }

// --- store registry (instance-level stickiness) ---

// StoreRegistry keeps store instances across task reassignments on the
// same Streams instance, so a task migrating back does not replay its full
// changelog ("task stickiness to minimize the amount of state migration",
// paper Section 3.3). Entries record how far restoration has progressed.
type StoreRegistry struct {
	mu      sync.Mutex
	entries map[string]*registryEntry
}

type registryEntry struct {
	kv             store.KV
	win            store.Window
	restoredOffset int64
	clean          bool
	inUse          bool
	// standby marks a warm replica: a standby tailer applies committed
	// changelog records into the entry, keeping restoredOffset current,
	// until the active task is assigned here and promotes it. Standby
	// entries never serve queries — their state may lag the active's, and
	// surfacing both would show one key with two values (sim I5).
	standby bool
	// applyMu serializes standby tail batches against promotion: acquire
	// takes it once to wait out an in-flight batch before clearing the
	// standby flag, so the promoted store plus its restoredOffset are a
	// consistent changelog prefix and tail replay cannot interleave with
	// a straggling standby apply.
	applyMu sync.Mutex
}

// NewStoreRegistry returns an empty registry.
func NewStoreRegistry() *StoreRegistry {
	return &StoreRegistry{entries: make(map[string]*registryEntry)}
}

func regKey(id TaskID, storeName string) string {
	return id.String() + "/" + storeName
}

func (r *StoreRegistry) acquire(id TaskID, storeName string, spec *StoreSpec) *registryEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := regKey(id, storeName)
	e, ok := r.entries[k]
	if ok && e.clean && e.standby {
		// Promote the warm standby: wait out an in-flight tail batch,
		// then take the store over. The caller's restore then replays
		// only the changelog tail past restoredOffset.
		e.applyMu.Lock()
		e.standby = false
		e.applyMu.Unlock()
	}
	if !ok || !e.clean {
		// Fresh store (or wiped after an unclean close): restore from zero.
		e = &registryEntry{restoredOffset: 0, clean: true}
		if spec.Windowed {
			e.win = store.NewWindow()
		} else {
			e.kv = store.NewKV()
		}
		r.entries[k] = e
	}
	e.inUse = true
	return e
}

// acquireStandby registers (or keeps) a warm-standby entry for one store
// of a task. It reports false when the task is actively owned on this
// instance — tailing into a live store would race the owner — or when it
// just got promoted; the standby manager then drops the task.
func (r *StoreRegistry) acquireStandby(id TaskID, storeName string, spec *StoreSpec) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := regKey(id, storeName)
	e, ok := r.entries[k]
	if ok && e.inUse {
		return false
	}
	if !ok || !e.clean {
		e = &registryEntry{restoredOffset: 0, clean: true}
		if spec.Windowed {
			e.win = store.NewWindow()
		} else {
			e.kv = store.NewKV()
		}
		r.entries[k] = e
	}
	// The standby flag is written under both r.mu and applyMu (here and
	// in acquire/releaseStandby), so holders of either lock read it safely.
	e.applyMu.Lock()
	e.standby = true
	e.applyMu.Unlock()
	return true
}

// releaseStandby demotes a task's standby entries back to plain sticky
// caches (the replica moved elsewhere). The state is kept — it is still a
// valid changelog prefix up to restoredOffset, exactly what stickiness
// preserves.
func (r *StoreRegistry) releaseStandby(id TaskID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, e := range r.entries {
		if hasTaskPrefix(k, id) && !e.inUse {
			e.applyMu.Lock()
			e.standby = false
			e.applyMu.Unlock()
		}
	}
}

// beginStandbyApply locks one standby entry for a tail batch, returning
// false when the entry is gone, promoted, or actively owned — the signal
// for the tailer to stop. endStandbyApply releases it.
func (r *StoreRegistry) beginStandbyApply(id TaskID, storeName string) (*registryEntry, bool) {
	r.mu.Lock()
	e, ok := r.entries[regKey(id, storeName)]
	if !ok || !e.standby || e.inUse {
		r.mu.Unlock()
		return nil, false
	}
	r.mu.Unlock()
	e.applyMu.Lock()
	if !e.standby {
		e.applyMu.Unlock()
		return nil, false
	}
	//kslint:ignore lockbalance applyMu is deliberately held across the tail batch; endStandbyApply releases it
	return e, true
}

func (r *StoreRegistry) endStandbyApply(e *registryEntry) {
	e.applyMu.Unlock()
}

func (r *StoreRegistry) release(id TaskID, clean bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, e := range r.entries {
		if hasTaskPrefix(k, id) {
			e.inUse = false
			if !clean {
				delete(r.entries, k) // wipe: next owner replays the changelog
			}
		}
	}
}

func (r *StoreRegistry) setClean(id TaskID, clean bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, e := range r.entries {
		if hasTaskPrefix(k, id) {
			e.clean = clean
		}
	}
}

// QueryKV looks up a key in a task's key-value store instance, across the
// in-use entries of the registry (interactive queries, the paper's
// Section 8 "consistent state query serving" direction). Only stores of
// currently-assigned tasks answer: sticky copies retained after a task
// migrated away are restoration caches, not queryable state — serving
// them would return values frozen at the moment the task left. Reads see
// committed state plus the owning thread's in-flight writes (uncached
// stores) — like Kafka Streams' interactive queries, reads are not
// transactionally isolated.
func (r *StoreRegistry) QueryKV(storeName string, spec *StoreSpec, key any) (any, bool) {
	kb := spec.KeySerde.Encode(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	suffix := "/" + storeName
	for k, e := range r.entries {
		// Standby replicas are excluded like sticky copies: they lag the
		// active store, and answering from both would surface one key
		// with two values.
		if e.kv == nil || !e.inUse || e.standby || len(k) < len(suffix) || k[len(k)-len(suffix):] != suffix {
			continue
		}
		if vb, ok := e.kv.Get(kb); ok && vb != nil {
			return spec.ValSerde.Decode(vb), true
		}
	}
	return nil, false
}

// RangeKV folds every entry of a named store across the currently
// assigned tasks (stale sticky copies are excluded, as in QueryKV).
func (r *StoreRegistry) RangeKV(storeName string, spec *StoreSpec, fn func(key, value any) bool) {
	r.mu.Lock()
	entries := make([]*registryEntry, 0)
	suffix := "/" + storeName
	for k, e := range r.entries {
		if e.kv != nil && e.inUse && !e.standby && len(k) >= len(suffix) && k[len(k)-len(suffix):] == suffix {
			entries = append(entries, e)
		}
	}
	r.mu.Unlock()
	for _, e := range entries {
		for _, kv := range e.kv.Range(nil, nil) {
			if !fn(spec.KeySerde.Decode(kv.Key), spec.ValSerde.Decode(kv.Value)) {
				return
			}
		}
	}
}

// QueryWindow looks up (key, window start) in a windowed store across tasks.
func (r *StoreRegistry) QueryWindow(storeName string, spec *StoreSpec, key any, start int64) (any, bool) {
	kb := spec.KeySerde.Encode(key)
	r.mu.Lock()
	defer r.mu.Unlock()
	suffix := "/" + storeName
	for k, e := range r.entries {
		if e.win == nil || e.standby || len(k) < len(suffix) || k[len(k)-len(suffix):] != suffix {
			continue
		}
		if vb, ok := e.win.Get(kb, start); ok && vb != nil {
			return spec.ValSerde.Decode(vb), true
		}
	}
	return nil, false
}

// RestoredOffset returns how far a store's changelog replay progressed.
func (r *StoreRegistry) RestoredOffset(id TaskID, storeName string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[regKey(id, storeName)]; ok {
		return e.restoredOffset
	}
	return 0
}

// SetRestoredOffset records restoration progress.
func (r *StoreRegistry) SetRestoredOffset(id TaskID, storeName string, off int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[regKey(id, storeName)]; ok {
		e.restoredOffset = off
	}
}

func hasTaskPrefix(k string, id TaskID) bool {
	p := id.String() + "/"
	return len(k) > len(p) && k[:len(p)] == p
}
