// Package core is the Kafka Streams runtime — the paper's primary
// contribution. It models processing as read-process-write cycles
// (Section 3): a topology of operators compiled into sub-topologies
// connected by repartition topics, executed as tasks (one per source
// partition) on stream threads. All state updates and outputs are log
// appends; exactly-once processing commits sink appends, changelog appends
// and source offsets in one transaction (Section 4); out-of-order data is
// handled by speculative emission with revisions under per-operator grace
// periods (Section 5).
package core

import "fmt"

// Serde converts between application values and the byte slices stored in
// Kafka topics and state stores.
type Serde interface {
	Encode(v any) []byte
	Decode(p []byte) any
}

// Change is the value type flowing through table streams: the new value
// and the value it replaces. Downstream table consumers retract the effect
// of Old and accumulate New (paper Section 5: "retracting the effect of
// old update records and accumulating the effect of new update records").
type Change struct {
	New any
	Old any
}

// WindowedKey keys a windowed table entry: the record key plus the window
// start (results are "indexed by the window start time", Figure 6).
type WindowedKey struct {
	Key   any
	Start int64
	End   int64
}

func (w WindowedKey) String() string {
	return fmt.Sprintf("[%v@%d/%d]", w.Key, w.Start, w.End)
}

// TaskID identifies a task: the sub-topology it executes and the input
// partition it owns (paper Section 3.3).
type TaskID struct {
	SubTopology int
	Partition   int32
}

func (t TaskID) String() string { return fmt.Sprintf("%d_%d", t.SubTopology, t.Partition) }

// Guarantee selects the processing guarantee.
type Guarantee int

const (
	// AtLeastOnce flushes outputs then commits offsets non-atomically; a
	// crash between the two reprocesses records (paper Section 3.3).
	AtLeastOnce Guarantee = iota
	// ExactlyOnceV2 wraps each thread's read-process-write cycles in one
	// transaction per commit interval, with one transactional producer per
	// thread (Kafka 2.6 semantics, paper Section 6.1).
	ExactlyOnceV2
	// ExactlyOnceV1 uses one transactional producer per task
	// (the pre-2.6 design); kept for the producer-count ablation.
	ExactlyOnceV1
)

func (g Guarantee) String() string {
	switch g {
	case AtLeastOnce:
		return "at-least-once"
	case ExactlyOnceV2:
		return "exactly-once-v2"
	case ExactlyOnceV1:
		return "exactly-once-v1"
	default:
		return fmt.Sprintf("Guarantee(%d)", int(g))
	}
}

// Metrics aggregates counters across an application's tasks.
type Metrics struct {
	// Processed counts input records processed by source nodes.
	Processed int64
	// Emitted counts records sent to sink topics.
	Emitted int64
	// LateDropped counts records discarded because they arrived beyond an
	// operator's grace period (completeness bound, paper Section 5).
	LateDropped int64
	// Revisions counts emitted updates that overwrote a previously emitted
	// result for the same (key, window).
	Revisions int64
	// Commits counts completed commit cycles.
	Commits int64
	// Restores counts records replayed from changelogs during state
	// restoration.
	Restores int64
}
