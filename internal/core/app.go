package core

import (
	"fmt"
	"sync"
	"time"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
	"kstreams/internal/transport"
)

// AppConfig configures a Streams application instance.
type AppConfig struct {
	// ApplicationID doubles as the consumer group id and prefixes internal
	// topic names.
	ApplicationID string
	// InstanceID distinguishes instances of the same application (paper
	// Section 3.3: "deployed on multiple computing nodes as instances").
	InstanceID string
	// Net and Controller locate the cluster.
	Net        *transport.Network
	Controller int32
	// Guarantee switches between at-least-once and exactly-once with a
	// single configuration (paper Section 4.3).
	Guarantee Guarantee
	// CommitInterval is the transaction/offset commit cadence.
	CommitInterval time.Duration
	// NumThreads is the stream thread count per instance.
	NumThreads int
	// TxnTimeout bounds abandoned transactions.
	TxnTimeout time.Duration
	// InternalReplication is the replication factor for repartition and
	// changelog topics (0 = cluster default).
	InternalReplication int
	// SessionTimeout / HeartbeatInterval tune group liveness.
	SessionTimeout    time.Duration
	HeartbeatInterval time.Duration
	// PollInterval is the stream threads' idle sleep between empty polls
	// (0 = thread default). Simulations coarsen it to align poll wakeups
	// with virtual-clock quanta.
	PollInterval time.Duration
	// DisablePurge turns off repartition-topic purging.
	DisablePurge bool
	// NumStandbyReplicas is the number of warm standby replicas the
	// assignor places per task on other instances (DESIGN §13). Each
	// thread tails the changelogs of its standby tasks so a failover
	// promotes a warm copy and replays only the tail. Zero disables
	// standbys.
	NumStandbyReplicas int
}

func (c *AppConfig) fill() {
	if c.InstanceID == "" {
		c.InstanceID = "i1"
	}
	if c.CommitInterval <= 0 {
		c.CommitInterval = 100 * time.Millisecond
	}
	if c.NumThreads <= 0 {
		c.NumThreads = 1
	}
	if c.TxnTimeout <= 0 {
		c.TxnTimeout = 10 * time.Second
	}
}

// App is one instance of a Streams application: it owns the topology's
// runtime, creates internal topics, and runs stream threads.
type App struct {
	cfg      AppConfig
	topology *Topology

	registry *StoreRegistry
	metrics  *AtomicMetrics

	mu         sync.Mutex
	threads    []*Thread
	partitions map[string]int32
	started    bool
	nextThread int
}

// NewApp validates the topology and prepares an application instance.
func NewApp(topology *Topology, cfg AppConfig) (*App, error) {
	cfg.fill()
	if cfg.ApplicationID == "" {
		return nil, fmt.Errorf("core: ApplicationID required")
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("core: Net required")
	}
	if len(topology.SubTopologies()) == 0 {
		if err := topology.Build(); err != nil {
			return nil, err
		}
	}
	return &App{
		cfg:      cfg,
		topology: topology,
		registry: NewStoreRegistry(),
		metrics:  &AtomicMetrics{},
	}, nil
}

// ChangelogTopic names a store's changelog, mirroring Kafka Streams'
// <application.id>-<store>-changelog convention.
func (a *App) ChangelogTopic(storeName string) string {
	return a.cfg.ApplicationID + "-" + storeName + "-changelog"
}

// Start creates internal topics, resolves partition counts, and launches
// the stream threads.
func (a *App) Start() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.started {
		return fmt.Errorf("core: app already started")
	}
	admin := client.NewAdmin(a.cfg.Net, a.cfg.Controller, nil)
	defer admin.Close()

	parts := make(map[string]int32)

	// 1. Resolve external source topic partitions.
	external := make([]string, 0)
	maxExternal := int32(0)
	for _, sub := range a.topology.SubTopologies() {
		for _, topic := range sub.SourceTopics {
			if _, isRep := a.topology.RepartitionTopics[topic]; isRep {
				continue
			}
			n, err := admin.Partitions(topic)
			if err != nil {
				return fmt.Errorf("core: resolving source topic %q: %w", topic, err)
			}
			parts[topic] = n
			external = append(external, topic)
			if n > maxExternal {
				maxExternal = n
			}
		}
	}
	if maxExternal == 0 {
		return fmt.Errorf("core: no external source topics resolved")
	}

	// 2. Create repartition topics (partitions default to the widest
	// external source, preserving the app's parallelism).
	for topic, want := range a.topology.RepartitionTopics {
		n := want
		if n <= 0 {
			n = maxExternal
		}
		if err := admin.CreateTopic(topic, n, a.cfg.InternalReplication, protocol.TopicConfig{}); err != nil {
			return fmt.Errorf("core: creating repartition topic %q: %w", topic, err)
		}
		got, err := admin.Partitions(topic)
		if err != nil {
			return err
		}
		parts[topic] = got
	}

	// 3. Task counts per sub-topology, then changelog topics (co-partitioned
	// with their sub-topology's tasks).
	taskCount := make(map[int]int32)
	for _, sub := range a.topology.SubTopologies() {
		n := int32(0)
		for _, topic := range sub.SourceTopics {
			if parts[topic] > n {
				n = parts[topic]
			}
		}
		taskCount[sub.ID] = n
		for _, storeName := range sub.Stores {
			spec := a.topology.Stores()[storeName]
			if !spec.Changelog {
				continue
			}
			clTopic := a.ChangelogTopic(storeName)
			if err := admin.CreateTopic(clTopic, n, a.cfg.InternalReplication,
				protocol.TopicConfig{Compacted: !spec.Windowed}); err != nil {
				return fmt.Errorf("core: creating changelog topic %q: %w", clTopic, err)
			}
			parts[clTopic] = n
		}
	}

	// 4. Resolve sink topic partitions.
	for _, name := range a.topology.order {
		n := a.topology.nodes[name]
		if n.Type != NodeSink {
			continue
		}
		if _, done := parts[n.Topic]; done {
			continue
		}
		count, err := admin.Partitions(n.Topic)
		if err != nil {
			return fmt.Errorf("core: resolving sink topic %q: %w", n.Topic, err)
		}
		parts[n.Topic] = count
	}
	a.partitions = parts

	// 5. Launch threads.
	sourceTopics := make([]string, 0)
	repTopics := make(map[string]bool)
	for _, sub := range a.topology.SubTopologies() {
		sourceTopics = append(sourceTopics, sub.SourceTopics...)
	}
	for topic := range a.topology.RepartitionTopics {
		repTopics[topic] = true
	}
	partitionsOf := func(topic string) int32 { return a.partitions[topic] }
	for i := 0; i < a.cfg.NumThreads; i++ {
		th, err := NewThread(ThreadConfig{
			AppID:              a.cfg.ApplicationID,
			InstanceID:         a.cfg.InstanceID,
			Index:              i,
			Net:                a.cfg.Net,
			Controller:         a.cfg.Controller,
			Guarantee:          a.cfg.Guarantee,
			CommitInterval:     a.cfg.CommitInterval,
			TxnTimeout:         a.cfg.TxnTimeout,
			Topology:           a.topology,
			Registry:           a.registry,
			Metrics:            a.metrics,
			PartitionsOf:       partitionsOf,
			ChangelogTopic:     a.ChangelogTopic,
			SourceTopics:       sourceTopics,
			RepartitionTopics:  repTopics,
			SessionTimeout:     a.cfg.SessionTimeout,
			HeartbeatInterval:  a.cfg.HeartbeatInterval,
			PollInterval:       a.cfg.PollInterval,
			PurgeRepartition:   !a.cfg.DisablePurge,
			NumStandbyReplicas: a.cfg.NumStandbyReplicas,
		})
		if err != nil {
			return err
		}
		a.threads = append(a.threads, th)
	}
	for _, th := range a.threads {
		th.Start()
	}
	a.nextThread = a.cfg.NumThreads
	a.started = true
	return nil
}

// Kill stops all threads abruptly (no commit, no group leave), simulating
// an instance crash.
func (a *App) Kill() {
	a.mu.Lock()
	threads := a.threads
	a.threads = nil
	a.started = false
	a.mu.Unlock()
	var wg sync.WaitGroup
	for _, th := range threads {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			th.Kill()
		}(th)
	}
	wg.Wait()
}

// Close stops all threads (committing in-flight work cleanly).
func (a *App) Close() {
	a.mu.Lock()
	threads := a.threads
	a.threads = nil
	a.started = false
	a.mu.Unlock()
	var wg sync.WaitGroup
	for _, th := range threads {
		wg.Add(1)
		go func(th *Thread) {
			defer wg.Done()
			th.Stop()
		}(th)
	}
	wg.Wait()
}

// Metrics returns an aggregate counter snapshot.
func (a *App) Metrics() Metrics { return a.metrics.Snapshot() }

// QueryKV reads a key from a materialized key-value store hosted by this
// instance (interactive queries). It returns false when the key is absent
// or this instance does not host its task.
func (a *App) QueryKV(storeName string, key any) (any, bool) {
	spec, ok := a.topology.Stores()[storeName]
	if !ok || spec.Windowed {
		return nil, false
	}
	return a.registry.QueryKV(storeName, spec, key)
}

// RangeKV folds every locally hosted entry of a key-value store.
func (a *App) RangeKV(storeName string, fn func(key, value any) bool) {
	if spec, ok := a.topology.Stores()[storeName]; ok && !spec.Windowed {
		a.registry.RangeKV(storeName, spec, fn)
	}
}

// QueryWindow reads (key, window start) from a local windowed store.
func (a *App) QueryWindow(storeName string, key any, start int64) (any, bool) {
	spec, ok := a.topology.Stores()[storeName]
	if !ok || !spec.Windowed {
		return nil, false
	}
	return a.registry.QueryWindow(storeName, spec, key, start)
}

// AddThread scales the instance up by one stream thread at runtime; the
// group rebalances and tasks migrate with sticky assignment (the live
// scaling direction of the paper's Section 8).
func (a *App) AddThread() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started {
		return fmt.Errorf("core: app not started")
	}
	idx := a.nextThread
	a.nextThread++
	partitionsOf := func(topic string) int32 { return a.partitions[topic] }
	sourceTopics := make([]string, 0)
	repTopics := make(map[string]bool)
	for _, sub := range a.topology.SubTopologies() {
		sourceTopics = append(sourceTopics, sub.SourceTopics...)
	}
	for topic := range a.topology.RepartitionTopics {
		repTopics[topic] = true
	}
	th, err := NewThread(ThreadConfig{
		AppID:              a.cfg.ApplicationID,
		InstanceID:         a.cfg.InstanceID,
		Index:              idx,
		Net:                a.cfg.Net,
		Controller:         a.cfg.Controller,
		Guarantee:          a.cfg.Guarantee,
		CommitInterval:     a.cfg.CommitInterval,
		TxnTimeout:         a.cfg.TxnTimeout,
		Topology:           a.topology,
		Registry:           a.registry,
		Metrics:            a.metrics,
		PartitionsOf:       partitionsOf,
		ChangelogTopic:     a.ChangelogTopic,
		SourceTopics:       sourceTopics,
		RepartitionTopics:  repTopics,
		SessionTimeout:     a.cfg.SessionTimeout,
		HeartbeatInterval:  a.cfg.HeartbeatInterval,
		PollInterval:       a.cfg.PollInterval,
		PurgeRepartition:   !a.cfg.DisablePurge,
		NumStandbyReplicas: a.cfg.NumStandbyReplicas,
	})
	if err != nil {
		return err
	}
	a.threads = append(a.threads, th)
	th.Start()
	return nil
}

// RemoveThread scales the instance down by one thread (the most recently
// added), committing its work and releasing its tasks to the group.
func (a *App) RemoveThread() error {
	a.mu.Lock()
	if len(a.threads) <= 1 {
		a.mu.Unlock()
		return fmt.Errorf("core: cannot remove the last thread")
	}
	th := a.threads[len(a.threads)-1]
	a.threads = a.threads[:len(a.threads)-1]
	a.mu.Unlock()
	th.Stop()
	return nil
}

// NumThreads reports the current thread count.
func (a *App) NumThreads() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.threads)
}

// Topology exposes the application's topology (for description/tools).
func (a *App) Topology() *Topology { return a.topology }

// Err returns the first thread error, if any.
func (a *App) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, th := range a.threads {
		if err := th.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Threads returns the running stream threads (tests/tools).
func (a *App) Threads() []*Thread {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Thread(nil), a.threads...)
}
