package core

import (
	"fmt"
	"testing"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
)

type sentRecord struct {
	topic     string
	partition int32
	key, val  string
	ts        int64
}

type captureCollector struct {
	sent []sentRecord
}

func (c *captureCollector) Send(topic string, partition int32, key, value []byte, ts int64) error {
	c.sent = append(c.sent, sentRecord{topic, partition, string(key), string(value), ts})
	return nil
}

type orderProc struct {
	BaseProcessor
	seen *[]string
}

func (p *orderProc) Process(k, v any, ts int64) {
	*p.seen = append(*p.seen, fmt.Sprintf("%v@%d", k, ts))
	p.Ctx.Forward(k, v, ts)
}

func buildTask(t *testing.T, topo *Topology, sub *SubTopology, col Collector) *Task {
	t.Helper()
	task, err := NewTask(TaskID{SubTopology: sub.ID, Partition: 0}, sub, taskConfig{
		topology:       topo,
		changelogTopic: func(s string) string { return "app-" + s + "-changelog" },
		partitionsOf:   func(string) int32 { return 2 },
		registry:       NewStoreRegistry(),
		metrics:        &AtomicMetrics{},
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func msg(topic string, part int32, off int64, key string, ts int64) (protocol.TopicPartition, client.Message) {
	tp := protocol.TopicPartition{Topic: topic, Partition: part}
	return tp, client.Message{TP: tp, Offset: off, Record: protocol.Record{
		Key: []byte(key), Value: []byte("v"), Timestamp: ts,
	}}
}

// TestTimestampOrderedProcessing: with two source partitions buffered, the
// task picks records in timestamp order — the paper's deterministic record
// choice (Section 7).
func TestTimestampOrderedProcessing(t *testing.T) {
	topo := NewTopology()
	topo.AddSource("a", "alpha", fakeSerde{}, fakeSerde{})
	topo.AddSource("b", "beta", fakeSerde{}, fakeSerde{})
	var seen []string
	topo.AddProcessor("p", func() Processor { return &orderProc{seen: &seen} }, "a", "b")
	topo.AddStore(StoreSpec{Name: "glue", KeySerde: fakeSerde{}, ValSerde: fakeSerde{}}, "p")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	task := buildTask(t, topo, topo.SubTopologies()[0], &captureCollector{})

	tpA, m1 := msg("alpha", 0, 0, "a1", 100)
	_, m2 := msg("alpha", 0, 1, "a2", 300)
	tpB, m3 := msg("beta", 0, 0, "b1", 50)
	_, m4 := msg("beta", 0, 1, "b2", 200)
	task.AddRecords(tpA, []client.Message{m1, m2})
	task.AddRecords(tpB, []client.Message{m3, m4})
	for task.Buffered() > 0 {
		if ok, err := task.ProcessOne(); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	want := []string{"b1@50", "a1@100", "b2@200", "a2@300"}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", seen, want)
	}
	if task.StreamTime() != 300 {
		t.Fatalf("stream time = %d", task.StreamTime())
	}
	pos := task.Positions()
	if pos[tpA] != 2 || pos[tpB] != 2 {
		t.Fatalf("positions: %v", pos)
	}
}

type punctProc struct {
	BaseProcessor
	fired *[]int64
}

func (p *punctProc) Init(ctx *Context) {
	p.BaseProcessor.Init(ctx)
	ctx.SchedulePunctuation(100, func(st int64) { *p.fired = append(*p.fired, st) })
}

func (p *punctProc) Process(k, v any, ts int64) {}

func TestStreamTimePunctuation(t *testing.T) {
	topo := NewTopology()
	topo.AddSource("s", "in", fakeSerde{}, fakeSerde{})
	var fired []int64
	topo.AddProcessor("p", func() Processor { return &punctProc{fired: &fired} }, "s")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	task := buildTask(t, topo, topo.SubTopologies()[0], &captureCollector{})

	tp := protocol.TopicPartition{Topic: "in", Partition: 0}
	for i, ts := range []int64{10, 50, 120, 130, 350} {
		_, m := msg("in", 0, int64(i), "k", ts)
		task.AddRecords(tp, []client.Message{m})
		task.ProcessOne()
	}
	// First record arms the schedule (next=100); crossing 100 and 300 fire.
	if len(fired) != 2 || fired[0] != 120 || fired[1] != 350 {
		t.Fatalf("punctuations = %v", fired)
	}
}

type storeWriter struct {
	BaseProcessor
	store string
	kv    *TaskKV
}

func (p *storeWriter) Init(ctx *Context) {
	p.BaseProcessor.Init(ctx)
	p.kv = ctx.KV(p.store)
}

func (p *storeWriter) Process(k, v any, ts int64) {
	p.kv.Put(k, v, ts)
}

func TestChangelogRoutingAndCachedFlush(t *testing.T) {
	topo := NewTopology()
	topo.AddSource("s", "in", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("w", func() Processor { return &storeWriter{store: "st"} }, "s")
	topo.AddStore(StoreSpec{
		Name: "st", KeySerde: fakeSerde{}, ValSerde: fakeSerde{},
		Changelog: true, Cached: true,
	}, "w")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	col := &captureCollector{}
	task := buildTask(t, topo, topo.SubTopologies()[0], col)

	tp := protocol.TopicPartition{Topic: "in", Partition: 0}
	for i := 0; i < 5; i++ {
		_, m := msg("in", 0, int64(i), "same-key", int64(i))
		task.AddRecords(tp, []client.Message{m})
		task.ProcessOne()
	}
	// Cached: nothing reaches the changelog until flush.
	if len(col.sent) != 0 {
		t.Fatalf("cached store leaked %d records before flush", len(col.sent))
	}
	if err := task.FlushStores(); err != nil {
		t.Fatal(err)
	}
	// Five writes to one key consolidate into one changelog append, routed
	// to the changelog topic co-partitioned with the task.
	if len(col.sent) != 1 {
		t.Fatalf("changelog records = %d, want 1 (consolidation)", len(col.sent))
	}
	if col.sent[0].topic != "app-st-changelog" || col.sent[0].partition != 0 {
		t.Fatalf("changelog routing: %+v", col.sent[0])
	}
}

func TestStoreRegistryStickinessAndWipe(t *testing.T) {
	reg := NewStoreRegistry()
	spec := &StoreSpec{Name: "s", KeySerde: fakeSerde{}, ValSerde: fakeSerde{}}
	id := TaskID{SubTopology: 0, Partition: 1}

	e1 := reg.acquire(id, "s", spec)
	e1.kv.Put([]byte("k"), []byte("v"))
	reg.SetRestoredOffset(id, "s", 42)
	reg.release(id, true) // clean close keeps the store

	e2 := reg.acquire(id, "s", spec)
	if _, ok := e2.kv.Get([]byte("k")); !ok {
		t.Fatal("clean close lost the store")
	}
	if reg.RestoredOffset(id, "s") != 42 {
		t.Fatalf("restored offset = %d", reg.RestoredOffset(id, "s"))
	}

	reg.release(id, false) // unclean close wipes
	e3 := reg.acquire(id, "s", spec)
	if _, ok := e3.kv.Get([]byte("k")); ok {
		t.Fatal("unclean close kept dirty state")
	}
	if reg.RestoredOffset(id, "s") != 0 {
		t.Fatal("restored offset survived wipe")
	}
}

func TestTaskSinkPartitioning(t *testing.T) {
	topo := NewTopology()
	topo.AddSource("s", "in", fakeSerde{}, fakeSerde{})
	topo.AddSink("out", "out-topic", fakeSerde{}, fakeSerde{}, nil, "s")
	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	col := &captureCollector{}
	task := buildTask(t, topo, topo.SubTopologies()[0], col)
	tp := protocol.TopicPartition{Topic: "in", Partition: 0}
	_, m := msg("in", 0, 0, "route-key", 1)
	task.AddRecords(tp, []client.Message{m})
	task.ProcessOne()
	if len(col.sent) != 1 {
		t.Fatalf("sent = %d", len(col.sent))
	}
	want := client.Partition([]byte("route-key"), 2)
	if col.sent[0].partition != want {
		t.Fatalf("sink partition = %d, want %d", col.sent[0].partition, want)
	}
	processed, emitted := task.Metrics()
	if processed != 1 || emitted != 1 {
		t.Fatalf("metrics: %d %d", processed, emitted)
	}
}
