package core

import "kstreams/internal/obs"

// wmTracker maintains one task's event-time watermark: the minimum, over
// every input partition that has delivered data, of the maximum record
// timestamp seen on that partition. That is the completeness frontier of
// the paper — every event at or before the watermark has been consumed,
// so output up to it can no longer be revised by in-order input. The
// tracker is task-confined (no locking) and its per-record cost is a few
// integer compares over the task's input list (one or two entries for
// every topology in this repo).
type wmTracker struct {
	// perInput is the max observed timestamp per source partition, indexed
	// like Task.queueOrder; -1 until that input delivers its first record.
	perInput []int64
	// watermark is monotone: inputs only advance their max, and the guard
	// in observe keeps a late-starting idle input (whose first record may
	// sit below the current frontier) from ever pulling it backwards.
	watermark int64
}

func newWmTracker(inputs int) wmTracker {
	per := make([]int64, inputs)
	for i := range per {
		per[i] = -1
	}
	return wmTracker{perInput: per, watermark: -1}
}

// observe folds one processed record from input idx and reports whether
// it was out of order (behind that input's previous maximum). Idle
// inputs — partitions that have never delivered — are excluded from the
// merge rather than pinning the watermark at -1 forever; DESIGN §11
// spells out this choice.
func (w *wmTracker) observe(idx int, ts int64) bool {
	prev := w.perInput[idx]
	if prev >= 0 && ts < prev {
		return true
	}
	w.perInput[idx] = ts
	min := int64(-1)
	for _, v := range w.perInput {
		if v < 0 {
			continue
		}
		if min < 0 || v < min {
			min = v
		}
	}
	if min > w.watermark {
		w.watermark = min
	}
	return false
}

// Watermark exposes the task's current event-time watermark (-1 before
// any input has delivered data).
func (t *Task) Watermark() int64 { return t.wm.watermark }

// taskObs holds one task's completeness instrument handles, resolved
// once at task construction so the per-record path touches only cached
// atomics. All handles are nil-safe (nil registry → no-op instruments).
type taskObs struct {
	watermark  *obs.Gauge     // completeness_task_watermark: event-time frontier (ms)
	lag        *obs.Gauge     // completeness_task_lag_ms: freshest input ts − watermark
	lagHist    *obs.Histogram // completeness_lag_observed_ms: lag samples across commits
	outOfOrder *obs.Counter   // records behind their input's frontier
	late       *obs.Counter   // records dropped at window close (grace expired)
}

func newTaskObs(reg *obs.Registry, id TaskID) *taskObs {
	task := obs.L("task", id.String())
	return &taskObs{
		watermark:  reg.Gauge("completeness_task_watermark", task),
		lag:        reg.Gauge("completeness_task_lag_ms", task),
		lagHist:    reg.SizeHistogram("completeness_lag_observed_ms"),
		outOfOrder: reg.Counter("completeness_out_of_order_total", task),
		late:       reg.Counter("completeness_late_records_total", task),
	}
}
