package core

import (
	"strings"
	"testing"
)

type nopProc struct{ BaseProcessor }

func (nopProc) Process(k, v any, ts int64) {}

func nopSupplier() Processor { return &nopProc{} }

type fakeSerde struct{}

func (fakeSerde) Encode(v any) []byte { return []byte(v.(string)) }
func (fakeSerde) Decode(p []byte) any { return string(p) }

func TestBuildSplitsAtRepartitionTopics(t *testing.T) {
	// Mirrors Figure 3: source -> filter -> map -> repartition sink |
	// repartition source -> aggregate -> sink.
	topo := NewTopology()
	topo.AddSource("src", "pageview-events", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("filter", nopSupplier, "src")
	topo.AddProcessor("map", nopSupplier, "filter")
	topo.MarkRepartition("rep", 0)
	topo.AddSink("rep-sink", "rep", fakeSerde{}, fakeSerde{}, nil, "map")
	topo.AddSource("rep-src", "rep", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("agg", nopSupplier, "rep-src")
	topo.AddStore(StoreSpec{Name: "agg-store", KeySerde: fakeSerde{}, ValSerde: fakeSerde{}, Changelog: true}, "agg")
	topo.AddSink("out", "pageview-windowed-counts", fakeSerde{}, fakeSerde{}, nil, "agg")

	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	subs := topo.SubTopologies()
	if len(subs) != 2 {
		t.Fatalf("sub-topologies = %d, want 2", len(subs))
	}
	first := topo.SubTopologyFor("pageview-events")
	second := topo.SubTopologyFor("rep")
	if first == nil || second == nil || first == second {
		t.Fatalf("topic routing wrong: %v / %v", first, second)
	}
	if len(second.Stores) != 1 || second.Stores[0] != "agg-store" {
		t.Fatalf("store placement: %v", second.Stores)
	}
	if len(first.Stores) != 0 {
		t.Fatalf("first sub-topology should be stateless: %v", first.Stores)
	}
	desc := topo.Describe()
	if !strings.Contains(desc, "Sub-topology: 0") || !strings.Contains(desc, "Sub-topology: 1") {
		t.Fatalf("describe:\n%s", desc)
	}
}

func TestBuildUnionsNodesSharingStores(t *testing.T) {
	// Two independent source chains joined only through a shared store
	// (the stream-stream join buffer pattern) must form one sub-topology.
	topo := NewTopology()
	topo.AddSource("l-src", "left", fakeSerde{}, fakeSerde{})
	topo.AddSource("r-src", "right", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("l-join", nopSupplier, "l-src")
	topo.AddProcessor("r-join", nopSupplier, "r-src")
	topo.AddStore(StoreSpec{Name: "buf", Windowed: true, KeySerde: fakeSerde{}, ValSerde: fakeSerde{}}, "l-join", "r-join")

	if err := topo.Build(); err != nil {
		t.Fatal(err)
	}
	if len(topo.SubTopologies()) != 1 {
		t.Fatalf("sub-topologies = %d, want 1 (store must fuse them)", len(topo.SubTopologies()))
	}
	sub := topo.SubTopologies()[0]
	if len(sub.SourceTopics) != 2 {
		t.Fatalf("source topics = %v", sub.SourceTopics)
	}
}

func TestBuildRejectsDuplicateTopicInOneSubTopology(t *testing.T) {
	topo := NewTopology()
	topo.AddSource("a", "same", fakeSerde{}, fakeSerde{})
	topo.AddSource("b", "same", fakeSerde{}, fakeSerde{})
	topo.AddProcessor("m", nopSupplier, "a", "b")
	if err := topo.Build(); err == nil {
		t.Fatal("two sources on one topic in one sub-topology must be rejected")
	}
}

func TestBuildRejectsSourcelessComponent(t *testing.T) {
	topo := NewTopology()
	topo.AddProcessor("orphan", nopSupplier)
	if err := topo.Build(); err == nil {
		t.Fatal("sub-topology without a source must be rejected")
	}
}

func TestTopologyPanicsOnDuplicatesAndUnknowns(t *testing.T) {
	topo := NewTopology()
	topo.AddSource("s", "t", fakeSerde{}, fakeSerde{})
	mustPanic(t, func() { topo.AddSource("s", "t2", fakeSerde{}, fakeSerde{}) })
	mustPanic(t, func() { topo.AddProcessor("p", nopSupplier, "missing") })
	topo.AddProcessor("p", nopSupplier, "s")
	topo.AddStore(StoreSpec{Name: "st", KeySerde: fakeSerde{}, ValSerde: fakeSerde{}}, "p")
	mustPanic(t, func() { topo.AddStore(StoreSpec{Name: "st"}, "p") })
	mustPanic(t, func() { topo.AddStore(StoreSpec{Name: "st2"}, "missing") })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestDeterministicSubTopologyNumbering(t *testing.T) {
	build := func() *Topology {
		topo := NewTopology()
		topo.AddSource("z", "zebra", fakeSerde{}, fakeSerde{})
		topo.AddSource("a", "alpha", fakeSerde{}, fakeSerde{})
		topo.AddProcessor("pz", nopSupplier, "z")
		topo.AddProcessor("pa", nopSupplier, "a")
		if err := topo.Build(); err != nil {
			t.Fatal(err)
		}
		return topo
	}
	t1, t2 := build(), build()
	for i := range t1.SubTopologies() {
		if t1.SubTopologies()[i].SourceTopics[0] != t2.SubTopologies()[i].SourceTopics[0] {
			t.Fatal("sub-topology numbering not deterministic")
		}
	}
	if t1.SubTopologyFor("alpha").ID != 0 {
		t.Fatalf("alpha should be sub-topology 0, got %d", t1.SubTopologyFor("alpha").ID)
	}
}
