package core

// Processor is the per-task operator instance: it receives one record at a
// time and forwards results to child nodes through its Context. Operators
// within a sub-topology are fused — Forward is a direct method call, with
// no network hop (paper Section 3.2).
type Processor interface {
	// Init runs once per task before any record.
	Init(ctx *Context)
	// Process handles one input record.
	Process(key, value any, ts int64)
	// Close runs at task shutdown.
	Close()
}

// BaseProcessor provides no-op Init/Close for simple operators.
type BaseProcessor struct{ Ctx *Context }

// Init stores the context.
func (b *BaseProcessor) Init(ctx *Context) { b.Ctx = ctx }

// Close does nothing.
func (b *BaseProcessor) Close() {}

// Context connects a processor instance to its task: forwarding, state
// store access, stream time, and punctuation scheduling.
type Context struct {
	task *Task
	node *Node
}

// Forward sends a record to every child node.
func (c *Context) Forward(key, value any, ts int64) {
	for _, child := range c.node.children {
		c.task.deliver(child, key, value, ts)
	}
}

// ForwardTo sends a record to one named child.
func (c *Context) ForwardTo(child string, key, value any, ts int64) {
	c.task.deliver(child, key, value, ts)
}

// KV returns a connected key-value store by name.
func (c *Context) KV(name string) *TaskKV {
	s, ok := c.task.kvs[name]
	if !ok {
		panic("core: processor " + c.node.Name + " accessed unconnected store " + name)
	}
	return s
}

// Window returns a connected window store by name.
func (c *Context) Window(name string) *TaskWindow {
	s, ok := c.task.windows[name]
	if !ok {
		panic("core: processor " + c.node.Name + " accessed unconnected window store " + name)
	}
	return s
}

// StreamTime returns the task's observed stream time: the maximum record
// timestamp seen so far, which drives grace-period expiry (Section 5).
func (c *Context) StreamTime() int64 { return c.task.streamTime }

// TaskID identifies the executing task.
func (c *Context) TaskID() TaskID { return c.task.id }

// SchedulePunctuation registers fn to run whenever stream time crosses a
// multiple of interval (milliseconds of event time). Used by operators
// that must act on the passage of time, such as the stream-stream left
// join's expiry of unmatched records.
func (c *Context) SchedulePunctuation(interval int64, fn func(streamTime int64)) {
	c.task.punctuations = append(c.task.punctuations, &punctuation{
		interval: interval,
		next:     -1,
		fn:       fn,
	})
}

// CountLateDrop increments the completeness metric for a record discarded
// beyond its operator's grace period.
func (c *Context) CountLateDrop() {
	c.task.tobs.late.Inc()
	c.task.metrics.LateDropped++
	c.task.metrics.shared.lateDropped.Add(1)
}

// CountRevision increments the revision metric for an emitted update that
// overwrites a previous result.
func (c *Context) CountRevision() {
	c.task.metrics.Revisions++
	c.task.metrics.shared.revisions.Add(1)
}

type punctuation struct {
	interval int64
	next     int64
	fn       func(streamTime int64)
}
