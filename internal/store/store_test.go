package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKVBasics(t *testing.T) {
	s := NewKV()
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("empty store returned a value")
	}
	s.Put([]byte("a"), []byte("1"))
	s.Put([]byte("b"), []byte("2"))
	if v, ok := s.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("get a: %q %v", v, ok)
	}
	s.Put([]byte("a"), []byte("3"))
	if v, _ := s.Get([]byte("a")); string(v) != "3" {
		t.Fatalf("overwrite: %q", v)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	s.Delete([]byte("a"))
	if _, ok := s.Get([]byte("a")); ok {
		t.Fatal("deleted key still present")
	}
	// Put with nil value is a delete.
	s.Put([]byte("b"), nil)
	if s.Len() != 0 {
		t.Fatalf("len after tombstone = %d", s.Len())
	}
}

func TestKVRange(t *testing.T) {
	s := NewKV()
	for _, k := range []string{"d", "a", "c", "b", "e"} {
		s.Put([]byte(k), []byte("v"+k))
	}
	got := s.Range([]byte("b"), []byte("e"))
	want := []string{"b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("range returned %d entries", len(got))
	}
	for i, e := range got {
		if string(e.Key) != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.Key, want[i])
		}
	}
	// Open bounds.
	if all := s.Range(nil, nil); len(all) != 5 || string(all[0].Key) != "a" {
		t.Fatalf("open range: %d entries, first %q", len(all), all[0].Key)
	}
	// Range is consistent after deletes.
	s.Delete([]byte("c"))
	if got := s.Range([]byte("b"), []byte("e")); len(got) != 2 {
		t.Fatalf("range after delete: %d entries", len(got))
	}
}

// TestKVMatchesModel property-checks the store against a plain map.
func TestKVMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewKV()
		model := map[string]string{}
		keys := []string{"a", "b", "c", "d", "e", "f"}
		for i := 0; i < 200; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", i)
				s.Put([]byte(k), []byte(v))
				model[k] = v
			case 2:
				s.Delete([]byte(k))
				delete(model, k)
			}
		}
		if s.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := s.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow()
	w.Put([]byte("k"), 10, []byte("a"))
	w.Put([]byte("k"), 15, []byte("b"))
	w.Put([]byte("j"), 10, []byte("c"))
	if v, ok := w.Get([]byte("k"), 10); !ok || string(v) != "a" {
		t.Fatalf("get: %q %v", v, ok)
	}
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	// Overwrite does not change length.
	w.Put([]byte("k"), 10, []byte("a2"))
	if w.Len() != 3 {
		t.Fatalf("len after overwrite = %d", w.Len())
	}
	es := w.Fetch([]byte("k"), 0, 20)
	if len(es) != 2 || es[0].Start != 10 || es[1].Start != 15 {
		t.Fatalf("fetch: %+v", es)
	}
	all := w.FetchAll(10, 10)
	if len(all) != 2 || string(all[0].Key) != "j" || string(all[1].Key) != "k" {
		t.Fatalf("fetch all: %+v", all)
	}
	// Nil put deletes.
	w.Put([]byte("k"), 15, nil)
	if _, ok := w.Get([]byte("k"), 15); ok || w.Len() != 2 {
		t.Fatal("windowed tombstone failed")
	}
}

func TestWindowDropBefore(t *testing.T) {
	w := NewWindow()
	for start := int64(0); start < 50; start += 10 {
		w.Put([]byte("k"), start, []byte("v"))
	}
	if n := w.DropBefore(30); n != 3 {
		t.Fatalf("dropped %d, want 3", n)
	}
	if w.Len() != 2 {
		t.Fatalf("len = %d", w.Len())
	}
	if _, ok := w.Get([]byte("k"), 20); ok {
		t.Fatal("expired window still present")
	}
	if _, ok := w.Get([]byte("k"), 30); !ok {
		t.Fatal("retained window lost")
	}
}

func TestWindowKeyCodec(t *testing.T) {
	for _, key := range [][]byte{[]byte("k"), {}, []byte("longer-key")} {
		enc := EncodeWindowKey(key, 12345)
		k, start, ok := DecodeWindowKey(enc)
		if !ok || start != 12345 || !bytes.Equal(k, key) {
			t.Fatalf("roundtrip %q: %q %d %v", key, k, start, ok)
		}
	}
	if _, _, ok := DecodeWindowKey([]byte{1, 2}); ok {
		t.Fatal("short window key accepted")
	}
}

func TestCachingKVCoalesces(t *testing.T) {
	inner := NewKV()
	inner.Put([]byte("k"), []byte("v0"))
	c := NewCachingKV(inner)

	c.Put([]byte("k"), []byte("v1"), 1)
	c.Put([]byte("k"), []byte("v2"), 2)
	c.Put([]byte("x"), []byte("y"), 3)

	// Reads see dirty values; the inner store is untouched until flush.
	if v, _ := c.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("cached get = %q", v)
	}
	if v, _ := inner.Get([]byte("k")); string(v) != "v0" {
		t.Fatalf("inner mutated early: %q", v)
	}
	if c.DirtyLen() != 2 {
		t.Fatalf("dirty len = %d", c.DirtyLen())
	}

	var emitted []DirtyEntry
	c.Flush(func(e DirtyEntry) { emitted = append(emitted, e) })

	// Three writes consolidated to two emissions; the k emission carries
	// the latest value and the pre-cache old value.
	if len(emitted) != 2 {
		t.Fatalf("emitted %d entries", len(emitted))
	}
	if string(emitted[0].Key) != "k" || string(emitted[0].Value) != "v2" ||
		string(emitted[0].OldValue) != "v0" || emitted[0].Ts != 2 {
		t.Fatalf("k emission: %+v", emitted[0])
	}
	if v, _ := inner.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("inner after flush = %q", v)
	}
	if c.DirtyLen() != 0 {
		t.Fatal("cache not drained")
	}
	// A second flush emits nothing.
	c.Flush(func(e DirtyEntry) { t.Fatalf("unexpected emission %+v", e) })
}

func TestCachingKVTombstone(t *testing.T) {
	inner := NewKV()
	inner.Put([]byte("k"), []byte("v0"))
	c := NewCachingKV(inner)
	c.Delete([]byte("k"), 5)
	if _, ok := c.Get([]byte("k")); ok {
		t.Fatal("cached delete not visible")
	}
	var emitted []DirtyEntry
	c.Flush(func(e DirtyEntry) { emitted = append(emitted, e) })
	if len(emitted) != 1 || emitted[0].Value != nil || string(emitted[0].OldValue) != "v0" {
		t.Fatalf("tombstone emission: %+v", emitted)
	}
	if _, ok := inner.Get([]byte("k")); ok {
		t.Fatal("inner still has deleted key")
	}
}

// TestCachingEquivalence: with or without the cache, the final store
// contents are identical (the cache only affects emission granularity).
func TestCachingEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plain := NewKV()
		cached := NewCachingKV(NewKV())
		keys := []string{"a", "b", "c"}
		for i := 0; i < 100; i++ {
			k := []byte(keys[rng.Intn(len(keys))])
			if rng.Intn(5) == 0 {
				plain.Delete(k)
				cached.Delete(k, int64(i))
			} else {
				v := []byte(fmt.Sprintf("v%d", i))
				plain.Put(k, v)
				cached.Put(k, v, int64(i))
			}
			if rng.Intn(10) == 0 {
				cached.Flush(nil)
			}
		}
		cached.Flush(nil)
		a := plain.Range(nil, nil)
		b := cached.Inner().Range(nil, nil)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixEnd(t *testing.T) {
	if got := prefixEnd([]byte("ab")); string(got) != "ac" {
		t.Fatalf("prefixEnd(ab) = %q", got)
	}
	if got := prefixEnd([]byte{0x61, 0xff}); !bytes.Equal(got, []byte{0x62}) {
		t.Fatalf("prefixEnd(a,ff) = %v", got)
	}
	if got := prefixEnd([]byte{0xff, 0xff}); got != nil {
		t.Fatalf("prefixEnd(ff,ff) = %v", got)
	}
}
