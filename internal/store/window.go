package store

import (
	"encoding/binary"
	"sync"
)

// WindowKey identifies one window instance of one key.
type WindowKey struct {
	Key   []byte
	Start int64
}

// WindowEntry is one windowed value returned by fetches.
type WindowEntry struct {
	Key   []byte
	Start int64
	Value []byte
}

// Window is a windowed store: values are addressed by (key, window start).
// It backs windowed aggregations (Figure 6) and stream-stream join buffers,
// and supports retention-based garbage collection driven by stream time —
// the grace-period expiry of paper Section 5: "the grace period here only
// controls how much old state Kafka Streams would need to maintain".
type Window interface {
	// Put stores the value for (key, start); nil deletes.
	Put(key []byte, start int64, value []byte)
	// Get returns the value for (key, start).
	Get(key []byte, start int64) ([]byte, bool)
	// Fetch returns this key's windows with from <= start <= to, ascending.
	Fetch(key []byte, from, to int64) []WindowEntry
	// FetchAll returns every window with from <= start <= to across keys,
	// ordered by (start, key).
	FetchAll(from, to int64) []WindowEntry
	// DropBefore removes all windows with start < bound, returning how many
	// entries were evicted.
	DropBefore(bound int64) int
	Len() int
	Reset()
}

// memWindow stores windows in two indexes: by key (for aggregation lookups)
// and by start time (for retention and expiry scans).
type memWindow struct {
	mu     sync.RWMutex
	byKey  map[string]map[int64][]byte
	byTime map[int64]map[string][]byte
	n      int
}

// NewWindow returns an empty in-memory window store.
func NewWindow() Window {
	return &memWindow{
		byKey:  make(map[string]map[int64][]byte),
		byTime: make(map[int64]map[string][]byte),
	}
}

func (s *memWindow) Put(key []byte, start int64, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := string(key)
	if value == nil {
		if wins, ok := s.byKey[k]; ok {
			if _, had := wins[start]; had {
				delete(wins, start)
				if len(wins) == 0 {
					delete(s.byKey, k)
				}
				delete(s.byTime[start], k)
				if len(s.byTime[start]) == 0 {
					delete(s.byTime, start)
				}
				s.n--
			}
		}
		return
	}
	wins, ok := s.byKey[k]
	if !ok {
		wins = make(map[int64][]byte)
		s.byKey[k] = wins
	}
	if _, had := wins[start]; !had {
		s.n++
	}
	wins[start] = value
	times, ok := s.byTime[start]
	if !ok {
		times = make(map[string][]byte)
		s.byTime[start] = times
	}
	times[k] = value
}

func (s *memWindow) Get(key []byte, start int64) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wins, ok := s.byKey[string(key)]
	if !ok {
		return nil, false
	}
	v, ok := wins[start]
	return v, ok
}

func (s *memWindow) Fetch(key []byte, from, to int64) []WindowEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	wins, ok := s.byKey[string(key)]
	if !ok {
		return nil
	}
	out := make([]WindowEntry, 0, len(wins))
	for start, v := range wins {
		if start >= from && start <= to {
			out = append(out, WindowEntry{Key: key, Start: start, Value: v})
		}
	}
	sortWindowEntries(out)
	return out
}

func (s *memWindow) FetchAll(from, to int64) []WindowEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	count := 0
	for start, keys := range s.byTime {
		if start >= from && start <= to {
			count += len(keys)
		}
	}
	out := make([]WindowEntry, 0, count)
	for start, keys := range s.byTime {
		if start < from || start > to {
			continue
		}
		for k, v := range keys {
			//kslint:ignore hotalloc window keys are stored as map strings; the copy out is the API's owned result
			out = append(out, WindowEntry{Key: []byte(k), Start: start, Value: v})
		}
	}
	sortWindowEntries(out)
	return out
}

func (s *memWindow) DropBefore(bound int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for start, keys := range s.byTime {
		if start >= bound {
			continue
		}
		for k := range keys {
			wins := s.byKey[k]
			delete(wins, start)
			if len(wins) == 0 {
				delete(s.byKey, k)
			}
			dropped++
		}
		delete(s.byTime, start)
	}
	s.n -= dropped
	return dropped
}

func (s *memWindow) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func (s *memWindow) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byKey = make(map[string]map[int64][]byte)
	s.byTime = make(map[int64]map[string][]byte)
	s.n = 0
}

func sortWindowEntries(es []WindowEntry) {
	// Insertion sort: fetches are small (few windows per key).
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && windowEntryLess(es[j], es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func windowEntryLess(a, b WindowEntry) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return string(a.Key) < string(b.Key)
}

// EncodeWindowKey serializes (key, start) for changelog records: 8-byte
// big-endian start followed by the key bytes.
func EncodeWindowKey(key []byte, start int64) []byte {
	out := make([]byte, 8+len(key))
	binary.BigEndian.PutUint64(out[:8], uint64(start))
	copy(out[8:], key)
	return out
}

// DecodeWindowKey parses a changelog window key.
func DecodeWindowKey(p []byte) (key []byte, start int64, ok bool) {
	if len(p) < 8 {
		return nil, 0, false
	}
	start = int64(binary.BigEndian.Uint64(p[:8]))
	key = append([]byte(nil), p[8:]...)
	return key, start, true
}
