// Package store provides the state stores backing stateful Streams
// operators (paper Section 3.2): key-value stores, window stores for
// windowed aggregations and stream-stream join buffers, and a write-back
// caching layer that consolidates downstream emissions. Stores are
// disposable materialized views: the changelog topics capturing their
// updates are the source of truth (paper Section 4), so stores here are
// in-memory structures rebuilt by changelog replay on task migration.
package store

import (
	"bytes"
	"sort"
	"sync"
)

// Entry is one key-value pair returned by iteration.
type Entry struct {
	Key   []byte
	Value []byte
}

// KV is a byte-oriented key-value store with ordered iteration.
type KV interface {
	Get(key []byte) ([]byte, bool)
	// Put stores value under key; a nil value is a tombstone (delete).
	Put(key, value []byte)
	Delete(key []byte)
	// Range returns entries with from <= key < to in key order; nil bounds
	// are open.
	Range(from, to []byte) []Entry
	// Len returns the number of live keys.
	Len() int
	// Reset drops all contents (before a full restore).
	Reset()
}

// memKV is a sorted in-memory KV store. A copy-on-read sorted key index is
// rebuilt lazily after writes; point lookups are map-speed.
type memKV struct {
	mu     sync.RWMutex
	m      map[string][]byte
	keys   []string
	sorted bool
}

// NewKV returns an empty in-memory store.
func NewKV() KV {
	return &memKV{m: make(map[string][]byte)}
}

func (s *memKV) Get(key []byte) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[string(key)]
	return v, ok
}

func (s *memKV) Put(key, value []byte) {
	if value == nil {
		s.Delete(key)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := string(key)
	if _, existed := s.m[k]; !existed {
		s.sorted = false
	}
	s.m[k] = value
}

func (s *memKV) Delete(key []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := string(key)
	if _, existed := s.m[k]; existed {
		delete(s.m, k)
		s.sorted = false
	}
}

func (s *memKV) ensureSortedLocked() {
	if s.sorted {
		return
	}
	s.keys = s.keys[:0]
	for k := range s.m {
		s.keys = append(s.keys, k)
	}
	sort.Strings(s.keys)
	s.sorted = true
}

func (s *memKV) Range(from, to []byte) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSortedLocked()
	lo := 0
	if from != nil {
		lo = sort.SearchStrings(s.keys, string(from))
	}
	hi := len(s.keys)
	if to != nil {
		hi = sort.SearchStrings(s.keys, string(to))
	}
	out := make([]Entry, 0, hi-lo)
	for _, k := range s.keys[lo:hi] {
		out = append(out, Entry{Key: []byte(k), Value: s.m[k]})
	}
	return out
}

func (s *memKV) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

func (s *memKV) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m = make(map[string][]byte)
	s.keys = nil
	s.sorted = false
}

// prefixEnd returns the smallest byte string greater than every string with
// the given prefix, or nil when the prefix is all 0xff.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// equalBytes is bytes.Equal with nil == empty semantics.
func equalBytes(a, b []byte) bool { return bytes.Equal(a, b) }
