package store

import "sync"

// DirtyEntry is one cached write pending flush, carrying both the new
// value and the value it replaced so downstream table consumers can
// retract-and-accumulate (paper Section 5).
type DirtyEntry struct {
	Key      []byte
	Value    []byte // nil = tombstone
	OldValue []byte // value before the first dirty write in this interval
	Ts       int64
}

// CachingKV is a write-back cache over a KV store. Writes coalesce per key
// between flushes; Flush applies them to the inner store and hands the
// consolidated entries (one per key, latest value, original old value) to
// the callback, which forwards them downstream and to the changelog. This
// is the state-store cache of paper Sections 5 and 6.2 ("output
// suppression caching") that consolidates multiple revisions of the same
// key into a single emitted record per commit interval.
type CachingKV struct {
	mu    sync.Mutex
	inner KV
	dirty map[string]*DirtyEntry
	order []string // flush in first-write order for determinism
}

// NewCachingKV wraps a KV store with a write-back cache.
func NewCachingKV(inner KV) *CachingKV {
	return &CachingKV{inner: inner, dirty: make(map[string]*DirtyEntry)}
}

// Get returns the cached value if dirty, else the inner store's value.
func (c *CachingKV) Get(key []byte) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.dirty[string(key)]; ok {
		return e.Value, e.Value != nil
	}
	return c.inner.Get(key)
}

// Put stages a write. The pre-image is captured on the first dirty write
// for the key in this flush interval.
func (c *CachingKV) Put(key, value []byte, ts int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := string(key)
	if e, ok := c.dirty[k]; ok {
		e.Value = value
		e.Ts = ts
		return
	}
	old, _ := c.inner.Get(key)
	c.dirty[k] = &DirtyEntry{
		Key:      append([]byte(nil), key...),
		Value:    value,
		OldValue: old,
		Ts:       ts,
	}
	c.order = append(c.order, k)
}

// Delete stages a tombstone.
func (c *CachingKV) Delete(key []byte, ts int64) { c.Put(key, nil, ts) }

// Flush applies dirty entries to the inner store and invokes emit for each
// consolidated entry. Entries whose final value equals their pre-image are
// still emitted (a same-value update is a legitimate revision); entries
// that were never written are not.
func (c *CachingKV) Flush(emit func(DirtyEntry)) {
	c.mu.Lock()
	entries := make([]*DirtyEntry, 0, len(c.order))
	for _, k := range c.order {
		entries = append(entries, c.dirty[k])
	}
	c.dirty = make(map[string]*DirtyEntry)
	c.order = c.order[:0]
	for _, e := range entries {
		if e.Value == nil {
			c.inner.Delete(e.Key)
		} else {
			c.inner.Put(e.Key, e.Value)
		}
	}
	c.mu.Unlock()
	if emit != nil {
		for _, e := range entries {
			emit(*e)
		}
	}
}

// DirtyLen returns the number of keys pending flush.
func (c *CachingKV) DirtyLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.dirty)
}

// Inner exposes the wrapped store (for restoration and queries).
func (c *CachingKV) Inner() KV { return c.inner }
