package sim

import (
	"sync"
	"sync/atomic"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
	"kstreams/streams"
)

// watcher is a read-committed observer pinned (via manual assignment) to
// every simulation partition. It checks the online invariants on each
// fetch and delivery:
//
//	I2: delivered offsets per partition strictly increase
//	I3: LSO <= HW on every fetch response (via ObserveFetch)
//	I4: no abort-tagged input value is ever delivered read-committed
//	I1 (online half): per-key counts on sim-out strictly increase —
//	    a duplicate or replayed aggregate emission would repeat or
//	    regress a count.
type watcher struct {
	r    *runner
	cons *client.Consumer

	stopCh chan struct{}
	wg     sync.WaitGroup

	// delivered totals records seen; part of the drain fingerprint.
	delivered atomic.Int64

	mu         sync.Mutex
	lastOffset map[protocol.TopicPartition]int64
	lastCount  map[string]int64 // sim-out per-key last value
}

func newWatcher(r *runner) *watcher {
	w := &watcher{
		r:          r,
		stopCh:     make(chan struct{}),
		lastOffset: make(map[protocol.TopicPartition]int64),
		lastCount:  make(map[string]int64),
	}
	w.cons = client.NewConsumer(r.cluster.Net(), client.ConsumerConfig{
		Controller: r.cluster.Controller(),
		Isolation:  protocol.ReadCommitted,
		Reset:      client.ResetEarliest,
		ObserveFetch: func(tp protocol.TopicPartition, hw, lso, logStart int64) {
			if lso > hw {
				r.viol.add("I3", "%s: LSO %d > HW %d observed at fetch", tp, lso, hw)
			}
			if logStart > lso {
				r.viol.add("I3", "%s: log start %d > LSO %d observed at fetch", tp, logStart, lso)
			}
		},
	})
	w.cons.Assign(r.allPartitions()...)
	return w
}

func (w *watcher) start() {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		w.loop()
	}()
}

func (w *watcher) stop() {
	close(w.stopCh)
	w.wg.Wait()
	w.cons.Abandon()
}

func (w *watcher) loop() {
	for {
		select {
		case <-w.stopCh:
			return
		default:
		}
		msgs, err := w.cons.Poll()
		if err == nil {
			w.observe(msgs)
		}
		// Poll errors are transient (leader elections mid-crash); the
		// next cycle retries with fresh metadata.
		w.r.clock.Sleep(watcherPoll)
	}
}

func (w *watcher) observe(msgs []client.Message) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, m := range msgs {
		w.delivered.Add(1)
		if last, ok := w.lastOffset[m.TP]; ok && m.Offset <= last {
			w.r.viol.add("I2", "%s: delivered offset %d after %d (non-monotonic)", m.TP, m.Offset, last)
		}
		w.lastOffset[m.TP] = m.Offset
		switch m.TP.Topic {
		case inTopic:
			if isAbortTagged(m.Record.Value) {
				w.r.viol.add("I4", "%s@%d: read-committed delivery of aborted record %q", m.TP, m.Offset, m.Record.Value)
			}
		case outTopic:
			k, n, ok := decodeCount(m.Record)
			if !ok {
				w.r.viol.add("I1", "%s@%d: undecodable count record", m.TP, m.Offset)
				continue
			}
			if last, seen := w.lastCount[k]; seen && n <= last {
				w.r.viol.add("I1", "key %s: count went %d -> %d (duplicate or lost aggregate emission)", k, last, n)
			}
			w.lastCount[k] = n
		}
	}
}

// decodeCount decodes a sim-out (or counts-changelog) record into its
// string key and int64 count.
func decodeCount(rec protocol.Record) (string, int64, bool) {
	if len(rec.Key) == 0 || len(rec.Value) != 8 {
		return "", 0, false
	}
	k, ok := streams.StringSerde.Decode(rec.Key).(string)
	if !ok {
		return "", 0, false
	}
	n, ok := streams.Int64Serde.Decode(rec.Value).(int64)
	if !ok {
		return "", 0, false
	}
	return k, n, true
}
