package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"kstreams/internal/client"
	"kstreams/internal/protocol"
)

// Workload shape: the oracle produces rounds of records under a
// transactional producer, deliberately aborting a fraction of rounds so
// the read-committed path is exercised. Values are tagged with the
// intended outcome ("c|" commit, "a|" abort); a tagged-abort value seen
// by any read-committed consumer is an I4 violation by construction.
const (
	recordsPerRound = 4
	abortFraction   = 0.2
	numKeys         = 6
)

const (
	tagCommit = "c|"
	tagAbort  = "a|"
)

// oracle is the external workload generator. Its randomness is seeded
// independently of the schedule (seed+1) so shrinking the schedule never
// changes the workload.
type oracle struct {
	r   *runner
	rng *rand.Rand

	// Deterministic outcome tallies for the report.
	committedRounds int
	abortedRounds   int
	// indeterminate counts rounds whose transaction outcome is unknown
	// (an error escaped the retry budget mid-commit). Normally zero.
	indeterminate int
}

func newOracle(r *runner) *oracle {
	return &oracle{r: r, rng: rand.New(rand.NewSource(r.cfg.Seed + 1))}
}

func key(i int) string { return fmt.Sprintf("k%d", i) }

// run produces every round, spacing rounds on the virtual clock so the
// fault schedule interleaves with the load window.
func (o *oracle) run() {
	p, err := client.NewProducer(o.r.cluster.Net(), client.ProducerConfig{
		Controller:      o.r.cluster.Controller(),
		TransactionalID: "sim-oracle",
		TxnTimeout:      txnTimeoutV,
	})
	if err != nil {
		o.r.viol.add("L", "oracle producer init: %v", err)
		return
	}
	defer p.Close()
	for round := 0; round < o.r.cfg.rounds(); round++ {
		o.r.clock.Sleep(roundGap)
		abort := o.rng.Float64() < abortFraction
		// Draw the round's keys before attempting the txn so the rng
		// stream is consumed identically even when a txn fails.
		keys := make([]string, recordsPerRound)
		for i := range keys {
			keys[i] = key(o.rng.Intn(numKeys))
		}
		switch err := o.txn(p, round, keys, abort); {
		case err != nil:
			o.indeterminate++
			o.r.viol.add("L", "oracle round %d: %v", round, err)
		case abort:
			o.abortedRounds++
		default:
			o.committedRounds++
		}
	}
}

// txn runs one transactional round. Aborted rounds still Flush first so
// the doomed records land in the log — AbortTxn would otherwise just
// clear the client buffer and read-committed filtering would go untested.
func (o *oracle) txn(p *client.Producer, round int, keys []string, abort bool) error {
	if err := p.BeginTxn(); err != nil {
		return fmt.Errorf("begin: %w", err)
	}
	tag := tagCommit
	if abort {
		tag = tagAbort
	}
	for i, k := range keys {
		rec := protocol.Record{
			Key:       []byte(k),
			Value:     []byte(fmt.Sprintf("%sr%03d.%d", tag, round, i)),
			Timestamp: o.r.clock.Now().UnixMilli(),
		}
		if err := p.Send(inTopic, rec); err != nil {
			// Clean up so the next round can begin a fresh txn.
			if aerr := p.AbortTxn(); aerr != nil {
				return fmt.Errorf("send: %v; abort: %w", err, aerr)
			}
			return fmt.Errorf("send: %w", err)
		}
	}
	if abort {
		if err := p.Flush(); err != nil {
			if aerr := p.AbortTxn(); aerr != nil {
				return fmt.Errorf("flush: %v; abort: %w", err, aerr)
			}
			return fmt.Errorf("flush: %w", err)
		}
		if err := p.AbortTxn(); err != nil {
			return fmt.Errorf("abort: %w", err)
		}
		return nil
	}
	if err := p.CommitTxn(); err != nil {
		return fmt.Errorf("commit: %w", err)
	}
	return nil
}

// isAbortTagged reports whether a record value carries the abort tag.
func isAbortTagged(value []byte) bool {
	return strings.HasPrefix(string(value), tagAbort)
}
