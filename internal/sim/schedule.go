package sim

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind names a fault-schedule event. Events come in open/close pairs
// (crash/restore, partition/heal, delay/undelay, kill-app/restart-app,
// crash-txncoord/restore-txncoord, add-thread/remove-thread); the
// generator always emits both halves and the shrinker removes them
// together, so a shrunk schedule never leaves a broker crashed or a
// link cut at drain time.
type Kind string

// Schedule event kinds.
const (
	KindCrash           Kind = "crash"
	KindRestore         Kind = "restore"
	KindPartition       Kind = "partition"
	KindHeal            Kind = "heal"
	KindDelay           Kind = "delay"
	KindUndelay         Kind = "undelay"
	KindKillApp         Kind = "kill-app"
	KindRestartApp      Kind = "restart-app"
	KindCrashTxnCoord   Kind = "crash-txncoord"
	KindRestoreTxnCoord Kind = "restore-txncoord"
	// add-thread/remove-thread scale an instance up by one stream thread
	// and back down — a pair of cooperative rebalances with live task
	// migration (and standby reshuffling) but no failure, the scaling
	// direction of the recovery protocol (DESIGN §13).
	KindAddThread    Kind = "add-thread"
	KindRemoveThread Kind = "remove-thread"
)

// Event is one scheduled fault at a virtual time offset from run start.
type Event struct {
	At   time.Duration
	Kind Kind
	// A and B are broker ids (crash/restore use A; partition/heal use
	// both). crash-txncoord resolves its target at apply time.
	A, B int32
	// Extra is the injected per-RPC latency for delay events.
	Extra time.Duration
	// App is the application-instance index for kill/restart events.
	App int
	// Pair links an open event to its close; both halves share the id.
	Pair int
}

func (e Event) String() string {
	at := fmt.Sprintf("t=%dms", e.At.Milliseconds())
	switch e.Kind {
	case KindCrash, KindRestore:
		return fmt.Sprintf("%s %s broker %d", at, e.Kind, e.A)
	case KindPartition, KindHeal:
		return fmt.Sprintf("%s %s brokers %d %d", at, e.Kind, e.A, e.B)
	case KindDelay:
		return fmt.Sprintf("%s delay +%dms", at, e.Extra.Milliseconds())
	case KindUndelay:
		return fmt.Sprintf("%s undelay", at)
	case KindKillApp, KindRestartApp, KindAddThread, KindRemoveThread:
		return fmt.Sprintf("%s %s instance %d", at, e.Kind, e.App)
	default: // crash-txncoord / restore-txncoord
		return fmt.Sprintf("%s %s", at, e.Kind)
	}
}

// Schedule is a seeded fault schedule: the events, sorted by time.
type Schedule struct {
	Seed   int64
	Events []Event
}

// sortEvents orders by (At, Kind, targets) so rendering and application
// order are stable even when two events share a timestamp. The tie-break
// deliberately ignores Pair: pair ids are generation-order on a fresh
// schedule but re-derived time-order after ParseSchedule, so any ordering
// that consults them breaks the Render/Parse round trip.
func sortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		if a.App != b.App {
			return a.App < b.App
		}
		return a.Extra < b.Extra
	})
}

// Generate derives the fault schedule from a seed. The generator keeps
// the run recoverable: at most one broker is down at a time (txn
// coordinator crashes count), every fault is healed before the drain
// window, and delay spikes are bounded.
func Generate(seed int64, brokers int32, apps int, loadWindow time.Duration, short bool) Schedule {
	rng := rand.New(rand.NewSource(seed))
	nPairs := 3 + rng.Intn(4) // 3..6
	if short {
		nPairs = 2 + rng.Intn(3) // 2..4
	}
	s := Schedule{Seed: seed}
	// Earliest event: after startup/rebalance settles. Latest close: before
	// the drain window so the cluster is whole when the checkers run.
	lo := 300 * time.Millisecond
	hi := loadWindow + 400*time.Millisecond
	// Whole milliseconds only: the virtual clock steps in 1ms quanta, and
	// Render prints millisecond offsets — sub-ms event times would be
	// truncated on render and re-sorted differently after a parse.
	durRange := func(min, max time.Duration) time.Duration {
		return min + time.Duration(rng.Int63n(int64((max-min)/time.Millisecond)))*time.Millisecond
	}
	// brokerFreeAt serializes broker-down pairs so two never overlap.
	brokerFreeAt := lo
	appFreeAt := lo
	for pair := 1; pair <= nPairs; pair++ {
		kindRoll := rng.Intn(12)
		switch {
		case kindRoll < 3: // broker crash/restore
			at := brokerFreeAt + durRange(0, 400*time.Millisecond)
			down := durRange(400*time.Millisecond, time.Second)
			if at+down > hi {
				continue
			}
			b := 1 + rng.Int31n(brokers)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindCrash, A: b, Pair: pair},
				Event{At: at + down, Kind: KindRestore, A: b, Pair: pair})
			brokerFreeAt = at + down + 600*time.Millisecond
		case kindRoll < 4: // txn-coordinator failover
			at := brokerFreeAt + durRange(0, 400*time.Millisecond)
			down := durRange(400*time.Millisecond, time.Second)
			if at+down > hi {
				continue
			}
			s.Events = append(s.Events,
				Event{At: at, Kind: KindCrashTxnCoord, Pair: pair},
				Event{At: at + down, Kind: KindRestoreTxnCoord, Pair: pair})
			brokerFreeAt = at + down + 600*time.Millisecond
		case kindRoll < 6: // pairwise partition/heal
			at := lo + durRange(0, hi-lo-800*time.Millisecond)
			dur := durRange(300*time.Millisecond, 800*time.Millisecond)
			a := 1 + rng.Int31n(brokers)
			b := 1 + rng.Int31n(brokers)
			if a == b {
				b = 1 + (a % brokers)
			}
			s.Events = append(s.Events,
				Event{At: at, Kind: KindPartition, A: a, B: b, Pair: pair},
				Event{At: at + dur, Kind: KindHeal, A: a, B: b, Pair: pair})
		case kindRoll < 8: // transport delay spike
			at := lo + durRange(0, hi-lo-700*time.Millisecond)
			dur := durRange(200*time.Millisecond, 600*time.Millisecond)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindDelay, Extra: time.Duration(1+rng.Intn(10)) * time.Millisecond, Pair: pair},
				Event{At: at + dur, Kind: KindUndelay, Pair: pair})
		case kindRoll < 10: // stream-instance kill + replace
			at := appFreeAt + durRange(0, 500*time.Millisecond)
			gap := durRange(300*time.Millisecond, 600*time.Millisecond)
			if at+gap > hi {
				continue
			}
			app := rng.Intn(apps)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindKillApp, App: app, Pair: pair},
				Event{At: at + gap, Kind: KindRestartApp, App: app, Pair: pair})
			appFreeAt = at + gap + 700*time.Millisecond
		default: // live scale-up then scale-down of one instance
			// Serialized on appFreeAt with kill/restart pairs so a scale
			// window never overlaps an instance death — remove-thread on a
			// freshly replaced (single-thread) instance would be a no-op
			// that leaves the extra thread behind.
			at := appFreeAt + durRange(0, 500*time.Millisecond)
			up := durRange(300*time.Millisecond, 700*time.Millisecond)
			if at+up > hi {
				continue
			}
			app := rng.Intn(apps)
			s.Events = append(s.Events,
				Event{At: at, Kind: KindAddThread, App: app, Pair: pair},
				Event{At: at + up, Kind: KindRemoveThread, App: app, Pair: pair})
			appFreeAt = at + up + 700*time.Millisecond
		}
	}
	sortEvents(s.Events)
	return s
}

// Render writes the schedule in its replayable text form.
func (s Schedule) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# kssim schedule seed=%d\n", s.Seed)
	for _, e := range s.Events {
		switch e.Kind {
		case KindCrash, KindRestore:
			fmt.Fprintf(&b, "%d %s %d\n", e.At.Milliseconds(), e.Kind, e.A)
		case KindPartition, KindHeal:
			fmt.Fprintf(&b, "%d %s %d %d\n", e.At.Milliseconds(), e.Kind, e.A, e.B)
		case KindDelay:
			fmt.Fprintf(&b, "%d %s %d\n", e.At.Milliseconds(), e.Kind, e.Extra.Milliseconds())
		case KindKillApp, KindRestartApp, KindAddThread, KindRemoveThread:
			fmt.Fprintf(&b, "%d %s %d\n", e.At.Milliseconds(), e.Kind, e.App)
		default:
			fmt.Fprintf(&b, "%d %s\n", e.At.Milliseconds(), e.Kind)
		}
	}
	return b.String()
}

// ParseSchedule reads the Render text form back. Pair ids are re-derived
// by matching each open event to the first unmatched close of its
// counterpart kind (and arguments, where the kind carries any).
func ParseSchedule(r io.Reader) (Schedule, error) {
	var s Schedule
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			// The header comment carries the generating seed; recover it so
			// a replayed schedule reports under its original identity.
			if i := strings.LastIndex(text, "seed="); i >= 0 {
				fmt.Sscanf(text[i+len("seed="):], "%d", &s.Seed)
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return s, fmt.Errorf("sim: schedule line %d: %q", line, text)
		}
		var ms int64
		if _, err := fmt.Sscanf(fields[0], "%d", &ms); err != nil {
			return s, fmt.Errorf("sim: schedule line %d: bad time %q", line, fields[0])
		}
		e := Event{At: time.Duration(ms) * time.Millisecond, Kind: Kind(fields[1])}
		argInt := func(i int) (int64, error) {
			if len(fields) <= i {
				return 0, fmt.Errorf("sim: schedule line %d: missing argument", line)
			}
			var v int64
			_, err := fmt.Sscanf(fields[i], "%d", &v)
			return v, err
		}
		var err error
		var v, w int64
		switch e.Kind {
		case KindCrash, KindRestore:
			if v, err = argInt(2); err == nil {
				e.A = int32(v)
			}
		case KindPartition, KindHeal:
			if v, err = argInt(2); err == nil {
				e.A = int32(v)
				if w, err = argInt(3); err == nil {
					e.B = int32(w)
				}
			}
		case KindDelay:
			if v, err = argInt(2); err == nil {
				e.Extra = time.Duration(v) * time.Millisecond
			}
		case KindKillApp, KindRestartApp, KindAddThread, KindRemoveThread:
			if v, err = argInt(2); err == nil {
				e.App = int(v)
			}
		case KindUndelay, KindCrashTxnCoord, KindRestoreTxnCoord:
		default:
			return s, fmt.Errorf("sim: schedule line %d: unknown kind %q", line, fields[1])
		}
		if err != nil {
			return s, fmt.Errorf("sim: schedule line %d: %v", line, err)
		}
		s.Events = append(s.Events, e)
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	rePair(&s)
	return s, nil
}

// closeKind maps an open event kind to its close; ok is false for closes.
func closeKind(k Kind) (Kind, bool) {
	switch k {
	case KindCrash:
		return KindRestore, true
	case KindPartition:
		return KindHeal, true
	case KindDelay:
		return KindUndelay, true
	case KindKillApp:
		return KindRestartApp, true
	case KindCrashTxnCoord:
		return KindRestoreTxnCoord, true
	case KindAddThread:
		return KindRemoveThread, true
	}
	return "", false
}

func sameTarget(open, cl Event) bool {
	switch open.Kind {
	case KindCrash:
		return open.A == cl.A
	case KindPartition:
		return open.A == cl.A && open.B == cl.B
	case KindKillApp, KindAddThread:
		return open.App == cl.App
	}
	return true
}

// rePair assigns fresh Pair ids by matching open events (in time order)
// to the first later unmatched close of the counterpart kind and target.
func rePair(s *Schedule) {
	sortEvents(s.Events)
	next := 1
	for i := range s.Events {
		s.Events[i].Pair = 0
	}
	for i := range s.Events {
		ck, isOpen := closeKind(s.Events[i].Kind)
		if !isOpen || s.Events[i].Pair != 0 {
			continue
		}
		s.Events[i].Pair = next
		for j := i + 1; j < len(s.Events); j++ {
			if s.Events[j].Pair == 0 && s.Events[j].Kind == ck && sameTarget(s.Events[i], s.Events[j]) {
				s.Events[j].Pair = next
				break
			}
		}
		next++
	}
	// Orphan closes (possible in a hand-edited file) get their own ids.
	for i := range s.Events {
		if s.Events[i].Pair == 0 {
			s.Events[i].Pair = next
			next++
		}
	}
}

// pairs groups the schedule's events by Pair id, in first-occurrence
// order — the unit of removal during shrinking.
func (s Schedule) pairs() [][]Event {
	order := make([]int, 0, len(s.Events))
	byPair := make(map[int][]Event)
	for _, e := range s.Events {
		if _, seen := byPair[e.Pair]; !seen {
			order = append(order, e.Pair)
		}
		byPair[e.Pair] = append(byPair[e.Pair], e)
	}
	out := make([][]Event, 0, len(order))
	for _, id := range order {
		out = append(out, byPair[id])
	}
	return out
}

// withoutPair returns a copy of the schedule minus one pair group.
func (s Schedule) withoutPair(pairID int) Schedule {
	out := Schedule{Seed: s.Seed}
	for _, e := range s.Events {
		if e.Pair != pairID {
			out.Events = append(out.Events, e)
		}
	}
	return out
}
