package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kstreams/internal/retry"
	"kstreams/internal/transport"
)

// driver advances virtual time. It runs on the test's goroutine while the
// scenario script runs beside it; each iteration waits (in real time) for
// the system to go quiescent — every goroutine parked in Clock.Sleep/After
// and no RPC in flight — then either applies the next due schedule event
// or steps the clock to the earliest registered deadline.
//
// Quiescence is a heuristic: a goroutine between a returned RPC and its
// next clock wait is invisible for a few microseconds. A false advance is
// safe — it can only move time to the next already-registered deadline,
// never reorder two registered waits — so safety invariants are
// unaffected; the settle window just keeps the timeline reproducible.
type driver struct {
	clock *retry.Virtual
	net   *transport.Network
	start time.Time

	apply func(Event) // runs one schedule event (driver goroutine)

	mu      sync.Mutex
	pending []Event // schedule events not yet applied, sorted by At

	// eventsInFlight counts apply goroutines still running.
	eventsInFlight atomic.Int64

	stop atomic.Bool
}

const (
	// Quiescence is sampled between bursts of runtime.Gosched yields
	// rather than timed sleeps: time.Sleep has a ~1ms floor on stock
	// kernels, which would put a millisecond of wall time under every
	// virtual step. Yielding gives every runnable goroutine the CPU and
	// returns in microseconds once they are all parked.
	settleSampleYields = 32
	// settleRounds consecutive stable samples (activity counter
	// unchanged, no RPC in flight) declare the system quiescent.
	settleRounds = 4
	// settleRoundsBlocked is the longer window used when RPCs are still
	// in flight: a handler parked in a replication wait (cond.Wait) keeps
	// InFlight nonzero forever, and only advancing the clock — waking the
	// follower poll loops — can unblock it.
	settleRoundsBlocked = 24
	// wallCap aborts a run whose script wedged on something that virtual
	// time cannot unblock (a bug in the harness or the system under test).
	wallCap = 10 * time.Minute
)

func newDriver(clock *retry.Virtual, net *transport.Network, sched Schedule, apply func(Event)) *driver {
	d := &driver{clock: clock, net: net, apply: apply, start: clock.Now()}
	d.pending = append(d.pending, sched.Events...)
	sortEvents(d.pending)
	return d
}

// settle blocks until the system looks quiescent: clock activity stable
// with no RPC in flight (fast path), or stable for the longer blocked
// window when handlers are parked mid-RPC waiting for replication.
func (d *driver) settle() {
	stable := 0
	last := d.clock.Activity()
	for {
		if d.stop.Load() {
			return
		}
		for i := 0; i < settleSampleYields; i++ {
			runtime.Gosched()
		}
		cur := d.clock.Activity()
		if cur != last {
			stable = 0
			last = cur
			continue
		}
		stable++
		if d.net.InFlight() == 0 {
			if stable >= settleRounds {
				return
			}
		} else if stable >= settleRoundsBlocked {
			return
		}
	}
}

// run steps until done closes (the scenario script finished) or the wall
// cap expires. It returns false on wall-cap timeout.
func (d *driver) run(done <-chan struct{}) bool {
	deadline := retry.Wall.Now().Add(wallCap)
	for {
		select {
		case <-done:
			return true
		default:
		}
		if retry.Wall.Now().After(deadline) {
			d.stop.Store(true)
			return false
		}
		d.settle()
		d.tick()
	}
}

// tick performs one scheduling decision: apply the next due schedule
// event, or advance the clock toward min(next event, next deadline).
func (d *driver) tick() {
	now := d.clock.Now().Sub(d.start)

	d.mu.Lock()
	var next *Event
	if len(d.pending) > 0 {
		next = &d.pending[0]
	}
	// Apply every event due at or before the current virtual time.
	if next != nil && next.At <= now {
		ev := d.pending[0]
		d.pending = d.pending[1:]
		d.mu.Unlock()
		d.eventsInFlight.Add(1)
		// Fault application can block on virtual time (a broker Stop
		// waits for loops parked on the clock), so it runs beside the
		// driver, which keeps stepping.
		go func() {
			defer d.eventsInFlight.Add(-1)
			d.apply(ev)
		}()
		return
	}
	d.mu.Unlock()

	if next != nil {
		// Advance no further than the next schedule event.
		if dl, ok := d.clock.NextDeadline(); !ok || dl.Sub(d.start) > next.At {
			d.clock.Advance(next.At - now)
			return
		}
	}
	if _, ok := d.clock.Step(); !ok && next == nil {
		// Nothing is waiting on the clock and no events remain: the
		// script is doing synchronous work; yield and settle again.
		runtime.Gosched()
	}
}

// eventsDone reports whether every schedule event has been applied and
// its apply goroutine has returned.
func (d *driver) eventsDone() bool {
	d.mu.Lock()
	n := len(d.pending)
	d.mu.Unlock()
	return n == 0 && d.eventsInFlight.Load() == 0
}
